// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E12) plus
// ablations for the design choices called out in DESIGN.md: pivot rules,
// float vs exact arithmetic, dense vs revised simplex, averaging radius,
// sequential vs parallel local-LP execution, and the two distributed
// engines. Run with:
//
//	go test -bench=. -benchmem
package maxminlp_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"maxminlp"
	"maxminlp/internal/core"
	"maxminlp/internal/dist"
	"maxminlp/internal/gen"
	"maxminlp/internal/harness"
	"maxminlp/internal/lowerbound"
	"maxminlp/internal/lp"
)

// benchExperiment runs a full harness experiment once per iteration; the
// per-op time is the cost of regenerating the corresponding table.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for _, exp := range harness.All {
		if exp.ID != id {
			continue
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exp.Run(1); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown experiment %s", id)
}

func BenchmarkE1LowerBoundConstruct(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2LowerBoundRatio(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Safe(b *testing.B)                { benchExperiment(b, "E3") }
func BenchmarkE4Gamma(b *testing.B)               { benchExperiment(b, "E4") }
func BenchmarkE5LocalAverage(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6SensorNet(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7Scaling(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8Distributed(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9SelfStabilization(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10OpenQuestion(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11AdaptiveScheme(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12ShardedEngine(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13DedupProfile(b *testing.B)       { benchExperiment(b, "E13") }

// --- ablations -----------------------------------------------------------

// BenchmarkLPPivotRules ablates the entering-variable rule of the float64
// simplex on the torus max-min LP.
func BenchmarkLPPivotRules(b *testing.B) {
	in, _ := gen.Torus([]int{10, 10}, gen.LatticeOptions{})
	for _, rule := range []struct {
		name string
		rule lp.PivotRule
	}{
		{"DantzigThenBland", lp.DantzigThenBland},
		{"BlandOnly", lp.BlandOnly},
	} {
		b.Run(rule.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := torusProblem(in)
				if _, err := lp.SolveWithRule(p, rule.rule); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func torusProblem(in *maxminlp.Instance) *lp.Problem {
	n := in.NumAgents()
	obj := make([]float64, n+1)
	obj[n] = 1
	var cons []lp.Constraint
	for i := 0; i < in.NumResources(); i++ {
		row := make([]float64, n+1)
		for _, e := range in.Resource(i) {
			row[e.Agent] = e.Coeff
		}
		cons = append(cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 1})
	}
	for k := 0; k < in.NumParties(); k++ {
		row := make([]float64, n+1)
		for _, e := range in.Party(k) {
			row[e.Agent] = -e.Coeff
		}
		row[n] = 1
		cons = append(cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 0})
	}
	return &lp.Problem{Obj: obj, Constraints: cons}
}

// BenchmarkLPFloatVsRat measures the cost of exact rational arithmetic
// relative to float64 on identical small max-min LPs.
func BenchmarkLPFloatVsRat(b *testing.B) {
	in, _ := gen.Cycle(12, gen.LatticeOptions{})
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lp.SolveMaxMin(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bigRat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lp.SolveMaxMinRat(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLocalAverageRadius shows how the Theorem-3 algorithm's cost
// grows with the radius R (per agent, the ball and local LP grow
// polynomially on a torus). The torus is 16×16 so that radius-2 balls
// (lattice diameter 9) do not wrap around the side: on a non-wrapping
// symmetric instance most agents share an orbit and the isomorphic-ball
// dedup collapses their local LPs to one solve per class. (On the 8×8
// torus this benchmark historically used, every radius-2 ball wraps, no
// two agents assemble identical LPs, and only the workspace gains show.)
func BenchmarkLocalAverageRadius(b *testing.B) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, radius := range []int{0, 1, 2} {
		b.Run(radiusName(radius), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalAverage(in, g, radius); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func radiusName(r int) string { return "R=" + strconv.Itoa(r) }

// BenchmarkLocalAverageDedup ablates the isomorphic-ball LP cache on the
// BenchmarkLocalAverageRadius workload: identical outputs, one simplex
// run per orbit class instead of one per agent.
func BenchmarkLocalAverageDedup(b *testing.B) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, cfg := range []struct {
		name string
		opt  maxminlp.AverageOptions
	}{
		{"dedup", maxminlp.AverageOptions{}},
		{"reference", maxminlp.AverageOptions{NoDedup: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			solves, avoided := 0, 0
			for i := 0; i < b.N; i++ {
				res, err := maxminlp.LocalAverageOpt(in, g, 2, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				solves, avoided = res.LocalLPs, res.SolvesAvoided
			}
			b.ReportMetric(float64(solves), "solves/op")
			b.ReportMetric(float64(avoided), "avoided/op")
		})
	}
}

// BenchmarkLocalAveragePresolve ablates presolved-form dedup keys on a
// unit-weight grid at radius 1, where boundary balls that differ only in
// rows presolve proves redundant collapse into one orbit class: the
// presolve rows trade a small per-ball reduction cost for strictly fewer
// simplex runs (higher avoided/op) than raw-form keys on the same input.
func BenchmarkLocalAveragePresolve(b *testing.B) {
	in, _ := gen.Grid([]int{16, 16}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, cfg := range []struct {
		name string
		opt  maxminlp.AverageOptions
	}{
		{"presolve", maxminlp.AverageOptions{Presolve: true}},
		{"raw", maxminlp.AverageOptions{}},
		{"reference", maxminlp.AverageOptions{NoDedup: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			solves, avoided := 0, 0
			for i := 0; i < b.N; i++ {
				res, err := maxminlp.LocalAverageOpt(in, g, 1, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				solves, avoided = res.LocalLPs, res.SolvesAvoided
			}
			b.ReportMetric(float64(solves), "solves/op")
			b.ReportMetric(float64(avoided), "avoided/op")
		})
	}
}

// BenchmarkEngines compares the sequential reference engine against the
// goroutine-per-agent engine on the same protocol.
func BenchmarkEngines(b *testing.B) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	nw, err := dist.NewNetwork(in, g)
	if err != nil {
		b.Fatal(err)
	}
	proto := dist.AverageProtocol{Radius: 1}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RunSequential(proto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RunGoroutines(proto); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSafePerAgent isolates the per-agent cost of the safe
// algorithm, the cheapest possible local algorithm.
func BenchmarkSafePerAgent(b *testing.B) {
	in, _ := gen.Torus([]int{32, 32}, gen.LatticeOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Safe(in)
	}
}

// BenchmarkBallAndGamma measures the neighbourhood primitives used by
// both Theorem 3 and the γ(r) profiler.
func BenchmarkBallAndGamma(b *testing.B) {
	in, _ := gen.Torus([]int{24, 24}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	b.Run("ball-r3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Ball(i%in.NumAgents(), 3)
		}
	})
	b.Run("gamma-profile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.GammaProfile(4)
		}
	})
}

// BenchmarkBallLarge measures radius-3 ball extraction on a large torus
// (n = 4096), the primitive whose cost the CSR layout targets.
func BenchmarkBallLarge(b *testing.B) {
	in, _ := gen.Torus([]int{64, 64}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Ball(i%in.NumAgents(), 3)
	}
}

// BenchmarkBallGeometric is BenchmarkBallLarge on a unit-disk instance,
// the irregular-degree workload of Section 5.
func BenchmarkBallGeometric(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 2000, Radius: 0.04, MaxNeighbors: 6}, rng)
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Ball(i%in.NumAgents(), 3)
	}
}

// BenchmarkGammaLarge measures the full γ(r) profile (one bounded BFS per
// vertex) on a large torus.
func BenchmarkGammaLarge(b *testing.B) {
	in, _ := gen.Torus([]int{48, 48}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.GammaProfile(3)
	}
}

// BenchmarkCertificateLarge measures the Theorem-3 certificate (balls +
// per-resource unions + per-party intersections, no LP solves) on a large
// torus: the round-loop structure the flat index accelerates.
func BenchmarkCertificateLarge(b *testing.B) {
	in, _ := gen.Torus([]int{32, 32}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Certificate(in, g, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginesLarge compares the distributed engines on a torus large
// enough for sharding to matter (n = 1024, horizon 3).
func BenchmarkEnginesLarge(b *testing.B) {
	in, _ := gen.Torus([]int{32, 32}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	nw, err := dist.NewNetwork(in, g)
	if err != nil {
		b.Fatal(err)
	}
	proto := dist.AverageProtocol{Radius: 1}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RunSequential(proto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RunGoroutines(proto); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-P=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := nw.RunSharded(proto, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBallIndex measures building the all-agents radius-2 ball
// arena — the once-per-run precomputation of the flat round loops —
// sequentially and sharded.
func BenchmarkBallIndex(b *testing.B) {
	in, _ := gen.Torus([]int{64, 64}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g.BallIndex(2, workers).NumVertices() != in.NumAgents() {
					b.Fatal("bad index")
				}
			}
		})
	}
}

// BenchmarkSafeFlat ablates the flat-index safe algorithm against the
// instance-walking reference on the BenchmarkSafePerAgent workload.
func BenchmarkSafeFlat(b *testing.B) {
	in, _ := gen.Torus([]int{32, 32}, gen.LatticeOptions{})
	csr := maxminlp.NewCSR(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		maxminlp.SafeFlat(csr)
	}
}

// BenchmarkLowerBoundBuild isolates the construction cost of S (template
// generation plus hypertree assembly) for the largest E1 case.
func BenchmarkLowerBoundBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := lowerbound.Build(lowerbound.Params{
			DeltaVI: 3, DeltaVK: 3, R: 2, LocalHorizon: 1,
			Rng: rand.New(rand.NewSource(1)),
		})
		if err != nil {
			b.Fatal(err)
		}
		if c.S.NumAgents() == 0 {
			b.Fatal("empty instance")
		}
	}
}

// BenchmarkLPBackends ablates the dense-tableau simplex against the
// revised simplex (sparse columns + explicit basis inverse) on the
// max-min LP of a growing torus. The revised method's advantage grows
// with instance size because the constraint matrix has O(1) nonzeros per
// column.
func BenchmarkLPBackends(b *testing.B) {
	for _, side := range []int{8, 12, 16} {
		in, _ := gen.Torus([]int{side, side}, gen.LatticeOptions{})
		for _, backend := range []struct {
			name string
			b    lp.Backend
		}{
			{"dense", lp.BackendDense},
			{"revised", lp.BackendRevised},
		} {
			b.Run(fmt.Sprintf("%s/n=%d", backend.name, in.NumAgents()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := lp.SolveMaxMinWith(in, backend.b); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLocalAverageParallel ablates the goroutine-pool parallel
// executor of the local-LP phase against the sequential reference.
func BenchmarkLocalAverageParallel(b *testing.B) {
	in, _ := gen.Torus([]int{12, 12}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalAverageParallel(in, g, 1, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE14SessionProfile(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkSession measures the session layer on the 16×16 torus at
// R=2 (the BenchmarkLocalAverageRadius workload): a cold call builds
// every structure and solves all agents; a warm repeat is served from
// retained state; an incremental call follows a 4-coefficient weight
// update and re-solves only the invalidated ball-local LPs. The
// resolved/op metric counts agents the incremental pass re-examined;
// rebuilds/op must stay 0 on the warm and incremental paths.
func BenchmarkSession(b *testing.B) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	const radius = 2
	deltas := []maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 0, Agent: in.Resource(0)[0].Agent, Coeff: 1.5},
		{Kind: maxminlp.ResourceWeight, Row: 17, Agent: in.Resource(17)[0].Agent, Coeff: 0.75},
		{Kind: maxminlp.PartyWeight, Row: 5, Agent: in.Party(5)[0].Agent, Coeff: 2.0},
		{Kind: maxminlp.PartyWeight, Row: 100, Agent: in.Party(100)[0].Agent, Coeff: 0.5},
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
		if _, err := sess.LocalAverage(radius); err != nil {
			b.Fatal(err)
		}
		builds := sess.Stats().BallIndexBuilds
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(sess.Stats().BallIndexBuilds-builds), "rebuilds/op")
	})
	b.Run("incremental", func(b *testing.B) {
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
		if _, err := sess.LocalAverage(radius); err != nil {
			b.Fatal(err)
		}
		builds := sess.Stats().BallIndexBuilds
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate the coefficients so every iteration really
			// changes the weights (and the first restores them).
			ds := make([]maxminlp.WeightDelta, len(deltas))
			copy(ds, deltas)
			if i%2 == 1 {
				for j := range ds {
					ds[j].Coeff *= 2
				}
			}
			if err := sess.UpdateWeights(ds); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := sess.Stats()
		b.ReportMetric(float64(st.AgentsResolved)/float64(b.N), "resolved/op")
		b.ReportMetric(float64(st.BallIndexBuilds-builds), "rebuilds/op")
	})
}

// BenchmarkSessionObs is BenchmarkSession with a metrics registry
// attached: the instrumented twin that the CI overhead gate compares
// against the plain runs (obs-on must stay within 2% of obs-off), and
// the source of the obs-derived phase latency distributions (p50/p99
// per solve phase, in ns) that BENCH_PR6.json records alongside the
// per-op means.
func BenchmarkSessionObs(b *testing.B) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	const radius = 2
	deltas := []maxminlp.WeightDelta{
		{Kind: maxminlp.ResourceWeight, Row: 0, Agent: in.Resource(0)[0].Agent, Coeff: 1.5},
		{Kind: maxminlp.ResourceWeight, Row: 17, Agent: in.Resource(17)[0].Agent, Coeff: 0.75},
		{Kind: maxminlp.PartyWeight, Row: 5, Agent: in.Party(5)[0].Agent, Coeff: 2.0},
		{Kind: maxminlp.PartyWeight, Row: 100, Agent: in.Party(100)[0].Agent, Coeff: 0.5},
	}
	reportPhases := func(b *testing.B, m *maxminlp.SolveMetrics) {
		for _, ph := range []struct {
			name string
			s    maxminlp.HistogramSnapshot
		}{
			{"fingerprint", m.PhaseFingerprint.Snapshot()},
			{"group", m.PhaseGroup.Snapshot()},
			{"lp-solve", m.PhaseLPSolve.Snapshot()},
			{"accumulate", m.PhaseAccumulate.Snapshot()},
		} {
			b.ReportMetric(ph.s.P50*1e9, ph.name+"-p50-ns")
			b.ReportMetric(ph.s.P99*1e9, ph.name+"-p99-ns")
		}
	}
	b.Run("cold", func(b *testing.B) {
		reg := maxminlp.NewMetricsRegistry()
		m := maxminlp.NewSolveMetrics(reg)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
			sess.SetObs(m)
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPhases(b, m)
	})
	b.Run("warm", func(b *testing.B) {
		reg := maxminlp.NewMetricsRegistry()
		m := maxminlp.NewSolveMetrics(reg)
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
		sess.SetObs(m)
		if _, err := sess.LocalAverage(radius); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if m.WarmHits.Value() < int64(b.N) {
			b.Fatalf("warm hits %d < %d iterations", m.WarmHits.Value(), b.N)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		reg := maxminlp.NewMetricsRegistry()
		m := maxminlp.NewSolveMetrics(reg)
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
		sess.SetObs(m)
		if _, err := sess.LocalAverage(radius); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds := make([]maxminlp.WeightDelta, len(deltas))
			copy(ds, deltas)
			if i%2 == 1 {
				for j := range ds {
					ds[j].Coeff *= 2
				}
			}
			if err := sess.UpdateWeights(ds); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportPhases(b, m)
		b.ReportMetric(m.WeightUpdateSeconds.Snapshot().P99*1e9, "update-p99-ns")
	})
}

// BenchmarkSessionNetwork compares a plain network against a
// session-backed one (shared ball index + LP cache across nodes) on the
// sequential engine — the per-node redundant re-solves of the protocol
// collapse to one simplex run per distinct LP across the whole network.
func BenchmarkSessionNetwork(b *testing.B) {
	in, _ := gen.Torus([]int{10, 10}, gen.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	proto := dist.AverageProtocol{Radius: 1}
	b.Run("plain", func(b *testing.B) {
		nw, err := dist.NewNetwork(in, g)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RunSequential(proto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		sess := core.NewSolverFromGraph(in, g)
		nw, err := dist.NewSessionNetwork(sess)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RunSequential(proto); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE15ChurnProfile regenerates the EXPERIMENTS.md churn table.
func BenchmarkE15ChurnProfile(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkParallelScaling is the work-stealing runtime's P∈{1,2,4,8}
// scaling matrix (EXPERIMENTS.md E17, emitted into BENCH_PR9.json):
//
//   - uniform: cold dedup solve of a random-weight 24×24 torus at R=1 —
//     every fingerprint is distinct, so all 576 local LPs really solve,
//     with near-uniform per-ball cost.
//   - skewed: the same instance plus one hub resource tying 8 spread
//     agents into a clique, so a handful of balls (the hub members and
//     their neighbourhoods) cost far more than the median — the
//     distribution static sharding loses on.
//   - churn: a warm Solver session on the skewed instance; each op
//     patches the hub row plus a few scattered resources with fresh
//     coefficients and re-solves incrementally — the small, heavily
//     skewed dirty sets of a deployment under diurnal churn, the hot
//     path the scheduler exists for.
//
// The numbers are only meaningful against the _meta host fingerprint:
// on a single-core host the matrix is flat by construction. CI gates
// churn/P=4 ≥ 1.6× churn/P=1 on multi-core runners.
func BenchmarkParallelScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	base, _ := gen.Torus([]int{24, 24}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	const radius = 1
	// Hub clique: one new resource row over 8 agents spread across the
	// torus (577 is coprime to 576, so the stride visits distinct
	// agents far apart in index order).
	hubRow := base.NumResources()
	hubAgents := make([]int, 8)
	ups := make([]maxminlp.TopoUpdate, len(hubAgents))
	for k := range hubAgents {
		hubAgents[k] = (k * 577) % base.NumAgents()
		ups[k] = maxminlp.AddResourceEdge(hubRow, hubAgents[k], 1)
	}
	skewed, _, err := base.ApplyTopo(ups)
	if err != nil {
		b.Fatal(err)
	}
	gBase := maxminlp.NewGraph(base, maxminlp.GraphOptions{})
	gSkew := maxminlp.NewGraph(skewed, maxminlp.GraphOptions{})
	// Scattered light touches for the churn deltas: a few torus resource
	// rows far from each other, patched alongside the hub row.
	scatterRows := []int{3, 57, 111, 203, 309, 411}

	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("uniform/P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := maxminlp.LocalAverageOpt(base, gBase, radius, maxminlp.AverageOptions{Workers: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("skewed/P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := maxminlp.LocalAverageOpt(skewed, gSkew, radius, maxminlp.AverageOptions{Workers: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("churn/P=%d", p), func(b *testing.B) {
			sess := maxminlp.NewSolver(skewed, maxminlp.GraphOptions{})
			sess.SetWorkers(p)
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
			warm := sess.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh coefficients every iteration: the touched balls'
				// fingerprints really change, so each op re-solves them
				// instead of hitting the cache.
				coeff := 1 + float64(i%4096+1)*1e-4
				ds := []maxminlp.WeightDelta{
					{Kind: maxminlp.ResourceWeight, Row: hubRow, Agent: hubAgents[0], Coeff: coeff},
				}
				for _, row := range scatterRows {
					ds = append(ds, maxminlp.WeightDelta{
						Kind: maxminlp.ResourceWeight, Row: row,
						Agent: skewed.Resource(row)[0].Agent, Coeff: 2 - coeff,
					})
				}
				if err := sess.UpdateWeights(ds); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.LocalAverage(radius); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := sess.Stats()
			b.ReportMetric(float64(st.AgentsResolved-warm.AgentsResolved)/float64(b.N), "resolved/op")
		})
	}
}

// BenchmarkSessionTopology measures live topology churn on the 16×16
// torus at R=2 (the BenchmarkSession workload): each op toggles one
// support entry — an agent leaving, then rejoining, resource 0. cold
// pays a full rebuild per mutation (fresh session: graph, CSR, ball
// index, every local LP); incremental patches the warm session and
// re-solves only the invalidated balls. rebuilds/op must stay 0 on the
// incremental path and invalidated-balls/op is the patch footprint —
// the acceptance numbers of the structural-update layer, recorded in
// BENCH_PR5.json.
func BenchmarkSessionTopology(b *testing.B) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	const radius = 2
	agent := in.Resource(0)[0].Agent
	toggle := func(i int) []maxminlp.TopoUpdate {
		if i%2 == 0 {
			return []maxminlp.TopoUpdate{maxminlp.RemoveResourceEdge(0, agent)}
		}
		return []maxminlp.TopoUpdate{maxminlp.AddResourceEdge(0, agent, 1)}
	}
	b.Run("cold", func(b *testing.B) {
		cur := in
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			cur, _, err = cur.ApplyTopo(toggle(i))
			if err != nil {
				b.Fatal(err)
			}
			sess := maxminlp.NewSolver(cur, maxminlp.GraphOptions{})
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		sess := maxminlp.NewSolver(in, maxminlp.GraphOptions{})
		if _, err := sess.LocalAverage(radius); err != nil {
			b.Fatal(err)
		}
		warm := sess.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.UpdateTopology(toggle(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.LocalAverage(radius); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := sess.Stats()
		b.ReportMetric(float64(st.CSRBuilds+st.BallIndexBuilds-warm.CSRBuilds-warm.BallIndexBuilds)/float64(b.N), "rebuilds/op")
		b.ReportMetric(float64(st.BallsPatched-warm.BallsPatched)/float64(b.N), "invalidated-balls/op")
		b.ReportMetric(float64(st.AgentsResolved-warm.AgentsResolved)/float64(b.N), "resolved/op")
	})
}
