package backoff

import (
	"testing"
	"time"
)

// The attempt cap must be exact: a Policy with Attempts=n yields
// exactly n true results from Next.
func TestAttemptsBound(t *testing.T) {
	b := New(Policy{Base: time.Millisecond, Max: 8 * time.Millisecond, Attempts: 3}, 1)
	b.SetSleep(func(time.Duration) {})
	got := 0
	for b.Next() {
		got++
		if got > 10 {
			t.Fatal("Next never returned false")
		}
	}
	if got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	b.Reset()
	if !b.Next() {
		t.Fatal("Next after Reset should succeed")
	}
}

// Every delay must respect the per-attempt exponential cap and the
// global Max, and the schedule must be reproducible for a fixed seed.
func TestDelayBoundsAndDeterminism(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	a := New(p, 42)
	bb := New(p, 42)
	for i := 0; i < 20; i++ {
		cap := p.Base << uint(i)
		if cap <= 0 || cap > p.Max {
			cap = p.Max
		}
		da := a.Delay()
		if da < 0 || da > cap {
			t.Fatalf("attempt %d: delay %v outside [0,%v]", i, da, cap)
		}
		if db := bb.Delay(); db != da {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		a.n++
		bb.n++
	}
}

// Unlimited policies keep returning true, and the observed sleeps stay
// bounded by Max even deep into the schedule (shift overflow must not
// produce a negative cap).
func TestUnlimitedNeverOverflows(t *testing.T) {
	b := New(Default(), 7)
	var slept []time.Duration
	b.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	for i := 0; i < 80; i++ {
		if !b.Next() {
			t.Fatal("unlimited policy returned false")
		}
	}
	for i, d := range slept {
		if d < 0 || d > Default().Max {
			t.Fatalf("sleep %d = %v outside [0,%v]", i, d, Default().Max)
		}
	}
}

// Zero-value policy fields are replaced with sane defaults rather than
// producing a zero-delay hot loop.
func TestZeroPolicyDefaults(t *testing.T) {
	b := New(Policy{}, 1)
	if b.p.Base <= 0 || b.p.Max <= 0 {
		t.Fatalf("defaults not applied: %+v", b.p)
	}
}
