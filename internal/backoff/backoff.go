// Package backoff implements jittered exponential backoff, the retry
// cadence shared by every reconnect loop in the serving tier: the
// coordinator retrying a worker RPC, a worker rejoining after a crash,
// and the HTTP client retrying an idempotent request against a
// recovering daemon.
//
// The policy is "full jitter": attempt n sleeps a uniformly random
// duration in [0, min(Max, Base·2ⁿ)]. Compared with plain exponential
// backoff this decorrelates a thundering herd of restarted workers all
// reconnecting to the same coordinator, at the cost of occasionally
// retrying very quickly — which is fine, because the thing being
// retried is idempotent by construction everywhere this package is
// used.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Policy describes a bounded, jittered exponential backoff schedule.
// The zero value is unusable; use Default or fill every field.
type Policy struct {
	// Base is the cap of the first delay. Successive attempt caps
	// double until they reach Max.
	Base time.Duration
	// Max bounds a single delay.
	Max time.Duration
	// Attempts bounds how many times Next returns true. Zero or
	// negative means unlimited.
	Attempts int
}

// Default is the schedule used by the mmlpd cluster runtime:
// 50ms·2ⁿ capped at 2s, unlimited attempts (callers that need a bound
// set Attempts explicitly).
func Default() Policy {
	return Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
}

// Backoff is the mutable state of one retry loop. Not safe for
// concurrent use; each loop owns its own.
type Backoff struct {
	p    Policy
	n    int
	rng  *rand.Rand
	rmu  sync.Mutex // guards rng: Delay may be probed concurrently in tests
	slep func(time.Duration)
}

// New returns a fresh retry loop following p, seeded from seed so
// tests are reproducible. Production callers pass something varying
// (e.g. time.Now().UnixNano()).
func New(p Policy, seed int64) *Backoff {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	return &Backoff{p: p, rng: rand.New(rand.NewSource(seed)), slep: time.Sleep}
}

// SetSleep replaces the sleep function, letting tests run schedules at
// full speed while still observing the chosen delays.
func (b *Backoff) SetSleep(f func(time.Duration)) { b.slep = f }

// Delay computes the next jittered delay without sleeping or consuming
// an attempt. Exposed for callers that integrate with select loops.
func (b *Backoff) Delay() time.Duration {
	cap := b.p.Base << uint(b.n)
	if cap <= 0 || cap > b.p.Max { // <=0 catches shift overflow
		cap = b.p.Max
	}
	b.rmu.Lock()
	d := time.Duration(b.rng.Int63n(int64(cap) + 1))
	b.rmu.Unlock()
	return d
}

// Next sleeps the next jittered delay and reports whether the caller
// should try again; it returns false once Attempts is exhausted.
func (b *Backoff) Next() bool {
	if b.p.Attempts > 0 && b.n >= b.p.Attempts {
		return false
	}
	b.slep(b.Delay())
	b.n++
	return true
}

// Advance consumes one attempt without sleeping, for callers that
// combine Delay with another wait source (e.g. a server's Retry-After)
// and sleep on their own.
func (b *Backoff) Advance() { b.n++ }

// Reset rewinds the schedule to attempt zero, for loops that reconnect
// successfully and later fail again (a long-lived worker's rejoin loop
// should not remember delays from an outage an hour ago).
func (b *Backoff) Reset() { b.n = 0 }

// Attempt reports how many attempts have been consumed since the last
// Reset.
func (b *Backoff) Attempt() int { return b.n }
