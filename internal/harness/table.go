// Package harness runs the reproduction experiments E1–E8 described in
// DESIGN.md and EXPERIMENTS.md and renders their results as plain-text
// tables or CSV. Each experiment is a pure function from a seed to a
// Table, so cmd/experiments and the benchmark suite share the exact same
// workloads.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "E4"
	Title   string
	Note    string // free-text commentary (expected shape, caveats)
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row; it panics if the arity is wrong so
// that experiment bugs fail loudly.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d cells, table %s has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for j, c := range t.Columns {
		widths[j] = len(c)
	}
	for _, row := range t.Rows {
		for j, cell := range row {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for j, cell := range cells {
			parts[j] = fmt.Sprintf("%-*s", widths[j], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for j := range rule {
		rule[j] = strings.Repeat("-", widths[j])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the table in CSV form (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float compactly for table cells.
func F(x float64) string { return fmt.Sprintf("%.4g", x) }

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }

// B formats a bool as ok/FAIL.
func B(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}
