package harness

import (
	"fmt"
	"math/rand"
	"time"

	"maxminlp/internal/apps"
	"maxminlp/internal/core"
	"maxminlp/internal/dist"
	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lowerbound"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// Experiment binds an experiment id to its runner. Runners are
// deterministic given the seed.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64) (*Table, error)
}

// All lists the reproduction experiments in order.
var All = []Experiment{
	{"E1", "Theorem 1 construction is well-formed (Fig. 1)", E1Construction},
	{"E2", "Measured ratios on the adversarial instance S' vs the Theorem 1 bound", E2LowerBoundRatio},
	{"E3", "Safe algorithm: feasibility, ratio ≤ ΔVI, tight family (eq. 2)", E3Safe},
	{"E4", "Relative growth γ(r) on d-dimensional tori (Theorem 3 premise)", E4Gamma},
	{"E5", "Local averaging: measured ratio vs γ(R−1)γ(R) bound (Theorem 3)", E5LocalAverage},
	{"E6", "Sensor-network lifetime: optimal vs safe vs local averaging (§2)", E6SensorNet},
	{"E7", "Per-node cost stays constant as the network grows (§1.1)", E7Scaling},
	{"E8", "Goroutine message passing agrees with the reference engine (§1.5)", E8Distributed},
	{"E9", "Self-stabilisation: recovery within the horizon after faults (§1.1)", E9SelfStabilization},
	{"E10", "Open question probe: ΔVI = ΔVK = 2 instances (§4)", E10OpenQuestion},
	{"E11", "Adaptive radius: Theorem 3 as a local approximation scheme", E11AdaptiveScheme},
	{"E12", "Sharded worker-pool engine: agreement and speedup", E12ShardedEngine},
	{"E13", "Isomorphic-ball LP dedup: solves avoided, bit-exact agreement", E13DedupProfile},
	{"E14", "Solver sessions: cold vs warm vs incremental re-solve", E14SessionProfile},
	{"E15", "Topology churn: incremental structural updates vs cold rebuild", E15ChurnProfile},
}

func fullGraph(in *mmlp.Instance) *hypergraph.Graph {
	return hypergraph.FromInstance(in, hypergraph.Options{})
}

// lowerBoundCases are the (ΔVI, ΔVK) pairs exercised by E1 and E2; all use
// local horizon r = 1 and R = 2, which keeps the template degree at a
// projective-plane-friendly size.
var lowerBoundCases = []lowerbound.Params{
	{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1},
	{DeltaVI: 3, DeltaVK: 3, R: 2, LocalHorizon: 1},
	{DeltaVI: 4, DeltaVK: 2, R: 2, LocalHorizon: 1},
	{DeltaVI: 2, DeltaVK: 3, R: 2, LocalHorizon: 1},
}

// E1Construction builds the Section-4 construction for several degree
// bounds and runs the complete proof checker: template girth, hypertree
// level sizes, the leaf pairing f, Σδ = 0, Berge-acyclicity of S', the
// parity witness with ω = 1, the identity of radius-r views between S and
// S', and the level-sum relations (4) and (6).
func E1Construction(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Theorem 1 construction (Fig. 1): structural verification",
		Columns: []string{"ΔVI", "ΔVK", "|Q|", "girth", "agents(S)", "agents(S')", "views", "witness ω", "checks"},
		Note:    "every row must show checks=ok and witness ω=1; girth ≥ 4r+2 = 6",
	}
	for _, params := range lowerBoundCases {
		params.Rng = rand.New(rand.NewSource(seed))
		c, err := lowerbound.Build(params)
		if err != nil {
			return nil, fmt.Errorf("E1 %+v: %w", params, err)
		}
		x := core.Safe(c.S)
		sp, err := c.DeriveSPrime(x)
		if err != nil {
			return nil, err
		}
		rep := c.Check(x, sp)
		t.AddRow(I(params.DeltaVI), I(params.DeltaVK), I(c.Q.NumVertices()), I(rep.Girth),
			I(c.S.NumAgents()), I(sp.Instance().NumAgents()), I(rep.ViewsChecked),
			F(rep.WitnessOmega), B(rep.OK()))
	}
	return t, nil
}

// E2LowerBoundRatio measures the approximation ratio achieved on the
// adversarial instance S' by the safe algorithm (horizon 1 ≤ r, so the
// Theorem-1 bound applies to it) and by local averaging with R = 1
// (horizon 3 > r = 1; the bound does not constrain it on this instance,
// reported for contrast — on tree-like graphs its γ-certificate is
// useless, which is exactly Theorem 3's caveat).
func E2LowerBoundRatio(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Measured ratio ω*(S')/ω_alg(S') vs Theorem-1 bound",
		Columns: []string{"ΔVI", "ΔVK", "bound", "ω*(S')", "safe ratio", "bound holds", "avg(R=1) ratio", "avg cert γγ"},
		Note:    "'bound holds' checks safe ratio ≥ ΔVI/2 + 1/2 − 1/(2ΔVK−2); the avg column has horizon 3 > r and is shown for contrast",
	}
	for _, params := range lowerBoundCases {
		params.Rng = rand.New(rand.NewSource(seed))
		c, err := lowerbound.Build(params)
		if err != nil {
			return nil, err
		}
		xS := core.Safe(c.S)
		sp, err := c.DeriveSPrime(xS)
		if err != nil {
			return nil, err
		}
		sub := sp.Instance()
		opt, err := lp.SolveMaxMin(sub)
		if err != nil {
			return nil, err
		}
		safeOmega := sub.Objective(core.Safe(sub))
		g := fullGraph(sub)
		avg, err := core.LocalAverage(sub, g, 1)
		if err != nil {
			return nil, err
		}
		avgOmega := sub.Objective(avg.X)
		safeRatio := opt.Omega / safeOmega
		avgRatio := opt.Omega / avgOmega
		t.AddRow(I(params.DeltaVI), I(params.DeltaVK), F(params.TheoremBound()), F(opt.Omega),
			F(safeRatio), B(safeRatio >= params.TheoremBound()-1e-6), F(avgRatio), F(avg.RatioCertificate()))
	}
	return t, nil
}

// E3Safe measures the safe algorithm on random bounded-degree instances
// (ratio must stay ≤ ΔVI) and on the tight star family (ratio must equal
// ΔVI exactly).
func E3Safe(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Safe algorithm (eq. 2): ratio ≤ ΔVI, tight on the star family",
		Columns: []string{"family", "ΔVI", "agents", "ω*", "ω_safe", "ratio", "≤ ΔVI"},
		Note:    "the star family rows must show ratio = ΔVI exactly",
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range []int{20, 60, 120} {
		in := gen.Random(gen.RandomOptions{
			Agents: n, Resources: n, Parties: n / 2, MaxVI: 3, MaxVK: 3,
		}, rng)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			return nil, err
		}
		safeOmega := in.Objective(core.Safe(in))
		ratio := opt.Omega / safeOmega
		deltaVI := in.Degrees().MaxVI
		t.AddRow("random", I(deltaVI), I(in.NumAgents()), F(opt.Omega), F(safeOmega),
			F(ratio), B(ratio <= float64(deltaVI)+1e-6))
	}
	for _, deltaVI := range []int{2, 3, 4, 6} {
		in := gen.SafeTight(deltaVI, 4)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			return nil, err
		}
		safeOmega := in.Objective(core.Safe(in))
		ratio := opt.Omega / safeOmega
		t.AddRow("star (tight)", I(deltaVI), I(in.NumAgents()), F(opt.Omega), F(safeOmega),
			F(ratio), B(ratio <= float64(deltaVI)+1e-6))
	}
	return t, nil
}

// E4Gamma computes γ(r) on d-dimensional tori; the paper's premise for
// Theorem 3 is γ(r) = 1 + Θ(1/r) on such graphs, so each row should
// decrease towards 1 as r grows.
func E4Gamma(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Relative growth γ(r) on tori (Theorem 3 premise)",
		Columns: []string{"dims", "agents", "γ(1)", "γ(2)", "γ(3)", "γ(4)", "γ(5)", "γ(6)"},
		Note:    "γ(r) → 1 as r grows (polynomial growth); contrast with trees, where γ is bounded away from 1",
	}
	addRow := func(name string, in *mmlp.Instance) {
		g := fullGraph(in)
		prof := g.GammaProfile(6)
		t.AddRow(name, I(in.NumAgents()),
			F(prof[1]), F(prof[2]), F(prof[3]), F(prof[4]), F(prof[5]), F(prof[6]))
	}
	for _, dims := range [][]int{{64}, {256}, {16, 16}, {24, 24}, {8, 8, 8}} {
		in, _ := gen.Torus(dims, gen.LatticeOptions{})
		addRow(fmt.Sprint(dims), in)
	}
	// Geometric deployment (§5's physical-space motivation): polynomial
	// growth like the planar torus.
	rng := rand.New(rand.NewSource(seed))
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 400, Radius: 0.08, MaxNeighbors: 5}, rng)
	addRow("unit-disk", disk)
	// Contrast: a complete tree has exponential growth; γ stays bounded
	// away from 1, so Theorem 3 cannot give a local approximation scheme
	// here — consistent with the Theorem-1 lower bound on tree-like
	// instances.
	addRow("tree a=2 h=7", gen.TreeInstance(2, 7))
	return t, nil
}

// E5LocalAverage runs the Theorem-3 algorithm on torus instances for
// growing R and compares the measured ratio against both the per-instance
// certificate max_k M_k/m_k · max_i N_i/n_i and the looser γ(R−1)γ(R)
// bound; the ratio must approach 1 (a local approximation scheme). The
// tori are unweighted — the symmetric instances of the paper's Section 5
// — so the isomorphic-ball dedup layer collapses the per-agent local LPs
// to one solve per orbit class; the theorem checks are identical either
// way (dedup is bit-exact).
func E5LocalAverage(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Local averaging (Theorem 3): ratio vs certificate vs γ(R−1)γ(R)",
		Columns: []string{"dims", "R", "ω*", "ω_avg", "ratio", "certificate", "γ(R−1)γ(R)", "ratio ≤ cert"},
		Note:    "ratio decreases towards 1 with R; ratio ≤ certificate ≤ γ(R−1)γ(R) throughout",
	}
	cases := []struct {
		dims  []int
		radii []int
	}{
		{[]int{48}, []int{1, 2, 3, 4}},
		{[]int{10, 10}, []int{1, 2}},
	}
	for _, cse := range cases {
		in, _ := gen.Torus(cse.dims, gen.LatticeOptions{})
		g := fullGraph(in)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			return nil, err
		}
		for _, R := range cse.radii {
			res, err := core.LocalAverage(in, g, R)
			if err != nil {
				return nil, err
			}
			got := in.Objective(res.X)
			ratio := opt.Omega / got
			gamma := g.Gamma(R-1) * g.Gamma(R)
			t.AddRow(fmt.Sprint(cse.dims), I(R), F(opt.Omega), F(got), F(ratio),
				F(res.RatioCertificate()), F(gamma), B(ratio <= res.RatioCertificate()+1e-6))
		}
	}
	return t, nil
}

// E6SensorNet evaluates the three solvers on random two-tier sensor
// deployments (Section 2): the centralised LP optimum, the safe
// algorithm, and local averaging with R = 1 and R = 2.
func E6SensorNet(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Sensor-network lifetime (§2): min-per-area data rate",
		Columns: []string{"sensors", "relays", "areas", "links", "ω* (LP)", "ω safe", "ω avg R=1", "ω avg R=2", "safe ratio", "avg2 ratio"},
		Note:    "local averaging should close most of the gap between safe and optimal on these geometric graphs",
	}
	rng := rand.New(rand.NewSource(seed))
	for _, cfg := range []apps.SensorNetworkOptions{
		{Sensors: 20, Relays: 6, Areas: 8, RadioRange: 0.35, SenseRange: 0.3, MaxLinksPerSensor: 3},
		{Sensors: 40, Relays: 10, Areas: 12, RadioRange: 0.3, SenseRange: 0.25, MaxLinksPerSensor: 3},
		{Sensors: 80, Relays: 10, Areas: 16, RadioRange: 0.25, SenseRange: 0.2, MaxLinksPerSensor: 2},
	} {
		sn := apps.RandomSensorNetwork(cfg, rng)
		in, g, err := sn.Communication()
		if err != nil {
			return nil, err
		}
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			return nil, err
		}
		safeOmega := in.Objective(core.Safe(in))
		avg1, err := core.LocalAverage(in, g, 1)
		if err != nil {
			return nil, err
		}
		avg2, err := core.LocalAverage(in, g, 2)
		if err != nil {
			return nil, err
		}
		omega1 := in.Objective(avg1.X)
		omega2 := in.Objective(avg2.X)
		t.AddRow(I(cfg.Sensors), I(cfg.Relays), I(cfg.Areas), I(in.NumAgents()),
			F(opt.Omega), F(safeOmega), F(omega1), F(omega2),
			F(opt.Omega/safeOmega), F(opt.Omega/omega2))
	}
	return t, nil
}

// E7Scaling measures the wall-clock cost per agent of the two local
// algorithms as the torus grows; local algorithms promise constant work
// per node (Section 1.1), so the per-node columns should stay flat while
// the LP column grows superlinearly.
func E7Scaling(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Per-node cost as the network grows (local ⇒ flat)",
		Columns: []string{"agents", "safe ns/agent", "avg(R=1) µs/agent", "LP dense ms", "LP revised ms"},
		Note:    "safe and avg columns stay roughly constant; both centralised LP columns grow superlinearly (revised < dense)",
	}
	for _, side := range []int{8, 12, 16, 24} {
		in, _ := gen.Torus([]int{side, side}, gen.LatticeOptions{})
		g := fullGraph(in)
		n := float64(in.NumAgents())

		start := time.Now()
		reps := 10
		for rep := 0; rep < reps; rep++ {
			core.Safe(in)
		}
		safePer := float64(time.Since(start).Nanoseconds()) / float64(reps) / n

		start = time.Now()
		if _, err := core.LocalAverage(in, g, 1); err != nil {
			return nil, err
		}
		avgPer := time.Since(start).Seconds() * 1e6 / n

		start = time.Now()
		if _, err := lp.SolveMaxMin(in); err != nil {
			return nil, err
		}
		lpDense := time.Since(start).Seconds() * 1e3

		start = time.Now()
		if _, err := lp.SolveMaxMinWith(in, lp.BackendRevised); err != nil {
			return nil, err
		}
		lpRevised := time.Since(start).Seconds() * 1e3

		t.AddRow(I(in.NumAgents()), F(safePer), F(avgPer), F(lpDense), F(lpRevised))
	}
	return t, nil
}

// E8Distributed runs both protocols under the goroutine engine and the
// sequential reference engine and verifies exact agreement, reporting
// rounds and message counts.
func E8Distributed(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Distributed execution: goroutine engine vs reference engine",
		Columns: []string{"instance", "protocol", "rounds", "messages", "payload", "max/node", "agree", "ω"},
		Note:    "'agree' requires bit-identical outputs between the two engines; payload counts agent records delivered",
	}
	rng := rand.New(rand.NewSource(seed))
	type namedInstance struct {
		name string
		in   *mmlp.Instance
	}
	torus, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	instances := []namedInstance{
		{"torus 6x6", torus},
		{"random n=40", gen.Random(gen.RandomOptions{Agents: 40, Resources: 30, Parties: 15, MaxVI: 3, MaxVK: 3}, rng)},
	}
	for _, ni := range instances {
		g := fullGraph(ni.in)
		nw, err := dist.NewNetwork(ni.in, g)
		if err != nil {
			return nil, err
		}
		for _, pc := range []struct {
			name  string
			proto dist.Protocol
		}{
			{"safe", dist.SafeProtocol{}},
			{"average R=1", dist.AverageProtocol{Radius: 1}},
		} {
			seq, err := nw.RunSequential(pc.proto)
			if err != nil {
				return nil, err
			}
			par, err := nw.RunGoroutines(pc.proto)
			if err != nil {
				return nil, err
			}
			agree := true
			for v := range seq.X {
				if seq.X[v] != par.X[v] {
					agree = false
				}
			}
			t.AddRow(ni.name, pc.name, I(seq.Rounds), I(seq.Messages), I(seq.Payload), I(seq.MaxNodePayload), B(agree), F(ni.in.Objective(seq.X)))
		}
	}
	return t, nil
}

// E9SelfStabilization validates the Section-1.1 claim that local
// algorithms yield self-stabilising algorithms with constant (horizon)
// stabilisation time: adversarial state corruption at round f is healed
// by round f + horizon.
func E9SelfStabilization(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Self-stabilisation of the averaging protocol (§1.1)",
		Columns: []string{"instance", "R", "horizon", "fault", "corrupted", "stable from", "≤ fault+horizon"},
		Note:    "outputs equal the fault-free protocol's from 'stable from' onwards; recovery within one horizon",
	}
	rng := rand.New(rand.NewSource(seed))
	cases := []struct {
		name   string
		dims   []int
		radius int
	}{
		{"torus 5x5", []int{5, 5}, 1},
		{"cycle 24", []int{24}, 1},
		{"cycle 24", []int{24}, 2},
	}
	for _, cse := range cases {
		in, _ := gen.Torus(cse.dims, gen.LatticeOptions{})
		g := fullGraph(in)
		nw, err := dist.NewNetwork(in, g)
		if err != nil {
			return nil, err
		}
		p := dist.StabilizingAverage{Radius: cse.radius}
		fault := p.Horizon() + 1
		corrupted := 0
		run, err := nw.RunStabilizing(p, fault+p.Horizon()+2, fault, func(nodes []*dist.StabNodeHandle) {
			for _, h := range nodes {
				if rng.Intn(2) == 0 {
					h.Drop()
					corrupted++
				}
			}
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(cse.name, I(cse.radius), I(p.Horizon()), I(fault), I(corrupted),
			I(run.StableFrom), B(run.StableFrom >= 0 && run.StableFrom <= fault+p.Horizon()))
	}
	return t, nil
}

// E10OpenQuestion probes the parameter regime the paper explicitly leaves
// open (end of Section 4): with ΔVI = ΔVK = 2 — every hyperedge has two
// agents — does a local approximation scheme exist? Theorem 3 answers
// "yes" for bounded-growth topologies, so the interesting cases are
// graphs with expanding neighbourhoods: complete trees and random regular
// graphs, where hyperedge size is 2 but the vertex degree is not. The
// experiment reports the measured local-averaging ratio as R grows; no
// pass/fail column — the question is open, this is evidence, not a check.
func E10OpenQuestion(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "ΔVI = ΔVK = 2 (open question): local-averaging ratio vs R",
		Columns: []string{"graph", "agents", "ω*", "R=1", "R=2", "R=3", "γ(3)"},
		Note:    "edge-sized hyperedges only; ratios on the tree and regular graph stay visibly above 1 at these radii — consistent with the question being hard — while the cycle's ratio drops towards 1",
	}
	rng := rand.New(rand.NewSource(seed))
	reg, err := gen.RandomRegularAdjacency(60, 3, rng)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		adj  [][]int
	}{
		{"cycle n=36", gen.CycleAdjacency(36)},
		{"tree a=3 h=3", gen.CompleteTreeAdjacency(3, 3)},
		{"3-regular n=60", reg},
	}
	for _, cse := range cases {
		in, err := gen.EdgeInstance(cse.adj)
		if err != nil {
			return nil, err
		}
		deg := in.Degrees()
		if deg.MaxVI != 2 || deg.MaxVK != 2 {
			return nil, fmt.Errorf("E10: %s has ΔVI=%d ΔVK=%d, want 2/2", cse.name, deg.MaxVI, deg.MaxVK)
		}
		g := fullGraph(in)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			return nil, err
		}
		ratios := make([]string, 3)
		for idx, R := range []int{1, 2, 3} {
			res, err := core.LocalAverage(in, g, R)
			if err != nil {
				return nil, err
			}
			ratios[idx] = F(opt.Omega / in.Objective(res.X))
		}
		t.AddRow(cse.name, I(in.NumAgents()), F(opt.Omega), ratios[0], ratios[1], ratios[2], F(g.Gamma(3)))
	}
	return t, nil
}

// E11AdaptiveScheme exercises the "local approximation scheme" reading of
// Theorem 3: for each target ratio α, grow R until the per-instance
// certificate drops below α. On bounded-growth graphs every target is
// reached at a modest radius; on trees the certificate plateaus and
// ambitious targets are never reached — exactly the dichotomy between
// Sections 4 and 5 of the paper.
func E11AdaptiveScheme(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Adaptive radius selection (Theorem 3 as a local approximation scheme)",
		Columns: []string{"graph", "target α", "achieved", "R chosen", "certificate", "measured ratio"},
		Note:    "bounded-growth rows reach every target; the tree rows plateau (γ bounded away from 1)",
	}
	type testCase struct {
		name      string
		in        *mmlp.Instance
		maxRadius int
	}
	cyc, _ := gen.Cycle(64, gen.LatticeOptions{})
	tor, _ := gen.Torus([]int{9, 9}, gen.LatticeOptions{})
	cases := []testCase{
		{"cycle n=64", cyc, 8},
		{"torus 9x9", tor, 8},
		// Deep enough that the radius budget cannot swallow the whole
		// tree; the certificate plateaus instead of collapsing to 1.
		{"tree a=3 h=4", gen.TreeInstance(3, 4), 2},
	}
	for _, cse := range cases {
		g := fullGraph(cse.in)
		opt, err := lp.SolveMaxMin(cse.in)
		if err != nil {
			return nil, err
		}
		for _, target := range []float64{3.0, 1.8} {
			res, err := core.AdaptiveAverage(cse.in, g, target, cse.maxRadius)
			if err != nil {
				return nil, err
			}
			ratio := opt.Omega / cse.in.Objective(res.X)
			t.AddRow(cse.name, F(target), fmt.Sprint(res.Achieved), I(res.Radius),
				F(res.RatioCertificate()), F(ratio))
		}
	}
	return t, nil
}

// E13DedupProfile measures the isomorphic-ball LP dedup layer of the
// local-averaging pipeline: how many distinct local LPs each instance
// family actually has (per radius), how much wall-clock the sharing
// saves, and — the safety property — that the dedup run's X, Beta and
// LocalOmega are bit-for-bit the reference (NoDedup) run's. Symmetric
// families (tori whose balls do not wrap, cycles, the paper's lattice
// examples) collapse to a handful of orbit classes; irregular geometric
// and random-regular instances see little sharing but pay only the
// fingerprint, never a wrong reuse (exact key comparison gates every
// hit).
func E13DedupProfile(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Isomorphic-ball LP dedup: distinct solves, work avoided, agreement",
		Columns: []string{"instance", "R", "agents", "solved", "avoided", "dedup ms", "reference ms", "speedup", "bit-identical"},
		Note:    "'bit-identical' compares X, Beta and LocalOmega against the NoDedup reference; 'solved' counts distinct simplex runs",
	}
	rng := rand.New(rand.NewSource(seed))
	tor, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	cyc, _ := gen.Cycle(64, gen.LatticeOptions{})
	regAdj, err := gen.RandomRegularAdjacency(60, 3, rng)
	if err != nil {
		return nil, err
	}
	reg, err := gen.EdgeInstance(regAdj)
	if err != nil {
		return nil, err
	}
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 150, Radius: 0.12, MaxNeighbors: 5}, rng)
	cases := []struct {
		name   string
		in     *mmlp.Instance
		radius int
	}{
		{"torus 16x16", tor, 1},
		{"torus 16x16", tor, 2},
		{"cycle n=64", cyc, 3},
		{"3-regular n=60", reg, 2},
		{"unit-disk n=150", disk, 1},
	}
	for _, cse := range cases {
		g := fullGraph(cse.in)
		start := time.Now()
		dedup, err := core.LocalAverageOpt(cse.in, g, cse.radius, core.AverageOptions{})
		if err != nil {
			return nil, err
		}
		dedupMS := time.Since(start).Seconds() * 1e3
		start = time.Now()
		ref, err := core.LocalAverageOpt(cse.in, g, cse.radius, core.AverageOptions{NoDedup: true})
		if err != nil {
			return nil, err
		}
		refMS := time.Since(start).Seconds() * 1e3
		agree := true
		for v := range ref.X {
			if dedup.X[v] != ref.X[v] || dedup.Beta[v] != ref.Beta[v] ||
				dedup.LocalOmega[v] != ref.LocalOmega[v] {
				agree = false
			}
		}
		t.AddRow(cse.name, I(cse.radius), I(cse.in.NumAgents()), I(dedup.LocalLPs),
			I(dedup.SolvesAvoided), F(dedupMS), F(refMS), F(refMS/dedupMS), B(agree))
	}
	return t, nil
}

// E14SessionProfile measures the Solver session against the one-shot
// entry points: a cold call (fresh session: CSR + ball index + every
// local LP), a warm repeat (retained state, no LP work at all), and an
// incremental re-solve after a k-coefficient weight update (only the
// agents whose radius-R balls see a touched row run again). The
// incremental output is checked bit-identical to a cold solve of the
// independently mutated instance — the acceptance property of the
// session layer — and the session must perform zero ball-index rebuilds
// after warm-up.
func E14SessionProfile(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Solver sessions: cold vs warm vs incremental (k-coefficient update)",
		Columns: []string{"instance", "R", "agents", "cold ms", "warm µs", "k", "incr ms", "re-solved", "cold/incr", "bit-identical", "rebuilds"},
		Note:    "'re-solved' counts agents re-examined by the incremental pass; 'bit-identical' compares against a cold solve of the mutated instance; 'rebuilds' counts ball-index builds after warm-up (must be 0)",
	}
	rng := rand.New(rand.NewSource(seed))
	tor, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	torW, _ := gen.Torus([]int{12, 12}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 150, Radius: 0.12, MaxNeighbors: 5}, rng)
	cases := []struct {
		name   string
		in     *mmlp.Instance
		radius int
		deltas int
	}{
		{"torus 16x16", tor, 1, 4},
		{"torus 16x16", tor, 2, 4},
		{"torus 12x12 weighted", torW, 1, 4},
		{"unit-disk n=150", disk, 1, 4},
	}
	for _, cse := range cases {
		start := time.Now()
		sess := core.NewSolverFromGraph(cse.in, fullGraph(cse.in))
		if _, err := sess.LocalAverage(cse.radius); err != nil {
			return nil, err
		}
		coldMS := time.Since(start).Seconds() * 1e3

		start = time.Now()
		if _, err := sess.LocalAverage(cse.radius); err != nil {
			return nil, err
		}
		warmUS := time.Since(start).Seconds() * 1e6
		buildsAfterWarm := sess.Stats().BallIndexBuilds

		// k random coefficient changes, mirrored onto a private copy of
		// the instance for the cold cross-check.
		deltas := make([]core.WeightDelta, 0, cse.deltas)
		var resUp, parUp []mmlp.CoeffUpdate
		for len(deltas) < cse.deltas {
			if rng.Intn(2) == 0 {
				i := rng.Intn(cse.in.NumResources())
				e := cse.in.Resource(i)[0]
				deltas = append(deltas, core.WeightDelta{Kind: core.ResourceWeight, Row: i, Agent: e.Agent, Coeff: 0.2 + 2*rng.Float64()})
				resUp = append(resUp, mmlp.CoeffUpdate{Row: i, Agent: e.Agent, Coeff: deltas[len(deltas)-1].Coeff})
			} else {
				k := rng.Intn(cse.in.NumParties())
				e := cse.in.Party(k)[0]
				deltas = append(deltas, core.WeightDelta{Kind: core.PartyWeight, Row: k, Agent: e.Agent, Coeff: 0.2 + 2*rng.Float64()})
				parUp = append(parUp, mmlp.CoeffUpdate{Row: k, Agent: e.Agent, Coeff: deltas[len(deltas)-1].Coeff})
			}
		}
		start = time.Now()
		if err := sess.UpdateWeights(deltas); err != nil {
			return nil, err
		}
		inc, err := sess.LocalAverage(cse.radius)
		if err != nil {
			return nil, err
		}
		incMS := time.Since(start).Seconds() * 1e3

		mut, err := cse.in.UpdateCoeffs(resUp, parUp)
		if err != nil {
			return nil, err
		}
		cold, err := core.LocalAverageOpt(mut, fullGraph(mut), cse.radius, core.AverageOptions{NoDedup: true})
		if err != nil {
			return nil, err
		}
		agree := true
		for v := range cold.X {
			if inc.X[v] != cold.X[v] || inc.Beta[v] != cold.Beta[v] || inc.LocalOmega[v] != cold.LocalOmega[v] {
				agree = false
			}
		}
		st := sess.Stats()
		t.AddRow(cse.name, I(cse.radius), I(cse.in.NumAgents()), F(coldMS), F(warmUS),
			I(cse.deltas), F(incMS), I(st.AgentsResolved), F(coldMS/incMS), B(agree),
			I(st.BallIndexBuilds-buildsAfterWarm))
	}
	return t, nil
}

// E12ShardedEngine measures the sharded worker-pool engine against the
// sequential reference and the goroutine-per-agent engine on the same
// protocol: every engine must produce bit-identical outputs and cost
// traces, and the sharded pool should approach the goroutine engine's
// parallel speedup with P goroutines instead of n. The wall-clock
// columns are indicative (single run, shared machine); the agreement
// column is the check.
func E12ShardedEngine(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Sharded worker-pool engine vs reference engines",
		Columns: []string{"instance", "engine", "wall ms", "speedup", "agree"},
		Note:    "'agree' requires outputs and cost traces bit-identical to the sequential reference; speedup is sequential/engine wall time",
	}
	torus, _ := gen.Torus([]int{12, 12}, gen.LatticeOptions{})
	geo, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 150, Radius: 0.12, MaxNeighbors: 5},
		rand.New(rand.NewSource(seed)))
	for _, ni := range []struct {
		name string
		in   *mmlp.Instance
	}{
		{"torus 12x12", torus},
		{"geometric n=150", geo},
	} {
		g := fullGraph(ni.in)
		nw, err := dist.NewNetwork(ni.in, g)
		if err != nil {
			return nil, err
		}
		proto := dist.AverageProtocol{Radius: 1}

		start := time.Now()
		ref, err := nw.RunSequential(proto)
		if err != nil {
			return nil, err
		}
		seqMS := time.Since(start).Seconds() * 1e3
		t.AddRow(ni.name, "sequential", F(seqMS), F(1), B(true))

		engines := []struct {
			name string
			run  func() (*dist.Trace, error)
		}{
			{"goroutines", func() (*dist.Trace, error) { return nw.RunGoroutines(proto) }},
			{"sharded P=2", func() (*dist.Trace, error) { return nw.RunSharded(proto, 2) }},
			{"sharded P=4", func() (*dist.Trace, error) { return nw.RunSharded(proto, 4) }},
			{"sharded P=8", func() (*dist.Trace, error) { return nw.RunSharded(proto, 8) }},
		}
		for _, e := range engines {
			start = time.Now()
			tr, err := e.run()
			if err != nil {
				return nil, err
			}
			ms := time.Since(start).Seconds() * 1e3
			agree := tr.Rounds == ref.Rounds && tr.Messages == ref.Messages &&
				tr.Payload == ref.Payload && tr.MaxNodePayload == ref.MaxNodePayload
			for v := range ref.X {
				if tr.X[v] != ref.X[v] {
					agree = false
				}
			}
			t.AddRow(ni.name, e.name, F(ms), F(seqMS/ms), B(agree))
		}
	}
	return t, nil
}

// E15ChurnProfile measures live topology churn — agents and support
// entries joining and leaving — against a warm Solver session: each
// round applies a random structural batch and re-solves incrementally
// (structures patched, only the balls around the touched vertices
// re-examined), timed against a cold rebuild (fresh CSR, ball index and
// every local LP) over the independently mutated instance. The
// incremental output is checked bit-identical to the cold one, and the
// session must perform zero CSR or ball-index rebuilds across the whole
// churn sequence — the acceptance property of the structural-update
// layer.
func E15ChurnProfile(seed int64) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Topology churn: incremental structural updates vs cold rebuild",
		Columns: []string{"instance", "R", "agents", "rounds", "ops", "cold ms", "incr ms", "cold/incr", "re-solved", "balls patched", "bit-identical", "rebuilds"},
		Note:    "ms columns are per-round averages; 're-solved' and 'balls patched' are totals across all rounds; 'rebuilds' counts CSR+ball-index builds after warm-up (must be 0)",
	}
	rng := rand.New(rand.NewSource(seed))
	tor, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	torW, _ := gen.Torus([]int{12, 12}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 150, Radius: 0.12, MaxNeighbors: 5}, rng)
	cases := []struct {
		name   string
		in     *mmlp.Instance
		radius int
		rounds int
		ops    int
	}{
		{"torus 16x16", tor, 1, 6, 3},
		{"torus 16x16", tor, 2, 6, 3},
		{"torus 12x12 weighted", torW, 1, 6, 3},
		{"unit-disk n=150", disk, 1, 6, 3},
	}
	for _, cse := range cases {
		sess := core.NewSolverFromGraph(cse.in, fullGraph(cse.in))
		if _, err := sess.LocalAverage(cse.radius); err != nil {
			return nil, err
		}
		warmStats := sess.Stats()

		var coldMS, incMS float64
		agree := true
		mirror := cse.in
		for round := 0; round < cse.rounds; round++ {
			ops, next := gen.RandomTopoBatch(mirror, rng, cse.ops)
			mirror = next

			start := time.Now()
			if _, err := sess.UpdateTopology(ops); err != nil {
				return nil, err
			}
			inc, err := sess.LocalAverage(cse.radius)
			if err != nil {
				return nil, err
			}
			incMS += time.Since(start).Seconds() * 1e3

			start = time.Now()
			coldSess := core.NewSolverFromGraph(mirror, fullGraph(mirror))
			cold, err := coldSess.LocalAverage(cse.radius)
			if err != nil {
				return nil, err
			}
			coldMS += time.Since(start).Seconds() * 1e3
			for v := range cold.X {
				if inc.X[v] != cold.X[v] || inc.Beta[v] != cold.Beta[v] || inc.LocalOmega[v] != cold.LocalOmega[v] {
					agree = false
				}
			}
		}
		st := sess.Stats()
		rounds := float64(cse.rounds)
		t.AddRow(cse.name, I(cse.radius), I(cse.in.NumAgents()), I(cse.rounds), I(cse.ops),
			F(coldMS/rounds), F(incMS/rounds), F(coldMS/incMS),
			I(st.AgentsResolved-warmStats.AgentsResolved), I(st.BallsPatched),
			B(agree), I(st.CSRBuilds+st.BallIndexBuilds-warmStats.CSRBuilds-warmStats.BallIndexBuilds))
	}
	return t, nil
}
