package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Note:    "a note",
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"T0 — demo", "a    bb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,bb\n1,2\n333,4\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong arity")
		}
	}()
	tbl := &Table{ID: "T1", Columns: []string{"a"}}
	tbl.AddRow("1", "2")
}

func TestFormatters(t *testing.T) {
	if F(1.23456789) != "1.235" {
		t.Fatalf("F = %q", F(1.23456789))
	}
	if I(42) != "42" {
		t.Fatalf("I = %q", I(42))
	}
	if B(true) != "ok" || B(false) != "FAIL" {
		t.Fatal("B formatting wrong")
	}
}

// TestExperimentsRunClean executes every registered experiment and
// requires (a) no error, (b) at least one data row, and (c) no FAIL cell
// in any row — the experiments embed their own assertions ("checks",
// "bound holds", "agree", ...) as ok/FAIL columns.
func TestExperimentsRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are a few seconds; skipped with -short")
	}
	for _, exp := range All {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tbl, err := exp.Run(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				for _, cell := range row {
					if cell == "FAIL" {
						t.Fatalf("experiment row failed: %v", row)
					}
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	// E7, E12, E13, E14 and E15 measure wall-clock time and are exempt;
	// all other experiments must be reproducible from the seed.
	for _, exp := range All {
		if exp.ID == "E7" || exp.ID == "E12" || exp.ID == "E13" || exp.ID == "E14" || exp.ID == "E15" {
			continue
		}
		a, err := exp.Run(99)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		b, err := exp.Run(99)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", exp.ID)
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s: cell (%d,%d) differs: %q vs %q", exp.ID, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}

func TestExperimentCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	// Every experiment table must export to CSV without error and with a
	// header plus one line per row.
	tbl, err := All[2].Run(1) // E3 is fast
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(tbl.Rows)+1 {
		t.Fatalf("csv has %d lines, want %d", lines, len(tbl.Rows)+1)
	}
}
