// Package apps implements the two applications that motivate the paper
// (Section 2): lifetime maximisation in two-tier sensor networks and fair
// bandwidth allocation in an ISP access network. Both reduce to max-min
// LPs; the reductions here follow the paper's constructions exactly.
package apps

import (
	"fmt"
	"math"
	"math/rand"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// Point is a position in the unit square.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// SensorNetwork is a two-tier sensor deployment: battery-powered sensors
// forward data through battery-powered relays towards a sink. Each
// wireless link (s, t) from sensor s to relay t is an agent of the
// max-min LP; transmitting one unit of data over the link consumes a
// fraction of both batteries. Each monitored area is a beneficiary party:
// it gains one unit per unit of data transmitted by any link whose sensor
// covers the area. Maximising min-per-area data received equals
// maximising network lifetime at equal average rates (Section 2).
type SensorNetwork struct {
	Sensors []Point
	Relays  []Point
	Areas   []Point

	// Links[j] = (sensor, relay) pairs within radio range.
	Links [][2]int

	// SensorCost[j] and RelayCost[j] are the battery fractions a_sv and
	// a_tv consumed by one unit of data on link j.
	SensorCost []float64
	RelayCost  []float64

	// Covers[k] lists the sensors able to monitor area k.
	Covers [][]int
}

// SensorNetworkOptions configures random deployment generation.
type SensorNetworkOptions struct {
	Sensors int
	Relays  int
	Areas   int
	// RadioRange is the maximum sensor–relay link distance.
	RadioRange float64
	// SenseRange is the maximum sensor–area monitoring distance.
	SenseRange float64
	// MaxLinksPerSensor caps |Iv|-side degrees; 0 means no cap.
	MaxLinksPerSensor int
}

// RandomSensorNetwork drops sensors, relays and monitored areas uniformly
// in the unit square and connects them by range. Sensors without any
// in-range relay are re-dropped near a relay, and areas without any
// covering sensor are re-centred on one, so the derived max-min LP always
// satisfies the paper's nonemptiness assumptions.
func RandomSensorNetwork(opt SensorNetworkOptions, rng *rand.Rand) *SensorNetwork {
	if opt.Sensors < 1 || opt.Relays < 1 || opt.Areas < 1 {
		panic("apps: need at least one sensor, relay and area")
	}
	sn := &SensorNetwork{}
	drop := func(n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		return pts
	}
	sn.Relays = drop(opt.Relays)
	sn.Sensors = drop(opt.Sensors)
	sn.Areas = drop(opt.Areas)

	// Guarantee every sensor reaches a relay.
	for s := range sn.Sensors {
		reachable := false
		for _, t := range sn.Relays {
			if sn.Sensors[s].Dist(t) <= opt.RadioRange {
				reachable = true
				break
			}
		}
		if !reachable {
			t := sn.Relays[rng.Intn(len(sn.Relays))]
			sn.Sensors[s] = Point{
				X: clamp01(t.X + (rng.Float64()-0.5)*opt.RadioRange),
				Y: clamp01(t.Y + (rng.Float64()-0.5)*opt.RadioRange),
			}
		}
	}
	// Build links.
	for s, sp := range sn.Sensors {
		links := 0
		for t, tp := range sn.Relays {
			if sp.Dist(tp) > opt.RadioRange {
				continue
			}
			if opt.MaxLinksPerSensor > 0 && links >= opt.MaxLinksPerSensor {
				break
			}
			links++
			sn.Links = append(sn.Links, [2]int{s, t})
			d := sp.Dist(tp)
			// Transmission energy grows with distance; reception is
			// cheaper. Scaled so a handful of active links exhausts a
			// battery.
			sn.SensorCost = append(sn.SensorCost, 0.05+0.45*d*d)
			sn.RelayCost = append(sn.RelayCost, 0.05+0.15*d*d)
		}
	}
	// Guarantee every area has a covering sensor with a link.
	sn.Covers = make([][]int, opt.Areas)
	for k := range sn.Areas {
		for s, sp := range sn.Sensors {
			if sp.Dist(sn.Areas[k]) <= opt.SenseRange {
				sn.Covers[k] = append(sn.Covers[k], s)
			}
		}
		if len(sn.Covers[k]) == 0 {
			s := rng.Intn(len(sn.Sensors))
			sn.Areas[k] = sn.Sensors[s]
			sn.Covers[k] = []int{s}
		}
	}
	return sn
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// Instance converts the deployment into the max-min LP of Section 2:
// agents = links, resources = sensor and relay batteries, parties =
// monitored areas. It returns an error if some area is covered only by
// sensors that have no link (the LP would have an empty party support).
func (sn *SensorNetwork) Instance() (*mmlp.Instance, error) {
	b := mmlp.NewBuilder(len(sn.Links))

	// Battery constraints. Resource ids: sensors first, then relays.
	sensorLinks := make([][]mmlp.Entry, len(sn.Sensors))
	relayLinks := make([][]mmlp.Entry, len(sn.Relays))
	for j, link := range sn.Links {
		s, t := link[0], link[1]
		sensorLinks[s] = append(sensorLinks[s], mmlp.Entry{Agent: j, Coeff: sn.SensorCost[j]})
		relayLinks[t] = append(relayLinks[t], mmlp.Entry{Agent: j, Coeff: sn.RelayCost[j]})
	}
	for _, entries := range sensorLinks {
		if len(entries) == 0 {
			continue // a sensor with no link consumes nothing
		}
		b.AddResource(entries...)
	}
	for _, entries := range relayLinks {
		if len(entries) == 0 {
			continue
		}
		b.AddResource(entries...)
	}

	// Monitored areas: party k gains one unit per unit of data sent on any
	// link whose sensor covers area k (c_kv = 1, as in the paper).
	linkOfSensor := make([][]int, len(sn.Sensors))
	for j, link := range sn.Links {
		linkOfSensor[link[0]] = append(linkOfSensor[link[0]], j)
	}
	for k, sensors := range sn.Covers {
		var entries []mmlp.Entry
		for _, s := range sensors {
			for _, j := range linkOfSensor[s] {
				entries = append(entries, mmlp.Entry{Agent: j, Coeff: 1})
			}
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("apps: area %d is covered only by sensors without links", k)
		}
		b.AddParty(entries...)
	}
	return b.Build()
}

// Lifetime interprets a feasible activity vector as a network lifetime:
// with per-round activities x, the first battery is exhausted after
// 1/max_i(Σ a_iv x_v) rounds; at x scaled to exhaust in exactly one unit
// of time, ω is the common per-area data rate. Lifetime returns that
// rate, i.e. the min-per-area received data.
func (sn *SensorNetwork) Lifetime(in *mmlp.Instance, x []float64) float64 {
	return in.Objective(x)
}

// Communication builds the LP instance together with its CSR-backed
// communication hypergraph — the pair every solver and distributed
// engine consumes.
func (sn *SensorNetwork) Communication() (*mmlp.Instance, *hypergraph.Graph, error) {
	in, err := sn.Instance()
	if err != nil {
		return nil, nil, err
	}
	return in, hypergraph.FromInstance(in, hypergraph.Options{}), nil
}
