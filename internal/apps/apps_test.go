package apps

import (
	"math/rand"
	"testing"

	"maxminlp/internal/core"
	"maxminlp/internal/lp"
)

func TestSensorNetworkInstanceValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		sn := RandomSensorNetwork(SensorNetworkOptions{
			Sensors: 5 + rng.Intn(40), Relays: 2 + rng.Intn(8), Areas: 1 + rng.Intn(10),
			RadioRange: 0.2 + 0.3*rng.Float64(), SenseRange: 0.2 + 0.2*rng.Float64(),
			MaxLinksPerSensor: 1 + rng.Intn(3),
		}, rng)
		in, err := sn.Instance()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if in.NumAgents() != len(sn.Links) {
			t.Fatalf("trial %d: %d agents, %d links", trial, in.NumAgents(), len(sn.Links))
		}
		if in.NumParties() != len(sn.Areas) {
			t.Fatalf("trial %d: %d parties, %d areas", trial, in.NumParties(), len(sn.Areas))
		}
	}
}

func TestSensorNetworkSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sn := RandomSensorNetwork(SensorNetworkOptions{
		Sensors: 15, Relays: 5, Areas: 6,
		RadioRange: 0.35, SenseRange: 0.3, MaxLinksPerSensor: 2,
	}, rng)
	in, err := sn.Instance()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := lp.SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Omega <= 0 {
		t.Fatalf("ω* = %v, want > 0 (every area is covered by construction)", opt.Omega)
	}
	safe := core.Safe(in)
	if v := in.Violation(safe); v > 1e-9 {
		t.Fatalf("safe infeasible: %v", v)
	}
	if got := sn.Lifetime(in, safe); got <= 0 || got > opt.Omega+1e-9 {
		t.Fatalf("safe lifetime %v outside (0, ω*=%v]", got, opt.Omega)
	}
}

func TestSensorNetworkDeterministicBySeed(t *testing.T) {
	opt := SensorNetworkOptions{
		Sensors: 12, Relays: 4, Areas: 5,
		RadioRange: 0.3, SenseRange: 0.25, MaxLinksPerSensor: 2,
	}
	a := RandomSensorNetwork(opt, rand.New(rand.NewSource(7)))
	b := RandomSensorNetwork(opt, rand.New(rand.NewSource(7)))
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different deployments")
	}
	for j := range a.Links {
		if a.Links[j] != b.Links[j] || a.SensorCost[j] != b.SensorCost[j] {
			t.Fatal("same seed produced different links")
		}
	}
}

func TestSensorNetworkRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero sensors")
		}
	}()
	RandomSensorNetwork(SensorNetworkOptions{Sensors: 0, Relays: 1, Areas: 1}, rand.New(rand.NewSource(1)))
}

func TestISPInstanceValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		net := RandomISP(ISPOptions{
			Customers: 1 + rng.Intn(15), LastMilesPerCustomer: 1 + rng.Intn(3),
			Routers: 1 + rng.Intn(8), RoutersPerLastMile: 1 + rng.Intn(3),
		}, rng)
		in, err := net.Instance()
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if in.NumParties() != net.Customers {
			t.Fatalf("%d parties, %d customers", in.NumParties(), net.Customers)
		}
		// Every routing option consumes exactly two resources: its
		// last-mile link and its router.
		for v := 0; v < in.NumAgents(); v++ {
			if got := len(in.AgentResources(v)); got != 2 {
				t.Fatalf("option %d consumes %d resources, want 2", v, got)
			}
		}
	}
}

func TestISPFairness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := RandomISP(ISPOptions{
		Customers: 8, LastMilesPerCustomer: 2, Routers: 4, RoutersPerLastMile: 2,
	}, rng)
	in, err := net.Instance()
	if err != nil {
		t.Fatal(err)
	}
	opt, err := lp.SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Omega <= 0 {
		t.Fatalf("ω* = %v, want > 0", opt.Omega)
	}
	// At the optimum, the minimum customer bandwidth equals ω; no
	// customer is below it.
	for k := 0; k < in.NumParties(); k++ {
		if in.PartyBenefit(k, opt.X) < opt.Omega-1e-7 {
			t.Fatalf("customer %d below the fair share", k)
		}
	}
}

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Fatalf("dist = %v, want 5", got)
	}
}

// TestCommunicationHelpers checks that both §2 applications hand out the
// instance together with a consistent CSR-backed communication graph.
func TestCommunicationHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sn := RandomSensorNetwork(SensorNetworkOptions{
		Sensors: 12, Relays: 4, Areas: 5,
		RadioRange: 0.4, SenseRange: 0.35, MaxLinksPerSensor: 2,
	}, rng)
	in, g, err := sn.Communication()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != in.NumAgents() {
		t.Fatalf("sensornet graph has %d vertices for %d agents", g.NumVertices(), in.NumAgents())
	}
	if g.CSR() == nil || g.CSR().NumAgents() != in.NumAgents() {
		t.Fatal("sensornet graph is missing its CSR incidence index")
	}

	net := RandomISP(ISPOptions{Customers: 5, LastMilesPerCustomer: 2, Routers: 3, RoutersPerLastMile: 2}, rng)
	in, g, err = net.Communication()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != in.NumAgents() {
		t.Fatalf("isp graph has %d vertices for %d agents", g.NumVertices(), in.NumAgents())
	}
	if g.CSR() == nil || g.CSR().Nonzeros() != in.Stats().Nonzeros {
		t.Fatal("isp CSR nonzeros disagree with the instance")
	}
}
