package apps

import (
	"fmt"
	"math/rand"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// ISPNetwork is the second application sketched in Section 2 of the
// paper: each beneficiary party is a major customer of an Internet
// service provider, each "sensor-like" resource is a bounded-capacity
// last-mile link between a customer and the ISP, and each "relay-like"
// resource is a bounded-capacity access router. An agent is a routing
// option (last-mile link, router) and the objective is to maximise the
// minimum bandwidth any customer receives.
type ISPNetwork struct {
	Customers int
	LastMiles int
	Routers   int

	// LastMileOf[l] is the customer served by last-mile link l.
	LastMileOf []int
	// Options[j] = (last-mile link, router) for routing option j.
	Options [][2]int
	// LastMileShare[j] and RouterShare[j] are the capacity fractions one
	// bandwidth unit of option j consumes.
	LastMileShare []float64
	RouterShare   []float64
}

// ISPOptions configures random ISP topologies.
type ISPOptions struct {
	Customers int
	// LastMilesPerCustomer is how many physical last-mile links each
	// customer has (≥ 1).
	LastMilesPerCustomer int
	Routers              int
	// RoutersPerLastMile is how many routers each last-mile link can be
	// homed to (≥ 1, capped at Routers).
	RoutersPerLastMile int
}

// RandomISP samples a random ISP topology.
func RandomISP(opt ISPOptions, rng *rand.Rand) *ISPNetwork {
	if opt.Customers < 1 || opt.LastMilesPerCustomer < 1 || opt.Routers < 1 || opt.RoutersPerLastMile < 1 {
		panic("apps: all ISP topology counts must be ≥ 1")
	}
	n := &ISPNetwork{Customers: opt.Customers, Routers: opt.Routers}
	perLM := min(opt.RoutersPerLastMile, opt.Routers)
	for c := 0; c < opt.Customers; c++ {
		for l := 0; l < opt.LastMilesPerCustomer; l++ {
			lm := len(n.LastMileOf)
			n.LastMileOf = append(n.LastMileOf, c)
			perm := rng.Perm(opt.Routers)[:perLM]
			for _, router := range perm {
				n.Options = append(n.Options, [2]int{lm, router})
				n.LastMileShare = append(n.LastMileShare, 0.5+rng.Float64()) // capacity ≈ 1/share units
				n.RouterShare = append(n.RouterShare, 0.1+0.4*rng.Float64())
			}
		}
	}
	n.LastMiles = len(n.LastMileOf)
	return n
}

// Instance converts the topology into a max-min LP: agents = routing
// options, resources = last-mile links and routers (unit capacity each),
// parties = customers with c = 1 per option that terminates at them.
func (n *ISPNetwork) Instance() (*mmlp.Instance, error) {
	b := mmlp.NewBuilder(len(n.Options))
	lastMileRows := make([][]mmlp.Entry, n.LastMiles)
	routerRows := make([][]mmlp.Entry, n.Routers)
	customerRows := make([][]mmlp.Entry, n.Customers)
	for j, o := range n.Options {
		lm, router := o[0], o[1]
		lastMileRows[lm] = append(lastMileRows[lm], mmlp.Entry{Agent: j, Coeff: n.LastMileShare[j]})
		routerRows[router] = append(routerRows[router], mmlp.Entry{Agent: j, Coeff: n.RouterShare[j]})
		customerRows[n.LastMileOf[lm]] = append(customerRows[n.LastMileOf[lm]], mmlp.Entry{Agent: j, Coeff: 1})
	}
	for _, row := range lastMileRows {
		if len(row) > 0 {
			b.AddResource(row...)
		}
	}
	for _, row := range routerRows {
		if len(row) > 0 {
			b.AddResource(row...)
		}
	}
	for c, row := range customerRows {
		if len(row) == 0 {
			return nil, fmt.Errorf("apps: customer %d has no routing option", c)
		}
		b.AddParty(row...)
	}
	return b.Build()
}

// Communication builds the LP instance together with its CSR-backed
// communication hypergraph — the pair every solver and distributed
// engine consumes.
func (n *ISPNetwork) Communication() (*mmlp.Instance, *hypergraph.Graph, error) {
	in, err := n.Instance()
	if err != nil {
		return nil, nil, err
	}
	return in, hypergraph.FromInstance(in, hypergraph.Options{}), nil
}
