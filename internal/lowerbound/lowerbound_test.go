package lowerbound

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"maxminlp/internal/core"
	"maxminlp/internal/gen"
	"maxminlp/internal/lp"
)

func buildOrSkip(t *testing.T, p Params) *Construction {
	t.Helper()
	c, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHypertreeShape(t *testing.T) {
	for _, tc := range []struct{ d, D, height int }{
		{2, 1, 3}, {2, 2, 3}, {3, 2, 5}, {1, 2, 3},
	} {
		tr := NewHypertree(tc.d, tc.D, tc.height)
		for level := 0; level <= tc.height; level++ {
			want := ExpectedLevelSize(tc.d, tc.D, level)
			if got := len(tr.Levels[level]); got != want {
				t.Fatalf("(d=%d,D=%d) level %d: %d nodes, want %d", tc.d, tc.D, level, got, want)
			}
		}
		// Every non-root node has a parent at the previous level.
		for v := 1; v < tr.NumNodes(); v++ {
			p := tr.Parent[v]
			if p < 0 || tr.Level[p] != tr.Level[v]-1 {
				t.Fatalf("node %d at level %d has parent %d at level %d", v, tr.Level[v], p, tr.Level[p])
			}
		}
		// Edge fan-outs: type I edges have d children, type II have D.
		for _, e := range tr.EdgesI {
			if len(e) != tc.d+1 {
				t.Fatalf("type I edge has %d members, want %d", len(e), tc.d+1)
			}
		}
		for _, e := range tr.EdgesII {
			if len(e) != tc.D+1 {
				t.Fatalf("type II edge has %d members, want %d", len(e), tc.D+1)
			}
		}
	}
}

func TestParamsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []Params{
		{DeltaVI: 1, DeltaVK: 2, R: 2, LocalHorizon: 1, Rng: rng},
		{DeltaVI: 2, DeltaVK: 2, R: 2, LocalHorizon: 1, Rng: rng}, // dD = 1
		{DeltaVI: 3, DeltaVK: 2, R: 1, LocalHorizon: 1, Rng: rng}, // R ≤ r
		{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 0, Rng: rng},
	}
	for i, p := range bad {
		if _, err := Build(p); err == nil {
			t.Fatalf("case %d: Build accepted invalid params %+v", i, p)
		}
	}
}

func TestTheoremBound(t *testing.T) {
	p := Params{DeltaVI: 3, DeltaVK: 2}
	if got := p.TheoremBound(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("ΔVI=3, ΔVK=2: bound %v, want 1.5 (Corollary 2: ΔVI/2)", got)
	}
	p = Params{DeltaVI: 4, DeltaVK: 3}
	want := 2.0 + 0.5 - 0.25
	if got := p.TheoremBound(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ΔVI=4, ΔVK=3: bound %v, want %v", got, want)
	}
}

// fullCheck builds the construction, runs the safe algorithm on S to pick
// p, derives S', and runs the complete proof checker.
func fullCheck(t *testing.T, params Params) (*Construction, *SPrime, *CheckReport) {
	t.Helper()
	c := buildOrSkip(t, params)
	x := core.Safe(c.S)
	if v := c.S.Violation(x); v > 1e-9 {
		t.Fatalf("safe solution infeasible on S: violation %v", v)
	}
	sp, err := c.DeriveSPrime(x)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Check(x, sp)
	if !rep.OK() {
		t.Fatalf("proof checks failed:\n%v", rep.Errors)
	}
	return c, sp, rep
}

func TestConstructionCorollary2Case(t *testing.T) {
	// ΔVI = 3, ΔVK = 2 (d = 2, D = 1): the Corollary-2 setting with 0/1
	// coefficients; template degree d^R D^(R-1) = 4 → projective plane
	// over GF(3).
	c, sp, rep := fullCheck(t, Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1})
	if c.Q.NumVertices() != 2*13 {
		t.Fatalf("template has %d vertices, want 26 (PG(2,3))", c.Q.NumVertices())
	}
	if rep.Girth != 6 {
		t.Fatalf("PG(2,3) incidence girth = %d, want 6", rep.Girth)
	}
	if got, want := c.S.NumAgents(), 26*c.Tree.NumNodes(); got != want {
		t.Fatalf("S has %d agents, want %d", got, want)
	}
	deg := c.S.Degrees()
	if deg.MaxVI != 3 || deg.MaxVK != 2 || deg.MaxIV != 1 || deg.MaxKV != 1 {
		t.Fatalf("degree bounds %+v violate the theorem restrictions (ΔVI=3, ΔVK=2, ΔIV=1, ΔKV=1)", deg)
	}
	if sp.Instance().NumAgents() >= c.S.NumAgents() {
		t.Fatal("S' should be strictly smaller than S")
	}
}

func TestConstructionTheorem1Case(t *testing.T) {
	// ΔVI = ΔVK = 3 (d = D = 2): template degree 8 → PG(2,7).
	c, _, rep := fullCheck(t, Params{DeltaVI: 3, DeltaVK: 3, R: 2, LocalHorizon: 1})
	deg := c.S.Degrees()
	if deg.MaxVI != 3 || deg.MaxVK != 3 || deg.MaxIV != 1 || deg.MaxKV != 1 {
		t.Fatalf("degree bounds %+v, want ΔVI=3, ΔVK=3, ΔIV=1, ΔKV=1", deg)
	}
	if rep.ViewsChecked != c.Tree.NumNodes() {
		t.Fatalf("checked %d views, want %d (all of T_p)", rep.ViewsChecked, c.Tree.NumNodes())
	}
}

func TestConstructionRandomTemplate(t *testing.T) {
	// ΔVI = 2, ΔVK = 3 (d = 1, D = 2): degree 1^2·2 = 2; no projective
	// plane of order 1, so the random generator with girth rejection runs.
	rng := rand.New(rand.NewSource(5))
	fullCheck(t, Params{DeltaVI: 2, DeltaVK: 3, R: 2, LocalHorizon: 1, Rng: rng})
}

func TestSafeRatioOnSPrimeMeetsCorollaryBound(t *testing.T) {
	// Corollary 2 (D = 1): the measured ratio of the safe algorithm on S'
	// must be at least ΔVI/2: the type-III parties receive 2/ΔVI from the
	// safe solution while ω*(S') ≥ 1.
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	x := core.Safe(c.S)
	sp, err := c.DeriveSPrime(x)
	if err != nil {
		t.Fatal(err)
	}
	// The safe algorithm is local with horizon 1 ≤ r, so its choices on
	// the agents of T_p coincide in S and S'. Run it directly on S'.
	xPrime := core.Safe(sp.Instance())
	got := sp.Instance().Objective(xPrime)
	opt, err := lp.SolveMaxMin(sp.Instance())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Omega < 1-1e-9 {
		t.Fatalf("ω*(S') = %v < 1 contradicts the witness", opt.Omega)
	}
	ratio := opt.Omega / got
	if bound := float64(params.DeltaVI) / 2; ratio < bound-1e-6 {
		t.Fatalf("measured safe ratio %v < Corollary-2 bound %v", ratio, bound)
	}
}

func TestSafeAgreesOnTreeAgentsBetweenSAndSPrime(t *testing.T) {
	// The defining consequence of identical views: a deterministic local
	// algorithm makes the same choice for T_p agents in S and S'.
	params := Params{DeltaVI: 3, DeltaVK: 3, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	xS := core.Safe(c.S)
	sp, err := c.DeriveSPrime(xS)
	if err != nil {
		t.Fatal(err)
	}
	xPrime := core.Safe(sp.Instance())
	for _, v := range sp.TreeAgents {
		local := sp.Restriction.LocalAgent(v)
		if xS[v] != xPrime[local] {
			t.Fatalf("agent %d: safe chooses %v in S but %v in S'", v, xS[v], xPrime[local])
		}
	}
}

func TestDeltaSelection(t *testing.T) {
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	// A biased solution: tree 0's leaves get 1, everything else 0. Then
	// δ(0) = #leaves > 0 and every neighbour tree w of 0 has δ(w) < 0.
	x := make([]float64, c.S.NumAgents())
	for _, v := range c.LeavesOf[0] {
		x[v] = 1
	}
	p, delta := c.SelectP(x)
	if p != 0 {
		t.Fatalf("SelectP chose %d, want 0", p)
	}
	if want := float64(len(c.LeavesOf[0])); delta != want {
		t.Fatalf("δ(0) = %v, want %v", delta, want)
	}
	var sum float64
	for q := 0; q < c.Q.NumVertices(); q++ {
		sum += c.Delta(q, x)
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("Σδ = %v ≠ 0", sum)
	}
}

func TestSPrimeHasUnconstrainedBoundary(t *testing.T) {
	// S' genuinely contains agents with Iv = ∅ near its boundary — the
	// degenerate case the paper's general assumptions exclude but its own
	// construction requires. This documents why RestrictKeepAll exists.
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	sp, err := c.BuildSPrime(0)
	if err != nil {
		t.Fatal(err)
	}
	sub := sp.Instance()
	unconstrained := 0
	for v := 0; v < sub.NumAgents(); v++ {
		if len(sub.AgentResources(v)) == 0 {
			unconstrained++
		}
	}
	if unconstrained == 0 {
		t.Skip("no unconstrained boundary agents for these parameters")
	}
	if !sub.AllowsUnconstrained() {
		t.Fatal("S' must be built with AllowUnconstrained")
	}
}

func TestExactWitness(t *testing.T) {
	for _, params := range []Params{
		{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}, // D = 1
		{DeltaVI: 3, DeltaVK: 3, R: 2, LocalHorizon: 1}, // D = 2
		{DeltaVI: 2, DeltaVK: 4, R: 2, LocalHorizon: 1}, // D = 3: 1/3 is not a binary fraction
	} {
		params.Rng = rand.New(rand.NewSource(1))
		c := buildOrSkip(t, params)
		sp, err := c.BuildSPrime(0)
		if err != nil {
			t.Fatal(err)
		}
		rep := c.CheckWitnessExact(sp)
		if !rep.OK() {
			t.Fatalf("ΔVK=%d: %v", params.DeltaVK, rep)
		}
	}
}

func TestDeriveSPrimeFromAverageSolution(t *testing.T) {
	// The δ-selection machinery must work for any feasible solution, not
	// just the symmetric safe one. Local averaging with R = 1 produces an
	// asymmetric solution on S.
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	g := c.H
	avg, err := core.LocalAverage(c.S, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.S.Violation(avg.X); v > 1e-9 {
		t.Fatalf("average solution infeasible on S: %v", v)
	}
	sp, err := c.DeriveSPrime(avg.X)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Check(avg.X, sp)
	if !rep.OK() {
		t.Fatalf("checks failed for average-derived S': %v", rep.Errors)
	}
}

func TestBuildSPrimeRejectsBadP(t *testing.T) {
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	if _, err := c.BuildSPrime(-1); err == nil {
		t.Fatal("negative p must fail")
	}
	if _, err := c.BuildSPrime(c.Q.NumVertices()); err == nil {
		t.Fatal("out-of-range p must fail")
	}
	if _, err := c.DeriveSPrime([]float64{1}); err == nil {
		t.Fatal("wrong-length solution must fail")
	}
}

func TestSPrimeWorksForEveryP(t *testing.T) {
	// The construction is symmetric: S' must check out regardless of
	// which tree is selected.
	params := Params{DeltaVI: 2, DeltaVK: 3, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	x := core.Safe(c.S)
	for p := 0; p < c.Q.NumVertices(); p += 5 {
		sp, err := c.BuildSPrime(p)
		if err != nil {
			t.Fatal(err)
		}
		rep := c.Check(x, sp)
		if !rep.OK() {
			t.Fatalf("p=%d: %v", p, rep.Errors)
		}
	}
}

func TestCustomTemplate(t *testing.T) {
	// A caller-supplied template must be validated for regularity and
	// girth.
	tmpl, err := gen.LongCycleBipartite(12)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{DeltaVI: 2, DeltaVK: 3, R: 2, LocalHorizon: 1, Template: tmpl}
	c := buildOrSkip(t, params)
	if c.Q.NumVertices() != 12 {
		t.Fatalf("template not used: %d vertices", c.Q.NumVertices())
	}
	// Wrong degree must be rejected.
	wrong, err := gen.GirthSixBipartite(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Params{DeltaVI: 2, DeltaVK: 3, R: 2, LocalHorizon: 1, Template: wrong}); err == nil {
		t.Fatal("wrong-degree template must fail")
	}
	// Short-girth template must be rejected: C4 for r=1 needs ≥ 6.
	short, err := gen.LongCycleBipartite(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Params{DeltaVI: 2, DeltaVK: 3, R: 2, LocalHorizon: 1, Template: short}); err == nil {
		t.Fatal("low-girth template must fail")
	}
}

func TestRenderFigure1(t *testing.T) {
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	var buf strings.Builder
	c.RenderFigure1(&buf)
	out := buf.String()
	for _, want := range []string{
		"Figure 1", "template graph Q", "type I below", "type III hyperedges", "girth 6",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	sp, err := c.BuildSPrime(0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	sp.RenderSPrime(&buf, c)
	if !strings.Contains(buf.String(), "witness x̂") {
		t.Fatalf("S' render missing witness line:\n%s", buf.String())
	}
}

func TestExactWitnessDetectsCorruption(t *testing.T) {
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	sp, err := c.BuildSPrime(0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one witness entry: either a resource stops summing to 1 or a
	// party loses its even-count; either way the exact checker must
	// object and name a culprit.
	for v := range sp.Witness {
		if sp.Witness[v] == 1 {
			sp.Witness[v] = 0
			break
		}
	}
	rep := c.CheckWitnessExact(sp)
	if rep.OK() {
		t.Fatal("exact checker accepted a corrupted witness")
	}
	if rep.String() == "" || (rep.FailedResource < 0 && rep.FailedParty < 0) {
		t.Fatalf("report does not name a culprit: %+v", rep)
	}
}

func TestCheckReportListsFailures(t *testing.T) {
	params := Params{DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1}
	c := buildOrSkip(t, params)
	x := core.Safe(c.S)
	sp, err := c.DeriveSPrime(x)
	if err != nil {
		t.Fatal(err)
	}
	// An infeasible "solution" violates the level-sum relation (6), which
	// holds for every feasible x; the checker must flag it.
	bad := make([]float64, len(x))
	for v := range bad {
		bad[v] = 10
	}
	rep := c.Check(bad, sp)
	if rep.LevelBound6OK {
		t.Fatal("equation (6) accepted an infeasible solution")
	}
	if rep.OK() {
		t.Fatal("report claims OK despite failures")
	}
}
