package lowerbound

import (
	"fmt"
	"math"

	"maxminlp/internal/hypergraph"
)

// CheckReport collects the verification of every structural fact the
// Theorem-1 proof relies on. All fields named *OK must be true for the
// construction to certify; Errors describes any failures.
type CheckReport struct {
	// Girth is the girth of the template graph Q (-1 when acyclic);
	// GirthOK certifies there is no cycle of fewer than 4r+2 edges.
	Girth   int
	GirthOK bool

	// LevelSizesOK certifies |T_p(ℓ)| matches the paper's formula
	// (dD)^(ℓ/2) resp. (dD)^((ℓ−1)/2)·d.
	LevelSizesOK bool

	// PairingOK certifies f is a fixed-point-free involution on the
	// leaves that always crosses between distinct hypertrees.
	PairingOK bool

	// DeltaSumZero certifies Σ_q δ(q) = 0 for the supplied solution and
	// DeltaPNonneg that the selected p has δ(p) ≥ 0 (Section 4.3).
	DeltaSumZero bool
	DeltaPNonneg bool

	// SPrimeForest certifies the hypergraph of S' is tree-like
	// (Section 4.4).
	SPrimeForest bool

	// WitnessFeasibleExact certifies Σ_v a_iv x̂_v = 1 exactly (within
	// floating tolerance) for every i ∈ I', and WitnessOmega is
	// min_{k∈K'} Σ_v c_kv x̂_v, which Section 4.5 proves equals 1.
	WitnessFeasibleExact bool
	WitnessOmega         float64

	// ViewsChecked counts the agents of T_p whose radius-r views were
	// compared between S and S'; ViewsIdentical certifies they all match
	// exactly, identifiers included (Section 4.6).
	ViewsChecked   int
	ViewsIdentical bool

	// LevelIdentity4 certifies equation (4) as an identity:
	// S(2R−1) = δ(p)/2 + ½·Σ_{v∈L_p}(x_v + x_{f(v)}).
	LevelIdentity4 bool
	// LevelBound6OK certifies equation (6): S(2j)+S(2j+1) ≤ (dD)^j for
	// every j, which must hold for any feasible solution of S.
	LevelBound6OK bool

	Errors []string
}

// OK reports whether every check passed.
func (r *CheckReport) OK() bool { return len(r.Errors) == 0 }

func (r *CheckReport) failf(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

const checkTol = 1e-9

// Check verifies the full construction against a feasible solution x of S
// (produced by the local algorithm under attack) and the S' derived from
// it.
func (c *Construction) Check(x []float64, sp *SPrime) *CheckReport {
	r := &CheckReport{}

	// Girth certificate for Q.
	r.Girth = c.QGraph.Girth()
	r.GirthOK = r.Girth < 0 || r.Girth >= c.MinCycle()
	if !r.GirthOK {
		r.failf("template graph has a cycle of %d < %d edges", r.Girth, c.MinCycle())
	}

	// Level cardinalities.
	r.LevelSizesOK = true
	for level, nodes := range c.Tree.Levels {
		want := ExpectedLevelSize(c.D1, c.D2, level)
		if len(nodes) != want {
			r.LevelSizesOK = false
			r.failf("level %d has %d nodes, want %d", level, len(nodes), want)
		}
	}

	// Pairing f.
	r.PairingOK = true
	leafCount := 0
	for v, f := range c.LeafPartner {
		if f < 0 {
			continue
		}
		leafCount++
		switch {
		case f == v:
			r.PairingOK = false
			r.failf("f(%d) = %d is a fixed point", v, v)
		case c.LeafPartner[f] != v:
			r.PairingOK = false
			r.failf("f(f(%d)) = %d ≠ %d", v, c.LeafPartner[f], v)
		case c.TreeOf[f] == c.TreeOf[v]:
			r.PairingOK = false
			r.failf("f(%d) = %d stays within tree %d", v, f, c.TreeOf[v])
		}
	}
	if want := c.Q.NumVertices() * c.Tree.NumLeaves(); leafCount != want {
		r.PairingOK = false
		r.failf("pairing covers %d leaves, want %d", leafCount, want)
	}

	// δ bookkeeping (equation (3)).
	var deltaSum float64
	for q := 0; q < c.Q.NumVertices(); q++ {
		deltaSum += c.Delta(q, x)
	}
	r.DeltaSumZero = math.Abs(deltaSum) <= checkTol*float64(len(x)+1)
	if !r.DeltaSumZero {
		r.failf("Σ_q δ(q) = %v ≠ 0", deltaSum)
	}
	deltaP := c.Delta(sp.P, x)
	r.DeltaPNonneg = deltaP >= -checkTol
	if !r.DeltaPNonneg {
		r.failf("δ(p) = %v < 0 for p = %d", deltaP, sp.P)
	}

	// S' is tree-like (Section 4.4): Berge-acyclicity of the hypergraph,
	// i.e. its vertex–hyperedge incidence graph is a forest. (The
	// 2-section graph trivially has triangles inside every hyperedge of
	// three or more agents; those are not cycles of the hypergraph.)
	r.SPrimeForest = hypergraph.BergeAcyclic(sp.Instance())
	if !r.SPrimeForest {
		r.failf("hypergraph of S' contains a Berge cycle")
	}

	// Witness feasibility and value (Section 4.5).
	sub := sp.Instance()
	r.WitnessFeasibleExact = true
	for i := 0; i < sub.NumResources(); i++ {
		got := sub.ResourceUsage(i, sp.Witness)
		if math.Abs(got-1) > checkTol {
			r.WitnessFeasibleExact = false
			r.failf("witness uses %v of resource %d, want exactly 1", got, i)
		}
	}
	r.WitnessOmega = sub.Objective(sp.Witness)
	if math.Abs(r.WitnessOmega-1) > checkTol {
		r.failf("witness achieves ω = %v, want 1", r.WitnessOmega)
	}

	// Identical radius-r views (Section 4.6).
	r.ViewsIdentical = true
	idsS := hypergraph.IdentityIDs()
	idsSub := hypergraph.RestrictionIDs(sp.Restriction)
	for _, v := range sp.TreeAgents {
		local := sp.Restriction.LocalAgent(v)
		if local < 0 {
			r.ViewsIdentical = false
			r.failf("tree agent %d missing from S'", v)
			continue
		}
		viewS := hypergraph.View(c.S, c.H, v, c.LocalHorizon, idsS)
		viewSub := hypergraph.View(sub, sp.H, local, c.LocalHorizon, idsSub)
		r.ViewsChecked++
		if viewS != viewSub {
			r.ViewsIdentical = false
			r.failf("radius-%d view of agent %d differs between S and S'", c.LocalHorizon, v)
		}
	}

	// Equation (4) as an identity.
	lhs := c.LevelSum(sp.P, 2*c.R-1, x)
	var pairSum float64
	for _, v := range c.LeavesOf[sp.P] {
		pairSum += x[v] + x[c.LeafPartner[v]]
	}
	rhs := deltaP/2 + pairSum/2
	r.LevelIdentity4 = math.Abs(lhs-rhs) <= checkTol*(1+math.Abs(lhs))
	if !r.LevelIdentity4 {
		r.failf("equation (4) identity fails: S(2R−1) = %v vs δ(p)/2 + ½Σ = %v", lhs, rhs)
	}

	// Equation (6) for the feasible x.
	r.LevelBound6OK = true
	for j := 0; j <= c.R-1; j++ {
		got := c.LevelSum(sp.P, 2*j, x)
		if 2*j+1 <= 2*c.R-1 {
			got += c.LevelSum(sp.P, 2*j+1, x)
		}
		bound := float64(pow(c.D1*c.D2, j))
		if got > bound+checkTol*bound {
			r.LevelBound6OK = false
			r.failf("equation (6) fails at j=%d: S(2j)+S(2j+1) = %v > (dD)^j = %v", j, got, bound)
		}
	}
	return r
}
