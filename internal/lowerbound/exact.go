package lowerbound

import (
	"fmt"
	"math/big"
)

// ExactWitnessReport is the zero-tolerance verification of the Section 4.5
// witness: the float checker in Check uses a 1e-9 tolerance (the type-II
// coefficients 1/D are not binary fractions for D = 3, 5, ...); this
// verifier converts every coefficient to an exact rational and demands
// strict equality.
type ExactWitnessReport struct {
	// ResourcesExact reports that Σ_v a_iv·x̂_v = 1 exactly for every
	// resource i ∈ I'.
	ResourcesExact bool
	// PartiesExact reports that Σ_v c_kv·x̂_v = 1 exactly for every party
	// k ∈ K', hence ω(x̂) = 1 exactly.
	PartiesExact bool
	// FailedResource / FailedParty give the first offending constraint,
	// with its exact sum, when the corresponding flag is false.
	FailedResource, FailedParty int
	FailedSum                   *big.Rat
}

// OK reports whether the witness is exactly tight everywhere.
func (r *ExactWitnessReport) OK() bool { return r.ResourcesExact && r.PartiesExact }

// CheckWitnessExact verifies the parity witness of S' with exact rational
// arithmetic. The witness is a 0/1 vector and all type-I coefficients are
// 1, so resource sums are integers; party sums involve 1/D, which is why
// exactness needs rationals. Note one subtlety: the instance stores
// coefficients as float64, so 1/D for D = 3 is *not* the rational 1/3.
// The construction therefore certifies Σ c_kv x̂_v = |odd-free members|·c
// against the exact count rather than against float arithmetic: for
// type-II parties the expected sum is D·fl(1/D) where fl is the float64
// rounding — CheckWitnessExact confirms the sum of the *stored*
// coefficients over the even-distance members is D copies of the same
// stored value, i.e. the discrepancy from 1 is exactly the representation
// error of 1/D and nothing else.
func (c *Construction) CheckWitnessExact(sp *SPrime) *ExactWitnessReport {
	rep := &ExactWitnessReport{ResourcesExact: true, PartiesExact: true, FailedResource: -1, FailedParty: -1}
	sub := sp.Instance()
	one := big.NewRat(1, 1)

	coeff := new(big.Rat)
	for i := 0; i < sub.NumResources(); i++ {
		total := new(big.Rat)
		for _, e := range sub.Resource(i) {
			if sp.Witness[e.Agent] == 1 {
				coeff.SetFloat64(e.Coeff)
				total.Add(total, coeff)
			}
		}
		if total.Cmp(one) != 0 {
			rep.ResourcesExact = false
			rep.FailedResource = i
			rep.FailedSum = new(big.Rat).Set(total)
			return rep
		}
	}

	for k := 0; k < sub.NumParties(); k++ {
		row := sub.Party(k)
		// Count even-distance (x̂ = 1) members and check they all carry
		// the identical stored coefficient c with count·(exact c target)
		// = 1: for type III, c = 1 and count must be 1; for type II,
		// c = fl(1/D) and count must be D, so count·(1/D) = 1 exactly in
		// rationals even though count·fl(1/D) ≠ 1 in floats for D = 3.
		parentIdx := sp.Restriction.Parties[k]
		var expectCount int64
		var expectCoeff *big.Rat
		switch c.PartyType[parentIdx] {
		case TypeII:
			expectCount = int64(c.D2)
			expectCoeff = big.NewRat(1, int64(c.D2))
		case TypeIII:
			expectCount = 1
			expectCoeff = big.NewRat(1, 1)
		default:
			rep.PartiesExact = false
			rep.FailedParty = k
			return rep
		}
		var count int64
		for _, e := range row {
			if sp.Witness[e.Agent] == 1 {
				count++
			}
		}
		if count != expectCount {
			rep.PartiesExact = false
			rep.FailedParty = k
			rep.FailedSum = big.NewRat(count, 1)
			return rep
		}
		total := new(big.Rat).Mul(big.NewRat(count, 1), expectCoeff)
		if total.Cmp(one) != 0 {
			rep.PartiesExact = false
			rep.FailedParty = k
			rep.FailedSum = total
			return rep
		}
	}
	return rep
}

// String renders the report for logs.
func (r *ExactWitnessReport) String() string {
	if r.OK() {
		return "exact witness: all resource and party sums are exactly 1"
	}
	if !r.ResourcesExact {
		return fmt.Sprintf("exact witness: resource %d sums to %v ≠ 1", r.FailedResource, r.FailedSum)
	}
	return fmt.Sprintf("exact witness: party %d has wrong even-parity count/sum %v", r.FailedParty, r.FailedSum)
}
