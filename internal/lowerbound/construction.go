package lowerbound

import (
	"fmt"
	"math/rand"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// Params configures the Section-4 construction.
type Params struct {
	// DeltaVI and DeltaVK are the support-size bounds ΔVI ≥ 2 and
	// ΔVK ≥ 2 of Theorem 1; the construction uses d = ΔVI−1 and
	// D = ΔVK−1 and requires d·D > 1.
	DeltaVI, DeltaVK int
	// R determines the hypertree height 2R−1; the theorem needs R > r.
	R int
	// LocalHorizon is r, the horizon of the local algorithm being fooled;
	// the template graph must have no cycle of fewer than 4r+2 edges and
	// S' extends 2r beyond the leaves of T_p.
	LocalHorizon int
	// Template optionally supplies the graph Q; when nil, a certified
	// high-girth regular bipartite graph is generated (deterministically
	// from a projective plane when the required degree is p+1 for a prime
	// p and r = 1, randomly with girth rejection otherwise).
	Template *gen.Bipartite
	// Rng seeds random template generation; may be nil when Template is
	// given or a projective plane applies.
	Rng *rand.Rand
}

// TheoremBound returns the inapproximability bound of Theorem 1,
// ΔVI/2 + 1/2 − 1/(2ΔVK−2), below which no local algorithm can
// approximate the max-min LP. For ΔVK = 2 (D = 1) this is the Corollary 2
// bound ΔVI/2.
func (p Params) TheoremBound() float64 {
	return float64(p.DeltaVI)/2 + 0.5 - 1/(2*float64(p.DeltaVK)-2)
}

// Degree returns the required regularity of the template graph Q,
// dᴿ·Dᴿ⁻¹ — also the number of leaves of each hypertree.
func (p Params) Degree() int {
	d, D := p.DeltaVI-1, p.DeltaVK-1
	return pow(d, p.R) * pow(D, p.R-1)
}

// MinCycle returns the shortest cycle length the template graph must
// avoid being below: 4r+2.
func (p Params) MinCycle() int { return 4*p.LocalHorizon + 2 }

// Construction is the instantiated instance S with all bookkeeping needed
// to derive S' and to check the proof.
type Construction struct {
	Params
	D1, D2 int // d = ΔVI−1 and D = ΔVK−1

	// Q is the template graph; QGraph its distance/girth view.
	Q      *gen.Bipartite
	QGraph *hypergraph.Graph

	// Tree is the prototype hypertree (identical for every q ∈ Q).
	Tree *Hypertree

	// S is the instance and H its communication hypergraph.
	S *mmlp.Instance
	H *hypergraph.Graph

	// TreeOf[v] is the Q-vertex whose hypertree contains agent v;
	// LevelOf[v] is the level of v within its tree.
	TreeOf  []int
	LevelOf []int
	// LeafPartner[v] = f(v) for leaf agents, -1 otherwise (equation (3)'s
	// pairing permutation).
	LeafPartner []int
	// LeavesOf[q] lists the leaf agents of tree q in adjacency order.
	LeavesOf [][]int

	// PartyType classifies every party of S as TypeII or TypeIII (every
	// resource is TypeI by construction).
	PartyType []EdgeType
}

// agentID maps (tree q, node id within tree) to the global agent index.
func (c *Construction) agentID(q, node int) int { return q*c.Tree.NumNodes() + node }

// Build constructs the instance S of Section 4.2.
func Build(p Params) (*Construction, error) {
	if p.DeltaVI < 2 || p.DeltaVK < 2 {
		return nil, fmt.Errorf("lowerbound: need ΔVI ≥ 2 and ΔVK ≥ 2, got %d and %d", p.DeltaVI, p.DeltaVK)
	}
	d, D := p.DeltaVI-1, p.DeltaVK-1
	if d*D <= 1 {
		return nil, fmt.Errorf("lowerbound: need d·D > 1 (ΔVI = ΔVK = 2 yields only the trivial bound)")
	}
	if p.LocalHorizon < 1 {
		return nil, fmt.Errorf("lowerbound: local horizon must be ≥ 1, got %d", p.LocalHorizon)
	}
	if p.R <= p.LocalHorizon {
		return nil, fmt.Errorf("lowerbound: need R > r, got R=%d r=%d", p.R, p.LocalHorizon)
	}

	c := &Construction{Params: p, D1: d, D2: D}
	degree := p.Degree()
	minCycle := p.MinCycle()

	// Template graph Q.
	switch {
	case p.Template != nil:
		if !p.Template.IsRegular(degree) {
			return nil, fmt.Errorf("lowerbound: template is not %d-regular", degree)
		}
		c.Q = p.Template
	case p.LocalHorizon == 1 && isPrimePlus1(degree):
		b, err := gen.ProjectivePlaneIncidence(degree - 1)
		if err != nil {
			return nil, err
		}
		c.Q = b
	default:
		// Deterministic for degree ≤ 2 or girth 6 (any degree); random
		// rejection otherwise, which needs Params.Rng and only succeeds
		// for small degrees.
		b, err := gen.RegularBipartiteWithGirth(degree, minCycle, 0, p.Rng)
		if err != nil {
			return nil, err
		}
		c.Q = b
	}
	c.QGraph = c.Q.Graph()
	if g := c.QGraph.Girth(); g >= 0 && g < minCycle {
		return nil, fmt.Errorf("lowerbound: template graph has a cycle of %d < %d edges", g, minCycle)
	}

	// One hypertree per Q-vertex.
	c.Tree = NewHypertree(d, D, 2*p.R-1)
	if c.Tree.NumLeaves() != degree {
		return nil, fmt.Errorf("lowerbound: hypertree has %d leaves, want %d", c.Tree.NumLeaves(), degree)
	}
	nQ := c.Q.NumVertices()
	nAgents := nQ * c.Tree.NumNodes()

	c.TreeOf = make([]int, nAgents)
	c.LevelOf = make([]int, nAgents)
	c.LeafPartner = make([]int, nAgents)
	for v := range c.LeafPartner {
		c.LeafPartner[v] = -1
	}
	for q := 0; q < nQ; q++ {
		for node := 0; node < c.Tree.NumNodes(); node++ {
			v := c.agentID(q, node)
			c.TreeOf[v] = q
			c.LevelOf[v] = c.Tree.Level[node]
		}
	}

	// Associate the leaves of tree q with the edges of Q at q, in
	// adjacency-list order, and derive the pairing f.
	c.LeavesOf = make([][]int, nQ)
	for q := 0; q < nQ; q++ {
		leaves := c.Tree.Leaves()
		c.LeavesOf[q] = make([]int, len(leaves))
		for idx, node := range leaves {
			c.LeavesOf[q][idx] = c.agentID(q, node)
		}
	}
	for q := 0; q < nQ; q++ {
		for idx, w := range c.QGraph.Neighbors(q) {
			v := c.LeavesOf[q][idx]
			back := indexOf(c.QGraph.Neighbors(w), q)
			c.LeafPartner[v] = c.LeavesOf[w][back]
		}
	}

	// Assemble the instance.
	b := mmlp.NewBuilder(nAgents)
	for q := 0; q < nQ; q++ {
		for _, edge := range c.Tree.EdgesI {
			agents := make([]int, len(edge))
			for j, node := range edge {
				agents[j] = c.agentID(q, node)
			}
			b.AddUnitResource(agents...)
		}
	}
	for q := 0; q < nQ; q++ {
		for _, edge := range c.Tree.EdgesII {
			agents := make([]int, len(edge))
			for j, node := range edge {
				agents[j] = c.agentID(q, node)
			}
			b.AddUniformParty(1/float64(D), agents...)
			c.PartyType = append(c.PartyType, TypeII)
		}
	}
	for v, f := range c.LeafPartner {
		if f >= 0 && v < f { // each pair once
			b.AddUniformParty(1, v, f)
			c.PartyType = append(c.PartyType, TypeIII)
		}
	}
	in, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lowerbound: assembling S: %w", err)
	}
	c.S = in
	c.H = hypergraph.FromInstance(in, hypergraph.Options{})
	return c, nil
}

func isPrimePlus1(degree int) bool {
	p := degree - 1
	if p < 2 {
		return false
	}
	for d := 2; d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}

func indexOf(xs []int, x int) int {
	for j, v := range xs {
		if v == x {
			return j
		}
	}
	panic(fmt.Sprintf("lowerbound: %d not in %v", x, xs))
}

// Delta computes δ(q) = Σ_{v∈Lq} (x_v − x_{f(v)}) of equation (3) for a
// solution x of S.
func (c *Construction) Delta(q int, x []float64) float64 {
	var s float64
	for _, v := range c.LeavesOf[q] {
		s += x[v] - x[c.LeafPartner[v]]
	}
	return s
}

// SelectP returns the Q-vertex p maximising δ(p) (ties broken towards the
// smallest index). The proof only needs δ(p) ≥ 0, which always holds for
// the maximiser because Σ_q δ(q) = 0.
func (c *Construction) SelectP(x []float64) (p int, delta float64) {
	p, delta = 0, c.Delta(0, x)
	for q := 1; q < c.Q.NumVertices(); q++ {
		if dq := c.Delta(q, x); dq > delta {
			p, delta = q, dq
		}
	}
	return p, delta
}
