// Package lowerbound implements the adversarial construction of Section 4
// of the paper, which proves Theorem 1: no local algorithm approximates
// max-min LPs within less than ΔVI/2 + 1/2 − 1/(2ΔVK − 2).
//
// The construction has three layers:
//
//  1. a template graph Q — a dᴿDᴿ⁻¹-regular bipartite graph with no cycle
//     of fewer than 4r+2 edges (package gen supplies both certified random
//     samples and deterministic projective-plane incidence graphs);
//  2. one complete (d, D)-ary hypertree of height 2R−1 per vertex of Q,
//     whose leaves are matched across trees along the edges of Q
//     (hyperedge types I, II and III of Figure 1);
//  3. the derived instances S (the full construction) and S' (the
//     restriction around a tree T_p with δ(p) ≥ 0, Section 4.3).
//
// A Checker verifies every structural fact the proof relies on: the girth
// certificate, the tree-likeness of S', the feasible witness x̂ with
// ω = 1, the identity of radius-r views in S and S', and the level-sum
// inequalities (3)–(6).
package lowerbound

import "fmt"

// EdgeType distinguishes the three hyperedge types of the construction.
type EdgeType int8

const (
	// TypeI hyperedges join a node at an even level to its d children;
	// they become resources with a_iv = 1.
	TypeI EdgeType = iota
	// TypeII hyperedges join a node at an odd level to its D children;
	// they become beneficiary parties with c_kv = 1/D.
	TypeII
	// TypeIII hyperedges pair leaves of different hypertrees along the
	// edges of Q; they become parties with c_kv = 1.
	TypeIII
)

func (t EdgeType) String() string {
	switch t {
	case TypeI:
		return "I"
	case TypeII:
		return "II"
	case TypeIII:
		return "III"
	}
	return fmt.Sprintf("EdgeType(%d)", int(t))
}

// Hypertree is a complete (d, D)-ary hypertree of height h (Section 4.2):
// starting from a single root at level 0, every node at an even level
// ℓ < h sprouts a type-I hyperedge with d new children, and every node at
// an odd level ℓ < h sprouts a type-II hyperedge with D new children.
type Hypertree struct {
	D1, D2 int // d and D
	Height int

	// Levels[ℓ] lists the node ids at level ℓ (ids are 0..NumNodes-1 in
	// creation order; the root is 0).
	Levels [][]int
	// Parent[v] is v's parent node, -1 for the root.
	Parent []int
	// Level[v] is the level of node v.
	Level []int
	// EdgesI and EdgesII list the hyperedges: each entry is the parent
	// followed by its children.
	EdgesI  [][]int
	EdgesII [][]int
}

// NewHypertree builds the complete (d, D)-ary hypertree of the given
// height. Height 0 is a single root with no edges.
func NewHypertree(d, D, height int) *Hypertree {
	if d < 1 || D < 1 || height < 0 {
		panic(fmt.Sprintf("lowerbound: invalid hypertree parameters d=%d D=%d height=%d", d, D, height))
	}
	t := &Hypertree{D1: d, D2: D, Height: height}
	t.Levels = append(t.Levels, []int{0})
	t.Parent = append(t.Parent, -1)
	t.Level = append(t.Level, 0)
	next := 1
	for h := 1; h <= height; h++ {
		parentLevel := h - 1
		fan := d
		if parentLevel%2 == 1 {
			fan = D
		}
		var level []int
		for _, p := range t.Levels[parentLevel] {
			edge := []int{p}
			for c := 0; c < fan; c++ {
				v := next
				next++
				t.Parent = append(t.Parent, p)
				t.Level = append(t.Level, h)
				level = append(level, v)
				edge = append(edge, v)
			}
			if parentLevel%2 == 0 {
				t.EdgesI = append(t.EdgesI, edge)
			} else {
				t.EdgesII = append(t.EdgesII, edge)
			}
		}
		t.Levels = append(t.Levels, level)
	}
	return t
}

// NumNodes returns the total node count.
func (t *Hypertree) NumNodes() int { return len(t.Parent) }

// NumLeaves returns the number of nodes at the deepest level.
func (t *Hypertree) NumLeaves() int { return len(t.Levels[t.Height]) }

// Leaves returns the node ids at the deepest level, in creation order.
func (t *Hypertree) Leaves() []int { return t.Levels[t.Height] }

// ExpectedLevelSize returns the level cardinality formula of the paper:
// (dD)^(ℓ/2) for even ℓ and (dD)^((ℓ−1)/2)·d for odd ℓ.
func ExpectedLevelSize(d, D, level int) int {
	if level%2 == 0 {
		return pow(d*D, level/2)
	}
	return pow(d*D, (level-1)/2) * d
}

func pow(base, exp int) int {
	out := 1
	for e := 0; e < exp; e++ {
		out *= base
	}
	return out
}
