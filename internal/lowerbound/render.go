package lowerbound

import (
	"fmt"
	"io"
	"strings"
)

// RenderFigure1 writes an ASCII rendition of the paper's Figure 1 for
// this construction: the template graph Q, one complete (d,D)-ary
// hypertree with its type-I and type-II hyperedges level by level, and
// the type-III pairing of leaves along the edges of Q.
func (c *Construction) RenderFigure1(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 — construction of S  (d=%d, D=%d, r=%d, R=%d)\n\n", c.D1, c.D2, c.LocalHorizon, c.R)
	fmt.Fprintf(w, "(a) template graph Q: %d-regular bipartite, %d+%d vertices, girth %d (no cycle of < %d edges)\n",
		c.Params.Degree(), c.Q.Left, c.Q.Right, c.QGraph.Girth(), c.MinCycle())
	fmt.Fprintf(w, "    vertex 0 — leaves of T_0 pair with trees %v\n\n", c.QGraph.Neighbors(0))

	fmt.Fprintf(w, "(b) one complete (%d,%d)-ary hypertree of height %d (%d nodes, %d leaves):\n",
		c.D1, c.D2, 2*c.R-1, c.Tree.NumNodes(), c.Tree.NumLeaves())
	for level, nodes := range c.Tree.Levels {
		kind := ""
		switch {
		case level == 0:
			kind = "root"
		case level == 2*c.R-1:
			kind = "leaves"
		}
		edge := ""
		if level < 2*c.R-1 {
			if level%2 == 0 {
				edge = fmt.Sprintf("— type I below (resource, %d+%d agents, a=1)", 1, c.D1)
			} else {
				edge = fmt.Sprintf("— type II below (party, %d+%d agents, c=1/%d)", 1, c.D2, c.D2)
			}
		}
		fmt.Fprintf(w, "    level %d: %3d node(s) %-7s %s\n", level, len(nodes), kind, edge)
	}

	fmt.Fprintf(w, "\n(c) type III hyperedges (parties, 2 agents, c=1) pair leaves across trees:\n")
	shown := 0
	for v, f := range c.LeafPartner {
		if f >= 0 && v < f && shown < 4 {
			fmt.Fprintf(w, "    {agent %d (tree %d), agent %d (tree %d)}\n", v, c.TreeOf[v], f, c.TreeOf[f])
			shown++
		}
	}
	total := 0
	for v, f := range c.LeafPartner {
		if f >= 0 && v < f {
			total++
		}
	}
	if total > shown {
		fmt.Fprintf(w, "    ... %d pairs in total (one per edge of Q)\n", total)
	}
	fmt.Fprintf(w, "\nS: %s\n", c.S.Stats())
}

// RenderSPrime sketches the restricted instance S' of Section 4.3 and its
// parity witness, highlighting the grey/black distinction of Figure 1(c):
// grey = kept in S', black = witness value 1.
func (sp *SPrime) RenderSPrime(w io.Writer, c *Construction) {
	sub := sp.Instance()
	fmt.Fprintf(w, "S' around T_%d: %s\n", sp.P, sub.Stats())
	ones := 0
	for _, x := range sp.Witness {
		if x == 1 {
			ones++
		}
	}
	fmt.Fprintf(w, "witness x̂: %d of %d agents at 1 (even distance from the root), ω(x̂) = %s\n",
		ones, sub.NumAgents(), trimFloat(sub.Objective(sp.Witness)))
	unconstrained := 0
	for v := 0; v < sub.NumAgents(); v++ {
		if len(sub.AgentResources(v)) == 0 {
			unconstrained++
		}
	}
	fmt.Fprintf(w, "boundary agents with Iv = ∅: %d (the degenerate case S' genuinely needs)\n", unconstrained)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.6f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
