package lowerbound

import (
	"fmt"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// SPrime is the restricted instance S' of Section 4.3, built around the
// hypertree T_p of a vertex p with δ(p) ≥ 0.
type SPrime struct {
	P int // the chosen Q-vertex
	// Restriction maps the sub-instance back to S; Restriction.Sub is S'.
	Restriction *mmlp.Restriction
	// H is the communication hypergraph of S'.
	H *hypergraph.Graph
	// TreeAgents lists the agents of T_p (in S's numbering).
	TreeAgents []int
	// Root is S's agent index of the root node of T_p.
	Root int
	// Witness is the feasible solution x̂ of Section 4.5 (indexed by S'
	// local agent indices): x̂_v = 1 iff d_{H'}(root, v) is even.
	Witness []float64
}

// Instance returns the sub-instance S'.
func (sp *SPrime) Instance() *mmlp.Instance { return sp.Restriction.Sub }

// BuildSPrime derives S' for the given Q-vertex p: the agent set is
// V' = T_p ∪ ⋃_{u∈L_p} B_H(u, 2r), the resources are I' = {i : Vi ⊆ V'}
// and the parties K' = {k : Vk ⊆ V'}, with all coefficients and
// identifiers inherited from S. It also computes the parity witness x̂.
func (c *Construction) BuildSPrime(p int) (*SPrime, error) {
	if p < 0 || p >= c.Q.NumVertices() {
		return nil, fmt.Errorf("lowerbound: p=%d out of range [0,%d)", p, c.Q.NumVertices())
	}
	treeSize := c.Tree.NumNodes()
	agents := make([]int, 0, treeSize)
	for node := 0; node < treeSize; node++ {
		agents = append(agents, c.agentID(p, node))
	}
	treeAgents := append([]int(nil), agents...)
	for _, leaf := range c.LeavesOf[p] {
		agents = append(agents, c.H.Ball(leaf, 2*c.LocalHorizon)...)
	}
	restr := c.S.RestrictKeepAll(agents)

	sp := &SPrime{
		P:           p,
		Restriction: restr,
		H:           hypergraph.FromInstance(restr.Sub, hypergraph.Options{}),
		TreeAgents:  treeAgents,
		Root:        c.agentID(p, 0),
	}

	// Parity witness x̂ (Section 4.5): 1 on even distances from the root
	// of T_p, 0 on odd ones; agents unreachable from the root (possible
	// only outside every kept hyperedge) get 0.
	rootLocal := restr.LocalAgent(sp.Root)
	if rootLocal < 0 {
		return nil, fmt.Errorf("lowerbound: root of T_%d missing from S'", p)
	}
	dist := sp.H.DistancesFrom(rootLocal)
	sp.Witness = make([]float64, len(dist))
	for v, dv := range dist {
		if dv >= 0 && dv%2 == 0 {
			sp.Witness[v] = 1
		}
	}
	return sp, nil
}

// DeriveSPrime applies a solution of S (typically produced by the local
// algorithm under attack) to select p via equation (3) and builds S'.
func (c *Construction) DeriveSPrime(xOnS []float64) (*SPrime, error) {
	if len(xOnS) != c.S.NumAgents() {
		return nil, fmt.Errorf("lowerbound: solution has %d entries, S has %d agents", len(xOnS), c.S.NumAgents())
	}
	p, delta := c.SelectP(xOnS)
	if delta < 0 {
		return nil, fmt.Errorf("lowerbound: internal error: max δ(p) = %v < 0 contradicts Σδ = 0", delta)
	}
	return c.BuildSPrime(p)
}

// RestrictSolution projects a solution of S onto the agents of S'.
func (sp *SPrime) RestrictSolution(xOnS []float64) []float64 {
	out := make([]float64, len(sp.Restriction.Agents))
	for local, parent := range sp.Restriction.Agents {
		out[local] = xOnS[parent]
	}
	return out
}

// LevelSum computes S(ℓ) = Σ_{v∈T_p(ℓ)} x_v for a solution of S
// (equation preceding (4) in Section 4.6).
func (c *Construction) LevelSum(p, level int, xOnS []float64) float64 {
	var s float64
	for _, node := range c.Tree.Levels[level] {
		s += xOnS[c.agentID(p, node)]
	}
	return s
}
