package core

import (
	"math/rand"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// TestSessionObsBitIdentity runs the full session lifecycle — cold
// solve, warm repeat, weight update, topology update — twice, once with
// metrics attached and once without, and requires every output
// bit-identical: instrumentation must observe the pipeline, never steer
// it.
func TestSessionObsBitIdentity(t *testing.T) {
	build := func() (*Solver, *mmlp.Instance) {
		rng := rand.New(rand.NewSource(11))
		in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
		return NewSolverFromGraph(in, sessionGraph(in)), in
	}
	plain, in := build()
	instrumented, _ := build()
	reg := obs.NewRegistry()
	m := obs.NewSolveMetrics(reg)
	instrumented.SetObs(m)

	run := func(s *Solver) []*AverageResult {
		var out []*AverageResult
		step := func(r *AverageResult, err error) {
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		step(s.LocalAverage(2)) // cold
		step(s.LocalAverage(2)) // warm
		rng := rand.New(rand.NewSource(7))
		if err := s.UpdateWeights(randomDeltas(in, rng, 3)); err != nil {
			t.Fatal(err)
		}
		step(s.LocalAverage(2)) // incremental
		if _, err := s.UpdateTopology([]mmlp.TopoUpdate{
			mmlp.AddAgent(), mmlp.AddResourceEdge(0, in.NumAgents(), 1.5),
		}); err != nil {
			t.Fatal(err)
		}
		step(s.LocalAverage(2)) // incremental after structural update
		return out
	}

	want := run(plain)
	got := run(instrumented)
	labels := []string{"cold", "warm", "post-weights", "post-topo"}
	for i := range want {
		sameAverageResult(t, labels[i]+" (obs on vs off)", got[i], want[i])
	}

	// The instrumented run must actually have recorded its pipeline.
	if m.FullSolves.Value() != 1 {
		t.Errorf("FullSolves = %d, want 1", m.FullSolves.Value())
	}
	if m.WarmHits.Value() != 1 {
		t.Errorf("WarmHits = %d, want 1", m.WarmHits.Value())
	}
	if m.IncrementalSolves.Value() != 2 {
		t.Errorf("IncrementalSolves = %d, want 2", m.IncrementalSolves.Value())
	}
	if m.PhaseLPSolve.Count() == 0 {
		t.Error("no lp_solve phase latencies recorded")
	}
	if m.PhaseFingerprint.Count() == 0 {
		t.Error("no fingerprint phase latencies recorded")
	}
	if m.CacheMisses.Value() == 0 {
		t.Error("no cache misses recorded despite LPs being solved")
	}
	if m.WeightInvalidations.Value() == 0 {
		t.Error("weight update invalidated no balls")
	}
	if m.TopoInvalidations.Value() == 0 {
		t.Error("topology update invalidated no balls")
	}
	if m.WeightUpdateSeconds.Count() != 1 || m.TopoUpdateSeconds.Count() != 1 {
		t.Errorf("update latency counts = %d/%d, want 1/1",
			m.WeightUpdateSeconds.Count(), m.TopoUpdateSeconds.Count())
	}
	if m.LP.Solves.Value() == 0 {
		t.Error("pooled workspaces recorded no LP solves")
	}
	if m.LP.Pivots.Value() == 0 {
		t.Error("pooled workspaces recorded no pivots")
	}
	st := instrumented.Stats()
	if int(m.AgentsResolved.Value()) != st.AgentsResolved {
		t.Errorf("AgentsResolved metric %d != stats %d", m.AgentsResolved.Value(), st.AgentsResolved)
	}
}

// TestSolverStatsAgreeWithObs cross-checks the legacy SolverStats
// counters against the metric registry on the counters both record.
func TestSolverStatsAgreeWithObs(t *testing.T) {
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	reg := obs.NewRegistry()
	m := obs.NewSolveMetrics(reg)
	s.SetObs(m)
	for i := 0; i < 3; i++ {
		if _, err := s.LocalAverage(1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if int(m.FullSolves.Value()) != st.FullSolves {
		t.Errorf("FullSolves metric %d != stats %d", m.FullSolves.Value(), st.FullSolves)
	}
	if int(m.WarmHits.Value()) != st.WarmHits {
		t.Errorf("WarmHits metric %d != stats %d", m.WarmHits.Value(), st.WarmHits)
	}
}
