package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// This file is the flat-array execution path of the Theorem-3 round
// loops. The map/slice-of-slice bookkeeping of the original
// implementation (per-agent ball maps, per-resource union maps) is
// replaced by the hypergraph CSR index, a radius-R BallIndex computed
// once, and epoch-stamped scratch arrays that are reset in O(|touched|)
// — so the per-agent loop does no map allocation at all. Every loop
// iterates the same sets in the same ascending order as the reference
// code, so all floating-point results are bit-identical to it (and to
// the message-passing replay in internal/dist).

// csrOf returns the incidence index of the graph, building one from the
// instance for graphs that were not constructed via FromInstance.
func csrOf(in *mmlp.Instance, g *hypergraph.Graph) *hypergraph.CSR {
	if c := g.CSR(); c != nil {
		return c
	}
	return hypergraph.NewCSR(in)
}

// localSolver carries the reusable scratch of one worker solving local
// LPs (9) over CSR balls: the lp.Workspace the simplex runs in, the
// epoch-stamped index scratch, and (optionally) an isomorphic-ball
// cache. A steady-state solve performs no allocation at all: constraint
// rows are written directly into workspace memory and the returned
// solution aliases the workspace buffer. It is not safe for concurrent
// use; parallel executors hold one solver per worker.
type localSolver struct {
	csr *hypergraph.CSR
	ws  *lp.Workspace

	// localIdx[v] is the index of agent v inside the current ball, or −1.
	// Only ball entries are ever set, and they are cleared after each
	// solve, so reset cost is O(|ball|).
	localIdx []int32

	// resMark/parMark are epoch stamps deduplicating the I^u and K^u
	// collections without clearing between solves.
	resMark, parMark []int32
	epoch            int32

	resList, parList []int

	// cache enables isomorphic-ball dedup in solveCached; nil disables.
	cache  *solveCache
	keyBuf []byte

	// zeroX backs the x^u = 0 convention for balls with empty K^u; it is
	// allocated zeroed and never written.
	zeroX []float64

	// presolve enables the ball-LP row reductions of reduce(); the keep
	// masks below are valid between enter and leave and are consulted by
	// both canonicalKey and assembleAndSolve, so the fingerprint always
	// describes exactly the LP the simplex would solve.
	presolve         bool
	resKeep, parKeep []bool
	resKept, parKept int

	// Materialised ball-restricted rows for reduce(): entries of row r
	// live in rowIdx/rowCoef[rowOff[r]:rowOff[r+1]], resource rows first.
	rowIdx  []int32
	rowCoef []float64
	rowOff  []int

	// dropCounter, when non-nil, accumulates rows eliminated by reduce()
	// (nil-safe; bound by the session's pool to the obs registry).
	dropCounter *obs.Counter
}

func newLocalSolver(csr *hypergraph.CSR) *localSolver {
	s := &localSolver{
		csr:      csr,
		ws:       lp.NewWorkspace(),
		localIdx: make([]int32, csr.NumAgents()),
		resMark:  make([]int32, csr.NumResources()),
		parMark:  make([]int32, csr.NumParties()),
	}
	for i := range s.localIdx {
		s.localIdx[i] = -1
	}
	for i := range s.resMark {
		s.resMark[i] = -1
	}
	for i := range s.parMark {
		s.parMark[i] = -1
	}
	return s
}

// enter installs the ball's local indexing and collects I^u (resources
// touching the ball) and K^u (parties inside), sorted ascending — the
// same sets in the same order as the reference view-based path.
func (s *localSolver) enter(ball []int32) {
	csr := s.csr
	for idx, v := range ball {
		s.localIdx[v] = int32(idx)
	}
	s.epoch++
	s.resList = s.resList[:0]
	s.parList = s.parList[:0]
	for _, v := range ball {
		for _, i := range csr.AgentResources(int(v)) {
			if s.resMark[i] != s.epoch {
				s.resMark[i] = s.epoch
				s.resList = append(s.resList, int(i))
			}
		}
		for _, k := range csr.AgentParties(int(v)) {
			if s.parMark[k] == s.epoch {
				continue
			}
			s.parMark[k] = s.epoch
			inside := true
			for _, member := range csr.PartyAgents(int(k)) {
				if s.localIdx[member] < 0 {
					inside = false
					break
				}
			}
			if inside {
				s.parList = append(s.parList, int(k))
			}
		}
	}
	sort.Ints(s.resList)
	sort.Ints(s.parList)
	if s.presolve && len(s.parList) > 0 {
		s.reduce()
	}
}

// reduce computes the presolve keep masks over the ball-restricted
// rows of the entered ball: exact duplicates and rows implied by
// another row are dropped before fingerprinting and assembly, so two
// balls whose LPs differ only in redundant structure — the boundary
// stubs of lattice instances, say — collapse onto one cache orbit.
//
// Both reductions are guarded by bitwise coefficient equality, so they
// are exact (the feasible set of the reduced LP is identical to the
// unreduced one, as is ω and the optimal face):
//
//   - a resource row (Σ a_v x_v ≤ 1) whose restricted entries are a
//     subset of another resource row's, with bitwise-equal shared
//     coefficients and strictly positive extras, is implied by the
//     superset row (the extra terms are nonnegative) — the SUBSET is
//     dropped;
//   - a party row (−Σ c_v x_v + ω ≤ 0) whose restricted entries are a
//     superset of another party row's, likewise guarded, is implied by
//     the subset row (the extra −c terms only decrease the left side)
//     — the SUPERSET is dropped;
//   - bitwise-identical rows of the same family keep the first.
//
// Dropping a redundant row never changes the optimum value or the
// feasible set, but it can change the simplex pivot sequence, so
// presolved solves are value-exact rather than bit-identical to
// unpresolved ones whenever a reduction actually fires; on instances
// where nothing fires (generic random weights) the masks are all-keep
// and every byte and bit is unchanged.
func (s *localSolver) reduce() {
	csr := s.csr
	nRes, nPar := len(s.resList), len(s.parList)
	s.rowOff = s.rowOff[:0]
	s.rowIdx = s.rowIdx[:0]
	s.rowCoef = s.rowCoef[:0]
	for _, i := range s.resList {
		s.rowOff = append(s.rowOff, len(s.rowIdx))
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		for j, a := range agents {
			if idx := s.localIdx[a]; idx >= 0 {
				s.rowIdx = append(s.rowIdx, idx)
				s.rowCoef = append(s.rowCoef, coeffs[j])
			}
		}
	}
	for _, k := range s.parList {
		s.rowOff = append(s.rowOff, len(s.rowIdx))
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		for j, a := range agents {
			s.rowIdx = append(s.rowIdx, s.localIdx[a])
			s.rowCoef = append(s.rowCoef, -coeffs[j])
		}
	}
	s.rowOff = append(s.rowOff, len(s.rowIdx))

	if cap(s.resKeep) < nRes {
		s.resKeep = make([]bool, nRes)
	}
	s.resKeep = s.resKeep[:nRes]
	if cap(s.parKeep) < nPar {
		s.parKeep = make([]bool, nPar)
	}
	s.parKeep = s.parKeep[:nPar]
	for r := range s.resKeep {
		s.resKeep[r] = true
	}
	for r := range s.parKeep {
		s.parKeep[r] = true
	}

	// Resource rows: drop duplicates (keep the first) and strict
	// subsets. A drop justified by a row that is itself later dropped
	// stays justified: duplicate chains keep one representative and
	// containment chains keep their maximal rows.
	for r := 0; r < nRes; r++ {
		if !s.resKeep[r] {
			continue
		}
		for q := 0; q < nRes; q++ {
			if q == r {
				continue
			}
			sub, strict := s.rowSubset(r, q, true)
			if sub && (strict || q < r) {
				s.resKeep[r] = false
				break
			}
		}
	}
	// Party rows: drop duplicates (keep the first) and strict
	// supersets; containment chains keep their minimal rows. Every
	// party row carries the same implicit +1·ω entry, so comparing the
	// agent entries alone compares the full rows.
	for r := 0; r < nPar; r++ {
		if !s.parKeep[r] {
			continue
		}
		for q := 0; q < nPar; q++ {
			if q == r {
				continue
			}
			sub, strict := s.rowSubset(nRes+q, nRes+r, false)
			if sub && (strict || q < r) {
				s.parKeep[r] = false
				break
			}
		}
	}
	s.resKept, s.parKept = 0, 0
	for _, k := range s.resKeep {
		if k {
			s.resKept++
		}
	}
	for _, k := range s.parKeep {
		if k {
			s.parKept++
		}
	}
	s.dropCounter.Add(int64(nRes - s.resKept + nPar - s.parKept))
}

// rowSubset reports whether materialised row a's entries form a subset
// of row b's with bitwise-equal coefficients on the shared support, and
// whether the containment is strict. Entries are ascending in local
// index (CSR agent lists and balls are sorted). wantPos constrains the
// sign of b's extra coefficients: positive for resource rows (extras
// can only tighten b), negative for party rows (stored as −c).
func (s *localSolver) rowSubset(a, b int, wantPos bool) (subset, strict bool) {
	ai, ae := s.rowOff[a], s.rowOff[a+1]
	bi, be := s.rowOff[b], s.rowOff[b+1]
	for ai < ae {
		if bi >= be {
			return false, false
		}
		switch {
		case s.rowIdx[bi] < s.rowIdx[ai]:
			c := s.rowCoef[bi]
			if wantPos != (c > 0) {
				return false, false
			}
			strict = true
			bi++
		case s.rowIdx[bi] == s.rowIdx[ai]:
			if s.rowCoef[bi] != s.rowCoef[ai] {
				return false, false
			}
			ai++
			bi++
		default:
			return false, false
		}
	}
	for ; bi < be; bi++ {
		if c := s.rowCoef[bi]; wantPos != (c > 0) {
			return false, false
		}
		strict = true
	}
	return true, strict
}

// leave clears the local indexing installed by enter, in O(|ball|).
func (s *localSolver) leave(ball []int32) {
	for _, v := range ball {
		s.localIdx[v] = -1
	}
}

// zeros returns an all-zero slice of length n (the x^u for empty K^u).
// The buffer is shared across calls and must never be written.
func (s *localSolver) zeros(n int) []float64 {
	if cap(s.zeroX) < n {
		s.zeroX = make([]float64, n)
	}
	return s.zeroX[:n]
}

// solve solves the local LP (9) for the ball V^u (sorted ascending): the
// flat-array equivalent of solveLocalView over a FullView. The LP is
// assembled from the same sorted index lists and the same coefficient
// order into workspace memory, so the simplex pivot sequence — and hence
// the solution — is identical to the reference path. The returned slice
// aliases the workspace and is valid until the next solve on this
// solver; callers that keep it must copy.
func (s *localSolver) solve(ball []int32) ([]float64, float64, int, error) {
	s.enter(ball)
	defer s.leave(ball)
	if len(s.parList) == 0 {
		// ω^u = min over the empty K^u is +∞; x^u = 0 by convention.
		return s.zeros(len(ball)), math.Inf(1), 0, nil
	}
	return s.assembleAndSolve(ball)
}

// solveCached is solve with isomorphic-ball dedup: the ball's canonical
// fingerprint is looked up in the cache and, after an exact key match,
// the stored solution is returned without touching the simplex. hit
// reports whether the simplex was skipped. Requires s.cache != nil.
func (s *localSolver) solveCached(ball []int32) (x []float64, omega float64, pivots int, hit bool, err error) {
	s.enter(ball)
	defer s.leave(ball)
	if len(s.parList) == 0 {
		return s.zeros(len(ball)), math.Inf(1), 0, true, nil
	}
	key := s.canonicalKey(ball)
	hash := fnv64a(key)
	if e := s.cache.lookup(hash, key); e != nil {
		s.cache.addHits(1)
		return e.x, e.omega, e.pivots, true, nil
	}
	x, omega, pivots, err = s.assembleAndSolve(ball)
	if err != nil {
		return nil, 0, 0, false, err
	}
	s.cache.insert(hash, key, x, omega, pivots)
	return x, omega, pivots, false, nil
}

// fingerprint returns an owned copy of the ball's canonical key and its
// hash, or trivial = true for balls with empty K^u (no LP to solve).
// Used by the parallel executor to group agents before solving.
func (s *localSolver) fingerprint(ball []int32) (key []byte, hash uint64, trivial bool) {
	s.enter(ball)
	defer s.leave(ball)
	if len(s.parList) == 0 {
		return nil, 0, true
	}
	k := s.canonicalKey(ball)
	return append([]byte(nil), k...), fnv64a(k), false
}

// canonicalKey encodes the ball's local LP (9) in ball-relative terms:
// ball size, then each constraint row of I^u and K^u as its (local
// column, exact coefficient bits) entries in assembly order. Agents
// whose balls encode identically assemble element-for-element identical
// LPs, so one solve serves them all. With presolve enabled the key
// encodes the reduced rows — exactly the LP assembleAndSolve would
// stage — so the key still determines the stored solution bit-for-bit,
// and presolved and unpresolved runs can safely share one cache (their
// keys coincide precisely when no reduction fires). The returned slice
// aliases s.keyBuf and is valid until the next canonicalKey call.
func (s *localSolver) canonicalKey(ball []int32) []byte {
	csr := s.csr
	nRes, nPar := len(s.resList), len(s.parList)
	if s.presolve {
		nRes, nPar = s.resKept, s.parKept
	}
	b := appendKeyHeader(s.keyBuf[:0], len(ball), nRes)
	for ri, i := range s.resList {
		if s.presolve && !s.resKeep[ri] {
			continue
		}
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		for j, a := range agents {
			if idx := s.localIdx[a]; idx >= 0 {
				b = appendKeyEntry(b, idx, coeffs[j])
			}
		}
		b = appendKeyRowEnd(b)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(nPar))
	for pi, k := range s.parList {
		if s.presolve && !s.parKeep[pi] {
			continue
		}
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		for j, a := range agents {
			b = appendKeyEntry(b, s.localIdx[a], coeffs[j])
		}
		b = appendKeyRowEnd(b)
	}
	s.keyBuf = b
	return b
}

// assembleAndSolve writes the constraint rows of (9) directly into the
// workspace and runs the simplex. Callers must have entered the ball and
// checked K^u ≠ ∅.
func (s *localSolver) assembleAndSolve(ball []int32) ([]float64, float64, int, error) {
	csr := s.csr
	nLoc := len(ball)
	ws := s.ws
	ws.Begin(nLoc + 1)
	ws.Obj()[nLoc] = 1
	for ri, i := range s.resList {
		if s.presolve && !s.resKeep[ri] {
			continue
		}
		row := ws.AddRow(lp.LE, 1)
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		for j, a := range agents {
			if idx := s.localIdx[a]; idx >= 0 {
				row[idx] = coeffs[j]
			}
		}
	}
	for pi, k := range s.parList {
		if s.presolve && !s.parKeep[pi] {
			continue
		}
		row := ws.AddRow(lp.LE, 0)
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		for j, a := range agents {
			row[s.localIdx[a]] = -coeffs[j]
		}
		row[nLoc] = 1
	}
	sol, err := ws.SolveStaged(false, lp.DantzigThenBland)
	if err != nil {
		return nil, 0, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, 0, fmt.Errorf("local LP status %v", sol.Status)
	}
	return sol.X[:nLoc], sol.Value, sol.Pivots, nil
}

// CertScratch is the reusable state of certificate computation: the
// epoch-stamped union-dedup array and the per-resource ratio buffer.
// Reusing one scratch across calls (the Solver session does, per query)
// removes the two O(n)+O(|I|) allocations of every Certificate call.
// Not safe for concurrent use.
type CertScratch struct {
	mark   []int32
	epoch  int32
	ratios []float64
}

// NewCertScratch returns a scratch sized for the instance behind csr.
func NewCertScratch(csr *hypergraph.CSR) *CertScratch {
	scr := &CertScratch{
		mark:   make([]int32, csr.NumAgents()),
		ratios: make([]float64, csr.NumResources()),
	}
	for i := range scr.mark {
		scr.mark[i] = -1
	}
	return scr
}

// resourceRatios computes n_i/N_i per resource (into scr.ratios) and
// returns max_i N_i/n_i, deduplicating each union U_i with one epoch
// stamp per resource instead of a map. The counts — and hence every
// float — are identical to the reference implementation.
func (scr *CertScratch) resourceRatios(csr *hypergraph.CSR, bi *hypergraph.BallIndex) (resourceBound float64) {
	resourceBound = 1
	for i := 0; i < csr.NumResources(); i++ {
		if csr.ResourceDegree(i) == 0 {
			// Dead resource (its whole support left through topology
			// updates): it constrains nothing and no live agent reads its
			// ratio.
			scr.ratios[i] = 0
			continue
		}
		if scr.epoch == math.MaxInt32 {
			for j := range scr.mark {
				scr.mark[j] = -1
			}
			scr.epoch = 0
		}
		scr.epoch++
		Ni, ni := 0, math.MaxInt
		for _, j := range csr.ResourceAgents(i) {
			ball := bi.Ball(int(j))
			for _, w := range ball {
				if scr.mark[w] != scr.epoch {
					scr.mark[w] = scr.epoch
					Ni++
				}
			}
			if len(ball) < ni {
				ni = len(ball)
			}
		}
		scr.ratios[i] = float64(ni) / float64(Ni)
		resourceBound = max(resourceBound, float64(Ni)/float64(ni))
	}
	return resourceBound
}

// CertificateWith computes the Theorem-3 certificate (max_k M_k/m_k,
// max_i N_i/n_i) over a prebuilt ball index with reusable scratch — the
// allocation-free variant of Certificate the Solver session runs.
// Results are bit-identical to Certificate.
func CertificateWith(csr *hypergraph.CSR, bi *hypergraph.BallIndex, scr *CertScratch) (partyBound, resourceBound float64) {
	resourceBound = scr.resourceRatios(csr, bi)
	return partyBoundFlat(csr, bi), resourceBound
}

// resourceRatiosFlat computes n_i/N_i per resource and max_i N_i/n_i from
// the precomputed ball index with throwaway scratch.
func resourceRatiosFlat(csr *hypergraph.CSR, bi *hypergraph.BallIndex) (ratios []float64, resourceBound float64) {
	scr := NewCertScratch(csr)
	resourceBound = scr.resourceRatios(csr, bi)
	return scr.ratios, resourceBound
}

// partyBoundFlat computes max_k M_k/m_k from the ball index: m_k by
// counting the members of the first agent's ball contained in every other
// member's sorted ball (binary search — supports are small), M_k as the
// largest ball size. +Inf when some S_k is empty (possible only at radius
// 0 with |Vk| > 1).
func partyBoundFlat(csr *hypergraph.CSR, bi *hypergraph.BallIndex) float64 {
	bound := 1.0
	for k := 0; k < csr.NumParties(); k++ {
		members := csr.PartyAgents(k)
		if len(members) == 0 {
			// Dead party (see ApplyTopo): demands nothing, bounds nothing.
			continue
		}
		mk, Mk := 0, 0
		first := int(members[0])
		for _, w := range bi.Ball(first) {
			inAll := true
			for _, other := range members[1:] {
				if !bi.Contains(int(other), w) {
					inAll = false
					break
				}
			}
			if inAll {
				mk++
			}
		}
		for _, m := range members {
			Mk = max(Mk, bi.Size(int(m)))
		}
		if mk == 0 {
			bound = math.Inf(1)
			continue
		}
		bound = max(bound, float64(Mk)/float64(mk))
	}
	return bound
}

// SafeFlat is Safe over a prebuilt CSR index: the same min_{i∈Iv}
// 1/(a_iv·|Vi|) computed from the flat incidence arrays, with no binary
// searches or row lookups. Exported for the benchmarks and the command
// line; Safe remains the self-contained reference.
func SafeFlat(csr *hypergraph.CSR) []float64 {
	x := make([]float64, csr.NumAgents())
	for v := range x {
		best := math.Inf(1)
		ids, coeffs := csr.AgentResources(v), csr.AgentResourceCoeffs(v)
		for j, i := range ids {
			cap := 1 / (coeffs[j] * float64(csr.ResourceDegree(int(i))))
			if cap < best {
				best = cap
			}
		}
		if math.IsInf(best, 1) {
			// Iv = ∅ violates the paper's assumptions; 0 keeps feasibility.
			best = 0
		}
		x[v] = best
	}
	return x
}
