package core

import (
	"fmt"
	"math"
	"sort"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// This file is the flat-array execution path of the Theorem-3 round
// loops. The map/slice-of-slice bookkeeping of the original
// implementation (per-agent ball maps, per-resource union maps) is
// replaced by the hypergraph CSR index, a radius-R BallIndex computed
// once, and epoch-stamped scratch arrays that are reset in O(|touched|)
// — so the per-agent loop does no map allocation at all. Every loop
// iterates the same sets in the same ascending order as the reference
// code, so all floating-point results are bit-identical to it (and to
// the message-passing replay in internal/dist).

// csrOf returns the incidence index of the graph, building one from the
// instance for graphs that were not constructed via FromInstance.
func csrOf(in *mmlp.Instance, g *hypergraph.Graph) *hypergraph.CSR {
	if c := g.CSR(); c != nil {
		return c
	}
	return hypergraph.NewCSR(in)
}

// localSolver carries the reusable scratch of one worker solving local
// LPs (9) over CSR balls. It is not safe for concurrent use; parallel
// executors hold one solver per worker.
type localSolver struct {
	csr *hypergraph.CSR

	// localIdx[v] is the index of agent v inside the current ball, or −1.
	// Only ball entries are ever set, and they are cleared after each
	// solve, so reset cost is O(|ball|).
	localIdx []int32

	// resMark/parMark are epoch stamps deduplicating the I^u and K^u
	// collections without clearing between solves.
	resMark, parMark []int32
	epoch            int32

	resList, parList []int
}

func newLocalSolver(csr *hypergraph.CSR) *localSolver {
	s := &localSolver{
		csr:      csr,
		localIdx: make([]int32, csr.NumAgents()),
		resMark:  make([]int32, csr.NumResources()),
		parMark:  make([]int32, csr.NumParties()),
	}
	for i := range s.localIdx {
		s.localIdx[i] = -1
	}
	for i := range s.resMark {
		s.resMark[i] = -1
	}
	for i := range s.parMark {
		s.parMark[i] = -1
	}
	return s
}

// solve solves the local LP (9) for the ball V^u (sorted ascending): the
// flat-array equivalent of solveLocalView over a FullView. The LP is
// assembled from the same sorted index lists and the same coefficient
// order, so the simplex pivot sequence — and hence the solution — is
// identical.
func (s *localSolver) solve(ball []int32) ([]float64, float64, int, error) {
	csr := s.csr
	nLoc := len(ball)
	for idx, v := range ball {
		s.localIdx[v] = int32(idx)
	}
	defer func() {
		for _, v := range ball {
			s.localIdx[v] = -1
		}
	}()

	// Collect I^u (resources touching the ball) and K^u (parties inside).
	s.epoch++
	s.resList = s.resList[:0]
	s.parList = s.parList[:0]
	for _, v := range ball {
		for _, i := range csr.AgentResources(int(v)) {
			if s.resMark[i] != s.epoch {
				s.resMark[i] = s.epoch
				s.resList = append(s.resList, int(i))
			}
		}
		for _, k := range csr.AgentParties(int(v)) {
			if s.parMark[k] == s.epoch {
				continue
			}
			s.parMark[k] = s.epoch
			inside := true
			for _, member := range csr.PartyAgents(int(k)) {
				if s.localIdx[member] < 0 {
					inside = false
					break
				}
			}
			if inside {
				s.parList = append(s.parList, int(k))
			}
		}
	}
	sort.Ints(s.resList)
	sort.Ints(s.parList)

	if len(s.parList) == 0 {
		// ω^u = min over the empty K^u is +∞; x^u = 0 by convention.
		return make([]float64, nLoc), math.Inf(1), 0, nil
	}

	obj := make([]float64, nLoc+1)
	obj[nLoc] = 1
	cons := make([]lp.Constraint, 0, len(s.resList)+len(s.parList))
	for _, i := range s.resList {
		row := make([]float64, nLoc+1)
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		for j, a := range agents {
			if idx := s.localIdx[a]; idx >= 0 {
				row[idx] = coeffs[j]
			}
		}
		cons = append(cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 1})
	}
	for _, k := range s.parList {
		row := make([]float64, nLoc+1)
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		for j, a := range agents {
			row[s.localIdx[a]] = -coeffs[j]
		}
		row[nLoc] = 1
		cons = append(cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 0})
	}
	sol, err := lp.Solve(&lp.Problem{Obj: obj, Constraints: cons})
	if err != nil {
		return nil, 0, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, 0, fmt.Errorf("local LP status %v", sol.Status)
	}
	return sol.X[:nLoc], sol.Value, sol.Pivots, nil
}

// resourceRatiosFlat computes n_i/N_i per resource and max_i N_i/n_i from
// the precomputed ball index, deduplicating each union with one epoch
// stamp array instead of a map per resource.
func resourceRatiosFlat(csr *hypergraph.CSR, bi *hypergraph.BallIndex) (ratios []float64, resourceBound float64) {
	nRes := csr.NumResources()
	ratios = make([]float64, nRes)
	resourceBound = 1
	mark := make([]int32, csr.NumAgents())
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < nRes; i++ {
		Ni, ni := 0, math.MaxInt
		for _, j := range csr.ResourceAgents(i) {
			ball := bi.Ball(int(j))
			for _, w := range ball {
				if mark[w] != int32(i) {
					mark[w] = int32(i)
					Ni++
				}
			}
			if len(ball) < ni {
				ni = len(ball)
			}
		}
		ratios[i] = float64(ni) / float64(Ni)
		resourceBound = max(resourceBound, float64(Ni)/float64(ni))
	}
	return ratios, resourceBound
}

// partyBoundFlat computes max_k M_k/m_k from the ball index: m_k by
// counting the members of the first agent's ball contained in every other
// member's sorted ball (binary search — supports are small), M_k as the
// largest ball size. +Inf when some S_k is empty (possible only at radius
// 0 with |Vk| > 1).
func partyBoundFlat(csr *hypergraph.CSR, bi *hypergraph.BallIndex) float64 {
	bound := 1.0
	for k := 0; k < csr.NumParties(); k++ {
		members := csr.PartyAgents(k)
		mk, Mk := 0, 0
		first := int(members[0])
		for _, w := range bi.Ball(first) {
			inAll := true
			for _, other := range members[1:] {
				if !bi.Contains(int(other), w) {
					inAll = false
					break
				}
			}
			if inAll {
				mk++
			}
		}
		for _, m := range members {
			Mk = max(Mk, bi.Size(int(m)))
		}
		if mk == 0 {
			bound = math.Inf(1)
			continue
		}
		bound = max(bound, float64(Mk)/float64(mk))
	}
	return bound
}

// SafeFlat is Safe over a prebuilt CSR index: the same min_{i∈Iv}
// 1/(a_iv·|Vi|) computed from the flat incidence arrays, with no binary
// searches or row lookups. Exported for the benchmarks and the command
// line; Safe remains the self-contained reference.
func SafeFlat(csr *hypergraph.CSR) []float64 {
	x := make([]float64, csr.NumAgents())
	for v := range x {
		best := math.Inf(1)
		ids, coeffs := csr.AgentResources(v), csr.AgentResourceCoeffs(v)
		for j, i := range ids {
			cap := 1 / (coeffs[j] * float64(csr.ResourceDegree(int(i))))
			if cap < best {
				best = cap
			}
		}
		if math.IsInf(best, 1) {
			// Iv = ∅ violates the paper's assumptions; 0 keeps feasibility.
			best = 0
		}
		x[v] = best
	}
	return x
}
