package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

const tol = 1e-7

func graphOf(in *mmlp.Instance) *hypergraph.Graph {
	return hypergraph.FromInstance(in, hypergraph.Options{})
}

func TestSafeFeasibleOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(30), Resources: 1 + rng.Intn(20),
			Parties: 1 + rng.Intn(10), MaxVI: 1 + rng.Intn(4), MaxVK: 1 + rng.Intn(4),
		}, rng)
		x := Safe(in)
		if v := in.Violation(x); v > tol {
			t.Fatalf("trial %d: safe solution infeasible, violation %v", trial, v)
		}
	}
}

func TestSafeRatioWithinDeltaVI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(15), Resources: 1 + rng.Intn(10),
			Parties: 1 + rng.Intn(6), MaxVI: 1 + rng.Intn(3), MaxVK: 1 + rng.Intn(3),
		}, rng)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			t.Fatal(err)
		}
		got := in.Objective(Safe(in))
		bound := SafeRatioBound(in)
		// opt ≤ ΔVI · safe (Section 4). Guard the degenerate ω* = 0 case.
		if opt.Omega > tol && opt.Omega > bound*got+tol {
			t.Fatalf("trial %d: opt %v > ΔVI %v × safe %v", trial, opt.Omega, bound, got)
		}
	}
}

func TestSafeTightFamilyAchievesDeltaVI(t *testing.T) {
	for _, deltaVI := range []int{1, 2, 3, 5} {
		in := gen.SafeTight(deltaVI, 3)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt.Omega-1) > tol {
			t.Fatalf("ΔVI=%d: optimal ω = %v, want 1", deltaVI, opt.Omega)
		}
		safe := in.Objective(Safe(in))
		want := 1 / float64(deltaVI)
		if math.Abs(safe-want) > tol {
			t.Fatalf("ΔVI=%d: safe ω = %v, want %v", deltaVI, safe, want)
		}
	}
}

func TestSafeIsLocal(t *testing.T) {
	// On a torus every agent has an identical view; safe values must agree.
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{})
	x := Safe(in)
	for v := 1; v < len(x); v++ {
		if math.Abs(x[v]-x[0]) > tol {
			t.Fatalf("agent %d: safe %v differs from agent 0's %v despite identical views", v, x[v], x[0])
		}
	}
}

func TestLocalAverageFeasibleAndCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(14), Resources: 1 + rng.Intn(10),
			Parties: 1 + rng.Intn(5), MaxVI: 1 + rng.Intn(3), MaxVK: 1 + rng.Intn(3),
		}, rng)
		g := graphOf(in)
		for _, R := range []int{1, 2} {
			res, err := LocalAverage(in, g, R)
			if err != nil {
				t.Fatal(err)
			}
			if v := in.Violation(res.X); v > tol {
				t.Fatalf("trial %d R=%d: infeasible, violation %v", trial, R, v)
			}
			opt, err := lp.SolveMaxMin(in)
			if err != nil {
				t.Fatal(err)
			}
			got := in.Objective(res.X)
			cert := res.RatioCertificate()
			if opt.Omega > tol && opt.Omega > cert*got+1e-5 {
				t.Fatalf("trial %d R=%d: opt %v exceeds certificate %v × achieved %v",
					trial, R, opt.Omega, cert, got)
			}
			// The certificate is bounded by γ(R−1)·γ(R) (Theorem 3).
			gammaBound := g.Gamma(max(R-1, 0)) * g.Gamma(R)
			if R >= 1 && cert > gammaBound+tol {
				t.Fatalf("trial %d R=%d: certificate %v > γ(R−1)γ(R) = %v", trial, R, cert, gammaBound)
			}
		}
	}
}

func TestLocalAverageFullRadiusRecoversOptimum(t *testing.T) {
	in, _ := gen.Cycle(7, gen.LatticeOptions{})
	g := graphOf(in)
	diam := g.Diameter()
	res, err := LocalAverage(in, g, diam)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := lp.SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	got := in.Objective(res.X)
	if math.Abs(got-opt.Omega) > 1e-6 {
		t.Fatalf("full-radius local average ω = %v, optimal ω = %v", got, opt.Omega)
	}
	// With V^u = V for all u, every β_j = 1 and the certificate is 1.
	if math.Abs(res.RatioCertificate()-1) > tol {
		t.Fatalf("certificate = %v, want 1 at full radius", res.RatioCertificate())
	}
}

func TestLocalAverageDeterministic(t *testing.T) {
	// Outputs may legitimately depend on the locally unique identifiers
	// (the model of Section 1.5 allows it; simplex tie-breaking uses
	// index order), so agents with merely *isomorphic* views can differ.
	// What must hold is determinism: re-running the algorithm on the same
	// instance yields the identical solution.
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	g := graphOf(in)
	a, err := LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] {
			t.Fatalf("agent %d: run 1 gave %v, run 2 gave %v", v, a.X[v], b.X[v])
		}
	}
	if v := in.Violation(a.X); v > tol {
		t.Fatalf("torus solution infeasible, violation %v", v)
	}
}

func TestLocalAverageImprovesWithRadiusOnCycle(t *testing.T) {
	in, _ := gen.Cycle(24, gen.LatticeOptions{})
	g := graphOf(in)
	opt, err := lp.SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	prevRatio := math.Inf(1)
	for _, R := range []int{1, 2, 4, 8} {
		res, err := LocalAverage(in, g, R)
		if err != nil {
			t.Fatal(err)
		}
		got := in.Objective(res.X)
		ratio := opt.Omega / got
		if ratio > prevRatio+0.05 {
			t.Fatalf("R=%d: ratio %v much worse than previous %v", R, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio > 1.2 {
		t.Fatalf("ratio at R=8 still %v; expected close to 1 on a cycle", prevRatio)
	}
}

func TestLocalAverageRatExactlyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(8), Resources: 1 + rng.Intn(6),
			Parties: 1 + rng.Intn(4), MaxVI: 1 + rng.Intn(3), MaxVK: 1 + rng.Intn(3),
		}, rng)
		g := graphOf(in)
		res, err := LocalAverageRat(in, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !RatFeasible(in, res.X) {
			t.Fatalf("trial %d: exact local average violates a constraint exactly", trial)
		}
	}
}

func TestLocalAverageRatMatchesFloat(t *testing.T) {
	in, _ := gen.Cycle(9, gen.LatticeOptions{})
	g := graphOf(in)
	exact, err := LocalAverageRat(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	approxRes, err := LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ef := exact.Float()
	for v := range ef {
		if math.Abs(ef[v]-approxRes.X[v]) > 1e-6 {
			t.Fatalf("agent %d: exact %v vs float %v", v, ef[v], approxRes.X[v])
		}
	}
}

func TestLocalAverageRadiusZero(t *testing.T) {
	// R = 0: V^u = {u}; only singleton parties are visible. The result
	// must still be feasible.
	in := gen.SafeTight(3, 2)
	g := graphOf(in)
	res, err := LocalAverage(in, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Violation(res.X); v > tol {
		t.Fatalf("R=0 infeasible, violation %v", v)
	}
}

func TestLocalAverageRejectsNegativeRadius(t *testing.T) {
	in := gen.SafeTight(2, 1)
	if _, err := LocalAverage(in, graphOf(in), -1); err == nil {
		t.Fatal("want error for negative radius")
	}
}

func TestRenderFigure2(t *testing.T) {
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{})
	g := graphOf(in)
	var buf strings.Builder
	if err := RenderFigure2(&buf, in, g, 12, 12, 12, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "V^u", "K^u", "S_k", "U_i", "Theorem 3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Out-of-range indices are rejected.
	for _, bad := range [][3]int{{-1, 0, 0}, {0, 99, 0}, {0, 0, 99}} {
		if err := RenderFigure2(&buf, in, g, bad[0], bad[1], bad[2], 1); err == nil {
			t.Fatalf("indices %v should fail", bad)
		}
	}
}

func TestSafeEquivariantUnderRelabeling(t *testing.T) {
	// The safe algorithm never reads identifiers, so it must be
	// equivariant under relabelling: Safe(σ·in)[σ(v)] == Safe(in)[v].
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(15), Resources: 1 + rng.Intn(10),
			Parties: 1 + rng.Intn(5), MaxVI: 1 + rng.Intn(3), MaxVK: 1 + rng.Intn(3),
		}, rng)
		perm := rng.Perm(in.NumAgents())
		relabelled, err := in.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		x := Safe(in)
		y := Safe(relabelled)
		for v := range x {
			if x[v] != y[perm[v]] {
				t.Fatalf("trial %d: Safe not equivariant at agent %d", trial, v)
			}
		}
	}
}

func TestSafeIndependentAcrossComponents(t *testing.T) {
	// Local algorithms treat disconnected components independently: the
	// safe solution of a disjoint union is the concatenation of the safe
	// solutions of the parts.
	a := gen.SafeTight(3, 2)
	b, _ := gen.Cycle(6, gen.LatticeOptions{})
	u := mmlp.DisjointUnion(a, b)
	xa, xb, xu := Safe(a), Safe(b), Safe(u)
	for v := range xa {
		if xu[v] != xa[v] {
			t.Fatalf("component a agent %d differs", v)
		}
	}
	for v := range xb {
		if xu[a.NumAgents()+v] != xb[v] {
			t.Fatalf("component b agent %d differs", v)
		}
	}
}

func TestLocalOmegaUpperBound(t *testing.T) {
	// Inequality (13) of the paper: the global optimum x* is feasible for
	// every local LP (9), so ω^u ≥ ω* for each u, and hence
	// OmegaUpperBound() = min_u ω^u ≥ ω*.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(12), Resources: 1 + rng.Intn(8),
			Parties: 1 + rng.Intn(4), MaxVI: 1 + rng.Intn(3), MaxVK: 1 + rng.Intn(3),
		}, rng)
		g := graphOf(in)
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LocalAverage(in, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		for u, w := range res.LocalOmega {
			if w < opt.Omega-1e-6 {
				t.Fatalf("trial %d: ω^%d = %v < ω* = %v violates (13)", trial, u, w, opt.Omega)
			}
		}
		if res.OmegaUpperBound() < opt.Omega-1e-6 {
			t.Fatalf("trial %d: min_u ω^u = %v < ω* = %v", trial, res.OmegaUpperBound(), opt.Omega)
		}
	}
	// At full radius the bound is tight: every local LP is the global LP.
	in, _ := gen.Cycle(7, gen.LatticeOptions{})
	g := graphOf(in)
	opt, err := lp.SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalAverage(in, g, g.Diameter())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.OmegaUpperBound()-opt.Omega) > 1e-6 {
		t.Fatalf("full-radius min ω^u = %v, want ω* = %v", res.OmegaUpperBound(), opt.Omega)
	}
}

func TestLocalAverageFeasibleOnObliviousGraph(t *testing.T) {
	// §1.4 defines the collaboration-oblivious variant where H keeps only
	// the resource hyperedges. The Section-5.2 feasibility argument uses
	// only resource-side quantities and distance symmetry, so the
	// averaging algorithm remains feasible on the oblivious graph; only
	// the party-side certificate (which needs Vk-cliques) can degrade to
	// +Inf.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		in := gen.Random(gen.RandomOptions{
			Agents: 2 + rng.Intn(12), Resources: 1 + rng.Intn(8),
			Parties: 1 + rng.Intn(4), MaxVI: 1 + rng.Intn(3), MaxVK: 1 + rng.Intn(3),
		}, rng)
		g := hypergraph.FromInstance(in, hypergraph.Options{CollaborationOblivious: true})
		res, err := LocalAverage(in, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v := in.Violation(res.X); v > tol {
			t.Fatalf("trial %d: infeasible on oblivious graph: %v", trial, v)
		}
	}
}
