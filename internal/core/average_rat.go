package core

import (
	"fmt"
	"math/big"
	"sort"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// RatAverageResult is the exact-arithmetic counterpart of AverageResult.
// It exists so that the feasibility invariant of Section 5.2 (Σ a_ij x̃_j
// ≤ 1 for every resource) can be verified with no floating-point slack in
// property tests.
type RatAverageResult struct {
	X      []*big.Rat
	Radius int
}

// Float converts the exact solution to float64 (rounding to nearest).
func (r *RatAverageResult) Float() []float64 {
	out := make([]float64, len(r.X))
	for i, v := range r.X {
		out[i], _ = v.Float64()
	}
	return out
}

// LocalAverageRat is LocalAverage computed entirely in exact rational
// arithmetic: the local LPs (9) are solved with the exact simplex and the
// combination (10) uses rational β_j and averaging. The output is exactly
// feasible. Intended for verification on small instances; the float64
// LocalAverage is the production path.
func LocalAverageRat(in *mmlp.Instance, g *hypergraph.Graph, radius int) (*RatAverageResult, error) {
	if radius < 0 {
		return nil, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	n := in.NumAgents()
	balls := make([][]int, n)
	inBall := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		balls[u] = g.Ball(u, radius)
		set := make(map[int]bool, len(balls[u]))
		for _, v := range balls[u] {
			set[v] = true
		}
		inBall[u] = set
	}

	sums := make([]*big.Rat, n)
	for v := range sums {
		sums[v] = new(big.Rat)
	}
	for u := 0; u < n; u++ {
		xu, err := solveLocalLPRat(in, balls[u], inBall[u])
		if err != nil {
			return nil, fmt.Errorf("core: exact local LP of agent %d: %w", u, err)
		}
		for idx, v := range balls[u] {
			sums[v].Add(sums[v], xu[idx])
		}
	}

	nRes := in.NumResources()
	resourceRatio := make([]*big.Rat, nRes)
	for i := 0; i < nRes; i++ {
		union := make(map[int]bool)
		ni := -1
		for _, e := range in.Resource(i) {
			j := e.Agent
			for _, w := range balls[j] {
				union[w] = true
			}
			if ni < 0 || len(balls[j]) < ni {
				ni = len(balls[j])
			}
		}
		resourceRatio[i] = big.NewRat(int64(ni), int64(len(union)))
	}

	res := &RatAverageResult{X: make([]*big.Rat, n), Radius: radius}
	for j := 0; j < n; j++ {
		beta := big.NewRat(1, 1)
		for _, i := range in.AgentResources(j) {
			if resourceRatio[i].Cmp(beta) < 0 {
				beta.Set(resourceRatio[i])
			}
		}
		xj := new(big.Rat).Mul(beta, sums[j])
		xj.Quo(xj, big.NewRat(int64(len(balls[j])), 1))
		res.X[j] = xj
	}
	return res, nil
}

func solveLocalLPRat(in *mmlp.Instance, ball []int, inBall map[int]bool) ([]*big.Rat, error) {
	nLoc := len(ball)
	localIdx := make(map[int]int, nLoc)
	for idx, v := range ball {
		localIdx[v] = idx
	}
	resSeen := make(map[int]bool)
	parSeen := make(map[int]bool)
	var resList, parList []int
	for _, v := range ball {
		for _, i := range in.AgentResources(v) {
			if !resSeen[i] {
				resSeen[i] = true
				resList = append(resList, i)
			}
		}
		for _, k := range in.AgentParties(v) {
			if parSeen[k] {
				continue
			}
			parSeen[k] = true
			inside := true
			for _, e := range in.Party(k) {
				if !inBall[e.Agent] {
					inside = false
					break
				}
			}
			if inside {
				parList = append(parList, k)
			}
		}
	}
	sort.Ints(resList)
	sort.Ints(parList)

	zero := func(n int) []*big.Rat {
		out := make([]*big.Rat, n)
		for i := range out {
			out[i] = new(big.Rat)
		}
		return out
	}
	if len(parList) == 0 {
		return zero(nLoc), nil
	}

	obj := zero(nLoc + 1)
	obj[nLoc].SetInt64(1)
	var cons []lp.RatConstraint
	for _, i := range resList {
		row := zero(nLoc + 1)
		for _, e := range in.Resource(i) {
			if idx, ok := localIdx[e.Agent]; ok {
				row[idx].SetFloat64(e.Coeff)
			}
		}
		cons = append(cons, lp.RatConstraint{Coeffs: row, Rel: lp.LE, RHS: big.NewRat(1, 1)})
	}
	for _, k := range parList {
		row := zero(nLoc + 1)
		for _, e := range in.Party(k) {
			row[localIdx[e.Agent]].SetFloat64(e.Coeff)
			row[localIdx[e.Agent]].Neg(row[localIdx[e.Agent]])
		}
		row[nLoc].SetInt64(1)
		cons = append(cons, lp.RatConstraint{Coeffs: row, Rel: lp.LE, RHS: new(big.Rat)})
	}
	sol, err := lp.SolveRat(&lp.RatProblem{Obj: obj, Constraints: cons})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("exact local LP status %v", sol.Status)
	}
	return sol.X[:nLoc], nil
}

// RatFeasible verifies exactly that x satisfies every resource constraint
// Σ_v a_iv x_v ≤ 1 and x ≥ 0. Coefficients are converted from float64
// exactly.
func RatFeasible(in *mmlp.Instance, x []*big.Rat) bool {
	for _, xv := range x {
		if xv.Sign() < 0 {
			return false
		}
	}
	one := big.NewRat(1, 1)
	a := new(big.Rat)
	term := new(big.Rat)
	for i := 0; i < in.NumResources(); i++ {
		total := new(big.Rat)
		for _, e := range in.Resource(i) {
			a.SetFloat64(e.Coeff)
			term.Mul(a, x[e.Agent])
			total.Add(total, term)
		}
		if total.Cmp(one) > 0 {
			return false
		}
	}
	return true
}

// RatObjective evaluates ω(x) = min_k Σ_v c_kv x_v exactly. It returns
// nil when the instance has no parties.
func RatObjective(in *mmlp.Instance, x []*big.Rat) *big.Rat {
	var best *big.Rat
	c := new(big.Rat)
	term := new(big.Rat)
	for k := 0; k < in.NumParties(); k++ {
		total := new(big.Rat)
		for _, e := range in.Party(k) {
			c.SetFloat64(e.Coeff)
			term.Mul(c, x[e.Agent])
			total.Add(total, term)
		}
		if best == nil || total.Cmp(best) < 0 {
			best = total
		}
	}
	return best
}
