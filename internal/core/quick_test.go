package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"maxminlp/internal/gen"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// randomInstanceFromSeed derives a small random instance (and a radius)
// from a seed; shared by the property tests below.
func randomInstanceFromSeed(seed int64) *genInstance {
	r := rand.New(rand.NewSource(seed))
	in := gen.Random(gen.RandomOptions{
		Agents:    2 + r.Intn(12),
		Resources: 1 + r.Intn(8),
		Parties:   1 + r.Intn(5),
		MaxVI:     1 + r.Intn(3),
		MaxVK:     1 + r.Intn(3),
	}, r)
	return &genInstance{in: in, radius: r.Intn(3)}
}

type genInstance struct {
	in     *mmlp.Instance
	radius int
}

// PropertySafeFeasible: the safe solution is feasible on every valid
// instance (the defining property of equation (2)).
func TestQuickSafeFeasible(t *testing.T) {
	f := func(seed int64) bool {
		c := randomInstanceFromSeed(seed)
		return c.in.Violation(Safe(c.in)) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// PropertyAverageFeasibleAndCertified: LocalAverage is feasible, its β
// weights are in (0, 1], its ball sizes are consistent, and the measured
// ratio respects the certificate.
func TestQuickAverageInvariants(t *testing.T) {
	f := func(seed int64) bool {
		c := randomInstanceFromSeed(seed)
		g := graphOf(c.in)
		res, err := LocalAverage(c.in, g, c.radius)
		if err != nil {
			return false
		}
		if c.in.Violation(res.X) > 1e-9 {
			return false
		}
		for j, beta := range res.Beta {
			if beta <= 0 || beta > 1 {
				return false
			}
			if res.BallSize[j] != len(g.Ball(j, c.radius)) {
				return false
			}
		}
		opt, err := lp.SolveMaxMin(c.in)
		if err != nil {
			return false
		}
		got := c.in.Objective(res.X)
		cert := res.RatioCertificate()
		// opt ≤ cert · got, modulo degenerate ω* = 0 and the R = 0 edge
		// case where the certificate may be +Inf.
		if opt.Omega > 1e-9 && got > 0 && opt.Omega > cert*got+1e-5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// PropertySafeDominatedByOptimal: ω_safe ≤ ω* always (safe is feasible,
// the optimum is a maximum).
func TestQuickSafeNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		c := randomInstanceFromSeed(seed)
		opt, err := lp.SolveMaxMin(c.in)
		if err != nil {
			return false
		}
		return c.in.Objective(Safe(c.in)) <= opt.Omega+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// PropertyBallLPEquivalence: SolveBallLP through FullView must agree
// exactly with the internal path used by LocalAverage — the guarantee the
// distributed runtime's bit-identical execution rests on.
func TestQuickBallLPMatchesFullView(t *testing.T) {
	f := func(seed int64) bool {
		c := randomInstanceFromSeed(seed)
		g := graphOf(c.in)
		u := int(uint(seed) % uint(c.in.NumAgents()))
		ball := g.Ball(u, 1)
		inBall := map[int]bool{}
		for _, v := range ball {
			inBall[v] = true
		}
		a, _, err := SolveBallLP(FullView{In: c.in}, ball, inBall)
		if err != nil {
			return false
		}
		b, _, err := solveLocalLP(c.in, ball, inBall)
		if err != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
