package core

import (
	"bytes"
	"math/rand"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/mmlp"
)

// A topo-removed agent keeps its slot in the patched CSR (indices are
// stable across churn); the dedup layer is only correct if those dead
// slots never reach a canonical key — neither as phantom ball members
// inflating nLoc nor as stale row entries. These tests compare the
// canonical fingerprints of a warm, patched session against a cold
// build of the mutated instance, where dead slots cannot exist by
// construction: any leak shows up as a key mismatch (lost cache hits)
// or, worse, a collision (wrong solution served).

// warmColdKeys fingerprints every agent's ball through the session's
// patched CSR and through a cold CSR of the mirror instance, and
// asserts byte equality.
func warmColdKeys(t *testing.T, s *Solver, mirror *mmlp.Instance, radius int, presolve bool) {
	t.Helper()
	warmCSR := s.csr
	coldCSR := csrOf(mirror, sessionGraph(mirror))
	warmBI := s.BallIndex(radius)
	coldBI := sessionGraph(mirror).BallIndex(radius, 1)
	warm := newLocalSolver(warmCSR)
	cold := newLocalSolver(coldCSR)
	warm.presolve, cold.presolve = presolve, presolve
	for u := 0; u < mirror.NumAgents(); u++ {
		wk, wh, wTrivial := warm.fingerprint(warmBI.Ball(u))
		ck, ch, cTrivial := cold.fingerprint(coldBI.Ball(u))
		if wTrivial != cTrivial {
			t.Fatalf("agent %d presolve=%v: warm trivial=%v, cold trivial=%v", u, presolve, wTrivial, cTrivial)
		}
		if wTrivial {
			continue
		}
		if wh != ch || !bytes.Equal(wk, ck) {
			t.Fatalf("agent %d presolve=%v: warm canonical key differs from cold (dead slot leaked into the fingerprint?)", u, presolve)
		}
	}
}

// TestCanonicalKeyExcludesDeadSlots removes agents from a warm session —
// an interior agent whose slot stays behind in the CSR, then a fresh
// agent added and removed again — and checks every surviving ball
// fingerprints identically to a cold build at each step.
func TestCanonicalKeyExcludesDeadSlots(t *testing.T) {
	in, _ := gen.Grid([]int{6, 6}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	mirror := in
	steps := [][]mmlp.TopoUpdate{
		{mmlp.RemoveAgent(14)}, // interior: its resource and party rows survive without it
		{mmlp.AddAgent(), mmlp.AddResourceEdge(0, 36, 1.5), mmlp.AddPartyEdge(0, 36, 0.5)},
		{mmlp.RemoveAgent(36)}, // the freshly attached agent becomes a dead slot too
		{mmlp.RemoveAgent(0)},  // corner
	}
	for i, ops := range steps {
		if _, err := s.UpdateTopology(ops); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		next, _, err := mirror.ApplyTopo(ops)
		if err != nil {
			t.Fatalf("step %d: mirror: %v", i, err)
		}
		mirror = next
		for _, radius := range []int{1, 2} {
			warmColdKeys(t, s, mirror, radius, false)
			warmColdKeys(t, s, mirror, radius, true)
		}
		// The removed agents' own balls must be trivial (no parties in
		// sight), not solved LPs over stale rows.
		inc, err := s.LocalAverage(1)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		cold, err := NewSolverFromGraph(mirror, sessionGraph(mirror)).LocalAverage(1)
		if err != nil {
			t.Fatalf("step %d: cold: %v", i, err)
		}
		sameAverageResult(t, "dead-slot step", inc, cold)
	}
}

// TestDedupCollisionUnderChurn is the randomized regression: batches of
// RandomTopoBatch churn (removals included) against a warm session with
// presolve enabled, each batch checked for (a) warm/cold key agreement
// on every ball and (b) bit-identical averaging with identical dedup
// accounting — a key collision would surface as a wrong solution or a
// phantom SolvesAvoided.
func TestDedupCollisionUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	s.SetPresolve(true)
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	mirror := in
	removals := 0
	for batch := 0; batch < 10; batch++ {
		ops, next := gen.RandomTopoBatch(mirror, rng, 2+rng.Intn(3))
		for _, op := range ops {
			if op.Op == mmlp.TopoRemoveAgent {
				removals++
			}
		}
		if _, err := s.UpdateTopology(ops); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		mirror = next
		warmColdKeys(t, s, mirror, 1, true)

		inc, err := s.LocalAverage(1)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		coldSolver := NewSolverFromGraph(mirror, sessionGraph(mirror))
		coldSolver.SetPresolve(true)
		cold, err := coldSolver.LocalAverage(1)
		if err != nil {
			t.Fatalf("batch %d: cold: %v", batch, err)
		}
		sameAverageResult(t, "churn batch", inc, cold)
		if inc.LocalLPs > cold.LocalLPs {
			t.Fatalf("batch %d: warm session solved %d LPs where cold needed %d", batch, inc.LocalLPs, cold.LocalLPs)
		}
	}
	if removals == 0 {
		t.Fatal("churn never removed an agent; the regression did not exercise dead slots")
	}
}
