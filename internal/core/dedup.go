package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
)

// This file is the isomorphic-ball deduplication layer of the local-LP
// pipeline. The paper's instance families — tori, regular graphs, the
// §4 construction — are highly symmetric: most agents' local LPs (9) are
// element-for-element identical once written in ball-relative indices.
// Each candidate LP is summarised by a canonical fingerprint (the exact
// ball-relative constraint structure and coefficient bits); agents whose
// fingerprints match byte-for-byte share one simplex solve. Because a
// reused solution is only ever taken after an exact key comparison —
// the hash is just a bucket locator — the dedup path is bit-identical
// to solving every agent's LP independently: it returns the very same
// float64s the reference path would compute.

// keyRowEnd terminates one constraint row inside a canonical key. Local
// indices are < 2^31, so the sentinel can never collide with one.
const keyRowEnd = uint32(0xffffffff)

// appendKeyHeader starts a canonical key: the ball size determines the
// variable count (nLoc + 1 including ω) and the objective, so together
// with the rows it pins down the entire LP.
func appendKeyHeader(b []byte, nLoc, nRows int) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(nLoc))
	return binary.LittleEndian.AppendUint32(b, uint32(nRows))
}

// appendKeyEntry appends one (ball-local column, coefficient) pair. The
// coefficient is encoded by its exact bit pattern: two keys are equal
// iff the assembled constraint rows hold identical float64s.
func appendKeyEntry(b []byte, localIdx int32, coeff float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(localIdx))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(coeff))
}

// appendKeyRowEnd closes a constraint row, making rows self-delimiting:
// a canonical key decodes back to exactly one LP.
func appendKeyRowEnd(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b, keyRowEnd)
}

// fnv64a hashes a canonical key for bucket lookup: FNV-1a folded over
// 8-byte words instead of bytes (keys run to kilobytes on large balls,
// so byte-at-a-time hashing showed up in profiles). Any mixing function
// works here — collisions are harmless because entries are confirmed by
// exact key comparison before any reuse.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// cacheEntry is one solved local LP: its full canonical key (owned
// copy), the solution over the ball's local indices, the optimum ω and
// the pivots the solve took.
type cacheEntry struct {
	key    []byte
	x      []float64
	omega  float64
	pivots int
}

// solveCache maps canonical fingerprints to solved local LPs. Buckets
// are keyed by hash; every probe confirms the full key with bytes.Equal,
// so a hash collision can cost a duplicate solve but never a wrong
// reuse. Entries are immutable once inserted and are referenced by
// pointer (never moved), so callers — the session's retained per-agent
// results, the distributed engines' ball solvers — may hold entries
// across later inserts and compactions. All access goes through the
// internal mutex, so one cache can be shared between a Solver session
// and the per-node solvers of a distributed run.
type solveCache struct {
	mu      sync.Mutex
	buckets map[uint64][]*cacheEntry
	size    int
	hits    int
}

func newSolveCache() *solveCache {
	return &solveCache{buckets: make(map[uint64][]*cacheEntry)}
}

// lookup returns the entry whose key equals key exactly, or nil.
func (c *solveCache) lookup(hash uint64, key []byte) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupLocked(hash, key)
}

func (c *solveCache) lookupLocked(hash uint64, key []byte) *cacheEntry {
	for _, e := range c.buckets[hash] {
		if bytes.Equal(e.key, key) {
			return e
		}
	}
	return nil
}

// insert stores owned copies of the key and solution and returns the
// stored entry. If an equal key was inserted concurrently (two nodes of
// a distributed run solving the same LP), the existing entry is returned
// instead — the duplicate solve produced bit-identical numbers, so
// either entry serves every holder.
func (c *solveCache) insert(hash uint64, key []byte, x []float64, omega float64, pivots int) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.lookupLocked(hash, key); e != nil {
		return e
	}
	e := &cacheEntry{
		key:    append([]byte(nil), key...),
		x:      append([]float64(nil), x...),
		omega:  omega,
		pivots: pivots,
	}
	c.buckets[hash] = append(c.buckets[hash], e)
	c.size++
	return e
}

// addHits bumps the cache-hit counter by n.
func (c *solveCache) addHits(n int) {
	c.mu.Lock()
	c.hits += n
	c.mu.Unlock()
}

// counts returns (distinct entries stored, hits served).
func (c *solveCache) counts() (size, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size, c.hits
}

// compact drops every entry not in keep, reclaiming cache slots whose
// canonical keys can no longer occur (after a weight update changed the
// coefficient bits they encode). Holders of dropped entries are
// unaffected: entries are immutable and pointer-stable.
func (c *solveCache) compact(keep map[*cacheEntry]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for hash, es := range c.buckets {
		w := 0
		for _, e := range es {
			if keep[e] {
				es[w] = e
				w++
			}
		}
		if w == 0 {
			delete(c.buckets, hash)
		} else {
			c.buckets[hash] = es[:w]
		}
	}
	c.size = 0
	for _, es := range c.buckets {
		c.size += len(es)
	}
}

// SolveCache is a reusable isomorphic-ball local-LP cache. Keys are
// purely content-based — the ball-relative constraint structure and the
// exact coefficient bits of the local LP (9) — so one cache may be
// shared across radii (AdaptiveAverage does) and even across instances.
// The zero value is not usable; construct with NewSolveCache. All
// operations are internally synchronised, so one cache may serve a
// Solver session and concurrent distributed-engine ball solvers at the
// same time.
type SolveCache struct{ c *solveCache }

// NewSolveCache returns an empty cache.
func NewSolveCache() *SolveCache { return &SolveCache{c: newSolveCache()} }

// DistinctSolves returns the number of distinct local LPs stored.
func (s *SolveCache) DistinctSolves() int { n, _ := s.c.counts(); return n }

// Hits returns how many solves were answered from the cache.
func (s *SolveCache) Hits() int { _, h := s.c.counts(); return h }
