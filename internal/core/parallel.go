package core

import (
	"runtime"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
	"maxminlp/internal/sched"
)

// LocalAverageParallel is LocalAverage with the per-agent local LPs (9)
// solved by a pool of worker goroutines. The local subproblems are
// independent — each agent's x^u depends only on its own radius-R view —
// so this is the natural shared-memory parallelisation of the algorithm,
// mirroring how the distributed runtime spreads the same work across
// agents. The output is bit-identical to LocalAverage: results are
// written into per-agent slots and the combination (10) runs in the same
// deterministic order as the sequential code.
//
// workers ≤ 0 selects GOMAXPROCS.
func LocalAverageParallel(in *mmlp.Instance, g *hypergraph.Graph, radius, workers int) (*AverageResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return localAverage(in, g, radius, AverageOptions{Workers: workers})
}

// parallelFor runs fn(i) for i in [0, n) across the given number of
// workers via the work-stealing pool, returning the error of the
// lowest-indexed failing task (all workers drain regardless; panics
// surface as *sched.PanicError).
func parallelFor(n, workers int, fn func(i int) error) error {
	return sched.Run(n, sched.Options{Workers: workers}, fn)
}

// ballSizeCosts returns per-agent cost hints proportional to ball size
// for tasks indexed by agent, or nil when a hint cannot pay for itself
// (sequential run or a single task).
func ballSizeCosts(bi *hypergraph.BallIndex, n, workers int) []int64 {
	if workers <= 1 || n <= 1 {
		return nil
	}
	costs := make([]int64, n)
	for u := 0; u < n; u++ {
		costs[u] = int64(bi.Size(u))
	}
	return costs
}

// runSteal is parallelFor with per-task cost hints (heaviest tasks
// seeded across distinct workers, stealing absorbs estimation error)
// and scheduler-counter recording into the solver's metrics bundle.
// costs may be nil for unhinted runs; m may be nil.
func runSteal(n, workers int, costs []int64, m *obs.SolveMetrics, fn func(i int) error) error {
	sm := m.SchedBundle()
	var st *sched.Stats
	if sm != nil {
		st = new(sched.Stats)
	}
	err := sched.Run(n, sched.Options{Workers: workers, Costs: costs, Stats: st}, fn)
	if st != nil {
		sm.RecordRun(st.Steals, st.Parks, st.WorkerTasks)
	}
	return err
}
