package core

import (
	"fmt"
	"runtime"
	"sync"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// LocalAverageParallel is LocalAverage with the per-agent local LPs (9)
// solved by a pool of worker goroutines. The local subproblems are
// independent — each agent's x^u depends only on its own radius-R view —
// so this is the natural shared-memory parallelisation of the algorithm,
// mirroring how the distributed runtime spreads the same work across
// agents. The output is bit-identical to LocalAverage: results are
// written into per-agent slots and the combination (10) runs in the same
// deterministic order as the sequential code.
//
// workers ≤ 0 selects GOMAXPROCS.
func LocalAverageParallel(in *mmlp.Instance, g *hypergraph.Graph, radius, workers int) (*AverageResult, error) {
	if radius < 0 {
		return nil, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := in.NumAgents()
	res := &AverageResult{
		X:          make([]float64, n),
		Radius:     radius,
		Beta:       make([]float64, n),
		BallSize:   make([]int, n),
		LocalOmega: make([]float64, n),
	}

	balls := make([][]int, n)
	inBall := make([]map[int]bool, n)
	// Ball computation is read-only on g except for its internal BFS
	// allocations, which are per-call; parallelise it too.
	parallelFor(n, workers, func(u int) error {
		balls[u] = g.Ball(u, radius)
		set := make(map[int]bool, len(balls[u]))
		for _, v := range balls[u] {
			set[v] = true
		}
		inBall[u] = set
		return nil
	})
	for u := 0; u < n; u++ {
		res.BallSize[u] = len(balls[u])
	}

	// Solve every local LP concurrently, then accumulate sequentially in
	// ascending u order so the floating-point sums match LocalAverage
	// exactly.
	xus := make([][]float64, n)
	omegas := make([]float64, n)
	pivots := make([]int, n)
	if err := parallelFor(n, workers, func(u int) error {
		xu, omega, p, err := solveLocalOmega(in, balls[u], inBall[u])
		if err != nil {
			return fmt.Errorf("core: local LP of agent %d: %w", u, err)
		}
		xus[u] = xu
		omegas[u] = omega
		pivots[u] = p
		return nil
	}); err != nil {
		return nil, err
	}
	sums := make([]float64, n)
	for u := 0; u < n; u++ {
		res.LocalOmega[u] = omegas[u]
		res.LocalLPs++
		res.LocalPivots += pivots[u]
		for idx, v := range balls[u] {
			sums[v] += xus[u][idx]
		}
	}

	resourceRatio, resourceBound := resourceRatios(in, balls)
	res.ResourceBound = resourceBound

	for j := 0; j < n; j++ {
		beta := 1.0
		for _, i := range in.AgentResources(j) {
			beta = min(beta, resourceRatio[i])
		}
		res.Beta[j] = beta
		res.X[j] = beta / float64(len(balls[j])) * sums[j]
	}

	res.PartyBound = partyBoundOf(in, balls, inBall)
	return res, nil
}

// parallelFor runs fn(i) for i in [0, n) across the given number of
// workers, returning the first error (all workers drain regardless).
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	work := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range work {
				if firstErr != nil {
					continue
				}
				if err := fn(i); err != nil {
					firstErr = err
				}
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
