package core

import (
	"runtime"
	"sync"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// LocalAverageParallel is LocalAverage with the per-agent local LPs (9)
// solved by a pool of worker goroutines. The local subproblems are
// independent — each agent's x^u depends only on its own radius-R view —
// so this is the natural shared-memory parallelisation of the algorithm,
// mirroring how the distributed runtime spreads the same work across
// agents. The output is bit-identical to LocalAverage: results are
// written into per-agent slots and the combination (10) runs in the same
// deterministic order as the sequential code.
//
// workers ≤ 0 selects GOMAXPROCS.
func LocalAverageParallel(in *mmlp.Instance, g *hypergraph.Graph, radius, workers int) (*AverageResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return localAverage(in, g, radius, AverageOptions{Workers: workers})
}

// parallelFor runs fn(i) for i in [0, n) across the given number of
// workers, returning the first error (all workers drain regardless).
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	work := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var firstErr error
			for i := range work {
				if firstErr != nil {
					continue
				}
				if err := fn(i); err != nil {
					firstErr = err
				}
			}
			errs <- firstErr
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
