package core

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"maxminlp/internal/gen"
	"maxminlp/internal/obs"
	"maxminlp/internal/sched"
)

func TestParallelMatchesSequentialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		name string
		in   func() *genInstance
	}{
		{"torus", func() *genInstance {
			in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
			return &genInstance{in: in, radius: 1}
		}},
		{"random", func() *genInstance {
			in := gen.Random(gen.RandomOptions{
				Agents: 40, Resources: 30, Parties: 12, MaxVI: 3, MaxVK: 3,
			}, rng)
			return &genInstance{in: in, radius: 2}
		}},
	}
	for _, tc := range cases {
		c := tc.in()
		g := graphOf(c.in)
		seq, err := LocalAverage(c.in, g, c.radius)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			par, err := LocalAverageParallel(c.in, g, c.radius, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range seq.X {
				if seq.X[v] != par.X[v] {
					t.Fatalf("%s workers=%d agent %d: %v != %v", tc.name, workers, v, par.X[v], seq.X[v])
				}
			}
			if seq.PartyBound != par.PartyBound || seq.ResourceBound != par.ResourceBound {
				t.Fatalf("%s workers=%d: certificates differ", tc.name, workers)
			}
			if seq.LocalLPs != par.LocalLPs || seq.LocalPivots != par.LocalPivots {
				t.Fatalf("%s workers=%d: accounting differs", tc.name, workers)
			}
			for u := range seq.LocalOmega {
				if seq.LocalOmega[u] != par.LocalOmega[u] {
					t.Fatalf("%s workers=%d: ω^%d differs", tc.name, workers, u)
				}
			}
		}
	}
}

func TestParallelDefaultsWorkers(t *testing.T) {
	in, _ := gen.Cycle(12, gen.LatticeOptions{})
	g := graphOf(in)
	res, err := LocalAverageParallel(in, g, 1, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Violation(res.X); v > 1e-9 {
		t.Fatalf("infeasible: %v", v)
	}
}

func TestParallelRejectsNegativeRadius(t *testing.T) {
	in := gen.SafeTight(2, 1)
	if _, err := LocalAverageParallel(in, graphOf(in), -1, 2); err == nil {
		t.Fatal("want error")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	if err := parallelFor(100, 7, func(i int) error {
		seen[i].Store(true)
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d times, want 100", count.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := parallelFor(50, 4, func(i int) error {
		if i == 33 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Sequential path (workers ≤ 1) too.
	err = parallelFor(50, 1, func(i int) error {
		if i == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("sequential err = %v, want sentinel", err)
	}
}

// TestParallelForFirstErrorWins: with several failing tasks the error of
// the lowest-indexed one is returned, independent of scheduling.
func TestParallelForFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := parallelFor(2, 2, func(i int) error {
		if i == 0 {
			time.Sleep(time.Millisecond) // let task 1 fail first
			return errLow
		}
		return errHigh
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
	}
}

// TestParallelForPanicBecomesError: a panicking task is captured as
// *sched.PanicError instead of crashing the process, on both paths.
func TestParallelForPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := parallelFor(30, workers, func(i int) error {
			if i == 7 {
				panic("lp blew up")
			}
			return nil
		})
		var pe *sched.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *sched.PanicError", workers, err)
		}
		if pe.Index != 7 || pe.Value != "lp blew up" {
			t.Fatalf("workers=%d: PanicError = {Index: %d, Value: %v}", workers, pe.Index, pe.Value)
		}
	}
}

// TestParallelForNoGoroutineLeak: early errors and panics leave no
// worker goroutines behind.
func TestParallelForNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		_ = parallelFor(100, 8, func(i int) error {
			if i%11 == 0 {
				return errors.New("fail")
			}
			if i%13 == 0 {
				panic("boom")
			}
			return nil
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestRunStealCoversAndRecords: the cost-hinted variant visits every
// index once and records scheduler counters into the metrics bundle.
func TestRunStealCoversAndRecords(t *testing.T) {
	const n = 200
	reg := obs.NewRegistry()
	m := obs.NewSolveMetrics(reg)
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = int64(i % 9)
	}
	counts := make([]atomic.Int32, n)
	if err := runSteal(n, 4, costs, m, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, counts[i].Load())
		}
	}
	// WorkerTasks observations must have been recorded: the histogram's
	// _sum over pool="solver" equals the total task count n.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, mf := range fams {
		for _, s := range mf.Samples {
			if s.Name != "mmlp_sched_worker_tasks_sum" || s.Labels["pool"] != "solver" {
				continue
			}
			found = true
			if s.Value != float64(n) {
				t.Fatalf("worker task histogram sums to %v, want %d", s.Value, n)
			}
		}
	}
	if !found {
		t.Fatal("no mmlp_sched_worker_tasks{pool=\"solver\"} sample recorded")
	}
	// Nil metrics and nil costs must be accepted.
	if err := runSteal(10, 2, nil, nil, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
