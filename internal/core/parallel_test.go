package core

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"maxminlp/internal/gen"
)

func TestParallelMatchesSequentialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		name string
		in   func() *genInstance
	}{
		{"torus", func() *genInstance {
			in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
			return &genInstance{in: in, radius: 1}
		}},
		{"random", func() *genInstance {
			in := gen.Random(gen.RandomOptions{
				Agents: 40, Resources: 30, Parties: 12, MaxVI: 3, MaxVK: 3,
			}, rng)
			return &genInstance{in: in, radius: 2}
		}},
	}
	for _, tc := range cases {
		c := tc.in()
		g := graphOf(c.in)
		seq, err := LocalAverage(c.in, g, c.radius)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 16} {
			par, err := LocalAverageParallel(c.in, g, c.radius, workers)
			if err != nil {
				t.Fatal(err)
			}
			for v := range seq.X {
				if seq.X[v] != par.X[v] {
					t.Fatalf("%s workers=%d agent %d: %v != %v", tc.name, workers, v, par.X[v], seq.X[v])
				}
			}
			if seq.PartyBound != par.PartyBound || seq.ResourceBound != par.ResourceBound {
				t.Fatalf("%s workers=%d: certificates differ", tc.name, workers)
			}
			if seq.LocalLPs != par.LocalLPs || seq.LocalPivots != par.LocalPivots {
				t.Fatalf("%s workers=%d: accounting differs", tc.name, workers)
			}
			for u := range seq.LocalOmega {
				if seq.LocalOmega[u] != par.LocalOmega[u] {
					t.Fatalf("%s workers=%d: ω^%d differs", tc.name, workers, u)
				}
			}
		}
	}
}

func TestParallelDefaultsWorkers(t *testing.T) {
	in, _ := gen.Cycle(12, gen.LatticeOptions{})
	g := graphOf(in)
	res, err := LocalAverageParallel(in, g, 1, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Violation(res.X); v > 1e-9 {
		t.Fatalf("infeasible: %v", v)
	}
}

func TestParallelRejectsNegativeRadius(t *testing.T) {
	in := gen.SafeTight(2, 1)
	if _, err := LocalAverageParallel(in, graphOf(in), -1, 2); err == nil {
		t.Fatal("want error")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	if err := parallelFor(100, 7, func(i int) error {
		seen[i].Store(true)
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d times, want 100", count.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := parallelFor(50, 4, func(i int) error {
		if i == 33 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Sequential path (workers ≤ 1) too.
	err = parallelFor(50, 1, func(i int) error {
		if i == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("sequential err = %v, want sentinel", err)
	}
}
