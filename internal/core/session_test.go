package core

import (
	"math/rand"
	"sync"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

func sessionGraph(in *mmlp.Instance) *hypergraph.Graph {
	return hypergraph.FromInstance(in, hypergraph.Options{})
}

// sameAverageResult requires exact (bitwise) equality of every output
// field of the Theorem-3 algorithm; the accounting fields are
// intentionally excluded (they describe the pass, not the solution).
func sameAverageResult(t *testing.T, label string, got, want *AverageResult) {
	t.Helper()
	if got.Radius != want.Radius {
		t.Fatalf("%s: radius %d != %d", label, got.Radius, want.Radius)
	}
	if got.PartyBound != want.PartyBound || got.ResourceBound != want.ResourceBound {
		t.Errorf("%s: bounds (%v,%v) != (%v,%v)", label,
			got.PartyBound, got.ResourceBound, want.PartyBound, want.ResourceBound)
	}
	for v := range want.X {
		if got.X[v] != want.X[v] {
			t.Fatalf("%s: X[%d] = %v, want %v", label, v, got.X[v], want.X[v])
		}
		if got.Beta[v] != want.Beta[v] {
			t.Fatalf("%s: Beta[%d] = %v, want %v", label, v, got.Beta[v], want.Beta[v])
		}
		if got.BallSize[v] != want.BallSize[v] {
			t.Fatalf("%s: BallSize[%d] = %d, want %d", label, v, got.BallSize[v], want.BallSize[v])
		}
		if got.LocalOmega[v] != want.LocalOmega[v] {
			t.Fatalf("%s: LocalOmega[%d] = %v, want %v", label, v, got.LocalOmega[v], want.LocalOmega[v])
		}
	}
}

// randomDeltas picks k existing coefficients of the instance uniformly
// at random and assigns them fresh positive values.
func randomDeltas(in *mmlp.Instance, rng *rand.Rand, k int) []WeightDelta {
	deltas := make([]WeightDelta, 0, k)
	for len(deltas) < k {
		if rng.Intn(2) == 0 && in.NumResources() > 0 {
			i := rng.Intn(in.NumResources())
			row := in.Resource(i)
			e := row[rng.Intn(len(row))]
			deltas = append(deltas, WeightDelta{Kind: ResourceWeight, Row: i, Agent: e.Agent, Coeff: 0.1 + 2*rng.Float64()})
		} else if in.NumParties() > 0 {
			k := rng.Intn(in.NumParties())
			row := in.Party(k)
			e := row[rng.Intn(len(row))]
			deltas = append(deltas, WeightDelta{Kind: PartyWeight, Row: k, Agent: e.Agent, Coeff: 0.1 + 2*rng.Float64()})
		}
	}
	return deltas
}

// TestSessionBitIdentity checks every Solver query against its free
// function: the session's amortised state must never change an output
// bit, warm repeats included.
func TestSessionBitIdentity(t *testing.T) {
	for _, cse := range dedupCases(t) {
		t.Run(cse.name, func(t *testing.T) {
			g := sessionGraph(cse.in)
			s := NewSolverFromGraph(cse.in, g)

			safeRef := Safe(cse.in)
			safeGot := s.Safe()
			for v := range safeRef {
				if safeGot[v] != safeRef[v] {
					t.Fatalf("Safe[%d] = %v, want %v", v, safeGot[v], safeRef[v])
				}
			}

			// SafeRange must tile into Safe bit for bit across an uneven
			// 3-way partition, and reject bad ranges.
			n := cse.in.NumAgents()
			for w := 0; w < 3; w++ {
				lo, hi := n*w/3, n*(w+1)/3
				part, err := s.SafeRange(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				for v := lo; v < hi; v++ {
					if part[v-lo] != safeRef[v] {
						t.Fatalf("SafeRange[%d] = %v, want %v", v, part[v-lo], safeRef[v])
					}
				}
			}
			if _, err := s.SafeRange(-1, n); err == nil {
				t.Error("SafeRange(-1, n) accepted")
			}
			if _, err := s.SafeRange(0, n+1); err == nil {
				t.Error("SafeRange(0, n+1) accepted")
			}
			if _, err := s.SafeRange(2, 1); err == nil {
				t.Error("SafeRange(2, 1) accepted")
			}

			pbRef, rbRef, err := Certificate(cse.in, sessionGraph(cse.in), cse.radius)
			if err != nil {
				t.Fatal(err)
			}
			pb, rb, err := s.Certificate(cse.radius)
			if err != nil {
				t.Fatal(err)
			}
			if pb != pbRef || rb != rbRef {
				t.Fatalf("Certificate = (%v,%v), want (%v,%v)", pb, rb, pbRef, rbRef)
			}

			ref, err := LocalAverageOpt(cse.in, sessionGraph(cse.in), cse.radius, AverageOptions{NoDedup: true})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := s.LocalAverage(cse.radius)
			if err != nil {
				t.Fatal(err)
			}
			sameAverageResult(t, "cold", cold, ref)
			warm, err := s.LocalAverage(cse.radius)
			if err != nil {
				t.Fatal(err)
			}
			sameAverageResult(t, "warm", warm, ref)

			st := s.Stats()
			if st.FullSolves != 1 || st.WarmHits != 1 {
				t.Errorf("stats: FullSolves=%d WarmHits=%d, want 1/1", st.FullSolves, st.WarmHits)
			}
		})
	}
}

// TestSessionAdaptiveAgreement checks the session Adaptive method
// against the free AdaptiveAverage search bit-for-bit.
func TestSessionAdaptiveAgreement(t *testing.T) {
	in, _ := gen.Torus([]int{9, 9}, gen.LatticeOptions{})
	ref, err := AdaptiveAverageOpt(in, sessionGraph(in), 1.8, 6, AverageOptions{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewSolverFromGraph(in, sessionGraph(in)).Adaptive(1.8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.Achieved != ref.Achieved || len(got.Certificates) != len(ref.Certificates) {
		t.Fatalf("adaptive search diverged: %+v vs %+v", got.Certificates, ref.Certificates)
	}
	for i := range ref.Certificates {
		if got.Certificates[i] != ref.Certificates[i] {
			t.Fatalf("certificate[%d] = %v, want %v", i, got.Certificates[i], ref.Certificates[i])
		}
	}
	sameAverageResult(t, "adaptive", got.AverageResult, ref.AverageResult)
}

// TestSessionIncrementalVsCold is the invalidation-correctness check:
// random cumulative delta batches against one warm session, each batch
// verified bit-identical to (a) a cold session over the independently
// mutated instance and (b) the NoDedup reference path — across instance
// families and radii.
func TestSessionIncrementalVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tor, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	cyc, _ := gen.Cycle(48, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	rnd := gen.Random(gen.RandomOptions{Agents: 60, Resources: 45, Parties: 25, MaxVI: 3, MaxVK: 3}, rng)
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 70, Radius: 0.16, MaxNeighbors: 4}, rng)
	cases := []struct {
		name   string
		in     *mmlp.Instance
		radius int
	}{
		{"torus 8x8 weighted R=1", tor, 1},
		{"torus 8x8 weighted R=2", tor, 2},
		{"cycle 48 weighted R=2", cyc, 2},
		{"random n=60 R=1", rnd, 1},
		{"unit-disk n=70 R=1", disk, 1},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			s := NewSolverFromGraph(cse.in, sessionGraph(cse.in))
			if _, err := s.LocalAverage(cse.radius); err != nil {
				t.Fatal(err)
			}
			ballBuilds := s.Stats().BallIndexBuilds

			mirror := cse.in
			for batch := 0; batch < 4; batch++ {
				deltas := randomDeltas(mirror, rng, 1+rng.Intn(5))
				if err := s.UpdateWeights(deltas); err != nil {
					t.Fatal(err)
				}
				// Mutate the mirror instance independently of the session.
				var res, par []mmlp.CoeffUpdate
				for _, d := range deltas {
					u := mmlp.CoeffUpdate{Row: d.Row, Agent: d.Agent, Coeff: d.Coeff}
					if d.Kind == ResourceWeight {
						res = append(res, u)
					} else {
						par = append(par, u)
					}
				}
				var err error
				mirror, err = mirror.UpdateCoeffs(res, par)
				if err != nil {
					t.Fatal(err)
				}

				inc, err := s.LocalAverage(cse.radius)
				if err != nil {
					t.Fatal(err)
				}
				coldSess, err := NewSolverFromGraph(mirror, sessionGraph(mirror)).LocalAverage(cse.radius)
				if err != nil {
					t.Fatal(err)
				}
				sameAverageResult(t, "incremental vs cold session", inc, coldSess)
				ref, err := LocalAverageOpt(mirror, sessionGraph(mirror), cse.radius, AverageOptions{NoDedup: true})
				if err != nil {
					t.Fatal(err)
				}
				sameAverageResult(t, "incremental vs reference", inc, ref)
			}
			st := s.Stats()
			if st.BallIndexBuilds != ballBuilds {
				t.Errorf("weight updates rebuilt ball indexes: %d -> %d", ballBuilds, st.BallIndexBuilds)
			}
			if st.IncrementalSolves != 4 {
				t.Errorf("IncrementalSolves = %d, want 4", st.IncrementalSolves)
			}
			if st.AgentsResolved == 0 {
				t.Error("incremental passes resolved no agents")
			}
		})
	}
}

// TestSessionIncrementalSubsetResolve checks the economy claim: a
// single-coefficient update on a large instance re-solves only the
// agents whose balls can see the touched row, not all of them.
func TestSessionIncrementalSubsetResolve(t *testing.T) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	row := in.Resource(0)
	if err := s.UpdateWeights([]WeightDelta{{Kind: ResourceWeight, Row: 0, Agent: row[0].Agent, Coeff: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	n := in.NumAgents()
	if st.AgentsResolved == 0 || st.AgentsResolved >= n/2 {
		t.Errorf("one delta re-solved %d of %d agents; want a small ball-local subset", st.AgentsResolved, n)
	}
}

// TestSessionUpdateValidation checks that invalid updates are rejected
// atomically: no state change, and the session still answers queries
// identically to before.
func TestSessionUpdateValidation(t *testing.T) {
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	before, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]WeightDelta{
		{{Kind: ResourceWeight, Row: -1, Agent: 0, Coeff: 1}},
		{{Kind: ResourceWeight, Row: in.NumResources(), Agent: 0, Coeff: 1}},
		{{Kind: PartyWeight, Row: 0, Agent: in.NumAgents() + 3, Coeff: 1}},
		{{Kind: ResourceWeight, Row: 0, Agent: in.Resource(0)[0].Agent, Coeff: 0}},
		{{Kind: ResourceWeight, Row: 0, Agent: in.Resource(0)[0].Agent, Coeff: -2}},
		{{Kind: WeightKind(9), Row: 0, Agent: 0, Coeff: 1}},
		// Second delta invalid: the whole batch must be rejected.
		{{Kind: ResourceWeight, Row: 0, Agent: in.Resource(0)[0].Agent, Coeff: 2}, {Kind: PartyWeight, Row: 0, Agent: -5, Coeff: 1}},
	}
	for i, deltas := range bad {
		if err := s.UpdateWeights(deltas); err == nil {
			t.Errorf("bad update %d accepted", i)
		}
	}
	after, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	sameAverageResult(t, "after rejected updates", after, before)
	if got := s.Stats().WeightUpdates; got != 0 {
		t.Errorf("rejected updates counted: WeightUpdates = %d", got)
	}
}

// TestSessionConcurrent hammers one session from many goroutines with
// mixed queries and weight updates (run under -race in CI). Afterwards
// the session must agree bit-for-bit with a cold solve of whatever
// instance the interleaving produced.
func TestSessionConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	s := NewSolverFromGraph(in, sessionGraph(in))

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*20)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + gi)))
			for iter := 0; iter < 12; iter++ {
				switch iter % 4 {
				case 0:
					if _, err := s.LocalAverage(1 + gi%2); err != nil {
						errs <- err
						return
					}
				case 1:
					deltas := randomDeltas(s.Instance(), rng, 1+rng.Intn(3))
					if err := s.UpdateWeights(deltas); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, _, err := s.Certificate(1); err != nil {
						errs <- err
						return
					}
				default:
					s.Safe()
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := s.Instance()
	for _, radius := range []int{1, 2} {
		got, err := s.LocalAverage(radius)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := LocalAverageOpt(final, sessionGraph(final), radius, AverageOptions{NoDedup: true})
		if err != nil {
			t.Fatal(err)
		}
		sameAverageResult(t, "post-concurrency", got, ref)
	}
}

// TestSessionCacheCompaction checks that repeated weight updates cannot
// grow the shared cache without bound: after each update the compactor
// keeps the entry count within the documented envelope of the live set.
func TestSessionCacheCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	cur := in
	for round := 0; round < 30; round++ {
		deltas := randomDeltas(cur, rng, 3)
		if err := s.UpdateWeights(deltas); err != nil {
			t.Fatal(err)
		}
		cur = s.Instance()
		if _, err := s.LocalAverage(1); err != nil {
			t.Fatal(err)
		}
	}
	n := in.NumAgents()
	if size := s.Cache().DistinctSolves(); size > 4*n+64 {
		t.Errorf("cache grew to %d entries on a %d-agent instance despite compaction", size, n)
	}
}

// TestCertificateWithAgreement is the satellite agreement test between
// the allocation-free certificate variant and the original path.
func TestCertificateWithAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rnd := gen.Random(gen.RandomOptions{Agents: 50, Resources: 40, Parties: 20, MaxVI: 3, MaxVK: 3}, rng)
	tor, _ := gen.Torus([]int{7, 7}, gen.LatticeOptions{})
	for _, in := range []*mmlp.Instance{rnd, tor} {
		g := sessionGraph(in)
		csr := g.CSR()
		scr := NewCertScratch(csr)
		for radius := 0; radius <= 3; radius++ {
			pbRef, rbRef, err := Certificate(in, g, radius)
			if err != nil {
				t.Fatal(err)
			}
			// The scratch is reused across radii — the epoch stamps must
			// isolate the passes.
			pb, rb := CertificateWith(csr, g.BallIndex(radius, 1), scr)
			if pb != pbRef || rb != rbRef {
				t.Fatalf("R=%d: CertificateWith = (%v,%v), want (%v,%v)", radius, pb, rb, pbRef, rbRef)
			}
		}
	}
}
