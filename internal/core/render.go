package core

import (
	"fmt"
	"io"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// RenderFigure2 writes the paper's Figure 2 — "Definitions used in the
// algorithm" — instantiated on a concrete instance: for a chosen agent u,
// party k and resource i it lists
//
//	V^u = B_H(u, R),            K^u = {k : Vk ⊆ V^u},
//	V^u_i = Vi ∩ V^u,           I^u = {i : V^u_i ≠ ∅},
//	S_k = ∩_{j∈Vk} V^j,  m_k,   M_k = max{|V^j| : j ∈ Vk},
//	U_i = ∪_{j∈Vi} V^j,  N_i,   n_i = min{|V^j| : j ∈ Vi}.
//
// These are exactly the quantities the Theorem-3 analysis (Sections
// 5.2–5.3) manipulates; printing them for a real instance is the runnable
// counterpart of the schematic figure.
func RenderFigure2(w io.Writer, in *mmlp.Instance, g *hypergraph.Graph, u, k, i, radius int) error {
	if u < 0 || u >= in.NumAgents() {
		return fmt.Errorf("core: agent %d out of range", u)
	}
	if k < 0 || k >= in.NumParties() {
		return fmt.Errorf("core: party %d out of range", k)
	}
	if i < 0 || i >= in.NumResources() {
		return fmt.Errorf("core: resource %d out of range", i)
	}
	fmt.Fprintf(w, "Figure 2 — definitions of the Theorem-3 algorithm at R=%d\n\n", radius)

	ball := g.Ball(u, radius)
	fmt.Fprintf(w, "agent u = %d:\n", u)
	fmt.Fprintf(w, "  V^u = B_H(u,%d) = %v  (|V^u| = %d)\n", radius, ball, len(ball))
	inBall := make(map[int]bool, len(ball))
	for _, v := range ball {
		inBall[v] = true
	}
	var ku []int
	for kk := 0; kk < in.NumParties(); kk++ {
		inside := true
		for _, e := range in.Party(kk) {
			if !inBall[e.Agent] {
				inside = false
				break
			}
		}
		if inside {
			ku = append(ku, kk)
		}
	}
	fmt.Fprintf(w, "  K^u = {k : Vk ⊆ V^u} = %v\n", ku)
	var vui []int
	for _, e := range in.Resource(i) {
		if inBall[e.Agent] {
			vui = append(vui, e.Agent)
		}
	}
	fmt.Fprintf(w, "  V^u_%d = V_%d ∩ V^u = %v\n\n", i, i, vui)

	row := in.Party(k)
	fmt.Fprintf(w, "party k = %d with Vk = %v:\n", k, members(row))
	sk := map[int]bool{}
	first := true
	Mk := 0
	for _, e := range row {
		bj := g.Ball(e.Agent, radius)
		Mk = max(Mk, len(bj))
		cur := map[int]bool{}
		for _, wv := range bj {
			cur[wv] = true
		}
		if first {
			sk = cur
			first = false
			continue
		}
		for x := range sk {
			if !cur[x] {
				delete(sk, x)
			}
		}
	}
	fmt.Fprintf(w, "  S_k = ∩_{j∈Vk} V^j  (m_k = |S_k| = %d),  M_k = max |V^j| = %d,  M_k/m_k = %.4g\n\n",
		len(sk), Mk, float64(Mk)/float64(len(sk)))

	rrow := in.Resource(i)
	fmt.Fprintf(w, "resource i = %d with Vi = %v:\n", i, members(rrow))
	ui := map[int]bool{}
	ni := -1
	for _, e := range rrow {
		bj := g.Ball(e.Agent, radius)
		if ni < 0 || len(bj) < ni {
			ni = len(bj)
		}
		for _, wv := range bj {
			ui[wv] = true
		}
	}
	fmt.Fprintf(w, "  U_i = ∪_{j∈Vi} V^j  (N_i = |U_i| = %d),  n_i = min |V^j| = %d,  N_i/n_i = %.4g\n\n",
		len(ui), ni, float64(len(ui))/float64(ni))

	fmt.Fprintf(w, "Theorem 3: the combined x̃ is feasible and within\n")
	fmt.Fprintf(w, "  max_k M_k/m_k · max_i N_i/n_i ≤ γ(R−1)·γ(R) = %.4g·%.4g = %.4g of optimal.\n",
		g.Gamma(max(radius-1, 0)), g.Gamma(radius), g.Gamma(max(radius-1, 0))*g.Gamma(radius))
	return nil
}

func members(row []mmlp.Entry) []int {
	out := make([]int, len(row))
	for j, e := range row {
		out[j] = e.Agent
	}
	return out
}
