package core

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// Solver is a long-lived solving session over one instance: it owns the
// CSR incidence index, builds the radius-R ball index of each queried
// radius once and retains it, shares one isomorphic-ball solve cache
// across all queries, and pools the lp.Workspace-backed local solvers —
// so repeated queries pay none of the per-call setup the one-shot free
// functions pay. Safe, LocalAverage, Adaptive and Certificate return
// results bit-identical to the corresponding free functions.
//
// On top of the amortisation, the session supports incremental re-solve
// along both update axes. UpdateWeights changes coefficients (never
// topology) and invalidates only the per-agent local LPs whose radius-R
// balls can see a touched row; the next LocalAverage call re-solves just
// those agents and replays the combination (10) for the affected
// coordinates. UpdateTopology changes structure — agents, resources,
// parties and support entries joining or leaving — by patching the CSR,
// graph and retained ball indexes in place of rebuilding them, and
// invalidates exactly the union of balls around the touched vertices.
// Both are bit-identical to a cold solve of the mutated instance.
//
// All methods are safe for concurrent use: queries and updates serialise
// on one mutex (each query may still fan its LP solves across Workers
// goroutines internally). The ball-structure quantities — ball indexes,
// certificates, β weights — survive weight updates unchanged, because
// weight updates cannot change the communication hypergraph; topology
// updates recompute them from the patched structures.
type Solver struct {
	mu sync.Mutex

	in  *mmlp.Instance
	g   *hypergraph.Graph
	csr *hypergraph.CSR
	// csrOwned marks that csr's coefficient arrays are a private clone
	// (copy-on-write, done on the first UpdateWeights) and may be patched
	// in place.
	csrOwned bool

	workers int
	// presolve enables ball-LP row reduction before fingerprinting (see
	// AverageOptions.Presolve); toggled by SetPresolve.
	presolve bool
	cache    *SolveCache
	pool     *sync.Pool // of *localSolver bound to the current csr
	scratch  *CertScratch

	balls  map[int]*hypergraph.BallIndex
	states map[int]*radiusState

	stats SolverStats

	// obsM, when non-nil, receives phase latencies, cache outcomes and
	// invalidation counts from every query and update (see SetObs). Nil —
	// the default — keeps the solve paths on their uninstrumented costs.
	obsM *obs.SolveMetrics
}

// SolverStats counts the work a session has performed; the serving
// daemon exposes them, and the steady-state acceptance check — zero
// CSR/BallIndex rebuilds per query once warm — reads them.
type SolverStats struct {
	// CSRBuilds and BallIndexBuilds count expensive structure builds;
	// both stay flat across steady-state queries and weight updates.
	CSRBuilds       int
	BallIndexBuilds int
	// FullSolves counts cold LocalAverage passes (all agents),
	// IncrementalSolves the delta passes, and WarmHits the calls answered
	// entirely from retained state.
	FullSolves        int
	IncrementalSolves int
	WarmHits          int
	// AgentsResolved is the total number of per-agent local LPs
	// re-examined by incremental passes (re-fingerprinted; most are then
	// served from the cache).
	AgentsResolved int
	// WeightUpdates counts UpdateWeights calls and DeltasApplied the
	// individual coefficient changes.
	WeightUpdates int
	DeltasApplied int
	// TopoUpdates counts UpdateTopology calls, TopoOpsApplied the
	// individual structural ops, AgentsAdded/AgentsRemoved the agents
	// that joined and left, and BallsPatched the per-radius balls the
	// patches recomputed (the structural invalidation footprint; every
	// other ball was carried over untouched).
	TopoUpdates    int
	TopoOpsApplied int
	AgentsAdded    int
	AgentsRemoved  int
	BallsPatched   int
	// CacheEntries and CacheHits snapshot the shared solve cache.
	CacheEntries int
	CacheHits    int
	// Presolve reports whether ball-LP presolve is enabled for this
	// session (see SetPresolve), so the dedup-hit delta it produces can
	// be attributed when scraping stats.
	Presolve bool
}

// radiusState is everything the session retains about one radius. The
// structural part (certificate bounds, β, ball sizes) depends only on
// the hypergraph and survives weight updates; the solve part (per-agent
// entries, running sums, the combined solution) is what UpdateWeights
// invalidates agent-by-agent.
type radiusState struct {
	partyBound    float64
	resourceBound float64
	beta          []float64

	// Solve state; nil res until the first LocalAverage at this radius.
	res     *AverageResult
	entries []*cacheEntry // per agent; nil = trivial K^u = ∅ ball
	sums    []float64

	dirty  []bool
	nDirty int

	// topoDirty marks that a structural update changed the ball
	// structure: β and the certificate bounds were recomputed, and the
	// next solve must refresh BallSize and the full combination (10)
	// instead of only the coordinates the dirty balls cover.
	topoDirty bool
	// pendingAffected accumulates, across structural updates, the agents
	// whose running sums must be replayed because a (possibly former)
	// member of their ball changed — including members that left, which
	// the next solve could not discover from the patched index alone.
	pendingAffected []int32
}

// WeightKind selects which coefficient family a WeightDelta touches.
type WeightKind uint8

const (
	// ResourceWeight updates a_iv of resource Row and agent Agent.
	ResourceWeight WeightKind = iota
	// PartyWeight updates c_kv of party Row and agent Agent.
	PartyWeight
)

// WeightDelta is one coefficient change applied by Solver.UpdateWeights.
// The (Row, Agent) entry must already exist — weight updates change
// values, never supports — and Coeff must be positive and finite.
type WeightDelta struct {
	Kind  WeightKind
	Row   int
	Agent int
	Coeff float64
}

// NewSolver builds a session from an instance: the communication
// hypergraph and CSR index are constructed once and owned by the
// session.
func NewSolver(in *mmlp.Instance, opt hypergraph.Options) *Solver {
	s := NewSolverFromGraph(in, hypergraph.FromInstance(in, opt))
	return s
}

// NewSolverFromGraph builds a session over a prebuilt communication
// hypergraph (reusing its CSR index when it has one). The graph must
// belong to the instance; the session treats both as its own from here
// on.
func NewSolverFromGraph(in *mmlp.Instance, g *hypergraph.Graph) *Solver {
	s := &Solver{
		in:      in,
		g:       g,
		csr:     csrOf(in, g),
		workers: runtime.GOMAXPROCS(0),
		cache:   NewSolveCache(),
		balls:   make(map[int]*hypergraph.BallIndex),
		states:  make(map[int]*radiusState),
	}
	s.stats.CSRBuilds = 1
	s.scratch = NewCertScratch(s.csr)
	s.resetPool()
	return s
}

// resetPool rebinds the pooled local solvers to the current csr (and the
// current LP metrics); called at construction, when copy-on-write
// replaces the csr, and when SetObs changes the metrics binding.
func (s *Solver) resetPool() {
	csr, lpm := s.csr, s.obsM.LPBundle()
	presolve, drops := s.presolve, s.obsM.PresolveDroppedCounter()
	s.pool = &sync.Pool{New: func() any {
		ls := newLocalSolver(csr)
		ls.ws.SetMetrics(lpm)
		ls.presolve = presolve
		ls.dropCounter = drops
		return ls
	}}
}

// SetObs attaches (or, with nil, detaches) solve-pipeline metrics: phase
// latencies, cache hit/miss counts, invalidated-ball counts and the LP
// workspace accounting of the pooled solvers. Metrics never change any
// output bit; disabled (the default) they cost nothing on the solve
// paths.
func (s *Solver) SetObs(m *obs.SolveMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsM = m
	s.resetPool()
}

// SetPresolve enables or disables ball-LP presolve for all later
// queries (see AverageOptions.Presolve for the exactness contract).
// Toggling it discards the retained per-radius solve state — results
// solved under one setting are never served under the other — but keeps
// every structural quantity (CSR, ball indexes, certificates, β) and
// the shared solve cache: cache keys encode the reduced form actually
// solved, so entries written under either setting only ever match LPs
// with the identical reduced form and can be shared safely.
func (s *Solver) SetPresolve(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.presolve == on {
		return
	}
	s.presolve = on
	s.resetPool()
	for _, st := range s.states {
		st.res = nil
		st.entries = nil
		st.sums = nil
		st.dirty = nil
		st.nDirty = 0
		st.topoDirty = false
		st.pendingAffected = nil
	}
}

// Presolve reports whether ball-LP presolve is enabled.
func (s *Solver) Presolve() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.presolve
}

// SetWorkers sets the number of goroutines queries may fan LP solves
// across; w ≤ 0 selects GOMAXPROCS. The worker count never changes any
// output bit.
func (s *Solver) SetWorkers(w int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s.workers = w
}

// Workers reports the effective worker count queries fan LP solves
// across.
func (s *Solver) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// Instance returns the current instance — the constructor's instance
// with every applied weight and topology update folded in.
func (s *Solver) Instance() *mmlp.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in
}

// Graph returns the communication hypergraph the session solves over.
// Weight updates never change it; a topology update replaces it (the
// returned value is an immutable snapshot of the structure at call
// time).
func (s *Solver) Graph() *hypergraph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g
}

// Snapshot returns the session's current instance and hypergraph as one
// consistent pair — unlike separate Instance and Graph calls, no update
// can interleave between the two. Both values are immutable snapshots.
func (s *Solver) Snapshot() (*mmlp.Instance, *hypergraph.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.in, s.g
}

// Cache returns the session's shared solve cache.
func (s *Solver) Cache() *SolveCache { return s.cache }

// NewBallSolver returns a view-based ball-LP solver backed by the
// session's shared cache — the hook the distributed engines use so every
// node's redundant re-solves dedup against the session (and each other).
// Each returned solver must stay on one goroutine; the cache itself is
// internally synchronised.
func (s *Solver) NewBallSolver() *BallSolver {
	return NewBallSolverWithCache(s.cache)
}

// BallIndex returns the session's retained radius-r ball index, building
// it on first use. The index is immutable; concurrent readers (the
// distributed engines) may share it freely. Note that a topology update
// replaces it — holders that must stay consistent with a specific graph
// snapshot should use BallIndexIfCurrent.
func (s *Solver) BallIndex(radius int) *hypergraph.BallIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ballIndex(radius)
}

// BallIndexIfCurrent returns the retained radius-r ball index if the
// session still solves over exactly the graph snapshot g, or nil if a
// topology update has replaced it (or g belongs to another session).
// The distributed engines use it so a run keeps the topology it
// snapshotted at Network construction: when the session has moved on,
// they fall back to record-derived balls and stay bit-identical to a
// cold network over the snapshot instance.
func (s *Solver) BallIndexIfCurrent(radius int, g *hypergraph.Graph) *hypergraph.BallIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.g != g {
		return nil
	}
	return s.ballIndex(radius)
}

// Stats returns a snapshot of the session counters.
func (s *Solver) Stats() SolverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CacheEntries = s.cache.DistinctSolves()
	st.CacheHits = s.cache.Hits()
	st.Presolve = s.presolve
	return st
}

func (s *Solver) ballIndex(radius int) *hypergraph.BallIndex {
	bi, ok := s.balls[radius]
	if !ok {
		bi = s.g.BallIndex(radius, s.workers)
		s.balls[radius] = bi
		s.stats.BallIndexBuilds++
	}
	return bi
}

// state returns the radius state, creating it — with the structural
// certificate quantities computed once — on first use.
func (s *Solver) state(radius int) *radiusState {
	st, ok := s.states[radius]
	if ok {
		return st
	}
	bi := s.ballIndex(radius)
	st = &radiusState{}
	s.computeStructural(st, bi)
	s.states[radius] = st
	return st
}

// computeStructural fills the ball-structure quantities of one radius
// state — certificate bounds and β — from the current csr and ball
// index. It runs at state creation and again after every topology
// update (the only mutation that can change them).
func (s *Solver) computeStructural(st *radiusState, bi *hypergraph.BallIndex) {
	csr := s.csr
	st.resourceBound = s.scratch.resourceRatios(csr, bi)
	st.partyBound = partyBoundFlat(csr, bi)
	n := csr.NumAgents()
	st.beta = make([]float64, n)
	for j := 0; j < n; j++ {
		beta := 1.0
		for _, i := range csr.AgentResources(j) {
			beta = min(beta, s.scratch.ratios[i])
		}
		st.beta[j] = beta
	}
}

// Safe computes the safe solution of equation (2) over the session's
// current weights; bit-identical to the free Safe/SafeFlat.
func (s *Solver) Safe() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SafeFlat(s.csr)
}

// SafeRange computes the safe solution for agents [lo, hi) only — the
// partition-scoped view a cluster worker serves for its owned slice.
// Element for element it equals Safe()[lo:hi] bitwise: the safe value
// of an agent depends only on its own resource rows, so a partition can
// be computed without touching the rest of the instance.
func (s *Solver) SafeRange(lo, hi int) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.csr.NumAgents()
	if lo < 0 || hi < lo || hi > n {
		return nil, fmt.Errorf("core: SafeRange [%d,%d) out of range [0,%d)", lo, hi, n)
	}
	x := make([]float64, hi-lo)
	for v := lo; v < hi; v++ {
		best := math.Inf(1)
		ids, coeffs := s.csr.AgentResources(v), s.csr.AgentResourceCoeffs(v)
		for j, i := range ids {
			cap := 1 / (coeffs[j] * float64(s.csr.ResourceDegree(int(i))))
			if cap < best {
				best = cap
			}
		}
		if math.IsInf(best, 1) {
			// Iv = ∅ violates the paper's assumptions; 0 keeps feasibility.
			best = 0
		}
		x[v-lo] = best
	}
	return x, nil
}

// Certificate returns the Theorem-3 certificate at the given radius.
// The bounds are pure ball structure, so the session computes them once
// per radius and serves every later call — across any number of weight
// updates — from retained state. Bit-identical to the free Certificate.
func (s *Solver) Certificate(radius int) (partyBound, resourceBound float64, err error) {
	if radius < 0 {
		return 0, 0, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(radius)
	return st.partyBound, st.resourceBound, nil
}

// LocalAverage runs the Theorem-3 algorithm at the given radius. The
// first call per radius is a full solve; a repeat call with no
// intervening weight update is answered from retained state; a call
// after UpdateWeights re-solves only the invalidated agents. All three
// paths return bit-identical X, Beta, BallSize, LocalOmega and
// certificate bounds (the LP accounting fields describe the work of the
// pass that produced the result). The result is a private copy; callers
// may keep it across later session calls.
func (s *Solver) LocalAverage(radius int) (*AverageResult, error) {
	if radius < 0 {
		return nil, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.localAverageLocked(radius)
}

func (s *Solver) localAverageLocked(radius int) (*AverageResult, error) {
	st := s.state(radius)
	switch {
	case st.res == nil:
		if err := s.solveFull(radius, st); err != nil {
			return nil, err
		}
		s.stats.FullSolves++
		if m := s.obsM; m != nil {
			m.FullSolves.Inc()
			m.CacheHits.Add(int64(st.res.SolvesAvoided))
			m.CacheMisses.Add(int64(st.res.LocalLPs))
		}
	case st.nDirty > 0:
		if err := s.solveIncremental(radius, st); err != nil {
			return nil, err
		}
		s.stats.IncrementalSolves++
		if m := s.obsM; m != nil {
			m.IncrementalSolves.Inc()
			m.CacheHits.Add(int64(st.res.SolvesAvoided))
			m.CacheMisses.Add(int64(st.res.LocalLPs))
		}
	default:
		s.stats.WarmHits++
		s.obsM.RecordWarmHit()
	}
	return copyResult(st.res), nil
}

// solveFull is the cold path: every agent's local LP through the shared
// cache, retaining per-agent entries for later incremental passes. It
// reuses the exact grouped pipeline of LocalAverageOpt, so its results
// and accounting match the free functions bit-for-bit.
func (s *Solver) solveFull(radius int, st *radiusState) error {
	csr := s.csr
	bi := s.ballIndex(radius)
	n := csr.NumAgents()
	res := &AverageResult{
		X:          make([]float64, n),
		Radius:     radius,
		Beta:       make([]float64, n),
		BallSize:   make([]int, n),
		LocalOmega: make([]float64, n),
	}
	for u := 0; u < n; u++ {
		res.BallSize[u] = bi.Size(u)
	}
	sums := make([]float64, n)
	entries := make([]*cacheEntry, n)
	if err := localAverageParallelDedup(csr, bi, n, s.workers, s.cache, s.presolve, res, sums, entries, s.obsM); err != nil {
		return err
	}
	copy(res.Beta, st.beta)
	for j := 0; j < n; j++ {
		res.X[j] = st.beta[j] / float64(bi.Size(j)) * sums[j]
	}
	res.PartyBound, res.ResourceBound = st.partyBound, st.resourceBound
	st.res, st.entries, st.sums = res, entries, sums
	st.dirty = make([]bool, n)
	st.nDirty = 0
	return nil
}

// solveIncremental re-solves only the agents whose local LPs a weight
// update may have changed, then replays the combination (10) for every
// coordinate their balls cover. The recomputation follows the exact
// accumulation order of the cold path — ascending agent order, same
// addends — so the updated result is bit-identical to a cold solve of
// the mutated instance.
func (s *Solver) solveIncremental(radius int, st *radiusState) error {
	bi := s.ballIndex(radius)
	n := len(st.dirty)
	dirty := make([]int, 0, st.nDirty)
	for u := 0; u < n; u++ {
		if st.dirty[u] {
			dirty = append(dirty, u)
		}
	}
	var sw obs.Stopwatch
	var phFingerprint, phGroup, phLPSolve, phAccumulate *obs.Histogram
	if m := s.obsM; m != nil {
		phFingerprint, phGroup, phLPSolve, phAccumulate =
			m.PhaseFingerprint, m.PhaseGroup, m.PhaseLPSolve, m.PhaseAccumulate
		sw.Start()
	}

	// Phase 1: re-fingerprint the dirty agents in parallel, stealing
	// over cost-sorted balls — fingerprint cost scales with ball size,
	// and post-churn dirty sets are skewed enough that one hot ball can
	// serialise a static partition.
	nd := len(dirty)
	keys := make([][]byte, nd)
	hashes := make([]uint64, nd)
	trivial := make([]bool, nd)
	var fpCosts []int64
	if s.workers > 1 && nd > 1 {
		fpCosts = make([]int64, nd)
		for di, u := range dirty {
			fpCosts[di] = int64(bi.Size(u))
		}
	}
	if err := runSteal(nd, s.workers, fpCosts, s.obsM, func(di int) error {
		ls := s.pool.Get().(*localSolver)
		defer s.pool.Put(ls)
		keys[di], hashes[di], trivial[di] = ls.fingerprint(bi.Ball(dirty[di]))
		return nil
	}); err != nil {
		return err
	}
	sw.Lap(phFingerprint)

	// Phase 2: group dirty agents by exact key, ascending, and consult
	// the shared cache — agents whose fingerprints did not actually
	// change (a party delta dirties every ball containing the agent,
	// but only balls satisfying Vk ⊆ B(u,R) assemble the row) hit
	// their old entries here and cost no simplex run.
	gid := make([]int32, nd)
	var reps []int
	bucket := make(map[uint64][]int32)
	for di := 0; di < nd; di++ {
		if trivial[di] {
			gid[di] = -1
			continue
		}
		found := int32(-1)
		for _, gi := range bucket[hashes[di]] {
			if string(keys[reps[gi]]) == string(keys[di]) {
				found = gi
				break
			}
		}
		if found < 0 {
			found = int32(len(reps))
			reps = append(reps, di)
			bucket[hashes[di]] = append(bucket[hashes[di]], found)
		}
		gid[di] = found
	}
	nG := len(reps)
	gEntry := make([]*cacheEntry, nG)
	for gi, rdi := range reps {
		gEntry[gi] = s.cache.c.lookup(hashes[rdi], keys[rdi])
	}
	sw.Lap(phGroup)

	// Phase 3: solve the groups the cache has never seen, in parallel,
	// then insert sequentially. Cost hints: a group already served by
	// the cache costs nothing; otherwise the last recorded pivot count
	// of the representative's previous entry predicts the re-solve
	// (pivot counts are stable under small weight perturbations), with
	// ball size as the cold fallback.
	gX := make([][]float64, nG)
	gOmega := make([]float64, nG)
	gPivots := make([]int, nG)
	var lpCosts []int64
	if s.workers > 1 && nG > 1 {
		lpCosts = make([]int64, nG)
		for gi, rdi := range reps {
			if gEntry[gi] != nil {
				continue
			}
			u := dirty[rdi]
			if e := st.entries[u]; e != nil && e.pivots > 0 {
				lpCosts[gi] = int64(e.pivots)
			} else {
				lpCosts[gi] = int64(bi.Size(u))
			}
		}
	}
	if err := runSteal(nG, s.workers, lpCosts, s.obsM, func(gi int) error {
		if gEntry[gi] != nil {
			return nil
		}
		ls := s.pool.Get().(*localSolver)
		defer s.pool.Put(ls)
		u := dirty[reps[gi]]
		xu, omega, p, err := ls.solve(bi.Ball(u))
		if err != nil {
			return fmt.Errorf("core: local LP of agent %d: %w", u, err)
		}
		gX[gi] = append([]float64(nil), xu...)
		gOmega[gi], gPivots[gi] = omega, p
		return nil
	}); err != nil {
		return err
	}
	res := st.res
	res.LocalLPs, res.LocalPivots, res.SolvesAvoided = 0, 0, 0
	hits := 0
	for gi, rdi := range reps {
		if gEntry[gi] == nil {
			gEntry[gi] = s.cache.c.insert(hashes[rdi], keys[rdi], gX[gi], gOmega[gi], gPivots[gi])
			res.LocalLPs++
			res.LocalPivots += gPivots[gi]
		}
	}
	sw.Lap(phLPSolve)

	// Phase 4: install the new entries and replay the combination (10)
	// for every coordinate a dirty ball covers. Balls are symmetric
	// (j ∈ B(u) ⟺ u ∈ B(j)), so recomputing sums[j] over B(j) in
	// ascending u order reproduces exactly the addend sequence of the
	// cold path.
	for di, u := range dirty {
		if gid[di] < 0 {
			st.entries[u] = nil
			res.LocalOmega[u] = math.Inf(1)
			res.SolvesAvoided++
			continue
		}
		gi := gid[di]
		e := gEntry[gi]
		st.entries[u] = e
		res.LocalOmega[u] = e.omega
		// Freshly solved representatives (gX non-nil) were counted as
		// LocalLPs above; everyone else was served without a simplex run.
		if !(di == reps[gi] && gX[gi] != nil) {
			res.SolvesAvoided++
			hits++
		}
	}
	s.cache.c.addHits(hits)

	affected := make([]bool, len(st.dirty))
	var affectedList []int
	for _, u := range dirty {
		for _, v := range bi.Ball(u) {
			if !affected[v] {
				affected[v] = true
				affectedList = append(affectedList, int(v))
			}
		}
	}
	// Structural updates also affect coordinates through balls that no
	// longer exist (a member that left still has to leave the sum); the
	// patches recorded those as pendingAffected.
	for _, v := range st.pendingAffected {
		if !affected[v] {
			affected[v] = true
			affectedList = append(affectedList, int(v))
		}
	}
	st.pendingAffected = nil
	sort.Ints(affectedList)
	for _, j := range affectedList {
		sum := 0.0
		for _, u := range bi.Ball(j) {
			e := st.entries[u]
			if e == nil {
				continue
			}
			idx, _ := slices.BinarySearch(bi.Ball(int(u)), int32(j))
			sum += e.x[idx]
		}
		st.sums[j] = sum
		res.X[j] = st.beta[j] / float64(bi.Size(j)) * sum
	}
	if st.topoDirty {
		// β may have changed anywhere (it is a global min over ratios),
		// so replay the combination (10) for every coordinate from the
		// retained sums — the exact final loop of the cold path.
		for j := range res.X {
			res.X[j] = st.beta[j] / float64(bi.Size(j)) * st.sums[j]
		}
		st.topoDirty = false
	}

	for _, u := range dirty {
		st.dirty[u] = false
	}
	st.nDirty = 0
	s.stats.AgentsResolved += nd
	sw.Lap(phAccumulate)
	if m := s.obsM; m != nil {
		m.AgentsResolved.Add(int64(nd))
	}
	return nil
}

// Adaptive grows the radius until the per-instance certificate meets the
// target ratio, then solves at that radius — AdaptiveAverage as a
// session method, with every certificate and the final solve served from
// (and retained in) session state. Bit-identical to AdaptiveAverage.
func (s *Solver) Adaptive(targetRatio float64, maxRadius int) (*AdaptiveResult, error) {
	if targetRatio <= 1 {
		return nil, fmt.Errorf("core: target ratio must exceed 1, got %v", targetRatio)
	}
	if maxRadius < 1 {
		return nil, fmt.Errorf("core: maxRadius must be ≥ 1, got %d", maxRadius)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &AdaptiveResult{TargetRatio: targetRatio}
	chosen := maxRadius
	for radius := 1; radius <= maxRadius; radius++ {
		st := s.state(radius)
		cert := st.partyBound * st.resourceBound
		out.Certificates = append(out.Certificates, cert)
		if cert <= targetRatio {
			chosen = radius
			out.Achieved = true
			break
		}
	}
	res, err := s.localAverageLocked(chosen)
	if err != nil {
		return nil, err
	}
	out.AverageResult = res
	return out, nil
}

// UpdateWeights applies coefficient changes to the session: the current
// instance and CSR are patched (copy-on-write; topology arrays stay
// shared with the original) and, for every radius already solved, the
// agents whose radius-R balls can see a touched row are marked for
// re-solve on the next LocalAverage call. Everything ball-structural —
// ball indexes, certificates, β — survives untouched, which is the
// whole point: a k-entry update costs O(k · ball volume) LP work, not a
// rebuild. Invalid deltas abort the whole update before any state
// changes.
func (s *Solver) UpdateWeights(deltas []WeightDelta) error {
	if len(deltas) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sw obs.Stopwatch
	if s.obsM != nil {
		sw.Start()
	}

	// Validate everything first: the update is atomic.
	var resUp, parUp []mmlp.CoeffUpdate
	for _, d := range deltas {
		switch d.Kind {
		case ResourceWeight:
			if d.Row < 0 || d.Row >= s.csr.NumResources() {
				return fmt.Errorf("core: resource %d out of range [0,%d)", d.Row, s.csr.NumResources())
			}
			if _, ok := slices.BinarySearch(s.csr.ResourceAgents(d.Row), int32(d.Agent)); !ok {
				return fmt.Errorf("core: agent %d is not in the support of resource %d", d.Agent, d.Row)
			}
			resUp = append(resUp, mmlp.CoeffUpdate{Row: d.Row, Agent: d.Agent, Coeff: d.Coeff})
		case PartyWeight:
			if d.Row < 0 || d.Row >= s.csr.NumParties() {
				return fmt.Errorf("core: party %d out of range [0,%d)", d.Row, s.csr.NumParties())
			}
			if _, ok := slices.BinarySearch(s.csr.PartyAgents(d.Row), int32(d.Agent)); !ok {
				return fmt.Errorf("core: agent %d is not in the support of party %d", d.Agent, d.Row)
			}
			parUp = append(parUp, mmlp.CoeffUpdate{Row: d.Row, Agent: d.Agent, Coeff: d.Coeff})
		default:
			return fmt.Errorf("core: unknown weight kind %d", d.Kind)
		}
		if !(d.Coeff > 0) || math.IsInf(d.Coeff, 0) {
			return fmt.Errorf("core: coefficient %v must be positive and finite", d.Coeff)
		}
	}
	in, err := s.in.UpdateCoeffs(resUp, parUp)
	if err != nil {
		return err
	}

	// Copy-on-write the CSR coefficient arrays once per session, then
	// patch in place; pooled solvers are rebound to the new csr.
	if !s.csrOwned {
		s.csr = s.csr.CloneCoeffs()
		s.csrOwned = true
		s.resetPool()
	}
	for _, d := range deltas {
		var err error
		if d.Kind == ResourceWeight {
			err = s.csr.SetResourceCoeff(d.Row, d.Agent, d.Coeff)
		} else {
			err = s.csr.SetPartyCoeff(d.Row, d.Agent, d.Coeff)
		}
		if err != nil {
			return err
		}
	}
	s.in = in

	// Invalidate: the local LP (9) of agent u restricts every row to the
	// ball's variables, so a change to the coefficient of agent v —
	// resource or party — can only alter LPs whose ball contains v:
	// a resource row contributes a_iv only when localIdx[v] ≥ 0, and a
	// party row k enters K^u only when Vk ⊆ B(u,R), which in particular
	// puts v in the ball. With symmetric balls (v ∈ B(u,R) ⟺
	// u ∈ B(v,R)), the dirty set of one delta is exactly B(v,R).
	invalidated := 0
	for radius, st := range s.states {
		if st.res == nil {
			continue
		}
		bi := s.ballIndex(radius)
		for _, d := range deltas {
			for _, v := range bi.Ball(d.Agent) {
				if !st.dirty[v] {
					st.dirty[v] = true
					st.nDirty++
					invalidated++
				}
			}
		}
	}
	s.stats.WeightUpdates++
	s.stats.DeltasApplied += len(deltas)
	s.compactCache()
	if m := s.obsM; m != nil {
		m.WeightInvalidations.Add(int64(invalidated))
		sw.Lap(m.WeightUpdateSeconds)
	}
	return nil
}

// UpdateTopology applies structural changes — agents, resources,
// parties and support entries joining or leaving (see mmlp.TopoUpdate)
// — to the session. The instance, CSR index, communication graph and
// every retained ball index are patched by rebuilding only the affected
// rows and balls (never from scratch: CSRBuilds and BallIndexBuilds
// stay flat), and, for every radius already solved, exactly the agents
// in the union of balls B(v,R) around the touched vertices — in the old
// and the new topology — are marked for re-solve. The paper's local
// LPs (9) are ball-restricted, so no agent outside that union can see
// the change: its ball, the rows restricted to it, and hence its local
// solution are all unchanged. The next LocalAverage call re-fingerprints
// only the invalidated agents and replays the cold accumulation order
// for the coordinates their old and new balls cover, so results are
// bit-identical to a cold solve of the mutated instance.
//
// Validation is atomic: an invalid op rejects the whole batch with no
// state change. The returned diff names what changed (added/removed
// agents, touched rows). Requires a session whose graph was built from
// the instance (NewSolver, or NewSolverFromGraph with a FromInstance
// graph).
func (s *Solver) UpdateTopology(ups []mmlp.TopoUpdate) (*mmlp.TopoDiff, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.g.CSR() == nil {
		return nil, fmt.Errorf("core: topology updates require a graph built from the instance (got a FromAdjacency graph)")
	}
	var sw obs.Stopwatch
	if s.obsM != nil {
		sw.Start()
	}
	newIn, d, err := s.in.ApplyTopo(ups)
	if err != nil {
		return nil, err
	}
	if d.Empty() {
		return d, nil
	}
	newCSR := s.csr.PatchTopo(newIn, d)
	newG := s.g.PatchTopo(newCSR, d.Touched)
	type patchResult struct{ dirty, affected []int32 }
	patches := make(map[int]patchResult, len(s.balls))
	for radius, bi := range s.balls {
		nbi, dirty, affected := bi.PatchTopo(newG, d.Touched)
		s.balls[radius] = nbi
		patches[radius] = patchResult{dirty, affected}
		s.stats.BallsPatched += len(dirty)
	}
	s.in, s.csr, s.g = newIn, newCSR, newG
	// The patched arrays are freshly allocated, but the new graph
	// shares them (newG.CSR() == newCSR) and Graph()/Snapshot() hand it
	// out as an immutable snapshot — so the next weight update must
	// CloneCoeffs before patching in place, exactly like the first
	// update after construction.
	s.csrOwned = false
	s.scratch = NewCertScratch(newCSR)
	s.resetPool()

	n := newCSR.NumAgents()
	for radius, st := range s.states {
		bi := s.balls[radius]
		s.computeStructural(st, bi)
		if st.res == nil {
			continue
		}
		res := st.res
		if grown := n - len(res.X); grown > 0 {
			res.X = append(res.X, make([]float64, grown)...)
			res.Beta = append(res.Beta, make([]float64, grown)...)
			res.BallSize = append(res.BallSize, make([]int, grown)...)
			res.LocalOmega = append(res.LocalOmega, make([]float64, grown)...)
			st.sums = append(st.sums, make([]float64, grown)...)
			st.entries = append(st.entries, make([]*cacheEntry, grown)...)
			st.dirty = append(st.dirty, make([]bool, grown)...)
		}
		copy(res.Beta, st.beta)
		for u := 0; u < n; u++ {
			res.BallSize[u] = bi.Size(u)
		}
		res.PartyBound, res.ResourceBound = st.partyBound, st.resourceBound
		p := patches[radius]
		for _, u := range p.dirty {
			if !st.dirty[u] {
				st.dirty[u] = true
				st.nDirty++
			}
		}
		st.pendingAffected = append(st.pendingAffected, p.affected...)
		st.topoDirty = true
	}
	s.stats.TopoUpdates++
	s.stats.TopoOpsApplied += len(ups)
	s.stats.AgentsAdded += len(d.AddedAgents)
	s.stats.AgentsRemoved += len(d.RemovedAgents)
	s.compactCache()
	if m := s.obsM; m != nil {
		for _, p := range patches {
			m.TopoInvalidations.Add(int64(len(p.dirty)))
		}
		m.AgentsAdded.Add(int64(len(d.AddedAgents)))
		m.AgentsRemoved.Add(int64(len(d.RemovedAgents)))
		sw.Lap(m.TopoUpdateSeconds)
	}
	return d, nil
}

// compactCache drops cache entries no retained result references once
// the cache has grown well past the live set — stale keys encode
// coefficient bits that can no longer occur (unless a later update
// restores them, in which case the entry is simply re-solved).
func (s *Solver) compactCache() {
	live := make(map[*cacheEntry]bool)
	for _, st := range s.states {
		for _, e := range st.entries {
			if e != nil {
				live[e] = true
			}
		}
	}
	if s.cache.DistinctSolves() <= 4*len(live)+64 {
		return
	}
	s.cache.c.compact(live)
}

// copyResult returns a private copy of a retained result, so callers can
// hold it across later session mutations.
func copyResult(r *AverageResult) *AverageResult {
	out := *r
	out.X = append([]float64(nil), r.X...)
	out.Beta = append([]float64(nil), r.Beta...)
	out.BallSize = append([]int(nil), r.BallSize...)
	out.LocalOmega = append([]float64(nil), r.LocalOmega...)
	return &out
}
