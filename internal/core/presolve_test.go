package core

import (
	"math"
	"math/rand"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// equalF64 compares float slices bitwise (so −0.0 ≠ +0.0 and NaNs with
// equal payloads match — the comparison the bit-identity contract means).
func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestPresolveBitIdenticalOnGenericWeights: both presolve reductions are
// guarded by bitwise coefficient equality, so on random-weight instances
// (where no two rows share exact coefficient bits) no reduction fires,
// the canonical keys are unchanged, and the presolved run must equal the
// plain run bit for bit — including the solve accounting.
func TestPresolveBitIdenticalOnGenericWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	torW, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	gridW, _ := gen.Grid([]int{5, 5}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	cases := []struct {
		name   string
		in     *mmlp.Instance
		radius int
	}{
		{"torus 6x6 weighted R=1", torW, 1},
		{"torus 6x6 weighted R=2", torW, 2},
		{"grid 5x5 weighted R=1", gridW, 1},
	}
	for _, cse := range cases {
		g := hypergraph.FromInstance(cse.in, hypergraph.Options{})
		for _, workers := range []int{1, 4} {
			plain, err := LocalAverageOpt(cse.in, g, cse.radius, AverageOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", cse.name, err)
			}
			pre, err := LocalAverageOpt(cse.in, g, cse.radius, AverageOptions{Workers: workers, Presolve: true})
			if err != nil {
				t.Fatalf("%s: %v", cse.name, err)
			}
			if !equalF64(plain.X, pre.X) || !equalF64(plain.LocalOmega, pre.LocalOmega) {
				t.Errorf("%s workers=%d: presolve changed bits on a generic-weight instance", cse.name, workers)
			}
			if plain.LocalLPs != pre.LocalLPs || plain.SolvesAvoided != pre.SolvesAvoided {
				t.Errorf("%s workers=%d: accounting differs: plain (%d LPs, %d avoided), presolve (%d, %d)",
					cse.name, workers, plain.LocalLPs, plain.SolvesAvoided, pre.LocalLPs, pre.SolvesAvoided)
			}
		}
	}
}

// TestPresolveCollapsesGridBoundary is the win the presolve exists for:
// on a unit-weight 2-D grid at R=1, boundary-adjacent balls differ from
// each other only in redundant clipped rows — duplicated and dominated
// restrictions of neighbouring cells' resources — so presolve collapses
// whole bands of near-boundary orbits together (49 distinct LPs become
// 25 on 8×8): strictly fewer distinct LP solves, strictly more dedup
// hits, while the result stays value-exact: feasible, same per-agent ω,
// same certificate.
func TestPresolveCollapsesGridBoundary(t *testing.T) {
	for _, side := range []int{8, 12} {
		in, _ := gen.Grid([]int{side, side}, gen.LatticeOptions{})
		g := hypergraph.FromInstance(in, hypergraph.Options{})
		plain, err := LocalAverageOpt(in, g, 1, AverageOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := LocalAverageOpt(in, g, 1, AverageOptions{Presolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if pre.SolvesAvoided <= plain.SolvesAvoided {
			t.Errorf("%dx%d: SolvesAvoided %d with presolve, want > %d", side, side, pre.SolvesAvoided, plain.SolvesAvoided)
		}
		if pre.LocalLPs >= plain.LocalLPs {
			t.Errorf("%dx%d: LocalLPs %d with presolve, want < %d", side, side, pre.LocalLPs, plain.LocalLPs)
		}
		if v := in.Violation(pre.X); v > 1e-9 {
			t.Errorf("%dx%d: presolved solution violates constraints by %g", side, side, v)
		}
		for u := range plain.LocalOmega {
			a, b := plain.LocalOmega[u], pre.LocalOmega[u]
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Errorf("%dx%d agent %d: ω %g with presolve, want %g", side, side, u, b, a)
			}
		}
		if plain.PartyBound != pre.PartyBound || plain.ResourceBound != pre.ResourceBound {
			t.Errorf("%dx%d: presolve changed the certificate", side, side)
		}
		if !equalF64(plain.Beta, pre.Beta) {
			t.Errorf("%dx%d: presolve changed β", side, side)
		}
	}
}

// TestPresolveExecutionPathsAgree: at a fixed Presolve setting, the
// sequential streaming path, the parallel grouped path and the NoDedup
// reference must still be bit-identical to each other — dedup reuse
// happens only on exact reduced-key matches, and all paths reduce the
// same rows.
func TestPresolveExecutionPathsAgree(t *testing.T) {
	in, _ := gen.Grid([]int{40}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	ref, err := LocalAverageOpt(in, g, 1, AverageOptions{NoDedup: true, Presolve: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := LocalAverageOpt(in, g, 1, AverageOptions{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := LocalAverageOpt(in, g, 1, AverageOptions{Presolve: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !equalF64(ref.X, seq.X) || !equalF64(ref.LocalOmega, seq.LocalOmega) {
		t.Error("sequential dedup+presolve differs from NoDedup+presolve")
	}
	if !equalF64(ref.X, par.X) || !equalF64(ref.LocalOmega, par.LocalOmega) {
		t.Error("parallel dedup+presolve differs from NoDedup+presolve")
	}
	if seq.LocalLPs != par.LocalLPs || seq.SolvesAvoided != par.SolvesAvoided {
		t.Errorf("accounting differs: seq (%d LPs, %d avoided), par (%d, %d)",
			seq.LocalLPs, seq.SolvesAvoided, par.LocalLPs, par.SolvesAvoided)
	}
	if ref.SolvesAvoided != 0 {
		t.Errorf("NoDedup reported %d avoided solves", ref.SolvesAvoided)
	}
}

// TestPresolveCacheSharing: reduced-form canonical keys fully determine
// the LP actually solved, so presolve-on and presolve-off runs can share
// one cache. On a generic-weight instance the keys coincide (nothing
// fires), so the second run — whichever setting it uses — is served
// entirely from the first run's entries, bit for bit.
func TestPresolveCacheSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	cache := NewSolveCache()
	first, err := LocalAverageOpt(in, g, 1, AverageOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	second, err := LocalAverageOpt(in, g, 1, AverageOptions{Cache: cache, Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.LocalLPs != 0 {
		t.Errorf("presolve run solved %d LPs against a warm shared cache, want 0", second.LocalLPs)
	}
	if !equalF64(first.X, second.X) || !equalF64(first.LocalOmega, second.LocalOmega) {
		t.Error("cache-served presolve run differs from the run that warmed the cache")
	}

	// On the unit-weight path the keys differ (reductions fire), so the
	// presolve run must NOT be served the unreduced entries — it solves
	// its own representatives and stays value-exact.
	inP, _ := gen.Grid([]int{32}, gen.LatticeOptions{})
	gP := hypergraph.FromInstance(inP, hypergraph.Options{})
	cacheP := NewSolveCache()
	plain, err := LocalAverageOpt(inP, gP, 1, AverageOptions{Cache: cacheP})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := LocalAverageOpt(inP, gP, 1, AverageOptions{Cache: cacheP, Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if pre.LocalLPs == 0 {
		t.Error("presolve run with distinct reduced keys was served unreduced cache entries")
	}
	if v := inP.Violation(pre.X); v > 1e-9 {
		t.Errorf("presolved solution violates constraints by %g", v)
	}
	_ = plain
}

// TestSolverSetPresolve drives the switch through the session: toggling
// presolve discards retained solve state (no stale cross-setting
// serving), produces the dedup win, reports itself in Stats, and
// toggling back off reproduces the original result bit for bit.
func TestSolverSetPresolve(t *testing.T) {
	in, _ := gen.Grid([]int{8, 8}, gen.LatticeOptions{})
	s := NewSolver(in, hypergraph.Options{})
	plain, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Presolve {
		t.Error("Stats reports presolve before SetPresolve")
	}
	s.SetPresolve(true)
	pre, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !st.Presolve {
		t.Error("Stats does not report presolve after SetPresolve(true)")
	}
	if st.FullSolves != 2 {
		t.Errorf("FullSolves = %d after toggling presolve, want 2 (retained state must be discarded)", st.FullSolves)
	}
	if pre.SolvesAvoided <= plain.SolvesAvoided {
		t.Errorf("session presolve: SolvesAvoided %d, want > %d", pre.SolvesAvoided, plain.SolvesAvoided)
	}
	if v := in.Violation(pre.X); v > 1e-9 {
		t.Errorf("session presolved solution violates constraints by %g", v)
	}
	// Redundant SetPresolve(true) must keep the retained state: the next
	// query is a warm hit.
	s.SetPresolve(true)
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WarmHits != 1 {
		t.Errorf("WarmHits = %d after a redundant SetPresolve, want 1", st.WarmHits)
	}
	s.SetPresolve(false)
	back, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalF64(plain.X, back.X) || !equalF64(plain.LocalOmega, back.LocalOmega) {
		t.Error("solve after toggling presolve off differs from the original plain solve")
	}
}

// TestSolverPresolveIncremental: weight updates under presolve stay
// bit-identical to a cold presolved solve of the mutated instance — the
// incremental path reduces through the same pooled solvers.
func TestSolverPresolveIncremental(t *testing.T) {
	in, _ := gen.Grid([]int{48}, gen.LatticeOptions{})
	s := NewSolver(in, hypergraph.Options{})
	s.SetPresolve(true)
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	deltas := []WeightDelta{
		{Kind: ResourceWeight, Row: 10, Agent: 10, Coeff: 1.25},
		{Kind: PartyWeight, Row: 20, Agent: 21, Coeff: 0.75},
	}
	if err := s.UpdateWeights(deltas); err != nil {
		t.Fatal(err)
	}
	inc, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSolver(s.Instance(), hypergraph.Options{})
	cold.SetPresolve(true)
	want, err := cold.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	if !equalF64(inc.X, want.X) || !equalF64(inc.LocalOmega, want.LocalOmega) {
		t.Error("incremental presolved solve differs from a cold presolved solve of the mutated instance")
	}
}

// TestPresolveDropCounter: the obs counter observes the rows reduce()
// eliminates, making the presolve's work visible on /metrics.
func TestPresolveDropCounter(t *testing.T) {
	in, _ := gen.Grid([]int{32}, gen.LatticeOptions{})
	s := NewSolver(in, hypergraph.Options{})
	m := obs.NewSolveMetrics(obs.NewRegistry())
	s.SetObs(m)
	s.SetPresolve(true)
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	if m.PresolveRowsDropped.Value() == 0 {
		t.Error("presolve dropped no rows on a unit-weight path (counter stayed 0)")
	}
}
