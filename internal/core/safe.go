package core

import (
	"math"

	"maxminlp/internal/mmlp"
)

// Safe computes the safe solution of Papadimitriou and Yannakakis
// (equation (2) of the paper):
//
//	x_v = min_{i ∈ Iv} 1 / (a_iv · |Vi|).
//
// The solution is always feasible — resource i receives at most
// Σ_{v∈Vi} a_iv · 1/(a_iv |Vi|) = 1 — and approximates the max-min LP
// within factor ΔVI (Section 4 of the paper). It is a local algorithm
// with horizon r = 1: agent v only needs a_iv and |Vi| for its own
// resources i ∈ Iv.
func Safe(in *mmlp.Instance) []float64 {
	x := make([]float64, in.NumAgents())
	for v := range x {
		x[v] = SafeValue(in, v)
	}
	return x
}

// SafeValue computes the safe activity of a single agent from its
// radius-1 information only.
func SafeValue(in *mmlp.Instance, v int) float64 {
	best := math.Inf(1)
	for _, i := range in.AgentResources(v) {
		aiv := in.A(i, v)
		cap := 1 / (aiv * float64(len(in.Resource(i))))
		if cap < best {
			best = cap
		}
	}
	if math.IsInf(best, 1) {
		// Iv = ∅ violates the paper's assumptions; 0 keeps feasibility.
		return 0
	}
	return best
}

// SafeRatioBound returns the proven approximation-ratio bound of the safe
// algorithm for the instance: ΔVI (Section 4).
func SafeRatioBound(in *mmlp.Instance) float64 {
	return float64(in.Degrees().MaxVI)
}
