package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// AverageResult is the outcome of the Theorem-3 local averaging algorithm
// together with its per-instance certificate.
type AverageResult struct {
	// X is the combined solution x̃ of equation (10).
	X []float64
	// Radius is the parameter R; the local horizon of the algorithm is
	// Θ(R) (radius 2R+1 suffices for every quantity used).
	Radius int
	// Beta holds β_j = min_{i∈Ij} n_i/N_i per agent (equation (10)).
	Beta []float64
	// BallSize holds |V^j| = |B_H(j, R)| per agent.
	BallSize []int
	// PartyBound is max_k M_k/m_k and ResourceBound is max_i N_i/n_i;
	// their product certifies the approximation ratio of X for this
	// instance (Section 5.3). Both are ≤ the corresponding γ terms:
	// PartyBound ≤ γ(R−1) and ResourceBound ≤ γ(R).
	PartyBound    float64
	ResourceBound float64
	// LocalOmega[u] is ω^u, the optimum of agent u's local LP (9);
	// +Inf when K^u is empty. Every x* feasible for (1) is feasible for
	// (9), so ω^u ≥ ω* for all u — inequality (13) of the paper — and
	// min_u ω^u is a locally computable upper bound on the optimum.
	LocalOmega []float64
	// LocalLPs counts the local LPs solved and LocalPivots the total
	// simplex pivots across them.
	LocalLPs    int
	LocalPivots int
}

// OmegaUpperBound returns min_u ω^u ≥ ω*, the optimistic bound implied by
// inequality (13).
func (r *AverageResult) OmegaUpperBound() float64 {
	bound := math.Inf(1)
	for _, w := range r.LocalOmega {
		bound = min(bound, w)
	}
	return bound
}

// RatioCertificate is the instance-specific approximation guarantee
// max_k M_k/m_k · max_i N_i/n_i proven in Section 5.3.
func (r *AverageResult) RatioCertificate() float64 {
	return r.PartyBound * r.ResourceBound
}

// LocalAverage runs the local approximation algorithm of Theorem 3 with
// radius R on the instance, simulated centrally (see package dist for the
// message-passing execution). For each agent u it solves the local LP (9)
// restricted to the ball V^u = B_H(u, R), and then combines the local
// solutions according to equation (10):
//
//	β_j = min_{i∈Ij} n_i/N_i,   x̃_j = β_j/|V^j| · Σ_{u∈V^j} x^u_j,
//
// where n_i = min{|V^j| : j ∈ Vi} and N_i = |∪_{j∈Vi} V^j|.
//
// The returned solution is feasible (Section 5.2) and approximates the
// optimum within max_k M_k/m_k · max_i N_i/n_i ≤ γ(R−1)·γ(R)
// (Section 5.3).
func LocalAverage(in *mmlp.Instance, g *hypergraph.Graph, radius int) (*AverageResult, error) {
	return localAverage(in, g, radius, 1)
}

// localAverage is the shared flat-array implementation of LocalAverage
// and LocalAverageParallel: balls come from a radius-R BallIndex computed
// once (sharded across the workers), the local LPs run on per-worker
// localSolvers, and the accumulation of equation (10) always runs in
// ascending agent order — so every worker count produces bit-identical
// results.
func localAverage(in *mmlp.Instance, g *hypergraph.Graph, radius, workers int) (*AverageResult, error) {
	if radius < 0 {
		return nil, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	if workers < 1 {
		workers = 1
	}
	n := in.NumAgents()
	res := &AverageResult{
		X:          make([]float64, n),
		Radius:     radius,
		Beta:       make([]float64, n),
		BallSize:   make([]int, n),
		LocalOmega: make([]float64, n),
	}
	csr := csrOf(in, g)
	bi := g.BallIndex(radius, workers)
	for u := 0; u < n; u++ {
		res.BallSize[u] = bi.Size(u)
	}

	// Solve the local LP (9) of every agent and accumulate
	// Σ_{u∈V^j} x^u_j in ascending u order, so the floating-point sums
	// are independent of the worker count. The sequential path streams
	// each x^u into the sums as it is solved; the parallel path buffers
	// the solutions and replays the identical accumulation afterwards.
	sums := make([]float64, n)
	if workers == 1 {
		s := newLocalSolver(csr)
		for u := 0; u < n; u++ {
			xu, omega, p, err := s.solve(bi.Ball(u))
			if err != nil {
				return nil, fmt.Errorf("core: local LP of agent %d: %w", u, err)
			}
			res.LocalOmega[u] = omega
			res.LocalLPs++
			res.LocalPivots += p
			for idx, v := range bi.Ball(u) {
				sums[v] += xu[idx]
			}
		}
	} else {
		xus := make([][]float64, n)
		pivots := make([]int, n)
		var solvers sync.Pool
		solvers.New = func() any { return newLocalSolver(csr) }
		if err := parallelFor(n, workers, func(u int) error {
			s := solvers.Get().(*localSolver)
			defer solvers.Put(s)
			xu, omega, p, err := s.solve(bi.Ball(u))
			if err != nil {
				return fmt.Errorf("core: local LP of agent %d: %w", u, err)
			}
			xus[u] = xu
			res.LocalOmega[u] = omega
			pivots[u] = p
			return nil
		}); err != nil {
			return nil, err
		}
		for u := 0; u < n; u++ {
			res.LocalLPs++
			res.LocalPivots += pivots[u]
			for idx, v := range bi.Ball(u) {
				sums[v] += xus[u][idx]
			}
		}
	}

	// Per-resource quantities N_i = |U_i| and n_i = min |V^j| (Figure 2).
	resourceRatio, resourceBound := resourceRatiosFlat(csr, bi)
	res.ResourceBound = resourceBound

	// β_j and the combined solution x̃ (equation (10)).
	for j := 0; j < n; j++ {
		beta := 1.0
		for _, i := range csr.AgentResources(j) {
			beta = min(beta, resourceRatio[i])
		}
		res.Beta[j] = beta
		res.X[j] = beta / float64(bi.Size(j)) * sums[j]
	}

	// Per-party certificate m_k = |S_k| = |∩_{j∈Vk} V^j|, M_k = max |V^j|.
	// (m_k = 0 — hence an infinite bound — is only possible at R = 0 with
	// |Vk| > 1: for R ≥ 1 the members of a hyperedge are mutually
	// adjacent, so S_k ⊇ Vk.)
	res.PartyBound = partyBoundFlat(csr, bi)
	return res, nil
}

// InstanceView is the read surface a local LP solve needs. A full
// *mmlp.Instance satisfies it via FullView; the distributed runtime
// implements it on top of the partial knowledge a node has gathered, so
// that the message-passing execution reuses the exact same code path (and
// therefore produces bit-identical results).
//
// ResourceRow and PartyRow may omit entries for agents whose coefficients
// the viewer does not know, but must include every agent inside the ball
// being solved. ResourceMembers and PartyMembers must always be the full
// support (agent identities are learned from any member's record).
type InstanceView interface {
	AgentResources(v int) []int
	AgentParties(v int) []int
	ResourceRow(i int) []mmlp.Entry
	PartyRow(k int) []mmlp.Entry
	PartyMembers(k int) []int
}

// FullView adapts a complete instance to the InstanceView interface.
type FullView struct{ In *mmlp.Instance }

// AgentResources returns Iv.
func (f FullView) AgentResources(v int) []int { return f.In.AgentResources(v) }

// AgentParties returns Kv.
func (f FullView) AgentParties(v int) []int { return f.In.AgentParties(v) }

// ResourceRow returns the full row of resource i.
func (f FullView) ResourceRow(i int) []mmlp.Entry { return f.In.Resource(i) }

// PartyRow returns the full row of party k.
func (f FullView) PartyRow(k int) []mmlp.Entry { return f.In.Party(k) }

// PartyMembers returns the agents of Vk.
func (f FullView) PartyMembers(k int) []int {
	row := f.In.Party(k)
	out := make([]int, len(row))
	for j, e := range row {
		out[j] = e.Agent
	}
	return out
}

// SolveBallLP solves the local LP (9) for the given ball through an
// InstanceView; see solveLocalLP for the formulation. Exported for the
// distributed runtime.
func SolveBallLP(view InstanceView, ball []int, inBall map[int]bool) ([]float64, int, error) {
	x, _, pivots, err := solveLocalView(view, ball, inBall)
	return x, pivots, err
}

// solveLocalLP solves problem (9) for the ball V^u: maximise
// ω^u = min_{k∈K^u} Σ_{v∈Vk} c_kv x^u_v subject to
// Σ_{v∈V^u_i} a_iv x^u_v ≤ 1 for each i ∈ I^u, x^u ≥ 0, where
// K^u = {k : Vk ⊆ V^u} and I^u = {i : Vi ∩ V^u ≠ ∅}.
//
// If K^u is empty the objective is vacuous and the algorithm uses x^u = 0,
// which keeps every downstream quantity well-defined without affecting the
// analysis. The solve order (agents, resources, parties all sorted by
// index) makes the result deterministic, as required for all members of
// V^u to recompute the same x^u independently.
func solveLocalLP(in *mmlp.Instance, ball []int, inBall map[int]bool) ([]float64, int, error) {
	x, _, pivots, err := solveLocalOmega(in, ball, inBall)
	return x, pivots, err
}

func solveLocalOmega(in *mmlp.Instance, ball []int, inBall map[int]bool) ([]float64, float64, int, error) {
	return solveLocalView(FullView{In: in}, ball, inBall)
}

func solveLocalView(in InstanceView, ball []int, inBall map[int]bool) ([]float64, float64, int, error) {
	nLoc := len(ball)
	localIdx := make(map[int]int, nLoc)
	for idx, v := range ball {
		localIdx[v] = idx
	}

	// Collect I^u (resources touching the ball) and K^u (parties inside).
	resSeen := make(map[int]bool)
	parSeen := make(map[int]bool)
	var resList, parList []int
	for _, v := range ball {
		for _, i := range in.AgentResources(v) {
			if !resSeen[i] {
				resSeen[i] = true
				resList = append(resList, i)
			}
		}
		for _, k := range in.AgentParties(v) {
			if parSeen[k] {
				continue
			}
			parSeen[k] = true
			inside := true
			for _, member := range in.PartyMembers(k) {
				if !inBall[member] {
					inside = false
					break
				}
			}
			if inside {
				parList = append(parList, k)
			}
		}
	}
	sort.Ints(resList)
	sort.Ints(parList)

	if len(parList) == 0 {
		// ω^u = min over the empty K^u is +∞; x^u = 0 by convention.
		return make([]float64, nLoc), math.Inf(1), 0, nil
	}

	obj := make([]float64, nLoc+1)
	obj[nLoc] = 1
	cons := make([]lp.Constraint, 0, len(resList)+len(parList))
	for _, i := range resList {
		row := make([]float64, nLoc+1)
		for _, e := range in.ResourceRow(i) {
			if idx, ok := localIdx[e.Agent]; ok {
				row[idx] = e.Coeff
			}
		}
		cons = append(cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 1})
	}
	for _, k := range parList {
		row := make([]float64, nLoc+1)
		for _, e := range in.PartyRow(k) {
			row[localIdx[e.Agent]] = -e.Coeff
		}
		row[nLoc] = 1
		cons = append(cons, lp.Constraint{Coeffs: row, Rel: lp.LE, RHS: 0})
	}
	sol, err := lp.Solve(&lp.Problem{Obj: obj, Constraints: cons})
	if err != nil {
		return nil, 0, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, 0, fmt.Errorf("local LP status %v", sol.Status)
	}
	return sol.X[:nLoc], sol.Value, sol.Pivots, nil
}
