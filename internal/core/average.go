package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// AverageResult is the outcome of the Theorem-3 local averaging algorithm
// together with its per-instance certificate.
type AverageResult struct {
	// X is the combined solution x̃ of equation (10).
	X []float64
	// Radius is the parameter R; the local horizon of the algorithm is
	// Θ(R) (radius 2R+1 suffices for every quantity used).
	Radius int
	// Beta holds β_j = min_{i∈Ij} n_i/N_i per agent (equation (10)).
	Beta []float64
	// BallSize holds |V^j| = |B_H(j, R)| per agent.
	BallSize []int
	// PartyBound is max_k M_k/m_k and ResourceBound is max_i N_i/n_i;
	// their product certifies the approximation ratio of X for this
	// instance (Section 5.3). Both are ≤ the corresponding γ terms:
	// PartyBound ≤ γ(R−1) and ResourceBound ≤ γ(R).
	PartyBound    float64
	ResourceBound float64
	// LocalOmega[u] is ω^u, the optimum of agent u's local LP (9);
	// +Inf when K^u is empty. Every x* feasible for (1) is feasible for
	// (9), so ω^u ≥ ω* for all u — inequality (13) of the paper — and
	// min_u ω^u is a locally computable upper bound on the optimum.
	LocalOmega []float64
	// LocalLPs counts the local LPs actually solved by the simplex and
	// LocalPivots the total pivots across them. With isomorphic-ball
	// dedup enabled (the default), agents whose local LPs are
	// element-for-element identical share one solve, so LocalLPs reports
	// distinct solves — O(#orbits) on symmetric instances — while
	// SolvesAvoided counts the agents served from the cache (including
	// the trivial K^u = ∅ balls, which need no simplex at all). On the
	// reference path (NoDedup) LocalLPs is the number of agents, as it
	// always was.
	LocalLPs    int
	LocalPivots int
	// SolvesAvoided counts local LPs answered without running the
	// simplex; 0 on the reference path.
	SolvesAvoided int
}

// OmegaUpperBound returns min_u ω^u ≥ ω*, the optimistic bound implied by
// inequality (13).
func (r *AverageResult) OmegaUpperBound() float64 {
	bound := math.Inf(1)
	for _, w := range r.LocalOmega {
		bound = min(bound, w)
	}
	return bound
}

// RatioCertificate is the instance-specific approximation guarantee
// max_k M_k/m_k · max_i N_i/n_i proven in Section 5.3.
func (r *AverageResult) RatioCertificate() float64 {
	return r.PartyBound * r.ResourceBound
}

// LocalAverage runs the local approximation algorithm of Theorem 3 with
// radius R on the instance, simulated centrally (see package dist for the
// message-passing execution). For each agent u it solves the local LP (9)
// restricted to the ball V^u = B_H(u, R), and then combines the local
// solutions according to equation (10):
//
//	β_j = min_{i∈Ij} n_i/N_i,   x̃_j = β_j/|V^j| · Σ_{u∈V^j} x^u_j,
//
// where n_i = min{|V^j| : j ∈ Vi} and N_i = |∪_{j∈Vi} V^j|.
//
// The returned solution is feasible (Section 5.2) and approximates the
// optimum within max_k M_k/m_k · max_i N_i/n_i ≤ γ(R−1)·γ(R)
// (Section 5.3).
//
// LocalAverage is a thin wrapper over a throwaway Solver session;
// callers issuing repeated queries against one instance should hold a
// Solver instead and amortise the CSR, ball-index and solve-cache
// construction across them. Results are bit-identical either way.
func LocalAverage(in *mmlp.Instance, g *hypergraph.Graph, radius int) (*AverageResult, error) {
	if radius < 0 {
		return nil, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	return NewSolverFromGraph(in, g).LocalAverage(radius)
}

// AverageOptions tunes the execution of the Theorem-3 algorithm. The
// execution options (Workers, NoDedup, Cache) never change any output:
// every combination produces bit-identical X, Beta, BallSize,
// LocalOmega and certificate bounds. Presolve is the one exception —
// see its comment.
type AverageOptions struct {
	// Workers is the number of goroutines solving local LPs; ≤ 1 means
	// sequential.
	Workers int
	// NoDedup disables the isomorphic-ball LP cache and solves every
	// agent's local LP independently — the reference path the dedup
	// layer is tested against.
	NoDedup bool
	// Cache, when non-nil, is consulted and populated by the run,
	// carrying solved local LPs across calls (AdaptiveAverage shares one
	// cache across its radius search; callers may share one across
	// instances — keys are content-based). Ignored when NoDedup is set.
	// The caller must not use one cache from concurrent runs.
	Cache *SolveCache
	// Presolve eliminates redundant rows from each ball LP before
	// fingerprinting and solving (see localSolver.reduce): duplicate
	// and dominated rows, guarded by bitwise coefficient equality, are
	// dropped, so balls differing only in redundant structure share one
	// cache orbit and SolvesAvoided grows on boundary-heavy instances.
	// Presolve is value-exact — the feasible set and ω of every ball LP
	// are unchanged — but a fired reduction may change the simplex pivot
	// sequence, so X can differ from the unpresolved run in the last
	// ulps on instances where reductions fire; on instances where none
	// fire (generic weights) results are bit-identical. All combinations
	// of the other options remain bit-identical to each other at a fixed
	// Presolve setting.
	Presolve bool
}

// LocalAverageOpt is LocalAverage with explicit execution options.
func LocalAverageOpt(in *mmlp.Instance, g *hypergraph.Graph, radius int, opt AverageOptions) (*AverageResult, error) {
	return localAverage(in, g, radius, opt)
}

// localAverage is the shared flat-array implementation of LocalAverage
// and LocalAverageParallel: balls come from a radius-R BallIndex computed
// once (sharded across the workers), the local LPs run on per-worker
// localSolvers, and the accumulation of equation (10) always runs in
// ascending agent order — so every worker count produces bit-identical
// results. With dedup enabled (the default) a cached solution is only
// reused after an exact canonical-key match, so the dedup paths are
// bit-identical to the reference path too.
func localAverage(in *mmlp.Instance, g *hypergraph.Graph, radius int, opt AverageOptions) (*AverageResult, error) {
	if radius < 0 {
		return nil, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	n := in.NumAgents()
	res := &AverageResult{
		X:          make([]float64, n),
		Radius:     radius,
		Beta:       make([]float64, n),
		BallSize:   make([]int, n),
		LocalOmega: make([]float64, n),
	}
	csr := csrOf(in, g)
	bi := g.BallIndex(radius, workers)
	for u := 0; u < n; u++ {
		res.BallSize[u] = bi.Size(u)
	}

	// Solve the local LP (9) of every agent and accumulate
	// Σ_{u∈V^j} x^u_j in ascending u order, so the floating-point sums
	// are independent of the worker count. The sequential path streams
	// each x^u into the sums as it is solved; the parallel paths buffer
	// the solutions and replay the identical accumulation afterwards.
	sums := make([]float64, n)
	switch {
	case workers == 1:
		s := newLocalSolver(csr)
		s.presolve = opt.Presolve
		if !opt.NoDedup {
			if opt.Cache != nil {
				s.cache = opt.Cache.c
			} else {
				s.cache = newSolveCache()
			}
		}
		for u := 0; u < n; u++ {
			var (
				xu    []float64
				omega float64
				p     int
				hit   bool
				err   error
			)
			if s.cache != nil {
				xu, omega, p, hit, err = s.solveCached(bi.Ball(u))
			} else {
				xu, omega, p, err = s.solve(bi.Ball(u))
			}
			if err != nil {
				return nil, fmt.Errorf("core: local LP of agent %d: %w", u, err)
			}
			res.LocalOmega[u] = omega
			if hit {
				res.SolvesAvoided++
			} else {
				res.LocalLPs++
				res.LocalPivots += p
			}
			for idx, v := range bi.Ball(u) {
				sums[v] += xu[idx]
			}
		}
	case opt.NoDedup:
		xus := make([][]float64, n)
		pivots := make([]int, n)
		var solvers sync.Pool
		solvers.New = func() any {
			ls := newLocalSolver(csr)
			ls.presolve = opt.Presolve
			return ls
		}
		if err := runSteal(n, workers, ballSizeCosts(bi, n, workers), nil, func(u int) error {
			s := solvers.Get().(*localSolver)
			defer solvers.Put(s)
			xu, omega, p, err := s.solve(bi.Ball(u))
			if err != nil {
				return fmt.Errorf("core: local LP of agent %d: %w", u, err)
			}
			// s.solve returns workspace-aliased memory; buffer a copy.
			xus[u] = append([]float64(nil), xu...)
			res.LocalOmega[u] = omega
			pivots[u] = p
			return nil
		}); err != nil {
			return nil, err
		}
		for u := 0; u < n; u++ {
			res.LocalLPs++
			res.LocalPivots += pivots[u]
			for idx, v := range bi.Ball(u) {
				sums[v] += xus[u][idx]
			}
		}
	default:
		if err := localAverageParallelDedup(csr, bi, n, workers, opt.Cache, opt.Presolve, res, sums, nil, nil); err != nil {
			return nil, err
		}
	}

	// Per-resource quantities N_i = |U_i| and n_i = min |V^j| (Figure 2).
	resourceRatio, resourceBound := resourceRatiosFlat(csr, bi)
	res.ResourceBound = resourceBound

	// β_j and the combined solution x̃ (equation (10)).
	for j := 0; j < n; j++ {
		beta := 1.0
		for _, i := range csr.AgentResources(j) {
			beta = min(beta, resourceRatio[i])
		}
		res.Beta[j] = beta
		res.X[j] = beta / float64(bi.Size(j)) * sums[j]
	}

	// Per-party certificate m_k = |S_k| = |∩_{j∈Vk} V^j|, M_k = max |V^j|.
	// (m_k = 0 — hence an infinite bound — is only possible at R = 0 with
	// |Vk| > 1: for R ≥ 1 the members of a hyperedge are mutually
	// adjacent, so S_k ⊇ Vk.)
	res.PartyBound = partyBoundFlat(csr, bi)
	return res, nil
}

// localAverageParallelDedup is the deduplicated parallel local-LP phase:
// fingerprint every ball in parallel, group agents by exact canonical
// key in ascending order (so representatives — and with them the
// LocalLPs/LocalPivots accounting — match the sequential streaming
// cache), solve one representative per group in parallel, then replay
// the sequential accumulation. shared, when non-nil, carries solved LPs
// in and out of the run. entriesOut, when non-nil (requires shared),
// receives each agent's cache entry — nil for trivial K^u = ∅ balls —
// which is how the Solver session retains per-agent solutions for
// incremental re-solves. m, when non-nil, receives per-phase latencies
// and binds LP accounting to the pooled workspaces; metrics never change
// any output bit.
func localAverageParallelDedup(csr *hypergraph.CSR, bi *hypergraph.BallIndex, n, workers int, sharedCache *SolveCache, presolve bool, res *AverageResult, sums []float64, entriesOut []*cacheEntry, m *obs.SolveMetrics) error {
	var solvers sync.Pool
	solvers.New = func() any {
		ls := newLocalSolver(csr)
		ls.ws.SetMetrics(m.LPBundle())
		ls.presolve = presolve
		ls.dropCounter = m.PresolveDroppedCounter()
		return ls
	}
	var sw obs.Stopwatch
	var phFingerprint, phGroup, phLPSolve, phAccumulate *obs.Histogram
	if m != nil {
		phFingerprint, phGroup, phLPSolve, phAccumulate =
			m.PhaseFingerprint, m.PhaseGroup, m.PhaseLPSolve, m.PhaseAccumulate
		sw.Start()
	}

	// Phase 1: canonical fingerprints, in parallel, stealing over
	// cost-sorted balls (fingerprint cost scales with ball size).
	keys := make([][]byte, n)
	hashes := make([]uint64, n)
	trivial := make([]bool, n)
	if err := runSteal(n, workers, ballSizeCosts(bi, n, workers), m, func(u int) error {
		s := solvers.Get().(*localSolver)
		defer solvers.Put(s)
		keys[u], hashes[u], trivial[u] = s.fingerprint(bi.Ball(u))
		return nil
	}); err != nil {
		return err
	}
	sw.Lap(phFingerprint)

	// Phase 2: group agents by exact key, ascending, so each group's
	// representative is its smallest agent — the agent the sequential
	// streaming cache would have solved.
	gid := make([]int32, n)
	var reps []int
	bucket := make(map[uint64][]int32)
	for u := 0; u < n; u++ {
		if trivial[u] {
			gid[u] = -1
			continue
		}
		found := int32(-1)
		for _, gi := range bucket[hashes[u]] {
			if bytes.Equal(keys[reps[gi]], keys[u]) {
				found = gi
				break
			}
		}
		if found < 0 {
			found = int32(len(reps))
			reps = append(reps, u)
			bucket[hashes[u]] = append(bucket[hashes[u]], found)
		}
		gid[u] = found
	}

	// Phase 3: solve one representative per group (consulting the shared
	// cache first), in parallel.
	nG := len(reps)
	gX := make([][]float64, nG)
	gOmega := make([]float64, nG)
	gPivots := make([]int, nG)
	gHit := make([]bool, nG)
	gEntry := make([]*cacheEntry, nG)
	var shared *solveCache
	if sharedCache != nil {
		shared = sharedCache.c
		for gi, u := range reps {
			if e := shared.lookup(hashes[u], keys[u]); e != nil {
				gX[gi], gOmega[gi], gPivots[gi], gHit[gi] = e.x, e.omega, e.pivots, true
				gEntry[gi] = e
			}
		}
	}
	sw.Lap(phGroup)
	// Cost hints for the solve phase: cache-served groups cost nothing,
	// the rest scale with their representative's ball size.
	var lpCosts []int64
	if workers > 1 && nG > 1 {
		lpCosts = make([]int64, nG)
		for gi, u := range reps {
			if !gHit[gi] {
				lpCosts[gi] = int64(bi.Size(u))
			}
		}
	}
	if err := runSteal(nG, workers, lpCosts, m, func(gi int) error {
		if gHit[gi] {
			return nil
		}
		s := solvers.Get().(*localSolver)
		defer solvers.Put(s)
		u := reps[gi]
		xu, omega, p, err := s.solve(bi.Ball(u))
		if err != nil {
			return fmt.Errorf("core: local LP of agent %d: %w", u, err)
		}
		gX[gi] = append([]float64(nil), xu...)
		gOmega[gi], gPivots[gi] = omega, p
		return nil
	}); err != nil {
		return err
	}
	if shared != nil {
		for gi, u := range reps {
			if !gHit[gi] {
				gEntry[gi] = shared.insert(hashes[u], keys[u], gX[gi], gOmega[gi], gPivots[gi])
			}
		}
	}
	sw.Lap(phLPSolve)

	// Phase 4: the sequential accumulation order of equation (10).
	// Trivial balls contribute x^u = 0, which the += below would not
	// change bit-for-bit, so they are skipped outright.
	sharedHits := 0
	for u := 0; u < n; u++ {
		if gid[u] < 0 {
			res.LocalOmega[u] = math.Inf(1)
			res.SolvesAvoided++
			continue
		}
		gi := gid[u]
		if entriesOut != nil {
			entriesOut[u] = gEntry[gi]
		}
		res.LocalOmega[u] = gOmega[gi]
		if u == reps[gi] && !gHit[gi] {
			res.LocalLPs++
			res.LocalPivots += gPivots[gi]
		} else {
			res.SolvesAvoided++
			// Mirror the sequential streaming cache's accounting: one
			// hit per non-trivial agent served without a simplex run.
			sharedHits++
		}
		x := gX[gi]
		for idx, v := range bi.Ball(u) {
			sums[v] += x[idx]
		}
	}
	if shared != nil {
		shared.addHits(sharedHits)
	}
	sw.Lap(phAccumulate)
	return nil
}

// InstanceView is the read surface a local LP solve needs. A full
// *mmlp.Instance satisfies it via FullView; the distributed runtime
// implements it on top of the partial knowledge a node has gathered, so
// that the message-passing execution reuses the exact same code path (and
// therefore produces bit-identical results).
//
// ResourceRow and PartyRow may omit entries for agents whose coefficients
// the viewer does not know, but must include every agent inside the ball
// being solved. ResourceMembers and PartyMembers must always be the full
// support (agent identities are learned from any member's record).
type InstanceView interface {
	AgentResources(v int) []int
	AgentParties(v int) []int
	ResourceRow(i int) []mmlp.Entry
	PartyRow(k int) []mmlp.Entry
	PartyMembers(k int) []int
}

// FullView adapts a complete instance to the InstanceView interface.
type FullView struct{ In *mmlp.Instance }

// AgentResources returns Iv.
func (f FullView) AgentResources(v int) []int { return f.In.AgentResources(v) }

// AgentParties returns Kv.
func (f FullView) AgentParties(v int) []int { return f.In.AgentParties(v) }

// ResourceRow returns the full row of resource i.
func (f FullView) ResourceRow(i int) []mmlp.Entry { return f.In.Resource(i) }

// PartyRow returns the full row of party k.
func (f FullView) PartyRow(k int) []mmlp.Entry { return f.In.Party(k) }

// PartyMembers returns the agents of Vk.
func (f FullView) PartyMembers(k int) []int {
	row := f.In.Party(k)
	out := make([]int, len(row))
	for j, e := range row {
		out[j] = e.Agent
	}
	return out
}

// SolveBallLP solves the local LP (9) for the given ball through an
// InstanceView; see solveLocalLP for the formulation. It is the
// one-shot reference entry point (no fingerprinting, no cache) that the
// dedup paths are tested against; callers solving many ball LPs — the
// distributed engines do, per node — should hold a BallSolver instead.
func SolveBallLP(view InstanceView, ball []int, inBall map[int]bool) ([]float64, int, error) {
	s := &BallSolver{ws: lp.NewWorkspace()}
	x, _, pivots, err := s.Solve(view, ball, inBall)
	return x, pivots, err
}

// BallSolver is the per-node local-LP solve kernel of the distributed
// engines: it solves ball LPs through InstanceViews on one reusable
// lp.Workspace and deduplicates isomorphic balls through the same
// exact-key cache as the centralised pipeline. A node re-solving the
// local LP of every agent in its own ball (the redundant recomputation
// that makes the protocol coordination-free) therefore runs the simplex
// only once per distinct LP. Results are bit-identical to SolveBallLP
// because a cached solution is only reused after an exact canonical-key
// match. Not safe for concurrent use.
type BallSolver struct {
	ws     *lp.Workspace
	cache  *solveCache
	keyBuf []byte
}

// NewBallSolver returns a solver with an empty workspace and cache.
func NewBallSolver() *BallSolver {
	return &BallSolver{ws: lp.NewWorkspace(), cache: newSolveCache()}
}

// NewBallSolverWithCache returns a solver backed by the given shared
// cache. The cache is internally synchronised, so many such solvers —
// one per node or per worker of a distributed engine — may run
// concurrently against it; the workspace and key buffer of each solver
// remain single-goroutine. Canonical keys are identical between the
// view-based and CSR-based pipelines, so a cache warmed by a Solver
// session deduplicates the engines' redundant per-node re-solves too.
func NewBallSolverWithCache(c *SolveCache) *BallSolver {
	return &BallSolver{ws: lp.NewWorkspace(), cache: c.c}
}

// SolvesAvoided reports how many Solve calls were answered from the
// isomorphic-ball cache (for a shared cache, across all its holders).
func (s *BallSolver) SolvesAvoided() int {
	if s.cache == nil {
		return 0
	}
	_, hits := s.cache.counts()
	return hits
}

// Solve solves the local LP (9) for the ball through the view, returning
// the local solution, ω^u and the pivots performed (0 on a cache hit).
// The returned slice must be treated as read-only; it is either cache
// memory shared with future calls or workspace memory valid until the
// next Solve.
func (s *BallSolver) Solve(view InstanceView, ball []int, inBall map[int]bool) ([]float64, float64, int, error) {
	nLoc := len(ball)
	localIdx := make(map[int]int, nLoc)
	for idx, v := range ball {
		localIdx[v] = idx
	}

	// Collect I^u (resources touching the ball) and K^u (parties inside).
	resSeen := make(map[int]bool)
	parSeen := make(map[int]bool)
	var resList, parList []int
	for _, v := range ball {
		for _, i := range view.AgentResources(v) {
			if !resSeen[i] {
				resSeen[i] = true
				resList = append(resList, i)
			}
		}
		for _, k := range view.AgentParties(v) {
			if parSeen[k] {
				continue
			}
			parSeen[k] = true
			inside := true
			for _, member := range view.PartyMembers(k) {
				if !inBall[member] {
					inside = false
					break
				}
			}
			if inside {
				parList = append(parList, k)
			}
		}
	}
	sort.Ints(resList)
	sort.Ints(parList)

	if len(parList) == 0 {
		// ω^u = min over the empty K^u is +∞; x^u = 0 by convention.
		return make([]float64, nLoc), math.Inf(1), 0, nil
	}

	// Canonical fingerprint — the same ball-relative encoding as the
	// CSR-based solver, so the dedup guarantee is the same: reuse only
	// on exact key equality. A solver without a cache (SolveBallLP's
	// one-shot reference path) skips fingerprinting entirely.
	var key []byte
	var hash uint64
	if s.cache != nil {
		key = appendKeyHeader(s.keyBuf[:0], nLoc, len(resList))
		for _, i := range resList {
			for _, e := range view.ResourceRow(i) {
				if idx, ok := localIdx[e.Agent]; ok {
					key = appendKeyEntry(key, int32(idx), e.Coeff)
				}
			}
			key = appendKeyRowEnd(key)
		}
		key = binary.LittleEndian.AppendUint32(key, uint32(len(parList)))
		for _, k := range parList {
			for _, e := range view.PartyRow(k) {
				key = appendKeyEntry(key, int32(localIdx[e.Agent]), e.Coeff)
			}
			key = appendKeyRowEnd(key)
		}
		s.keyBuf = key
		hash = fnv64a(key)
		if e := s.cache.lookup(hash, key); e != nil {
			s.cache.addHits(1)
			return e.x, e.omega, 0, nil
		}
	}

	ws := s.ws
	ws.Begin(nLoc + 1)
	ws.Obj()[nLoc] = 1
	for _, i := range resList {
		row := ws.AddRow(lp.LE, 1)
		for _, e := range view.ResourceRow(i) {
			if idx, ok := localIdx[e.Agent]; ok {
				row[idx] = e.Coeff
			}
		}
	}
	for _, k := range parList {
		row := ws.AddRow(lp.LE, 0)
		for _, e := range view.PartyRow(k) {
			row[localIdx[e.Agent]] = -e.Coeff
		}
		row[nLoc] = 1
	}
	sol, err := ws.SolveStaged(false, lp.DantzigThenBland)
	if err != nil {
		return nil, 0, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, 0, fmt.Errorf("local LP status %v", sol.Status)
	}
	x := sol.X[:nLoc]
	if s.cache != nil {
		s.cache.insert(hash, key, x, sol.Value, sol.Pivots)
	}
	return x, sol.Value, sol.Pivots, nil
}

// solveLocalLP solves problem (9) for the ball V^u: maximise
// ω^u = min_{k∈K^u} Σ_{v∈Vk} c_kv x^u_v subject to
// Σ_{v∈V^u_i} a_iv x^u_v ≤ 1 for each i ∈ I^u, x^u ≥ 0, where
// K^u = {k : Vk ⊆ V^u} and I^u = {i : Vi ∩ V^u ≠ ∅}.
//
// If K^u is empty the objective is vacuous and the algorithm uses x^u = 0,
// which keeps every downstream quantity well-defined without affecting the
// analysis. The solve order (agents, resources, parties all sorted by
// index) makes the result deterministic, as required for all members of
// V^u to recompute the same x^u independently.
func solveLocalLP(in *mmlp.Instance, ball []int, inBall map[int]bool) ([]float64, int, error) {
	x, _, pivots, err := solveLocalOmega(in, ball, inBall)
	return x, pivots, err
}

func solveLocalOmega(in *mmlp.Instance, ball []int, inBall map[int]bool) ([]float64, float64, int, error) {
	return solveLocalView(FullView{In: in}, ball, inBall)
}

func solveLocalView(in InstanceView, ball []int, inBall map[int]bool) ([]float64, float64, int, error) {
	return NewBallSolver().Solve(in, ball, inBall)
}
