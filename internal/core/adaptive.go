package core

import (
	"fmt"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// Certificate computes the per-instance approximation certificate of the
// Theorem-3 algorithm at radius R — max_k M_k/m_k and max_i N_i/n_i —
// without solving any local LP: the bounds depend only on the ball
// structure of the communication hypergraph (Figure 2 of the paper).
// Their product bounds the approximation ratio the averaging algorithm
// will achieve, and is itself bounded by γ(R−1)·γ(R).
//
// Certificate allocates its ball index and scratch per call; a Solver
// session computes the bounds once per radius and serves later calls
// from retained state (see Solver.Certificate and CertificateWith), with
// bit-identical values.
func Certificate(in *mmlp.Instance, g *hypergraph.Graph, radius int) (partyBound, resourceBound float64, err error) {
	if radius < 0 {
		return 0, 0, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	csr := csrOf(in, g)
	bi := g.BallIndex(radius, 1)
	partyBound, resourceBound = CertificateWith(csr, bi, NewCertScratch(csr))
	return partyBound, resourceBound, nil
}

// AdaptiveResult is the outcome of AdaptiveAverage.
type AdaptiveResult struct {
	*AverageResult
	// TargetRatio is the requested certificate bound.
	TargetRatio float64
	// Achieved reports whether the certificate at the chosen radius is at
	// most TargetRatio. On bounded-growth families (Theorem 3's local
	// approximation scheme) this always succeeds for some radius; on
	// expanding graphs it can fail at every radius up to MaxRadius.
	Achieved bool
	// Certificates[r] is the certificate value measured at radius r+1
	// while searching (only radii up to the chosen one are present).
	Certificates []float64
}

// AdaptiveAverage realises the "local approximation scheme" reading of
// Theorem 3: given a target approximation ratio α > 1, it grows the
// radius R until the per-instance certificate max_k M_k/m_k · max_i
// N_i/n_i drops to α or below, then runs the averaging algorithm at that
// radius. The paper emphasises that the algorithm need not know any bound
// on γ in advance — it "achieves a good approximation ratio if such
// bounds happen to exist"; AdaptiveAverage turns that remark into an API.
//
// The search costs only ball computations (no LP solves) per candidate
// radius. If no radius up to maxRadius meets the target, the averaging
// algorithm runs at maxRadius and Achieved is false.
//
// AdaptiveAverage is a thin wrapper over a throwaway Solver session
// (which retains each probed radius's certificate); results are
// bit-identical to AdaptiveAverageOpt with default options.
func AdaptiveAverage(in *mmlp.Instance, g *hypergraph.Graph, targetRatio float64, maxRadius int) (*AdaptiveResult, error) {
	return NewSolverFromGraph(in, g).Adaptive(targetRatio, maxRadius)
}

// AdaptiveAverageOpt is AdaptiveAverage with explicit execution options
// for the final averaging run (the radius search itself solves no local
// LPs — certificates are pure ball structure). Canonical fingerprint
// keys are radius-independent (they encode only the ball-relative LP),
// so a caller probing several targets or radii can pass one
// AverageOptions.Cache through repeated calls and pay for each distinct
// local LP once across all of them.
func AdaptiveAverageOpt(in *mmlp.Instance, g *hypergraph.Graph, targetRatio float64, maxRadius int, opt AverageOptions) (*AdaptiveResult, error) {
	if targetRatio <= 1 {
		return nil, fmt.Errorf("core: target ratio must exceed 1, got %v", targetRatio)
	}
	if maxRadius < 1 {
		return nil, fmt.Errorf("core: maxRadius must be ≥ 1, got %d", maxRadius)
	}
	out := &AdaptiveResult{TargetRatio: targetRatio}
	chosen := maxRadius
	for radius := 1; radius <= maxRadius; radius++ {
		pb, rb, err := Certificate(in, g, radius)
		if err != nil {
			return nil, err
		}
		cert := pb * rb
		out.Certificates = append(out.Certificates, cert)
		if cert <= targetRatio {
			chosen = radius
			out.Achieved = true
			break
		}
	}
	res, err := LocalAverageOpt(in, g, chosen, opt)
	if err != nil {
		return nil, err
	}
	out.AverageResult = res
	return out, nil
}
