package core

import (
	"fmt"
	"math"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// Certificate computes the per-instance approximation certificate of the
// Theorem-3 algorithm at radius R — max_k M_k/m_k and max_i N_i/n_i —
// without solving any local LP: the bounds depend only on the ball
// structure of the communication hypergraph (Figure 2 of the paper).
// Their product bounds the approximation ratio the averaging algorithm
// will achieve, and is itself bounded by γ(R−1)·γ(R).
func Certificate(in *mmlp.Instance, g *hypergraph.Graph, radius int) (partyBound, resourceBound float64, err error) {
	if radius < 0 {
		return 0, 0, fmt.Errorf("core: radius must be ≥ 0, got %d", radius)
	}
	n := in.NumAgents()
	balls := make([][]int, n)
	inBall := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		balls[u] = g.Ball(u, radius)
		set := make(map[int]bool, len(balls[u]))
		for _, v := range balls[u] {
			set[v] = true
		}
		inBall[u] = set
	}
	partyBound, resourceBound = certificateBounds(in, balls, inBall)
	return partyBound, resourceBound, nil
}

// certificateBounds computes max_k M_k/m_k and max_i N_i/n_i from
// precomputed balls.
func certificateBounds(in *mmlp.Instance, balls [][]int, inBall []map[int]bool) (partyBound, resourceBound float64) {
	_, resourceBound = resourceRatios(in, balls)
	return partyBoundOf(in, balls, inBall), resourceBound
}

// resourceRatios computes n_i/N_i per resource (the ingredients of the β
// weights of equation (10)) and the aggregate bound max_i N_i/n_i.
func resourceRatios(in *mmlp.Instance, balls [][]int) (ratios []float64, resourceBound float64) {
	nRes := in.NumResources()
	ratios = make([]float64, nRes)
	resourceBound = 1
	for i := 0; i < nRes; i++ {
		union := make(map[int]bool)
		ni := math.MaxInt
		for _, e := range in.Resource(i) {
			j := e.Agent
			for _, w := range balls[j] {
				union[w] = true
			}
			if len(balls[j]) < ni {
				ni = len(balls[j])
			}
		}
		Ni := len(union)
		ratios[i] = float64(ni) / float64(Ni)
		resourceBound = max(resourceBound, float64(Ni)/float64(ni))
	}
	return ratios, resourceBound
}

// partyBoundOf computes max_k M_k/m_k; +Inf when some S_k is empty
// (possible only at radius 0 with |Vk| > 1).
func partyBoundOf(in *mmlp.Instance, balls [][]int, inBall []map[int]bool) float64 {
	bound := 1.0
	for k := 0; k < in.NumParties(); k++ {
		row := in.Party(k)
		mk, Mk := 0, 0
		first := row[0].Agent
		for _, w := range balls[first] {
			inAll := true
			for _, e := range row[1:] {
				if !inBall[e.Agent][w] {
					inAll = false
					break
				}
			}
			if inAll {
				mk++
			}
		}
		for _, e := range row {
			Mk = max(Mk, len(balls[e.Agent]))
		}
		if mk == 0 {
			bound = math.Inf(1)
			continue
		}
		bound = max(bound, float64(Mk)/float64(mk))
	}
	return bound
}

// AdaptiveResult is the outcome of AdaptiveAverage.
type AdaptiveResult struct {
	*AverageResult
	// TargetRatio is the requested certificate bound.
	TargetRatio float64
	// Achieved reports whether the certificate at the chosen radius is at
	// most TargetRatio. On bounded-growth families (Theorem 3's local
	// approximation scheme) this always succeeds for some radius; on
	// expanding graphs it can fail at every radius up to MaxRadius.
	Achieved bool
	// Certificates[r] is the certificate value measured at radius r+1
	// while searching (only radii up to the chosen one are present).
	Certificates []float64
}

// AdaptiveAverage realises the "local approximation scheme" reading of
// Theorem 3: given a target approximation ratio α > 1, it grows the
// radius R until the per-instance certificate max_k M_k/m_k · max_i
// N_i/n_i drops to α or below, then runs the averaging algorithm at that
// radius. The paper emphasises that the algorithm need not know any bound
// on γ in advance — it "achieves a good approximation ratio if such
// bounds happen to exist"; AdaptiveAverage turns that remark into an API.
//
// The search costs only ball computations (no LP solves) per candidate
// radius. If no radius up to maxRadius meets the target, the averaging
// algorithm runs at maxRadius and Achieved is false.
func AdaptiveAverage(in *mmlp.Instance, g *hypergraph.Graph, targetRatio float64, maxRadius int) (*AdaptiveResult, error) {
	if targetRatio <= 1 {
		return nil, fmt.Errorf("core: target ratio must exceed 1, got %v", targetRatio)
	}
	if maxRadius < 1 {
		return nil, fmt.Errorf("core: maxRadius must be ≥ 1, got %d", maxRadius)
	}
	out := &AdaptiveResult{TargetRatio: targetRatio}
	chosen := maxRadius
	for radius := 1; radius <= maxRadius; radius++ {
		pb, rb, err := Certificate(in, g, radius)
		if err != nil {
			return nil, err
		}
		cert := pb * rb
		out.Certificates = append(out.Certificates, cert)
		if cert <= targetRatio {
			chosen = radius
			out.Achieved = true
			break
		}
	}
	res, err := LocalAverage(in, g, chosen)
	if err != nil {
		return nil, err
	}
	out.AverageResult = res
	return out, nil
}
