// Package core implements the paper's local approximation algorithms for
// max-min linear programs:
//
//   - the safe algorithm of Papadimitriou and Yannakakis (equation (2) of
//     the paper), a local ΔVI-approximation with horizon r = 1;
//   - the local averaging algorithm of Theorem 3 (equations (9)–(10)),
//     which achieves approximation ratio γ(R−1)·γ(R) with horizon Θ(R) by
//     averaging optimal solutions of radius-R local LPs.
//
// Both algorithms are exposed in two forms: a direct, centralised
// simulation (this package) and a message-passing protocol for the
// distributed runtime (package dist). The centralised form is the
// reference; the distributed form is tested to agree with it exactly.
//
// All functions are deterministic: an agent's output depends only on its
// radius-r view, which is the defining property of a local algorithm
// (Section 1.5 of the paper). The view-locality is verified in tests by
// comparing outputs of agents with identical canonical views.
package core
