package core

import (
	"fmt"
	"math"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// BallProblem assembles agent u's radius-R ball LP (9) as a standalone
// lp.Problem — the exact rows localSolver stages for its simplex, so the
// export is bit-faithful to what the averaging algorithm solves. The
// variables are the ball's agents in ball order plus one trailing ω
// column; the objective maximises ω. With presolve enabled the same row
// reduction the solver applies (and fingerprints) is applied here, so
// an exported presolved LP matches the deduplicated canonical form.
//
// The returned slice lists the ball's global agent ids in local-column
// order. Balls with empty K^u have no LP (ω^u = +∞ by convention); they
// are reported as an error rather than an empty problem.
func BallProblem(in *mmlp.Instance, g *hypergraph.Graph, u, radius int, presolve bool) (*lp.Problem, []int32, error) {
	if u < 0 || u >= in.NumAgents() {
		return nil, nil, fmt.Errorf("agent %d out of range [0,%d)", u, in.NumAgents())
	}
	if radius < 0 {
		return nil, nil, fmt.Errorf("radius %d must be ≥ 0", radius)
	}
	csr := csrOf(in, g)
	bi := g.BallIndex(radius, 1)
	ball := bi.Ball(u)
	s := newLocalSolver(csr)
	s.presolve = presolve
	s.enter(ball)
	defer s.leave(ball)
	if len(s.parList) == 0 {
		return nil, nil, fmt.Errorf("agent %d has no parties within radius %d: ω^u = +∞, no LP to export", u, radius)
	}
	nLoc := len(ball)
	p := &lp.Problem{Minimize: false, Obj: make([]float64, nLoc+1)}
	p.Obj[nLoc] = 1
	for ri, i := range s.resList {
		if s.presolve && !s.resKeep[ri] {
			continue
		}
		c := lp.Constraint{Rel: lp.LE, RHS: 1, Coeffs: make([]float64, nLoc+1)}
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		for j, a := range agents {
			if idx := s.localIdx[a]; idx >= 0 {
				c.Coeffs[idx] = coeffs[j]
			}
		}
		p.Constraints = append(p.Constraints, c)
	}
	for pi, k := range s.parList {
		if s.presolve && !s.parKeep[pi] {
			continue
		}
		c := lp.Constraint{Rel: lp.LE, RHS: 0, Coeffs: make([]float64, nLoc+1)}
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		for j, a := range agents {
			c.Coeffs[s.localIdx[a]] = -coeffs[j]
		}
		c.Coeffs[nLoc] = 1
		p.Constraints = append(p.Constraints, c)
	}
	// Guard against NaN weights sneaking into an export: the solvers
	// reject them later, the MPS writer rejects them now; fail early
	// with coordinates instead.
	for i, c := range p.Constraints {
		for j, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("non-finite coefficient %v in ball row %d, column %d", v, i, j)
			}
		}
	}
	return p, append([]int32(nil), ball...), nil
}
