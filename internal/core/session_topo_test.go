package core

import (
	"math/rand"
	"sync"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/mmlp"
)

// randomChurnDeltas is randomDeltas made safe for churned instances:
// dead rows (empty support) are skipped. It may return fewer than k
// deltas on heavily-churned instances.
func randomChurnDeltas(in *mmlp.Instance, rng *rand.Rand, k int) []WeightDelta {
	deltas := make([]WeightDelta, 0, k)
	for attempts := 0; len(deltas) < k && attempts < 50*k; attempts++ {
		if rng.Intn(2) == 0 && in.NumResources() > 0 {
			i := rng.Intn(in.NumResources())
			row := in.Resource(i)
			if len(row) == 0 {
				continue
			}
			e := row[rng.Intn(len(row))]
			deltas = append(deltas, WeightDelta{Kind: ResourceWeight, Row: i, Agent: e.Agent, Coeff: 0.1 + 2*rng.Float64()})
		} else if in.NumParties() > 0 {
			k := rng.Intn(in.NumParties())
			row := in.Party(k)
			if len(row) == 0 {
				continue
			}
			e := row[rng.Intn(len(row))]
			deltas = append(deltas, WeightDelta{Kind: PartyWeight, Row: k, Agent: e.Agent, Coeff: 0.1 + 2*rng.Float64()})
		}
	}
	return deltas
}

// applyMirrorDeltas folds weight deltas into the independent mirror
// instance the cold solvers are built from.
func applyMirrorDeltas(t *testing.T, mirror *mmlp.Instance, deltas []WeightDelta) *mmlp.Instance {
	t.Helper()
	var res, par []mmlp.CoeffUpdate
	for _, d := range deltas {
		u := mmlp.CoeffUpdate{Row: d.Row, Agent: d.Agent, Coeff: d.Coeff}
		if d.Kind == ResourceWeight {
			res = append(res, u)
		} else {
			par = append(par, u)
		}
	}
	out, err := mirror.UpdateCoeffs(res, par)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSessionTopologyVsCold is the structural-invalidation correctness
// check: interleaved random topology and weight batches against one warm
// session, each verified bit-identical — Safe, LocalAverage and
// Certificate — to a cold session over an independently mutated mirror
// instance and to the NoDedup reference path, across instance families
// and radii, with zero CSR or ball-index rebuilds.
func TestSessionTopologyVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tor, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	cyc, _ := gen.Cycle(40, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	rnd := gen.Random(gen.RandomOptions{Agents: 50, Resources: 40, Parties: 20, MaxVI: 3, MaxVK: 3}, rng)
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 60, Radius: 0.17, MaxNeighbors: 4}, rng)
	cases := []struct {
		name   string
		in     *mmlp.Instance
		radius int
	}{
		{"torus 8x8 weighted R=1", tor, 1},
		{"torus 8x8 weighted R=2", tor, 2},
		{"cycle 40 weighted R=2", cyc, 2},
		{"random n=50 R=1", rnd, 1},
		{"unit-disk n=60 R=1", disk, 1},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			s := NewSolverFromGraph(cse.in, sessionGraph(cse.in))
			if _, err := s.LocalAverage(cse.radius); err != nil {
				t.Fatal(err)
			}
			before := s.Stats()

			mirror := cse.in
			topoBatches := 0
			for batch := 0; batch < 6; batch++ {
				if batch%2 == 0 {
					ops, next := gen.RandomTopoBatch(mirror, rng, 1+rng.Intn(4))
					if _, err := s.UpdateTopology(ops); err != nil {
						t.Fatal(err)
					}
					mirror = next
					topoBatches++
				} else {
					deltas := randomChurnDeltas(mirror, rng, 1+rng.Intn(4))
					if len(deltas) == 0 {
						continue
					}
					if err := s.UpdateWeights(deltas); err != nil {
						t.Fatal(err)
					}
					mirror = applyMirrorDeltas(t, mirror, deltas)
				}

				inc, err := s.LocalAverage(cse.radius)
				if err != nil {
					t.Fatal(err)
				}
				coldSess, err := NewSolverFromGraph(mirror, sessionGraph(mirror)).LocalAverage(cse.radius)
				if err != nil {
					t.Fatal(err)
				}
				sameAverageResult(t, "incremental vs cold session", inc, coldSess)
				ref, err := LocalAverageOpt(mirror, sessionGraph(mirror), cse.radius, AverageOptions{NoDedup: true})
				if err != nil {
					t.Fatal(err)
				}
				sameAverageResult(t, "incremental vs reference", inc, ref)

				safe := s.Safe()
				safeRef := Safe(mirror)
				for v := range safeRef {
					if safe[v] != safeRef[v] {
						t.Fatalf("Safe[%d] = %v, want %v", v, safe[v], safeRef[v])
					}
				}
				pb, rb, err := s.Certificate(cse.radius)
				if err != nil {
					t.Fatal(err)
				}
				pbRef, rbRef, err := Certificate(mirror, sessionGraph(mirror), cse.radius)
				if err != nil {
					t.Fatal(err)
				}
				if pb != pbRef || rb != rbRef {
					t.Fatalf("Certificate = (%v,%v), want (%v,%v)", pb, rb, pbRef, rbRef)
				}
			}

			st := s.Stats()
			if st.CSRBuilds != before.CSRBuilds || st.BallIndexBuilds != before.BallIndexBuilds {
				t.Errorf("structural updates rebuilt structures: CSR %d->%d, balls %d->%d",
					before.CSRBuilds, st.CSRBuilds, before.BallIndexBuilds, st.BallIndexBuilds)
			}
			if st.TopoUpdates != topoBatches {
				t.Errorf("TopoUpdates = %d, want %d", st.TopoUpdates, topoBatches)
			}
			if st.BallsPatched == 0 {
				t.Error("no balls patched despite topology churn")
			}
			if st.AgentsResolved == 0 {
				t.Error("incremental passes resolved no agents")
			}
		})
	}
}

// TestSessionTopologySubsetResolve checks the economy claim for
// structural churn: one edge change on a large instance re-solves only
// the ball-local neighbourhood and patches only the balls around it,
// with no structure rebuilt.
func TestSessionTopologySubsetResolve(t *testing.T) {
	in, _ := gen.Torus([]int{16, 16}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	if _, err := s.LocalAverage(2); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if _, err := s.UpdateTopology([]mmlp.TopoUpdate{mmlp.AddResourceEdge(0, 18, 1.25)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LocalAverage(2); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	n := in.NumAgents()
	if st.AgentsResolved == 0 || st.AgentsResolved >= n/2 {
		t.Errorf("one structural op re-solved %d of %d agents; want a small ball-local subset", st.AgentsResolved, n)
	}
	if st.BallsPatched == 0 || st.BallsPatched >= n/2 {
		t.Errorf("one structural op patched %d of %d balls; want a small ball-local subset", st.BallsPatched, n)
	}
	if st.CSRBuilds != before.CSRBuilds || st.BallIndexBuilds != before.BallIndexBuilds {
		t.Errorf("structural update rebuilt structures: CSR %d->%d, balls %d->%d",
			before.CSRBuilds, st.CSRBuilds, before.BallIndexBuilds, st.BallIndexBuilds)
	}
}

// TestSessionTopologyValidation checks that invalid structural batches
// are rejected atomically: no state change, no counters, and the session
// still answers queries identically to before.
func TestSessionTopologyValidation(t *testing.T) {
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	before, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]mmlp.TopoUpdate{
		{mmlp.RemoveAgent(-1)},
		{mmlp.RemoveAgent(in.NumAgents())},
		{mmlp.AddResourceEdge(0, in.Resource(0)[0].Agent, 1)},          // already present
		{mmlp.AddResourceEdge(in.NumResources()+1, 0, 1)},              // row gap
		{mmlp.AddPartyEdge(0, 0, -1)},                                  // bad coefficient
		{mmlp.RemoveResourceEdge(0, in.NumAgents()-1)},                 // not in support
		{mmlp.AddAgent(), mmlp.AddResourceEdge(0, in.NumAgents(), -3)}, // second op invalid
	}
	for i, ups := range bad {
		if _, err := s.UpdateTopology(ups); err == nil {
			t.Errorf("bad topology batch %d accepted", i)
		}
	}
	after, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	sameAverageResult(t, "after rejected topology batches", after, before)
	if got := s.Stats().TopoUpdates; got != 0 {
		t.Errorf("rejected batches counted: TopoUpdates = %d", got)
	}
}

// TestSessionTopologyLinearization hammers one session with concurrent
// queries, weight patches and topology patches (run under -race in CI),
// recording the exact version sequence the serialised updates produce.
// Every LocalAverage result captured concurrently must be bit-identical
// to a cold solve of one of those versions — the linearisation
// guarantee: each query observed some prefix of the update history,
// never a mix.
func TestSessionTopologyLinearization(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	s := NewSolverFromGraph(in, sessionGraph(in))
	const radius = 1

	var verMu sync.Mutex
	versions := []*mmlp.Instance{in}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	var resMu sync.Mutex
	var captured []*AverageResult

	// Two updater goroutines: updates serialise on verMu so the version
	// history is exact (the session call happens inside the critical
	// section).
	for gi := 0; gi < 2; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + gi)))
			for iter := 0; iter < 6; iter++ {
				verMu.Lock()
				cur := versions[len(versions)-1]
				if iter%2 == 0 {
					ops, next := gen.RandomTopoBatch(cur, rng, 1+rng.Intn(3))
					if _, err := s.UpdateTopology(ops); err != nil {
						verMu.Unlock()
						errs <- err
						return
					}
					versions = append(versions, next)
				} else {
					deltas := randomChurnDeltas(cur, rng, 1+rng.Intn(3))
					if len(deltas) > 0 {
						if err := s.UpdateWeights(deltas); err != nil {
							verMu.Unlock()
							errs <- err
							return
						}
						var res, par []mmlp.CoeffUpdate
						for _, d := range deltas {
							u := mmlp.CoeffUpdate{Row: d.Row, Agent: d.Agent, Coeff: d.Coeff}
							if d.Kind == ResourceWeight {
								res = append(res, u)
							} else {
								par = append(par, u)
							}
						}
						next, err := cur.UpdateCoeffs(res, par)
						if err != nil {
							verMu.Unlock()
							errs <- err
							return
						}
						versions = append(versions, next)
					}
				}
				verMu.Unlock()
			}
		}(gi)
	}
	// Three query goroutines capturing results concurrently.
	for gi := 0; gi < 3; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				res, err := s.LocalAverage(radius)
				if err != nil {
					errs <- err
					return
				}
				resMu.Lock()
				captured = append(captured, res)
				resMu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Cold-solve every version once, then match captured results.
	refs := make([]*AverageResult, len(versions))
	for i, v := range versions {
		ref, err := NewSolverFromGraph(v, sessionGraph(v)).LocalAverage(radius)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	match := func(a, b *AverageResult) bool {
		if len(a.X) != len(b.X) {
			return false
		}
		for v := range a.X {
			if a.X[v] != b.X[v] || a.LocalOmega[v] != b.LocalOmega[v] {
				return false
			}
		}
		return a.PartyBound == b.PartyBound && a.ResourceBound == b.ResourceBound
	}
	for ci, got := range captured {
		ok := false
		for _, ref := range refs {
			if match(got, ref) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("captured result %d matches no serial version (of %d)", ci, len(versions))
		}
	}
}

// TestSessionTopologyThenWeights pins the composition: structural churn
// followed by weight updates on the churned structure (including rows
// and agents created by the churn) stays bit-identical to cold.
func TestSessionTopologyThenWeights(t *testing.T) {
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	s := NewSolverFromGraph(in, sessionGraph(in))
	if _, err := s.LocalAverage(1); err != nil {
		t.Fatal(err)
	}
	// Add an agent wired into resource 3 and a brand-new resource row.
	newAgent := in.NumAgents()
	newRes := in.NumResources()
	ops := []mmlp.TopoUpdate{
		mmlp.AddAgent(),
		mmlp.AddResourceEdge(3, newAgent, 0.5),
		mmlp.AddResourceEdge(newRes, newAgent, 1),
		mmlp.AddResourceEdge(newRes, 7, 2),
		mmlp.AddPartyEdge(11, newAgent, 1.5),
	}
	mirror, _, err := in.ApplyTopo(ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateTopology(ops); err != nil {
		t.Fatal(err)
	}
	// Now patch a coefficient on the churn-created row. The graph
	// handed out after the churn is a snapshot: the in-place weight
	// patch must clone the coefficient arrays first, never mutate it.
	_, heldG := s.Snapshot()
	heldCoeff := heldG.CSR().ResourceCoeffs(newRes)[0]
	deltas := []WeightDelta{{Kind: ResourceWeight, Row: newRes, Agent: newAgent, Coeff: 3}}
	if err := s.UpdateWeights(deltas); err != nil {
		t.Fatal(err)
	}
	if got := heldG.CSR().ResourceCoeffs(newRes)[0]; got != heldCoeff {
		t.Fatalf("weight update mutated the held graph snapshot: coeff %v -> %v", heldCoeff, got)
	}
	mirror = applyMirrorDeltas(t, mirror, deltas)

	inc, err := s.LocalAverage(1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LocalAverageOpt(mirror, sessionGraph(mirror), 1, AverageOptions{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	sameAverageResult(t, "topo+weights", inc, ref)
}
