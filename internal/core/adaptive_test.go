package core

import (
	"math"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/lp"
)

func TestCertificateMatchesLocalAverage(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := graphOf(in)
	for _, R := range []int{1, 2} {
		pb, rb, err := Certificate(in, g, R)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LocalAverage(in, g, R)
		if err != nil {
			t.Fatal(err)
		}
		if pb != res.PartyBound || rb != res.ResourceBound {
			t.Fatalf("R=%d: Certificate (%v,%v) disagrees with LocalAverage (%v,%v)",
				R, pb, rb, res.PartyBound, res.ResourceBound)
		}
	}
	if _, _, err := Certificate(in, g, -1); err == nil {
		t.Fatal("negative radius must fail")
	}
}

func TestAdaptiveAverageOnCycle(t *testing.T) {
	// Cycles have bounded growth, so every target ratio > 1 is reachable
	// at some radius (the local approximation scheme of Theorem 3).
	in, _ := gen.Cycle(64, gen.LatticeOptions{})
	g := graphOf(in)
	for _, target := range []float64{3.0, 1.8, 1.5} {
		res, err := AdaptiveAverage(in, g, target, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Achieved {
			t.Fatalf("target %v not achieved; certificates %v", target, res.Certificates)
		}
		if res.RatioCertificate() > target+1e-9 {
			t.Fatalf("certificate %v exceeds target %v", res.RatioCertificate(), target)
		}
		// The actual ratio is within the certificate.
		opt, err := lp.SolveMaxMin(in)
		if err != nil {
			t.Fatal(err)
		}
		ratio := opt.Omega / in.Objective(res.X)
		if ratio > res.RatioCertificate()+1e-6 {
			t.Fatalf("measured ratio %v above certificate %v", ratio, res.RatioCertificate())
		}
	}
}

func TestAdaptiveAveragePicksMinimalRadius(t *testing.T) {
	in, _ := gen.Cycle(64, gen.LatticeOptions{})
	g := graphOf(in)
	res, err := AdaptiveAverage(in, g, 2.0, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Every earlier radius must have failed the target.
	for r, cert := range res.Certificates[:len(res.Certificates)-1] {
		if cert <= 2.0 {
			t.Fatalf("radius %d already had certificate %v ≤ target but a larger radius was chosen", r+1, cert)
		}
	}
	if got := res.Certificates[len(res.Certificates)-1]; got > 2.0 {
		t.Fatalf("chosen radius certificate %v > target", got)
	}
	if res.Radius != len(res.Certificates) {
		t.Fatalf("radius %d inconsistent with %d certificates probed", res.Radius, len(res.Certificates))
	}
}

func TestAdaptiveAverageFailsOnTree(t *testing.T) {
	// Trees have expanding neighbourhoods: γ stays ≈ arity, so ambitious
	// targets are unreachable — Theorem 3 cannot give a scheme here, in
	// line with the Theorem-1 lower bound.
	in := gen.TreeInstance(3, 4)
	g := graphOf(in)
	res, err := AdaptiveAverage(in, g, 1.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved {
		t.Fatalf("target 1.05 reported achieved on a tree; certificates %v", res.Certificates)
	}
	// The fallback still yields a feasible solution at maxRadius.
	if res.Radius != 3 {
		t.Fatalf("fallback radius = %d, want maxRadius 3", res.Radius)
	}
	if v := in.Violation(res.X); v > 1e-9 {
		t.Fatalf("fallback solution infeasible: %v", v)
	}
}

func TestAdaptiveAverageValidation(t *testing.T) {
	in := gen.SafeTight(2, 1)
	g := graphOf(in)
	if _, err := AdaptiveAverage(in, g, 1.0, 3); err == nil {
		t.Fatal("target ≤ 1 must fail")
	}
	if _, err := AdaptiveAverage(in, g, math.Inf(1), 0); err == nil {
		t.Fatal("maxRadius < 1 must fail")
	}
}
