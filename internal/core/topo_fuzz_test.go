package core

import (
	"math/rand"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/mmlp"
)

// FuzzTopologyIncrementalVsCold is the differential churn fuzzer: a
// random instance family (derived from seed) takes a script-driven
// sequence of interleaved topology and weight update batches against one
// warm Solver session, and after every batch the session's Safe,
// LocalAverage and Certificate outputs must be bit-identical to a cold
// solver built over an independently mutated mirror instance. A 10s
// smoke run is wired into CI next to the other fuzz targets.
func FuzzTopologyIncrementalVsCold(f *testing.F) {
	f.Add(int64(1), []byte{0, 3, 7, 2})
	f.Add(int64(42), []byte{9, 1})
	f.Add(int64(7), []byte{4, 4, 4, 4, 4, 4})
	f.Add(int64(-13), []byte{255, 128, 63})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		var in *mmlp.Instance
		switch rng.Intn(3) {
		case 0:
			in, _ = gen.Torus([]int{3 + rng.Intn(3), 3 + rng.Intn(3)}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
		case 1:
			in = gen.Random(gen.RandomOptions{
				Agents:    8 + rng.Intn(20),
				Resources: 6 + rng.Intn(15),
				Parties:   2 + rng.Intn(8),
				MaxVI:     1 + rng.Intn(3),
				MaxVK:     1 + rng.Intn(3),
			}, rng)
		default:
			in, _ = gen.Cycle(8+rng.Intn(16), gen.LatticeOptions{RandomWeights: true, Rng: rng})
		}
		radius := 1 + rng.Intn(2)

		s := NewSolverFromGraph(in, sessionGraph(in))
		if _, err := s.LocalAverage(radius); err != nil {
			t.Fatalf("warm solve: %v", err)
		}
		ballBuilds := s.Stats().BallIndexBuilds

		mirror := in
		for bi := 0; bi < len(script) && bi < 6; bi++ {
			b := int(script[bi])
			if b%2 == 0 {
				ops, next := gen.RandomTopoBatch(mirror, rng, 1+(b/2)%4)
				if _, err := s.UpdateTopology(ops); err != nil {
					t.Fatalf("topology batch %d: %v", bi, err)
				}
				mirror = next
			} else {
				deltas := randomChurnDeltas(mirror, rng, 1+(b/2)%4)
				if len(deltas) == 0 {
					continue
				}
				if err := s.UpdateWeights(deltas); err != nil {
					t.Fatalf("weight batch %d: %v", bi, err)
				}
				mirror = applyMirrorDeltas(t, mirror, deltas)
			}

			inc, err := s.LocalAverage(radius)
			if err != nil {
				t.Fatalf("incremental solve after batch %d: %v", bi, err)
			}
			cold, err := NewSolverFromGraph(mirror, sessionGraph(mirror)).LocalAverage(radius)
			if err != nil {
				t.Fatalf("cold solve after batch %d: %v", bi, err)
			}
			sameAverageResult(t, "fuzz incremental vs cold", inc, cold)
			if v := mirror.Violation(inc.X); v > 1e-9 {
				t.Fatalf("batch %d: incremental X infeasible on mutated instance (violation %v)", bi, v)
			}

			safe := s.Safe()
			for v, want := range Safe(mirror) {
				if safe[v] != want {
					t.Fatalf("batch %d: Safe[%d] = %v, want %v", bi, v, safe[v], want)
				}
			}
			pb, rb, err := s.Certificate(radius)
			if err != nil {
				t.Fatal(err)
			}
			pbRef, rbRef, err := Certificate(mirror, sessionGraph(mirror), radius)
			if err != nil {
				t.Fatal(err)
			}
			if pb != pbRef || rb != rbRef {
				t.Fatalf("batch %d: certificate (%v,%v) != (%v,%v)", bi, pb, rb, pbRef, rbRef)
			}
		}
		if got := s.Stats().BallIndexBuilds; got != ballBuilds {
			t.Fatalf("churn rebuilt ball indexes: %d -> %d", ballBuilds, got)
		}
	})
}
