package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// dedupCases are the instance families the dedup layer must be
// bit-exact on: the symmetric families where it collapses orbits, and
// the irregular ones where it must simply do no harm.
func dedupCases(t testing.TB) []struct {
	name   string
	in     *mmlp.Instance
	radius int
} {
	rng := rand.New(rand.NewSource(11))
	tor, _ := gen.Torus([]int{12, 12}, gen.LatticeOptions{})
	torW, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	cyc, _ := gen.Cycle(40, gen.LatticeOptions{})
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 80, Radius: 0.15, MaxNeighbors: 5}, rng)
	rnd := gen.Random(gen.RandomOptions{Agents: 50, Resources: 40, Parties: 20, MaxVI: 3, MaxVK: 3}, rng)
	return []struct {
		name   string
		in     *mmlp.Instance
		radius int
	}{
		{"torus 12x12 R=1", tor, 1},
		{"torus 6x6 weighted R=1", torW, 1},
		{"torus 6x6 weighted R=2", torW, 2},
		{"cycle 40 R=2", cyc, 2},
		{"cycle 40 R=0", cyc, 0},
		{"unit-disk R=1", disk, 1},
		{"random R=1", rnd, 1},
	}
}

// TestDedupBitIdentical is the safety property of the dedup layer:
// across symmetric, geometric and random instances, with any worker
// count, the dedup run's X, Beta and LocalOmega equal the NoDedup
// reference bit for bit, and the distinct-solve accounting agrees
// between the sequential streaming cache and the parallel grouped
// executor.
func TestDedupBitIdentical(t *testing.T) {
	for _, cse := range dedupCases(t) {
		g := hypergraph.FromInstance(cse.in, hypergraph.Options{})
		ref, err := LocalAverageOpt(cse.in, g, cse.radius, AverageOptions{NoDedup: true})
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		seq, err := LocalAverageOpt(cse.in, g, cse.radius, AverageOptions{})
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		for _, workers := range []int{2, 4} {
			par, err := LocalAverageOpt(cse.in, g, cse.radius, AverageOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", cse.name, workers, err)
			}
			if par.LocalLPs != seq.LocalLPs || par.SolvesAvoided != seq.SolvesAvoided || par.LocalPivots != seq.LocalPivots {
				t.Fatalf("%s workers=%d: accounting (%d,%d,%d) vs sequential (%d,%d,%d)",
					cse.name, workers, par.LocalLPs, par.SolvesAvoided, par.LocalPivots,
					seq.LocalLPs, seq.SolvesAvoided, seq.LocalPivots)
			}
			if !reflect.DeepEqual(par.X, seq.X) {
				t.Fatalf("%s workers=%d: X differs from sequential dedup", cse.name, workers)
			}
		}
		if seq.LocalLPs+seq.SolvesAvoided != cse.in.NumAgents() {
			t.Fatalf("%s: solved %d + avoided %d ≠ %d agents",
				cse.name, seq.LocalLPs, seq.SolvesAvoided, cse.in.NumAgents())
		}
		for v := range ref.X {
			if seq.X[v] != ref.X[v] {
				t.Fatalf("%s: X[%d] = %v (dedup) vs %v (reference)", cse.name, v, seq.X[v], ref.X[v])
			}
			if seq.Beta[v] != ref.Beta[v] {
				t.Fatalf("%s: Beta[%d] differs", cse.name, v)
			}
			if seq.LocalOmega[v] != ref.LocalOmega[v] {
				t.Fatalf("%s: LocalOmega[%d] = %v vs %v", cse.name, v, seq.LocalOmega[v], ref.LocalOmega[v])
			}
		}
	}
}

// TestDedupSharedCache: a cache carried across runs answers the second
// run entirely from memory (same instance ⇒ every ball is a repeat) and
// still returns bit-identical outputs.
func TestDedupSharedCache(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	cache := NewSolveCache()
	first, err := LocalAverageOpt(in, g, 1, AverageOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.DistinctSolves() != first.LocalLPs {
		t.Fatalf("cache holds %d LPs, run solved %d", cache.DistinctSolves(), first.LocalLPs)
	}
	hitsAfterFirst := cache.Hits()
	second, err := LocalAverageOpt(in, g, 1, AverageOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.LocalLPs != 0 {
		t.Fatalf("second run solved %d LPs, want 0 (all cached)", second.LocalLPs)
	}
	if !reflect.DeepEqual(first.X, second.X) {
		t.Fatal("cached rerun is not bit-identical")
	}
	// The parallel grouped executor must interoperate with the same
	// shared cache, with identical Hits accounting to the sequential
	// streaming path (one hit per non-trivial agent served).
	hitsAfterSecond := cache.Hits()
	third, err := LocalAverageOpt(in, g, 1, AverageOptions{Cache: cache, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if third.LocalLPs != 0 || !reflect.DeepEqual(first.X, third.X) {
		t.Fatalf("parallel cached rerun: solved %d, identical=%v", third.LocalLPs, reflect.DeepEqual(first.X, third.X))
	}
	seqDelta := hitsAfterSecond - hitsAfterFirst // hits the second (sequential) run added
	parDelta := cache.Hits() - hitsAfterSecond
	if parDelta != seqDelta {
		t.Fatalf("parallel rerun added %d cache hits, sequential rerun added %d", parDelta, seqDelta)
	}
}

// TestAdaptiveCacheReuse: AdaptiveAverage threads one fingerprint cache
// through its radius search; results must match the plain run exactly.
func TestAdaptiveCacheReuse(t *testing.T) {
	in, _ := gen.Torus([]int{9, 9}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	plain, err := AdaptiveAverageOpt(in, g, 1.8, 6, AverageOptions{NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSolveCache()
	cached, err := AdaptiveAverageOpt(in, g, 1.8, 6, AverageOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Radius != plain.Radius || cached.Achieved != plain.Achieved {
		t.Fatalf("adaptive outcome differs: R=%d/%v vs R=%d/%v",
			cached.Radius, cached.Achieved, plain.Radius, plain.Achieved)
	}
	if !reflect.DeepEqual(cached.X, plain.X) {
		t.Fatal("adaptive dedup run is not bit-identical to the reference")
	}
	if cache.DistinctSolves() == 0 {
		t.Fatal("adaptive run did not populate the shared cache")
	}
}

// TestCacheCollisionNeverReuses pins the collision contract: two
// different keys in the same hash bucket must stay distinct entries —
// lookup matches by exact key, never by hash alone.
func TestCacheCollisionNeverReuses(t *testing.T) {
	c := newSolveCache()
	k1 := []byte{1, 2, 3}
	k2 := []byte{1, 2, 4} // forced into the same bucket below
	const h = uint64(42)
	c.insert(h, k1, []float64{1}, 1, 1)
	if e := c.lookup(h, k2); e != nil {
		t.Fatal("lookup returned an entry for a colliding but unequal key")
	}
	c.insert(h, k2, []float64{2}, 2, 2)
	if e := c.lookup(h, k1); e == nil || e.x[0] != 1 {
		t.Fatal("first entry lost or wrong after collision insert")
	}
	if e := c.lookup(h, k2); e == nil || e.x[0] != 2 {
		t.Fatal("second entry lost or wrong after collision insert")
	}
}

// TestLocalSolveZeroAlloc pins the acceptance criterion on the hot
// path: the steady-state localSolver.solve performs zero allocations —
// even the returned solution aliases workspace memory.
func TestLocalSolveZeroAlloc(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	csr := csrOf(in, g)
	bi := g.BallIndex(1, 1)
	s := newLocalSolver(csr)
	solveAll := func() {
		for u := 0; u < in.NumAgents(); u++ {
			if _, _, _, err := s.solve(bi.Ball(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	solveAll() // warm-up: grow workspace and scratch to the high-water mark
	if allocs := testing.AllocsPerRun(20, solveAll); allocs != 0 {
		t.Fatalf("steady-state local solves allocate %v times per sweep, want 0", allocs)
	}
}

// ballDesc is a decoded canonical key for the fuzz target: the explicit
// LP structure a key is supposed to pin down uniquely.
type ballDesc struct {
	nLoc    int
	resRows [][][2]uint64 // rows of (localIdx, coeffBits)
	parRows [][][2]uint64
}

func (d *ballDesc) encode() []byte {
	b := appendKeyHeader(nil, d.nLoc, len(d.resRows))
	for _, row := range d.resRows {
		for _, e := range row {
			b = appendKeyEntry(b, int32(e[0]), math.Float64frombits(e[1]))
		}
		b = appendKeyRowEnd(b)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.parRows)))
	for _, row := range d.parRows {
		for _, e := range row {
			b = appendKeyEntry(b, int32(e[0]), math.Float64frombits(e[1]))
		}
		b = appendKeyRowEnd(b)
	}
	return b
}

// decodeBallDesc derives a small LP description from fuzz bytes.
func decodeBallDesc(data []byte) *ballDesc {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		v := data[0]
		data = data[1:]
		return v
	}
	d := &ballDesc{nLoc: 1 + int(next()%6)}
	coeffs := []float64{0.25, 0.5, 1, 1.5, 2, 3.25}
	readRows := func(n int) [][][2]uint64 {
		rows := make([][][2]uint64, n)
		for r := range rows {
			m := int(next() % 4)
			for e := 0; e < m; e++ {
				idx := uint64(next()) % uint64(d.nLoc)
				cf := coeffs[int(next())%len(coeffs)]
				rows[r] = append(rows[r], [2]uint64{idx, math.Float64bits(cf)})
			}
		}
		return rows
	}
	d.resRows = readRows(1 + int(next()%3))
	d.parRows = readRows(1 + int(next()%3))
	return d
}

// FuzzFingerprintInjective fuzzes the canonical-key encoder's injectivity
// contract: two LP descriptions that encode to equal keys must be equal
// descriptions (so a byte-equal fingerprint can never alias two
// different local LPs — the property that makes exact-key dedup safe).
// The two descriptions are decoded from the two halves of the input.
func FuzzFingerprintInjective(f *testing.F) {
	f.Add([]byte{3, 2, 1, 0, 1, 1, 2, 2, 3, 3}, []byte{3, 2, 1, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{1, 1, 1, 0, 0}, []byte{2, 1, 1, 0, 0})
	f.Add([]byte{5, 2, 3, 4, 0, 1, 2, 3, 4, 5, 6}, []byte{5, 2, 3, 4, 0, 1, 2, 3, 4, 5, 7})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		da, db := decodeBallDesc(a), decodeBallDesc(b)
		ka, kb := da.encode(), db.encode()
		if bytes.Equal(ka, kb) && !reflect.DeepEqual(da, db) {
			t.Fatalf("distinct LPs share a canonical key:\n%+v\n%+v", da, db)
		}
		// And the converse sanity: equal descriptions encode equally.
		if reflect.DeepEqual(da, db) && !bytes.Equal(ka, kb) {
			t.Fatal("equal LPs encode to different keys")
		}
	})
}
