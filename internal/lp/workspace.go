package lp

import (
	"errors"
	"fmt"
	"math"

	"maxminlp/internal/obs"
)

// Workspace is a reusable, growable arena for the dense two-phase
// simplex. A workspace owns every buffer a solve needs — the staged
// constraint rows, the tableau rows and right-hand sides, the basis and
// cost vectors, and the solution buffer — so that repeated solves of
// similarly-sized problems perform no allocation at all in the steady
// state. Solving through a workspace runs the exact same pivot code as
// the package-level Solve (which is itself a one-shot wrapper over a
// fresh workspace), so the pivot sequence, every intermediate float and
// the final solution are bit-identical between the two entry points.
//
// Problems are either passed whole (Solve / SolveWithRule) or assembled
// in place through the row-staging API (Begin, Obj, AddRow, SolveStaged),
// which lets callers write constraint coefficients directly into
// workspace memory instead of materialising a []Constraint per solve.
//
// The Solution returned by a workspace solve aliases workspace memory:
// X (and the lazily computed Duals) are valid only until the next Begin,
// Solve or SolveStaged call on the same workspace. Callers that need the
// solution to outlive the next solve must copy it. A Workspace is not
// safe for concurrent use; concurrent solvers hold one workspace each.
type Workspace struct {
	// Staged problem: objRow is the objective (length nVars), rowArena
	// holds the constraint coefficients as m consecutive rows of stride
	// nVars, rels/rhsIn the relation and right-hand side per row.
	nVars    int
	objRow   []float64
	rowArena []float64
	rels     []Rel
	rhsIn    []float64

	plans []rowPlan
	t     tableau
	xBuf  []float64

	// gen counts Begin calls; Solutions remember the generation they were
	// produced in so stale lazy-dual reads fail loudly instead of reading
	// recycled tableau memory.
	gen uint64

	// m, when non-nil, receives solve accounting (solves, pivots, tableau
	// dimensions) from every staged solve. Nil — the default — costs one
	// branch per solve.
	m *obs.LPMetrics
}

// NewWorkspace returns an empty workspace. Buffers are allocated lazily
// on first use and grow to the high-water mark of the problems solved.
func NewWorkspace() *Workspace { return &Workspace{} }

// SetMetrics attaches (or, with nil, detaches) solve accounting: every
// staged solve that completes records its row/variable counts and pivot
// total. Metrics never change any output bit.
func (w *Workspace) SetMetrics(m *obs.LPMetrics) { w.m = m }

// rowPlan is the per-row normalisation decided before the tableau is
// filled: whether the row is sign-flipped to make its rhs nonnegative,
// the relation after flipping, and whether it needs an artificial.
type rowPlan struct {
	flip     bool
	rel      Rel
	needsArt bool
}

// Begin starts assembling a new problem with nVars (implicitly
// nonnegative) variables, discarding any previously staged rows and
// invalidating Solutions returned by earlier solves on this workspace.
func (w *Workspace) Begin(nVars int) {
	w.gen++
	w.nVars = nVars
	w.objRow = growFloats(w.objRow, nVars)
	clear(w.objRow)
	w.rowArena = w.rowArena[:0]
	w.rels = w.rels[:0]
	w.rhsIn = w.rhsIn[:0]
}

// Obj returns the staged objective row (length nVars, initially zero) for
// in-place writes. The slice is valid until the next Begin.
func (w *Workspace) Obj() []float64 { return w.objRow }

// AddRow appends a constraint with the given relation and right-hand side
// and returns its zeroed coefficient row (length nVars) for in-place
// writes. The returned slice is valid until the next AddRow, Begin or
// solve on this workspace.
func (w *Workspace) AddRow(rel Rel, rhs float64) []float64 {
	start := len(w.rowArena)
	end := start + w.nVars
	if cap(w.rowArena) < end {
		grown := make([]float64, start, 2*end)
		copy(grown, w.rowArena)
		w.rowArena = grown
	}
	w.rowArena = w.rowArena[:end]
	row := w.rowArena[start:end]
	clear(row)
	w.rels = append(w.rels, rel)
	w.rhsIn = append(w.rhsIn, rhs)
	return row
}

// NumRows returns the number of staged constraint rows.
func (w *Workspace) NumRows() int { return len(w.rels) }

// Solve solves the problem with the default pivot rule, bit-identically
// to the package-level Solve but reusing this workspace's memory.
func (w *Workspace) Solve(p *Problem) (Solution, error) {
	return w.SolveWithRule(p, DantzigThenBland)
}

// SolveWithRule stages p into the workspace and solves it. The staged
// copy holds the exact same float64 values as p, and the tableau built
// from it is element-for-element the one Solve has always built, so the
// pivot sequence and the solution are bit-identical to the one-shot path.
func (w *Workspace) SolveWithRule(p *Problem, rule PivotRule) (Solution, error) {
	n := len(p.Obj)
	for r, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", r, len(c.Coeffs), n)
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return Solution{}, fmt.Errorf("lp: constraint %d has non-finite rhs %v", r, c.RHS)
		}
	}
	w.Begin(n)
	copy(w.objRow, p.Obj)
	for _, c := range p.Constraints {
		copy(w.AddRow(c.Rel, c.RHS), c.Coeffs)
	}
	return w.solveStaged(p.Minimize, rule)
}

// SolveStaged solves the problem assembled through Begin/Obj/AddRow.
// The returned Solution aliases workspace memory (see the type docs).
func (w *Workspace) SolveStaged(minimize bool, rule PivotRule) (Solution, error) {
	for r, rhs := range w.rhsIn {
		if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
			return Solution{}, fmt.Errorf("lp: constraint %d has non-finite rhs %v", r, rhs)
		}
	}
	return w.solveStaged(minimize, rule)
}

// solveStaged runs the two-phase driver and records solve accounting for
// every completed solve (any status; errors record nothing).
func (w *Workspace) solveStaged(minimize bool, rule PivotRule) (Solution, error) {
	sol, err := w.solveStagedRun(minimize, rule)
	if err == nil {
		w.m.RecordSolve(len(w.rels), w.nVars, sol.Pivots)
	}
	return sol, err
}

// solveStagedRun is the two-phase driver over the staged rows — the body
// of the historical SolveWithRule, operating on workspace memory.
func (w *Workspace) solveStagedRun(minimize bool, rule PivotRule) (Solution, error) {
	// A row whose support emptied (topology churn can do this) must be
	// decided exactly: with every coefficient zero, LE needs rhs ≥ 0, GE
	// needs rhs ≤ 0 and EQ needs rhs == 0 — anything else is Infeasible
	// regardless of x. The phase-1 tolerance cannot be trusted here: a GE
	// zero row with 0 < rhs ≤ epsPhase1 passes phase 1 within tolerance
	// and expelArtificials then pivots its artificial out on the slack
	// column (coefficient −1), declaring a point with a negative basic
	// slack Optimal. Only rows whose rhs sign makes them unsatisfiable
	// are scanned, so the satisfiable hot-path rows (the ball LPs' LE
	// rows with rhs ∈ {0, 1}) cost one comparison each, and satisfiable
	// zero rows still enter the tableau exactly as before — their slack
	// stays basic throughout, so the pivot sequence is unchanged.
	for r, rel := range w.rels {
		rhs := w.rhsIn[r]
		if !((rel == LE && rhs < 0) || (rel == GE && rhs > 0) || (rel == EQ && rhs != 0)) {
			continue
		}
		zero := true
		for _, a := range w.rowArena[r*w.nVars : (r+1)*w.nVars] {
			if a != 0 {
				zero = false
				break
			}
		}
		if zero {
			return Solution{Status: Infeasible}, nil
		}
	}
	w.buildTableau()
	t := &w.t
	sol := Solution{}
	if t.needPhase1 {
		t.setPhase1Objective()
		if err := t.iterate(rule, &sol.Pivots); err != nil {
			return Solution{}, err
		}
		// Phase 1 maximises −Σ artificials, so a strictly negative optimum
		// means some artificial could not be driven to zero: infeasible.
		if t.objValue() < -epsPhase1 {
			sol.Status = Infeasible
			return sol, nil
		}
		if err := t.expelArtificials(); err != nil {
			return Solution{}, err
		}
	}
	t.setPhase2Objective(w.objRow, minimize)
	if err := t.iterate(rule, &sol.Pivots); err != nil {
		if errors.Is(err, errUnbounded) {
			sol.Status = Unbounded
			return sol, nil
		}
		return Solution{}, err
	}
	sol.Status = Optimal
	sol.X = w.primalInto()
	sol.Value = t.objValue()
	if minimize {
		sol.Value = -sol.Value
	}
	sol.dws, sol.dgen, sol.dmin = w, w.gen, minimize
	return sol, nil
}

// buildTableau fills the workspace tableau from the staged rows: the
// same normalisation (nonnegative rhs), slack/artificial layout and
// coefficient signs as the historical newTableau, into reused memory.
func (w *Workspace) buildTableau() {
	n := w.nVars
	m := len(w.rels)
	w.plans = growPlans(w.plans, m)
	nSlack, nArt := 0, 0
	for r := 0; r < m; r++ {
		pl := rowPlan{rel: w.rels[r]}
		if w.rhsIn[r] < 0 {
			pl.flip = true
			switch pl.rel {
			case LE:
				pl.rel = GE
			case GE:
				pl.rel = LE
			}
		}
		switch pl.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			pl.needsArt = true
			nArt++
		case EQ:
			pl.needsArt = true
			nArt++
		}
		w.plans[r] = pl
	}

	t := &w.t
	t.reset(n, m, nSlack, nArt)
	slack := n
	art := t.artStart
	for r := 0; r < m; r++ {
		row := t.rows[r]
		staged := w.rowArena[r*n : (r+1)*n]
		sign := 1.0
		if w.plans[r].flip {
			sign = -1
		}
		for j, a := range staged {
			v := sign * a
			if v == 0 {
				v = 0 // normalise −0.0: tableau zeros are always +0.0
			}
			row[j] = v
		}
		clear(row[n:])
		t.rhs[r] = sign * w.rhsIn[r]
		switch w.plans[r].rel {
		case LE:
			row[slack] = 1
			t.basis[r] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[r] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[r] = art
			art++
		}
		t.inBase[t.basis[r]] = true
	}
}

// primalInto reads the original variables' values into the reused
// solution buffer; the returned slice is valid until the next solve.
func (w *Workspace) primalInto() []float64 {
	t := &w.t
	w.xBuf = growFloats(w.xBuf, t.nVars)
	x := w.xBuf
	clear(x)
	for r, b := range t.basis {
		if b < t.nVars {
			v := t.rhs[r]
			if v < 0 && v > -epsPivot {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// dualsFromTableau recovers one multiplier per staged constraint from the
// final tableau's reduced costs — the historical duals() computation,
// deferred until a caller actually asks (no local-LP caller does). It
// must run before the workspace is reused; a stale read panics instead of
// decoding recycled memory.
func (w *Workspace) dualsFromTableau(gen uint64, minimize bool) []float64 {
	if gen != w.gen {
		panic("lp: Solution.Duals read after its workspace was reused")
	}
	t := &w.t
	y := make([]float64, len(w.rels))
	// Slack columns are assigned in constraint order during construction,
	// so the column → original-constraint mapping is replayed from the row
	// plans; rows whose redundancy was detected in phase 1 get dual 0 via
	// their surviving slack column's reduced cost. The multipliers are
	// reported against the rows *as staged*: a row buildTableau flipped to
	// make its rhs nonnegative has the dual of the negated row, so the
	// normalised read is negated back — the revised solver's convention,
	// and the one under which Σ y·rhs equals the objective value.
	slack := t.nVars
	for r := 0; r < len(w.rels); r++ {
		pl := w.plans[r]
		if pl.rel == EQ {
			continue // no slack column
		}
		v := -t.obj[slack]
		if pl.rel == GE {
			v = -v // slack coefficient is −1
		}
		if pl.flip {
			v = -v
		}
		if minimize {
			v = -v
		}
		y[r] = v
		slack++
	}
	// EQ rows have no slack column, but their artificial column stays in
	// the tableau with its reduced cost maintained through phase 2
	// (artificials are barred from entering, not priced out of t.obj), and
	// that reduced cost is 0 − c_B·B⁻¹·e_r = −y_r — the same identity the
	// slack read uses. Artificial columns are assigned in row order by
	// buildTableau, so the mapping is replayed from the row plans. A row
	// removed as redundant by expelArtificials kept its artificial basic
	// and was never a pivot row, so its column is untouched elsewhere and
	// reads exactly 0 — the correct multiplier for a redundant row.
	// Flipped rows (staged rhs < 0) were negated wholesale, so their
	// original dual is the negation of the normalised one.
	art := t.artStart
	for r := 0; r < len(w.rels); r++ {
		pl := w.plans[r]
		if !pl.needsArt {
			continue
		}
		if pl.rel == EQ {
			v := -t.obj[art]
			if pl.flip {
				v = -v
			}
			if minimize {
				v = -v
			}
			y[r] = v
		}
		art++
	}
	return y
}

// growFloats returns s with length n, reusing its backing array when the
// capacity suffices. Contents are unspecified; callers overwrite.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growPlans(s []rowPlan, n int) []rowPlan {
	if cap(s) < n {
		return make([]rowPlan, n)
	}
	return s[:n]
}

func growRowHdrs(s [][]float64, n int) [][]float64 {
	if cap(s) < n {
		return make([][]float64, n)
	}
	return s[:n]
}
