package lp

import (
	"math/rand"
	"testing"
)

// randomProblem builds a small LP with mixed relations and signs so the
// workspace exercises flips, phase 1 and artificial expulsion.
func randomProblem(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(5)
	m := 1 + rng.Intn(6)
	p := &Problem{Obj: make([]float64, n), Minimize: rng.Intn(2) == 0}
	for j := range p.Obj {
		p.Obj[j] = float64(rng.Intn(9)-4) / 2
	}
	for r := 0; r < m; r++ {
		c := Constraint{Coeffs: make([]float64, n), Rel: Rel(rng.Intn(3)), RHS: float64(rng.Intn(13)-4) / 2}
		for j := range c.Coeffs {
			c.Coeffs[j] = float64(rng.Intn(7)-3) / 2
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// TestWorkspaceReuseMatchesSolve solves a stream of random problems on
// one reused workspace and requires every field of every Solution —
// status, value, pivots, X and duals, bit for bit — to match the
// one-shot Solve of the same problem. This is the tentpole contract:
// reuse changes allocations, never results.
func TestWorkspaceReuseMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := NewWorkspace()
	solved := 0
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		ref, refErr := Solve(p)
		got, gotErr := ws.Solve(p)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, refErr, gotErr)
		}
		if refErr != nil {
			continue
		}
		if got.Status != ref.Status || got.Value != ref.Value || got.Pivots != ref.Pivots {
			t.Fatalf("trial %d: (status, value, pivots) = (%v, %v, %d) vs (%v, %v, %d)",
				trial, got.Status, got.Value, got.Pivots, ref.Status, ref.Value, ref.Pivots)
		}
		if ref.Status != Optimal {
			continue
		}
		solved++
		for j := range ref.X {
			if got.X[j] != ref.X[j] {
				t.Fatalf("trial %d: X[%d] = %v vs %v", trial, j, got.X[j], ref.X[j])
			}
		}
		gd, rd := got.Duals(), ref.Duals()
		for i := range rd {
			if gd[i] != rd[i] {
				t.Fatalf("trial %d: dual %d = %v vs %v", trial, i, gd[i], rd[i])
			}
		}
	}
	if solved < 50 {
		t.Fatalf("only %d optimal instances exercised; generator too narrow", solved)
	}
}

// TestWorkspaceStagedMatchesProblem checks the row-staging API against
// the whole-problem entry point on the local-LP shape (maximise ω with
// ≤ rows), bit for bit.
func TestWorkspaceStagedMatchesProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ws := NewWorkspace()
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := &Problem{Obj: make([]float64, n)}
		p.Obj[n-1] = 1
		ws.Begin(n)
		ws.Obj()[n-1] = 1
		for r := 0; r < m; r++ {
			c := Constraint{Coeffs: make([]float64, n), Rel: LE, RHS: float64(rng.Intn(2))}
			row := ws.AddRow(LE, c.RHS)
			for j := 0; j < n-1; j++ {
				if rng.Intn(2) == 0 {
					c.Coeffs[j] = float64(1+rng.Intn(6)) / 4
					row[j] = c.Coeffs[j]
				}
			}
			p.Constraints = append(p.Constraints, c)
		}
		got, gotErr := ws.SolveStaged(false, DantzigThenBland)
		ref, refErr := Solve(p)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, refErr, gotErr)
		}
		if refErr != nil || ref.Status != Optimal {
			continue
		}
		if got.Status != ref.Status || got.Value != ref.Value || got.Pivots != ref.Pivots {
			t.Fatalf("trial %d: staged solve diverged", trial)
		}
		for j := range ref.X {
			if got.X[j] != ref.X[j] {
				t.Fatalf("trial %d: X[%d] = %v vs %v", trial, j, got.X[j], ref.X[j])
			}
		}
	}
}

// TestWorkspaceZeroAlloc pins the steady-state allocation behaviour the
// local-LP pipeline relies on: after warm-up, a staged solve performs no
// allocation at all (the returned X aliases the workspace buffer).
func TestWorkspaceZeroAlloc(t *testing.T) {
	ws := NewWorkspace()
	stage := func() {
		ws.Begin(5)
		ws.Obj()[4] = 1
		for r := 0; r < 6; r++ {
			row := ws.AddRow(LE, 1)
			row[r%4] = 1.5
			row[(r+1)%4] = 0.5
		}
		row := ws.AddRow(LE, 0)
		row[0], row[1], row[4] = -1, -1, 1
	}
	solve := func() {
		stage()
		sol, err := ws.SolveStaged(false, DantzigThenBland)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("solve failed: %v %v", err, sol.Status)
		}
	}
	solve() // warm-up: grow all buffers
	if allocs := testing.AllocsPerRun(100, solve); allocs != 0 {
		t.Fatalf("steady-state staged solve allocates %v times per op, want 0", allocs)
	}
}

// TestWorkspaceStaleDualsPanic: reading Duals after the workspace moved
// on must fail loudly, not decode recycled memory.
func TestWorkspaceStaleDualsPanic(t *testing.T) {
	ws := NewWorkspace()
	p := &Problem{
		Obj:         []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: 1}},
	}
	sol, err := ws.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ws.Begin(3) // invalidates sol
	defer func() {
		if recover() == nil {
			t.Fatal("stale Duals read did not panic")
		}
	}()
	sol.Duals()
}
