package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// --- Satellite: all-zero-coefficient rows -------------------------------
//
// A row with no nonzero coefficient is decided by the sign of its rhs
// alone. The latent bug: a GE zero row with 0 < rhs ≤ epsPhase1 passed
// phase 1 inside the tolerance and the artificial was pivoted out,
// yielding a bogus Optimal. The staging-time verdict is exact now, and
// every solver front end must agree.

func zeroRowProblem(rel Rel, rhs float64) *Problem {
	return &Problem{
		Obj: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 10},
			{Coeffs: []float64{0, 0}, Rel: rel, RHS: rhs},
		},
	}
}

func zeroRowCases() []struct {
	name       string
	rel        Rel
	rhs        float64
	infeasible bool
} {
	return []struct {
		name       string
		rel        Rel
		rhs        float64
		infeasible bool
	}{
		{"ge positive", GE, 1, true},
		{"ge epsilon-masked", GE, 1e-8, true}, // below epsPhase1: the phase-1 tolerance used to swallow it
		{"ge tiny", GE, 5e-324, true},
		{"le negative", LE, -1, true},
		{"le epsilon-masked", LE, -1e-8, true},
		{"eq nonzero", EQ, 0.5, true},
		{"eq tiny", EQ, -1e-12, true},
		{"ge zero", GE, 0, false},
		{"ge negative", GE, -3, false},
		{"le zero", LE, 0, false},
		{"le positive", LE, 3, false},
		{"eq zero", EQ, 0, false},
	}
}

func TestZeroRowVerdicts(t *testing.T) {
	solvers := map[string]func(*Problem) (Solution, error){
		"solve":     Solve,
		"bland":     func(p *Problem) (Solution, error) { return SolveWithRule(p, BlandOnly) },
		"workspace": func(p *Problem) (Solution, error) { return NewWorkspace().Solve(p) },
		"revised":   SolveRevised,
	}
	for _, tc := range zeroRowCases() {
		p := zeroRowProblem(tc.rel, tc.rhs)
		want := Optimal
		if tc.infeasible {
			want = Infeasible
		}
		for sname, solve := range solvers {
			sol, err := solve(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sname, err)
			}
			if sol.Status != want {
				t.Errorf("%s/%s: status %v, want %v", tc.name, sname, sol.Status, want)
			}
			if !tc.infeasible && sol.Status == Optimal && math.Abs(sol.Value-20) > tol {
				t.Errorf("%s/%s: value %v, want 20 (the zero row must not perturb the optimum)", tc.name, sname, sol.Value)
			}
		}
	}
}

// TestZeroRowRational: the exact solver reaches the same verdicts; it is
// the ground truth the float fix is measured against.
func TestZeroRowRational(t *testing.T) {
	for _, tc := range zeroRowCases() {
		rp := &RatProblem{
			Obj: []*big.Rat{big.NewRat(1, 1), big.NewRat(2, 1)},
			Constraints: []RatConstraint{
				{Coeffs: []*big.Rat{big.NewRat(1, 1), big.NewRat(1, 1)}, Rel: LE, RHS: big.NewRat(10, 1)},
				{Coeffs: []*big.Rat{new(big.Rat), new(big.Rat)}, Rel: tc.rel, RHS: new(big.Rat).SetFloat64(tc.rhs)},
			},
		}
		sol, err := SolveRat(rp)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := Optimal
		if tc.infeasible {
			want = Infeasible
		}
		if sol.Status != want {
			t.Errorf("%s: rational status %v, want %v", tc.name, sol.Status, want)
		}
	}
}

// TestZeroRowSparseDirect: a SparseProblem built by hand (no dense
// conversion) hits the revised solver's own zero-row guard.
func TestZeroRowSparseDirect(t *testing.T) {
	sp := &SparseProblem{
		Obj:  []float64{1},
		Cols: [][]SparseEntry{{{Row: 0, Val: 1}}}, // row 1 untouched by any column
		Rels: []Rel{LE, GE},
		RHS:  []float64{5, 1e-9},
	}
	sol, err := SolveRevisedSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want Infeasible", sol.Status)
	}
	sp.RHS[1] = -2 // vacuous: 0 ≥ −2
	sol, err = SolveRevisedSparse(sp)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Value-5) > tol {
		t.Fatalf("vacuous zero row: %v / %v", sol.Status, sol.Value)
	}
}

// TestZeroRowPresolveAgrees: the presolve's zero-row rule must reach the
// same verdict as the (fixed) unpresolved solvers on every case.
func TestZeroRowPresolveAgrees(t *testing.T) {
	for _, tc := range zeroRowCases() {
		p := zeroRowProblem(tc.rel, tc.rhs)
		direct, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		via, err := SolvePresolved(p)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Status != via.Status {
			t.Errorf("%s: presolved %v vs direct %v", tc.name, via.Status, direct.Status)
		}
	}
}

// --- Presolve reductions, one by one ------------------------------------

func TestPresolveZeroRowDrop(t *testing.T) {
	p := zeroRowProblem(LE, 7)
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RowsDropped() != 1 || len(ps.Reduced.Constraints) != 1 {
		t.Fatalf("dropped %d rows, reduced has %d", ps.RowsDropped(), len(ps.Reduced.Constraints))
	}
	sol, err := Solve(ps.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Postsolve(sol)
	if out.Status != Optimal || math.Abs(out.Value-20) > tol {
		t.Fatalf("postsolved: %v / %v", out.Status, out.Value)
	}
	y := out.Duals()
	if len(y) != 2 || y[1] != 0 {
		t.Fatalf("dropped row dual: %v", y)
	}
}

func TestPresolveEQSingletonSubstitution(t *testing.T) {
	// x0 = 2 is substituted; the coupled row's rhs shifts by 2.
	p := &Problem{
		Obj: []float64{1, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 0}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 5},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.ColsFixed() != 1 || len(ps.Reduced.Obj) != 1 {
		t.Fatalf("cols fixed %d, reduced vars %d", ps.ColsFixed(), len(ps.Reduced.Obj))
	}
	if got := ps.Reduced.Constraints[0].RHS; got != 3 {
		t.Fatalf("substituted rhs = %v, want 3", got)
	}
	sol, err := Solve(ps.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Postsolve(sol)
	// Optimum: x0 = 2, x1 = 3, value 2 + 9 = 11.
	if out.Status != Optimal || math.Abs(out.Value-11) > tol || math.Abs(out.X[0]-2) > tol || math.Abs(out.X[1]-3) > tol {
		t.Fatalf("postsolved: %+v", out)
	}
	checkDualsMax(t, p, out)
}

// TestPresolveChainedEQSubstitution: eliminating one EQ singleton can
// turn another EQ row into a singleton whose fix is computed from the
// *working* rhs. Regression: the postsolve certificate compared
// a·val against the original row RHS, so any chained elimination
// (x0 = 2, then x0 + x1 = 5 reducing to x1 = 3 ≠ 5) panicked with a
// bogus residual on a perfectly valid LP.
func TestPresolveChainedEQSubstitution(t *testing.T) {
	p := &Problem{
		Obj: []float64{1, 1, 1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0, 0, 0}, Rel: EQ, RHS: 2},
			{Coeffs: []float64{1, 1, 0, 0}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{0, 1, 1, 0}, Rel: EQ, RHS: 4},
			{Coeffs: []float64{0, 0, 0, 1}, Rel: LE, RHS: 1},
		},
	}
	out, err := SolvePresolved(p)
	if err != nil {
		t.Fatal(err)
	}
	// Chain: x0 = 2, x1 = 5 − 2 = 3, x2 = 4 − 3 = 1; free x3 rises to 1.
	want := []float64{2, 3, 1, 1}
	if out.Status != Optimal || math.Abs(out.Value-7) > tol {
		t.Fatalf("postsolved: %v / %v", out.Status, out.Value)
	}
	for j, w := range want {
		if math.Abs(out.X[j]-w) > tol {
			t.Fatalf("x = %v, want %v", out.X, want)
		}
	}
	direct, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Status != Optimal || math.Abs(direct.Value-out.Value) > tol {
		t.Fatalf("direct %v / %v disagrees with presolved %v", direct.Status, direct.Value, out.Value)
	}
	checkDualsMax(t, p, out)
}

func TestPresolveEQSingletonNegativeFixInfeasible(t *testing.T) {
	p := &Problem{
		Obj:         []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{3}, Rel: EQ, RHS: -6}},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, ok := ps.Decided()
	if !ok || sol.Status != Infeasible {
		t.Fatalf("decided=%v status=%v", ok, sol.Status)
	}
}

func TestPresolveForcedZero(t *testing.T) {
	// 5·x0 ≤ 0 forces x0 = 0 exactly; −2·x1 ≥ 0 forces x1 = 0 exactly.
	p := &Problem{
		Obj: []float64{4, 4, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{5, 0, 0}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, -2, 0}, Rel: GE, RHS: 0},
			{Coeffs: []float64{1, 1, 1}, Rel: LE, RHS: 9},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.ColsFixed() != 2 {
		t.Fatalf("cols fixed %d, want 2", ps.ColsFixed())
	}
	sol, err := Solve(ps.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Postsolve(sol)
	if out.Status != Optimal || out.X[0] != 0 || out.X[1] != 0 || math.Abs(out.Value-9) > tol {
		t.Fatalf("postsolved: %+v", out)
	}
	checkDualsMax(t, p, out)
}

func TestPresolveVacuousSingletonDrop(t *testing.T) {
	// −x0 ≤ 4 and x0 ≥ −1 hold for every x0 ≥ 0: dropped, duals 0.
	p := &Problem{
		Obj: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1}, Rel: GE, RHS: -1},
			{Coeffs: []float64{1}, Rel: LE, RHS: 2},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RowsDropped() != 2 {
		t.Fatalf("dropped %d, want 2", ps.RowsDropped())
	}
	sol, err := Solve(ps.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Postsolve(sol)
	y := out.Duals()
	if y[0] != 0 || y[1] != 0 {
		t.Fatalf("vacuous row duals: %v", y)
	}
	checkDualsMax(t, p, out)
}

func TestPresolveEmptyColumn(t *testing.T) {
	// x1 appears in no row. With c1 ≤ 0 it is fixed at 0; with c1 > 0
	// the (feasible) problem is unbounded.
	base := func(c1 float64) *Problem {
		return &Problem{
			Obj:         []float64{1, c1},
			Constraints: []Constraint{{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3}},
		}
	}
	sol, err := SolvePresolved(base(-2))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.X[1] != 0 || math.Abs(sol.Value-3) > tol {
		t.Fatalf("c1<0: %+v", sol)
	}
	sol, err = SolvePresolved(base(2))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("c1>0: %v, want Unbounded", sol.Status)
	}
	// Unbounded column + infeasible rest: Infeasible wins.
	p := base(2)
	p.Constraints = append(p.Constraints, Constraint{Coeffs: []float64{1, 0}, Rel: LE, RHS: -1})
	sol, err = SolvePresolved(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("unbounded column over infeasible rest: %v", sol.Status)
	}
	direct, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Status != sol.Status {
		t.Fatalf("verdict drift: direct %v vs presolved %v", direct.Status, sol.Status)
	}
}

func TestPresolveDuplicateRows(t *testing.T) {
	// LE pair keeps the smaller rhs, GE pair the larger; the slack twin
	// gets dual 0.
	p := &Problem{
		Obj: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 10},
			{Coeffs: []float64{1, 2}, Rel: LE, RHS: 7},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 1},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 2},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RowsDropped() != 2 {
		t.Fatalf("dropped %d, want 2", ps.RowsDropped())
	}
	kept := ps.Reduced.Constraints
	if kept[0].RHS != 7 || kept[1].RHS != 2 {
		t.Fatalf("kept wrong twins: %+v", kept)
	}
	sol, err := Solve(ps.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Postsolve(sol)
	direct, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, out.Value, direct.Value, tol, "duplicate-row value")
	checkDualsMax(t, p, out)
}

// TestPresolveSignedZeroRowsNotMerged: the duplicate-row guard is
// bitwise, so rows whose coefficient vectors differ only in a signed
// zero are kept distinct (the simplex could in principle tell them
// apart; never merging is always verdict-safe).
func TestPresolveSignedZeroRowsNotMerged(t *testing.T) {
	negZero := math.Copysign(0, -1)
	p := &Problem{
		Obj: []float64{3, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 5},
			{Coeffs: []float64{1, negZero}, Rel: LE, RHS: 7},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1}, // keeps x1 active
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RowsDropped() != 0 {
		t.Fatalf("dropped %d rows; −0.0 and +0.0 coefficients must not merge", ps.RowsDropped())
	}
	out, err := SolvePresolved(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Optimal || math.Abs(out.Value-16) > tol {
		t.Fatalf("postsolved: %v / %v", out.Status, out.Value)
	}
}

func TestPresolveDuplicateEQInfeasible(t *testing.T) {
	p := &Problem{
		Obj: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 3},
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 4},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol, ok := ps.Decided(); !ok || sol.Status != Infeasible {
		t.Fatalf("decided=%v status=%v", ok, sol.Status)
	}
}

func TestPresolveFullyDecidedOptimal(t *testing.T) {
	// Every row and column eliminated: x0 fixed by an EQ singleton, x1
	// forced to zero. Decided returns the complete solution, duals and
	// all, with no solve.
	p := &Problem{
		Obj: []float64{2, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{4, 0}, Rel: EQ, RHS: 8},
			{Coeffs: []float64{0, 3}, Rel: LE, RHS: 0},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	sol, ok := ps.Decided()
	if !ok || sol.Status != Optimal {
		t.Fatalf("decided=%v status=%v", ok, sol.Status)
	}
	if sol.X[0] != 2 || sol.X[1] != 0 || math.Abs(sol.Value-4) > tol {
		t.Fatalf("decided solution: %+v", sol)
	}
	checkDualsMax(t, p, sol)
}

func TestPresolveRejectsMalformed(t *testing.T) {
	if _, err := PresolveProblem(&Problem{
		Obj:         []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}},
	}); err == nil {
		t.Error("ragged constraint accepted")
	}
	if _, err := PresolveProblem(&Problem{
		Obj:         []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}},
	}); err == nil {
		t.Error("NaN rhs accepted")
	}
}

// --- Differential: SolvePresolved vs Solve ------------------------------

// TestSolvePresolvedMatchesSolve drives random problems through both
// paths. Verdicts must agree always; values bit-identically when no
// reduction fired, and to strong-duality precision otherwise.
func TestSolvePresolvedMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	reduced, identical := 0, 0
	for trial := 0; trial < 300; trial++ {
		p := randomMPSProblem(rng)
		ps, err := PresolveProblem(p)
		if err != nil {
			t.Fatal(err)
		}
		direct, err1 := Solve(p)
		via, err2 := SolvePresolved(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: errors differ: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if direct.Status != via.Status {
			t.Fatalf("trial %d: status %v vs %v (dropped %d, fixed %d)",
				trial, direct.Status, via.Status, ps.RowsDropped(), ps.ColsFixed())
		}
		if direct.Status != Optimal {
			continue
		}
		if ps.RowsDropped() == 0 && ps.ColsFixed() == 0 {
			if math.Float64bits(direct.Value) != math.Float64bits(via.Value) {
				t.Fatalf("trial %d: no reduction fired but value bits differ: %v vs %v", trial, direct.Value, via.Value)
			}
			for j := range direct.X {
				if math.Float64bits(direct.X[j]) != math.Float64bits(via.X[j]) {
					t.Fatalf("trial %d: no reduction fired but x[%d] bits differ", trial, j)
				}
			}
			identical++
		} else {
			reduced++
			scale := math.Max(1, math.Abs(direct.Value))
			if math.Abs(direct.Value-via.Value) > 1e-8*scale {
				t.Fatalf("trial %d: value %v vs %v after %d drops / %d fixes",
					trial, direct.Value, via.Value, ps.RowsDropped(), ps.ColsFixed())
			}
			checkDualsEither(t, p, via)
		}
	}
	if reduced == 0 || identical == 0 {
		t.Fatalf("weak corpus: %d reduced, %d identical trials", reduced, identical)
	}
}

// --- Postsolved duals across solvers (satellite 4) -----------------------

// checkDualsMax asserts the postsolved duals of a maximisation problem
// are a feasible dual certificate of the *original* problem at the
// primal value: sign constraints per relation, dual feasibility per
// column, and strong duality. This is strictly stronger than checking
// the reduced problem's duals — dropped rows must come back with
// multipliers that keep every column feasible.
func checkDualsMax(t *testing.T, p *Problem, sol Solution) {
	t.Helper()
	if p.Minimize {
		t.Fatal("checkDualsMax wants a maximisation problem")
	}
	y := sol.Duals()
	if len(y) != len(p.Constraints) {
		t.Fatalf("duals length %d, want %d", len(y), len(p.Constraints))
	}
	dualVal := 0.0
	for i, c := range p.Constraints {
		switch c.Rel {
		case LE:
			if y[i] < -tol {
				t.Fatalf("LE row %d: dual %v < 0", i, y[i])
			}
		case GE:
			if y[i] > tol {
				t.Fatalf("GE row %d: dual %v > 0", i, y[i])
			}
		}
		dualVal += y[i] * c.RHS
	}
	scale := math.Max(1, math.Abs(sol.Value))
	if math.Abs(dualVal-sol.Value) > 1e-7*scale {
		t.Fatalf("strong duality: y·b = %v vs value %v", dualVal, sol.Value)
	}
	for j := range p.Obj {
		s := 0.0
		for i, c := range p.Constraints {
			s += y[i] * c.Coeffs[j]
		}
		if s < p.Obj[j]-1e-7*scale {
			t.Fatalf("column %d dual-infeasible: Σ y·a = %v < c = %v", j, s, p.Obj[j])
		}
	}
}

// checkDualsEither is checkDualsMax generalised to both senses, used on
// random problems.
func checkDualsEither(t *testing.T, p *Problem, sol Solution) {
	t.Helper()
	if !p.Minimize {
		checkDualsMax(t, p, sol)
		return
	}
	y := sol.Duals()
	if len(y) != len(p.Constraints) {
		t.Fatalf("duals length %d, want %d", len(y), len(p.Constraints))
	}
	dualVal := 0.0
	for i, c := range p.Constraints {
		switch c.Rel {
		case LE:
			if y[i] > tol {
				t.Fatalf("min LE row %d: dual %v > 0", i, y[i])
			}
		case GE:
			if y[i] < -tol {
				t.Fatalf("min GE row %d: dual %v < 0", i, y[i])
			}
		}
		dualVal += y[i] * c.RHS
	}
	scale := math.Max(1, math.Abs(sol.Value))
	if math.Abs(dualVal-sol.Value) > 1e-7*scale {
		t.Fatalf("strong duality: y·b = %v vs value %v", dualVal, sol.Value)
	}
	for j := range p.Obj {
		s := 0.0
		for i, c := range p.Constraints {
			s += y[i] * c.Coeffs[j]
		}
		if s > p.Obj[j]+1e-7*scale {
			t.Fatalf("min column %d dual-infeasible: Σ y·a = %v > c = %v", j, s, p.Obj[j])
		}
	}
}

// TestPostsolveDualsAcrossSolvers: the same presolved problem solved by
// the dense simplex, a reused Workspace, and the revised simplex — each
// postsolved Solution must carry a valid dual certificate of the
// original, with the eliminated EQ singleton's dual reconstructed (it is
// nonzero here: the fixed variable is worth 2 per unit in the objective
// and consumes nothing else).
func TestPostsolveDualsAcrossSolvers(t *testing.T) {
	p := &Problem{
		Obj: []float64{2, 3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{4, 0, 0}, Rel: EQ, RHS: 8}, // x0 = 2, dual must land at 1/2
			{Coeffs: []float64{0, 1, 2}, Rel: LE, RHS: 6},
			{Coeffs: []float64{0, 0, 0}, Rel: LE, RHS: 1}, // redundant zero row, dual 0
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RowsDropped() != 2 || ps.ColsFixed() != 1 {
		t.Fatalf("reduction shape: %d rows, %d cols", ps.RowsDropped(), ps.ColsFixed())
	}
	ws := NewWorkspace()
	runs := map[string]func(*Problem) (Solution, error){
		"dense":     Solve,
		"workspace": ws.Solve,
		"revised":   SolveRevised,
	}
	for name, solve := range runs {
		sol, err := solve(ps.Reduced)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := ps.Postsolve(sol)
		// Optimum: x0 = 2 fixed, then x1 = 6 beats x2 = 3 (3·6 > 5·3),
		// so value = 2·2 + 18 = 22.
		if out.Status != Optimal || math.Abs(out.Value-22) > tol {
			t.Fatalf("%s: %v / %v", name, out.Status, out.Value)
		}
		y := out.Duals()
		if math.Abs(y[0]-0.5) > tol {
			t.Fatalf("%s: substituted row dual %v, want 0.5", name, y[0])
		}
		if y[2] != 0 {
			t.Fatalf("%s: dropped row dual %v, want 0", name, y[2])
		}
		checkDualsMax(t, p, out)
	}
}

// TestPostsolveStaleDualsPanic: the lazy-dual stale-read protection must
// survive postsolve — reading Duals through the postsolved Solution
// after the workspace moved on panics exactly as the inner read would.
func TestPostsolveStaleDualsPanic(t *testing.T) {
	p := &Problem{
		Obj: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 0}, Rel: LE, RHS: 2}, // ensures a reduction fires
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
		},
	}
	ps, err := PresolveProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	sol, err := ws.Solve(ps.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	out := ps.Postsolve(sol)
	ws.Begin(3) // invalidates the inner lazy duals
	defer func() {
		if recover() == nil {
			t.Fatal("stale Duals read through Postsolve did not panic")
		}
	}()
	out.Duals()
}
