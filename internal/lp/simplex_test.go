package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

const tol = 1e-7

func approx(t *testing.T, got, want, eps float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, eps)
	}
}

func TestSimplexBasicMax(t *testing.T) {
	// maximise 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, z=36.
	p := &Problem{
		Obj: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Value, 36, tol, "objective")
	approx(t, sol.X[0], 2, tol, "x")
	approx(t, sol.X[1], 6, tol, "y")
}

func TestSimplexMinimize(t *testing.T) {
	// minimise 2x + 3y s.t. x + y ≥ 10, x ≥ 2 → x=8? No: min at x=10,y=0
	// gives 20; x=2,y=8 gives 28. So optimum x=10, y=0, z=20.
	p := &Problem{
		Minimize: true,
		Obj:      []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 2},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Value, 20, tol, "objective")
	approx(t, sol.X[0], 10, tol, "x")
	approx(t, sol.X[1], 0, tol, "y")
}

func TestSimplexEquality(t *testing.T) {
	// maximise x + 2y s.t. x + y = 5, y ≤ 3 → x=2, y=3, z=8.
	p := &Problem{
		Obj: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.Value, 8, tol, "objective")
}

func TestSimplexInfeasible(t *testing.T) {
	p := &Problem{
		Obj: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := &Problem{
		Obj: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// x ≤ −1 is infeasible for x ≥ 0; −x ≤ −1 means x ≥ 1.
	p := &Problem{
		Minimize: true,
		Obj:      []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	approx(t, sol.X[0], 1, tol, "x")
}

func TestSimplexDegenerate(t *testing.T) {
	// Klee-Minty style degenerate problem; Bland must terminate.
	p := &Problem{
		Obj: []float64{10, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 1},
			{Coeffs: []float64{20, 1}, Rel: LE, RHS: 100},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 0}, // forces x=y=0? no: x,y≥0 and x+y≤0 → x=y=0
		},
	}
	for _, rule := range []PivotRule{DantzigThenBland, BlandOnly} {
		sol, err := SolveWithRule(p, rule)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("rule %v: status = %v", rule, sol.Status)
		}
		approx(t, sol.Value, 0, tol, "objective")
	}
}

func TestSimplexDualsPacking(t *testing.T) {
	// Packing LP duals: maximise c·x, Ax ≤ b, duals y ≥ 0, strong duality.
	p := &Problem{
		Obj: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	duals := sol.Duals()
	dualVal := 0.0
	for i, c := range p.Constraints {
		if duals[i] < -tol {
			t.Fatalf("dual %d = %v < 0", i, duals[i])
		}
		dualVal += duals[i] * c.RHS
	}
	approx(t, dualVal, sol.Value, tol, "strong duality")
}

func TestRatSimplexMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		p := &Problem{Obj: make([]float64, n)}
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(9) + 1)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(4)) // may be zero
			}
			nonzero := false
			for _, a := range row {
				if a != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				row[rng.Intn(n)] = 1
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: row, Rel: LE, RHS: float64(rng.Intn(10) + 1),
			})
		}
		// Ensure boundedness: every variable in some row.
		for j := 0; j < n; j++ {
			covered := false
			for _, c := range p.Constraints {
				if c.Coeffs[j] > 0 {
					covered = true
				}
			}
			if !covered {
				row := make([]float64, n)
				row[j] = 1
				p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 5})
			}
		}
		fsol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rp := &RatProblem{Obj: ratSlice(p.Obj)}
		for _, c := range p.Constraints {
			rp.Constraints = append(rp.Constraints, RatConstraint{
				Coeffs: ratSlice(c.Coeffs), Rel: c.Rel, RHS: floatRat(c.RHS),
			})
		}
		rsol, err := SolveRat(rp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fsol.Status != rsol.Status {
			t.Fatalf("trial %d: float %v vs exact %v", trial, fsol.Status, rsol.Status)
		}
		if fsol.Status == Optimal {
			exact, _ := rsol.Value.Float64()
			approx(t, fsol.Value, exact, 1e-6, "objective agreement")
		}
	}
}

func ratSlice(xs []float64) []*big.Rat {
	out := make([]*big.Rat, len(xs))
	for i, x := range xs {
		out[i] = floatRat(x)
	}
	return out
}
