package lp

import (
	"fmt"
	"math"
	"math/big"

	"maxminlp/internal/mmlp"
)

// MaxMinResult is the outcome of solving a max-min LP to optimality.
type MaxMinResult struct {
	X      []float64 // one activity per agent
	Omega  float64   // optimal objective min_k Σ_v c_kv x_v
	Pivots int
}

// SolveMaxMin solves the max-min LP (1) of the paper to optimality with
// the float64 simplex. The LP formulation follows Section 1.3: maximise ω
// subject to Ax ≤ 1, ω·1 − Cx ≤ 0, x ≥ 0 (ω ≥ 0 is without loss of
// generality because C ≥ 0 and x ≥ 0). Every constraint is ≤ with
// nonnegative right-hand side, so phase 1 is never needed and the solve is
// a single simplex run from the all-slack basis.
//
// Instances without parties have ω = +Inf by convention (minimum over the
// empty set); SolveMaxMin then returns x = 0.
func SolveMaxMin(in *mmlp.Instance) (MaxMinResult, error) {
	n := in.NumAgents()
	if in.NumParties() == 0 {
		return MaxMinResult{X: make([]float64, n), Omega: math.Inf(1)}, nil
	}
	p := maxMinProblem(in)
	sol, err := Solve(p)
	if err != nil {
		return MaxMinResult{}, err
	}
	switch sol.Status {
	case Optimal:
	case Unbounded:
		// Impossible for valid instances: every agent consumes a resource,
		// so every variable (and hence ω) is bounded.
		return MaxMinResult{}, fmt.Errorf("lp: max-min LP unbounded; instance violates Iv ≠ ∅ assumption")
	default:
		// x = 0, ω = 0 is always feasible, so this cannot happen either.
		return MaxMinResult{}, fmt.Errorf("lp: max-min LP reported %v", sol.Status)
	}
	return MaxMinResult{X: sol.X[:n], Omega: sol.Value, Pivots: sol.Pivots}, nil
}

// Backend selects the simplex implementation used by SolveMaxMinWith.
type Backend int8

const (
	// BackendDense is the full-tableau simplex (reference).
	BackendDense Backend = iota
	// BackendRevised is the revised simplex with sparse columns and an
	// explicit basis inverse; much faster on large sparse instances.
	BackendRevised
)

// SolveMaxMinWith is SolveMaxMin with an explicit solver backend.
func SolveMaxMinWith(in *mmlp.Instance, backend Backend) (MaxMinResult, error) {
	n := in.NumAgents()
	if in.NumParties() == 0 {
		return MaxMinResult{X: make([]float64, n), Omega: math.Inf(1)}, nil
	}
	var sol Solution
	var err error
	switch backend {
	case BackendRevised:
		// Build the column-oriented form directly: the dense row
		// materialisation of maxMinProblem costs O(rows·vars) memory,
		// which the revised backend exists to avoid.
		sol, err = SolveRevisedSparse(maxMinSparse(in))
	default:
		sol, err = Solve(maxMinProblem(in))
	}
	if err != nil {
		return MaxMinResult{}, err
	}
	if sol.Status != Optimal {
		return MaxMinResult{}, fmt.Errorf("lp: max-min LP reported %v", sol.Status)
	}
	return MaxMinResult{X: sol.X[:n], Omega: sol.Value, Pivots: sol.Pivots}, nil
}

// maxMinSparse builds the Section-1.3 LP in column-oriented form:
// variables x_0..x_{n-1}, ω; rows are the resources followed by the
// parties (ω − Σ c_kv x_v ≤ 0).
func maxMinSparse(in *mmlp.Instance) *SparseProblem {
	n := in.NumAgents()
	nRes := in.NumResources()
	nPar := in.NumParties()
	sp := &SparseProblem{
		Obj:  make([]float64, n+1),
		Cols: make([][]SparseEntry, n+1),
		Rels: make([]Rel, nRes+nPar),
		RHS:  make([]float64, nRes+nPar),
	}
	sp.Obj[n] = 1
	for i := 0; i < nRes; i++ {
		sp.Rels[i] = LE
		sp.RHS[i] = 1
		for _, e := range in.Resource(i) {
			sp.Cols[e.Agent] = append(sp.Cols[e.Agent], SparseEntry{Row: i, Val: e.Coeff})
		}
	}
	for k := 0; k < nPar; k++ {
		row := nRes + k
		sp.Rels[row] = LE
		sp.RHS[row] = 0
		for _, e := range in.Party(k) {
			sp.Cols[e.Agent] = append(sp.Cols[e.Agent], SparseEntry{Row: row, Val: -e.Coeff})
		}
		sp.Cols[n] = append(sp.Cols[n], SparseEntry{Row: row, Val: 1})
	}
	return sp
}

// maxMinProblem builds the LP of Section 1.3 with variables x_0..x_{n-1}, ω.
func maxMinProblem(in *mmlp.Instance) *Problem {
	n := in.NumAgents()
	obj := make([]float64, n+1)
	obj[n] = 1 // maximise ω
	cons := make([]Constraint, 0, in.NumResources()+in.NumParties())
	for i := 0; i < in.NumResources(); i++ {
		row := make([]float64, n+1)
		for _, e := range in.Resource(i) {
			row[e.Agent] = e.Coeff
		}
		cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: 1})
	}
	for k := 0; k < in.NumParties(); k++ {
		row := make([]float64, n+1)
		for _, e := range in.Party(k) {
			row[e.Agent] = -e.Coeff
		}
		row[n] = 1 // ω − Σ c_kv x_v ≤ 0
		cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: 0})
	}
	return &Problem{Obj: obj, Constraints: cons}
}

// RatMaxMinResult is the exact counterpart of MaxMinResult.
type RatMaxMinResult struct {
	X      []*big.Rat
	Omega  *big.Rat
	Pivots int
}

// SolveMaxMinRat solves the max-min LP exactly over rationals. Instance
// coefficients are converted from float64 exactly (every float64 is a
// rational). Returns Omega == nil for instances without parties (ω = +∞).
func SolveMaxMinRat(in *mmlp.Instance) (RatMaxMinResult, error) {
	n := in.NumAgents()
	if in.NumParties() == 0 {
		x := make([]*big.Rat, n)
		for i := range x {
			x[i] = new(big.Rat)
		}
		return RatMaxMinResult{X: x}, nil
	}
	obj := make([]*big.Rat, n+1)
	obj[n] = big.NewRat(1, 1)
	one := big.NewRat(1, 1)
	var cons []RatConstraint
	for i := 0; i < in.NumResources(); i++ {
		row := make([]*big.Rat, n+1)
		for _, e := range in.Resource(i) {
			row[e.Agent] = floatRat(e.Coeff)
		}
		cons = append(cons, RatConstraint{Coeffs: row, Rel: LE, RHS: new(big.Rat).Set(one)})
	}
	for k := 0; k < in.NumParties(); k++ {
		row := make([]*big.Rat, n+1)
		for _, e := range in.Party(k) {
			row[e.Agent] = new(big.Rat).Neg(floatRat(e.Coeff))
		}
		row[n] = new(big.Rat).Set(one)
		cons = append(cons, RatConstraint{Coeffs: row, Rel: LE, RHS: new(big.Rat)})
	}
	sol, err := SolveRat(&RatProblem{Obj: obj, Constraints: cons})
	if err != nil {
		return RatMaxMinResult{}, err
	}
	if sol.Status != Optimal {
		return RatMaxMinResult{}, fmt.Errorf("lp: exact max-min LP reported %v", sol.Status)
	}
	return RatMaxMinResult{X: sol.X[:n], Omega: sol.Value, Pivots: sol.Pivots}, nil
}

func floatRat(f float64) *big.Rat {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		panic(fmt.Sprintf("lp: non-finite coefficient %v", f))
	}
	return r
}

// SolvePacking solves the packing LP "maximise c·x s.t. Ax ≤ 1, x ≥ 0"
// given as an instance whose parties are ignored and whose objective is c.
// It is the |K| = 1 special case discussed throughout the paper.
func SolvePacking(in *mmlp.Instance, c []float64) (Solution, error) {
	n := in.NumAgents()
	if len(c) != n {
		return Solution{}, fmt.Errorf("lp: objective has %d entries, want %d", len(c), n)
	}
	cons := make([]Constraint, in.NumResources())
	for i := 0; i < in.NumResources(); i++ {
		row := make([]float64, n)
		for _, e := range in.Resource(i) {
			row[e.Agent] = e.Coeff
		}
		cons[i] = Constraint{Coeffs: row, Rel: LE, RHS: 1}
	}
	obj := make([]float64, n)
	copy(obj, c)
	return Solve(&Problem{Obj: obj, Constraints: cons})
}
