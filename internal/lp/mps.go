package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file implements free-format MPS import/export for Problem — the
// interchange surface of the differential oracle: a Problem exported
// with WriteMPS and re-imported with ReadMPS is reconstructed exactly
// (coefficients travel as shortest-round-trip decimal strings, which
// strconv parses back to the identical float64 bits), so a solve of the
// re-imported problem is bit-identical to a solve of the original.
//
// The dialect is the common free-format subset: NAME, OBJSENSE
// (MAX/MIN), ROWS (one N row plus L/G/E rows), COLUMNS with one or two
// (row, value) pairs per line, RHS, ENDATA, and * comments. RANGES and
// BOUNDS are not written and are rejected on read — Problem has no
// ranged rows, and all variables are implicitly nonnegative, which is
// exactly the MPS default bound.

// MPSFile is a parsed MPS file: the problem plus the names that carried
// it, so writers can round-trip foreign files and importers can
// reconstruct structure from row names.
type MPSFile struct {
	Name    string
	Problem *Problem
	// ObjName is the name of the single N row; RowNames has one entry
	// per constraint row and ColNames one per variable, in problem
	// order.
	ObjName  string
	RowNames []string
	ColNames []string
}

// WriteMPS writes the problem in free-format MPS under default names
// (objective COST, rows R0.., columns X0..).
func WriteMPS(w io.Writer, name string, p *Problem) error {
	return WriteMPSFile(w, &MPSFile{Name: name, Problem: p})
}

// WriteMPSFile writes a problem with explicit row/column names; empty
// name slices (or entries) fall back to the defaults. Every column
// writes its objective entry even when zero — a column must appear in
// COLUMNS to exist — and other entries are written exactly when their
// coefficient has non-zero bits, so dense reconstruction is exact
// (including negative zeros).
func WriteMPSFile(w io.Writer, f *MPSFile) error {
	p := f.Problem
	nVars := len(p.Obj)
	for i, c := range p.Constraints {
		if len(c.Coeffs) != nVars {
			return fmt.Errorf("lp: WriteMPS: row %d has %d coefficients, want %d", i, len(c.Coeffs), nVars)
		}
		if !isFinite(c.RHS) {
			return fmt.Errorf("lp: WriteMPS: row %d has non-finite rhs %v", i, c.RHS)
		}
		for j, v := range c.Coeffs {
			if !isFinite(v) {
				return fmt.Errorf("lp: WriteMPS: coefficient (%d,%d) is non-finite: %v", i, j, v)
			}
		}
	}
	for j, v := range p.Obj {
		if !isFinite(v) {
			return fmt.Errorf("lp: WriteMPS: objective coefficient %d is non-finite: %v", j, v)
		}
	}
	obj := f.ObjName
	if obj == "" {
		obj = "COST"
	}
	rowName := func(i int) string {
		if i < len(f.RowNames) && f.RowNames[i] != "" {
			return f.RowNames[i]
		}
		return "R" + strconv.Itoa(i)
	}
	colName := func(j int) string {
		if j < len(f.ColNames) && f.ColNames[j] != "" {
			return f.ColNames[j]
		}
		return "X" + strconv.Itoa(j)
	}

	bw := bufio.NewWriter(w)
	name := f.Name
	if name == "" {
		name = "LP"
	}
	fmt.Fprintf(bw, "NAME %s\n", name)
	bw.WriteString("OBJSENSE\n")
	if p.Minimize {
		bw.WriteString("    MIN\n")
	} else {
		bw.WriteString("    MAX\n")
	}
	bw.WriteString("ROWS\n")
	fmt.Fprintf(bw, " N %s\n", obj)
	for i, c := range p.Constraints {
		var t byte
		switch c.Rel {
		case LE:
			t = 'L'
		case GE:
			t = 'G'
		case EQ:
			t = 'E'
		default:
			return fmt.Errorf("lp: WriteMPS: row %d has unknown relation %v", i, c.Rel)
		}
		fmt.Fprintf(bw, " %c %s\n", t, rowName(i))
	}
	bw.WriteString("COLUMNS\n")
	for j := 0; j < nVars; j++ {
		cn := colName(j)
		fmt.Fprintf(bw, "    %s %s %s\n", cn, obj, fmtF(p.Obj[j]))
		for i, c := range p.Constraints {
			if math.Float64bits(c.Coeffs[j]) != 0 {
				fmt.Fprintf(bw, "    %s %s %s\n", cn, rowName(i), fmtF(c.Coeffs[j]))
			}
		}
	}
	bw.WriteString("RHS\n")
	for i, c := range p.Constraints {
		if math.Float64bits(c.RHS) != 0 {
			fmt.Fprintf(bw, "    RHS %s %s\n", rowName(i), fmtF(c.RHS))
		}
	}
	bw.WriteString("ENDATA\n")
	return bw.Flush()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ReadMPS parses a free-format MPS file written by WriteMPS (or any file
// in the supported subset). Variables are created in COLUMNS
// first-appearance order, rows in ROWS declaration order; entries absent
// from the file read as zero. Duplicate entries, unknown names,
// non-finite values, RANGES and BOUNDS sections, and structural
// violations — including a reopened section header and an OBJSENSE
// section with no MIN/MAX line — are errors, never panics.
func ReadMPS(r io.Reader) (*MPSFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)

	f := &MPSFile{Problem: &Problem{}}
	p := f.Problem
	// MPS's historical default objective sense is minimisation.
	p.Minimize = true

	type rowRef struct {
		idx int // constraint index, or -1 for the objective
	}
	rows := make(map[string]rowRef)
	cols := make(map[string]int)
	type entry struct {
		col, row int // row == -1 → objective
		val      float64
	}
	var entries []entry
	rhs := make(map[int]float64)
	seen := make(map[[2]int]bool)
	haveObj := false

	const (
		secNone = iota
		secObjsense
		secRows
		secColumns
		secRHS
		secDone
	)
	section := secNone
	seenSec := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		// Section headers start in column one (no leading whitespace).
		if line[0] != ' ' && line[0] != '\t' {
			// Any header (ENDATA included) closes the current section; an
			// OBJSENSE section that closes without having seen its MIN/MAX
			// line is structurally malformed.
			if section == secObjsense {
				return nil, fmt.Errorf("lp: mps line %d: OBJSENSE section has no MIN/MAX line", lineNo)
			}
			// Each section may open at most once.
			switch fields[0] {
			case "OBJSENSE", "ROWS", "COLUMNS", "RHS":
				if seenSec[fields[0]] {
					return nil, fmt.Errorf("lp: mps line %d: %s section reopened", lineNo, fields[0])
				}
				seenSec[fields[0]] = true
			}
			switch fields[0] {
			case "NAME":
				if len(fields) > 1 {
					f.Name = fields[1]
				}
				continue
			case "OBJSENSE":
				section = secObjsense
				// Accept the inline form "OBJSENSE MAX" too.
				if len(fields) > 1 {
					if err := parseObjSense(fields[1], p); err != nil {
						return nil, fmt.Errorf("lp: mps line %d: %w", lineNo, err)
					}
					section = secNone
				}
				continue
			case "ROWS":
				section = secRows
				continue
			case "COLUMNS":
				section = secColumns
				continue
			case "RHS":
				section = secRHS
				continue
			case "RANGES", "BOUNDS":
				return nil, fmt.Errorf("lp: mps line %d: unsupported section %s", lineNo, fields[0])
			case "ENDATA":
				section = secDone
				break
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown section %q", lineNo, fields[0])
			}
			if section == secDone {
				break
			}
			continue
		}
		switch section {
		case secObjsense:
			if err := parseObjSense(fields[0], p); err != nil {
				return nil, fmt.Errorf("lp: mps line %d: %w", lineNo, err)
			}
			section = secNone
		case secRows:
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: mps line %d: ROWS entry wants `type name`, got %q", lineNo, line)
			}
			typ, name := fields[0], fields[1]
			if _, dup := rows[name]; dup {
				return nil, fmt.Errorf("lp: mps line %d: duplicate row %q", lineNo, name)
			}
			switch typ {
			case "N", "n":
				if haveObj {
					return nil, fmt.Errorf("lp: mps line %d: second N row %q", lineNo, name)
				}
				haveObj = true
				f.ObjName = name
				rows[name] = rowRef{idx: -1}
			case "L", "l", "G", "g", "E", "e":
				var rel Rel
				switch typ {
				case "L", "l":
					rel = LE
				case "G", "g":
					rel = GE
				default:
					rel = EQ
				}
				rows[name] = rowRef{idx: len(p.Constraints)}
				f.RowNames = append(f.RowNames, name)
				p.Constraints = append(p.Constraints, Constraint{Rel: rel})
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown row type %q", lineNo, typ)
			}
		case secColumns:
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("lp: mps line %d: COLUMNS entry wants `col row val [row val]`, got %q", lineNo, line)
			}
			cn := fields[0]
			ci, ok := cols[cn]
			if !ok {
				ci = len(f.ColNames)
				cols[cn] = ci
				f.ColNames = append(f.ColNames, cn)
			}
			for k := 1; k+1 < len(fields); k += 2 {
				ref, ok := rows[fields[k]]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, fields[k])
				}
				v, err := parseF(fields[k+1])
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: %w", lineNo, err)
				}
				if seen[[2]int{ci, ref.idx}] {
					return nil, fmt.Errorf("lp: mps line %d: duplicate entry for column %q row %q", lineNo, cn, fields[k])
				}
				seen[[2]int{ci, ref.idx}] = true
				entries = append(entries, entry{col: ci, row: ref.idx, val: v})
			}
		case secRHS:
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("lp: mps line %d: RHS entry wants `set row val [row val]`, got %q", lineNo, line)
			}
			for k := 1; k+1 < len(fields); k += 2 {
				ref, ok := rows[fields[k]]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, fields[k])
				}
				if ref.idx < 0 {
					return nil, fmt.Errorf("lp: mps line %d: RHS on objective row %q", lineNo, fields[k])
				}
				v, err := parseF(fields[k+1])
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: %w", lineNo, err)
				}
				if _, dup := rhs[ref.idx]; dup {
					return nil, fmt.Errorf("lp: mps line %d: duplicate RHS for row %q", lineNo, fields[k])
				}
				rhs[ref.idx] = v
			}
		default:
			return nil, fmt.Errorf("lp: mps line %d: data outside any section: %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if section != secDone {
		return nil, fmt.Errorf("lp: mps: missing ENDATA")
	}
	if !haveObj {
		return nil, fmt.Errorf("lp: mps: no N (objective) row")
	}

	nVars := len(f.ColNames)
	p.Obj = make([]float64, nVars)
	for i := range p.Constraints {
		p.Constraints[i].Coeffs = make([]float64, nVars)
	}
	for _, e := range entries {
		if e.row < 0 {
			p.Obj[e.col] = e.val
		} else {
			p.Constraints[e.row].Coeffs[e.col] = e.val
		}
	}
	for i, v := range rhs {
		p.Constraints[i].RHS = v
	}
	return f, nil
}

func parseObjSense(s string, p *Problem) error {
	switch strings.ToUpper(s) {
	case "MAX", "MAXIMIZE":
		p.Minimize = false
	case "MIN", "MINIMIZE":
		p.Minimize = true
	default:
		return fmt.Errorf("unknown OBJSENSE %q", s)
	}
	return nil
}

func parseF(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", s, err)
	}
	if !isFinite(v) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}
