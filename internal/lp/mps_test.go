package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomProblem builds a random LP with shapes and values that exercise
// the writer: negative, zero and subnormal-ish coefficients, all three
// relations, both senses.
func randomMPSProblem(rng *rand.Rand) *Problem {
	nVars := 1 + rng.Intn(6)
	nRows := rng.Intn(6)
	p := &Problem{Minimize: rng.Intn(2) == 0, Obj: make([]float64, nVars)}
	val := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return float64(rng.Intn(7) - 3)
		default:
			return (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(20)-10)
		}
	}
	for j := range p.Obj {
		p.Obj[j] = val()
	}
	for i := 0; i < nRows; i++ {
		c := Constraint{Rel: Rel(rng.Intn(3)), RHS: val(), Coeffs: make([]float64, nVars)}
		for j := range c.Coeffs {
			c.Coeffs[j] = val()
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

func problemsEqual(a, b *Problem) bool {
	if a.Minimize != b.Minimize || len(a.Obj) != len(b.Obj) || len(a.Constraints) != len(b.Constraints) {
		return false
	}
	for j := range a.Obj {
		if math.Float64bits(a.Obj[j]) != math.Float64bits(b.Obj[j]) {
			return false
		}
	}
	for i := range a.Constraints {
		ca, cb := a.Constraints[i], b.Constraints[i]
		if ca.Rel != cb.Rel || math.Float64bits(ca.RHS) != math.Float64bits(cb.RHS) {
			return false
		}
		for j := range ca.Coeffs {
			if math.Float64bits(ca.Coeffs[j]) != math.Float64bits(cb.Coeffs[j]) {
				return false
			}
		}
	}
	return true
}

// TestMPSRoundTripExact: export → import reconstructs the problem bit
// for bit — the property the differential oracle rests on.
func TestMPSRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomMPSProblem(rng)
		var buf bytes.Buffer
		if err := WriteMPS(&buf, "T", p); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		f, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v\n%s", trial, err, buf.String())
		}
		if !problemsEqual(p, f.Problem) {
			t.Fatalf("trial %d: round trip changed the problem\n%s", trial, buf.String())
		}
		if f.Name != "T" {
			t.Fatalf("trial %d: name %q", trial, f.Name)
		}
	}
}

// TestMPSSolveAgreement: solving the re-imported problem gives the
// bit-identical solution — coefficients travel losslessly, and Solve is
// deterministic in its inputs.
func TestMPSSolveAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	agree := 0
	for trial := 0; trial < 100; trial++ {
		p := randomMPSProblem(rng)
		var buf bytes.Buffer
		if err := WriteMPS(&buf, "T", p); err != nil {
			t.Fatal(err)
		}
		f, err := ReadMPS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		s1, err1 := Solve(p)
		s2, err2 := Solve(f.Problem)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: solve errors differ: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, s1.Status, s2.Status)
		}
		if s1.Status == Optimal {
			if math.Float64bits(s1.Value) != math.Float64bits(s2.Value) {
				t.Fatalf("trial %d: value %v vs %v", trial, s1.Value, s2.Value)
			}
			for j := range s1.X {
				if math.Float64bits(s1.X[j]) != math.Float64bits(s2.X[j]) {
					t.Fatalf("trial %d: x[%d] %v vs %v", trial, j, s1.X[j], s2.X[j])
				}
			}
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no optimal instances exercised")
	}
}

// TestMPSNamedRoundTrip: foreign row/column names survive a read →
// write → read cycle and keep carrying the same problem.
func TestMPSNamedRoundTrip(t *testing.T) {
	src := `* a comment
NAME widget
OBJSENSE
    MAX
ROWS
 N profit
 L capacity
 G demand
COLUMNS
    make profit 3 capacity 2
    make demand 1
    buy profit -1.5
    buy capacity 1 demand 1
RHS
    RHS capacity 10
    RHS demand 2
ENDATA
`
	f, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "widget" || f.ObjName != "profit" {
		t.Fatalf("names: %q %q", f.Name, f.ObjName)
	}
	if got := f.ColNames; len(got) != 2 || got[0] != "make" || got[1] != "buy" {
		t.Fatalf("columns: %v", got)
	}
	if got := f.RowNames; len(got) != 2 || got[0] != "capacity" || got[1] != "demand" {
		t.Fatalf("rows: %v", got)
	}
	p := f.Problem
	if p.Minimize || p.Obj[0] != 3 || p.Obj[1] != -1.5 {
		t.Fatalf("objective: %+v", p)
	}
	if p.Constraints[0].Rel != LE || p.Constraints[0].RHS != 10 || p.Constraints[0].Coeffs[0] != 2 || p.Constraints[0].Coeffs[1] != 1 {
		t.Fatalf("capacity row: %+v", p.Constraints[0])
	}
	var buf bytes.Buffer
	if err := WriteMPSFile(&buf, f); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadMPS(&buf)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !problemsEqual(f.Problem, f2.Problem) {
		t.Fatal("named round trip changed the problem")
	}
}

// TestMPSReadErrors: malformed inputs are rejected with errors, not
// panics, and never half-parse.
func TestMPSReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"no endata":         "NAME x\nROWS\n N obj\nCOLUMNS\n",
		"no objective":      "NAME x\nROWS\n L r\nCOLUMNS\nRHS\nENDATA\n",
		"two objectives":    "ROWS\n N a\n N b\nENDATA\n",
		"dup row":           "ROWS\n N obj\n L r\n G r\nENDATA\n",
		"unknown row type":  "ROWS\n N obj\n Q r\nENDATA\n",
		"unknown sense":     "OBJSENSE\n    MOST\nROWS\n N obj\nENDATA\n",
		"bad number":        "ROWS\n N obj\nCOLUMNS\n    x obj twelve\nENDATA\n",
		"nan":               "ROWS\n N obj\nCOLUMNS\n    x obj NaN\nENDATA\n",
		"inf rhs":           "ROWS\n N obj\n L r\nRHS\n    RHS r +Inf\nENDATA\n",
		"unknown col row":   "ROWS\n N obj\nCOLUMNS\n    x nope 1\nENDATA\n",
		"unknown rhs row":   "ROWS\n N obj\nRHS\n    RHS nope 1\nENDATA\n",
		"rhs on objective":  "ROWS\n N obj\nRHS\n    RHS obj 1\nENDATA\n",
		"dup entry":         "ROWS\n N obj\n L r\nCOLUMNS\n    x r 1\n    x r 2\nENDATA\n",
		"dup rhs":           "ROWS\n N obj\n L r\nRHS\n    RHS r 1\n    RHS r 2\nENDATA\n",
		"ranges":            "ROWS\n N obj\nRANGES\nENDATA\n",
		"bounds":            "ROWS\n N obj\nBOUNDS\nENDATA\n",
		"stray data":        "    x obj 1\nENDATA\n",
		"short column line": "ROWS\n N obj\nCOLUMNS\n    x obj\nENDATA\n",
		"unknown section":   "WHAT\nENDATA\n",
		"reopened rows":     "ROWS\n N obj\nROWS\n L r\nENDATA\n",
		"reopened columns":  "ROWS\n N obj\nCOLUMNS\n    x obj 1\nCOLUMNS\nENDATA\n",
		"reopened rhs":      "ROWS\n N obj\n L r\nRHS\n    RHS r 1\nRHS\nENDATA\n",
		"reopened objsense": "OBJSENSE MAX\nOBJSENSE MIN\nROWS\n N obj\nENDATA\n",
		"empty objsense":    "OBJSENSE\nROWS\n N obj\nENDATA\n",
		"objsense at end":   "ROWS\n N obj\nOBJSENSE\nENDATA\n",
	}
	for name, src := range cases {
		if _, err := ReadMPS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestMPSWriteErrors: the writer rejects problems MPS cannot carry.
func TestMPSWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	bad := []*Problem{
		{Obj: []float64{math.NaN()}},
		{Obj: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Rel: LE, RHS: 1}}},
		{Obj: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}}},
		{Obj: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{Obj: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: Rel(9), RHS: 1}}},
	}
	for i, p := range bad {
		if err := WriteMPS(&buf, "bad", p); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

// FuzzMPSRoundTrip: parse → write → parse is a fixpoint and never
// panics. Anything the reader accepts must be writable, and the written
// form must parse back to the identical problem (the written canonical
// form is itself stable).
func FuzzMPSRoundTrip(f *testing.F) {
	f.Add("NAME x\nOBJSENSE\n    MAX\nROWS\n N obj\n L r0\nCOLUMNS\n    x0 obj 1\n    x0 r0 2.5\nRHS\n    RHS r0 1\nENDATA\n")
	f.Add("ROWS\n N c\nENDATA\n")
	f.Add("ROWS\n N c\n E e\nCOLUMNS\n    a c 1 e -0\nRHS\n    RHS e 5e-300\nENDATA\n")
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := ReadMPS(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMPSFile(&buf, f1); err != nil {
			t.Fatalf("accepted input failed to write: %v", err)
		}
		first := buf.String()
		f2, err := ReadMPS(strings.NewReader(first))
		if err != nil {
			t.Fatalf("written form failed to parse: %v\n%s", err, first)
		}
		if !problemsEqual(f1.Problem, f2.Problem) {
			t.Fatalf("write → read changed the problem\n%s", first)
		}
		var buf2 bytes.Buffer
		if err := WriteMPSFile(&buf2, f2); err != nil {
			t.Fatal(err)
		}
		if buf2.String() != first {
			t.Fatalf("canonical form is not a fixpoint:\n%s\nvs\n%s", first, buf2.String())
		}
	})
}
