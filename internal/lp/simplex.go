// Package lp is a self-contained linear-programming substrate built only
// on the standard library. It provides a dense two-phase simplex solver
// over float64 (with Dantzig pivoting and a Bland anti-cycling fallback)
// and an exact twin over math/big rationals, plus front-ends for the
// max-min LPs and packing LPs used throughout the paper.
//
// All variables are implicitly nonnegative; this matches every program in
// the paper (x ≥ 0, and the auxiliary objective value ω of a max-min LP is
// nonnegative because C and x are).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is the relation of a constraint row.
type Rel int8

const (
	LE Rel = iota // Σ coeff·x ≤ rhs
	GE            // Σ coeff·x ≥ rhs
	EQ            // Σ coeff·x = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Constraint is one row of an LP.
type Constraint struct {
	Coeffs []float64 // dense, length = number of variables
	Rel    Rel
	RHS    float64
}

// Problem is a linear program over nonnegative variables:
//
//	maximise (or minimise) Obj · x
//	subject to the Constraints, x ≥ 0.
type Problem struct {
	Minimize    bool
	Obj         []float64
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int8

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // primal values, valid when Status == Optimal
	Value  float64   // objective value, valid when Status == Optimal
	Duals  []float64 // one multiplier per constraint, valid when Status == Optimal
	Pivots int       // total simplex pivots performed
}

// ErrNumerical is returned when the solver detects that floating-point
// round-off has corrupted the tableau beyond the configured tolerances.
var ErrNumerical = errors.New("lp: numerical difficulty")

const (
	epsPivot   = 1e-10 // entries below this are treated as zero in ratio tests
	epsReduced = 1e-9  // optimality tolerance on reduced costs
	epsPhase1  = 1e-7  // residual artificial infeasibility treated as zero
)

// PivotRule selects the entering-variable heuristic.
type PivotRule int8

const (
	// DantzigThenBland uses the most-positive reduced cost and switches to
	// Bland's rule after a pivot budget, guaranteeing termination.
	DantzigThenBland PivotRule = iota
	// BlandOnly always uses Bland's rule (smallest eligible index).
	BlandOnly
)

// Solve solves the problem with the default pivot rule.
func Solve(p *Problem) (Solution, error) { return SolveWithRule(p, DantzigThenBland) }

// SolveWithRule solves the problem with an explicit pivot rule. The
// algorithm is the classical two-phase tableau simplex: phase 1 minimises
// the sum of artificial variables to find a basic feasible solution, phase
// 2 optimises the real objective.
func SolveWithRule(p *Problem, rule PivotRule) (Solution, error) {
	t, err := newTableau(p)
	if err != nil {
		return Solution{}, err
	}
	sol := Solution{}
	if t.needPhase1 {
		t.setPhase1Objective()
		if err := t.iterate(rule, &sol.Pivots); err != nil {
			return Solution{}, err
		}
		// Phase 1 maximises −Σ artificials, so a strictly negative optimum
		// means some artificial could not be driven to zero: infeasible.
		if t.objValue() < -epsPhase1 {
			sol.Status = Infeasible
			return sol, nil
		}
		if err := t.expelArtificials(); err != nil {
			return Solution{}, err
		}
	}
	t.setPhase2Objective(p)
	if err := t.iterate(rule, &sol.Pivots); err != nil {
		if errors.Is(err, errUnbounded) {
			sol.Status = Unbounded
			return sol, nil
		}
		return Solution{}, err
	}
	sol.Status = Optimal
	sol.X = t.primal()
	sol.Value = t.objValue()
	if p.Minimize {
		sol.Value = -sol.Value
	}
	sol.Duals = t.duals(p)
	return sol, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is the dense simplex tableau. Columns are laid out as
// [0, nVars) original variables, [nVars, nVars+nSlack) slack/surplus
// variables, [artStart, nCols) artificial variables; rhs is stored
// separately. rows[r] has length nCols. basis[r] is the column basic in
// row r. obj is the current reduced-cost row (length nCols) and objRHS the
// current objective value.
type tableau struct {
	nVars    int
	nSlack   int
	artStart int
	nCols    int

	rows   [][]float64
	rhs    []float64
	basis  []int
	obj    []float64
	objRHS float64

	needPhase1 bool
	inPhase2   bool

	slackCol []int  // per constraint: its slack column, or -1
	slackNeg []bool // true when the slack entered with coefficient -1 (GE rows)
}

func newTableau(p *Problem) (*tableau, error) {
	n := len(p.Obj)
	m := len(p.Constraints)
	for r, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", r, len(c.Coeffs), n)
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return nil, fmt.Errorf("lp: constraint %d has non-finite rhs %v", r, c.RHS)
		}
	}

	// Normalise rows to nonnegative rhs, count slack and artificial needs.
	type rowPlan struct {
		flip     bool
		rel      Rel
		needsArt bool
	}
	plans := make([]rowPlan, m)
	nSlack, nArt := 0, 0
	for r, c := range p.Constraints {
		pl := rowPlan{rel: c.Rel}
		if c.RHS < 0 {
			pl.flip = true
			switch c.Rel {
			case LE:
				pl.rel = GE
			case GE:
				pl.rel = LE
			}
		}
		switch pl.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			pl.needsArt = true
			nArt++
		case EQ:
			pl.needsArt = true
			nArt++
		}
		plans[r] = pl
	}

	t := &tableau{
		nVars:    n,
		nSlack:   nSlack,
		artStart: n + nSlack,
		nCols:    n + nSlack + nArt,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		obj:      make([]float64, n+nSlack+nArt),
		slackCol: make([]int, m),
		slackNeg: make([]bool, m),
	}
	slack := n
	art := t.artStart
	for r, c := range p.Constraints {
		row := make([]float64, t.nCols)
		sign := 1.0
		if plans[r].flip {
			sign = -1
		}
		for j, a := range c.Coeffs {
			row[j] = sign * a
		}
		t.rhs[r] = sign * c.RHS
		t.slackCol[r] = -1
		switch plans[r].rel {
		case LE:
			row[slack] = 1
			t.basis[r] = slack
			t.slackCol[r] = slack
			slack++
		case GE:
			row[slack] = -1
			t.slackCol[r] = slack
			t.slackNeg[r] = true
			slack++
			row[art] = 1
			t.basis[r] = art
			art++
			t.needPhase1 = true
		case EQ:
			row[art] = 1
			t.basis[r] = art
			art++
			t.needPhase1 = true
		}
		t.rows[r] = row
	}
	return t, nil
}

// setPhase1Objective installs "maximise −Σ artificials" as the reduced-cost
// row, priced out against the current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	costs := make([]float64, t.nCols)
	for j := t.artStart; j < t.nCols; j++ {
		costs[j] = -1
	}
	t.priceOut(costs)
	t.inPhase2 = false
}

// setPhase2Objective installs the real objective, priced out against the
// current basis. Artificial columns are barred from entering by forcing
// their reduced costs to a large negative value.
func (t *tableau) setPhase2Objective(p *Problem) {
	costs := make([]float64, t.nCols)
	for j := 0; j < t.nVars; j++ {
		if p.Minimize {
			costs[j] = -p.Obj[j]
		} else {
			costs[j] = p.Obj[j]
		}
	}
	t.priceOut(costs)
	t.inPhase2 = true
}

// priceOut sets obj[j] = costs[j] − Σ_r costs[basis[r]]·rows[r][j] and
// objRHS = Σ_r costs[basis[r]]·rhs[r].
func (t *tableau) priceOut(costs []float64) {
	copy(t.obj, costs)
	t.objRHS = 0
	for r, b := range t.basis {
		cb := costs[b]
		if cb == 0 {
			continue
		}
		row := t.rows[r]
		for j := range t.obj {
			t.obj[j] -= cb * row[j]
		}
		t.objRHS += cb * t.rhs[r]
	}
}

func (t *tableau) objValue() float64 { return t.objRHS }

// iterate runs primal simplex pivots until optimality or unboundedness.
func (t *tableau) iterate(rule PivotRule, pivots *int) error {
	budget := dantzigBudget(len(t.rows), t.nCols)
	useBland := rule == BlandOnly
	for iter := 0; ; iter++ {
		if iter > budget && !useBland {
			useBland = true // anti-cycling fallback
		}
		if iter > 16*budget+10000 {
			return fmt.Errorf("%w: pivot limit exceeded", ErrNumerical)
		}
		enter := t.chooseEntering(useBland)
		if enter < 0 {
			return nil // optimal
		}
		leave := t.chooseLeaving(enter, useBland)
		if leave < 0 {
			if !t.inPhase2 {
				// Phase-1 objective is bounded by construction; an unbounded
				// ray here means round-off corrupted the tableau.
				return fmt.Errorf("%w: unbounded phase-1 ray", ErrNumerical)
			}
			return errUnbounded
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

func dantzigBudget(m, n int) int { return 50 * (m + n + 10) }

func (t *tableau) chooseEntering(bland bool) int {
	limit := t.nCols
	if t.inPhase2 {
		limit = t.artStart // artificials may not re-enter in phase 2
	}
	if bland {
		for j := 0; j < limit; j++ {
			if t.obj[j] > epsReduced && !t.isBasic(j) {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, epsReduced
	for j := 0; j < limit; j++ {
		if t.obj[j] > bestVal && !t.isBasic(j) {
			best, bestVal = j, t.obj[j]
		}
	}
	return best
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

func (t *tableau) chooseLeaving(enter int, bland bool) int {
	best := -1
	var bestRatio float64
	for r := range t.rows {
		a := t.rows[r][enter]
		if a <= epsPivot {
			continue
		}
		ratio := t.rhs[r] / a
		switch {
		case best < 0, ratio < bestRatio-epsPivot:
			best, bestRatio = r, ratio
		case ratio < bestRatio+epsPivot:
			// Tie: Bland breaks by smallest basic index; Dantzig by largest
			// pivot element for stability.
			if bland {
				if t.basis[r] < t.basis[best] {
					best, bestRatio = r, ratio
				}
			} else if a > t.rows[best][enter] {
				best, bestRatio = r, ratio
			}
		}
	}
	return best
}

func (t *tableau) pivot(r, enter int) {
	row := t.rows[r]
	inv := 1 / row[enter]
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1 // exact
	t.rhs[r] *= inv
	for rr := range t.rows {
		if rr == r {
			continue
		}
		f := t.rows[rr][enter]
		if f == 0 {
			continue
		}
		other := t.rows[rr]
		for j := range other {
			other[j] -= f * row[j]
		}
		other[enter] = 0 // exact
		t.rhs[rr] -= f * t.rhs[r]
		if t.rhs[rr] < 0 && t.rhs[rr] > -epsPivot {
			t.rhs[rr] = 0
		}
	}
	f := t.obj[enter]
	if f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * row[j]
		}
		t.obj[enter] = 0
		t.objRHS += f * t.rhs[r]
	}
	t.basis[r] = enter
}

// expelArtificials pivots basic artificial variables (at value 0 after a
// successful phase 1) out of the basis, or drops redundant rows.
func (t *tableau) expelArtificials() error {
	for r := 0; r < len(t.rows); r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		// Find any real column with a usable pivot in this row.
		found := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[r][j]) > epsPivot {
				found = j
				break
			}
		}
		if found >= 0 {
			t.pivot(r, found)
			continue
		}
		// Row is redundant: remove it.
		last := len(t.rows) - 1
		t.rows[r], t.rows[last] = t.rows[last], t.rows[r]
		t.rhs[r], t.rhs[last] = t.rhs[last], t.rhs[r]
		t.basis[r], t.basis[last] = t.basis[last], t.basis[r]
		t.slackCol[r], t.slackCol[last] = t.slackCol[last], t.slackCol[r]
		t.slackNeg[r], t.slackNeg[last] = t.slackNeg[last], t.slackNeg[r]
		t.rows = t.rows[:last]
		t.rhs = t.rhs[:last]
		t.basis = t.basis[:last]
		t.slackCol = t.slackCol[:last]
		t.slackNeg = t.slackNeg[:last]
		r--
	}
	return nil
}

// primal reads off the values of the original variables.
func (t *tableau) primal() []float64 {
	x := make([]float64, t.nVars)
	for r, b := range t.basis {
		if b < t.nVars {
			v := t.rhs[r]
			if v < 0 && v > -epsPivot {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// duals recovers one multiplier per original constraint from the reduced
// costs of the slack columns: for a maximisation with a ≤ row and slack s,
// y = −obj[s]; sign conventions follow so that for maximisation problems
// with all-≤ rows, strong duality reads Value = Σ y_i·rhs_i with y ≥ 0.
// Rows whose redundancy was detected in phase 1 get dual 0.
func (t *tableau) duals(p *Problem) []float64 {
	y := make([]float64, len(p.Constraints))
	// slackCol was permuted along with row removals; rebuild the mapping
	// from original constraint index via slack column identity. Slack
	// columns are assigned in constraint order during construction, so we
	// can invert: column -> original constraint.
	colToCon := make(map[int]int)
	slack := t.nVars
	for r, c := range p.Constraints {
		switch {
		case c.Rel == LE && c.RHS >= 0, c.Rel == GE && c.RHS < 0:
			colToCon[slack] = r
			slack++
		case c.Rel == EQ:
			// no slack column
		default:
			colToCon[slack] = r
			slack++
		}
	}
	for col, con := range colToCon {
		v := -t.obj[col]
		if t.slackNegForCol(col) {
			v = -v
		}
		if p.Minimize {
			v = -v
		}
		y[con] = v
	}
	return y
}

func (t *tableau) slackNegForCol(col int) bool {
	for r, c := range t.slackCol {
		if c == col {
			return t.slackNeg[r]
		}
	}
	return false
}
