// Package lp is a self-contained linear-programming substrate built only
// on the standard library. It provides a dense two-phase simplex solver
// over float64 (with Dantzig pivoting and a Bland anti-cycling fallback)
// and an exact twin over math/big rationals, plus front-ends for the
// max-min LPs and packing LPs used throughout the paper.
//
// All variables are implicitly nonnegative; this matches every program in
// the paper (x ≥ 0, and the auxiliary objective value ω of a max-min LP is
// nonnegative because C and x are).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is the relation of a constraint row.
type Rel int8

const (
	LE Rel = iota // Σ coeff·x ≤ rhs
	GE            // Σ coeff·x ≥ rhs
	EQ            // Σ coeff·x = rhs
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Constraint is one row of an LP.
type Constraint struct {
	Coeffs []float64 // dense, length = number of variables
	Rel    Rel
	RHS    float64
}

// Problem is a linear program over nonnegative variables:
//
//	maximise (or minimise) Obj · x
//	subject to the Constraints, x ≥ 0.
type Problem struct {
	Minimize    bool
	Obj         []float64
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int8

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	X      []float64 // primal values, valid when Status == Optimal
	Value  float64   // objective value, valid when Status == Optimal
	Pivots int       // total simplex pivots performed

	// Lazy dual sources: the dense simplex defers dual extraction to the
	// first Duals call (dws + the generation it solved in), the revised
	// simplex installs a closure. Nil for non-optimal solutions.
	dws    *Workspace
	dgen   uint64
	dmin   bool
	dualFn func() []float64
}

// Duals returns one multiplier per constraint, valid when Status ==
// Optimal and nil otherwise. The multipliers are computed on demand from
// the final tableau — no hot-path caller reads them, so solves do not pay
// for the extraction. For dense-simplex solutions obtained through a
// reused Workspace, Duals must be called before the next solve on that
// workspace (a stale read panics). The flip side of laziness: a retained
// Solution keeps its solver state (the workspace tableau or the revised
// factorisation) reachable; callers hoarding many Solutions should copy
// the fields they need and drop the Solution itself.
func (s Solution) Duals() []float64 {
	switch {
	case s.dws != nil:
		return s.dws.dualsFromTableau(s.dgen, s.dmin)
	case s.dualFn != nil:
		return s.dualFn()
	}
	return nil
}

// ErrNumerical is returned when the solver detects that floating-point
// round-off has corrupted the tableau beyond the configured tolerances.
var ErrNumerical = errors.New("lp: numerical difficulty")

const (
	epsPivot   = 1e-10 // entries below this are treated as zero in ratio tests
	epsReduced = 1e-9  // optimality tolerance on reduced costs
	epsPhase1  = 1e-7  // residual artificial infeasibility treated as zero
)

// PivotRule selects the entering-variable heuristic.
type PivotRule int8

const (
	// DantzigThenBland uses the most-positive reduced cost and switches to
	// Bland's rule after a pivot budget, guaranteeing termination.
	DantzigThenBland PivotRule = iota
	// BlandOnly always uses Bland's rule (smallest eligible index).
	BlandOnly
)

// Solve solves the problem with the default pivot rule.
func Solve(p *Problem) (Solution, error) { return SolveWithRule(p, DantzigThenBland) }

// SolveWithRule solves the problem with an explicit pivot rule. The
// algorithm is the classical two-phase tableau simplex: phase 1 minimises
// the sum of artificial variables to find a basic feasible solution, phase
// 2 optimises the real objective. It is a one-shot wrapper over a fresh
// Workspace; callers solving many LPs should hold a Workspace and reuse
// it (the results are bit-identical, the allocations are not).
func SolveWithRule(p *Problem, rule PivotRule) (Solution, error) {
	return NewWorkspace().SolveWithRule(p, rule)
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is the dense simplex tableau. Columns are laid out as
// [0, nVars) original variables, [nVars, nVars+nSlack) slack/surplus
// variables, [artStart, nCols) artificial variables; rhs is stored
// separately. rows[r] has length nCols and points into the flat arena.
// basis[r] is the column basic in row r. obj is the current reduced-cost
// row (length nCols) and objRHS the current objective value.
//
// All backing arrays are owned by the tableau and recycled by reset, so
// a long-lived Workspace reaches a steady state with no per-solve
// allocation.
type tableau struct {
	nVars    int
	nSlack   int
	artStart int
	nCols    int

	arena  []float64 // m rows of stride nCols; rows[r] points into it
	rows   [][]float64
	rhs    []float64
	basis  []int
	inBase []bool // per column: whether it is basic in some row
	obj    []float64
	objRHS float64

	costBuf    []float64 // scratch cost vector for the phase objectives
	supportBuf []int32   // scratch nonzero-column list of the pivot row

	needPhase1 bool
	inPhase2   bool
}

// reset sizes the tableau for a problem with nVars variables, m rows,
// nSlack slacks and nArt artificials, reusing every backing array whose
// capacity suffices. Row contents are garbage after reset; buildTableau
// overwrites them completely.
func (t *tableau) reset(nVars, m, nSlack, nArt int) {
	t.nVars = nVars
	t.nSlack = nSlack
	t.artStart = nVars + nSlack
	t.nCols = t.artStart + nArt
	t.needPhase1 = nArt > 0
	t.inPhase2 = false
	t.objRHS = 0
	t.arena = growFloats(t.arena, m*t.nCols)
	t.rows = growRowHdrs(t.rows, m)
	for r := 0; r < m; r++ {
		t.rows[r] = t.arena[r*t.nCols : (r+1)*t.nCols]
	}
	t.rhs = growFloats(t.rhs, m)
	t.basis = growInts(t.basis, m)
	t.inBase = growBools(t.inBase, t.nCols)
	clear(t.inBase)
	t.obj = growFloats(t.obj, t.nCols)
	t.costBuf = growFloats(t.costBuf, t.nCols)
	if cap(t.supportBuf) < t.nCols {
		t.supportBuf = make([]int32, 0, t.nCols)
	}
}

// setPhase1Objective installs "maximise −Σ artificials" as the reduced-cost
// row, priced out against the current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	costs := t.costBuf
	clear(costs)
	for j := t.artStart; j < t.nCols; j++ {
		costs[j] = -1
	}
	t.priceOut(costs)
	t.inPhase2 = false
}

// setPhase2Objective installs the real objective, priced out against the
// current basis. Artificial columns are barred from entering by forcing
// their reduced costs to a large negative value.
func (t *tableau) setPhase2Objective(obj []float64, minimize bool) {
	costs := t.costBuf
	clear(costs)
	for j := 0; j < t.nVars; j++ {
		if minimize {
			costs[j] = -obj[j]
		} else {
			costs[j] = obj[j]
		}
	}
	t.priceOut(costs)
	t.inPhase2 = true
}

// priceOut sets obj[j] = costs[j] − Σ_r costs[basis[r]]·rows[r][j] and
// objRHS = Σ_r costs[basis[r]]·rhs[r].
func (t *tableau) priceOut(costs []float64) {
	copy(t.obj, costs)
	t.objRHS = 0
	for r, b := range t.basis {
		cb := costs[b]
		if cb == 0 {
			continue
		}
		row := t.rows[r]
		for j := range t.obj {
			t.obj[j] -= cb * row[j]
		}
		t.objRHS += cb * t.rhs[r]
	}
}

func (t *tableau) objValue() float64 { return t.objRHS }

// iterate runs primal simplex pivots until optimality or unboundedness.
func (t *tableau) iterate(rule PivotRule, pivots *int) error {
	budget := dantzigBudget(len(t.rows), t.nCols)
	useBland := rule == BlandOnly
	for iter := 0; ; iter++ {
		if iter > budget && !useBland {
			useBland = true // anti-cycling fallback
		}
		if iter > 16*budget+10000 {
			return fmt.Errorf("%w: pivot limit exceeded", ErrNumerical)
		}
		enter := t.chooseEntering(useBland)
		if enter < 0 {
			return nil // optimal
		}
		leave := t.chooseLeaving(enter, useBland)
		if leave < 0 {
			if !t.inPhase2 {
				// Phase-1 objective is bounded by construction; an unbounded
				// ray here means round-off corrupted the tableau.
				return fmt.Errorf("%w: unbounded phase-1 ray", ErrNumerical)
			}
			return errUnbounded
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

func dantzigBudget(m, n int) int { return 50 * (m + n + 10) }

func (t *tableau) chooseEntering(bland bool) int {
	limit := t.nCols
	if t.inPhase2 {
		limit = t.artStart // artificials may not re-enter in phase 2
	}
	if bland {
		for j := 0; j < limit; j++ {
			if t.obj[j] > epsReduced && !t.isBasic(j) {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, epsReduced
	for j := 0; j < limit; j++ {
		if t.obj[j] > bestVal && !t.isBasic(j) {
			best, bestVal = j, t.obj[j]
		}
	}
	return best
}

// isBasic reports whether column j is basic, from the maintained
// membership mask (the historical linear scan over basis, made O(1);
// the answers — and hence the pivot sequence — are unchanged).
func (t *tableau) isBasic(j int) bool { return t.inBase[j] }

func (t *tableau) chooseLeaving(enter int, bland bool) int {
	best := -1
	var bestRatio float64
	for r := range t.rows {
		a := t.rows[r][enter]
		if a <= epsPivot {
			continue
		}
		ratio := t.rhs[r] / a
		switch {
		case best < 0, ratio < bestRatio-epsPivot:
			best, bestRatio = r, ratio
		case ratio < bestRatio+epsPivot:
			// Tie: Bland breaks by smallest basic index; Dantzig by largest
			// pivot element for stability.
			if bland {
				if t.basis[r] < t.basis[best] {
					best, bestRatio = r, ratio
				}
			} else if a > t.rows[best][enter] {
				best, bestRatio = r, ratio
			}
		}
	}
	return best
}

func (t *tableau) pivot(r, enter int) {
	row := t.rows[r]
	inv := 1 / row[enter]
	for j := range row {
		row[j] *= inv
	}
	row[enter] = 1 // exact
	t.rhs[r] *= inv
	// Eliminate only over the pivot row's nonzero columns. Zeros in the
	// tableau are exactly +0.0 (buildTableau normalises the sign, and
	// x − y = −0.0 only when x is already −0.0), so for a skipped column
	// the historical update was other[j] −= f·(+0.0), which leaves
	// other[j] bit-identical — the elimination result is exactly the
	// dense loop's, at the cost of the row's support instead of nCols.
	support := t.supportBuf[:0]
	for j, v := range row {
		if v != 0 {
			support = append(support, int32(j))
		}
	}
	t.supportBuf = support
	// Indirect gathers cost ~2× a contiguous sweep per element, so once
	// fill-in makes the pivot row dense the full loop is faster; it is
	// equally exact (it only adds the other[j] −= f·(+0.0) no-ops the
	// support loop skips).
	dense := 2*len(support) > t.nCols
	for rr := range t.rows {
		if rr == r {
			continue
		}
		other := t.rows[rr]
		f := other[enter]
		if f == 0 {
			continue
		}
		if dense {
			for j := range other {
				other[j] -= f * row[j]
			}
		} else {
			for _, j := range support {
				other[j] -= f * row[j]
			}
		}
		other[enter] = 0 // exact
		t.rhs[rr] -= f * t.rhs[r]
		if t.rhs[rr] < 0 && t.rhs[rr] > -epsPivot {
			t.rhs[rr] = 0
		}
	}
	f := t.obj[enter]
	if f != 0 {
		if dense {
			for j := range t.obj {
				t.obj[j] -= f * row[j]
			}
		} else {
			for _, j := range support {
				t.obj[j] -= f * row[j]
			}
		}
		t.obj[enter] = 0
		t.objRHS += f * t.rhs[r]
	}
	t.inBase[t.basis[r]] = false
	t.inBase[enter] = true
	t.basis[r] = enter
}

// expelArtificials pivots basic artificial variables (at value 0 after a
// successful phase 1) out of the basis, or drops redundant rows.
func (t *tableau) expelArtificials() error {
	for r := 0; r < len(t.rows); r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		// Find any real column with a usable pivot in this row.
		found := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[r][j]) > epsPivot {
				found = j
				break
			}
		}
		if found >= 0 {
			t.pivot(r, found)
			continue
		}
		// Row is redundant: remove it (its basic artificial leaves too).
		t.inBase[t.basis[r]] = false
		last := len(t.rows) - 1
		t.rows[r], t.rows[last] = t.rows[last], t.rows[r]
		t.rhs[r], t.rhs[last] = t.rhs[last], t.rhs[r]
		t.basis[r], t.basis[last] = t.basis[last], t.basis[r]
		t.rows = t.rows[:last]
		t.rhs = t.rhs[:last]
		t.basis = t.basis[:last]
		r--
	}
	return nil
}
