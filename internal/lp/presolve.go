package lp

// This file is the exact, reversible presolve layer over Problem: a
// fixpoint of cheap reductions that shrink an LP before the simplex
// sees it, plus the postsolve map that reconstructs the full primal and
// dual solution of the original problem from the reduced one.
//
// Every reduction is *verdict-exact*: the reduced problem is feasible/
// unbounded/optimal exactly when the original is, decided with exact
// float64 comparisons (no tolerances), so presolve can never flip a
// verdict the unreduced solver would reach in exact arithmetic. The
// per-reduction value guarantees are documented on each rule below;
// where a reconstruction involves arithmetic (the fixed-variable
// substitution), the residual is one rounding error per operation and
// postsolve certificate-checks it against the originating row's working
// rhs — the rhs as it stood when the fix fired, with earlier
// substitutions folded in.
//
// The reductions (Andersen & Andersen 1995 restricted to the subset
// whose inverses are exactly representable):
//
//   - zero rows: a row with no nonzero over the active columns either
//     holds vacuously (LE rhs ≥ 0, GE rhs ≤ 0, EQ rhs == 0 — dropped,
//     dual 0) or can never hold (Infeasible). Exact: the verdict is a
//     sign test on the rhs.
//   - row singletons: a row a·x_j (rel) rhs with one nonzero. An EQ
//     singleton fixes x_j = rhs/a (negative fix ⇒ Infeasible) and is
//     substituted out of the remaining rows and the objective; the fix
//     costs one division and each substitution one multiply-subtract,
//     the only inexact arithmetic in the pass. LE with a > 0, rhs == 0
//     (and GE with a < 0, rhs == 0) force x_j = 0 exactly; LE with
//     a > 0, rhs < 0 (and GE with a < 0, rhs > 0) are Infeasible; the
//     vacuous sign combinations are dropped with dual 0. Singleton rows
//     that merely bound x_j away from {0} are kept — eliminating them
//     would require bound tracking the simplex front-end does not have.
//   - empty columns: a variable in no kept row is fixed to 0 when its
//     objective coefficient pushes it down (or is 0); when it pushes
//     up, the problem is unbounded as soon as it is feasible (the
//     verdict is deferred until feasibility of the rest is known).
//   - duplicate / parallel rows: two kept rows with bitwise-identical
//     coefficient vectors over the active columns. Equal-rel LE pairs
//     keep the smaller rhs, GE pairs the larger (the looser row can
//     never bind strictly before the tighter one, so its dual is 0);
//     EQ pairs with equal rhs keep one, with different rhs are
//     Infeasible. The bitwise guard makes the comparison exact: no
//     tolerance can merge rows the simplex would treat as distinct.
//
// Dual reconstruction (Postsolve): rows dropped as redundant get
// multiplier 0, which preserves dual feasibility (a zero multiplier
// contributes nothing to any reduced cost) and the dual objective (the
// dropped row is slack, or its binding twin carries the weight). An
// eliminated EQ singleton row gets y = (c_j − Σ_i y_i a_ij)/a — the
// unique multiplier restoring the dual equality of its column j — and a
// forced-zero singleton row gets max(0, (c_j − Σ_i y_i a_ij)/a), the
// smallest feasible multiplier (its rhs is 0, so any choice preserves
// the dual objective). Because eliminated rows are singletons, they
// touch no other column's dual constraint, so the reconstruction is
// order-independent across columns and exact in the same sense as the
// substitution. Records are undone in reverse order, so every sum runs
// over exactly the rows present when the reduction fired.

import (
	"fmt"
	"math"
)

// presolveRecord is one applied reduction, undone in reverse by
// Postsolve.
type presolveRecord struct {
	kind int8
	row  int     // original row index (dropRow, substEQ, forcedZero)
	col  int     // original column index (fixVar, substEQ, forcedZero)
	a    float64 // row coefficient at col (substEQ, forcedZero)
	val  float64 // fixed value of col (fixVar, substEQ)
	rhs  float64 // working rhs the fix was derived from (substEQ)
}

const (
	recDropRow    int8 = iota // redundant row: dual 0
	recFixVar                 // empty column fixed at 0
	recSubstEQ                // EQ singleton: x_col = val, row eliminated
	recForcedZero             // singleton forcing x_col = 0, row eliminated
)

// Presolved is the output of PresolveProblem: the reduced problem (nil
// when the presolve decided the verdict outright) plus the reversible
// recipe Postsolve uses to reconstruct the original solution. The
// original Problem is retained by reference and must not be mutated
// until the Presolved (and any Solution its Postsolve produced) is
// dropped.
type Presolved struct {
	// Reduced is the problem to hand to any solver, or nil when Decided
	// reports the verdict without a solve.
	Reduced *Problem

	orig     *Problem
	records  []presolveRecord
	rowKept  []bool // final kept mask over original rows
	rowMap   []int  // original row -> reduced row (kept rows only)
	colMap   []int  // original col -> reduced col, -1 when fixed
	fixedVal []float64
	rhs      []float64 // working rhs after substitutions
	objConst float64

	// unboundedIfFeasible records an empty column whose objective
	// coefficient improves without bound; the final verdict is Unbounded
	// unless the rest of the problem is Infeasible.
	unboundedIfFeasible bool
	status              Status
	decided             bool
}

// RowsDropped reports how many original rows the pass eliminated.
func (ps *Presolved) RowsDropped() int {
	n := 0
	for _, k := range ps.rowKept {
		if !k {
			n++
		}
	}
	return n
}

// ColsFixed reports how many variables the pass fixed.
func (ps *Presolved) ColsFixed() int {
	n := 0
	for _, c := range ps.colMap {
		if c < 0 {
			n++
		}
	}
	return n
}

// Decided reports a verdict the presolve reached without any solve:
// Infeasible, Unbounded, or — when every row and column was eliminated
// — the complete Optimal solution. ok is false when a reduced problem
// remains to be solved.
func (ps *Presolved) Decided() (Solution, bool) {
	if !ps.decided {
		return Solution{}, false
	}
	sol := Solution{Status: ps.status}
	if ps.status == Optimal {
		sol.X = append([]float64(nil), ps.fixedVal...)
		sol.Value = ps.objConst
		sol.dualFn = ps.dualReconstructor(nil)
	}
	return sol, true
}

// PresolveProblem runs the reduction fixpoint on p. It never modifies
// p; the working copies live in the returned Presolved.
func PresolveProblem(p *Problem) (*Presolved, error) {
	n := len(p.Obj)
	m := len(p.Constraints)
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return nil, fmt.Errorf("lp: constraint %d has non-finite rhs %v", i, c.RHS)
		}
	}
	ps := &Presolved{
		orig:     p,
		rowKept:  make([]bool, m),
		colMap:   make([]int, n),
		fixedVal: make([]float64, n),
		rhs:      make([]float64, m),
	}
	active := make([]bool, n)
	for j := range active {
		active[j] = true
	}
	for i := range ps.rowKept {
		ps.rowKept[i] = true
		ps.rhs[i] = p.Constraints[i].RHS
	}
	cmax := func(j int) float64 {
		if p.Minimize {
			return -p.Obj[j]
		}
		return p.Obj[j]
	}

	infeasible := func() (*Presolved, error) {
		ps.decided, ps.status = true, Infeasible
		return ps, nil
	}
	dropRow := func(i int) {
		ps.records = append(ps.records, presolveRecord{kind: recDropRow, row: i})
		ps.rowKept[i] = false
	}

	for changed := true; changed; {
		changed = false

		// Zero rows and row singletons over the active columns.
		for i := 0; i < m; i++ {
			if !ps.rowKept[i] {
				continue
			}
			row := p.Constraints[i].Coeffs
			nz, lastJ := 0, -1
			for j := 0; j < n && nz < 2; j++ {
				if active[j] && row[j] != 0 {
					nz++
					lastJ = j
				}
			}
			rel, rhs := p.Constraints[i].Rel, ps.rhs[i]
			switch nz {
			case 0:
				redundant := (rel == LE && rhs >= 0) || (rel == GE && rhs <= 0) || (rel == EQ && rhs == 0)
				if !redundant {
					return infeasible()
				}
				dropRow(i)
				changed = true
			case 1:
				j, a := lastJ, row[lastJ]
				switch rel {
				case EQ:
					val := rhs / a
					if math.IsInf(val, 0) || math.IsNaN(val) {
						continue // degenerate scaling; leave for the simplex
					}
					if val < 0 {
						return infeasible()
					}
					ps.records = append(ps.records, presolveRecord{kind: recSubstEQ, row: i, col: j, a: a, val: val, rhs: rhs})
					ps.rowKept[i], active[j] = false, false
					ps.fixedVal[j] = val
					ps.objConst += p.Obj[j] * val
					for i2 := 0; i2 < m; i2++ {
						if i2 != i && ps.rowKept[i2] {
							if b := p.Constraints[i2].Coeffs[j]; b != 0 {
								ps.rhs[i2] -= b * val
							}
						}
					}
					changed = true
				case LE:
					switch {
					case a > 0 && rhs == 0:
						ps.records = append(ps.records, presolveRecord{kind: recForcedZero, row: i, col: j, a: a})
						ps.rowKept[i], active[j] = false, false
						changed = true
					case a > 0 && rhs < 0:
						return infeasible()
					case a < 0 && rhs >= 0:
						dropRow(i) // −|a|·x_j ≤ rhs holds for every x_j ≥ 0
						changed = true
					}
				case GE:
					switch {
					case a < 0 && rhs == 0:
						ps.records = append(ps.records, presolveRecord{kind: recForcedZero, row: i, col: j, a: a})
						ps.rowKept[i], active[j] = false, false
						changed = true
					case a < 0 && rhs > 0:
						return infeasible()
					case a > 0 && rhs <= 0:
						dropRow(i) // |a|·x_j ≥ rhs holds for every x_j ≥ 0
						changed = true
					}
				}
			}
		}

		// Empty columns.
		for j := 0; j < n; j++ {
			if !active[j] {
				continue
			}
			used := false
			for i := 0; i < m && !used; i++ {
				used = ps.rowKept[i] && p.Constraints[i].Coeffs[j] != 0
			}
			if used {
				continue
			}
			if cmax(j) > 0 {
				ps.unboundedIfFeasible = true
			}
			ps.records = append(ps.records, presolveRecord{kind: recFixVar, col: j})
			active[j] = false
			changed = true
		}

		// Duplicate / parallel rows (bitwise-equal active coefficients).
		for i := 0; i < m; i++ {
			if !ps.rowKept[i] {
				continue
			}
			for i2 := i + 1; i2 < m; i2++ {
				if !ps.rowKept[i2] || p.Constraints[i].Rel != p.Constraints[i2].Rel {
					continue
				}
				ca, cb := p.Constraints[i].Coeffs, p.Constraints[i2].Coeffs
				same := true
				for j := 0; j < n; j++ {
					if active[j] && math.Float64bits(ca[j]) != math.Float64bits(cb[j]) {
						same = false
						break
					}
				}
				if !same {
					continue
				}
				ra, rb := ps.rhs[i], ps.rhs[i2]
				switch p.Constraints[i].Rel {
				case LE:
					if rb >= ra {
						dropRow(i2)
					} else {
						dropRow(i)
					}
				case GE:
					if rb <= ra {
						dropRow(i2)
					} else {
						dropRow(i)
					}
				case EQ:
					if ra != rb {
						return infeasible()
					}
					dropRow(i2)
				}
				changed = true
				if !ps.rowKept[i] {
					break
				}
			}
		}
	}

	// Assemble the reduced problem, or decide outright when nothing is
	// left to solve.
	ps.rowMap = make([]int, m)
	keptRows, keptCols := 0, 0
	for j := 0; j < n; j++ {
		if active[j] {
			ps.colMap[j] = keptCols
			keptCols++
		} else {
			ps.colMap[j] = -1
		}
	}
	for i := 0; i < m; i++ {
		if ps.rowKept[i] {
			ps.rowMap[i] = keptRows
			keptRows++
		} else {
			ps.rowMap[i] = -1
		}
	}
	if keptRows == 0 && keptCols == 0 {
		ps.decided = true
		if ps.unboundedIfFeasible {
			ps.status = Unbounded
		} else {
			ps.status = Optimal
		}
		return ps, nil
	}
	red := &Problem{
		Minimize: p.Minimize,
		Obj:      make([]float64, keptCols),
	}
	for j := 0; j < n; j++ {
		if c := ps.colMap[j]; c >= 0 {
			red.Obj[c] = p.Obj[j]
		}
	}
	red.Constraints = make([]Constraint, 0, keptRows)
	for i := 0; i < m; i++ {
		if !ps.rowKept[i] {
			continue
		}
		coeffs := make([]float64, keptCols)
		for j, v := range p.Constraints[i].Coeffs {
			if c := ps.colMap[j]; c >= 0 {
				coeffs[c] = v
			}
		}
		red.Constraints = append(red.Constraints, Constraint{
			Coeffs: coeffs,
			Rel:    p.Constraints[i].Rel,
			RHS:    ps.rhs[i],
		})
	}
	ps.Reduced = red
	return ps, nil
}

// Postsolve maps a Solution of the Reduced problem back to a Solution
// of the original: the primal is scattered over the fixed variables,
// the objective constant restored, and the duals of eliminated rows
// reconstructed lazily (the returned Solution's Duals calls the inner
// Solution's Duals first, so a stale workspace read panics exactly as
// it would unpresolved). Non-Optimal statuses pass through unchanged —
// every reduction preserves feasibility and boundedness exactly — with
// the one deferred case: an unbounded empty column turns a feasible
// reduced problem into an Unbounded original.
func (ps *Presolved) Postsolve(sol Solution) Solution {
	if ps.decided {
		s, _ := ps.Decided()
		return s
	}
	if sol.Status != Optimal {
		return Solution{Status: sol.Status, Pivots: sol.Pivots}
	}
	if ps.unboundedIfFeasible {
		return Solution{Status: Unbounded, Pivots: sol.Pivots}
	}
	n := len(ps.orig.Obj)
	out := Solution{
		Status: Optimal,
		X:      make([]float64, n),
		Value:  sol.Value,
		Pivots: sol.Pivots,
	}
	// Adding a zero constant would still flip −0.0 to +0.0; skip it so a
	// pass with no substitutions is bit-transparent.
	if ps.objConst != 0 {
		out.Value += ps.objConst
	}
	for j := 0; j < n; j++ {
		if c := ps.colMap[j]; c >= 0 {
			out.X[j] = sol.X[c]
		} else {
			out.X[j] = ps.fixedVal[j]
		}
	}
	// Certificate check of the substitution residuals: each fixed value
	// must still satisfy its originating singleton row's *working* rhs —
	// the rhs as it stood when the fix fired, recorded on the record,
	// with earlier substitutions already folded in. (The original row
	// RHS is the wrong reference: a chained elimination like x0 = 2 then
	// x0 + x1 = 5 fixes x1 against the reduced rhs 3, not 5.) The fix
	// was computed as rhs/a, so the residual a·(rhs/a) − rhs is at most
	// one ulp of rhs; anything larger means the recipe no longer matches
	// the problem it was derived from.
	for _, r := range ps.records {
		if r.kind != recSubstEQ {
			continue
		}
		resid := r.a*r.val - r.rhs
		if !(math.Abs(resid) <= 4*math.Abs(r.rhs)*1e-15) && resid != 0 {
			panic(fmt.Sprintf("lp: presolve substitution residual %g on row %d", resid, r.row))
		}
	}
	inner := sol
	out.dualFn = ps.dualReconstructor(func() []float64 { return inner.Duals() })
	return out
}

// dualReconstructor returns the lazy dual extractor for the original
// problem: innerDuals (nil when the presolve decided everything) yields
// the reduced problem's multipliers, and the records are undone in
// reverse, assigning each eliminated row the multiplier documented in
// the file comment. Sums run over the original coefficients of exactly
// the rows present when the reduction fired — rows restored by later
// undos included, rows dropped earlier excluded.
func (ps *Presolved) dualReconstructor(innerDuals func() []float64) func() []float64 {
	return func() []float64 {
		p := ps.orig
		m := len(p.Constraints)
		ymax := make([]float64, m)
		present := make([]bool, m)
		if innerDuals != nil {
			in := innerDuals()
			for i := 0; i < m; i++ {
				if ps.rowKept[i] {
					v := in[ps.rowMap[i]]
					if p.Minimize {
						v = -v
					}
					ymax[i] = v
					present[i] = true
				}
			}
		}
		cmax := func(j int) float64 {
			if p.Minimize {
				return -p.Obj[j]
			}
			return p.Obj[j]
		}
		colSum := func(j int) float64 {
			s := 0.0
			for i := 0; i < m; i++ {
				if present[i] {
					if a := p.Constraints[i].Coeffs[j]; a != 0 {
						s += ymax[i] * a
					}
				}
			}
			return s
		}
		for r := len(ps.records) - 1; r >= 0; r-- {
			rec := ps.records[r]
			switch rec.kind {
			case recDropRow:
				present[rec.row] = true // ymax stays 0
			case recSubstEQ:
				ymax[rec.row] = (cmax(rec.col) - colSum(rec.col)) / rec.a
				present[rec.row] = true
			case recForcedZero:
				// The smallest multiplier keeping column rec.col dual-
				// feasible, clamped to the row's sign constraint: ≥ 0 for
				// the LE form (a > 0), ≤ 0 for the GE form (a < 0).
				v := (cmax(rec.col) - colSum(rec.col)) / rec.a
				if rec.a > 0 && v < 0 {
					v = 0
				} else if rec.a < 0 && v > 0 {
					v = 0
				}
				ymax[rec.row] = v
				present[rec.row] = true
			}
		}
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			v := ymax[i]
			if p.Minimize {
				v = -v
			}
			if v == 0 {
				v = 0 // normalise −0.0
			}
			y[i] = v
		}
		return y
	}
}

// SolvePresolved presolves p, solves the reduced problem with the
// default dense simplex, and postsolves — the one-call entry point the
// differential tests exercise against the unreduced Solve.
func SolvePresolved(p *Problem) (Solution, error) {
	ps, err := PresolveProblem(p)
	if err != nil {
		return Solution{}, err
	}
	if sol, ok := ps.Decided(); ok {
		return sol, nil
	}
	sol, err := Solve(ps.Reduced)
	if err != nil {
		return Solution{}, err
	}
	return ps.Postsolve(sol), nil
}
