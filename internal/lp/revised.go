package lp

import (
	"fmt"
	"math"
)

// SolveRevised solves the problem with the revised simplex method:
// instead of carrying the full dense tableau (O(m·n) updated per pivot),
// it maintains the basis inverse B⁻¹ (m×m) and works with the sparse
// original columns. Pricing is O(Σ nnz) and a pivot is O(m²), which on
// the sparse max-min LPs of this library (a handful of nonzeros per
// column) is far cheaper than the dense tableau once instances grow —
// see BenchmarkLPBackends.
//
// Semantics match Solve exactly: nonnegative variables, LE/GE/EQ rows,
// two phases, Dantzig pricing with a Bland anti-cycling fallback. The
// optimal basis is re-verified against the original constraints before
// returning; accumulated round-off beyond tolerance yields ErrNumerical.
func SolveRevised(p *Problem) (Solution, error) {
	sp, err := denseToSparse(p)
	if err != nil {
		return Solution{}, err
	}
	return SolveRevisedSparse(sp)
}

// SparseEntry is one nonzero of a sparse column.
type SparseEntry struct {
	Row int
	Val float64
}

// SparseProblem is a column-oriented LP over nonnegative variables, the
// native input of the revised simplex. Cols[j] lists the nonzeros of
// variable j; Rels and RHS describe the rows. Building a SparseProblem
// directly avoids the O(rows·vars) dense row materialisation of Problem,
// which dominates memory for large max-min LPs (a torus instance has ≤ 6
// nonzeros per column regardless of size).
type SparseProblem struct {
	Minimize bool
	Obj      []float64
	Cols     [][]SparseEntry
	Rels     []Rel
	RHS      []float64
}

func denseToSparse(p *Problem) (*SparseProblem, error) {
	n := len(p.Obj)
	m := len(p.Constraints)
	sp := &SparseProblem{
		Minimize: p.Minimize,
		Obj:      p.Obj,
		Cols:     make([][]SparseEntry, n),
		Rels:     make([]Rel, m),
		RHS:      make([]float64, m),
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
		sp.Rels[i] = c.Rel
		sp.RHS[i] = c.RHS
		for j, a := range c.Coeffs {
			if a != 0 {
				sp.Cols[j] = append(sp.Cols[j], SparseEntry{Row: i, Val: a})
			}
		}
	}
	return sp, nil
}

// SolveRevisedSparse solves a column-oriented LP with the revised simplex.
func SolveRevisedSparse(p *SparseProblem) (Solution, error) {
	r, err := newRevised(p)
	if err != nil {
		return Solution{}, err
	}
	// Exact zero-row verdicts, mirroring the dense solver: a row no
	// structural column touches is Infeasible when its rhs sign can
	// never be satisfied by an empty sum (LE rhs < 0, GE rhs > 0, EQ
	// rhs ≠ 0). The phase-1 tolerance would otherwise accept rhs within
	// epsPhase1 and leave a negative basic slack in the final basis.
	rowUsed := make([]bool, r.m)
	for j := 0; j < r.nVars; j++ {
		for _, row := range r.cols[j].rows {
			rowUsed[row] = true
		}
	}
	for i, used := range rowUsed {
		if used {
			continue
		}
		rhs := p.RHS[i]
		if (p.Rels[i] == LE && rhs < 0) || (p.Rels[i] == GE && rhs > 0) || (p.Rels[i] == EQ && rhs != 0) {
			return Solution{Status: Infeasible}, nil
		}
	}
	sol := Solution{}
	if r.needPhase1 {
		r.setPhase1()
		if err := r.iterate(&sol.Pivots); err != nil {
			return Solution{}, err
		}
		if r.objective() < -epsPhase1 {
			sol.Status = Infeasible
			return sol, nil
		}
	}
	r.setPhase2()
	if err := r.iterate(&sol.Pivots); err != nil {
		if err == errUnbounded {
			sol.Status = Unbounded
			return sol, nil
		}
		return Solution{}, err
	}
	x := r.primal()
	if err := r.verify(x); err != nil {
		return Solution{}, err
	}
	sol.Status = Optimal
	sol.X = x
	sol.Value = r.objective()
	if p.Minimize {
		sol.Value = -sol.Value
	}
	sol.dualFn = r.duals // lazily extracted; r stays alive until then
	return sol, nil
}

// sparseCol is one column of the constraint matrix in (row, value) form.
type sparseCol struct {
	rows []int32
	vals []float64
}

type revised struct {
	p        *SparseProblem
	m        int // rows
	nVars    int // structural variables
	nCols    int // structural + slack + artificial
	artStart int

	cols []sparseCol // all columns, sparse
	b    []float64   // normalised rhs (≥ 0)

	cost   []float64 // current phase's objective (maximisation form)
	basis  []int     // basis[r] = column basic in row r
	inBase []bool
	binv   [][]float64 // B⁻¹, m×m
	xb     []float64   // current basic solution values

	flip     []bool // row sign-flipped during normalisation
	slackCol []int  // slack column per original row, -1 for EQ
	slackNeg []bool

	needPhase1 bool
	inPhase2   bool
}

func newRevised(p *SparseProblem) (*revised, error) {
	n := len(p.Obj)
	if len(p.Cols) != n {
		return nil, fmt.Errorf("lp: %d columns for %d variables", len(p.Cols), n)
	}
	if len(p.Rels) != len(p.RHS) {
		return nil, fmt.Errorf("lp: %d relations for %d right-hand sides", len(p.Rels), len(p.RHS))
	}
	m := len(p.RHS)
	r := &revised{
		p: p, m: m, nVars: n,
		b:        make([]float64, m),
		basis:    make([]int, m),
		xb:       make([]float64, m),
		flip:     make([]bool, m),
		slackCol: make([]int, m),
		slackNeg: make([]bool, m),
	}
	nSlack, nArt := 0, 0
	rels := make([]Rel, m)
	for i, rhs := range p.RHS {
		if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
			return nil, fmt.Errorf("lp: constraint %d has non-finite rhs %v", i, rhs)
		}
		rel := p.Rels[i]
		if rhs < 0 {
			r.flip[i] = true
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rels[i] = rel
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	r.artStart = n + nSlack
	r.nCols = n + nSlack + nArt
	r.cols = make([]sparseCol, r.nCols)
	r.inBase = make([]bool, r.nCols)

	// Structural columns.
	for i, rhs := range p.RHS {
		sign := 1.0
		if r.flip[i] {
			sign = -1
		}
		r.b[i] = sign * rhs
	}
	for j, col := range p.Cols {
		for _, e := range col {
			if e.Row < 0 || e.Row >= m {
				return nil, fmt.Errorf("lp: column %d references row %d out of range", j, e.Row)
			}
			if e.Val == 0 {
				continue
			}
			a := e.Val
			if r.flip[e.Row] {
				a = -a
			}
			r.cols[j].rows = append(r.cols[j].rows, int32(e.Row))
			r.cols[j].vals = append(r.cols[j].vals, a)
		}
	}
	// Slack and artificial columns; initial basis.
	slack, art := n, r.artStart
	for i := range p.RHS {
		r.slackCol[i] = -1
		switch rels[i] {
		case LE:
			r.cols[slack] = sparseCol{rows: []int32{int32(i)}, vals: []float64{1}}
			r.basis[i] = slack
			r.slackCol[i] = slack
			slack++
		case GE:
			r.cols[slack] = sparseCol{rows: []int32{int32(i)}, vals: []float64{-1}}
			r.slackCol[i] = slack
			r.slackNeg[i] = true
			slack++
			r.cols[art] = sparseCol{rows: []int32{int32(i)}, vals: []float64{1}}
			r.basis[i] = art
			art++
			r.needPhase1 = true
		case EQ:
			r.cols[art] = sparseCol{rows: []int32{int32(i)}, vals: []float64{1}}
			r.basis[i] = art
			art++
			r.needPhase1 = true
		}
	}
	for _, bcol := range r.basis {
		r.inBase[bcol] = true
	}
	// Initial basis is the identity (unit slack/artificial columns).
	r.binv = make([][]float64, m)
	for i := range r.binv {
		r.binv[i] = make([]float64, m)
		r.binv[i][i] = 1
	}
	copy(r.xb, r.b)
	return r, nil
}

func (r *revised) setPhase1() {
	r.cost = make([]float64, r.nCols)
	for j := r.artStart; j < r.nCols; j++ {
		r.cost[j] = -1
	}
	r.inPhase2 = false
}

func (r *revised) setPhase2() {
	r.cost = make([]float64, r.nCols)
	for j := 0; j < r.nVars; j++ {
		if r.p.Minimize {
			r.cost[j] = -r.p.Obj[j]
		} else {
			r.cost[j] = r.p.Obj[j]
		}
	}
	r.inPhase2 = true
}

func (r *revised) objective() float64 {
	var z float64
	for row, bcol := range r.basis {
		z += r.cost[bcol] * r.xb[row]
	}
	return z
}

// simplexMultipliers computes y = c_B · B⁻¹.
func (r *revised) simplexMultipliers() []float64 {
	y := make([]float64, r.m)
	for row, bcol := range r.basis {
		cb := r.cost[bcol]
		if cb == 0 {
			continue
		}
		binvRow := r.binv[row]
		for col := 0; col < r.m; col++ {
			y[col] += cb * binvRow[col]
		}
	}
	return y
}

func (r *revised) reducedCost(j int, y []float64) float64 {
	rc := r.cost[j]
	col := &r.cols[j]
	for k, row := range col.rows {
		rc -= y[row] * col.vals[k]
	}
	return rc
}

// direction computes d = B⁻¹ · A_j.
func (r *revised) direction(j int) []float64 {
	d := make([]float64, r.m)
	col := &r.cols[j]
	for k, row := range col.rows {
		a := col.vals[k]
		for i := 0; i < r.m; i++ {
			d[i] += r.binv[i][row] * a
		}
	}
	return d
}

func (r *revised) iterate(pivots *int) error {
	budget := dantzigBudget(r.m, r.nCols)
	useBland := false
	for iter := 0; ; iter++ {
		if iter > budget {
			useBland = true
		}
		if iter > 16*budget+10000 {
			return fmt.Errorf("%w: revised pivot limit exceeded", ErrNumerical)
		}
		y := r.simplexMultipliers()
		limit := r.nCols
		if r.inPhase2 {
			limit = r.artStart
		}
		enter := -1
		bestRC := epsReduced
		for j := 0; j < limit; j++ {
			if r.inBase[j] {
				continue
			}
			rc := r.reducedCost(j, y)
			if rc > epsReduced {
				if useBland {
					enter = j
					break
				}
				if rc > bestRC {
					enter, bestRC = j, rc
				}
			}
		}
		if enter < 0 {
			return nil
		}
		d := r.direction(enter)
		leave := r.chooseLeaving(d, useBland)
		if leave < 0 {
			if !r.inPhase2 {
				return fmt.Errorf("%w: unbounded phase-1 ray", ErrNumerical)
			}
			return errUnbounded
		}
		r.pivot(leave, enter, d)
		*pivots++
	}
}

func (r *revised) chooseLeaving(d []float64, bland bool) int {
	// In phase 2, a basic artificial moving away from zero would silently
	// violate its original constraint; force it out first.
	if r.inPhase2 {
		for row, bcol := range r.basis {
			if bcol >= r.artStart && math.Abs(d[row]) > epsPivot {
				return row
			}
		}
	}
	best := -1
	var bestRatio float64
	for row := 0; row < r.m; row++ {
		if d[row] <= epsPivot {
			continue
		}
		ratio := r.xb[row] / d[row]
		switch {
		case best < 0, ratio < bestRatio-epsPivot:
			best, bestRatio = row, ratio
		case ratio < bestRatio+epsPivot:
			if bland {
				if r.basis[row] < r.basis[best] {
					best, bestRatio = row, ratio
				}
			} else if d[row] > d[best] {
				best, bestRatio = row, ratio
			}
		}
	}
	return best
}

// pivot brings column enter into the basis at row leave, updating B⁻¹ by
// the product-form elimination and xb incrementally.
func (r *revised) pivot(leave, enter int, d []float64) {
	pivotVal := d[leave]
	theta := r.xb[leave] / pivotVal

	binvLeave := r.binv[leave]
	inv := 1 / pivotVal
	for col := 0; col < r.m; col++ {
		binvLeave[col] *= inv
	}
	for row := 0; row < r.m; row++ {
		if row == leave {
			continue
		}
		f := d[row]
		if f == 0 {
			continue
		}
		binvRow := r.binv[row]
		for col := 0; col < r.m; col++ {
			binvRow[col] -= f * binvLeave[col]
		}
		r.xb[row] -= f * theta
		if r.xb[row] < 0 && r.xb[row] > -epsPivot {
			r.xb[row] = 0
		}
	}
	r.xb[leave] = theta
	r.inBase[r.basis[leave]] = false
	r.inBase[enter] = true
	r.basis[leave] = enter
}

func (r *revised) primal() []float64 {
	x := make([]float64, r.nVars)
	for row, bcol := range r.basis {
		if bcol < r.nVars {
			v := r.xb[row]
			if v < 0 && v > -epsPivot {
				v = 0
			}
			x[bcol] = v
		}
	}
	return x
}

// verify re-checks the candidate optimum against the *original*
// constraints; the revised method's incremental B⁻¹ can drift, and a
// silent violation would corrupt downstream guarantees.
func (r *revised) verify(x []float64) error {
	const feasTol = 1e-6
	lhs := make([]float64, r.m)
	for j, col := range r.p.Cols {
		if x[j] == 0 {
			continue
		}
		for _, e := range col {
			lhs[e.Row] += e.Val * x[j]
		}
	}
	for i, rhs := range r.p.RHS {
		var bad bool
		switch r.p.Rels[i] {
		case LE:
			bad = lhs[i] > rhs+feasTol*(1+math.Abs(rhs))
		case GE:
			bad = lhs[i] < rhs-feasTol*(1+math.Abs(rhs))
		case EQ:
			bad = math.Abs(lhs[i]-rhs) > feasTol*(1+math.Abs(rhs))
		}
		if bad {
			return fmt.Errorf("%w: constraint %d violated by %g after revised solve", ErrNumerical, i, lhs[i]-rhs)
		}
	}
	for j, xj := range x {
		if xj < -feasTol {
			return fmt.Errorf("%w: variable %d negative (%g)", ErrNumerical, j, xj)
		}
	}
	return nil
}

// duals recovers one multiplier per original constraint from the final
// simplex multipliers y = c_B·B⁻¹, undoing row flips and the minimise
// transformation (mirroring the dense solver's convention).
func (r *revised) duals() []float64 {
	y := r.simplexMultipliers()
	out := make([]float64, r.m)
	for i := 0; i < r.m; i++ {
		v := y[i]
		if r.flip[i] {
			v = -v
		}
		if r.p.Minimize {
			v = -v
		}
		out[i] = v
	}
	return out
}
