package lp

import (
	"fmt"
	"math"

	"maxminlp/internal/mmlp"
)

// SolveMaxMinBisect solves the max-min LP by bisection on ω: for a fixed
// candidate ω the system {Ax ≤ 1, Cx ≥ ω·1, x ≥ 0} is a pure feasibility
// question answered by a phase-1 LP. This is an algorithmically
// independent route to the optimum — no ω variable, no shared pivoting
// path with SolveMaxMin — which the tests use to triangulate the simplex
// front-ends: two unrelated solvers agreeing to tolerance is strong
// evidence against a systematic formulation bug.
//
// The search bracket is [0, min_k Σ_v c_kv·cap_v] where cap_v is the safe
// per-variable capacity min_i 1/a_iv; bisection runs until the bracket is
// narrower than tol. The returned X is the feasible point found at the
// final lower bound.
func SolveMaxMinBisect(in *mmlp.Instance, tol float64) (MaxMinResult, error) {
	if tol <= 0 {
		return MaxMinResult{}, fmt.Errorf("lp: bisection tolerance must be positive, got %v", tol)
	}
	n := in.NumAgents()
	if in.NumParties() == 0 {
		return MaxMinResult{X: make([]float64, n), Omega: math.Inf(1)}, nil
	}

	// Upper bound on ω: every variable is individually capped by its
	// tightest resource (cap_v = min_i 1/a_iv), so no party can receive
	// more than Σ c_kv·cap_v.
	cap := make([]float64, n)
	for v := 0; v < n; v++ {
		cap[v] = math.Inf(1)
		for _, i := range in.AgentResources(v) {
			cap[v] = math.Min(cap[v], 1/in.A(i, v))
		}
		if math.IsInf(cap[v], 1) {
			cap[v] = 0 // unconstrained agents contribute no finite cap; see below
		}
	}
	hi := math.Inf(1)
	for k := 0; k < in.NumParties(); k++ {
		var sum float64
		unbounded := false
		for _, e := range in.Party(k) {
			if len(in.AgentResources(e.Agent)) == 0 {
				unbounded = true
				break
			}
			sum += e.Coeff * cap[e.Agent]
		}
		if !unbounded {
			hi = math.Min(hi, sum)
		}
	}
	if math.IsInf(hi, 1) {
		return MaxMinResult{}, fmt.Errorf("lp: every party touches an unconstrained agent; ω is unbounded")
	}

	feasible := func(omega float64) ([]float64, bool, error) {
		cons := make([]Constraint, 0, in.NumResources()+in.NumParties())
		for i := 0; i < in.NumResources(); i++ {
			row := make([]float64, n)
			for _, e := range in.Resource(i) {
				row[e.Agent] = e.Coeff
			}
			cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: 1})
		}
		for k := 0; k < in.NumParties(); k++ {
			row := make([]float64, n)
			for _, e := range in.Party(k) {
				row[e.Agent] = e.Coeff
			}
			cons = append(cons, Constraint{Coeffs: row, Rel: GE, RHS: omega})
		}
		sol, err := Solve(&Problem{Obj: make([]float64, n), Constraints: cons})
		if err != nil {
			return nil, false, err
		}
		return sol.X, sol.Status == Optimal, nil
	}

	lo := 0.0
	xBest := make([]float64, n)
	pivots := 0
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		x, ok, err := feasible(mid)
		if err != nil {
			return MaxMinResult{}, err
		}
		if ok {
			lo = mid
			xBest = x
		} else {
			hi = mid
		}
		pivots++
		if pivots > 200 {
			break // bracket cannot shrink further in float64
		}
	}
	// The phase-1 feasibility point can overshoot resource capacities by
	// round-off. Clamp stray negatives to zero (harmless: coefficients
	// are nonnegative), then scale the whole vector by 1/(1+v) — the
	// resource rows are homogeneous packing rows, so scaling restores
	// strict feasibility at a negligible objective cost.
	for i := range xBest {
		if xBest[i] < 0 {
			xBest[i] = 0
		}
	}
	if v := in.Violation(xBest); v > 0 && v < 1e-6 {
		scale := 1 / (1 + v)
		for i := range xBest {
			xBest[i] *= scale
		}
		lo *= scale
	}
	return MaxMinResult{X: xBest, Omega: lo, Pivots: pivots}, nil
}
