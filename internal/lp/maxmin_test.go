package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"maxminlp/internal/mmlp"
)

func buildTiny(t *testing.T) *mmlp.Instance {
	t.Helper()
	b := mmlp.NewBuilder(3)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUniformParty(1, 0, 1)
	b.AddUniformParty(1, 2)
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveMaxMinTiny(t *testing.T) {
	in := buildTiny(t)
	res, err := SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Omega, 1, tol, "omega")
	if v := in.Violation(res.X); v > tol {
		t.Fatalf("optimal solution infeasible: %v", v)
	}
	// ω must equal the objective of the returned x.
	approx(t, in.Objective(res.X), res.Omega, tol, "objective consistency")
}

func TestSolveMaxMinNoParties(t *testing.T) {
	b := mmlp.NewBuilder(2)
	b.AddUnitResource(0)
	b.AddUnitResource(1)
	in := b.MustBuild()
	res, err := SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Omega, 1) {
		t.Fatalf("ω = %v, want +Inf for empty K", res.Omega)
	}
}

func TestSolveMaxMinRatAgreesWithFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 15; trial++ {
		b := mmlp.NewBuilder(0)
		n := 2 + rng.Intn(6)
		agents := make([]int, n)
		for i := range agents {
			agents[i] = b.AddAgent()
		}
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			b.AddResource(
				mmlp.Entry{Agent: agents[i], Coeff: float64(1+rng.Intn(3)) / 2},
				mmlp.Entry{Agent: agents[j], Coeff: float64(1+rng.Intn(3)) / 2},
			)
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.AddUniformParty(1, agents[rng.Intn(n)])
		}
		in := b.MustBuild()
		fres, err := SolveMaxMin(in)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := SolveMaxMinRat(in)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := rres.Omega.Float64()
		approx(t, fres.Omega, exact, 1e-6, "float vs exact ω")
	}
}

func TestSolveMaxMinRatExactOnTiny(t *testing.T) {
	in := buildTiny(t)
	res, err := SolveMaxMinRat(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Omega.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("exact ω = %v, want exactly 1", res.Omega)
	}
}

func TestSolvePacking(t *testing.T) {
	// maximise x0 + 2 x1 s.t. x0 + x1 ≤ 1, x1 ≤ 0.5 (scaled row).
	b := mmlp.NewBuilder(2)
	b.AddUnitResource(0, 1)
	b.AddResource(mmlp.Entry{Agent: 1, Coeff: 2})
	in := b.MustBuild()
	sol, err := SolvePacking(in, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	approx(t, sol.Value, 1.5, tol, "packing value") // x0 = 0.5, x1 = 0.5
	if _, err := SolvePacking(in, []float64{1}); err == nil {
		t.Fatal("wrong objective length must fail")
	}
}

func TestMaxMinOmegaNeverNegativeQuick(t *testing.T) {
	// Property: for random valid instances, the solver returns a
	// feasible x with ω = Objective(x) ≥ 0 and no constraint violated.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		b := mmlp.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.AddResource(mmlp.Entry{Agent: v, Coeff: 0.25 + r.Float64()})
		}
		for e := 0; e < r.Intn(6); e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				b.AddResource(mmlp.Entry{Agent: u, Coeff: 0.5}, mmlp.Entry{Agent: v, Coeff: 0.5})
			}
		}
		for k := 0; k < 1+r.Intn(4); k++ {
			b.AddParty(mmlp.Entry{Agent: r.Intn(n), Coeff: 0.25 + r.Float64()})
		}
		in := b.MustBuild()
		res, err := SolveMaxMin(in)
		if err != nil {
			return false
		}
		if res.Omega < -tol {
			return false
		}
		if in.Violation(res.X) > tol {
			return false
		}
		// Optimality sanity: ω equals the recomputed objective.
		return math.Abs(in.Objective(res.X)-res.Omega) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRatSimplexInfeasibleAndUnbounded(t *testing.T) {
	one := big.NewRat(1, 1)
	two := big.NewRat(2, 1)
	inf := &RatProblem{
		Obj: []*big.Rat{one},
		Constraints: []RatConstraint{
			{Coeffs: []*big.Rat{one}, Rel: LE, RHS: one},
			{Coeffs: []*big.Rat{one}, Rel: GE, RHS: two},
		},
	}
	sol, err := SolveRat(inf)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}

	unb := &RatProblem{
		Obj: []*big.Rat{one, nil},
		Constraints: []RatConstraint{
			{Coeffs: []*big.Rat{nil, one}, Rel: LE, RHS: one},
		},
	}
	sol, err = SolveRat(unb)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestRatSimplexMinimizeAndEquality(t *testing.T) {
	one := big.NewRat(1, 1)
	five := big.NewRat(5, 1)
	three := big.NewRat(3, 1)
	p := &RatProblem{
		Minimize: true,
		Obj:      []*big.Rat{big.NewRat(2, 1), three},
		Constraints: []RatConstraint{
			{Coeffs: []*big.Rat{one, one}, Rel: EQ, RHS: five},
		},
	}
	sol, err := SolveRat(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// min 2x + 3y with x + y = 5 → x = 5, y = 0, value 10.
	if sol.Value.Cmp(big.NewRat(10, 1)) != 0 {
		t.Fatalf("value = %v, want 10", sol.Value)
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Rel strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	p := &Problem{
		Obj: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1}, // wrong arity
		},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("wrong coefficient arity must fail")
	}
	p = &Problem{
		Obj: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: math.Inf(1)},
		},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("non-finite rhs must fail")
	}
}

func TestBisectionTriangulatesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 12; trial++ {
		b := mmlp.NewBuilder(0)
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			b.AddAgent()
		}
		for i := 0; i < n; i++ {
			b.AddResource(
				mmlp.Entry{Agent: i, Coeff: 0.5 + rng.Float64()},
				mmlp.Entry{Agent: (i + 1) % n, Coeff: 0.5 + rng.Float64()},
			)
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.AddParty(mmlp.Entry{Agent: rng.Intn(n), Coeff: 0.5 + rng.Float64()})
		}
		in := b.MustBuild()
		simplex, err := SolveMaxMin(in)
		if err != nil {
			t.Fatal(err)
		}
		bisect, err := SolveMaxMinBisect(in, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(simplex.Omega-bisect.Omega) > 1e-5*(1+simplex.Omega) {
			t.Fatalf("trial %d: simplex ω = %v, bisection ω = %v", trial, simplex.Omega, bisect.Omega)
		}
		if v := in.Violation(bisect.X); v > 1e-7 {
			t.Fatalf("trial %d: bisection point infeasible: %v", trial, v)
		}
	}
}

func TestBisectionEdgeCases(t *testing.T) {
	// No parties → +Inf.
	b := mmlp.NewBuilder(1)
	b.AddResource(mmlp.Entry{Agent: 0, Coeff: 1})
	in := b.MustBuild()
	res, err := SolveMaxMinBisect(in, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Omega, 1) {
		t.Fatalf("ω = %v, want +Inf", res.Omega)
	}
	// Bad tolerance.
	if _, err := SolveMaxMinBisect(in, 0); err == nil {
		t.Fatal("zero tolerance must fail")
	}
	// A party consisting only of an unconstrained agent → unbounded error.
	b = mmlp.NewBuilder(2).AllowUnconstrained()
	b.AddResource(mmlp.Entry{Agent: 0, Coeff: 1})
	b.AddParty(mmlp.Entry{Agent: 1, Coeff: 1})
	in = b.MustBuild()
	if _, err := SolveMaxMinBisect(in, 1e-6); err == nil {
		t.Fatal("unbounded instance must fail")
	}
}
