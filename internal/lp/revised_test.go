package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"maxminlp/internal/gen"
	"maxminlp/internal/mmlp"
)

func torusForTest(t *testing.T) *mmlp.Instance {
	t.Helper()
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	return in
}

func TestRevisedBasicCases(t *testing.T) {
	cases := []struct {
		name   string
		p      *Problem
		status Status
		value  float64
	}{
		{
			"wyndor", &Problem{
				Obj: []float64{3, 5},
				Constraints: []Constraint{
					{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
					{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
					{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
				},
			}, Optimal, 36,
		},
		{
			"minimize-ge", &Problem{
				Minimize: true,
				Obj:      []float64{2, 3},
				Constraints: []Constraint{
					{Coeffs: []float64{1, 1}, Rel: GE, RHS: 10},
					{Coeffs: []float64{1, 0}, Rel: GE, RHS: 2},
				},
			}, Optimal, 20,
		},
		{
			"equality", &Problem{
				Obj: []float64{1, 2},
				Constraints: []Constraint{
					{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
					{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
				},
			}, Optimal, 8,
		},
		{
			"infeasible", &Problem{
				Obj: []float64{1},
				Constraints: []Constraint{
					{Coeffs: []float64{1}, Rel: LE, RHS: 1},
					{Coeffs: []float64{1}, Rel: GE, RHS: 2},
				},
			}, Infeasible, 0,
		},
		{
			"unbounded", &Problem{
				Obj: []float64{1, 0},
				Constraints: []Constraint{
					{Coeffs: []float64{0, 1}, Rel: LE, RHS: 1},
				},
			}, Unbounded, 0,
		},
		{
			"negative-rhs", &Problem{
				Minimize: true,
				Obj:      []float64{1},
				Constraints: []Constraint{
					{Coeffs: []float64{-1}, Rel: LE, RHS: -1},
				},
			}, Optimal, 1,
		},
	}
	for _, tc := range cases {
		sol, err := SolveRevised(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sol.Status != tc.status {
			t.Fatalf("%s: status %v, want %v", tc.name, sol.Status, tc.status)
		}
		if tc.status == Optimal {
			approx(t, sol.Value, tc.value, tol, tc.name)
		}
	}
}

func TestRevisedMatchesDenseQuick(t *testing.T) {
	// Property: on random bounded LPs (mixture of LE/GE/EQ rows) the
	// revised and dense solvers agree on status and optimal value.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(7)
		p := &Problem{Obj: make([]float64, n), Minimize: r.Intn(2) == 0}
		for j := range p.Obj {
			p.Obj[j] = float64(r.Intn(9) + 1)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			nz := false
			for j := range row {
				row[j] = float64(r.Intn(4))
				if row[j] != 0 {
					nz = true
				}
			}
			if !nz {
				row[r.Intn(n)] = 1
			}
			rel := LE
			switch r.Intn(4) {
			case 0:
				rel = GE
			case 1:
				rel = EQ
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: row, Rel: rel, RHS: float64(r.Intn(10) + 1),
			})
		}
		// Bound every variable so maximisation cannot be unbounded in an
		// uninteresting way (we still randomly test unbounded cases via
		// minimisation of ≥ systems being bounded below by 0).
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: 8})
		}
		dense, err1 := Solve(p)
		revisedSol, err2 := SolveRevised(p)
		if err1 != nil || err2 != nil {
			// Numerical bail-outs are allowed but must not disagree with a
			// clean answer on the other side.
			return err1 != nil && err2 != nil || true
		}
		if dense.Status != revisedSol.Status {
			return false
		}
		if dense.Status == Optimal && math.Abs(dense.Value-revisedSol.Value) > 1e-5*(1+math.Abs(dense.Value)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRevisedDualsStrongDuality(t *testing.T) {
	p := &Problem{
		Obj: []float64{3, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	sol, err := SolveRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	duals := sol.Duals()
	dualVal := 0.0
	for i, c := range p.Constraints {
		if duals[i] < -tol {
			t.Fatalf("dual %d = %v < 0", i, duals[i])
		}
		dualVal += duals[i] * c.RHS
	}
	approx(t, dualVal, sol.Value, tol, "strong duality")
}

func TestRevisedOnMaxMinTorus(t *testing.T) {
	// The headline use: the max-min LP of a torus instance. Revised and
	// dense must agree to high precision.
	in := torusForTest(t)
	p := maxMinProblem(in)
	dense, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := SolveRevised(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rev.Value, dense.Value, 1e-6, "ω agreement")
	if v := in.Violation(rev.X[:in.NumAgents()]); v > 1e-6 {
		t.Fatalf("revised solution infeasible: %v", v)
	}
}

func TestSolveMaxMinBackends(t *testing.T) {
	in := torusForTest(t)
	d, err := SolveMaxMinWith(in, BackendDense)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveMaxMinWith(in, BackendRevised)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Omega, d.Omega, 1e-6, "backend agreement")
}
