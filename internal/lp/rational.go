package lp

import (
	"fmt"
	"math/big"
)

// RatConstraint is one row of an exact LP.
type RatConstraint struct {
	Coeffs []*big.Rat
	Rel    Rel
	RHS    *big.Rat
}

// RatProblem is an exact linear program over nonnegative variables. Nil
// coefficient entries are treated as zero.
type RatProblem struct {
	Minimize    bool
	Obj         []*big.Rat
	Constraints []RatConstraint
}

// RatSolution is the exact counterpart of Solution.
type RatSolution struct {
	Status Status
	X      []*big.Rat
	Value  *big.Rat
	Pivots int
}

// SolveRat solves an exact LP with the two-phase simplex method under
// Bland's rule. Termination is guaranteed; arithmetic is exact, so the
// returned solution is a true optimum (no tolerances).
func SolveRat(p *RatProblem) (RatSolution, error) {
	t, err := newRatTableau(p)
	if err != nil {
		return RatSolution{}, err
	}
	sol := RatSolution{}
	if t.needPhase1 {
		t.setPhase1()
		t.iterate(&sol.Pivots)
		if t.objRHS.Sign() < 0 {
			sol.Status = Infeasible
			return sol, nil
		}
		t.expelArtificials()
	}
	t.setPhase2(p)
	if unbounded := t.iterate(&sol.Pivots); unbounded {
		sol.Status = Unbounded
		return sol, nil
	}
	sol.Status = Optimal
	sol.X = t.primal()
	sol.Value = new(big.Rat).Set(t.objRHS)
	if p.Minimize {
		sol.Value.Neg(sol.Value)
	}
	return sol, nil
}

type ratTableau struct {
	nVars    int
	artStart int
	nCols    int

	rows   [][]*big.Rat
	rhs    []*big.Rat
	basis  []int
	obj    []*big.Rat
	objRHS *big.Rat

	needPhase1 bool
	inPhase2   bool
}

func ratOrZero(r *big.Rat) *big.Rat {
	if r == nil {
		return new(big.Rat)
	}
	return new(big.Rat).Set(r)
}

func newRatTableau(p *RatProblem) (*ratTableau, error) {
	n := len(p.Obj)
	m := len(p.Constraints)
	nSlack, nArt := 0, 0
	rels := make([]Rel, m)
	flips := make([]bool, m)
	for r, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return nil, fmt.Errorf("lp: rational constraint %d has %d coefficients, want %d", r, len(c.Coeffs), n)
		}
		rel := c.Rel
		if c.RHS != nil && c.RHS.Sign() < 0 {
			flips[r] = true
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rels[r] = rel
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &ratTableau{
		nVars:    n,
		artStart: n + nSlack,
		nCols:    n + nSlack + nArt,
		rows:     make([][]*big.Rat, m),
		rhs:      make([]*big.Rat, m),
		basis:    make([]int, m),
		objRHS:   new(big.Rat),
	}
	slack, art := n, t.artStart
	for r, c := range p.Constraints {
		row := make([]*big.Rat, t.nCols)
		for j := range row {
			row[j] = new(big.Rat)
		}
		for j, a := range c.Coeffs {
			row[j] = ratOrZero(a)
			if flips[r] {
				row[j].Neg(row[j])
			}
		}
		t.rhs[r] = ratOrZero(c.RHS)
		if flips[r] {
			t.rhs[r].Neg(t.rhs[r])
		}
		switch rels[r] {
		case LE:
			row[slack].SetInt64(1)
			t.basis[r] = slack
			slack++
		case GE:
			row[slack].SetInt64(-1)
			slack++
			row[art].SetInt64(1)
			t.basis[r] = art
			art++
			t.needPhase1 = true
		case EQ:
			row[art].SetInt64(1)
			t.basis[r] = art
			art++
			t.needPhase1 = true
		}
		t.rows[r] = row
	}
	return t, nil
}

func (t *ratTableau) priceOut(costs []*big.Rat) {
	t.obj = make([]*big.Rat, t.nCols)
	for j := range t.obj {
		t.obj[j] = ratOrZero(costs[j])
	}
	t.objRHS = new(big.Rat)
	tmp := new(big.Rat)
	for r, b := range t.basis {
		cb := costs[b]
		if cb == nil || cb.Sign() == 0 {
			continue
		}
		for j := range t.obj {
			tmp.Mul(cb, t.rows[r][j])
			t.obj[j].Sub(t.obj[j], tmp)
		}
		tmp.Mul(cb, t.rhs[r])
		t.objRHS.Add(t.objRHS, tmp)
	}
}

func (t *ratTableau) setPhase1() {
	costs := make([]*big.Rat, t.nCols)
	for j := t.artStart; j < t.nCols; j++ {
		costs[j] = big.NewRat(-1, 1)
	}
	t.priceOut(costs)
	t.inPhase2 = false
}

func (t *ratTableau) setPhase2(p *RatProblem) {
	costs := make([]*big.Rat, t.nCols)
	for j := 0; j < t.nVars; j++ {
		costs[j] = ratOrZero(p.Obj[j])
		if p.Minimize {
			costs[j].Neg(costs[j])
		}
	}
	t.priceOut(costs)
	t.inPhase2 = true
}

// iterate runs Bland-rule pivots to optimality; it reports true iff the
// problem is unbounded (only possible in phase 2).
func (t *ratTableau) iterate(pivots *int) bool {
	for {
		limit := t.nCols
		if t.inPhase2 {
			limit = t.artStart
		}
		enter := -1
		for j := 0; j < limit; j++ {
			if t.obj[j].Sign() > 0 && !t.isBasic(j) {
				enter = j
				break
			}
		}
		if enter < 0 {
			return false
		}
		leave := -1
		ratio := new(big.Rat)
		best := new(big.Rat)
		for r := range t.rows {
			a := t.rows[r][enter]
			if a.Sign() <= 0 {
				continue
			}
			ratio.Quo(t.rhs[r], a)
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[r] < t.basis[leave]) {
				leave = r
				best.Set(ratio)
			}
		}
		if leave < 0 {
			return true
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

func (t *ratTableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

func (t *ratTableau) pivot(r, enter int) {
	row := t.rows[r]
	inv := new(big.Rat).Inv(row[enter])
	for j := range row {
		row[j].Mul(row[j], inv)
	}
	t.rhs[r].Mul(t.rhs[r], inv)
	tmp := new(big.Rat)
	for rr := range t.rows {
		if rr == r {
			continue
		}
		f := new(big.Rat).Set(t.rows[rr][enter])
		if f.Sign() == 0 {
			continue
		}
		other := t.rows[rr]
		for j := range other {
			tmp.Mul(f, row[j])
			other[j].Sub(other[j], tmp)
		}
		tmp.Mul(f, t.rhs[r])
		t.rhs[rr].Sub(t.rhs[rr], tmp)
	}
	f := new(big.Rat).Set(t.obj[enter])
	if f.Sign() != 0 {
		for j := range t.obj {
			tmp.Mul(f, row[j])
			t.obj[j].Sub(t.obj[j], tmp)
		}
		tmp.Mul(f, t.rhs[r])
		t.objRHS.Add(t.objRHS, tmp)
	}
	t.basis[r] = enter
}

func (t *ratTableau) expelArtificials() {
	for r := 0; r < len(t.rows); r++ {
		if t.basis[r] < t.artStart {
			continue
		}
		found := -1
		for j := 0; j < t.artStart; j++ {
			if t.rows[r][j].Sign() != 0 {
				found = j
				break
			}
		}
		if found >= 0 {
			t.pivot(r, found)
			continue
		}
		last := len(t.rows) - 1
		t.rows[r], t.rows[last] = t.rows[last], t.rows[r]
		t.rhs[r], t.rhs[last] = t.rhs[last], t.rhs[r]
		t.basis[r], t.basis[last] = t.basis[last], t.basis[r]
		t.rows = t.rows[:last]
		t.rhs = t.rhs[:last]
		t.basis = t.basis[:last]
		r--
	}
}

func (t *ratTableau) primal() []*big.Rat {
	x := make([]*big.Rat, t.nVars)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for r, b := range t.basis {
		if b < t.nVars {
			x[b].Set(t.rhs[r])
		}
	}
	return x
}
