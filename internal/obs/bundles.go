package obs

// Bundles group the metrics one subsystem records, resolved from a
// registry once at setup. Every constructor returns nil when the
// registry is nil, and every field of a nil bundle reads as a nil
// metric, so instrumented code holds a possibly-nil bundle and records
// unconditionally.

// LPMetrics is recorded by lp.Workspace at the single point where every
// staged solve completes.
type LPMetrics struct {
	Solves *Counter   // mmlp_lp_solves_total
	Pivots *Counter   // mmlp_lp_pivots_total
	Rows   *Histogram // mmlp_lp_tableau_rows
	Vars   *Histogram // mmlp_lp_tableau_vars
}

// NewLPMetrics registers the LP metrics on r (nil r → nil bundle).
func NewLPMetrics(r *Registry) *LPMetrics {
	if r == nil {
		return nil
	}
	return &LPMetrics{
		Solves: r.Counter("mmlp_lp_solves_total", "Staged simplex solves completed."),
		Pivots: r.Counter("mmlp_lp_pivots_total", "Simplex pivots across all solves."),
		Rows:   r.Histogram("mmlp_lp_tableau_rows", "Constraint rows per staged solve.", DefSizeBuckets),
		Vars:   r.Histogram("mmlp_lp_tableau_vars", "Variables per staged solve.", DefSizeBuckets),
	}
}

// RecordSolve records one completed staged solve.
func (m *LPMetrics) RecordSolve(rows, vars, pivots int) {
	if m == nil {
		return
	}
	m.Solves.Inc()
	m.Pivots.Add(int64(pivots))
	m.Rows.Observe(float64(rows))
	m.Vars.Observe(float64(vars))
}

// SchedMetrics is recorded by users of the internal/sched work-stealing
// pool after each run or phase: how much work migrated between workers,
// how often idle workers parked, and how the tasks spread across
// workers. The pool label separates the solver's task pool from the
// sharded dist engine's.
type SchedMetrics struct {
	Steals      *Counter   // mmlp_sched_steals_total{pool=...}
	Parks       *Counter   // mmlp_sched_parks_total{pool=...}
	WorkerTasks *Histogram // mmlp_sched_worker_tasks{pool=...}
}

// NewSchedMetrics registers the work-stealing scheduler metrics on r
// under the given pool label (nil r → nil bundle).
func NewSchedMetrics(r *Registry, pool string) *SchedMetrics {
	if r == nil {
		return nil
	}
	return &SchedMetrics{
		Steals: r.Counter("mmlp_sched_steals_total",
			"Tasks claimed from another worker's deque.", L("pool", pool)),
		Parks: r.Counter("mmlp_sched_parks_total",
			"Times an idle worker exhausted its spin budget and slept.", L("pool", pool)),
		WorkerTasks: r.Histogram("mmlp_sched_worker_tasks",
			"Tasks executed per worker per run (one observation per worker).",
			DefSizeBuckets, L("pool", pool)),
	}
}

// RecordRun records the scheduler counters of one completed parallel
// run. Nil-safe.
func (m *SchedMetrics) RecordRun(steals, parks int64, workerTasks []int64) {
	if m == nil {
		return
	}
	m.Steals.Add(steals)
	m.Parks.Add(parks)
	for _, t := range workerTasks {
		m.WorkerTasks.Observe(float64(t))
	}
}

// SolveMetrics is recorded by core.Solver across the solve pipeline:
// per-phase latency of the dedup averaging pass, cache effectiveness,
// and the invalidation cost of weight/topology updates.
type SolveMetrics struct {
	// Phase latencies of one averaging pass (full or incremental):
	// fingerprint → cache group/lookup → LP solve of representatives →
	// accumulate combination (10).
	PhaseFingerprint *Histogram // mmlp_solve_phase_seconds{phase="fingerprint"}
	PhaseGroup       *Histogram // {phase="group"}
	PhaseLPSolve     *Histogram // {phase="lp_solve"}
	PhaseAccumulate  *Histogram // {phase="accumulate"}

	FullSolves        *Counter // mmlp_solve_passes_total{kind="full"}
	IncrementalSolves *Counter // {kind="incremental"}
	WarmHits          *Counter // {kind="warm"}

	CacheHits      *Counter // mmlp_solve_cache_total{result="hit"} — ball LPs avoided
	CacheMisses    *Counter // {result="miss"} — ball LPs actually solved
	AgentsResolved *Counter // mmlp_solve_agents_resolved_total

	// PresolveRowsDropped counts constraint rows the ball-LP presolve
	// eliminated before fingerprinting; together with the cache series it
	// makes the presolve dedup-hit delta observable on /metrics.
	PresolveRowsDropped *Counter // mmlp_presolve_rows_dropped_total

	WeightUpdateSeconds *Histogram // mmlp_update_seconds{kind="weights"}
	TopoUpdateSeconds   *Histogram // {kind="topology"}
	WeightInvalidations *Counter   // mmlp_update_invalidated_balls_total{kind="weights"}
	TopoInvalidations   *Counter   // {kind="topology"}
	AgentsAdded         *Counter   // mmlp_topo_agents_total{op="added"}
	AgentsRemoved       *Counter   // {op="removed"}

	LP    *LPMetrics
	Sched *SchedMetrics // pool="solver"
}

// NewSolveMetrics registers the solve-pipeline metrics on r (nil r →
// nil bundle).
func NewSolveMetrics(r *Registry) *SolveMetrics {
	if r == nil {
		return nil
	}
	phase := func(p string) *Histogram {
		return r.Histogram("mmlp_solve_phase_seconds",
			"Latency of one solve-pipeline phase within an averaging pass.",
			DefLatencyBuckets, L("phase", p))
	}
	pass := func(k string) *Counter {
		return r.Counter("mmlp_solve_passes_total", "Averaging passes by kind.", L("kind", k))
	}
	return &SolveMetrics{
		PhaseFingerprint: phase("fingerprint"),
		PhaseGroup:       phase("group"),
		PhaseLPSolve:     phase("lp_solve"),
		PhaseAccumulate:  phase("accumulate"),

		FullSolves:        pass("full"),
		IncrementalSolves: pass("incremental"),
		WarmHits:          pass("warm"),

		CacheHits: r.Counter("mmlp_solve_cache_total",
			"Ball-LP cache outcomes: hit = LP avoided by isomorphic-ball dedup, miss = LP solved.",
			L("result", "hit")),
		CacheMisses: r.Counter("mmlp_solve_cache_total",
			"Ball-LP cache outcomes: hit = LP avoided by isomorphic-ball dedup, miss = LP solved.",
			L("result", "miss")),
		AgentsResolved: r.Counter("mmlp_solve_agents_resolved_total",
			"Agents re-solved by incremental passes."),
		PresolveRowsDropped: r.Counter("mmlp_presolve_rows_dropped_total",
			"Ball-LP constraint rows eliminated by presolve before fingerprinting."),

		WeightUpdateSeconds: r.Histogram("mmlp_update_seconds",
			"Latency of session mutation calls.", DefLatencyBuckets, L("kind", "weights")),
		TopoUpdateSeconds: r.Histogram("mmlp_update_seconds",
			"Latency of session mutation calls.", DefLatencyBuckets, L("kind", "topology")),
		WeightInvalidations: r.Counter("mmlp_update_invalidated_balls_total",
			"Balls invalidated (marked dirty) by session mutations.", L("kind", "weights")),
		TopoInvalidations: r.Counter("mmlp_update_invalidated_balls_total",
			"Balls invalidated (marked dirty) by session mutations.", L("kind", "topology")),
		AgentsAdded: r.Counter("mmlp_topo_agents_total",
			"Agents added/removed by topology updates.", L("op", "added")),
		AgentsRemoved: r.Counter("mmlp_topo_agents_total",
			"Agents added/removed by topology updates.", L("op", "removed")),

		LP:    NewLPMetrics(r),
		Sched: NewSchedMetrics(r, "solver"),
	}
}

// SchedBundle returns the scheduler sub-bundle, nil-safe.
func (m *SolveMetrics) SchedBundle() *SchedMetrics {
	if m == nil {
		return nil
	}
	return m.Sched
}

// RecordWarmHit counts one query answered entirely from retained state.
// Nil-safe.
func (m *SolveMetrics) RecordWarmHit() {
	if m == nil {
		return
	}
	m.WarmHits.Inc()
}

// PresolveDroppedCounter returns the presolve row-drop counter,
// nil-safe.
func (m *SolveMetrics) PresolveDroppedCounter() *Counter {
	if m == nil {
		return nil
	}
	return m.PresolveRowsDropped
}

// LPBundle returns the LP sub-bundle, nil-safe.
func (m *SolveMetrics) LPBundle() *LPMetrics {
	if m == nil {
		return nil
	}
	return m.LP
}

// DistMetrics is recorded by the internal/dist engines.
type DistMetrics struct {
	Runs          *Counter      // mmlp_dist_runs_total{engine=...} — one per engine via EngineRuns
	Rounds        *Counter      // mmlp_dist_rounds_total
	Messages      *Counter      // mmlp_dist_messages_total
	Records       *Counter      // mmlp_dist_payload_records_total
	RoundMessages *Histogram    // mmlp_dist_round_messages
	BarrierWait   *Histogram    // mmlp_dist_barrier_wait_seconds
	Sched         *SchedMetrics // pool="dist" — sharded engine's steal pool

	reg *Registry
}

// NewDistMetrics registers the dist-engine metrics on r (nil r → nil
// bundle).
func NewDistMetrics(r *Registry) *DistMetrics {
	if r == nil {
		return nil
	}
	return &DistMetrics{
		Rounds:   r.Counter("mmlp_dist_rounds_total", "Synchronous rounds executed across runs."),
		Messages: r.Counter("mmlp_dist_messages_total", "Messages delivered between flood nodes."),
		Records:  r.Counter("mmlp_dist_payload_records_total", "Payload records carried by delivered messages."),
		RoundMessages: r.Histogram("mmlp_dist_round_messages",
			"Messages delivered in one synchronous round.", DefSizeBuckets),
		BarrierWait: r.Histogram("mmlp_dist_barrier_wait_seconds",
			"Time a node or shard waits at the round barrier.", DefLatencyBuckets),
		Sched: NewSchedMetrics(r, "dist"),
		reg:   r,
	}
}

// SchedBundle returns the scheduler sub-bundle, nil-safe.
func (m *DistMetrics) SchedBundle() *SchedMetrics {
	if m == nil {
		return nil
	}
	return m.Sched
}

// EngineRuns returns the per-engine run counter (engine is
// "sequential", "goroutines" or "sharded"). Nil-safe.
func (m *DistMetrics) EngineRuns(engine string) *Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("mmlp_dist_runs_total", "Protocol runs by engine.", L("engine", engine))
}
