package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one recorded phase of a span: Start is the phase start time,
// DurNs its duration. Events with Phase "" mark the span as a whole.
type Event struct {
	Seq   uint64 `json:"seq"`
	Span  uint64 `json:"span"`
	Name  string `json:"name"`
	Phase string `json:"phase,omitempty"`
	Start int64  `json:"start_unix_ns"`
	DurNs int64  `json:"dur_ns"`
	Note  string `json:"note,omitempty"`
}

// Tracer records spans into a fixed-size ring buffer of events, and
// optionally mirrors each event to a JSONL sink and fires a slow-span
// hook. A nil *Tracer is a no-op and StartSpan on it returns a nil
// *Span, whose methods are all no-ops — the same disabled-mode contract
// as the metrics.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	n       int // events written (mod len(ring) gives the next slot)
	seq     uint64
	spanSeq uint64
	sink    io.Writer
	enc     *json.Encoder
	slow    time.Duration
	onSlow  func(Event)
}

// NewTracer returns a tracer with a ring of the given capacity
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// SetSink mirrors every committed event to w as one JSON object per
// line. Pass nil to disable.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	if w != nil {
		t.enc = json.NewEncoder(w)
	} else {
		t.enc = nil
	}
}

// SetSlow arms the slow-span hook: spans whose total duration reaches d
// invoke fn with the span's summary event. d <= 0 disarms.
func (t *Tracer) SetSlow(d time.Duration, fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.slow = d
	t.onSlow = fn
}

// Span is an in-flight traced operation. Phases are marked with Phase;
// End commits all events atomically to the ring. A nil *Span is a
// no-op.
type Span struct {
	t       *Tracer
	id      uint64
	name    string
	start   time.Time
	last    time.Time
	evs     []Event // staged phase events, committed at End
	noteBuf string
}

// StartSpan opens a span. The returned span is not goroutine-safe; it
// belongs to the request that created it.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.spanSeq++
	id := t.spanSeq
	t.mu.Unlock()
	now := time.Now()
	return &Span{t: t, id: id, name: name, start: now, last: now}
}

// Phase marks the end of the current phase: the time since the previous
// Phase (or span start) is recorded under the given phase name.
func (s *Span) Phase(phase string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.evs = append(s.evs, Event{
		Span:  s.id,
		Name:  s.name,
		Phase: phase,
		Start: s.last.UnixNano(),
		DurNs: now.Sub(s.last).Nanoseconds(),
	})
	s.last = now
}

// Annotate attaches a note to the span's summary event; repeated calls
// accumulate space-separated.
func (s *Span) Annotate(note string) {
	if s == nil {
		return
	}
	if s.noteBuf != "" {
		s.noteBuf += " "
	}
	s.noteBuf += note
}

// End commits the span: all phase events plus a summary event (empty
// phase, full duration) enter the ring and the sink, and the slow hook
// fires if the total duration reached the threshold. Duration returns
// via the summary event; End reports the total for convenience.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	total := time.Since(s.start)
	summary := Event{
		Span:  s.id,
		Name:  s.name,
		Start: s.start.UnixNano(),
		DurNs: total.Nanoseconds(),
		Note:  s.noteBuf,
	}
	t := s.t
	t.mu.Lock()
	for i := range s.evs {
		t.commitLocked(&s.evs[i])
	}
	t.commitLocked(&summary)
	slow := t.slow > 0 && total >= t.slow
	fn := t.onSlow
	t.mu.Unlock()
	if slow && fn != nil {
		fn(summary)
	}
	return total
}

// commitLocked stamps the event's sequence number and writes it to the
// ring and the sink. Caller holds t.mu.
func (t *Tracer) commitLocked(e *Event) {
	t.seq++
	e.Seq = t.seq
	t.ring[t.n%len(t.ring)] = *e
	t.n++
	if t.enc != nil {
		t.enc.Encode(e) // sink errors are monitoring losses, not failures
	}
}

// Snapshot returns the buffered events oldest-first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= len(t.ring) {
		out := make([]Event, t.n)
		copy(out, t.ring[:t.n])
		return out
	}
	out := make([]Event, len(t.ring))
	at := t.n % len(t.ring)
	copy(out, t.ring[at:])
	copy(out[len(t.ring)-at:], t.ring[:at])
	return out
}
