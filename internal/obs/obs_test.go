package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestLabelOrderNormalised(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lbl_total", "h", L("x", "1"), L("y", "2"))
	b := r.Counter("lbl_total", "h", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
	c := r.Counter("lbl_total", "h", L("x", "1"), L("y", "3"))
	if c == a {
		t.Fatal("different label values returned the same series")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "h", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); math.Abs(got-117.5) > 1e-12 {
		t.Fatalf("sum = %v, want 117.5", got)
	}
	// p50 → 4th of 8 obs → inside (2,4] bucket which holds obs 4..6.
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Fatalf("p50 = %v, want within (2,4]", p50)
	}
	// p99 lands in the +Inf bucket → clamps to the last finite bound.
	if got := h.Quantile(0.99); got != 8 {
		t.Fatalf("p99 = %v, want clamp to 8", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	snap := h.Snapshot()
	if snap.Count != 8 || snap.P50 != p50 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", DefLatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metric reads were non-zero")
	}
	if snap := h.Snapshot(); snap != (HistogramSnapshot{}) {
		t.Fatalf("nil histogram snapshot = %+v, want zero", snap)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if m := NewSolveMetrics(nil); m != nil {
		t.Fatal("NewSolveMetrics(nil) != nil")
	}
	if m := NewLPMetrics(nil); m != nil {
		t.Fatal("NewLPMetrics(nil) != nil")
	}
	if m := NewDistMetrics(nil); m != nil {
		t.Fatal("NewDistMetrics(nil) != nil")
	}
	var sm *SolveMetrics
	if sm.LPBundle() != nil {
		t.Fatal("nil SolveMetrics LPBundle != nil")
	}
	sm.LPBundle().RecordSolve(1, 2, 3)
	var dm *DistMetrics
	if dm.EngineRuns("sequential") != nil {
		t.Fatal("nil DistMetrics EngineRuns != nil")
	}
}

// TestDisabledHotPathZeroAlloc is the satellite AllocsPerRun assertion:
// recording into disabled (nil) metrics must not allocate, and neither
// may the enabled histogram/counter hot path.
func TestDisabledHotPathZeroAlloc(t *testing.T) {
	var c *Counter
	var h *Histogram
	var sw Stopwatch
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		h.Observe(1.5)
		sw.Lap(h) // never started → inert
	}); n != 0 {
		t.Fatalf("disabled hot path allocates %v/op, want 0", n)
	}

	r := NewRegistry()
	ec := r.Counter("alloc_total", "h")
	eh := r.Histogram("alloc_seconds", "h", DefLatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		ec.Inc()
		eh.Observe(0.001)
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %v/op, want 0", n)
	}
}

// TestRegistryConcurrentHammer is the satellite -race hammer: concurrent
// registration of overlapping names, recording, and exposition.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := []Label{L("worker", string(rune('a'+w%4)))}
			for i := 0; i < 500; i++ {
				r.Counter("hammer_total", "h", labels...).Inc()
				r.Gauge("hammer_gauge", "h").Add(1)
				r.Histogram("hammer_seconds", "h", DefLatencyBuckets, labels...).Observe(float64(i) * 1e-5)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, lv := range []string{"a", "b", "c", "d"} {
		total += r.Counter("hammer_total", "h", L("worker", lv)).Value()
	}
	if total != workers*500 {
		t.Fatalf("hammer total = %d, want %d", total, workers*500)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if _, err := ParseExposition(&buf); err != nil {
		t.Fatalf("post-hammer exposition unparseable: %v", err)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "Requests handled.", L("endpoint", "solve"), L("code", "200")).Add(3)
	r.Counter("rt_requests_total", "Requests handled.", L("endpoint", "load"), L("code", "413")).Inc()
	r.Gauge("rt_instances", "Loaded instances.").Set(2)
	h := r.Histogram("rt_seconds", "Latency with \"quotes\" and \\slash.", []float64{0.01, 0.1, 1}, L("endpoint", "solve"))
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition failed on own output:\n%s\nerr: %v", text, err)
	}
	byName := map[string]ParsedFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	cf, ok := byName["rt_requests_total"]
	if !ok || cf.Type != "counter" {
		t.Fatalf("rt_requests_total missing or wrong type: %+v", cf)
	}
	found := false
	for _, s := range cf.Samples {
		if s.Labels["endpoint"] == "solve" && s.Labels["code"] == "200" {
			found = true
			if s.Value != 3 {
				t.Fatalf("counter sample = %v, want 3", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("labelled counter sample not found")
	}
	hf, ok := byName["rt_seconds"]
	if !ok || hf.Type != "histogram" {
		t.Fatalf("rt_seconds missing or wrong type: %+v", hf)
	}
	var infVal, countVal float64
	for _, s := range hf.Samples {
		switch s.Name {
		case "rt_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				infVal = s.Value
			}
		case "rt_seconds_count":
			countVal = s.Value
		}
	}
	if infVal != 4 || countVal != 4 {
		t.Fatalf("+Inf bucket %v / count %v, want 4/4", infVal, countVal)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":            "orphan_total 3\n",
		"bad value":          "# TYPE x counter\nx notanumber\n",
		"bad name":           "# TYPE 0bad counter\n0bad 1\n",
		"non-monotone hist":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
		"missing +Inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\nh_sum 1\n",
		"+Inf != count":      "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_count 7\nh_sum 1\n",
		"unterminated label": "# TYPE x counter\nx{a=\"b 1\n",
		"unknown type":       "# TYPE x wat\nx 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestParseExpositionLabelEscapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("path", `a\b"c`+"\n"+"d")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("escape round-trip: %v", err)
	}
	want := `a\b"c` + "\n" + "d"
	for _, f := range fams {
		if f.Name != "esc_total" {
			continue
		}
		if got := f.Samples[0].Labels["path"]; got != want {
			t.Fatalf("label value = %q, want %q", got, want)
		}
		return
	}
	t.Fatal("esc_total family not parsed")
}

func TestStopwatchLap(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sw_seconds", "h", DefLatencyBuckets)
	var sw Stopwatch
	sw.Lap(h) // never started: no-op
	if h.Count() != 0 {
		t.Fatal("inert stopwatch recorded an observation")
	}
	sw.Start()
	sw.Lap(h)
	sw.Lap(h)
	if h.Count() != 2 {
		t.Fatalf("laps recorded = %d, want 2", h.Count())
	}
}

func TestBundleRecording(t *testing.T) {
	r := NewRegistry()
	lm := NewLPMetrics(r)
	lm.RecordSolve(10, 4, 7)
	lm.RecordSolve(20, 8, 3)
	if got := lm.Solves.Value(); got != 2 {
		t.Fatalf("solves = %d, want 2", got)
	}
	if got := lm.Pivots.Value(); got != 10 {
		t.Fatalf("pivots = %d, want 10", got)
	}
	if got := lm.Rows.Count(); got != 2 {
		t.Fatalf("rows observations = %d, want 2", got)
	}

	sm := NewSolveMetrics(r)
	sm.FullSolves.Inc()
	sm.CacheHits.Add(5)
	sm.CacheMisses.Add(2)
	dm := NewDistMetrics(r)
	dm.EngineRuns("sequential").Inc()
	dm.Messages.Add(12)
	dm.RoundMessages.Observe(12)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(&buf); err != nil {
		t.Fatalf("bundle exposition unparseable: %v", err)
	}
}
