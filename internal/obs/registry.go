package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instance of a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histograms only
	series []*series
	byKey  map[string]*series
}

// Registry owns metric families and hands out their series. Registration
// is idempotent on (name, labels): asking twice returns the same metric,
// so call sites don't coordinate. A nil *Registry hands out nil metrics —
// the disabled mode; every metric method is a no-op on nil.
//
// Registration takes a mutex; the returned metrics are lock-free. Hold
// metrics in struct fields at setup time rather than re-looking them up
// per operation.
type Registry struct {
	mu   sync.Mutex
	fams []*family // registration order, for stable exposition
	byN  map[string]*family
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Name)
		sb.WriteByte('\xff')
		sb.WriteString(l.Value)
		sb.WriteByte('\xfe')
	}
	return sb.String()
}

// sortedLabels returns a sorted copy so that label order at the call
// site doesn't create distinct series.
func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

func (r *Registry) fam(name, help string, k kind, bounds []float64) *family {
	f := r.byN[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, bounds: bounds, byKey: make(map[string]*series)}
		r.byN[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, k, f.kind))
	}
	return f
}

func (f *family) get(labels []Label) *series {
	ls := sortedLabels(labels)
	key := labelKey(ls)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: ls}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fam(name, help, kindCounter, nil).get(labels).c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fam(name, help, kindGauge, nil).get(labels).g
}

// Histogram registers (or returns the existing) histogram series with
// the given bucket upper bounds (ascending; +Inf is implicit). Bounds
// are fixed by the first registration of the family; later calls with
// different bounds still return the family's series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fam(name, help, kindHistogram, bounds).get(labels).h
}
