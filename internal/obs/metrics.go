// Package obs is the repo's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms) with an
// allocation-free atomic hot path, Prometheus text exposition (and a
// strict minimal parser for tests and the mmlpd self-check), and a
// structured trace facility (ring buffer of typed span events with an
// optional JSONL sink and a slow-span hook).
//
// The entire package follows one disabled-mode contract: a nil *Registry
// hands out nil metrics, and every method of every metric type is a
// no-op on a nil receiver. Instrumented code therefore never branches on
// a global "enabled" flag — it holds possibly-nil metric pointers and
// calls them unconditionally (guarding only the time.Now() reads, via
// Stopwatch, which is likewise inert when never started). Disabled-mode
// calls cost one predictable branch and zero allocations, which is what
// keeps the instrumented hot paths within the <2% overhead budget.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter is a no-op (the disabled mode).
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be ≥ 0; counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (CAS loop; gauges are rarely contended).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters:
// Observe is lock-free, allocation-free and safe under concurrent
// solves. Buckets are cumulative-upper-bound style (Prometheus "le"),
// with an implicit +Inf bucket; the bounds are fixed at registration —
// no resizing, no quantile sketches — so the hot path is a short linear
// scan (bucket counts are small) plus three atomic ops.
type Histogram struct {
	bounds []float64      // ascending upper bounds; implicit +Inf after
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-added
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the unit of every
// latency histogram in this package.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket that contains it — the standard Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket clamp to
// the largest finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := float64(h.count.Load())
	if total == 0 {
		return 0
	}
	target := q * total
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return lo // +Inf bucket: clamp to the last finite bound
			}
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += c
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// HistogramSnapshot is a point-in-time summary of a histogram, shaped
// for JSON stats endpoints (mmlpd /v1/stats) and bench reports.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarises the histogram. Concurrent Observes may skew the
// snapshot by a few in-flight observations; it is a monitoring read,
// not a barrier.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// DefLatencyBuckets spans 1µs to 2.5s — wide enough for a single ball-LP
// phase and a full cold solve alike. (Seconds, like every latency
// histogram here.)
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefSizeBuckets is a power-of-two ladder for discrete sizes (tableau
// dimensions, per-round message counts).
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// Stopwatch times consecutive phases of a pipeline. The zero value is
// inert: Lap on a never-started stopwatch does nothing, so instrumented
// code can lap unconditionally and pay time.Now() only when metrics are
// enabled (callers Start only under an enabled check).
type Stopwatch struct {
	last time.Time
}

// Start (re)arms the stopwatch at now.
func (sw *Stopwatch) Start() { sw.last = time.Now() }

// Lap observes the time since the previous Start/Lap into h (in
// seconds) and re-arms. No-op when the stopwatch was never started or h
// is nil.
func (sw *Stopwatch) Lap(h *Histogram) {
	if sw.last.IsZero() {
		return
	}
	now := time.Now()
	h.ObserveDuration(now.Sub(sw.last))
	sw.last = now
}
