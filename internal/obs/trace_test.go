package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanNoOps(t *testing.T) {
	var tr *Tracer
	tr.SetSink(&bytes.Buffer{})
	tr.SetSlow(time.Millisecond, func(Event) {})
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp.Phase("load")
	sp.Annotate("note")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	if evs := tr.Snapshot(); evs != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", evs)
	}
}

func TestSpanPhasesAndSummary(t *testing.T) {
	tr := NewTracer(64)
	sp := tr.StartSpan("solve")
	sp.Phase("load")
	sp.Phase("validate")
	sp.Annotate("inst=abc")
	total := sp.End()
	if total <= 0 {
		t.Fatalf("span total = %v, want > 0", total)
	}
	evs := tr.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3 (2 phases + summary)", len(evs))
	}
	if evs[0].Phase != "load" || evs[1].Phase != "validate" {
		t.Fatalf("phase order wrong: %+v", evs[:2])
	}
	sum := evs[2]
	if sum.Phase != "" || sum.Name != "solve" || sum.Note != "inst=abc" {
		t.Fatalf("summary event wrong: %+v", sum)
	}
	if sum.DurNs < evs[0].DurNs+evs[1].DurNs {
		t.Fatalf("summary %dns shorter than phase sum %dns", sum.DurNs, evs[0].DurNs+evs[1].DurNs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("sequence numbers not increasing: %+v", evs)
		}
		if evs[i].Span != evs[0].Span {
			t.Fatalf("span ids differ within one span: %+v", evs)
		}
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.StartSpan("s").End()
	}
	evs := tr.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot = %d events, want ring size 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("wrapped snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 40 {
		t.Fatalf("newest seq = %d, want 40", evs[len(evs)-1].Seq)
	}
}

func TestTracerJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(16)
	tr.SetSink(&buf)
	sp := tr.StartSpan("query")
	sp.Phase("solve")
	sp.End()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("sink line %d not JSON: %v: %s", n, err, sc.Text())
		}
		if e.Name != "query" {
			t.Fatalf("sink event name = %q, want query", e.Name)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("sink lines = %d, want 2", n)
	}
}

func TestSlowSpanHook(t *testing.T) {
	tr := NewTracer(16)
	var mu sync.Mutex
	var fired []Event
	tr.SetSlow(5*time.Millisecond, func(e Event) {
		mu.Lock()
		fired = append(fired, e)
		mu.Unlock()
	})
	fast := tr.StartSpan("fast")
	fast.End()
	slow := tr.StartSpan("slow")
	time.Sleep(10 * time.Millisecond)
	slow.End()
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0].Name != "slow" {
		t.Fatalf("slow hook fired %d times (%+v), want once for 'slow'", len(fired), fired)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(128)
	tr.SetSink(&syncBuffer{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpan("c")
				sp.Phase("p")
				sp.End()
			}
		}()
	}
	wg.Wait()
	evs := tr.Snapshot()
	if len(evs) != 128 {
		t.Fatalf("snapshot = %d, want full ring 128", len(evs))
	}
}

// syncBuffer is a goroutine-safe sink; Tracer serialises writes under
// its own mutex, but the bytes.Buffer race detector check is a useful
// canary if that ever changes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
