package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one sample
// line per series, histogram _bucket/_sum/_count expansion. Families
// appear in registration order and series are sorted by label key, so
// the output is deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		r.mu.Lock()
		ss := append([]*series(nil), f.series...)
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool {
			return labelKey(ss[i].labels) < labelKey(ss[j].labels)
		})
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(s.labels, ""), formatValue(float64(s.c.Value())))
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(s.labels, ""), formatValue(s.g.Value()))
			case kindHistogram:
				cum := int64(0)
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(s.labels, formatValue(b)), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(s.labels, "+Inf"), s.h.Count())
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(s.labels, ""), formatValue(s.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(s.labels, ""), s.h.Count())
			}
		}
	}
	return bw.Flush()
}

// labelString renders {a="x",b="y"} (plus le=bound for histogram
// buckets); empty when there are no labels and no bound.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`le="`)
		sb.WriteString(le)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParsedSample is one sample line from a Prometheus text exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family from a parsed exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseExposition parses the Prometheus text format strictly enough to
// gate CI: every sample must belong to a family declared by a preceding
// # TYPE line (allowing the _bucket/_sum/_count suffixes for
// histograms), values must be valid floats, histogram buckets must be
// cumulative-monotone with a +Inf bucket equal to _count. It returns the
// families in declaration order. The mmlpd -scrape self-check and the
// exposition golden tests share this parser, so an unparseable /metrics
// fails both.
func ParseExposition(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var fams []*ParsedFamily
	byName := map[string]*ParsedFamily{}
	declare := func(name string) *ParsedFamily {
		f := byName[name]
		if f == nil {
			f = &ParsedFamily{Name: name}
			byName[name] = f
			fams = append(fams, f)
		}
		return f
	}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				f := declare(fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", line, text)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", line, typ)
				}
				f := declare(name)
				if f.Type != "" && f.Type != typ {
					return nil, fmt.Errorf("obs: line %d: metric %q re-declared as %s, was %s", line, name, typ, f.Type)
				}
				f.Type = typ
			}
			continue
		}
		sample, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		f := familyFor(byName, sample.Name)
		if f == nil {
			return nil, fmt.Errorf("obs: line %d: sample %q has no preceding # TYPE declaration", line, sample.Name)
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]ParsedFamily, len(fams))
	for i, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
		out[i] = *f
	}
	return out, nil
}

// familyFor resolves a sample name to its declared family, stripping
// histogram/summary suffixes when the base family is declared.
func familyFor(byName map[string]*ParsedFamily, name string) *ParsedFamily {
	if f := byName[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := byName[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
				return f
			}
		}
	}
	return nil
}

func parseSampleLine(text string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(text, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	}
	s.Name = text[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := text[nameEnd:]
	if rest[0] == '{' {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("malformed sample value in %q", text)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, out map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var sb strings.Builder
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					sb.WriteByte('\n')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(c)
					sb.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			i++
		}
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unterminated value for label %q", name)
		}
		i++
		out[name] = sb.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return nil
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validateHistogram checks per-series bucket monotonicity and that the
// +Inf bucket agrees with _count.
func validateHistogram(f *ParsedFamily) error {
	type key = string
	buckets := map[key][]ParsedSample{}
	counts := map[key]float64{}
	hasCount := map[key]bool{}
	seriesKey := func(s ParsedSample) key {
		ls := make([]string, 0, len(s.Labels))
		for k, v := range s.Labels {
			if k == "le" {
				continue
			}
			ls = append(ls, k+"\xff"+v)
		}
		sort.Strings(ls)
		return strings.Join(ls, "\xfe")
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			buckets[seriesKey(s)] = append(buckets[seriesKey(s)], s)
		case f.Name + "_count":
			counts[seriesKey(s)] = s.Value
			hasCount[seriesKey(s)] = true
		}
	}
	for k, bs := range buckets {
		type bound struct {
			le  float64
			val float64
		}
		var ordered []bound
		var inf *bound
		for _, s := range bs {
			le, err := parseFloat(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", f.Name, s.Labels["le"])
			}
			b := bound{le: le, val: s.Value}
			if math.IsInf(le, 1) {
				inf = &b
				continue
			}
			ordered = append(ordered, b)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].le < ordered[j].le })
		prev := 0.0
		for _, b := range ordered {
			if b.val < prev {
				return fmt.Errorf("obs: histogram %s: bucket le=%v count %v below previous %v", f.Name, b.le, b.val, prev)
			}
			prev = b.val
		}
		if inf == nil {
			return fmt.Errorf("obs: histogram %s: series missing +Inf bucket", f.Name)
		}
		if inf.val < prev {
			return fmt.Errorf("obs: histogram %s: +Inf bucket %v below last finite bucket %v", f.Name, inf.val, prev)
		}
		if hasCount[k] && counts[k] != inf.val {
			return fmt.Errorf("obs: histogram %s: +Inf bucket %v != _count %v", f.Name, inf.val, counts[k])
		}
	}
	return nil
}
