package gen

import (
	"math/rand"
	"testing"

	"maxminlp/internal/hypergraph"
)

func TestEdgeInstanceShape(t *testing.T) {
	in, err := EdgeInstance(CycleAdjacency(10))
	if err != nil {
		t.Fatal(err)
	}
	if in.NumAgents() != 10 || in.NumResources() != 10 || in.NumParties() != 10 {
		t.Fatalf("shape: %s", in.Stats())
	}
	deg := in.Degrees()
	if deg.MaxVI != 2 || deg.MaxVK != 2 {
		t.Fatalf("ΔVI=%d ΔVK=%d, want 2/2 (the open-question regime)", deg.MaxVI, deg.MaxVK)
	}
	if deg.MaxIV != 2 || deg.MaxKV != 2 {
		t.Fatalf("cycle vertex degrees: %+v", deg)
	}
}

func TestEdgeInstanceTreeDegrees(t *testing.T) {
	in, err := EdgeInstance(CompleteTreeAdjacency(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	deg := in.Degrees()
	if deg.MaxVI != 2 || deg.MaxVK != 2 {
		t.Fatalf("hyperedge sizes: %+v", deg)
	}
	// Internal nodes touch arity+1 edges.
	if deg.MaxIV != 4 || deg.MaxKV != 4 {
		t.Fatalf("vertex degrees: %+v, want 4", deg)
	}
}

func TestEdgeInstanceRejectsIsolatedVertex(t *testing.T) {
	if _, err := EdgeInstance([][]int{{1}, {0}, {}}); err == nil {
		t.Fatal("isolated vertex must be rejected (unbounded variable)")
	}
}

func TestEdgeInstanceRejectsOutOfRange(t *testing.T) {
	if _, err := EdgeInstance([][]int{{5}}); err == nil {
		t.Fatal("out-of-range endpoint must be rejected")
	}
}

func TestEdgeInstanceDeduplicatesEdges(t *testing.T) {
	// Symmetric adjacency lists mention each edge twice; the instance
	// must contain it once.
	in, err := EdgeInstance([][]int{{1, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if in.NumResources() != 1 || in.NumParties() != 1 {
		t.Fatalf("shape: %s", in.Stats())
	}
}

func TestCompleteTreeAdjacency(t *testing.T) {
	adj := CompleteTreeAdjacency(2, 3)
	if len(adj) != 15 {
		t.Fatalf("nodes = %d, want 15", len(adj))
	}
	if len(adj[0]) != 2 {
		t.Fatalf("root degree = %d, want 2", len(adj[0]))
	}
	leaves := 0
	for _, ns := range adj {
		if len(ns) == 1 {
			leaves++
		}
	}
	if leaves != 8 {
		t.Fatalf("leaves = %d, want 8", leaves)
	}
}

func TestRandomRegularAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	adj, err := RandomRegularAdjacency(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v, ns := range adj {
		if len(ns) != 3 {
			t.Fatalf("vertex %d degree %d", v, len(ns))
		}
		seen := map[int]bool{}
		for _, u := range ns {
			if u == v || seen[u] {
				t.Fatalf("vertex %d: loop or parallel edge", v)
			}
			seen[u] = true
		}
	}
	// The instance built on it must be valid and connected enough to use.
	in, err := EdgeInstance(adj)
	if err != nil {
		t.Fatal(err)
	}
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	if g.MaxDegree() < 3 {
		t.Fatal("hypergraph degree too small")
	}
	// Parity constraint: odd n·d must fail.
	if _, err := RandomRegularAdjacency(5, 3, rng); err == nil {
		t.Fatal("odd n·d must fail")
	}
}
