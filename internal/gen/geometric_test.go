package gen

import (
	"math"
	"math/rand"
	"testing"

	"maxminlp/internal/hypergraph"
)

func TestUnitDiskValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, pos := UnitDisk(UnitDiskOptions{Nodes: 120, Radius: 0.12, MaxNeighbors: 4}, rng)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pos) != 120 || in.NumAgents() != 120 {
		t.Fatalf("agents %d positions %d", in.NumAgents(), len(pos))
	}
	deg := in.Degrees()
	if deg.MaxVI > 5 || deg.MaxVK > 5 {
		t.Fatalf("supports exceed cap+1: %+v", deg)
	}
	// Resource i is owned by node i; every member must be a geometric
	// neighbour of the owner.
	for i := 0; i < in.NumResources(); i++ {
		row := in.Resource(i)
		for _, e := range row {
			if e.Agent == i {
				continue
			}
			d := math.Hypot(pos[i][0]-pos[e.Agent][0], pos[i][1]-pos[e.Agent][1])
			if d > 0.12+1e-12 {
				t.Fatalf("resource %d includes node %d at distance %v > radius", i, e.Agent, d)
			}
		}
	}
}

func TestUnitDiskDeterministic(t *testing.T) {
	opt := UnitDiskOptions{Nodes: 50, Radius: 0.15, MaxNeighbors: 3}
	a, _ := UnitDisk(opt, rand.New(rand.NewSource(5)))
	b, _ := UnitDisk(opt, rand.New(rand.NewSource(5)))
	for i := 0; i < a.NumResources(); i++ {
		ra, rb := a.Resource(i), b.Resource(i)
		if len(ra) != len(rb) {
			t.Fatal("same seed, different instance")
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatal("same seed, different entries")
			}
		}
	}
}

func TestTreeInstanceShapeAndGrowth(t *testing.T) {
	in := TreeInstance(2, 5)
	want := 1<<6 - 1 // complete binary tree with 6 levels
	if in.NumAgents() != want {
		t.Fatalf("agents = %d, want %d", in.NumAgents(), want)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exponential growth: γ(r) stays well above 1 for every small r.
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	prof := g.GammaProfile(3)
	for r := 1; r <= 3; r++ {
		if prof[r] < 1.5 {
			t.Fatalf("tree γ(%d) = %v, expected bounded away from 1", r, prof[r])
		}
	}
	// Contrast: a long cycle's γ approaches 1.
	cyc, _ := Cycle(64, LatticeOptions{})
	gc := hypergraph.FromInstance(cyc, hypergraph.Options{})
	if gc.GammaProfile(3)[3] >= prof[3] {
		t.Fatal("cycle growth should be below tree growth at r=3")
	}
}

func TestTreeInstancePanicsOnBadArgs(t *testing.T) {
	for _, tc := range [][2]int{{0, 3}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TreeInstance(%d,%d) should panic", tc[0], tc[1])
				}
			}()
			TreeInstance(tc[0], tc[1])
		}()
	}
}
