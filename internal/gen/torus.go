// Package gen generates max-min LP instances and template graphs for
// experiments and tests: d-dimensional grid and torus families with
// polynomial neighbourhood growth (the "realistic" graphs of Section 5 of
// the paper), random bounded-degree instances, random regular bipartite
// graphs with girth certification, and deterministic projective-plane
// incidence graphs.
//
// All generators take an explicit *rand.Rand; none touch global state, so
// every instance is reproducible from its seed.
package gen

import (
	"fmt"
	"math/rand"

	"maxminlp/internal/mmlp"
)

// LatticeOptions configures Torus and Grid instance generation.
type LatticeOptions struct {
	// RandomWeights draws a_iv and c_kv uniformly from [0.5, 1.5) using
	// the provided generator instead of using unit coefficients.
	RandomWeights bool
	// Rng supplies randomness when RandomWeights is set; ignored (and may
	// be nil) otherwise.
	Rng *rand.Rand
}

// Lattice describes a d-dimensional lattice of agents; it maps between
// cell coordinates and agent indices.
type Lattice struct {
	Dims []int
	Wrap bool
}

// NumCells returns the number of lattice cells.
func (l *Lattice) NumCells() int {
	n := 1
	for _, d := range l.Dims {
		n *= d
	}
	return n
}

// Index converts cell coordinates to the dense agent index.
func (l *Lattice) Index(coord []int) int {
	idx := 0
	for axis, d := range l.Dims {
		c := coord[axis]
		if c < 0 || c >= d {
			panic(fmt.Sprintf("gen: coordinate %d out of range [0,%d)", c, d))
		}
		idx = idx*d + c
	}
	return idx
}

// Coord converts a dense agent index to cell coordinates.
func (l *Lattice) Coord(idx int) []int {
	coord := make([]int, len(l.Dims))
	for axis := len(l.Dims) - 1; axis >= 0; axis-- {
		coord[axis] = idx % l.Dims[axis]
		idx /= l.Dims[axis]
	}
	return coord
}

// Neighborhood returns the cell itself plus its von-Neumann neighbours
// (±1 along each axis), respecting wraparound, sorted and deduplicated.
func (l *Lattice) Neighborhood(idx int) []int {
	coord := l.Coord(idx)
	out := []int{idx}
	for axis, d := range l.Dims {
		for _, delta := range []int{-1, 1} {
			c := coord[axis] + delta
			if l.Wrap {
				c = ((c % d) + d) % d
			} else if c < 0 || c >= d {
				continue
			}
			old := coord[axis]
			coord[axis] = c
			out = append(out, l.Index(coord))
			coord[axis] = old
		}
	}
	return dedupInts(out)
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Torus builds a max-min LP on a d-dimensional torus with the given side
// lengths: one agent per cell, one resource per cell constraining the cell
// and its 2d lattice neighbours, and one party per cell benefiting from
// the same neighbourhood. The communication hypergraph has polynomial
// neighbourhood growth, γ(r) = 1 + Θ(1/r) for fixed d, which makes the
// Theorem-3 algorithm a local approximation scheme on this family
// (Section 5 of the paper).
func Torus(dims []int, opt LatticeOptions) (*mmlp.Instance, *Lattice) {
	return lattice(dims, true, opt)
}

// Grid is Torus without wraparound (cells at the boundary have smaller
// neighbourhoods).
func Grid(dims []int, opt LatticeOptions) (*mmlp.Instance, *Lattice) {
	return lattice(dims, false, opt)
}

func lattice(dims []int, wrap bool, opt LatticeOptions) (*mmlp.Instance, *Lattice) {
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("gen: lattice dimension %d < 1", d))
		}
		if wrap && d < 3 && len(dims) > 0 {
			// Side 1 or 2 with wraparound duplicates neighbours; allowed,
			// dedup handles it, but degenerate. Accept silently.
			_ = d
		}
	}
	l := &Lattice{Dims: append([]int(nil), dims...), Wrap: wrap}
	n := l.NumCells()
	b := mmlp.NewBuilder(n)
	coeff := func() float64 {
		if opt.RandomWeights {
			return 0.5 + opt.Rng.Float64()
		}
		return 1
	}
	for cell := 0; cell < n; cell++ {
		hood := l.Neighborhood(cell)
		res := make([]mmlp.Entry, len(hood))
		par := make([]mmlp.Entry, len(hood))
		for j, v := range hood {
			res[j] = mmlp.Entry{Agent: v, Coeff: coeff()}
			par[j] = mmlp.Entry{Agent: v, Coeff: coeff()}
		}
		b.AddResource(res...)
		b.AddParty(par...)
	}
	return b.MustBuild(), l
}

// Path builds a 1-dimensional grid instance with n agents.
func Path(n int, opt LatticeOptions) (*mmlp.Instance, *Lattice) {
	return Grid([]int{n}, opt)
}

// Cycle builds a 1-dimensional torus instance with n agents.
func Cycle(n int, opt LatticeOptions) (*mmlp.Instance, *Lattice) {
	return Torus([]int{n}, opt)
}
