package gen

import (
	"math"
	"math/rand"
	"sort"

	"maxminlp/internal/mmlp"
)

// UnitDiskOptions configures geometric instance generation.
type UnitDiskOptions struct {
	// Nodes is the number of agents, placed uniformly in the unit square.
	Nodes int
	// Radius is the connection radius: two nodes interact when their
	// Euclidean distance is at most Radius.
	Radius float64
	// MaxNeighbors truncates each node's interaction set to its nearest
	// MaxNeighbors nodes, keeping the support sizes (and hence ΔVI, ΔVK)
	// bounded as the paper requires; 0 means no cap.
	MaxNeighbors int
	// RandomWeights draws coefficients from [0.5, 1.5) instead of 1.
	RandomWeights bool
}

// UnitDisk generates a max-min LP whose communication structure is a
// unit-disk graph: one agent per node, one resource and one party per
// node, each supported by the node and its (truncated) disk neighbours.
// Section 5 of the paper argues that nodes embedded in low-dimensional
// physical space with bounded-range radios yield polynomially growing
// neighbourhoods, making the Theorem-3 algorithm effective; this
// generator provides exactly that workload. It returns the instance and
// the node positions.
func UnitDisk(opt UnitDiskOptions, rng *rand.Rand) (*mmlp.Instance, [][2]float64) {
	if opt.Nodes < 1 {
		panic("gen: UnitDisk needs ≥ 1 node")
	}
	if opt.Radius <= 0 {
		panic("gen: UnitDisk needs a positive radius")
	}
	pos := make([][2]float64, opt.Nodes)
	for i := range pos {
		pos[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	dist := func(a, b int) float64 {
		return math.Hypot(pos[a][0]-pos[b][0], pos[a][1]-pos[b][1])
	}
	b := mmlp.NewBuilder(opt.Nodes)
	coeff := func() float64 {
		if opt.RandomWeights {
			return 0.5 + rng.Float64()
		}
		return 1
	}
	for v := 0; v < opt.Nodes; v++ {
		var hood []int
		for u := 0; u < opt.Nodes; u++ {
			if u != v && dist(v, u) <= opt.Radius {
				hood = append(hood, u)
			}
		}
		if opt.MaxNeighbors > 0 && len(hood) > opt.MaxNeighbors {
			sort.Slice(hood, func(a, c int) bool { return dist(v, hood[a]) < dist(v, hood[c]) })
			hood = hood[:opt.MaxNeighbors]
			sort.Ints(hood)
		}
		support := append([]int{v}, hood...)
		res := make([]mmlp.Entry, len(support))
		par := make([]mmlp.Entry, len(support))
		for j, u := range support {
			res[j] = mmlp.Entry{Agent: u, Coeff: coeff()}
			par[j] = mmlp.Entry{Agent: u, Coeff: coeff()}
		}
		b.AddResource(res...)
		b.AddParty(par...)
	}
	return b.MustBuild(), pos
}

// TreeInstance builds a max-min LP on a complete tree of the given arity
// and height: one agent per tree node, a resource per internal node
// covering it and its children, and a party per internal node over the
// same set. Its communication hypergraph has exponential neighbourhood
// growth — γ(r) stays bounded away from 1 — so it is the contrast case
// where Theorem 3's guarantee degrades, exactly as the Section-4 lower
// bound predicts it must.
func TreeInstance(arity, height int) *mmlp.Instance {
	if arity < 1 || height < 1 {
		panic("gen: TreeInstance needs arity ≥ 1 and height ≥ 1")
	}
	b := mmlp.NewBuilder(0)
	root := b.AddAgent()
	level := []int{root}
	for h := 1; h <= height; h++ {
		var next []int
		for _, parent := range level {
			family := []int{parent}
			for c := 0; c < arity; c++ {
				child := b.AddAgent()
				family = append(family, child)
				next = append(next, child)
			}
			b.AddUnitResource(family...)
			b.AddUniformParty(1, family...)
		}
		level = next
	}
	return b.MustBuild()
}
