package gen

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

func TestLatticeIndexCoordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ndims := 1 + r.Intn(3)
		dims := make([]int, ndims)
		for i := range dims {
			dims[i] = 1 + r.Intn(6)
		}
		l := &Lattice{Dims: dims}
		for idx := 0; idx < l.NumCells(); idx++ {
			if l.Index(l.Coord(idx)) != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusShape(t *testing.T) {
	in, l := Torus([]int{4, 5}, LatticeOptions{})
	if in.NumAgents() != 20 || in.NumResources() != 20 || in.NumParties() != 20 {
		t.Fatalf("shape: %s", in.Stats())
	}
	deg := in.Degrees()
	// Closed von-Neumann neighbourhood in 2D: 5 cells.
	if deg.MaxVI != 5 || deg.MaxVK != 5 || deg.MaxIV != 5 || deg.MaxKV != 5 {
		t.Fatalf("degrees: %+v", deg)
	}
	// Wraparound: cell (0,0) neighbours include (3,0) and (0,4).
	hood := l.Neighborhood(0)
	want := []int{0, 5, 15, 1, 4}
	for _, w := range want {
		found := false
		for _, h := range hood {
			if h == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("neighbourhood of cell 0 = %v missing %d", hood, w)
		}
	}
}

func TestGridBoundary(t *testing.T) {
	in, l := Grid([]int{3, 3}, LatticeOptions{})
	// Corner has 3 cells in its closed neighbourhood, centre has 5.
	if got := len(l.Neighborhood(0)); got != 3 {
		t.Fatalf("corner neighbourhood size = %d, want 3", got)
	}
	if got := len(l.Neighborhood(4)); got != 5 {
		t.Fatalf("centre neighbourhood size = %d, want 5", got)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRandomWeightsDeterministic(t *testing.T) {
	a, _ := Torus([]int{6}, LatticeOptions{RandomWeights: true, Rng: rand.New(rand.NewSource(3))})
	b, _ := Torus([]int{6}, LatticeOptions{RandomWeights: true, Rng: rand.New(rand.NewSource(3))})
	for i := 0; i < a.NumResources(); i++ {
		if !reflect.DeepEqual(a.Resource(i), b.Resource(i)) {
			t.Fatal("same seed must give identical instances")
		}
	}
	c, _ := Torus([]int{6}, LatticeOptions{RandomWeights: true, Rng: rand.New(rand.NewSource(4))})
	same := true
	for i := 0; i < a.NumResources(); i++ {
		if !reflect.DeepEqual(a.Resource(i), c.Resource(i)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different coefficients")
	}
}

func TestRandomInstanceValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		opt := RandomOptions{
			Agents: 1 + r.Intn(30), Resources: r.Intn(20),
			Parties: 1 + r.Intn(10), MaxVI: 1 + r.Intn(5), MaxVK: 1 + r.Intn(5),
		}
		in := Random(opt, r)
		if in.Validate() != nil {
			return false
		}
		deg := in.Degrees()
		return deg.MaxVI <= opt.MaxVI && deg.MaxVK <= opt.MaxVK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSafeTightShape(t *testing.T) {
	in := SafeTight(4, 3)
	if in.NumAgents() != 12 || in.NumResources() != 3 || in.NumParties() != 3 {
		t.Fatalf("shape: %s", in.Stats())
	}
	if got := in.Degrees().MaxVI; got != 4 {
		t.Fatalf("ΔVI = %d, want 4", got)
	}
}

func TestRandomRegularBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ m, degree int }{
		{5, 1}, {8, 3}, {20, 7}, {40, 12},
	} {
		b, err := RandomRegularBipartite(tc.m, tc.degree, rng)
		if err != nil {
			t.Fatalf("m=%d d=%d: %v", tc.m, tc.degree, err)
		}
		if !b.IsRegular(tc.degree) {
			t.Fatalf("m=%d d=%d: not regular", tc.m, tc.degree)
		}
		// Simplicity: neighbour lists have no duplicates.
		for v, ns := range b.Adj {
			seen := map[int]bool{}
			for _, u := range ns {
				if seen[u] {
					t.Fatalf("m=%d d=%d: duplicate edge %d-%d", tc.m, tc.degree, v, u)
				}
				seen[u] = true
			}
		}
		// Bipartiteness: left vertices only touch right vertices.
		for v := 0; v < b.Left; v++ {
			for _, u := range b.Adj[v] {
				if u < b.Left {
					t.Fatalf("edge inside left side: %d-%d", v, u)
				}
			}
		}
	}
	if _, err := RandomRegularBipartite(3, 5, rng); err == nil {
		t.Fatal("degree > m must fail")
	}
}

func TestGirthSixBipartite(t *testing.T) {
	for degree := 1; degree <= 12; degree++ {
		b, err := GirthSixBipartite(degree)
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsRegular(degree) {
			t.Fatalf("degree %d: not regular", degree)
		}
		g := b.Graph().Girth()
		if g >= 0 && g < 6 {
			t.Fatalf("degree %d: girth %d < 6", degree, g)
		}
	}
	if _, err := GirthSixBipartite(0); err == nil {
		t.Fatal("degree 0 must fail")
	}
}

func TestLongCycleBipartite(t *testing.T) {
	for _, length := range []int{4, 6, 10, 14} {
		b, err := LongCycleBipartite(length)
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsRegular(2) {
			t.Fatalf("length %d: not 2-regular", length)
		}
		if g := b.Graph().Girth(); g != length {
			t.Fatalf("length %d: girth %d", length, g)
		}
	}
	for _, bad := range []int{2, 5, 7} {
		if _, err := LongCycleBipartite(bad); err == nil {
			t.Fatalf("length %d must fail", bad)
		}
	}
}

func TestRegularBipartiteWithGirth(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ degree, minCycle int }{
		{1, 10}, {2, 10}, {2, 14}, {3, 6}, {5, 6}, {9, 6},
	} {
		b, err := RegularBipartiteWithGirth(tc.degree, tc.minCycle, 0, rng)
		if err != nil {
			t.Fatalf("degree=%d minCycle=%d: %v", tc.degree, tc.minCycle, err)
		}
		if !b.IsRegular(tc.degree) {
			t.Fatalf("degree=%d: not regular", tc.degree)
		}
		if g := b.Graph().Girth(); g >= 0 && g < tc.minCycle {
			t.Fatalf("degree=%d minCycle=%d: girth %d", tc.degree, tc.minCycle, g)
		}
	}
	// Degree ≥ 3 with girth > 6 requires a caller-supplied template: the
	// expected number of short cycles in random regular graphs does not
	// vanish with size, so rejection sampling cannot certify it. Without
	// an rng the call fails immediately with a helpful error.
	if _, err := RegularBipartiteWithGirth(9, 10, 0, nil); err == nil {
		t.Fatal("degree 9 girth 10 without rng must fail")
	}
}

func TestProjectivePlaneIncidence(t *testing.T) {
	for _, p := range []int{2, 3, 5, 7} {
		b, err := ProjectivePlaneIncidence(p)
		if err != nil {
			t.Fatal(err)
		}
		n := p*p + p + 1
		if b.Left != n || b.Right != n {
			t.Fatalf("PG(2,%d): %d+%d vertices, want %d per side", p, b.Left, b.Right, n)
		}
		if !b.IsRegular(p + 1) {
			t.Fatalf("PG(2,%d): not (p+1)-regular", p)
		}
	}
	for _, bad := range []int{1, 4, 6, 9} {
		if _, err := ProjectivePlaneIncidence(bad); err == nil {
			t.Fatalf("non-prime %d must fail", bad)
		}
	}
}

func TestBipartiteGraphConversion(t *testing.T) {
	b, err := LongCycleBipartite(8)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Graph()
	if g.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex count mismatch: %d vs %d", g.NumVertices(), b.NumVertices())
	}
	var _ *hypergraph.Graph = g
	if b.Degree(0) != 2 {
		t.Fatalf("degree(0) = %d", b.Degree(0))
	}
}

// instanceText serializes an instance canonically for equality checks.
func instanceText(t *testing.T, in *mmlp.Instance) string {
	t.Helper()
	var buf bytes.Buffer
	if err := in.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSeededGeneratorsDeterministic pins the package contract stated in
// the doc comment: every generator is a pure function of its explicit
// *rand.Rand, so the same seed reproduces the identical instance — the
// property the engine-agreement tests and the CI benchmarks rely on.
func TestSeededGeneratorsDeterministic(t *testing.T) {
	builds := map[string]func(seed int64) *mmlp.Instance{
		"random": func(seed int64) *mmlp.Instance {
			return Random(RandomOptions{
				Agents: 25, Resources: 20, Parties: 10, MaxVI: 3, MaxVK: 3,
			}, rand.New(rand.NewSource(seed)))
		},
		"unitdisk": func(seed int64) *mmlp.Instance {
			in, _ := UnitDisk(UnitDiskOptions{
				Nodes: 30, Radius: 0.3, MaxNeighbors: 4, RandomWeights: true,
			}, rand.New(rand.NewSource(seed)))
			return in
		},
		"torus-weighted": func(seed int64) *mmlp.Instance {
			in, _ := Torus([]int{5, 5}, LatticeOptions{
				RandomWeights: true, Rng: rand.New(rand.NewSource(seed)),
			})
			return in
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			a := instanceText(t, build(42))
			if b := instanceText(t, build(42)); a != b {
				t.Fatal("same seed must reproduce the identical instance")
			}
			if c := instanceText(t, build(43)); a == c {
				t.Fatal("different seeds should give different instances")
			}
		})
	}

	adjA, err := RandomRegularAdjacency(20, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	adjB, err := RandomRegularAdjacency(20, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adjA, adjB) {
		t.Fatal("RandomRegularAdjacency must be reproducible from the seed")
	}
}
