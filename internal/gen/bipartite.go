package gen

import (
	"fmt"
	"math/rand"

	"maxminlp/internal/hypergraph"
)

// Bipartite is a bipartite graph with Left vertices 0..Left-1 and Right
// vertices Left..Left+Right-1.
type Bipartite struct {
	Left, Right int
	Adj         [][]int
}

// NumVertices returns the total vertex count.
func (b *Bipartite) NumVertices() int { return b.Left + b.Right }

// Graph converts to a hypergraph.Graph for distance and girth queries.
func (b *Bipartite) Graph() *hypergraph.Graph { return hypergraph.FromAdjacency(b.Adj) }

// Degree returns the degree of vertex v.
func (b *Bipartite) Degree(v int) int { return len(b.Adj[v]) }

// IsRegular reports whether every vertex has the given degree.
func (b *Bipartite) IsRegular(degree int) bool {
	for v := range b.Adj {
		if len(b.Adj[v]) != degree {
			return false
		}
	}
	return true
}

// RandomRegularBipartite samples a simple degree-regular bipartite graph
// with m vertices per side using the permutation model: the union of
// `degree` uniformly random perfect matchings, resampled on collision.
// Fails if degree > m.
func RandomRegularBipartite(m, degree int, rng *rand.Rand) (*Bipartite, error) {
	if degree > m {
		return nil, fmt.Errorf("gen: degree %d exceeds side size %d", degree, m)
	}
	adj := make([][]int, 2*m)
	used := make([]map[int]bool, m)
	for i := range used {
		used[i] = make(map[int]bool, degree)
	}
	for d := 0; d < degree; d++ {
		perm := rng.Perm(m)
		// Repair collisions with the union of previous matchings by random
		// transpositions; each swap strictly reduces the expected number of
		// collisions, so this converges quickly for degree < m.
		budget := 100 * (m + degree)
		for {
			bad := -1
			for l := 0; l < m; l++ {
				if used[l][perm[l]] {
					bad = l
					break
				}
			}
			if bad < 0 {
				break
			}
			if budget--; budget < 0 {
				return nil, fmt.Errorf("gen: failed to sample a simple %d-regular bipartite graph on 2×%d vertices", degree, m)
			}
			other := rng.Intn(m)
			if other == bad {
				continue
			}
			if !used[bad][perm[other]] && !used[other][perm[bad]] {
				perm[bad], perm[other] = perm[other], perm[bad]
			}
		}
		for l := 0; l < m; l++ {
			used[l][perm[l]] = true
			adj[l] = append(adj[l], m+perm[l])
			adj[m+perm[l]] = append(adj[m+perm[l]], l)
		}
	}
	return &Bipartite{Left: m, Right: m, Adj: adj}, nil
}

// GirthSixBipartite deterministically builds a degree-regular bipartite
// graph with girth ≥ 6 for any degree ≥ 1, using a point–line incidence
// construction in the style of Wenger and Lazebnik–Ustimenko: with q the
// smallest prime ≥ degree, points are pairs (p₁, p₂) and lines pairs
// (l₁, l₂) with p₁, l₁ < degree and p₂, l₂ ∈ GF(q), and (p₁,p₂) lies on
// (l₁,l₂) iff p₂ + l₂ = p₁·l₁ (mod q). Two points (p₁,p₂) ≠ (p₁',p₂')
// determine at most one common line — l₁(p₁−p₁') = p₂−p₂' has at most one
// solution — so there is no 4-cycle. Each side has degree·q vertices.
func GirthSixBipartite(degree int) (*Bipartite, error) {
	if degree < 1 {
		return nil, fmt.Errorf("gen: degree must be ≥ 1, got %d", degree)
	}
	q := degree
	for !isPrime(q) {
		q++
	}
	if degree == 1 {
		q = 2
	}
	side := degree * q
	adj := make([][]int, 2*side)
	idx := func(a, b int) int { return a*q + b }
	for p1 := 0; p1 < degree; p1++ {
		for p2 := 0; p2 < q; p2++ {
			point := idx(p1, p2)
			for l1 := 0; l1 < degree; l1++ {
				l2 := ((p1*l1-p2)%q + q) % q
				line := side + idx(l1, l2)
				adj[point] = append(adj[point], line)
				adj[line] = append(adj[line], point)
			}
		}
	}
	return &Bipartite{Left: side, Right: side, Adj: adj}, nil
}

// LongCycleBipartite builds a single cycle of the given even length ≥ 4
// viewed as a 2-regular bipartite graph (vertices alternate sides); its
// girth is exactly the cycle length, so any girth requirement can be met
// deterministically at degree 2.
func LongCycleBipartite(length int) (*Bipartite, error) {
	if length < 4 || length%2 != 0 {
		return nil, fmt.Errorf("gen: cycle length must be even and ≥ 4, got %d", length)
	}
	m := length / 2
	adj := make([][]int, length)
	// Even positions are left vertices 0..m-1, odd positions are right
	// vertices m..2m-1; position 2i ↔ left i, position 2i+1 ↔ right i.
	vertexAt := func(pos int) int {
		if pos%2 == 0 {
			return pos / 2
		}
		return m + pos/2
	}
	for pos := 0; pos < length; pos++ {
		a, b := vertexAt(pos), vertexAt((pos+1)%length)
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return &Bipartite{Left: m, Right: m, Adj: adj}, nil
}

// RegularBipartiteWithGirth returns a degree-regular bipartite graph with
// no cycle shorter than minCycle edges, certifying the girth exactly.
// This realises the template graph Q of Section 4.2, which must have no
// cycle of fewer than 4r+2 edges.
//
// Strategy: degree 1 (forests) and degree 2 (one long cycle) are built
// directly for any girth; for minCycle ≤ 6 the deterministic
// GirthSixBipartite construction covers every degree; beyond that we fall
// back to rejection sampling, which only succeeds for very small degrees —
// the number of short cycles in a random regular graph is asymptotically
// Poisson with mean (degree−1)^len/len independent of the graph size
// (McKay–Wormald–Wysocka), so for larger degrees a caller-supplied
// template (e.g. a generalized-polygon incidence graph) is required.
// startM ≤ 0 picks a heuristic initial size for the random fallback.
func RegularBipartiteWithGirth(degree, minCycle, startM int, rng *rand.Rand) (*Bipartite, error) {
	switch {
	case degree < 1:
		return nil, fmt.Errorf("gen: degree must be ≥ 1, got %d", degree)
	case degree == 1:
		// A perfect matching is acyclic; any size works.
		return RandomRegularBipartite(max(startM, 2), 1, rng)
	case degree == 2:
		length := max(minCycle, 6)
		if length%2 != 0 {
			length++
		}
		return LongCycleBipartite(2 * length) // margin keeps Q non-degenerate
	case minCycle <= 6:
		return GirthSixBipartite(degree)
	}
	if rng == nil {
		return nil, fmt.Errorf("gen: girth ≥ %d at degree %d needs random sampling; provide an rng or a template", minCycle, degree)
	}
	m := startM
	if m <= 0 {
		m = degree * degree
		for g := 6; g < minCycle; g += 2 {
			m *= degree
		}
		m = max(m, 2*degree)
	}
	const sizeDoublings = 8
	for grow := 0; grow < sizeDoublings; grow++ {
		for attempt := 0; attempt < 30; attempt++ {
			b, err := RandomRegularBipartite(m, degree, rng)
			if err != nil {
				return nil, err
			}
			g := b.Graph().Girth()
			if g < 0 || g >= minCycle {
				return b, nil
			}
		}
		m *= 2
	}
	return nil, fmt.Errorf("gen: no %d-regular bipartite graph with girth ≥ %d found up to m=%d (supply a template; random short-cycle counts do not vanish with size)", degree, minCycle, m)
}

// ProjectivePlaneIncidence builds the point–line incidence graph of the
// projective plane PG(2, p) over GF(p) for a prime p: a deterministic
// (p+1)-regular bipartite graph on 2(p²+p+1) vertices with girth exactly
// 6. It provides derandomised templates Q for the r = 1 case of the
// Section-4 construction (which needs girth ≥ 4·1+2 = 6).
func ProjectivePlaneIncidence(p int) (*Bipartite, error) {
	if p < 2 || !isPrime(p) {
		return nil, fmt.Errorf("gen: %d is not a prime ≥ 2", p)
	}
	// Canonical representatives of the projective points: (1, a, b),
	// (0, 1, a), (0, 0, 1).
	type pt [3]int
	var pts []pt
	for a := 0; a < p; a++ {
		for bb := 0; bb < p; bb++ {
			pts = append(pts, pt{1, a, bb})
		}
	}
	for a := 0; a < p; a++ {
		pts = append(pts, pt{0, 1, a})
	}
	pts = append(pts, pt{0, 0, 1})
	n := len(pts) // p²+p+1

	adj := make([][]int, 2*n)
	for li, line := range pts {
		for pi, point := range pts {
			dot := (line[0]*point[0] + line[1]*point[1] + line[2]*point[2]) % p
			if dot == 0 {
				adj[n+li] = append(adj[n+li], pi)
				adj[pi] = append(adj[pi], n+li)
			}
		}
	}
	return &Bipartite{Left: n, Right: n, Adj: adj}, nil
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
