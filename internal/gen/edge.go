package gen

import (
	"fmt"
	"math/rand"

	"maxminlp/internal/mmlp"
)

// EdgeInstance builds a max-min LP in which every hyperedge has exactly
// two agents: for every edge {u, v} of the supplied graph there is one
// unit resource x_u + x_v ≤ 1 and one party ω ≤ x_u + x_v. The resulting
// instance has ΔVI = ΔVK = 2 (with ΔIV = ΔKV = deg), which is precisely
// the parameter regime the paper leaves open: Section 4 shows no local
// approximation scheme exists once ΔVI ≥ 3 or ΔVK ≥ 3, but states that
// "in the case ΔVI = ΔVK = 2 the existence of a local approximation
// scheme remains an open question". Experiment E10 probes this regime
// empirically.
//
// adj must be symmetric; self-loops are ignored. Isolated vertices are
// rejected (their variable would be unconstrained).
func EdgeInstance(adj [][]int) (*mmlp.Instance, error) {
	n := len(adj)
	b := mmlp.NewBuilder(n)
	seen := make(map[[2]int]bool)
	for u, ns := range adj {
		for _, v := range ns {
			if v == u {
				continue
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("gen: edge endpoint %d out of range", v)
			}
			key := [2]int{min(u, v), max(u, v)}
			if seen[key] {
				continue
			}
			seen[key] = true
			b.AddUnitResource(key[0], key[1])
			b.AddUniformParty(1, key[0], key[1])
		}
	}
	return b.Build()
}

// CompleteTreeAdjacency returns the adjacency lists of a complete tree
// with the given arity and height (vertices in BFS order, root 0).
func CompleteTreeAdjacency(arity, height int) [][]int {
	if arity < 1 || height < 0 {
		panic("gen: need arity ≥ 1 and height ≥ 0")
	}
	var adj [][]int
	adj = append(adj, nil)
	level := []int{0}
	for h := 1; h <= height; h++ {
		var next []int
		for _, p := range level {
			for c := 0; c < arity; c++ {
				child := len(adj)
				adj = append(adj, []int{p})
				adj[p] = append(adj[p], child)
				next = append(next, child)
			}
		}
		level = next
	}
	return adj
}

// CycleAdjacency returns the adjacency lists of an n-cycle.
func CycleAdjacency(n int) [][]int {
	if n < 3 {
		panic("gen: cycle needs ≥ 3 vertices")
	}
	adj := make([][]int, n)
	for v := range adj {
		adj[v] = []int{(v + 1) % n, (v - 1 + n) % n}
	}
	return adj
}

// RandomRegularAdjacency samples a d-regular simple graph on n vertices
// by the pairing model with rejection-and-retry. Such graphs are locally
// tree-like (few short cycles), making them the interesting hard case
// for the ΔVI = ΔVK = 2 open question.
func RandomRegularAdjacency(n, d int, rng *rand.Rand) ([][]int, error) {
	if n*d%2 != 0 || d >= n {
		return nil, fmt.Errorf("gen: no %d-regular graph on %d vertices", d, n)
	}
	for attempt := 0; attempt < 500; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for j := 0; j < d; j++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		adj := make([][]int, n)
		used := make(map[[2]int]bool)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			key := [2]int{min(u, v), max(u, v)}
			if u == v || used[key] {
				ok = false
				break
			}
			used[key] = true
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
		if ok {
			return adj, nil
		}
	}
	return nil, fmt.Errorf("gen: failed to sample a simple %d-regular graph on %d vertices", d, n)
}
