package gen

import (
	"fmt"
	"math/rand"

	"maxminlp/internal/mmlp"
)

// RandomOptions configures Random instance generation.
type RandomOptions struct {
	Agents    int
	Resources int
	Parties   int
	// MaxVI and MaxVK bound the support sizes |Vi| and |Vk| (each support
	// is drawn uniformly between 1 and the bound, from distinct agents).
	MaxVI int
	MaxVK int
	// UnitCoefficients forces a_iv = c_kv = 1 (the Section-4 setting);
	// otherwise coefficients are uniform in [0.5, 1.5).
	UnitCoefficients bool
}

// Random generates a random bounded-degree max-min LP. Every agent is
// guaranteed to consume at least one resource (the paper's Iv ≠ ∅
// assumption): after drawing the requested resources, agents that remain
// uncovered receive an extra singleton resource. The number of resources
// in the result may therefore exceed opt.Resources.
func Random(opt RandomOptions, rng *rand.Rand) *mmlp.Instance {
	if opt.Agents < 1 {
		panic(fmt.Sprintf("gen: need ≥ 1 agent, got %d", opt.Agents))
	}
	if opt.MaxVI < 1 || opt.MaxVK < 1 {
		panic("gen: MaxVI and MaxVK must be ≥ 1")
	}
	b := mmlp.NewBuilder(opt.Agents)
	coeff := func() float64 {
		if opt.UnitCoefficients {
			return 1
		}
		return 0.5 + rng.Float64()
	}
	support := func(maxSize int) []int {
		size := 1 + rng.Intn(maxSize)
		if size > opt.Agents {
			size = opt.Agents
		}
		seen := make(map[int]bool, size)
		out := make([]int, 0, size)
		for len(out) < size {
			v := rng.Intn(opt.Agents)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}

	covered := make([]bool, opt.Agents)
	for i := 0; i < opt.Resources; i++ {
		agents := support(opt.MaxVI)
		entries := make([]mmlp.Entry, len(agents))
		for j, v := range agents {
			entries[j] = mmlp.Entry{Agent: v, Coeff: coeff()}
			covered[v] = true
		}
		b.AddResource(entries...)
	}
	for v, ok := range covered {
		if !ok {
			b.AddResource(mmlp.Entry{Agent: v, Coeff: coeff()})
		}
	}
	for k := 0; k < opt.Parties; k++ {
		agents := support(opt.MaxVK)
		entries := make([]mmlp.Entry, len(agents))
		for j, v := range agents {
			entries[j] = mmlp.Entry{Agent: v, Coeff: coeff()}
		}
		b.AddParty(entries...)
	}
	return b.MustBuild()
}

// SafeTight builds the family of instances on which the safe algorithm is
// a factor ≈ ΔVI off the optimum, demonstrating tightness of its analysis
// (E3). The instance has m "stars": star s has a hub agent h_s and ΔVI−1
// satellite agents, all sharing resource s (so |V_s| = ΔVI). Party s
// benefits only from the hub of star s. The optimum puts all of resource
// s into the hub (x_{h_s} = 1, ω* = 1) while the safe solution spreads it
// (x_{h_s} = 1/ΔVI, ω = 1/ΔVI), so opt/safe = ΔVI exactly.
func SafeTight(deltaVI, stars int) *mmlp.Instance {
	if deltaVI < 1 || stars < 1 {
		panic("gen: SafeTight needs deltaVI ≥ 1 and stars ≥ 1")
	}
	b := mmlp.NewBuilder(0)
	for s := 0; s < stars; s++ {
		hub := b.AddAgent()
		members := []int{hub}
		for j := 0; j < deltaVI-1; j++ {
			members = append(members, b.AddAgent())
		}
		b.AddUnitResource(members...)
		b.AddUniformParty(1, hub)
	}
	return b.MustBuild()
}
