package gen

import (
	"math/rand"

	"maxminlp/internal/mmlp"
)

// RandomTopoBatch samples nops random structural updates against the
// instance — agents joining and leaving, support entries appearing and
// disappearing, rows being created and dying — the churn workload of a
// dynamic deployment (fleets joining a service, sensors being installed
// and failing). Each op is constructed to be valid against the state the
// preceding ops produce, and the batch keeps the instance solvable: no
// op leaves an agent that benefits a party without a resource, so every
// local LP of the mutated instance stays bounded. It returns the batch
// and the mutated instance (the batch applied to in).
func RandomTopoBatch(in *mmlp.Instance, rng *rand.Rand, nops int) ([]mmlp.TopoUpdate, *mmlp.Instance) {
	cur := in
	ops := make([]mmlp.TopoUpdate, 0, nops)
	for len(ops) < nops {
		op, ok := randomTopoOp(cur, rng)
		if !ok {
			op = mmlp.AddAgent()
		}
		next, _, err := cur.ApplyTopo([]mmlp.TopoUpdate{op})
		if err != nil {
			// By construction ops are valid; a rejection means the sampler
			// raced its own bookkeeping — skip the op rather than panic.
			continue
		}
		ops = append(ops, op)
		cur = next
	}
	return ops, cur
}

func randomTopoOp(in *mmlp.Instance, rng *rand.Rand) (mmlp.TopoUpdate, bool) {
	switch p := rng.Intn(100); {
	case p < 40:
		return randomAddEdge(in, rng)
	case p < 70:
		return randomRemoveEdge(in, rng)
	case p < 85:
		return mmlp.AddAgent(), true
	default:
		if in.NumAgents() == 0 {
			return mmlp.TopoUpdate{}, false
		}
		return mmlp.RemoveAgent(rng.Intn(in.NumAgents())), true
	}
}

// randomAddEdge attaches a random agent to a random existing or new row.
// Party edges only go to agents that consume at least one resource
// (otherwise the agent's local LPs become unbounded).
func randomAddEdge(in *mmlp.Instance, rng *rand.Rand) (mmlp.TopoUpdate, bool) {
	n := in.NumAgents()
	if n == 0 {
		return mmlp.TopoUpdate{}, false
	}
	coeff := 0.1 + 2*rng.Float64()
	party := rng.Intn(2) == 1
	for attempt := 0; attempt < 8; attempt++ {
		v := rng.Intn(n)
		if party && len(in.AgentResources(v)) == 0 {
			continue
		}
		var rows int
		var row []mmlp.Entry
		if party {
			rows = in.NumParties()
		} else {
			rows = in.NumResources()
		}
		r := rng.Intn(rows + 1)
		if r < rows {
			if party {
				row = in.Party(r)
			} else {
				row = in.Resource(r)
			}
			if containsAgent(row, v) {
				continue
			}
		}
		if party {
			return mmlp.AddPartyEdge(r, v, coeff), true
		}
		return mmlp.AddResourceEdge(r, v, coeff), true
	}
	return mmlp.TopoUpdate{}, false
}

// randomRemoveEdge removes a random existing support entry, skipping
// removals that would leave an agent with parties but no resources.
func randomRemoveEdge(in *mmlp.Instance, rng *rand.Rand) (mmlp.TopoUpdate, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		party := rng.Intn(2) == 1
		var rows int
		if party {
			rows = in.NumParties()
		} else {
			rows = in.NumResources()
		}
		if rows == 0 {
			continue
		}
		r := rng.Intn(rows)
		var row []mmlp.Entry
		if party {
			row = in.Party(r)
		} else {
			row = in.Resource(r)
		}
		if len(row) == 0 {
			continue
		}
		v := row[rng.Intn(len(row))].Agent
		if !party && len(in.AgentResources(v)) == 1 && len(in.AgentParties(v)) > 0 {
			continue // would unbound v's local LPs
		}
		if party {
			return mmlp.RemovePartyEdge(r, v), true
		}
		return mmlp.RemoveResourceEdge(r, v), true
	}
	return mmlp.TopoUpdate{}, false
}

func containsAgent(row []mmlp.Entry, v int) bool {
	for _, e := range row {
		if e.Agent == v {
			return true
		}
	}
	return false
}
