package dist

// floodNode is the per-node state of the full-information engines: the
// gathered knowledge plus the flooding frontier — records first learned
// in the previous round, to be forwarded in the next one. Forwarding
// only the frontier delivers every record within the horizon exactly
// once per edge direction.
type floodNode struct {
	know     *knowledge
	frontier []*agentRecord
	outbox   []*agentRecord
	msgs     int // messages received
	received int // records received (payload)
	x        float64
	err      error
}

func newFloodNode(rom *agentRecord) *floodNode {
	return &floodNode{know: newKnowledge(rom), frontier: []*agentRecord{rom}}
}

// stageOutbox publishes the frontier for neighbours to read this round.
func (nd *floodNode) stageOutbox() {
	nd.outbox = nd.frontier
	nd.frontier = nil
}

// deliver merges one neighbour's staged message; unseen records join the
// next frontier. Both engines deliver neighbours in ascending order, so
// the merge — and with it the whole run — is deterministic.
func (nd *floodNode) deliver(msg []*agentRecord) {
	nd.msgs++
	nd.received += len(msg)
	for _, rec := range msg {
		if _, ok := nd.know.recs[rec.agent]; ok {
			continue
		}
		nd.know.recs[rec.agent] = rec
		nd.frontier = append(nd.frontier, rec)
	}
}

// RunSequential executes the protocol round by round in a single
// goroutine, visiting nodes in ascending order: the deterministic
// reference engine every other engine is tested against.
//
// Deprecated: construct the engine through the registry instead —
// New("sequential", Options{}) — which all new call sites use. The
// wrapper remains for source compatibility and behaves identically.
func (nw *Network) RunSequential(p Protocol) (*Trace, error) {
	return nw.runSequential(p)
}

func (nw *Network) runSequential(p Protocol) (*Trace, error) {
	nodes, err := nw.newFloodNodes(p)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Protocol: p.Name(), Rounds: p.Horizon()}
	for round := 0; round < p.Horizon(); round++ {
		for _, nd := range nodes {
			nd.stageOutbox()
		}
		roundMsgs := 0
		for v, nd := range nodes {
			for _, u := range nw.g.Neighbors(v) {
				if msg := nodes[u].outbox; len(msg) > 0 {
					nd.deliver(msg)
					roundMsgs++
				}
			}
		}
		if m := nw.obsM; m != nil {
			m.RoundMessages.Observe(float64(roundMsgs))
		}
	}
	for _, nd := range nodes {
		nd.x, nd.err = p.output(nd.know)
	}
	out, err := nw.finish(tr, nodes)
	if err != nil {
		return nil, err
	}
	nw.recordRun("sequential", out)
	return out, nil
}
