package dist

import (
	"runtime"
	"sync"

	"maxminlp/internal/sched"
)

// RunSharded executes the protocol with a pool of P workers stealing
// node tasks from per-worker deques seeded in contiguous shards — the
// layout of the CSR index, so a worker's own nodes (and most of their
// neighbours, on lattice-like graphs) sit in one contiguous block of the
// flat arrays, while stealing rebalances rounds whose cost is skewed
// across the agent range. shards ≤ 0 selects GOMAXPROCS.
//
// Per round, every worker first stages the outboxes of the nodes it
// claims (the double buffer: the frontier written last round becomes the
// read-only outbox, and a fresh frontier starts accumulating), all
// workers rendezvous on a barrier, then the workers deliver to every
// node from its neighbours' outboxes, and a second barrier separates
// those reads from the next round's restaging. Each node task is claimed
// by exactly one worker per phase, reads of foreign outboxes are
// separated from their writes by the barrier, and each node merges its
// neighbours in ascending order — so the run is race-free and its
// outputs and cost trace are bit-for-bit identical to RunSequential and
// RunGoroutines for every shard count and steal interleaving.
//
// Compared to RunGoroutines this trades the goroutine-per-agent model's
// fidelity (n goroutines, 2n barrier waits per round) for throughput:
// P goroutines and 2P barrier waits per round, with each worker sweeping
// its own shard in index order before helping the stragglers.
//
// Deprecated: construct the engine through the registry instead —
// New("sharded", Options{Shards: shards}). The wrapper remains for
// source compatibility and behaves identically.
func (nw *Network) RunSharded(p Protocol, shards int) (*Trace, error) {
	return nw.runSharded(p, shards)
}

func (nw *Network) runSharded(p Protocol, shards int) (*Trace, error) {
	nodes, err := nw.newFloodNodes(p)
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	b := newBarrier(shards)
	if m := nw.obsM; m != nil {
		b.h = m.BarrierWait
	}
	pool := sched.NewPool(n, shards, nil)
	stage := func(v int) { nodes[v].stageOutbox() }
	deliver := func(v int) {
		nd := nodes[v]
		for _, u := range nw.g.Neighbors(v) {
			if msg := nodes[u].outbox; len(msg) > 0 {
				nd.deliver(msg)
			}
		}
	}
	output := func(v int) { nodes[v].x, nodes[v].err = p.output(nodes[v].know) }
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		go func(w int) {
			defer wg.Done()
			// Each barrier guarantees every worker has left the previous
			// phase's Work before any deque is reset for the next — the
			// pool's phase-reuse contract.
			for round := 0; round < p.Horizon(); round++ {
				pool.ResetOwn(w)
				pool.Work(w, stage)
				b.await() // every outbox staged and stable
				pool.ResetOwn(w)
				pool.Work(w, deliver)
				b.await() // every outbox read; restaging is safe again
			}
			pool.ResetOwn(w)
			pool.Work(w, output)
		}(w)
	}
	wg.Wait()
	if m := nw.obsM; m != nil {
		st := pool.Stats()
		m.SchedBundle().RecordRun(st.Steals, st.Parks, st.WorkerTasks)
	}
	tr := &Trace{Protocol: p.Name(), Rounds: p.Horizon()}
	out, err := nw.finish(tr, nodes)
	if err != nil {
		return nil, err
	}
	nw.recordRun("sharded", out)
	return out, nil
}
