package dist

import (
	"runtime"
	"sync"
)

// RunSharded executes the protocol with a pool of P workers, each owning
// one contiguous shard of the agent range — the layout of the CSR index,
// so a worker's nodes (and most of their neighbours, on lattice-like
// graphs) sit in one contiguous block of the flat arrays. shards ≤ 0
// selects GOMAXPROCS.
//
// Per round, every worker first stages the outboxes of its own nodes
// (the double buffer: the frontier written last round becomes the
// read-only outbox, and a fresh frontier starts accumulating), all
// workers rendezvous on a barrier, then every worker delivers to its own
// nodes from their neighbours' outboxes, and a second barrier separates
// those reads from the next round's restaging. A worker only ever writes
// the state of nodes in its own shard, reads of foreign outboxes are
// separated from their writes by the barrier, and each node merges its
// neighbours in ascending order — so the run is race-free and its
// outputs and cost trace are bit-for-bit identical to RunSequential and
// RunGoroutines for every shard count.
//
// Compared to RunGoroutines this trades the goroutine-per-agent model's
// fidelity (n goroutines, 2n barrier waits per round) for throughput:
// P goroutines and 2P barrier waits per round, with each worker sweeping
// its shard in index order.
//
// Deprecated: construct the engine through the registry instead —
// New("sharded", Options{Shards: shards}). The wrapper remains for
// source compatibility and behaves identically.
func (nw *Network) RunSharded(p Protocol, shards int) (*Trace, error) {
	return nw.runSharded(p, shards)
}

func (nw *Network) runSharded(p Protocol, shards int) (*Trace, error) {
	nodes, err := nw.newFloodNodes(p)
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	b := newBarrier(shards)
	if m := nw.obsM; m != nil {
		b.h = m.BarrierWait
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		lo, hi := n*w/shards, n*(w+1)/shards
		go func(lo, hi int) {
			defer wg.Done()
			for round := 0; round < p.Horizon(); round++ {
				for v := lo; v < hi; v++ {
					nodes[v].stageOutbox()
				}
				b.await() // every outbox staged and stable
				for v := lo; v < hi; v++ {
					nd := nodes[v]
					for _, u := range nw.g.Neighbors(v) {
						if msg := nodes[u].outbox; len(msg) > 0 {
							nd.deliver(msg)
						}
					}
				}
				b.await() // every outbox read; restaging is safe again
			}
			for v := lo; v < hi; v++ {
				nodes[v].x, nodes[v].err = p.output(nodes[v].know)
			}
		}(lo, hi)
	}
	wg.Wait()
	tr := &Trace{Protocol: p.Name(), Rounds: p.Horizon()}
	out, err := nw.finish(tr, nodes)
	if err != nil {
		return nil, err
	}
	nw.recordRun("sharded", out)
	return out, nil
}
