package dist

import (
	"fmt"
	"math"
	"sort"

	"maxminlp/internal/core"
	"maxminlp/internal/hypergraph"
)

// intBallIfKnown converts a shared []int32 ball to the []int form the
// record-derived code paths use, or returns nil if the node is missing
// any member's record (the caller then falls back to the knowledge BFS).
func intBallIfKnown(ball []int32, recs map[int]*agentRecord) []int {
	out := make([]int, len(ball))
	for i, u := range ball {
		if recs[int(u)] == nil {
			return nil
		}
		out[i] = int(u)
	}
	return out
}

// Protocol is a deterministic local algorithm in the model of Section
// 1.5: nodes flood agent records for Horizon() synchronous rounds, after
// which every node knows its radius-Horizon() view, and then each node
// computes its activity from that view alone. The interface is sealed
// (unexported output method) because an output function is only
// meaningful against the knowledge representation the engines gather.
type Protocol interface {
	// Name identifies the protocol in traces and error messages.
	Name() string
	// Horizon is the number of synchronous communication rounds the
	// protocol needs — its information horizon.
	Horizon() int
	// output computes one node's activity from its gathered knowledge.
	output(k *knowledge) (float64, error)
}

// SafeProtocol runs the safe algorithm of equation (2) as a distributed
// protocol. Its radius-1 view — the coefficients a_iv and the supports
// Vi of the agent's own resources — is part of every node's ROM, so it
// is a zero-round protocol: no communication at all.
type SafeProtocol struct{}

// Name returns "safe".
func (SafeProtocol) Name() string { return "safe" }

// Horizon returns 0: the safe algorithm needs no communication beyond
// the hard-wired radius-1 knowledge.
func (SafeProtocol) Horizon() int { return 0 }

// output mirrors core.SafeValue operation for operation, so the
// distributed run agrees bit-for-bit with the centralised one.
func (SafeProtocol) output(k *knowledge) (float64, error) {
	best := math.Inf(1)
	for _, inc := range k.recs[k.self].resources {
		cap := 1 / (inc.coeff * float64(len(inc.members)))
		if cap < best {
			best = cap
		}
	}
	if math.IsInf(best, 1) {
		// Iv = ∅ violates the paper's assumptions; 0 keeps feasibility.
		return 0, nil
	}
	return best, nil
}

// AverageProtocol runs the Theorem-3 local averaging algorithm with
// radius R as a message-passing protocol. Each node floods records to
// distance 2R+1 — enough to reconstruct the radius-R ball of every agent
// in its own ball, the local LP (9) of each, and the β weights of
// equation (10) — then re-solves those LPs independently and combines
// the solutions. The redundant re-solving is the point: no coordination
// is needed, and every member of V^j derives the identical x^u_j.
type AverageProtocol struct {
	// Radius is the averaging radius R of Theorem 3.
	Radius int
}

// Name returns "average(R=...)".
func (p AverageProtocol) Name() string { return fmt.Sprintf("average(R=%d)", p.Radius) }

// Horizon returns 2R+1, the knowledge radius that suffices for every
// quantity of the algorithm (cf. core.AverageResult.Radius docs).
func (p AverageProtocol) Horizon() int { return 2*p.Radius + 1 }

// output computes x̃_j of equation (10) for the node from its gathered
// view. It replays the exact arithmetic of core.LocalAverage — same ball
// order, same accumulation order, same LP formulation — so the result is
// bit-identical to the centralised run.
func (p AverageProtocol) output(k *knowledge) (float64, error) {
	// On a session-backed network the balls come from the session's
	// retained radius-R index — no per-node BFS over record maps — as
	// long as the node actually holds every member's record (always
	// true after fault-free flooding; the self-stabilising runtime,
	// which calls output mid-recovery on partial knowledge, runs with
	// no session and keeps the record-derived path). Ball contents are
	// identical either way — both are B_H(v, R) sorted ascending — so
	// outputs do not change by a bit. The index is only taken while it
	// still matches the network's graph snapshot: after an un-resynced
	// topology update the session's patched balls describe a different
	// graph than the gathered records, and mixing them would produce
	// outputs matching no cold network — the fallback keeps the run on
	// the snapshot topology.
	var bi *hypergraph.BallIndex
	if k.sess != nil {
		bi = k.sess.BallIndexIfCurrent(p.Radius, k.graph)
	}
	balls := make(map[int][]int)
	ballOf := func(v int) []int {
		b, ok := balls[v]
		if !ok {
			if bi != nil {
				b = intBallIfKnown(bi.Ball(v), k.recs)
			}
			if b == nil {
				b = k.ball(v, p.Radius)
			}
			balls[v] = b
		}
		return b
	}

	// Σ_{u∈V^j} x^u_j in ascending u order — the accumulation order of
	// core.LocalAverage, so the partial sums match bit-for-bit. All the
	// redundant re-solves of this node run on one workspace-backed
	// kernel, and its isomorphic-ball cache collapses them to one
	// simplex run per distinct local LP (on symmetric instances, most of
	// a node's ball shares one orbit) — with bit-identical outputs,
	// since reuse requires an exact canonical-key match. Session-backed
	// networks hand every node a solver over the session's shared cache,
	// deduplicating across nodes and engines too.
	solver := k.solver
	if solver == nil {
		solver = core.NewBallSolver()
	}
	self := ballOf(k.self)
	var sum float64
	for _, u := range self {
		ballU := ballOf(u)
		inBall := make(map[int]bool, len(ballU))
		for _, w := range ballU {
			inBall[w] = true
		}
		xu, _, _, err := solver.Solve(k.view(ballU), ballU, inBall)
		if err != nil {
			return 0, fmt.Errorf("local LP of agent %d: %w", u, err)
		}
		sum += xu[sort.SearchInts(ballU, k.self)]
	}

	// β_j = min_{i∈Ij} n_i/N_i (equation (10)): n_i is the smallest and
	// N_i the union size of the balls of the agents sharing resource i,
	// all within distance R+1 ≤ 2R+1 of this node.
	beta := 1.0
	for _, inc := range k.recs[k.self].resources {
		union := make(map[int]bool)
		ni := math.MaxInt
		for _, m := range inc.members {
			bm := ballOf(m)
			if len(bm) < ni {
				ni = len(bm)
			}
			for _, w := range bm {
				union[w] = true
			}
		}
		if ratio := float64(ni) / float64(len(union)); ratio < beta {
			beta = ratio
		}
	}
	return beta / float64(len(self)) * sum, nil
}
