package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"maxminlp/internal/wire"
)

// TCPMesh is the Transport of the multi-process cluster: a full mesh of
// length-prefixed-frame TCP connections between the members. Dial
// direction follows the index order — member i dials every j < i and
// accepts from every j > i — so each pair shares exactly one
// connection; a hello frame carrying the dialler's index pairs accepted
// connections with members. One reader goroutine per peer decouples
// receiving from sending, so the all-to-all Exchange cannot deadlock on
// TCP flow control.
type TCPMesh struct {
	self  int
	conns []net.Conn
	inbox []chan tcpFrame

	closeOnce sync.Once
	closeErr  error
}

type tcpFrame struct {
	b   []byte
	err error
}

// tcpDialTimeout bounds how long NewTCPMesh retries dialling a peer
// that has not bound its listener yet — cluster members start in
// arbitrary order.
const tcpDialTimeout = 30 * time.Second

// NewTCPMesh connects member self to its peers. addrs lists every
// member's data-plane address in index order (addrs[self] is ignored —
// ln, the member's own bound listener, takes its place). The call
// blocks until the full mesh is up.
func NewTCPMesh(self int, addrs []string, ln net.Listener) (*TCPMesh, error) {
	m := len(addrs)
	if self < 0 || self >= m {
		return nil, fmt.Errorf("dist: mesh self %d out of range [0,%d)", self, m)
	}
	t := &TCPMesh{
		self:  self,
		conns: make([]net.Conn, m),
		inbox: make([]chan tcpFrame, m),
	}
	fail := func(err error) (*TCPMesh, error) {
		t.Close()
		return nil, err
	}
	// Dial down: one connection to every lower-indexed member,
	// introduced by a hello frame carrying our index.
	for q := 0; q < self; q++ {
		conn, err := dialRetry(addrs[q], tcpDialTimeout)
		if err != nil {
			return fail(fmt.Errorf("dist: mesh member %d dialling %d (%s): %w", self, q, addrs[q], err))
		}
		t.conns[q] = conn
		if err := wire.WriteFrame(conn, binary.AppendUvarint(nil, uint64(self))); err != nil {
			return fail(fmt.Errorf("dist: mesh member %d hello to %d: %w", self, q, err))
		}
	}
	// Accept up: every higher-indexed member dials us.
	for need := m - 1 - self; need > 0; need-- {
		conn, err := ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("dist: mesh member %d accept: %w", self, err))
		}
		hello, err := wire.ReadFrame(conn)
		if err != nil {
			return fail(fmt.Errorf("dist: mesh member %d reading hello: %w", self, err))
		}
		peer, k := binary.Uvarint(hello)
		if k <= 0 || int(peer) <= self || int(peer) >= m || t.conns[peer] != nil {
			conn.Close()
			return fail(fmt.Errorf("dist: mesh member %d got bad hello index %d", self, peer))
		}
		t.conns[peer] = conn
	}
	for q, conn := range t.conns {
		if q == self {
			continue
		}
		// One extra slot beyond the round skew guarantees the reader's
		// terminal error send never blocks, so Close cannot leak readers.
		ch := make(chan tcpFrame, loopbackSkew+1)
		t.inbox[q] = ch
		go func(conn net.Conn, ch chan tcpFrame) {
			for {
				b, err := wire.ReadFrame(conn)
				if err != nil {
					// Deliver the error once, then close so every later
					// Exchange on the dead peer fails instead of blocking.
					ch <- tcpFrame{err: err}
					close(ch)
					return
				}
				ch <- tcpFrame{b: b}
			}
		}(conn, ch)
	}
	return t, nil
}

// dialRetry dials with retries until the deadline: the peer's listener
// may not be bound yet while the cluster boots.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (t *TCPMesh) Self() int    { return t.self }
func (t *TCPMesh) Members() int { return len(t.conns) }

// Exchange writes this round's payloads to every peer concurrently and
// collects one frame from each peer's reader. Concurrent writes matter:
// with large boundary payloads, sequential writes against a peer that
// is also writing could fill both TCP windows and deadlock.
func (t *TCPMesh) Exchange(out [][]byte) ([][]byte, error) {
	m := len(t.conns)
	if len(out) != m {
		return nil, fmt.Errorf("dist: Exchange with %d payloads for %d members", len(out), m)
	}
	errs := make(chan error, m)
	writes := 0
	for q := 0; q < m; q++ {
		if q == t.self {
			continue
		}
		writes++
		go func(q int) {
			errs <- wire.WriteFrame(t.conns[q], out[q])
		}(q)
	}
	in := make([][]byte, m)
	var firstErr error
	for q := 0; q < m; q++ {
		if q == t.self {
			continue
		}
		f, ok := <-t.inbox[q]
		if !ok {
			f.err = errors.New("peer connection closed")
		}
		if f.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dist: mesh member %d reading from %d: %w", t.self, q, f.err)
		}
		in[q] = f.b
	}
	for i := 0; i < writes; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return in, nil
}

// Close tears down every mesh connection, unblocking peers and local
// reader goroutines.
func (t *TCPMesh) Close() error {
	t.closeOnce.Do(func() {
		var errs []error
		for _, conn := range t.conns {
			if conn != nil {
				if err := conn.Close(); err != nil {
					errs = append(errs, err)
				}
			}
		}
		t.closeErr = errors.Join(errs...)
	})
	return t.closeErr
}
