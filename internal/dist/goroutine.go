package dist

import (
	"sync"
	"time"

	"maxminlp/internal/obs"
)

// barrier is a reusable synchronisation point for n goroutines: await
// blocks until all n have arrived, then releases the generation. When h
// is non-nil, each await records how long the caller waited — the skew
// between the fastest and slowest participant of the round.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	h     *obs.Histogram
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	var t0 time.Time
	if b.h != nil {
		t0 = time.Now()
	}
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
		b.mu.Unlock()
	}
	if b.h != nil {
		b.h.ObserveDuration(time.Since(t0))
	}
}

// RunGoroutines executes the protocol with one goroutine per agent,
// synchronised by a round barrier: within a round, every node first
// stages its outgoing message, all nodes rendezvous, then every node
// reads its neighbours' outboxes. A node only ever writes its own state,
// reads of foreign outboxes are separated from their writes by the
// barrier, and each node's merge and output are pure functions of
// deterministically ordered inputs — so the run is race-free and its
// result, including the cost accounting, is bit-for-bit identical to
// RunSequential under any goroutine scheduling. The horizon-R local LP
// solves, the expensive part, run genuinely in parallel.
//
// Deprecated: construct the engine through the registry instead —
// New("goroutines", Options{}). The wrapper remains for source
// compatibility and behaves identically.
func (nw *Network) RunGoroutines(p Protocol) (*Trace, error) {
	return nw.runGoroutines(p)
}

func (nw *Network) runGoroutines(p Protocol) (*Trace, error) {
	nodes, err := nw.newFloodNodes(p)
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	b := newBarrier(n)
	if m := nw.obsM; m != nil {
		b.h = m.BarrierWait
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			nd := nodes[v]
			for round := 0; round < p.Horizon(); round++ {
				nd.stageOutbox()
				b.await() // every outbox staged and stable
				for _, u := range nw.g.Neighbors(v) {
					if msg := nodes[u].outbox; len(msg) > 0 {
						nd.deliver(msg)
					}
				}
				b.await() // every outbox read; restaging is safe again
			}
			nd.x, nd.err = p.output(nd.know)
		}(v)
	}
	wg.Wait()
	tr := &Trace{Protocol: p.Name(), Rounds: p.Horizon()}
	out, err := nw.finish(tr, nodes)
	if err != nil {
		return nil, err
	}
	nw.recordRun("goroutines", out)
	return out, nil
}
