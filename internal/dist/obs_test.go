package dist

import (
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/obs"
)

// TestEnginesObsBitIdentity runs every engine with and without metrics
// attached and requires identical traces — output X, rounds, messages,
// payload — plus plausibly populated counters on the instrumented side.
func TestEnginesObsBitIdentity(t *testing.T) {
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	g := fullGraph(in)
	plain, err := NewNetwork(in, g)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := NewNetwork(in, fullGraph(in))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := obs.NewDistMetrics(reg)
	instrumented.SetObs(m)

	p := AverageProtocol{Radius: 1}
	engines := []struct {
		name string
		run  func(nw *Network) (*Trace, error)
	}{
		{"sequential", func(nw *Network) (*Trace, error) { return nw.RunSequential(p) }},
		{"goroutines", func(nw *Network) (*Trace, error) { return nw.RunGoroutines(p) }},
		{"sharded", func(nw *Network) (*Trace, error) { return nw.RunSharded(p, 4) }},
	}
	for _, e := range engines {
		want, err := e.run(plain)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.run(instrumented)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rounds != want.Rounds || got.Messages != want.Messages ||
			got.Payload != want.Payload || got.MaxNodePayload != want.MaxNodePayload {
			t.Fatalf("%s: trace (obs on) %+v != (obs off) %+v", e.name, got, want)
		}
		for v := range want.X {
			if got.X[v] != want.X[v] {
				t.Fatalf("%s: X[%d] = %v, want %v", e.name, v, got.X[v], want.X[v])
			}
		}
		if m.EngineRuns(e.name).Value() != 1 {
			t.Errorf("%s: run counter = %d, want 1", e.name, m.EngineRuns(e.name).Value())
		}
	}
	if m.Messages.Value() == 0 || m.Records.Value() == 0 || m.Rounds.Value() == 0 {
		t.Errorf("dist counters empty: messages=%d records=%d rounds=%d",
			m.Messages.Value(), m.Records.Value(), m.Rounds.Value())
	}
	// The sequential engine observes per-round message counts; the
	// barrier engines record wait time (2 awaits per node or shard per
	// round, all strictly positive).
	if m.RoundMessages.Count() == 0 {
		t.Error("no per-round message counts recorded")
	}
	if m.BarrierWait.Count() == 0 {
		t.Error("no barrier wait latencies recorded")
	}
}
