package dist

import (
	"fmt"
	"sort"
	"sync"
)

// Engine executes protocols over a Network. Every engine produces X
// vectors bit-identical to the sequential reference for every protocol;
// engines whose CostExact method reports true additionally reproduce
// its message/payload accounting bit-for-bit (the stabilising engine
// exchanges full tables every round, so its cost model is different by
// design).
//
// Engines are stateless and safe for concurrent use on distinct
// Networks; a single Network must not host two runs at once.
type Engine interface {
	// Name returns the registry name the engine was constructed under.
	Name() string
	// Run executes one protocol over the network.
	Run(nw *Network, p Protocol) (*Trace, error)
	// CostExact reports whether the engine's Trace cost counters are
	// bit-comparable to the sequential reference.
	CostExact() bool
}

// Options parameterises engine construction. The zero value selects
// sensible defaults for every engine.
type Options struct {
	// Shards is the worker count of the sharded engine and the member
	// count of the partitioned engine; ≤ 0 selects GOMAXPROCS. Both
	// clamp to the agent count at run time.
	Shards int
	// Rounds is the schedule length of the stabilizing engine; ≤ 0
	// selects the protocol's horizon (its convergence time from a cold
	// start). Other engines always run exactly the horizon and ignore it.
	Rounds int
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func(Options) (Engine, error){}
)

// Register makes an engine constructor available under a name. It
// panics on a duplicate name or nil constructor — registration is a
// program-initialisation concern, exactly like http.Handle.
func Register(name string, ctor func(Options) (Engine, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if ctor == nil {
		panic("dist: Register with nil constructor")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dist: Register called twice for engine %q", name))
	}
	registry[name] = ctor
}

// New constructs a registered engine by name. The built-in names are
// "sequential", "goroutines", "sharded", "partitioned" and
// "stabilizing".
func New(name string, opt Options) (Engine, error) {
	registryMu.RLock()
	ctor, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown engine %q (registered: %v)", name, Engines())
	}
	return ctor(opt)
}

// Engines returns the registered engine names in sorted order.
func Engines() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("sequential", func(Options) (Engine, error) {
		return engineFunc{name: "sequential", exact: true,
			run: (*Network).runSequential}, nil
	})
	Register("goroutines", func(Options) (Engine, error) {
		return engineFunc{name: "goroutines", exact: true,
			run: (*Network).runGoroutines}, nil
	})
	Register("sharded", func(opt Options) (Engine, error) {
		return engineFunc{name: "sharded", exact: true,
			run: func(nw *Network, p Protocol) (*Trace, error) {
				return nw.runSharded(p, opt.Shards)
			}}, nil
	})
	Register("partitioned", func(opt Options) (Engine, error) {
		return engineFunc{name: "partitioned", exact: true,
			run: func(nw *Network, p Protocol) (*Trace, error) {
				return nw.runPartitionedLoopback(p, opt.Shards)
			}}, nil
	})
	Register("stabilizing", func(opt Options) (Engine, error) {
		return engineFunc{name: "stabilizing", exact: false,
			run: func(nw *Network, p Protocol) (*Trace, error) {
				return nw.runStabilizingOnce(p, opt.Rounds)
			}}, nil
	})
}

// engineFunc adapts one run function to the Engine interface.
type engineFunc struct {
	name  string
	exact bool
	run   func(*Network, Protocol) (*Trace, error)
}

func (e engineFunc) Name() string    { return e.name }
func (e engineFunc) CostExact() bool { return e.exact }
func (e engineFunc) Run(nw *Network, p Protocol) (*Trace, error) {
	return e.run(nw, p)
}

// runStabilizingOnce adapts the fault-injection engine to the one-shot
// Engine contract: a fault-free self-stabilising run long enough to
// converge from cold start, returning the final output vector. X is
// bit-identical to the flooding engines; the cost counters account full
// table exchanges per round (the price of perpetual fault tolerance)
// and are not comparable to flooding.
func (nw *Network) runStabilizingOnce(p Protocol, rounds int) (*Trace, error) {
	if p == nil {
		return nil, fmt.Errorf("dist: nil protocol")
	}
	if rounds <= 0 {
		rounds = p.Horizon()
		if rounds < 1 {
			rounds = 1
		}
	}
	run, err := nw.RunStabilizing(p, rounds, -1, nil)
	if err != nil {
		return nil, err
	}
	tr := &Trace{
		Protocol: p.Name(),
		X:        run.Outputs[len(run.Outputs)-1],
		Rounds:   run.Rounds,
		Messages: run.Messages,
		Payload:  run.Payload,
	}
	nw.recordRun("stabilizing", tr)
	return tr, nil
}
