package dist

import (
	"sort"

	"maxminlp/internal/core"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

// incidence is one coefficient of the agent owning a record together with
// the full support of the row it belongs to. Support identities are
// radius-1 information in the model of Section 1.5: an agent knows with
// whom it competes on each of its resources and with whom it collaborates
// for each of its parties.
type incidence struct {
	id      int
	coeff   float64
	members []int // full support, ascending agent order; shared, read-only
}

// agentRecord is the read-only ROM of one agent — everything the agent
// knows before any communication. Records are immutable once built and
// are the unit of payload: protocols exchange whole records, and Trace
// counts records delivered.
type agentRecord struct {
	agent     int
	neighbors []int       // neighbours in H, ascending; shared with the Graph
	resources []incidence // incidences for Iv, ascending resource id
	parties   []incidence // incidences for Kv, ascending party id
	resIDs    []int       // Iv, ascending
	parIDs    []int       // Kv, ascending
}

// buildRecords extracts one ROM per agent from the instance and its
// communication hypergraph. Support slices are built once per row and
// shared between the records that reference them.
func buildRecords(in *mmlp.Instance, g *hypergraph.Graph) []*agentRecord {
	resMembers := make([][]int, in.NumResources())
	for i := range resMembers {
		resMembers[i] = rowAgents(in.Resource(i))
	}
	parMembers := make([][]int, in.NumParties())
	for k := range parMembers {
		parMembers[k] = rowAgents(in.Party(k))
	}
	recs := make([]*agentRecord, in.NumAgents())
	for v := range recs {
		rec := &agentRecord{agent: v, neighbors: g.Neighbors(v)}
		for _, i := range in.AgentResources(v) {
			rec.resources = append(rec.resources, incidence{id: i, coeff: in.A(i, v), members: resMembers[i]})
			rec.resIDs = append(rec.resIDs, i)
		}
		for _, k := range in.AgentParties(v) {
			rec.parties = append(rec.parties, incidence{id: k, coeff: in.C(k, v), members: parMembers[k]})
			rec.parIDs = append(rec.parIDs, k)
		}
		recs[v] = rec
	}
	return recs
}

func rowAgents(row []mmlp.Entry) []int {
	out := make([]int, len(row))
	for j, e := range row {
		out[j] = e.Agent
	}
	return out
}

// knowledge is the soft state of one node: the records it currently
// holds, keyed by agent. Every derived quantity — balls, local LPs,
// output values — is recomputed from it deterministically, so two nodes
// with equal knowledge produce bit-identical outputs no matter which
// engine delivered the records.
type knowledge struct {
	self int
	recs map[int]*agentRecord

	// sess and solver are set by session-backed networks
	// (NewSessionNetwork): sess supplies retained ball indexes, solver a
	// per-node LP kernel sharing the session's cache. Both nil on plain
	// networks and in the self-stabilising runtime, where outputs fall
	// back to pure record-derived computation. graph is the network's
	// graph snapshot; the session's ball index is only consulted while
	// it still matches (a topology update applied to the session without
	// a Resync must not leak new balls into a run over old records).
	sess   *core.Solver
	solver *core.BallSolver
	graph  *hypergraph.Graph
}

func newKnowledge(rom *agentRecord) *knowledge {
	return &knowledge{self: rom.agent, recs: map[int]*agentRecord{rom.agent: rom}}
}

// ball returns B_H(v, r) restricted to the agents the node holds records
// for, sorted ascending. Once the node has gathered every record within
// distance r of v — always the case after fault-free flooding for the
// protocol horizon — this is exactly hypergraph.Graph.Ball: the same BFS
// over the same sorted neighbour lists.
func (k *knowledge) ball(v, r int) []int {
	depth := map[int]int{v: 0}
	queue := []int{v}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		d := depth[u]
		if d == r {
			continue
		}
		rec := k.recs[u]
		if rec == nil {
			continue // record lost mid-recovery; cannot expand
		}
		for _, w := range rec.neighbors {
			if _, ok := depth[w]; ok {
				continue
			}
			if k.recs[w] == nil {
				continue // only agents with known records join the ball
			}
			depth[w] = d + 1
			queue = append(queue, w)
		}
	}
	out := make([]int, 0, len(depth))
	for u := range depth {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// ballView implements core.InstanceView over gathered records, restricted
// to one ball. Rows hold exactly the entries of ball members — the
// partial-row contract of core.InstanceView — assembled in ascending
// agent order so they match the sorted rows of the full instance
// entry-for-entry.
type ballView struct {
	recs       map[int]*agentRecord
	resRows    map[int][]mmlp.Entry
	parRows    map[int][]mmlp.Entry
	parMembers map[int][]int
}

// view assembles the ballView for a ball of agents with known records.
func (k *knowledge) view(ball []int) *ballView {
	bv := &ballView{
		recs:       k.recs,
		resRows:    make(map[int][]mmlp.Entry),
		parRows:    make(map[int][]mmlp.Entry),
		parMembers: make(map[int][]int),
	}
	for _, v := range ball {
		rec := k.recs[v]
		for _, inc := range rec.resources {
			bv.resRows[inc.id] = append(bv.resRows[inc.id], mmlp.Entry{Agent: v, Coeff: inc.coeff})
		}
		for _, inc := range rec.parties {
			bv.parRows[inc.id] = append(bv.parRows[inc.id], mmlp.Entry{Agent: v, Coeff: inc.coeff})
			bv.parMembers[inc.id] = inc.members
		}
	}
	return bv
}

// AgentResources returns Iv of a ball member.
func (bv *ballView) AgentResources(v int) []int { return bv.recs[v].resIDs }

// AgentParties returns Kv of a ball member.
func (bv *ballView) AgentParties(v int) []int { return bv.recs[v].parIDs }

// ResourceRow returns the entries of resource i known inside the ball.
func (bv *ballView) ResourceRow(i int) []mmlp.Entry { return bv.resRows[i] }

// PartyRow returns the entries of party k known inside the ball.
func (bv *ballView) PartyRow(k int) []mmlp.Entry { return bv.parRows[k] }

// PartyMembers returns the full support Vk, learned from any member's
// record.
func (bv *ballView) PartyMembers(k int) []int { return bv.parMembers[k] }
