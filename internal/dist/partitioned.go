package dist

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"maxminlp/internal/wire"
)

// Partition identifies one member's contiguous slice of the agent
// range. The split is the same arithmetic the sharded engine uses, so a
// partitioned run visits exactly the node sets a sharded worker would.
type Partition struct {
	Self, Members int
}

// Bounds returns the half-open agent range [lo, hi) owned by the
// member.
func (pt Partition) Bounds(n int) (lo, hi int) {
	return n * pt.Self / pt.Members, n * (pt.Self + 1) / pt.Members
}

// Owner returns the member owning agent v of n: the inverse of Bounds.
func (pt Partition) Owner(v, n int) int {
	return ((v+1)*pt.Members - 1) / n
}

func (pt Partition) validate() error {
	if pt.Members < 1 || pt.Self < 0 || pt.Self >= pt.Members {
		return fmt.Errorf("dist: invalid partition %d/%d", pt.Self, pt.Members)
	}
	return nil
}

// PartialTrace is one member's slice of a partitioned run: outputs for
// the owned agents and the communication cost they observed. Summed by
// MergeParts, the members' partials reproduce the single-process Trace
// bit for bit.
type PartialTrace struct {
	// Lo, Hi delimit the owned agent range; X[v-Lo] is agent v's output.
	Lo, Hi int
	X      []float64
	Rounds int
	// Messages and Payload count deliveries to owned nodes only — local
	// and remote alike, exactly as the single-process engines count them.
	Messages       int
	Payload        int
	MaxNodePayload int
}

// RunPartitioned executes the member's slice of the protocol, driving
// the same double-buffered round loop as the single-process engines but
// materialising foreign outboxes from the transport instead of shared
// memory. Each round the member stages its own nodes' outboxes, sends
// every peer the staged outboxes of boundary nodes the peer's slice
// neighbours (as agent-id lists — all members replicate the immutable
// record ROMs, so structure is all the wire carries), and delivers to
// its own nodes in ascending neighbour order from local outboxes and
// decoded remote ones. Delivery order, merge order and output
// arithmetic are untouched, so the merged run is bit-identical to
// RunSequential for every partition count and any Transport.
//
// The transport must span exactly pt.Members members and deliver
// pt.Self's frames; every member must run the same protocol over an
// identical Network snapshot.
func (nw *Network) RunPartitioned(p Protocol, pt Partition, t Transport) (*PartialTrace, error) {
	if err := pt.validate(); err != nil {
		return nil, err
	}
	if t == nil || t.Self() != pt.Self || t.Members() != pt.Members {
		return nil, fmt.Errorf("dist: transport does not match partition %d/%d", pt.Self, pt.Members)
	}
	nodes, err := nw.newFloodNodes(p)
	if err != nil {
		return nil, err
	}
	n := len(nodes)
	lo, hi := pt.Bounds(n)

	// Static boundary send-sets: sendSet[q] lists the owned nodes with at
	// least one neighbour owned by peer q, in ascending order. The graph
	// is fixed for the run, so this is computed once.
	sendSet := make([][]int32, pt.Members)
	for v := lo; v < hi; v++ {
		for _, u := range nw.g.Neighbors(v) {
			q := pt.Owner(u, n)
			if q == pt.Self {
				continue
			}
			if k := len(sendSet[q]); k > 0 && sendSet[q][k-1] == int32(v) {
				continue // already added for an earlier neighbour
			}
			sendSet[q] = append(sendSet[q], int32(v))
		}
	}

	remote := make(map[int][]*agentRecord)
	out := make([][]byte, pt.Members)
	encs := make([]wire.RoundEncoder, pt.Members)
	var idBuf []int32
	for round := 0; round < p.Horizon(); round++ {
		for v := lo; v < hi; v++ {
			nodes[v].stageOutbox()
		}
		for q := range out {
			out[q] = nil
			if q == pt.Self || len(sendSet[q]) == 0 {
				continue
			}
			enc := &encs[q]
			enc.Reset()
			for _, v := range sendSet[q] {
				ob := nodes[v].outbox
				idBuf = idBuf[:0]
				for _, rec := range ob {
					idBuf = append(idBuf, int32(rec.agent))
				}
				enc.Add(int(v), idBuf)
			}
			out[q] = append([]byte(nil), enc.Bytes()...)
		}
		in, err := t.Exchange(out)
		if err != nil {
			return nil, fmt.Errorf("dist: %s: partition %d/%d round %d: %w",
				p.Name(), pt.Self, pt.Members, round, err)
		}
		clear(remote)
		for q, b := range in {
			if q == pt.Self || len(b) == 0 {
				continue
			}
			err := wire.DecodeRound(b, func(u int, ids []int32) error {
				if u < 0 || u >= n || pt.Owner(u, n) != q {
					return fmt.Errorf("node %d not owned by peer %d", u, q)
				}
				msg := make([]*agentRecord, len(ids))
				for i, id := range ids {
					if id < 0 || int(id) >= n {
						return fmt.Errorf("record id %d out of range", id)
					}
					msg[i] = nw.roms[id]
				}
				remote[u] = msg
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("dist: %s: partition %d/%d round %d from peer %d: %w",
					p.Name(), pt.Self, pt.Members, round, q, err)
			}
		}
		for v := lo; v < hi; v++ {
			nd := nodes[v]
			for _, u := range nw.g.Neighbors(v) {
				var msg []*agentRecord
				if u >= lo && u < hi {
					msg = nodes[u].outbox
				} else {
					msg = remote[u]
				}
				if len(msg) > 0 {
					nd.deliver(msg)
				}
			}
		}
	}

	part := &PartialTrace{Lo: lo, Hi: hi, Rounds: p.Horizon(), X: make([]float64, hi-lo)}
	for v := lo; v < hi; v++ {
		nd := nodes[v]
		nd.x, nd.err = p.output(nd.know)
		if nd.err != nil {
			return nil, fmt.Errorf("dist: %s: node %d: %w", p.Name(), v, nd.err)
		}
		part.X[v-lo] = nd.x
		part.Messages += nd.msgs
		part.Payload += nd.received
		if nd.received > part.MaxNodePayload {
			part.MaxNodePayload = nd.received
		}
	}
	return part, nil
}

// MergeParts assembles the members' partial traces of one partitioned
// run into the full Trace. The parts must tile the agent range exactly.
func MergeParts(protocol string, n int, parts []*PartialTrace) (*Trace, error) {
	sorted := make([]*PartialTrace, len(parts))
	for i, part := range parts {
		if part == nil {
			return nil, fmt.Errorf("dist: MergeParts: missing partial %d", i)
		}
		sorted[i] = part
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	tr := &Trace{Protocol: protocol, X: make([]float64, 0, n)}
	next := 0
	for _, part := range sorted {
		if part.Lo != next || part.Hi < part.Lo || len(part.X) != part.Hi-part.Lo {
			return nil, fmt.Errorf("dist: MergeParts: partial [%d,%d) with %d outputs does not continue at %d",
				part.Lo, part.Hi, len(part.X), next)
		}
		if part.Rounds != sorted[0].Rounds {
			return nil, fmt.Errorf("dist: MergeParts: partials ran %d and %d rounds", sorted[0].Rounds, part.Rounds)
		}
		next = part.Hi
		tr.Rounds = part.Rounds
		tr.X = append(tr.X, part.X...)
		tr.Messages += part.Messages
		tr.Payload += part.Payload
		if part.MaxNodePayload > tr.MaxNodePayload {
			tr.MaxNodePayload = part.MaxNodePayload
		}
	}
	if next != n {
		return nil, fmt.Errorf("dist: MergeParts: partials cover [0,%d), want [0,%d)", next, n)
	}
	return tr, nil
}

// runPartitionedLoopback is the in-process "partitioned" engine: the
// cluster round loop over an in-memory transport mesh, one goroutine
// per member. It exists so the exact code path the multi-process
// cluster runs is exercised by every conformance and golden-trace
// suite without sockets.
func (nw *Network) runPartitionedLoopback(p Protocol, members int) (*Trace, error) {
	n := nw.NumAgents()
	if members <= 0 {
		members = runtime.GOMAXPROCS(0)
	}
	if members > n {
		members = n
	}
	if members < 1 {
		members = 1
	}
	ts := NewLoopback(members)
	parts := make([]*PartialTrace, members)
	errs := make([]error, members)
	var wg sync.WaitGroup
	wg.Add(members)
	for w := 0; w < members; w++ {
		go func(w int) {
			defer wg.Done()
			parts[w], errs[w] = nw.RunPartitioned(p, Partition{Self: w, Members: members}, ts[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	tr, err := MergeParts(p.Name(), n, parts)
	if err != nil {
		return nil, err
	}
	nw.recordRun("partitioned", tr)
	return tr, nil
}
