package dist

import (
	"fmt"
)

// Transport is the data plane of one member of a fixed-size cluster of
// partition owners. It moves opaque byte payloads between members in
// lock-step rounds: every member calls Exchange once per round with one
// outgoing payload per peer and receives the payloads its peers
// addressed to it in the same round. The partitioned round loop runs
// unchanged over any implementation — in-memory loopback for
// single-process engines and tests, a TCP mesh between worker
// processes in the mmlpd cluster.
type Transport interface {
	// Self is this member's index in [0, Members).
	Self() int
	// Members is the cluster size.
	Members() int
	// Exchange sends out[q] to member q for every q ≠ Self (nil and
	// empty payloads are delivered as empty) and returns in[q], the
	// payload member q addressed to Self this round. in[Self] is nil.
	// Exchange is a full barrier in the round-numbering sense: the k-th
	// call observes exactly every peer's k-th payloads.
	Exchange(out [][]byte) ([][]byte, error)
	// Close releases the transport's resources. Members blocked in
	// Exchange are unblocked with an error.
	Close() error
}

// loopbackSkew is the buffered-channel capacity of the in-memory
// transport. Members may drift: the fastest member can be staging round
// k+1 while the slowest still reads round k, so a send can be one round
// ahead of its receive; capacity 4 keeps every legal interleaving
// non-blocking without unbounded buffering.
const loopbackSkew = 4

// NewLoopback builds an in-memory transport mesh of the given size and
// returns one Transport per member. Payloads pass by reference; the
// sender must not mutate a payload after Exchange hands it over (the
// partitioned engine re-encodes into fresh buffers each round).
func NewLoopback(members int) []Transport {
	if members < 1 {
		panic("dist: NewLoopback needs at least one member")
	}
	chans := make([][]chan []byte, members)
	for from := range chans {
		chans[from] = make([]chan []byte, members)
		for to := range chans[from] {
			if to != from {
				chans[from][to] = make(chan []byte, loopbackSkew)
			}
		}
	}
	ts := make([]Transport, members)
	for self := range ts {
		ts[self] = &loopback{self: self, chans: chans}
	}
	return ts
}

type loopback struct {
	self  int
	chans [][]chan []byte // chans[from][to]
}

func (l *loopback) Self() int    { return l.self }
func (l *loopback) Members() int { return len(l.chans) }
func (l *loopback) Close() error { return nil }

func (l *loopback) Exchange(out [][]byte) ([][]byte, error) {
	m := len(l.chans)
	if len(out) != m {
		return nil, fmt.Errorf("dist: Exchange with %d payloads for %d members", len(out), m)
	}
	for q := 0; q < m; q++ {
		if q != l.self {
			l.chans[l.self][q] <- out[q]
		}
	}
	in := make([][]byte, m)
	for q := 0; q < m; q++ {
		if q != l.self {
			in[q] = <-l.chans[q][l.self]
		}
	}
	return in, nil
}
