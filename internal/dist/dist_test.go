package dist

import (
	"math/rand"
	"testing"

	"maxminlp/internal/core"
	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

func fullGraph(in *mmlp.Instance) *hypergraph.Graph {
	return hypergraph.FromInstance(in, hypergraph.Options{})
}

type testCase struct {
	name  string
	in    *mmlp.Instance
	radii []int
}

func testCases(t *testing.T) []testCase {
	t.Helper()
	torus, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	cycle, _ := gen.Cycle(20, gen.LatticeOptions{})
	rng := rand.New(rand.NewSource(9))
	random := gen.Random(gen.RandomOptions{
		Agents: 30, Resources: 24, Parties: 12, MaxVI: 3, MaxVK: 3,
	}, rng)
	geometric, _ := gen.UnitDisk(gen.UnitDiskOptions{
		Nodes: 40, Radius: 0.25, MaxNeighbors: 4, RandomWeights: true,
	}, rand.New(rand.NewSource(11)))
	return []testCase{
		{"torus6x6", torus, []int{0, 1}},
		{"cycle20", cycle, []int{1, 2}},
		{"random30", random, []int{1}},
		{"geometric40", geometric, []int{1}},
	}
}

// shardCounts are the worker-pool sizes the sharded engine is checked
// with: degenerate (1), uneven (3) and more shards than some test
// instances have agents.
var shardCounts = []int{1, 3, 64}

func mustNetwork(t *testing.T, in *mmlp.Instance, g *hypergraph.Graph) *Network {
	t.Helper()
	nw, err := NewNetwork(in, g)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestEnginesAgreeWithCore checks the central contract of the package:
// both engines produce outputs bit-identical to each other, to the
// centralised safe algorithm, and to the centralised Theorem-3 averaging
// algorithm, on torus, cycle and random instances.
func TestEnginesAgreeWithCore(t *testing.T) {
	for _, tc := range testCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			g := fullGraph(tc.in)
			nw := mustNetwork(t, tc.in, g)

			seq, err := nw.RunSequential(SafeProtocol{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := nw.RunGoroutines(SafeProtocol{})
			if err != nil {
				t.Fatal(err)
			}
			want := core.Safe(tc.in)
			for v := range want {
				if seq.X[v] != want[v] {
					t.Fatalf("safe: sequential diverged from core at %d: %v vs %v", v, seq.X[v], want[v])
				}
				if par.X[v] != seq.X[v] {
					t.Fatalf("safe: goroutine engine diverged at %d", v)
				}
			}

			for _, R := range tc.radii {
				seq, err := nw.RunSequential(AverageProtocol{Radius: R})
				if err != nil {
					t.Fatal(err)
				}
				par, err := nw.RunGoroutines(AverageProtocol{Radius: R})
				if err != nil {
					t.Fatal(err)
				}
				avg, err := core.LocalAverage(tc.in, g, R)
				if err != nil {
					t.Fatal(err)
				}
				for v := range avg.X {
					if seq.X[v] != avg.X[v] {
						t.Fatalf("R=%d: sequential diverged from core at %d: %v vs %v", R, v, seq.X[v], avg.X[v])
					}
					if par.X[v] != seq.X[v] {
						t.Fatalf("R=%d: goroutine engine diverged at %d", R, v)
					}
				}
				if !tracesEqual(par, seq) {
					t.Fatalf("R=%d: traces diverge: seq %+v vs par %+v", R, seq, par)
				}
				for _, shards := range shardCounts {
					sh, err := nw.RunSharded(AverageProtocol{Radius: R}, shards)
					if err != nil {
						t.Fatal(err)
					}
					for v := range seq.X {
						if sh.X[v] != seq.X[v] {
							t.Fatalf("R=%d shards=%d: sharded engine diverged at %d", R, shards, v)
						}
					}
					if !tracesEqual(sh, seq) {
						t.Fatalf("R=%d shards=%d: traces diverge: seq %+v vs sharded %+v", R, shards, seq, sh)
					}
				}
			}
		})
	}
}

// tracesEqual compares everything a trace records except the protocol
// name: outputs, rounds and the full cost accounting.
func tracesEqual(a, b *Trace) bool {
	if a.Rounds != b.Rounds || a.Messages != b.Messages ||
		a.Payload != b.Payload || a.MaxNodePayload != b.MaxNodePayload {
		return false
	}
	for v := range a.X {
		if a.X[v] != b.X[v] {
			return false
		}
	}
	return true
}

// TestShardedEngineStress reruns the sharded engine with several shard
// counts on a larger torus; under `go test -race` this exercises the
// shard barrier and the cross-shard outbox reads for data races, and it
// pins determinism across repetitions and shard counts.
func TestShardedEngineStress(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := fullGraph(in)
	nw := mustNetwork(t, in, g)
	first, err := nw.RunSequential(AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 2, 5, 64} {
		for rep := 0; rep < 2; rep++ {
			tr, err := nw.RunSharded(AverageProtocol{Radius: 1}, shards)
			if err != nil {
				t.Fatal(err)
			}
			if !tracesEqual(tr, first) {
				t.Fatalf("shards=%d rep=%d: diverged from sequential reference", shards, rep)
			}
		}
	}
}

// TestTraceAccounting pins the communication-cost semantics: the safe
// protocol is zero-round and silent, while averaging floods for 2R+1
// rounds with every record delivered once per edge direction within the
// horizon.
func TestTraceAccounting(t *testing.T) {
	in, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{})
	g := fullGraph(in)
	nw := mustNetwork(t, in, g)

	safe, err := nw.RunSequential(SafeProtocol{})
	if err != nil {
		t.Fatal(err)
	}
	if safe.Rounds != 0 || safe.Messages != 0 || safe.Payload != 0 || safe.MaxNodePayload != 0 {
		t.Fatalf("safe should be silent, got %+v", safe)
	}

	avg, err := nw.RunSequential(AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Rounds != 3 {
		t.Fatalf("averaging R=1 should run 2R+1 = 3 rounds, got %d", avg.Rounds)
	}
	if avg.Messages == 0 || avg.Payload == 0 || avg.MaxNodePayload == 0 {
		t.Fatalf("missing cost accounting: %+v", avg)
	}
	if avg.MaxNodePayload > avg.Payload {
		t.Fatalf("per-node payload %d exceeds total %d", avg.MaxNodePayload, avg.Payload)
	}
	// Flooding must deliver every record within the horizon to every
	// node at least once, so the total payload is bounded below by
	// Σ_v (|B(v, horizon)| − 1) — the records each node must learn.
	wantPayload := 0
	for v := 0; v < in.NumAgents(); v++ {
		wantPayload += len(g.Ball(v, avg.Rounds)) - 1
	}
	if avg.Payload < wantPayload {
		t.Fatalf("payload %d below the %d records the nodes must have received", avg.Payload, wantPayload)
	}
}

// TestGoroutineEngineParallelStress runs the goroutine engine on a
// larger instance several times; under `go test -race` this exercises
// the barrier and the outbox handoff for data races.
func TestGoroutineEngineParallelStress(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := fullGraph(in)
	nw := mustNetwork(t, in, g)
	var first *Trace
	for rep := 0; rep < 3; rep++ {
		tr, err := nw.RunGoroutines(AverageProtocol{Radius: 1})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = tr
			continue
		}
		for v := range tr.X {
			if tr.X[v] != first.X[v] {
				t.Fatalf("rep %d: nondeterministic output at node %d", rep, v)
			}
		}
		if tr.Messages != first.Messages || tr.Payload != first.Payload {
			t.Fatalf("rep %d: nondeterministic accounting", rep)
		}
	}
}

// TestStabilizingRecovery corrupts random node state mid-run and asserts
// the §1.1 guarantee: outputs return to the exact fault-free solution
// within one horizon of the fault.
func TestStabilizingRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name   string
		dims   []int
		radius int
	}{
		{"torus5x5-R1", []int{5, 5}, 1},
		{"cycle24-R2", []int{24}, 2},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			in, _ := gen.Torus(cse.dims, gen.LatticeOptions{})
			g := fullGraph(in)
			nw := mustNetwork(t, in, g)
			p := StabilizingAverage{Radius: cse.radius}
			fault := p.Horizon() + 1
			rounds := fault + p.Horizon() + 2
			corrupted := 0
			run, err := nw.RunStabilizing(p, rounds, fault, func(nodes []*StabNodeHandle) {
				for _, h := range nodes {
					if rng.Intn(2) == 0 {
						h.Drop()
						corrupted++
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if corrupted == 0 {
				t.Fatal("fault injection corrupted no nodes; choose another seed")
			}
			if len(run.Outputs) != rounds {
				t.Fatalf("want %d output vectors, got %d", rounds, len(run.Outputs))
			}
			if run.StableFrom < 0 || run.StableFrom > fault+p.Horizon() {
				t.Fatalf("StableFrom = %d outside [0, fault+horizon] = [0, %d]", run.StableFrom, fault+p.Horizon())
			}
			// The reference must be the converged averaging output.
			avg, err := core.LocalAverage(in, g, cse.radius)
			if err != nil {
				t.Fatal(err)
			}
			for v := range avg.X {
				if run.Reference[v] != avg.X[v] {
					t.Fatalf("reference diverged from core at %d", v)
				}
				if run.Outputs[rounds-1][v] != avg.X[v] {
					t.Fatalf("final output still perturbed at %d", v)
				}
			}
		})
	}
}

// TestStabilizingFaultFree checks the cold-start behaviour: with no
// fault injected, the stabilising engine converges to the reference
// within one horizon of round 0 and stays there.
func TestStabilizingFaultFree(t *testing.T) {
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{})
	nw := mustNetwork(t, in, fullGraph(in))
	p := StabilizingAverage{Radius: 1}
	run, err := nw.RunStabilizing(p, p.Horizon()+3, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.StableFrom < 0 || run.StableFrom > p.Horizon() {
		t.Fatalf("fault-free StableFrom = %d, want ≤ horizon %d", run.StableFrom, p.Horizon())
	}
}

// TestStabilizingProtocolUnderFloodingEngines checks that
// StabilizingAverage is also a plain Protocol whose one-shot run matches
// AverageProtocol exactly.
func TestStabilizingProtocolUnderFloodingEngines(t *testing.T) {
	in, _ := gen.Cycle(16, gen.LatticeOptions{})
	nw := mustNetwork(t, in, fullGraph(in))
	a, err := nw.RunSequential(AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := nw.RunSequential(StabilizingAverage{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != s.X[v] {
			t.Fatalf("stabilizing protocol diverged at %d", v)
		}
	}
}

// TestValidation covers the error paths of the runtime.
func TestValidation(t *testing.T) {
	in, _ := gen.Cycle(8, gen.LatticeOptions{})
	other, _ := gen.Cycle(9, gen.LatticeOptions{})
	if _, err := NewNetwork(in, fullGraph(other)); err == nil {
		t.Fatal("mismatched graph accepted")
	}
	if _, err := NewNetwork(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	nw := mustNetwork(t, in, fullGraph(in))
	if _, err := nw.RunSequential(nil); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := nw.RunSequential(AverageProtocol{Radius: -1}); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, err := nw.RunStabilizing(StabilizingAverage{Radius: 1}, 0, 0, nil); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestSessionNetworkAgreement checks that a session-backed network —
// engines reading the session's retained ball index and solving through
// its shared cache — produces outputs and cost traces bit-identical to
// a plain network, under every engine, and that the session's cache
// actually absorbed the nodes' redundant re-solves.
func TestSessionNetworkAgreement(t *testing.T) {
	for _, tc := range testCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			g := fullGraph(tc.in)
			plain := mustNetwork(t, tc.in, g)
			sess := core.NewSolverFromGraph(tc.in, fullGraph(tc.in))
			// Warm the session first, so the engines reuse query-solved LPs.
			for _, radius := range tc.radii {
				if _, err := sess.LocalAverage(radius); err != nil {
					t.Fatal(err)
				}
			}
			snw, err := NewSessionNetwork(sess)
			if err != nil {
				t.Fatal(err)
			}
			for _, radius := range tc.radii {
				proto := AverageProtocol{Radius: radius}
				ref, err := plain.RunSequential(proto)
				if err != nil {
					t.Fatal(err)
				}
				engines := []struct {
					name string
					run  func() (*Trace, error)
				}{
					{"sequential", func() (*Trace, error) { return snw.RunSequential(proto) }},
					{"goroutines", func() (*Trace, error) { return snw.RunGoroutines(proto) }},
					{"sharded3", func() (*Trace, error) { return snw.RunSharded(proto, 3) }},
				}
				for _, e := range engines {
					tr, err := e.run()
					if err != nil {
						t.Fatalf("%s: %v", e.name, err)
					}
					if tr.Rounds != ref.Rounds || tr.Messages != ref.Messages ||
						tr.Payload != ref.Payload || tr.MaxNodePayload != ref.MaxNodePayload {
						t.Errorf("%s R=%d: trace diverged: %+v vs %+v", e.name, radius, tr, ref)
					}
					for v := range ref.X {
						if tr.X[v] != ref.X[v] {
							t.Fatalf("%s R=%d: X[%d] = %v, want %v", e.name, radius, v, tr.X[v], ref.X[v])
						}
					}
				}
			}
			if sess.Cache().Hits() == 0 {
				t.Error("session cache served no hits to the engines")
			}
		})
	}
}

// TestSessionNetworkValidation covers the nil-session error path.
func TestSessionNetworkValidation(t *testing.T) {
	if _, err := NewSessionNetwork(nil); err == nil {
		t.Error("nil session accepted")
	}
}
