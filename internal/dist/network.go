package dist

import (
	"errors"
	"fmt"

	"maxminlp/internal/core"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// Network binds an instance to its communication hypergraph for
// distributed execution. It precomputes the per-agent ROMs once; the
// engines share them across runs (records are immutable).
type Network struct {
	in   *mmlp.Instance
	g    *hypergraph.Graph
	roms []*agentRecord

	// sess, when non-nil, lets the engines reuse the session's retained
	// ball indexes and shared solve cache for the per-node output
	// computations (see NewSessionNetwork). Outputs are bit-identical
	// with or without it.
	sess *core.Solver

	// obsM, when non-nil, receives run/round/message counters and barrier
	// wait latencies from every engine run (see SetObs).
	obsM *obs.DistMetrics
}

// SetObs attaches (or, with nil, detaches) engine metrics: runs per
// engine, rounds, delivered messages and payload records, per-round
// message counts (sequential engine) and barrier wait time (goroutine
// and sharded engines). Metrics never change any output bit. Not safe
// to call concurrently with a run.
func (nw *Network) SetObs(m *obs.DistMetrics) { nw.obsM = m }

// recordRun folds one finished trace into the engine metrics.
func (nw *Network) recordRun(engine string, tr *Trace) {
	m := nw.obsM
	if m == nil {
		return
	}
	m.EngineRuns(engine).Inc()
	m.Rounds.Add(int64(tr.Rounds))
	m.Messages.Add(int64(tr.Messages))
	m.Records.Add(int64(tr.Payload))
}

// NewNetwork builds a Network over the instance and its communication
// hypergraph. The graph must have one vertex per agent.
func NewNetwork(in *mmlp.Instance, g *hypergraph.Graph) (*Network, error) {
	if in == nil || g == nil {
		return nil, errors.New("dist: nil instance or graph")
	}
	if g.NumVertices() != in.NumAgents() {
		return nil, fmt.Errorf("dist: graph has %d vertices but instance has %d agents",
			g.NumVertices(), in.NumAgents())
	}
	return &Network{in: in, g: g, roms: buildRecords(in, g)}, nil
}

// NewSessionNetwork builds a Network over a Solver session's instance
// and hypergraph, and threads the session through the engines: each
// node's Theorem-3 output reads the session's retained radius-R ball
// index instead of re-deriving balls from gathered records, and solves
// its local LPs through a ball solver backed by the session's shared
// (internally synchronised) cache — so the redundant re-solves of the
// protocol dedup across nodes, engines and prior session queries.
// Outputs and traces stay bit-identical to a plain NewNetwork run: ball
// contents are equal once flooding has delivered the horizon, and a
// cached LP solution is only reused after an exact canonical-key match.
//
// The network snapshots the session's instance at construction; weight
// or topology updates applied to the session afterwards are not
// reflected in the records until Resync re-snapshots them.
func NewSessionNetwork(sess *core.Solver) (*Network, error) {
	if sess == nil {
		return nil, errors.New("dist: nil session")
	}
	in, g := sess.Snapshot()
	nw, err := NewNetwork(in, g)
	if err != nil {
		return nil, err
	}
	nw.sess = sess
	return nw, nil
}

// Resync re-snapshots a session-backed network after updates were
// applied to the session — in particular topology updates, under which
// nodes appear and disappear between runs. The per-agent ROMs and the
// graph are rebuilt from the session's current instance, so the next run
// produces outputs and traces bit-identical to a cold network over the
// mutated instance (detached agents become isolated zero-activity
// nodes). Runs already in flight are unaffected: they keep the records
// and graph they started with. Resync must not be called concurrently
// with a run on the same Network.
func (nw *Network) Resync() error {
	if nw.sess == nil {
		return errors.New("dist: Resync requires a session-backed network (NewSessionNetwork)")
	}
	in, g := nw.sess.Snapshot()
	if g.NumVertices() != in.NumAgents() {
		return fmt.Errorf("dist: session graph has %d vertices but instance has %d agents",
			g.NumVertices(), in.NumAgents())
	}
	nw.in, nw.g, nw.roms = in, g, buildRecords(in, g)
	return nil
}

// NumAgents returns the number of nodes in the network.
func (nw *Network) NumAgents() int { return len(nw.roms) }

// Trace reports the output and communication cost of one protocol
// execution.
type Trace struct {
	// Protocol names the protocol that produced the trace.
	Protocol string
	// X is the combined output: X[v] is the activity node v announced.
	X []float64
	// Rounds is the number of synchronous communication rounds executed
	// (the protocol's horizon; the schedule is fixed because a node
	// cannot detect globally that flooding has finished).
	Rounds int
	// Messages counts point-to-point messages delivered; a node with
	// nothing new to forward in a round stays silent.
	Messages int
	// Payload counts the agent records delivered across all messages —
	// the simulator's unit of communication volume.
	Payload int
	// MaxNodePayload is the largest payload received by any single node,
	// the per-node communication cost the locality guarantee of §1.1
	// keeps constant as the network grows.
	MaxNodePayload int
}

// newFloodNodes validates the protocol and builds the per-node state for
// a full-information run.
func (nw *Network) newFloodNodes(p Protocol) ([]*floodNode, error) {
	if p == nil {
		return nil, errors.New("dist: nil protocol")
	}
	if p.Horizon() < 0 {
		return nil, fmt.Errorf("dist: protocol %s has negative horizon %d", p.Name(), p.Horizon())
	}
	nodes := make([]*floodNode, len(nw.roms))
	for v, rom := range nw.roms {
		nodes[v] = newFloodNode(rom)
		if nw.sess != nil {
			// One ball solver per node keeps the workspace and key
			// buffer single-goroutine under every engine; the cache
			// behind them is the session's and is safe to share. The
			// graph snapshot pins which topology the session's ball
			// indexes may serve this run.
			nodes[v].know.sess = nw.sess
			nodes[v].know.solver = nw.sess.NewBallSolver()
			nodes[v].know.graph = nw.g
		}
	}
	return nodes, nil
}

// finish aggregates per-node results into the trace, surfacing the
// lowest-numbered node error if any occurred.
func (nw *Network) finish(tr *Trace, nodes []*floodNode) (*Trace, error) {
	tr.X = make([]float64, len(nodes))
	for v, nd := range nodes {
		if nd.err != nil {
			return nil, fmt.Errorf("dist: %s: node %d: %w", tr.Protocol, v, nd.err)
		}
		tr.X[v] = nd.x
		tr.Messages += nd.msgs
		tr.Payload += nd.received
		if nd.received > tr.MaxNodePayload {
			tr.MaxNodePayload = nd.received
		}
	}
	return tr, nil
}
