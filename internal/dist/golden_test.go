package dist

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"maxminlp/internal/core"
	"maxminlp/internal/gen"
	"maxminlp/internal/mmlp"
)

// The golden-trace regression corpus: for each canonical family and
// radius, the full trace of the Theorem-3 protocol — output vector
// (exact float64 bits, hex-encoded), rounds, messages, payload — is
// committed under testdata/, once for the pristine instance and once
// after a fixed topology-churn batch. Every engine (sequential, sharded,
// session-backed, post-churn resynced) must reproduce the committed
// traces bit-for-bit, so an engine or solver refactor that changes any
// output bit — or any message count — fails loudly instead of silently.
//
// Regenerate with:
//
//	go test ./internal/dist -run TestGoldenTraces -update

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/")

type goldenTrace struct {
	Protocol       string   `json:"protocol"`
	Rounds         int      `json:"rounds"`
	Messages       int      `json:"messages"`
	Payload        int      `json:"payload"`
	MaxNodePayload int      `json:"maxNodePayload"`
	X              []string `json:"x"` // exact hex float64 per agent
}

type goldenFile struct {
	Family  string      `json:"family"`
	Radius  int         `json:"radius"`
	Initial goldenTrace `json:"initial"`
	Churned goldenTrace `json:"churned"`
}

func encodeTrace(tr *Trace) goldenTrace {
	g := goldenTrace{
		Protocol:       tr.Protocol,
		Rounds:         tr.Rounds,
		Messages:       tr.Messages,
		Payload:        tr.Payload,
		MaxNodePayload: tr.MaxNodePayload,
		X:              make([]string, len(tr.X)),
	}
	for i, x := range tr.X {
		g.X[i] = strconv.FormatFloat(x, 'x', -1, 64)
	}
	return g
}

func sameGolden(t *testing.T, label string, got, want goldenTrace) {
	t.Helper()
	if got.Protocol != want.Protocol || got.Rounds != want.Rounds ||
		got.Messages != want.Messages || got.Payload != want.Payload ||
		got.MaxNodePayload != want.MaxNodePayload {
		t.Fatalf("%s: trace header (%s r=%d m=%d p=%d mnp=%d) != golden (%s r=%d m=%d p=%d mnp=%d)",
			label, got.Protocol, got.Rounds, got.Messages, got.Payload, got.MaxNodePayload,
			want.Protocol, want.Rounds, want.Messages, want.Payload, want.MaxNodePayload)
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: %d outputs, golden has %d", label, len(got.X), len(want.X))
	}
	for v := range want.X {
		if got.X[v] != want.X[v] {
			t.Fatalf("%s: X[%d] = %s, golden %s", label, v, got.X[v], want.X[v])
		}
	}
}

// goldenChurn is the fixed structural batch applied to every family: a
// node joins (wired into resource 0 and party 0), and node 1 leaves.
func goldenChurn(in *mmlp.Instance) []mmlp.TopoUpdate {
	n := in.NumAgents()
	return []mmlp.TopoUpdate{
		mmlp.AddAgent(),
		mmlp.AddResourceEdge(0, n, 1.25),
		mmlp.AddPartyEdge(0, n, 0.75),
		mmlp.RemoveAgent(1),
	}
}

// runAllEngines executes the protocol on the deprecated entry points and
// on every engine in the registry, requires bit-identical results, and
// returns the common trace. Engines whose cost accounting matches the
// sequential reference (CostExact) must reproduce the full trace;
// others (stabilizing) must still reproduce every output bit.
func runAllEngines(t *testing.T, label string, nw *Network, p Protocol) *Trace {
	t.Helper()
	seq, err := nw.RunSequential(p)
	if err != nil {
		t.Fatalf("%s: sequential: %v", label, err)
	}
	for _, shards := range []int{1, 3} {
		sh, err := nw.RunSharded(p, shards)
		if err != nil {
			t.Fatalf("%s: sharded(%d): %v", label, shards, err)
		}
		sameTraceGolden(t, label+"/sharded", sh, seq)
	}
	for _, name := range Engines() {
		eng, err := New(name, Options{Shards: 3})
		if err != nil {
			t.Fatalf("%s: New(%q): %v", label, name, err)
		}
		tr, err := eng.Run(nw, p)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, name, err)
		}
		if eng.CostExact() {
			sameTraceGolden(t, label+"/"+name, tr, seq)
			continue
		}
		if len(tr.X) != len(seq.X) {
			t.Fatalf("%s: %s: %d outputs, want %d", label, name, len(tr.X), len(seq.X))
		}
		for v := range seq.X {
			if tr.X[v] != seq.X[v] {
				t.Fatalf("%s: %s: X[%d] = %x, want %x", label, name, v, tr.X[v], seq.X[v])
			}
		}
	}
	return seq
}

func sameTraceGolden(t *testing.T, label string, got, want *Trace) {
	t.Helper()
	sameGolden(t, label, encodeTrace(got), encodeTrace(want))
}

func TestGoldenTraces(t *testing.T) {
	rngW := rand.New(rand.NewSource(33))
	torus, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rngW})
	grid, _ := gen.Grid([]int{5, 5}, gen.LatticeOptions{RandomWeights: true, Rng: rngW})
	geo, _ := gen.UnitDisk(gen.UnitDiskOptions{
		Nodes: 30, Radius: 0.28, MaxNeighbors: 4, RandomWeights: true,
	}, rand.New(rand.NewSource(35)))
	families := []struct {
		name string
		in   *mmlp.Instance
	}{
		{"torus6x6", torus},
		{"grid5x5", grid},
		{"geometric30", geo},
	}
	for _, fam := range families {
		for _, radius := range []int{1, 2} {
			name := fam.name + "_R" + strconv.Itoa(radius)
			t.Run(name, func(t *testing.T) {
				proto := AverageProtocol{Radius: radius}

				// Initial traces: plain network and session-backed network
				// must agree, across every engine.
				plain, err := NewNetwork(fam.in, fullGraph(fam.in))
				if err != nil {
					t.Fatal(err)
				}
				initial := runAllEngines(t, "initial/plain", plain, proto)
				sess := core.NewSolverFromGraph(fam.in, fullGraph(fam.in))
				snw, err := NewSessionNetwork(sess)
				if err != nil {
					t.Fatal(err)
				}
				sameTraceGolden(t, "initial/session", runAllEngines(t, "initial/session", snw, proto), initial)

				// Churn: patch the session, resync the session network, and
				// require agreement with a cold network over the mutated
				// instance — nodes appeared and disappeared in between.
				ops := goldenChurn(fam.in)
				mirror, _, err := fam.in.ApplyTopo(ops)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sess.UpdateTopology(ops); err != nil {
					t.Fatal(err)
				}
				if err := snw.Resync(); err != nil {
					t.Fatal(err)
				}
				churned := runAllEngines(t, "churned/session", snw, proto)
				coldNW, err := NewNetwork(mirror, fullGraph(mirror))
				if err != nil {
					t.Fatal(err)
				}
				sameTraceGolden(t, "churned/cold", runAllEngines(t, "churned/cold", coldNW, proto), churned)
				if tr := churned; tr.X[1] != 0 {
					t.Errorf("removed node 1 announced activity %v, want 0", tr.X[1])
				}

				// Golden comparison (or regeneration with -update).
				path := filepath.Join("testdata", "trace_"+name+".json")
				gf := goldenFile{
					Family:  fam.name,
					Radius:  radius,
					Initial: encodeTrace(initial),
					Churned: encodeTrace(churned),
				}
				if *updateGolden {
					blob, err := json.MarshalIndent(gf, "", "\t")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				blob, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				var want goldenFile
				if err := json.Unmarshal(blob, &want); err != nil {
					t.Fatal(err)
				}
				sameGolden(t, "golden/initial", gf.Initial, want.Initial)
				sameGolden(t, "golden/churned", gf.Churned, want.Churned)
			})
		}
	}
}

// TestSessionNetworkChurnAgainstEngines drives random churn through a
// session-backed network and checks, after every Resync, that all
// engines agree with a cold network over the independently mutated
// mirror — the distributed counterpart of TestSessionTopologyVsCold.
func TestSessionNetworkChurnAgainstEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	in, _ := gen.Torus([]int{5, 5}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	sess := core.NewSolverFromGraph(in, fullGraph(in))
	nw, err := NewSessionNetwork(sess)
	if err != nil {
		t.Fatal(err)
	}
	proto := AverageProtocol{Radius: 1}
	mirror := in
	for round := 0; round < 4; round++ {
		preChurn, err := nw.RunSequential(proto)
		if err != nil {
			t.Fatal(err)
		}
		ops, next := gen.RandomTopoBatch(mirror, rng, 1+rng.Intn(3))
		if _, err := sess.UpdateTopology(ops); err != nil {
			t.Fatal(err)
		}
		// Before Resync the network must keep serving its snapshot: the
		// session's patched ball indexes describe a different graph than
		// the gathered records and must not leak into the run.
		stale, err := nw.RunSequential(proto)
		if err != nil {
			t.Fatal(err)
		}
		sameTraceGolden(t, "pre-resync snapshot", stale, preChurn)
		mirror = next
		if err := nw.Resync(); err != nil {
			t.Fatal(err)
		}
		got := runAllEngines(t, "churned", nw, proto)
		coldNW, err := NewNetwork(mirror, fullGraph(mirror))
		if err != nil {
			t.Fatal(err)
		}
		want, err := coldNW.RunSequential(proto)
		if err != nil {
			t.Fatal(err)
		}
		sameTraceGolden(t, "vs cold", got, want)
	}
	if nw2, err := NewNetwork(in, fullGraph(in)); err != nil || nw2.Resync() == nil {
		t.Error("Resync on a plain network should fail")
	}
}
