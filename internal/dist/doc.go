// Package dist is the distributed message-passing runtime of the
// library: it executes the paper's local algorithms as synchronous
// protocols over the communication hypergraph H, in the model of
// Section 1.5 of Floréen–Kaski–Musto–Suomela (IPDPS 2008).
//
// # Model
//
// Every agent of the max-min LP is a network node. A node's hard-wired
// input (its "ROM") is its radius-1 knowledge: its own coefficients
// a_iv and c_kv, the full supports Vi and Vk of its own resources and
// parties, and its neighbour list in H. Everything else must be learned
// by exchanging messages with neighbours in synchronous rounds. The unit
// of payload is the agent record — one node's ROM — and Trace reports
// how many records were delivered in total and per node.
//
// # Protocols
//
// A Protocol is a deterministic local algorithm: it floods records for
// Horizon() rounds, after which each node knows the records of every
// agent within that distance, and then computes its activity x_v from
// that local view alone. SafeProtocol (equation (2)) needs zero rounds;
// AverageProtocol (Theorem 3) floods to distance 2R+1, re-solves the
// local LP (9) of every agent in its radius-R ball, and combines the
// solutions per equation (10). Because each node's computation replays
// the exact arithmetic of the centralised implementation in internal/
// core — same orderings, same floating-point operations — the
// distributed outputs agree bit-for-bit with core.Safe and
// core.LocalAverage.
//
// # Engines
//
// Network.RunSequential executes a protocol in a single goroutine,
// visiting nodes in ascending order: the deterministic reference.
// Network.RunGoroutines runs one goroutine per agent with a reusable
// round barrier; since every node's merge and output are pure functions
// of deterministically ordered messages, its results — including the
// cost accounting — are bit-for-bit identical to the sequential engine
// under any goroutine scheduling.
//
// # Self-stabilisation
//
// Network.RunStabilizing executes a protocol in the self-stabilising
// mode of Section 1.1: nodes keep no trusted soft state, but instead
// maintain layered record tables K_0 ⊆ K_1 ⊆ … ⊆ K_T (T = Horizon())
// that are rebuilt every round from the neighbours' tables one level
// down plus the node's own ROM. Level d is therefore correct d rounds
// after the last fault, and the outputs return to the exact fault-free
// solution within one horizon of any transient state corruption —
// StabilizingRun.StableFrom reports when.
package dist
