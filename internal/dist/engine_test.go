package dist

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestEngineRegistryNames pins the built-in registry contents (sorted)
// so a renamed or dropped engine fails loudly.
func TestEngineRegistryNames(t *testing.T) {
	want := []string{"goroutines", "partitioned", "sequential", "sharded", "stabilizing"}
	if got := Engines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
}

func TestEngineRegistryErrors(t *testing.T) {
	if _, err := New("nonexistent", Options{}); err == nil || !strings.Contains(err.Error(), "sharded") {
		t.Fatalf("unknown engine error should list registered names, got %v", err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() {
		Register("sequential", func(Options) (Engine, error) { return nil, nil })
	})
	mustPanic("nil ctor", func() { Register("fresh-name", nil) })
}

// TestEngineConformance is the registry-wide conformance suite: every
// registered engine must reproduce the sequential reference bit for bit
// on every test family — the full trace for cost-exact engines, every
// output bit for the rest — for both protocols, on plain networks.
func TestEngineConformance(t *testing.T) {
	for _, tc := range testCases(t) {
		nw := mustNetwork(t, tc.in, fullGraph(tc.in))
		protos := []Protocol{SafeProtocol{}}
		for _, r := range tc.radii {
			protos = append(protos, AverageProtocol{Radius: r})
		}
		for _, p := range protos {
			seq, err := nw.runSequential(p)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, p.Name(), err)
			}
			for _, name := range Engines() {
				for _, shards := range []int{1, 2, 5} {
					eng, err := New(name, Options{Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					if eng.Name() != name {
						t.Fatalf("New(%q).Name() = %q", name, eng.Name())
					}
					tr, err := eng.Run(nw, p)
					if err != nil {
						t.Fatalf("%s/%s/%s(%d): %v", tc.name, p.Name(), name, shards, err)
					}
					label := tc.name + "/" + p.Name() + "/" + name
					if eng.CostExact() {
						sameTraceGolden(t, label, tr, seq)
					} else {
						for v := range seq.X {
							if tr.X[v] != seq.X[v] {
								t.Fatalf("%s: X[%d] = %x, want %x", label, v, tr.X[v], seq.X[v])
							}
						}
					}
				}
			}
		}
	}
}

// TestPartitionOwnerInvertsBounds checks, exhaustively over small sizes,
// that Owner is the exact inverse of the contiguous Bounds split.
func TestPartitionOwnerInvertsBounds(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for m := 1; m <= 12; m++ {
			covered := 0
			for w := 0; w < m; w++ {
				pt := Partition{Self: w, Members: m}
				lo, hi := pt.Bounds(n)
				if lo != covered {
					t.Fatalf("n=%d m=%d: member %d starts at %d, want %d", n, m, w, lo, covered)
				}
				for v := lo; v < hi; v++ {
					if got := pt.Owner(v, n); got != w {
						t.Fatalf("n=%d m=%d: Owner(%d) = %d, want %d", n, m, v, got, w)
					}
				}
				covered = hi
			}
			if covered != n {
				t.Fatalf("n=%d m=%d: members cover [0,%d)", n, m, covered)
			}
		}
	}
}

func TestRunPartitionedValidation(t *testing.T) {
	tc := testCases(t)[0]
	nw := mustNetwork(t, tc.in, fullGraph(tc.in))
	ts := NewLoopback(2)
	if _, err := nw.RunPartitioned(AverageProtocol{Radius: 1}, Partition{Self: 2, Members: 2}, ts[0]); err == nil {
		t.Error("out-of-range partition accepted")
	}
	if _, err := nw.RunPartitioned(AverageProtocol{Radius: 1}, Partition{Self: 1, Members: 2}, ts[0]); err == nil {
		t.Error("mismatched transport accepted")
	}
	if _, err := nw.RunPartitioned(AverageProtocol{Radius: 1}, Partition{Self: 0, Members: 2}, nil); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestMergePartsErrors(t *testing.T) {
	mk := func(lo, hi, rounds int) *PartialTrace {
		return &PartialTrace{Lo: lo, Hi: hi, Rounds: rounds, X: make([]float64, hi-lo)}
	}
	if _, err := MergeParts("p", 10, []*PartialTrace{mk(0, 5, 3), mk(6, 10, 3)}); err == nil {
		t.Error("gap accepted")
	}
	if _, err := MergeParts("p", 10, []*PartialTrace{mk(0, 5, 3), mk(5, 10, 4)}); err == nil {
		t.Error("round mismatch accepted")
	}
	if _, err := MergeParts("p", 10, []*PartialTrace{mk(0, 5, 3), nil}); err == nil {
		t.Error("nil part accepted")
	}
	if _, err := MergeParts("p", 12, []*PartialTrace{mk(0, 5, 3), mk(5, 10, 3)}); err == nil {
		t.Error("short cover accepted")
	}
	tr, err := MergeParts("p", 10, []*PartialTrace{mk(5, 10, 3), mk(0, 5, 3)})
	if err != nil || len(tr.X) != 10 || tr.Rounds != 3 {
		t.Errorf("unsorted valid parts: %+v, %v", tr, err)
	}
}

// TestRunPartitionedTCP runs the partitioned engine over a real TCP mesh
// on loopback — three OS-level members — and requires the merged trace
// to be bit-identical to the sequential reference. This is the tentpole
// wire path minus process isolation.
func TestRunPartitionedTCP(t *testing.T) {
	const members = 3
	for _, tc := range testCases(t) {
		seqNW := mustNetwork(t, tc.in, fullGraph(tc.in))
		p := AverageProtocol{Radius: tc.radii[len(tc.radii)-1]}
		seq, err := seqNW.runSequential(p)
		if err != nil {
			t.Fatal(err)
		}

		lns := make([]net.Listener, members)
		addrs := make([]string, members)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			lns[i] = ln
			addrs[i] = ln.Addr().String()
		}
		parts := make([]*PartialTrace, members)
		errs := make([]error, members)
		var wg sync.WaitGroup
		wg.Add(members)
		for w := 0; w < members; w++ {
			go func(w int) {
				defer wg.Done()
				mesh, err := NewTCPMesh(w, addrs, lns[w])
				if err != nil {
					errs[w] = err
					return
				}
				defer mesh.Close()
				// Each member simulates over its own independent Network,
				// as cluster workers do over their own replicas.
				nw, err := NewNetwork(tc.in, fullGraph(tc.in))
				if err != nil {
					errs[w] = err
					return
				}
				parts[w], errs[w] = nw.RunPartitioned(p, Partition{Self: w, Members: members}, mesh)
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("%s: member %d: %v", tc.name, w, err)
			}
		}
		got, err := MergeParts(p.Name(), tc.in.NumAgents(), parts)
		if err != nil {
			t.Fatal(err)
		}
		sameTraceGolden(t, tc.name+"/tcp", got, seq)
	}
}

// TestTCPMeshPeerFailure checks that a dead peer surfaces as an Exchange
// error on the survivors instead of a hang.
func TestTCPMeshPeerFailure(t *testing.T) {
	const members = 2
	lns := make([]net.Listener, members)
	addrs := make([]string, members)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	meshes := make([]*TCPMesh, members)
	var wg sync.WaitGroup
	wg.Add(members)
	for w := 0; w < members; w++ {
		go func(w int) {
			defer wg.Done()
			var err error
			meshes[w], err = NewTCPMesh(w, addrs, lns[w])
			if err != nil {
				t.Errorf("member %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	meshes[1].Close()
	out := make([][]byte, members)
	if _, err := meshes[0].Exchange(out); err == nil {
		t.Error("Exchange against a closed peer did not error")
	}
	// Every later Exchange must keep failing, not block.
	if _, err := meshes[0].Exchange(out); err == nil {
		t.Error("second Exchange against a closed peer did not error")
	}
	meshes[0].Close()

	if _, err := meshes[0].Exchange(make([][]byte, members+1)); err == nil {
		t.Error("wrong payload count accepted")
	}
}
