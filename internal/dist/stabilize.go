package dist

import (
	"fmt"
	"slices"
)

// StabilizingAverage is the self-stabilising transformation of
// AverageProtocol claimed in Section 1.1: run via Network.RunStabilizing
// it keeps no trusted soft state, recomputing everything from its
// neighbours every round, and therefore recovers the exact fault-free
// outputs within Horizon() rounds of any transient state corruption. It
// also implements Protocol, so the same algorithm can run once under the
// full-information engines.
type StabilizingAverage struct {
	// Radius is the averaging radius R of Theorem 3.
	Radius int
}

// Name returns "stabilizing-average(R=...)".
func (p StabilizingAverage) Name() string {
	return fmt.Sprintf("stabilizing-average(R=%d)", p.Radius)
}

// Horizon returns the information horizon 2R+1, which is also the
// stabilisation time: the layered soft state is fully re-derived from
// the ROMs every Horizon() rounds.
func (p StabilizingAverage) Horizon() int { return 2*p.Radius + 1 }

// output is the Theorem-3 averaging output on whatever knowledge the
// node currently holds.
func (p StabilizingAverage) output(k *knowledge) (float64, error) {
	return AverageProtocol{Radius: p.Radius}.output(k)
}

// stabNode is the per-node state of the stabilising engine: layered
// record tables layers[d] = K_d, the node's current belief about the
// records within distance d, for d = 0..T. Each round the node discards
// all soft state and rebuilds K_d from its neighbours' K_{d−1} tables
// plus its own ROM, so level d is provably correct d rounds after the
// last fault — the standard layered self-stabilisation argument.
type stabNode struct {
	rom      *agentRecord
	horizon  int
	layers   []map[int]*agentRecord
	outbox   []map[int]*agentRecord // snapshot of layers[0..T-1] for neighbours
	msgs     int
	received int
}

// reset restores the cold-start state: every layer holds only the ROM.
func (nd *stabNode) reset() {
	nd.layers = make([]map[int]*agentRecord, nd.horizon+1)
	for d := range nd.layers {
		nd.layers[d] = map[int]*agentRecord{nd.rom.agent: nd.rom}
	}
}

// stage publishes layers K_0..K_{T-1}; recompute never mutates old layer
// maps, so aliasing the snapshot is safe.
func (nd *stabNode) stage() {
	nd.outbox = nd.layers[:nd.horizon]
}

// recompute rebuilds every layer from this round's messages. The node's
// state at round t is a pure function of its ROM and its neighbours'
// round-(t−1) tables — nothing of the node's own previous soft state
// survives, which is what flushes corruption. Conflicting records for
// the same agent (impossible fault-free) resolve to the lowest-numbered
// neighbour's copy, keeping the engine deterministic.
func (nd *stabNode) recompute(inbox [][]map[int]*agentRecord) {
	layers := make([]map[int]*agentRecord, nd.horizon+1)
	layers[0] = map[int]*agentRecord{nd.rom.agent: nd.rom}
	for d := 1; d <= nd.horizon; d++ {
		merged := map[int]*agentRecord{nd.rom.agent: nd.rom}
		for _, tables := range inbox { // ascending neighbour order
			for a, rec := range tables[d-1] {
				if _, ok := merged[a]; !ok {
					merged[a] = rec
				}
			}
		}
		layers[d] = merged
	}
	nd.layers = layers
}

// StabNodeHandle gives a fault injector access to one node's state
// during a RunStabilizing execution.
type StabNodeHandle struct {
	node *stabNode
}

// Agent returns the index of the node the handle controls.
func (h *StabNodeHandle) Agent() int { return h.node.rom.agent }

// Drop wipes the node's entire soft state, as if the node had just
// rebooted mid-run. The ROM — the node's own coefficients, supports and
// neighbour list — is hard-wired and survives.
func (h *StabNodeHandle) Drop() { h.node.reset() }

// StabilizingRun reports the outputs and stabilisation round of a
// RunStabilizing execution.
type StabilizingRun struct {
	// Outputs[t] is the full output vector after round t; Outputs[0] is
	// the cold-start output before any communication.
	Outputs [][]float64
	// StableFrom is the first round from which the outputs equal the
	// fault-free protocol's outputs for the remainder of the run, or -1
	// if the run ended still perturbed. Recovery within one horizon means
	// StableFrom ≤ faultRound + Horizon().
	StableFrom int
	// Reference is the fault-free output vector the run stabilises to,
	// bit-identical to RunSequential of the same protocol.
	Reference []float64
	// Rounds and FaultRound echo the request.
	Rounds     int
	FaultRound int
	// Messages and Payload count the table exchanges of the whole run;
	// the stabilising mode pays a constant factor over one-shot flooding
	// every round, the price of perpetual fault tolerance.
	Messages int
	Payload  int
}

// RunStabilizing executes p in self-stabilising mode for the given
// number of rounds (Outputs gets one vector per round, including round
// 0). If inject is non-nil and 0 ≤ faultRound < rounds, it is called at
// round faultRound — after that round's exchange, so the corruption is
// visible in Outputs[faultRound] and is what neighbours receive next
// round — and may wipe the soft state of any subset of nodes through
// StabNodeHandle.Drop.
// Because layer K_0 is re-derived from the incorruptible ROM every
// round, layer K_d is correct again d rounds after the fault, hence
// StableFrom ≤ faultRound + p.Horizon().
func (nw *Network) RunStabilizing(p Protocol, rounds, faultRound int, inject func([]*StabNodeHandle)) (*StabilizingRun, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("dist: rounds must be ≥ 1, got %d", rounds)
	}
	// Computing the fault-free reference also validates the protocol.
	ref, err := nw.RunSequential(p)
	if err != nil {
		return nil, err
	}

	n := len(nw.roms)
	nodes := make([]*stabNode, n)
	handles := make([]*StabNodeHandle, n)
	for v, rom := range nw.roms {
		nodes[v] = &stabNode{rom: rom, horizon: p.Horizon()}
		nodes[v].reset()
		handles[v] = &StabNodeHandle{node: nodes[v]}
	}

	run := &StabilizingRun{Rounds: rounds, FaultRound: faultRound, Reference: ref.X}
	record := func() error {
		xs := make([]float64, n)
		for v, nd := range nodes {
			x, err := p.output(&knowledge{self: v, recs: nd.layers[nd.horizon]})
			if err != nil {
				return fmt.Errorf("dist: %s: node %d: %w", p.Name(), v, err)
			}
			xs[v] = x
		}
		run.Outputs = append(run.Outputs, xs)
		return nil
	}

	if faultRound == 0 && inject != nil {
		inject(handles)
	}
	if err := record(); err != nil {
		return nil, err
	}
	for t := 1; t < rounds; t++ {
		for _, nd := range nodes {
			nd.stage()
		}
		for v, nd := range nodes {
			nbrs := nw.g.Neighbors(v)
			inbox := make([][]map[int]*agentRecord, 0, len(nbrs))
			for _, u := range nbrs {
				msg := nodes[u].outbox
				if len(msg) == 0 {
					continue // horizon-0 protocols have nothing to send
				}
				inbox = append(inbox, msg)
				nd.msgs++
				for _, tbl := range msg {
					nd.received += len(tbl)
				}
			}
			nd.recompute(inbox)
		}
		if t == faultRound && inject != nil {
			inject(handles)
		}
		if err := record(); err != nil {
			return nil, err
		}
	}

	// StableFrom: the longest suffix of rounds whose outputs equal the
	// fault-free reference exactly.
	run.StableFrom = len(run.Outputs)
	for run.StableFrom > 0 && slices.Equal(run.Outputs[run.StableFrom-1], ref.X) {
		run.StableFrom--
	}
	if run.StableFrom == len(run.Outputs) {
		run.StableFrom = -1
	}
	for _, nd := range nodes {
		run.Messages += nd.msgs
		run.Payload += nd.received
	}
	return run, nil
}
