// Package wal implements the write-ahead log behind `mmlpd -data-dir`:
// an append-only, CRC-framed record log of committed weight/topology
// patches with periodic snapshots, built so a daemon killed at any
// byte boundary replays back to exactly the state it acknowledged.
//
// # On-disk format
//
// A log directory holds segment files and snapshot files:
//
//	seg-<firstLSN %016x>.wal    append-only record frames
//	snap-<lsn %016x>.wal        one frame: state at LSN + cumulative digest
//
// Every frame — in segments and snapshots alike — is
//
//	[4B big-endian payload length][4B IEEE CRC32 of payload][payload]
//
// mirroring the length-prefixed framing of internal/wire with a
// checksum added, because disks (unlike TCP) hand back torn and
// bit-rotted bytes without an error. The payload is the canonical
// encoding/json encoding of Record or snapshotFile.
//
// # Recovery
//
// Open loads the newest snapshot that passes its CRC, then replays
// every segment record with LSN greater than the snapshot's, verifying
// CRC and LSN contiguity. The first bad frame is treated as a torn
// tail: the file is truncated at that byte offset, later segments are
// deleted, and replay stops. This is exactly the "acked ⇒ logged"
// contract: a record either round-trips bit-identically or was never
// acknowledged (the crash happened mid-write), so dropping it is
// correct.
//
// # Digest
//
// The log folds every committed record payload into a cumulative
// fnv64a digest, seeded from the snapshot's stored digest on reopen.
// Two logs that replay to the same digest committed bit-identical
// patch sequences; mmlpd compares this against its replica digests to
// prove a restart reproduced session state exactly.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when Append calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged patch
	// survives power loss, at ~one disk flush per patch.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.Interval; a crash
	// may lose the last interval's worth of acknowledged patches but
	// never corrupts the log (the tail is truncated on reopen).
	SyncInterval
	// SyncNever leaves flushing to the OS. For tests and throwaway
	// data directories.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options tune a Log. The zero value is usable: ~1MiB segments,
// SyncAlways.
type Options struct {
	// SegmentBytes rotates to a fresh segment file once the active one
	// exceeds this size. Default 1MiB.
	SegmentBytes int64
	// Policy picks the fsync cadence; Interval applies to
	// SyncInterval (default 100ms).
	Policy   SyncPolicy
	Interval time.Duration
	// OnAppend and OnFsync are observability callbacks (the daemon
	// wires them to counters); either may be nil. OnFsync receives the
	// wall time one fsync took.
	OnAppend func()
	OnFsync  func(time.Duration)
}

// Record is one committed log entry: a patch (or load/unload) applied
// to instance ID. Body is the exact request body that was applied —
// replay re-applies it through the same code path that served it.
type Record struct {
	LSN  uint64          `json:"lsn"`
	Type string          `json:"type"`
	ID   string          `json:"id"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Snapshot is the recovered checkpoint returned by Open: the caller's
// state blob as of LSN, with the cumulative digest at that point.
type Snapshot struct {
	LSN    uint64
	Digest uint64
	State  json.RawMessage
}

type snapshotFile struct {
	LSN    uint64          `json:"lsn"`
	Digest uint64          `json:"digest"`
	State  json.RawMessage `json:"state"`
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	headerLen = 8 // 4B length + 4B CRC
	// MaxFrame bounds a single record payload; anything larger is
	// treated as corruption during recovery.
	MaxFrame = 1 << 30
)

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu   sync.Mutex
	dir  string
	opt  Options
	f    *os.File // active segment
	size int64    // bytes written to f

	lsn       uint64 // last assigned LSN
	digest    uint64 // cumulative fnv64a over committed payloads
	sinceSnap int    // appends since the last WriteSnapshot
	lastSync  time.Time
	closed    bool
}

// Open opens (or creates) the log in dir, recovers the newest valid
// snapshot and every committed record after it, truncates any torn
// tail, and leaves the log ready to Append. The returned snapshot is
// nil when none exists; records are the committed suffix in LSN order.
func Open(dir string, opt Options) (*Log, *Snapshot, []Record, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 1 << 20
	}
	if opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	snap, err := loadLatestSnapshot(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	l := &Log{dir: dir, opt: opt, digest: fnvOffset}
	if snap != nil {
		l.lsn = snap.LSN
		l.digest = snap.Digest
	}
	recs, err := l.replaySegments(snap)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := l.openActiveSegment(); err != nil {
		return nil, nil, nil, err
	}
	return l, snap, recs, nil
}

// segmentNames returns the segment files in dir sorted by first LSN.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".wal") {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs) // %016x names sort numerically
	return segs, nil
}

func segFirstLSN(name string) (uint64, bool) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal")
	v, err := strconv.ParseUint(hex, 16, 64)
	return v, err == nil
}

// loadLatestSnapshot scans snap-*.wal newest-first and returns the
// first one whose frame passes CRC; corrupt snapshots are skipped (an
// older snapshot plus a longer replay is still correct).
func loadLatestSnapshot(dir string) (*Snapshot, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "snap-") && strings.HasSuffix(n, ".wal") {
			snaps = append(snaps, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(snaps)))
	for _, name := range snaps {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		payload, n := readFrameBytes(b, 0)
		if payload == nil || n != int64(len(b)) {
			continue // torn or trailing garbage: not trustworthy
		}
		var sf snapshotFile
		if json.Unmarshal(payload, &sf) != nil {
			continue
		}
		return &Snapshot{LSN: sf.LSN, Digest: sf.Digest, State: sf.State}, nil
	}
	return nil, nil
}

// readFrameBytes decodes one frame from b at offset off, returning the
// payload and the offset past the frame, or (nil, 0) if the bytes at
// off do not contain a complete, checksummed frame.
func readFrameBytes(b []byte, off int64) (payload []byte, end int64) {
	if int64(len(b))-off < headerLen {
		return nil, 0
	}
	n := binary.BigEndian.Uint32(b[off:])
	sum := binary.BigEndian.Uint32(b[off+4:])
	if n > MaxFrame || int64(len(b))-off-headerLen < int64(n) {
		return nil, 0
	}
	p := b[off+headerLen : off+headerLen+int64(n)]
	if crc32.ChecksumIEEE(p) != sum {
		return nil, 0
	}
	return p, off + headerLen + int64(n)
}

// replaySegments reads every segment, folds committed records into the
// digest, and truncates at the first bad frame or LSN discontinuity.
// Records at or below the snapshot LSN are skipped (already folded
// into the snapshot digest).
func (l *Log) replaySegments(snap *Snapshot) ([]Record, error) {
	segs, err := segmentNames(l.dir)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for i, name := range segs {
		path := filepath.Join(l.dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var off int64
		torn := false
		for off < int64(len(b)) {
			payload, end := readFrameBytes(b, off)
			if payload == nil {
				torn = true
				break
			}
			var r Record
			if json.Unmarshal(payload, &r) != nil {
				torn = true
				break
			}
			if r.LSN <= l.lsn {
				// Already covered by the snapshot (or a duplicate
				// from a retried write): skip without folding.
				off = end
				continue
			}
			if r.LSN != l.lsn+1 {
				// Gap: everything from here on cannot be trusted.
				torn = true
				break
			}
			l.lsn = r.LSN
			l.digest = fold(l.digest, payload)
			recs = append(recs, r)
			off = end
		}
		if torn || off < int64(len(b)) {
			if err := os.Truncate(path, off); err != nil {
				return nil, err
			}
			// Later segments would replay records past a hole;
			// delete them so the next append continues from here.
			for _, later := range segs[i+1:] {
				if err := os.Remove(filepath.Join(l.dir, later)); err != nil && !os.IsNotExist(err) {
					return nil, err
				}
			}
			break
		}
	}
	return recs, nil
}

// openActiveSegment opens the newest segment for appending, or creates
// the first one.
func (l *Log) openActiveSegment() error {
	segs, err := segmentNames(l.dir)
	if err != nil {
		return err
	}
	var path string
	if len(segs) == 0 {
		path = filepath.Join(l.dir, segName(l.lsn+1))
	} else {
		path = filepath.Join(l.dir, segs[len(segs)-1])
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, st.Size()
	return nil
}

func segName(firstLSN uint64) string { return fmt.Sprintf("seg-%016x.wal", firstLSN) }

func fold(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// Append commits one record: assigns the next LSN, frames and writes
// it, and fsyncs per policy. It returns the record as written (the
// caller needs the LSN for snapshot bookkeeping). body is marshalled
// with encoding/json; pass json.RawMessage to log request bytes
// verbatim.
func (l *Log) Append(typ, id string, body any) (Record, error) {
	raw, err := toRaw(body)
	if err != nil {
		return Record{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, fmt.Errorf("wal: log closed")
	}
	r := Record{LSN: l.lsn + 1, Type: typ, ID: id, Body: raw}
	payload, err := json.Marshal(r)
	if err != nil {
		return Record{}, err
	}
	if len(payload) > MaxFrame {
		return Record{}, fmt.Errorf("wal: record payload %d bytes exceeds MaxFrame", len(payload))
	}
	if l.size >= l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return Record{}, err
		}
	}
	frame := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[headerLen:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return Record{}, err
	}
	l.size += int64(len(frame))
	l.lsn = r.LSN
	l.digest = fold(l.digest, payload)
	l.sinceSnap++
	if l.opt.OnAppend != nil {
		l.opt.OnAppend()
	}
	if err := l.maybeSyncLocked(); err != nil {
		return Record{}, err
	}
	return r, nil
}

func toRaw(body any) (json.RawMessage, error) {
	switch b := body.(type) {
	case nil:
		return nil, nil
	case json.RawMessage:
		return b, nil
	case []byte:
		return json.RawMessage(b), nil
	}
	return json.Marshal(body)
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.lsn+1)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.size = f, 0
	return nil
}

func (l *Log) maybeSyncLocked() error {
	switch l.opt.Policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.Interval {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.lastSync = time.Now()
	if l.opt.OnFsync != nil {
		l.opt.OnFsync(time.Since(start))
	}
	return err
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// WriteSnapshot checkpoints the caller's state at the current LSN:
// the blob is framed, written to a temp file, fsynced, and renamed
// into place, then old snapshots (keeping the newest two) and fully
// covered segments are pruned. State is marshalled with encoding/json.
func (l *Log) WriteSnapshot(state any) error {
	raw, err := toRaw(state)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	// The snapshot must not claim an LSN whose record could be lost:
	// flush the segment first so everything ≤ lsn is durable.
	if err := l.syncLocked(); err != nil {
		return err
	}
	payload, err := json.Marshal(snapshotFile{LSN: l.lsn, Digest: l.digest, State: raw})
	if err != nil {
		return err
	}
	frame := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[headerLen:], payload)
	tmp, err := os.CreateTemp(l.dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	final := filepath.Join(l.dir, fmt.Sprintf("snap-%016x.wal", l.lsn))
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return err
	}
	l.sinceSnap = 0
	l.pruneLocked()
	return nil
}

// pruneLocked deletes all but the two newest snapshots, and segments
// every record of which is covered by the oldest kept snapshot. Errors
// are ignored: pruning is best-effort garbage collection, correctness
// never depends on it.
func (l *Log) pruneLocked() {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	var snaps []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "snap-") && strings.HasSuffix(n, ".wal") {
			snaps = append(snaps, n)
		}
	}
	sort.Strings(snaps)
	if len(snaps) > 2 {
		for _, n := range snaps[:len(snaps)-2] {
			os.Remove(filepath.Join(l.dir, n))
		}
		snaps = snaps[len(snaps)-2:]
	}
	if len(snaps) == 0 {
		return
	}
	// Oldest kept snapshot covers LSNs ≤ keptLSN: a segment can go
	// when the next segment starts at or before keptLSN+1 (so every
	// record in it is ≤ keptLSN).
	hex := strings.TrimSuffix(strings.TrimPrefix(snaps[0], "snap-"), ".wal")
	keptLSN, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return
	}
	segs, err := segmentNames(l.dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ { // never the active (last) segment
		next, ok := segFirstLSN(segs[i+1])
		if !ok || next > keptLSN+1 {
			break
		}
		os.Remove(filepath.Join(l.dir, segs[i]))
	}
}

// LSN returns the last committed LSN (0 before any append).
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Digest returns the cumulative fnv64a over every committed record
// payload, formatted like the replica digests mmlpd already exposes.
func (l *Log) Digest() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("%016x", l.digest)
}

// AppendsSinceSnapshot reports how many records were committed after
// the last WriteSnapshot — the daemon's snapshot-cadence trigger.
func (l *Log) AppendsSinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap
}

// Close fsyncs and closes the active segment. Append after Close
// fails.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ io.Closer = (*Log)(nil)
