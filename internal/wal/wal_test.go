package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, from, n int) []Record {
	t.Helper()
	var recs []Record
	for i := from; i < from+n; i++ {
		r, err := l.Append("weights", "i1", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, r)
	}
	return recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LSN != b[i].LSN || a[i].Type != b[i].Type || a[i].ID != b[i].ID ||
			!bytes.Equal(a[i].Body, b[i].Body) {
			return false
		}
	}
	return true
}

// Reopening a cleanly closed log must replay every record bit-identically
// and resume the LSN and digest exactly.
func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, snap, recs, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(recs) != 0 {
		t.Fatalf("fresh dir: snap=%v recs=%d", snap, len(recs))
	}
	want := appendN(t, l, 0, 25)
	lsn, dig := l.LSN(), l.Digest()
	if lsn != 25 {
		t.Fatalf("LSN = %d, want 25", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, snap2, got, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if snap2 != nil {
		t.Fatal("no snapshot was written, got one back")
	}
	if !sameRecords(want, got) {
		t.Fatalf("replay mismatch: want %d records, got %d", len(want), len(got))
	}
	if l2.LSN() != lsn || l2.Digest() != dig {
		t.Fatalf("resume state: lsn %d/%d digest %s/%s", l2.LSN(), lsn, l2.Digest(), dig)
	}
	// Appends continue the sequence.
	r, err := l2.Append("topology", "i1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.LSN != lsn+1 {
		t.Fatalf("next LSN = %d, want %d", r.LSN, lsn+1)
	}
}

// Tiny segments force rotation; replay must stitch segments together
// seamlessly and keep the digest identical to an unrotated log.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 0, 60)
	dig := l.Digest()
	l.Close()

	segs, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce ≥3 segments, got %d", len(segs))
	}

	// Reference: same records through one big segment.
	ref, _, _, err := Open(t.TempDir(), Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, ref, 0, 60)
	if ref.Digest() != dig {
		t.Fatalf("rotation changed the digest: %s vs %s", dig, ref.Digest())
	}
	ref.Close()

	l2, _, got, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !sameRecords(want, got) || l2.Digest() != dig {
		t.Fatal("multi-segment replay mismatch")
	}
}

// A snapshot checkpoints state + digest; reopen must return the
// snapshot plus only the records after it, with the digest resumed
// from the stored value.
func TestSnapshotAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.WriteSnapshot(json.RawMessage(`{"state":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if l.AppendsSinceSnapshot() != 0 {
		t.Fatalf("AppendsSinceSnapshot = %d after snapshot", l.AppendsSinceSnapshot())
	}
	tail := appendN(t, l, 40, 7)
	dig := l.Digest()
	l.Close()

	l2, snap, got, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if snap == nil || snap.LSN != 40 {
		t.Fatalf("snapshot = %+v, want LSN 40", snap)
	}
	if string(snap.State) != `{"state":"a"}` {
		t.Fatalf("snapshot state = %s", snap.State)
	}
	if !sameRecords(tail, got) {
		t.Fatalf("replay after snapshot: want %d records, got %d", len(tail), len(got))
	}
	if l2.Digest() != dig {
		t.Fatalf("digest did not resume: %s vs %s", l2.Digest(), dig)
	}
}

// Two snapshots are kept; older ones and fully covered segments are
// pruned.
func TestPruneKeepsTwoSnapshots(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{SegmentBytes: 128, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		appendN(t, l, s*10, 10)
		if err := l.WriteSnapshot(json.RawMessage(fmt.Sprintf(`{"s":%d}`, s))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ents, _ := os.ReadDir(dir)
	snaps, segs := 0, 0
	for _, e := range ents {
		switch {
		case len(e.Name()) > 5 && e.Name()[:5] == "snap-":
			snaps++
		case len(e.Name()) > 4 && e.Name()[:4] == "seg-":
			segs++
		}
	}
	if snaps != 2 {
		t.Fatalf("kept %d snapshots, want 2", snaps)
	}
	// Segments covered by the older kept snapshot (LSN 30) must be
	// gone; with 128-byte segments 40 records span many files, so
	// pruning must have removed some.
	all := 0
	l2, snap, recs, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if snap == nil || snap.LSN != 40 {
		t.Fatalf("latest snapshot LSN = %v", snap)
	}
	all = len(recs)
	if all != 0 {
		t.Fatalf("replayed %d records past a fresh snapshot", all)
	}
	if segs >= 8 {
		t.Fatalf("pruning left %d segments", segs)
	}
}

// A corrupt latest snapshot must fall back to the previous one, with
// the extra records replayed from segments.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.WriteSnapshot(json.RawMessage(`{"s":0}`)); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 5)
	if err := l.WriteSnapshot(json.RawMessage(`{"s":1}`)); err != nil {
		t.Fatal(err)
	}
	dig := l.Digest()
	l.Close()

	// Flip a byte in the newest snapshot's payload.
	path := filepath.Join(dir, fmt.Sprintf("snap-%016x.wal", 15))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x5a
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, snap, recs, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if snap == nil || snap.LSN != 10 || string(snap.State) != `{"s":0}` {
		t.Fatalf("fallback snapshot = %+v", snap)
	}
	if len(recs) != 5 || recs[0].LSN != 11 {
		t.Fatalf("replayed %d records, first LSN %v", len(recs), recs)
	}
	if l2.Digest() != dig {
		t.Fatalf("digest after fallback: %s vs %s", l2.Digest(), dig)
	}
}

// Torn tails — a crash mid-write — must be truncated: replay returns
// exactly the records whose frames are fully intact, and the log stays
// appendable.
func TestTornTailTruncation(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 11} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, _, _, err := Open(dir, Options{Policy: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			want := appendN(t, l, 0, 5)
			l.Close()
			segs, _ := segmentNames(dir)
			path := filepath.Join(dir, segs[0])
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2, _, got, err := Open(dir, Options{Policy: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 4 || !sameRecords(want[:4], got) {
				t.Fatalf("after %d-byte tear: %d records", cut, len(got))
			}
			// The log must accept appends continuing the prefix.
			r, err := l2.Append("weights", "i1", nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.LSN != 5 {
				t.Fatalf("post-truncation LSN = %d, want 5", r.LSN)
			}
			l2.Close()
		})
	}
}

// A flipped byte mid-file truncates there, not at EOF.
func TestMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 0, 10)
	l.Close()
	segs, _ := segmentNames(dir)
	path := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _, got, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) >= 10 {
		t.Fatal("corruption not detected")
	}
	if !sameRecords(want[:len(got)], got) {
		t.Fatal("surviving prefix is not bit-identical")
	}
}

// The fsync policies must call the observability hook per their
// contract: always → every append; never → zero.
func TestSyncPolicyHooks(t *testing.T) {
	var syncs int
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{Policy: SyncAlways, OnFsync: func(time.Duration) { syncs++ }})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	if syncs != 3 {
		t.Fatalf("SyncAlways: %d fsyncs for 3 appends", syncs)
	}
	l.Close()

	syncs = 0
	l2, _, _, err := Open(t.TempDir(), Options{Policy: SyncNever, OnFsync: func(time.Duration) { syncs++ }})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 0, 3)
	if syncs != 0 {
		t.Fatalf("SyncNever: %d fsyncs", syncs)
	}
	l2.Close()

	var appends int
	l3, _, _, err := Open(t.TempDir(), Options{Policy: SyncInterval, Interval: time.Hour, OnAppend: func() { appends++ }})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l3, 0, 4)
	if appends != 4 {
		t.Fatalf("OnAppend fired %d times for 4 appends", appends)
	}
	l3.Close()
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// FuzzWALReplay is the crash-consistency property test: append a
// record sequence derived from the fuzz input, corrupt or truncate the
// byte stream at an arbitrary position, reopen, and require the replay
// to equal a committed prefix bit-identically — never a record the log
// did not commit, never a mangled record.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(4), true)
	f.Add([]byte{0xff, 0x00, 0x7f, 0x33, 9, 9, 9}, uint16(60), false)
	f.Add([]byte{}, uint16(0), true)
	f.Fuzz(func(t *testing.T, seed []byte, pos uint16, truncate bool) {
		dir := t.TempDir()
		l, _, _, err := Open(dir, Options{SegmentBytes: 512, Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		// Derive a patch sequence from the fuzz bytes: each byte
		// becomes one record with a body of that many filler items.
		var want []Record
		for i, b := range seed {
			typ := "weights"
			if b&1 == 1 {
				typ = "topology"
			}
			body, _ := json.Marshal(map[string]any{"i": i, "fill": make([]int, int(b)%17)})
			r, err := l.Append(typ, fmt.Sprintf("i%d", b%3), json.RawMessage(body))
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
		l.Close()

		// Corrupt the segment stream at an arbitrary global offset.
		segs, _ := segmentNames(dir)
		var off int64 = int64(pos)
		for _, name := range segs {
			path := filepath.Join(dir, name)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if off < int64(len(b)) {
				if truncate {
					b = b[:off]
				} else {
					b[off] ^= 0x5a
				}
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
				break
			}
			off -= int64(len(b))
		}

		l2, snap, got, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if snap != nil {
			t.Fatal("no snapshot was ever written")
		}
		if len(got) > len(want) {
			t.Fatalf("replayed %d records, only %d committed", len(got), len(want))
		}
		if !sameRecords(want[:len(got)], got) {
			t.Fatal("replay is not a bit-identical committed prefix")
		}
		// The reopened log must accept appends continuing the prefix.
		r, err := l2.Append("weights", "ix", nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.LSN != uint64(len(got))+1 {
			t.Fatalf("post-recovery LSN %d, want %d", r.LSN, len(got)+1)
		}
	})
}
