package mmlp

import (
	"math"
	"testing"
)

func updateFixture(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(4)
	b.AddResource(Entry{Agent: 0, Coeff: 1}, Entry{Agent: 1, Coeff: 2})
	b.AddResource(Entry{Agent: 1, Coeff: 1}, Entry{Agent: 2, Coeff: 1}, Entry{Agent: 3, Coeff: 3})
	b.AddParty(Entry{Agent: 0, Coeff: 1}, Entry{Agent: 2, Coeff: 1})
	b.AddParty(Entry{Agent: 3, Coeff: 2})
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestUpdateCoeffs(t *testing.T) {
	in := updateFixture(t)
	out, err := in.UpdateCoeffs(
		[]CoeffUpdate{{Row: 0, Agent: 1, Coeff: 5}, {Row: 1, Agent: 3, Coeff: 0.5}},
		[]CoeffUpdate{{Row: 1, Agent: 3, Coeff: 7}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// New values present, untouched values intact.
	if got := out.A(0, 1); got != 5 {
		t.Errorf("A(0,1) = %v, want 5", got)
	}
	if got := out.A(1, 3); got != 0.5 {
		t.Errorf("A(1,3) = %v, want 0.5", got)
	}
	if got := out.C(1, 3); got != 7 {
		t.Errorf("C(1,3) = %v, want 7", got)
	}
	if got := out.A(0, 0); got != 1 {
		t.Errorf("A(0,0) = %v, want 1", got)
	}
	// The original instance is untouched.
	if got := in.A(0, 1); got != 2 {
		t.Errorf("original A(0,1) = %v, want 2", got)
	}
	if got := in.C(1, 3); got != 2 {
		t.Errorf("original C(1,3) = %v, want 2", got)
	}
	// Topology is shared, not copied: the incidence lists are the same
	// slices, and untouched rows alias the original.
	if &in.agentRes[0][0] != &out.agentRes[0][0] {
		t.Error("agent incidence lists were copied")
	}
	if &in.parRows[0][0] != &out.parRows[0][0] {
		t.Error("untouched party row was copied")
	}
	if err := out.Validate(); err != nil {
		t.Errorf("updated instance invalid: %v", err)
	}
}

func TestUpdateCoeffsSameRowTwice(t *testing.T) {
	in := updateFixture(t)
	out, err := in.UpdateCoeffs([]CoeffUpdate{
		{Row: 1, Agent: 1, Coeff: 9},
		{Row: 1, Agent: 2, Coeff: 8},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.A(1, 1) != 9 || out.A(1, 2) != 8 || out.A(1, 3) != 3 {
		t.Errorf("row 1 = (%v,%v,%v), want (9,8,3)", out.A(1, 1), out.A(1, 2), out.A(1, 3))
	}
}

func TestUpdateCoeffsErrors(t *testing.T) {
	in := updateFixture(t)
	cases := []struct {
		name     string
		res, par []CoeffUpdate
	}{
		{"resource row out of range", []CoeffUpdate{{Row: 2, Agent: 0, Coeff: 1}}, nil},
		{"negative resource row", []CoeffUpdate{{Row: -1, Agent: 0, Coeff: 1}}, nil},
		{"agent not in resource support", []CoeffUpdate{{Row: 0, Agent: 3, Coeff: 1}}, nil},
		{"party row out of range", nil, []CoeffUpdate{{Row: 5, Agent: 0, Coeff: 1}}},
		{"agent not in party support", nil, []CoeffUpdate{{Row: 1, Agent: 0, Coeff: 1}}},
		{"zero coefficient", []CoeffUpdate{{Row: 0, Agent: 0, Coeff: 0}}, nil},
		{"negative coefficient", []CoeffUpdate{{Row: 0, Agent: 0, Coeff: -1}}, nil},
		{"infinite coefficient", []CoeffUpdate{{Row: 0, Agent: 0, Coeff: math.Inf(1)}}, nil},
		{"NaN coefficient", nil, []CoeffUpdate{{Row: 0, Agent: 0, Coeff: math.NaN()}}},
	}
	for _, cse := range cases {
		if _, err := in.UpdateCoeffs(cse.res, cse.par); err == nil {
			t.Errorf("%s: accepted", cse.name)
		}
	}
	// The receiver must be intact after any rejected update.
	if in.A(0, 0) != 1 || in.C(0, 0) != 1 {
		t.Error("rejected update mutated the receiver")
	}
}
