// Package mmlp defines the max-min linear program model studied in
// Floréen, Kaski, Musto, Suomela: "Approximating max-min linear programs
// with local algorithms" (IPDPS 2008).
//
// A max-min LP over agents V, resources I and beneficiary parties K is
//
//	maximise  ω = min_{k∈K} Σ_v c_kv x_v
//	subject to          Σ_v a_iv x_v ≤ 1  for each i ∈ I,
//	                    x_v ≥ 0           for each v ∈ V,
//
// with c_kv ≥ 0 and a_iv ≥ 0. The support sets
//
//	Vi = {v : a_iv > 0},  Vk = {v : c_kv > 0},
//	Iv = {i : a_iv > 0},  Kv = {k : c_kv > 0}
//
// are assumed nonempty (for Iv, Vi and Vk; Kv may be empty for an agent
// that benefits nobody) and of bounded size. Instances are immutable once
// built; use Builder to construct them.
package mmlp

import (
	"fmt"
	"math"
)

// Entry is one nonzero coefficient of a resource constraint row or a
// beneficiary party row: Coeff multiplies the activity x of Agent.
type Entry struct {
	Agent int
	Coeff float64
}

// Instance is an immutable sparse max-min LP. Agents, resources and
// parties are identified by dense indices 0..n-1.
type Instance struct {
	nAgents int

	// resRows[i] holds the support Vi of resource i with coefficients
	// a_iv, sorted by agent index. parRows[k] holds Vk with c_kv.
	resRows [][]Entry
	parRows [][]Entry

	// agentRes[v] = Iv and agentPar[v] = Kv, sorted ascending.
	agentRes [][]int
	agentPar [][]int

	// hasUnconstrained records that the instance was built with
	// Builder.AllowUnconstrained, i.e. some agents may have Iv = ∅.
	hasUnconstrained bool
}

// AllowsUnconstrained reports whether the instance was built permitting
// agents with Iv = ∅ (see Builder.AllowUnconstrained).
func (in *Instance) AllowsUnconstrained() bool { return in.hasUnconstrained }

// NumAgents returns |V|.
func (in *Instance) NumAgents() int { return in.nAgents }

// NumResources returns |I|.
func (in *Instance) NumResources() int { return len(in.resRows) }

// NumParties returns |K|.
func (in *Instance) NumParties() int { return len(in.parRows) }

// Resource returns the support row of resource i (the set Vi with the
// coefficients a_iv), sorted by agent index. The returned slice is shared;
// callers must not modify it.
func (in *Instance) Resource(i int) []Entry { return in.resRows[i] }

// Party returns the support row of party k (the set Vk with the
// coefficients c_kv), sorted by agent index. The returned slice is shared;
// callers must not modify it.
func (in *Instance) Party(k int) []Entry { return in.parRows[k] }

// AgentResources returns Iv, the resources consumed by agent v, sorted.
// The returned slice is shared; callers must not modify it.
func (in *Instance) AgentResources(v int) []int { return in.agentRes[v] }

// AgentParties returns Kv, the parties benefited by agent v, sorted.
// The returned slice is shared; callers must not modify it.
func (in *Instance) AgentParties(v int) []int { return in.agentPar[v] }

// A returns the coefficient a_iv, or 0 if v ∉ Vi.
func (in *Instance) A(i, v int) float64 { return lookup(in.resRows[i], v) }

// C returns the coefficient c_kv, or 0 if v ∉ Vk.
func (in *Instance) C(k, v int) float64 { return lookup(in.parRows[k], v) }

func lookup(row []Entry, v int) float64 {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case row[mid].Agent == v:
			return row[mid].Coeff
		case row[mid].Agent < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// DegreeBounds reports the support-size bounds of the instance.
type DegreeBounds struct {
	MaxVI int // ΔVI = max_i |Vi|
	MaxVK int // ΔVK = max_k |Vk|
	MaxIV int // ΔIV = max_v |Iv|
	MaxKV int // ΔKV = max_v |Kv|
}

// Degrees computes the tight degree bounds ΔVI, ΔVK, ΔIV, ΔKV of the
// instance.
func (in *Instance) Degrees() DegreeBounds {
	var d DegreeBounds
	for _, row := range in.resRows {
		d.MaxVI = max(d.MaxVI, len(row))
	}
	for _, row := range in.parRows {
		d.MaxVK = max(d.MaxVK, len(row))
	}
	for v := 0; v < in.nAgents; v++ {
		d.MaxIV = max(d.MaxIV, len(in.agentRes[v]))
		d.MaxKV = max(d.MaxKV, len(in.agentPar[v]))
	}
	return d
}

// Objective evaluates ω(x) = min_k Σ_v c_kv x_v. It returns +Inf when
// the instance has no live parties (the minimum over an empty set).
// Dead parties — rows whose whole support left through topology updates
// (see ApplyTopo) — demand nothing and are skipped.
func (in *Instance) Objective(x []float64) float64 {
	obj := math.Inf(1)
	for k, row := range in.parRows {
		if len(row) == 0 {
			continue
		}
		obj = min(obj, in.PartyBenefit(k, x))
	}
	return obj
}

// PartyBenefit evaluates Σ_v c_kv x_v for party k.
func (in *Instance) PartyBenefit(k int, x []float64) float64 {
	var s float64
	for _, e := range in.parRows[k] {
		s += e.Coeff * x[e.Agent]
	}
	return s
}

// ResourceUsage evaluates Σ_v a_iv x_v for resource i.
func (in *Instance) ResourceUsage(i int, x []float64) float64 {
	var s float64
	for _, e := range in.resRows[i] {
		s += e.Coeff * x[e.Agent]
	}
	return s
}

// Feasible reports whether x is a feasible solution within tolerance tol:
// x_v ≥ -tol for all v and Σ_v a_iv x_v ≤ 1+tol for all i.
func (in *Instance) Feasible(x []float64, tol float64) bool {
	return in.Violation(x) <= tol
}

// Violation returns the maximum constraint violation of x: the largest of
// max_i (Σ_v a_iv x_v − 1) and max_v (−x_v), or 0 if x is strictly
// feasible. A solution is feasible within tolerance tol iff
// Violation(x) ≤ tol.
func (in *Instance) Violation(x []float64) float64 {
	if len(x) != in.nAgents {
		return math.Inf(1)
	}
	var worst float64
	for _, xv := range x {
		worst = max(worst, -xv)
	}
	for i := range in.resRows {
		worst = max(worst, in.ResourceUsage(i, x)-1)
	}
	return worst
}

// Validate checks the structural assumptions of the paper: all
// coefficients are finite and nonnegative, every agent consumes at least
// one resource (Iv ≠ ∅), and every resource and party has a nonempty
// support (Vi ≠ ∅, Vk ≠ ∅). It returns a descriptive error for the first
// violation found. Instances built with Builder.AllowUnconstrained skip
// the Iv ≠ ∅ check at build time but still fail this strict check.
func (in *Instance) Validate() error { return in.validate(false) }

func (in *Instance) validate(allowUnconstrained bool) error {
	for i, row := range in.resRows {
		if len(row) == 0 {
			return fmt.Errorf("mmlp: resource %d has empty support Vi", i)
		}
		for _, e := range row {
			if e.Agent < 0 || e.Agent >= in.nAgents {
				return fmt.Errorf("mmlp: resource %d references agent %d out of range [0,%d)", i, e.Agent, in.nAgents)
			}
			if !(e.Coeff > 0) || math.IsInf(e.Coeff, 0) {
				return fmt.Errorf("mmlp: resource %d has non-positive or non-finite coefficient %v for agent %d", i, e.Coeff, e.Agent)
			}
		}
	}
	for k, row := range in.parRows {
		if len(row) == 0 {
			return fmt.Errorf("mmlp: party %d has empty support Vk", k)
		}
		for _, e := range row {
			if e.Agent < 0 || e.Agent >= in.nAgents {
				return fmt.Errorf("mmlp: party %d references agent %d out of range [0,%d)", k, e.Agent, in.nAgents)
			}
			if !(e.Coeff > 0) || math.IsInf(e.Coeff, 0) {
				return fmt.Errorf("mmlp: party %d has non-positive or non-finite coefficient %v for agent %d", k, e.Coeff, e.Agent)
			}
		}
	}
	if !allowUnconstrained {
		for v := 0; v < in.nAgents; v++ {
			if len(in.agentRes[v]) == 0 {
				return fmt.Errorf("mmlp: agent %d consumes no resource (Iv empty); x_%d would be unbounded", v, v)
			}
		}
	}
	return nil
}

// Stats summarises an instance for logging and reports.
type Stats struct {
	Agents    int
	Resources int
	Parties   int
	Nonzeros  int // total nonzero coefficients in A and C
	Degrees   DegreeBounds
}

// Stats computes summary statistics of the instance.
func (in *Instance) Stats() Stats {
	nz := 0
	for _, row := range in.resRows {
		nz += len(row)
	}
	for _, row := range in.parRows {
		nz += len(row)
	}
	return Stats{
		Agents:    in.nAgents,
		Resources: len(in.resRows),
		Parties:   len(in.parRows),
		Nonzeros:  nz,
		Degrees:   in.Degrees(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("agents=%d resources=%d parties=%d nonzeros=%d ΔVI=%d ΔVK=%d ΔIV=%d ΔKV=%d",
		s.Agents, s.Resources, s.Parties, s.Nonzeros,
		s.Degrees.MaxVI, s.Degrees.MaxVK, s.Degrees.MaxIV, s.Degrees.MaxKV)
}
