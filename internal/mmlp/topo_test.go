package mmlp

import (
	"math"
	"reflect"
	"testing"
)

// topoTestInstance is a small instance with two resources and two
// parties over four agents:
//
//	resource 0: {0:1, 1:2}    party 0: {0:1, 2:3}
//	resource 1: {1:1, 2:1, 3:2}    party 1: {3:0.5}
func topoTestInstance(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(4)
	b.AddResource(Entry{Agent: 0, Coeff: 1}, Entry{Agent: 1, Coeff: 2})
	b.AddResource(Entry{Agent: 1, Coeff: 1}, Entry{Agent: 2, Coeff: 1}, Entry{Agent: 3, Coeff: 2})
	b.AddParty(Entry{Agent: 0, Coeff: 1}, Entry{Agent: 2, Coeff: 3})
	b.AddParty(Entry{Agent: 3, Coeff: 0.5})
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestApplyTopoAddRemoveEdge(t *testing.T) {
	in := topoTestInstance(t)
	out, d, err := in.ApplyTopo([]TopoUpdate{
		AddResourceEdge(0, 3, 0.25), // agent 3 joins resource 0
		RemovePartyEdge(1, 3),       // party 1 dies (last entry removed)
		AddPartyEdge(2, 1, 4),       // new party 2 = {1}
		RemovePartyEdge(0, 2),       // agent 2 stops benefiting party 0…
		RemoveResourceEdge(1, 2),    // …and leaves resource 1 (its last)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRes0 := []Entry{{Agent: 0, Coeff: 1}, {Agent: 1, Coeff: 2}, {Agent: 3, Coeff: 0.25}}
	if !reflect.DeepEqual(out.Resource(0), wantRes0) {
		t.Errorf("resource 0 = %v, want %v", out.Resource(0), wantRes0)
	}
	if got := out.Resource(1); len(got) != 2 || got[0].Agent != 1 || got[1].Agent != 3 {
		t.Errorf("resource 1 = %v, want agents {1,3}", got)
	}
	if got := out.Party(1); len(got) != 0 {
		t.Errorf("party 1 should be dead, got %v", got)
	}
	if out.NumParties() != 3 {
		t.Fatalf("NumParties = %d, want 3", out.NumParties())
	}
	if got := out.Party(2); len(got) != 1 || got[0] != (Entry{Agent: 1, Coeff: 4}) {
		t.Errorf("party 2 = %v, want {1:4}", got)
	}
	// Incidence lists follow the rows.
	if got := out.AgentResources(3); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("I_3 = %v, want [0 1]", got)
	}
	if got := out.AgentParties(3); len(got) != 0 {
		t.Errorf("K_3 = %v, want empty", got)
	}
	if got := out.AgentResources(2); len(got) != 0 {
		t.Errorf("I_2 = %v, want empty", got)
	}
	// Diff: touched rows and agents.
	if !reflect.DeepEqual(d.ResRows, []int{0, 1}) || !reflect.DeepEqual(d.ParRows, []int{0, 1, 2}) {
		t.Errorf("diff rows = %v / %v", d.ResRows, d.ParRows)
	}
	if !reflect.DeepEqual(d.IncAgents, []int{1, 2, 3}) {
		t.Errorf("IncAgents = %v, want [1 2 3]", d.IncAgents)
	}
	for _, v := range []int{0, 1, 2, 3} {
		found := false
		for _, u := range d.Touched {
			if u == v {
				found = true
			}
		}
		if !found {
			t.Errorf("agent %d missing from Touched %v", v, d.Touched)
		}
	}
	// The original instance is untouched.
	if len(in.Party(1)) != 1 || len(in.Resource(0)) != 2 || len(in.AgentResources(2)) != 1 {
		t.Error("ApplyTopo mutated the receiver")
	}
}

func TestApplyTopoAgents(t *testing.T) {
	in := topoTestInstance(t)
	out, d, err := in.ApplyTopo([]TopoUpdate{
		AddAgent(),                 // agent 4
		AddResourceEdge(1, 4, 1.5), // joins resource 1
		AddPartyEdge(0, 4, 2),      // benefits party 0
		RemoveAgent(1),             // agent 1 leaves everything
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumAgents() != 5 {
		t.Fatalf("NumAgents = %d, want 5", out.NumAgents())
	}
	if !reflect.DeepEqual(d.AddedAgents, []int{4}) || !reflect.DeepEqual(d.RemovedAgents, []int{1}) {
		t.Errorf("added/removed = %v / %v", d.AddedAgents, d.RemovedAgents)
	}
	if got := out.AgentResources(1); len(got) != 0 {
		t.Errorf("removed agent still has I_1 = %v", got)
	}
	if got := out.Resource(0); len(got) != 1 || got[0].Agent != 0 {
		t.Errorf("resource 0 = %v, want {0:1}", got)
	}
	if got := out.Resource(1); len(got) != 3 || got[2] != (Entry{Agent: 4, Coeff: 1.5}) {
		t.Errorf("resource 1 = %v", got)
	}
	if got := out.A(1, 4); got != 1.5 {
		t.Errorf("A(1,4) = %v", got)
	}
	if got := out.AgentParties(4); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("K_4 = %v, want [0]", got)
	}
	if d.OldNumAgents != 4 || d.NumAgents != 5 {
		t.Errorf("diff agent counts %d -> %d", d.OldNumAgents, d.NumAgents)
	}
}

func TestApplyTopoValidation(t *testing.T) {
	in := topoTestInstance(t)
	bad := [][]TopoUpdate{
		{RemoveAgent(-1)},
		{RemoveAgent(4)},
		{AddResourceEdge(0, 0, 1)},           // already present
		{AddResourceEdge(3, 0, 1)},           // row gap (only 2 resources)
		{AddResourceEdge(0, 9, 1)},           // agent out of range
		{AddResourceEdge(2, 0, 0)},           // zero coefficient
		{AddResourceEdge(2, 0, math.Inf(1))}, // infinite coefficient
		{AddPartyEdge(0, 1, math.NaN())},     // NaN coefficient
		{RemoveResourceEdge(0, 2)},           // not in support
		{RemoveResourceEdge(5, 0)},           // row out of range
		{{Op: TopoOp(9)}},                    // unknown op
		// Second op invalid: the whole batch must be rejected.
		{AddResourceEdge(2, 0, 1), RemovePartyEdge(0, 3)},
		// Solvability: agent 2's only resource is 1, and it benefits
		// party 0 — removing the edge would unbound its local LPs.
		{RemoveResourceEdge(1, 2)},
		// Solvability: a freshly added agent has no resources, so a
		// party edge must come after a resource edge, not before.
		{AddAgent(), AddPartyEdge(0, 4, 1)},
	}
	for i, ups := range bad {
		out, d, err := in.ApplyTopo(ups)
		if err == nil {
			t.Errorf("bad batch %d accepted (diff %+v)", i, d)
		}
		if out != nil {
			t.Errorf("bad batch %d returned an instance", i)
		}
	}
	// The receiver survives every rejected batch bit-for-bit.
	ref := topoTestInstance(t)
	for i := 0; i < in.NumResources(); i++ {
		if !reflect.DeepEqual(in.Resource(i), ref.Resource(i)) {
			t.Fatalf("resource %d changed by a rejected batch", i)
		}
	}
	for k := 0; k < in.NumParties(); k++ {
		if !reflect.DeepEqual(in.Party(k), ref.Party(k)) {
			t.Fatalf("party %d changed by a rejected batch", k)
		}
	}
}

func TestApplyTopoEmptyBatchAndDiff(t *testing.T) {
	in := topoTestInstance(t)
	out, d, err := in.ApplyTopo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Errorf("empty batch diff not empty: %+v", d)
	}
	if out.NumAgents() != in.NumAgents() {
		t.Error("empty batch changed the agent count")
	}
	_, d, err = in.ApplyTopo([]TopoUpdate{AddAgent()})
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Error("agent addition reported as empty diff")
	}
}

// TestApplyTopoObjectiveSkipsDeadParties: a party whose support left
// demands nothing; the objective is the minimum over live parties only.
func TestApplyTopoObjectiveSkipsDeadParties(t *testing.T) {
	in := topoTestInstance(t)
	out, _, err := in.ApplyTopo([]TopoUpdate{RemovePartyEdge(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 1, 1, 1}
	if got, want := out.Objective(x), in.PartyBenefit(0, x); got != want {
		t.Errorf("Objective = %v, want live party benefit %v", got, want)
	}
	// All parties dead: min over the empty set.
	out2, _, err := out.ApplyTopo([]TopoUpdate{RemovePartyEdge(0, 0), RemovePartyEdge(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := out2.Objective(x); !math.IsInf(got, 1) {
		t.Errorf("Objective with all parties dead = %v, want +Inf", got)
	}
}

// TestApplyTopoMatchesBuilder: churning one instance into another shape
// yields exactly the rows a fresh Builder would produce for that shape.
func TestApplyTopoMatchesBuilder(t *testing.T) {
	in := topoTestInstance(t)
	out, _, err := in.ApplyTopo([]TopoUpdate{
		AddAgent(),
		AddResourceEdge(2, 4, 1),
		AddResourceEdge(2, 0, 2),
		RemovePartyEdge(0, 2),
		AddPartyEdge(0, 4, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(5)
	b.AddResource(Entry{Agent: 0, Coeff: 1}, Entry{Agent: 1, Coeff: 2})
	b.AddResource(Entry{Agent: 1, Coeff: 1}, Entry{Agent: 2, Coeff: 1}, Entry{Agent: 3, Coeff: 2})
	b.AddResource(Entry{Agent: 0, Coeff: 2}, Entry{Agent: 4, Coeff: 1})
	b.AddParty(Entry{Agent: 0, Coeff: 1}, Entry{Agent: 4, Coeff: 1})
	b.AddParty(Entry{Agent: 3, Coeff: 0.5})
	want := b.MustBuild()
	for i := 0; i < want.NumResources(); i++ {
		if !reflect.DeepEqual(out.Resource(i), want.Resource(i)) {
			t.Errorf("resource %d = %v, want %v", i, out.Resource(i), want.Resource(i))
		}
	}
	for k := 0; k < want.NumParties(); k++ {
		if !reflect.DeepEqual(out.Party(k), want.Party(k)) {
			t.Errorf("party %d = %v, want %v", k, out.Party(k), want.Party(k))
		}
	}
	for v := 0; v < want.NumAgents(); v++ {
		if !equalInts(out.AgentResources(v), want.AgentResources(v)) {
			t.Errorf("I_%d = %v, want %v", v, out.AgentResources(v), want.AgentResources(v))
		}
		if !equalInts(out.AgentParties(v), want.AgentParties(v)) {
			t.Errorf("K_%d = %v, want %v", v, out.AgentParties(v), want.AgentParties(v))
		}
	}
}

// equalInts compares two int slices treating nil and empty as equal
// (ApplyTopo leaves empty-but-non-nil lists where the Builder has nil).
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
