package mmlp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelabelBasics(t *testing.T) {
	in := tinyInstance(t)
	perm := []int{2, 0, 1}
	out, err := in.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	// A(0, 1) = 2 in the original → A(0, perm[1]=0) = 2 in the copy.
	if got := out.A(0, 0); got != 2 {
		t.Fatalf("relabelled A(0,0) = %v, want 2", got)
	}
	if got := out.C(1, perm[2]); got != 3 {
		t.Fatalf("relabelled C(1,%d) = %v, want 3", perm[2], got)
	}
	// Degree bounds are invariant.
	if out.Degrees() != in.Degrees() {
		t.Fatalf("degrees changed: %+v vs %+v", out.Degrees(), in.Degrees())
	}
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	in := tinyInstance(t)
	for _, bad := range [][]int{
		{0, 1},          // wrong length
		{0, 1, 1},       // repeat
		{0, 1, 5},       // out of range
		{-1, 1, 2},      // negative
		{0, 1, 2, 3, 4}, // too long
	} {
		if _, err := in.Relabel(bad); err == nil {
			t.Fatalf("Relabel accepted %v", bad)
		}
	}
}

func TestRelabelObjectiveEquivariantQuick(t *testing.T) {
	// Property: ω(Relabel(in), permuted x) == ω(in, x).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.AddResource(Entry{v, 0.5 + r.Float64()})
		}
		for k := 0; k < 1+r.Intn(4); k++ {
			b.AddParty(Entry{r.Intn(n), 0.5 + r.Float64()})
		}
		in := b.MustBuild()
		perm := r.Perm(n)
		out, err := in.Relabel(perm)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for v := range x {
			x[v] = r.Float64()
		}
		px := make([]float64, n)
		for v := range x {
			px[perm[v]] = x[v]
		}
		return math.Abs(in.Objective(x)-out.Objective(px)) < 1e-12 &&
			math.Abs(in.Violation(x)-out.Violation(px)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointUnion(t *testing.T) {
	a := tinyInstance(t)
	bIn := tinyInstance(t)
	u := DisjointUnion(a, bIn)
	if u.NumAgents() != 6 || u.NumResources() != 4 || u.NumParties() != 4 {
		t.Fatalf("shape: %s", u.Stats())
	}
	// The two halves do not interact: objective decomposes as the min.
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	wantMin := math.Min(a.Objective(x[:3]), bIn.Objective(x[3:]))
	if got := u.Objective(x); math.Abs(got-wantMin) > 1e-12 {
		t.Fatalf("union objective = %v, want %v", got, wantMin)
	}
}

func TestScale(t *testing.T) {
	in := tinyInstance(t)
	scaled, err := in.Scale(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.1, 0.1}
	// Party benefit scales by 3.
	if got, want := scaled.PartyBenefit(0, x), 3*in.PartyBenefit(0, x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled benefit %v, want %v", got, want)
	}
	// Resource usage scales by 2.
	if got, want := scaled.ResourceUsage(0, x), 2*in.ResourceUsage(0, x); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled usage %v, want %v", got, want)
	}
	if _, err := in.Scale(0, 1); err == nil {
		t.Fatal("zero factor must fail")
	}
	if _, err := in.Scale(1, -2); err == nil {
		t.Fatal("negative factor must fail")
	}
}
