package mmlp

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// This file is the structural-update layer of the model: TopoUpdate
// describes one topology change (an agent, resource support entry or
// party support entry joining or leaving), and Instance.ApplyTopo applies
// a batch of them atomically, producing a new Instance plus a TopoDiff
// that names exactly what changed — the contract the incremental solver
// session and the hypergraph patching layer are built on.
//
// Index spaces are stable under churn: agents, resources and parties
// keep their indices forever. A removed agent keeps its slot but becomes
// *detached* — it appears in no row and consumes no resource; every
// solver treats it as an isolated vertex with activity 0. A row whose
// last support entry is removed becomes *dead* (empty support) and is
// skipped by every consumer: a dead resource constrains nothing and a
// dead party demands nothing (Objective ignores it). New rows are
// created by an AddEdge whose Row equals the current row count. This
// keeps every previously handed-out index valid, which is what makes
// incremental results comparable bit-for-bit against cold solves of the
// mutated instance.

// TopoOp selects the kind of one structural update.
type TopoOp uint8

const (
	// TopoAddAgent appends one new, initially detached agent; its index
	// is the instance's agent count at the time the op applies (ops in a
	// batch apply in order, so a later op may reference it).
	TopoAddAgent TopoOp = iota
	// TopoRemoveAgent detaches agent Agent: every support entry naming
	// it is removed and its incidence lists become empty. The slot
	// remains; the agent's activity is 0 from here on.
	TopoRemoveAgent
	// TopoAddEdge adds the support entry (Row, Agent) with coefficient
	// Coeff to the resource relation (or the party relation when Party
	// is set). Row may equal the current row count, which first appends
	// a new empty row — this is how resources and parties join.
	TopoAddEdge
	// TopoRemoveEdge removes the existing support entry (Row, Agent)
	// from the resource (or party) relation. Removing a row's last
	// entry leaves the row dead — this is how resources and parties
	// leave.
	TopoRemoveEdge
)

func (op TopoOp) String() string {
	switch op {
	case TopoAddAgent:
		return "addAgent"
	case TopoRemoveAgent:
		return "removeAgent"
	case TopoAddEdge:
		return "addEdge"
	case TopoRemoveEdge:
		return "removeEdge"
	}
	return fmt.Sprintf("TopoOp(%d)", uint8(op))
}

// TopoUpdate is one structural update; see the TopoOp constants for the
// meaning of the fields under each op. Prefer the constructors
// (AddAgent, RemoveAgent, AddResourceEdge, AddPartyEdge,
// RemoveResourceEdge, RemovePartyEdge) to literals.
type TopoUpdate struct {
	Op TopoOp
	// Party selects the party relation for edge ops; false = resource.
	Party bool
	// Row and Agent name the support entry of edge ops; Agent alone
	// parameterises TopoRemoveAgent.
	Row   int
	Agent int
	// Coeff is the coefficient of a TopoAddEdge; must be positive and
	// finite.
	Coeff float64
}

// AddAgent returns the update that appends one detached agent.
func AddAgent() TopoUpdate { return TopoUpdate{Op: TopoAddAgent} }

// RemoveAgent returns the update that detaches agent v.
func RemoveAgent(v int) TopoUpdate { return TopoUpdate{Op: TopoRemoveAgent, Agent: v} }

// AddResourceEdge returns the update that adds a_iv = coeff; i may equal
// NumResources to create the resource.
func AddResourceEdge(i, v int, coeff float64) TopoUpdate {
	return TopoUpdate{Op: TopoAddEdge, Row: i, Agent: v, Coeff: coeff}
}

// AddPartyEdge returns the update that adds c_kv = coeff; k may equal
// NumParties to create the party.
func AddPartyEdge(k, v int, coeff float64) TopoUpdate {
	return TopoUpdate{Op: TopoAddEdge, Party: true, Row: k, Agent: v, Coeff: coeff}
}

// RemoveResourceEdge returns the update that removes agent v from the
// support of resource i.
func RemoveResourceEdge(i, v int) TopoUpdate {
	return TopoUpdate{Op: TopoRemoveEdge, Row: i, Agent: v}
}

// RemovePartyEdge returns the update that removes agent v from the
// support of party k.
func RemovePartyEdge(k, v int) TopoUpdate {
	return TopoUpdate{Op: TopoRemoveEdge, Party: true, Row: k, Agent: v}
}

// TopoDiff reports what one ApplyTopo batch changed, in terms the
// incremental layers consume: the old and new entity counts, the agents
// that joined or left, the rows whose supports changed, and two agent
// sets — IncAgents (incidence lists Iv/Kv changed; their CSR segments
// need re-extraction) and Touched (adjacency in the communication
// hypergraph may have changed; their neighbour segments and the balls
// around them need re-derivation). All slices are sorted ascending and
// IncAgents ⊆ Touched.
type TopoDiff struct {
	OldNumAgents, NumAgents       int
	OldNumResources, NumResources int
	OldNumParties, NumParties     int

	AddedAgents   []int
	RemovedAgents []int
	IncAgents     []int
	Touched       []int
	ResRows       []int
	ParRows       []int
}

// Empty reports whether the batch changed nothing.
func (d *TopoDiff) Empty() bool {
	return d.NumAgents == d.OldNumAgents && len(d.Touched) == 0 &&
		len(d.ResRows) == 0 && len(d.ParRows) == 0
}

// topoState is the working copy one ApplyTopo batch mutates. Outer
// slices are copied up front; each row or incidence list is copied the
// first time an op touches it (ownership tracked by the touched sets),
// so a rejected batch leaves the receiver's rows bit-for-bit intact.
type topoState struct {
	n        int
	res, par [][]Entry
	aRes     [][]int
	aPar     [][]int

	resTouched, parTouched map[int]bool
	incTouched             map[int]bool
	adjTouched             map[int]bool
	added, removed         []int
}

// ApplyTopo applies a batch of structural updates in order and returns
// the mutated instance together with the diff. Validation is atomic:
// the first invalid op aborts the whole batch with no instance returned
// and the receiver unchanged. The returned instance shares every
// untouched row with the receiver and always allows unconstrained
// agents (churn creates them by design).
//
// Beyond index/coefficient checks, validation preserves solvability:
// an op may not leave an agent that benefits a party without any
// resource (its local LPs — and the global LP — would be unbounded).
// Wire a joining agent's resource edges before its party edges, and
// strip a leaving agent's party edges before (or via RemoveAgent,
// instead of) its last resource edge. Fully detached agents — no
// resources and no parties — are fine.
func (in *Instance) ApplyTopo(ups []TopoUpdate) (*Instance, *TopoDiff, error) {
	st := &topoState{
		n:          in.nAgents,
		res:        slices.Clone(in.resRows),
		par:        slices.Clone(in.parRows),
		aRes:       slices.Clone(in.agentRes),
		aPar:       slices.Clone(in.agentPar),
		resTouched: make(map[int]bool),
		parTouched: make(map[int]bool),
		incTouched: make(map[int]bool),
		adjTouched: make(map[int]bool),
	}
	for oi, u := range ups {
		if err := st.apply(u); err != nil {
			return nil, nil, fmt.Errorf("mmlp: op %d (%s): %w", oi, u.Op, err)
		}
	}
	out := &Instance{
		nAgents:          st.n,
		resRows:          st.res,
		parRows:          st.par,
		agentRes:         st.aRes,
		agentPar:         st.aPar,
		hasUnconstrained: true,
	}
	d := &TopoDiff{
		OldNumAgents: in.nAgents, NumAgents: st.n,
		OldNumResources: len(in.resRows), NumResources: len(st.res),
		OldNumParties: len(in.parRows), NumParties: len(st.par),
		AddedAgents:   st.added,
		RemovedAgents: dedupSortedInts(st.removed),
		IncAgents:     sortedKeys(st.incTouched),
		Touched:       sortedKeys(st.adjTouched),
		ResRows:       sortedKeys(st.resTouched),
		ParRows:       sortedKeys(st.parTouched),
	}
	return out, d, nil
}

func (st *topoState) apply(u TopoUpdate) error {
	switch u.Op {
	case TopoAddAgent:
		v := st.n
		st.n++
		st.aRes = append(st.aRes, nil)
		st.aPar = append(st.aPar, nil)
		st.added = append(st.added, v)
		st.incTouched[v] = true
		st.adjTouched[v] = true
		return nil

	case TopoRemoveAgent:
		v := u.Agent
		if v < 0 || v >= st.n {
			return fmt.Errorf("agent %d out of range [0,%d)", v, st.n)
		}
		for _, i := range st.aRes[v] {
			st.removeEntry(false, i, v)
		}
		for _, k := range st.aPar[v] {
			st.removeEntry(true, k, v)
		}
		st.aRes[v] = nil
		st.aPar[v] = nil
		st.removed = append(st.removed, v)
		st.incTouched[v] = true
		st.adjTouched[v] = true
		return nil

	case TopoAddEdge:
		rows := st.rows(u.Party)
		if u.Agent < 0 || u.Agent >= st.n {
			return fmt.Errorf("agent %d out of range [0,%d)", u.Agent, st.n)
		}
		if !(u.Coeff > 0) || math.IsInf(u.Coeff, 0) {
			return fmt.Errorf("coefficient %v must be positive and finite", u.Coeff)
		}
		if u.Party && len(st.aRes[u.Agent]) == 0 {
			return fmt.Errorf("agent %d consumes no resource; benefiting party %d would make its local LPs unbounded (add a resource edge first)", u.Agent, u.Row)
		}
		if u.Row < 0 || u.Row > len(*rows) {
			return fmt.Errorf("%s %d out of range [0,%d] (the upper bound creates the row)",
				rowKind(u.Party), u.Row, len(*rows))
		}
		if u.Row == len(*rows) {
			*rows = append(*rows, nil)
		}
		row := (*rows)[u.Row]
		pos, ok := slices.BinarySearchFunc(row, u.Agent, func(e Entry, v int) int { return e.Agent - v })
		if ok {
			return fmt.Errorf("agent %d is already in the support of %s %d", u.Agent, rowKind(u.Party), u.Row)
		}
		st.touchRow(u.Party, u.Row)
		row = (*rows)[u.Row] // touchRow may have copied it
		row = slices.Insert(row, pos, Entry{Agent: u.Agent, Coeff: u.Coeff})
		(*rows)[u.Row] = row
		st.insertIncidence(u.Party, u.Agent, u.Row)
		for _, e := range row {
			st.adjTouched[e.Agent] = true
		}
		return nil

	case TopoRemoveEdge:
		rows := st.rows(u.Party)
		if u.Row < 0 || u.Row >= len(*rows) {
			return fmt.Errorf("%s %d out of range [0,%d)", rowKind(u.Party), u.Row, len(*rows))
		}
		row := (*rows)[u.Row]
		if _, ok := slices.BinarySearchFunc(row, u.Agent, func(e Entry, v int) int { return e.Agent - v }); !ok {
			return fmt.Errorf("agent %d is not in the support of %s %d", u.Agent, rowKind(u.Party), u.Row)
		}
		if !u.Party && len(st.aRes[u.Agent]) == 1 && len(st.aPar[u.Agent]) > 0 {
			return fmt.Errorf("removing agent %d's last resource while it benefits a party would make its local LPs unbounded (remove its party edges first, or remove the agent)", u.Agent)
		}
		for _, e := range row {
			st.adjTouched[e.Agent] = true
		}
		st.removeEntry(u.Party, u.Row, u.Agent)
		st.removeIncidence(u.Party, u.Agent, u.Row)
		return nil
	}
	return fmt.Errorf("unknown op %d", uint8(u.Op))
}

func rowKind(party bool) string {
	if party {
		return "party"
	}
	return "resource"
}

func (st *topoState) rows(party bool) *[][]Entry {
	if party {
		return &st.par
	}
	return &st.res
}

// touchRow marks a row changed, copying it on first touch so the
// original instance's rows stay intact.
func (st *topoState) touchRow(party bool, r int) {
	touched := st.resTouched
	if party {
		touched = st.parTouched
	}
	if !touched[r] {
		touched[r] = true
		rows := st.rows(party)
		(*rows)[r] = slices.Clone((*rows)[r])
	}
}

// removeEntry deletes (r, v) from a constraint row; the entry must
// exist. Members of the row before the removal are adjacency-touched by
// the callers.
func (st *topoState) removeEntry(party bool, r, v int) {
	st.touchRow(party, r)
	rows := st.rows(party)
	row := (*rows)[r]
	pos, _ := slices.BinarySearchFunc(row, v, func(e Entry, w int) int { return e.Agent - w })
	(*rows)[r] = slices.Delete(row, pos, pos+1)
	for _, e := range (*rows)[r] {
		st.adjTouched[e.Agent] = true
	}
	st.adjTouched[v] = true
}

func (st *topoState) insertIncidence(party bool, v, r int) {
	list := st.incidenceOwned(party, v)
	pos, _ := slices.BinarySearch(*list, r)
	*list = slices.Insert(*list, pos, r)
}

func (st *topoState) removeIncidence(party bool, v, r int) {
	list := st.incidenceOwned(party, v)
	pos, _ := slices.BinarySearch(*list, r)
	*list = slices.Delete(*list, pos, pos+1)
}

// incidenceOwned returns a pointer to an owned (copied-on-first-touch)
// incidence list of agent v. Both relations of an agent are copied
// together under one ownership bit, so the bit stays a simple per-agent
// flag.
func (st *topoState) incidenceOwned(party bool, v int) *[]int {
	if !st.incTouched[v] {
		st.incTouched[v] = true
		st.aRes[v] = slices.Clone(st.aRes[v])
		st.aPar[v] = slices.Clone(st.aPar[v])
	}
	if party {
		return &st.aPar[v]
	}
	return &st.aRes[v]
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func dedupSortedInts(xs []int) []int {
	sort.Ints(xs)
	return slices.Compact(xs)
}
