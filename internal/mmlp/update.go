package mmlp

import (
	"fmt"
	"math"
)

// CoeffUpdate changes one existing coefficient of an instance: the entry
// (Row, Agent) must already be in the row's support. Weight updates
// change values, never topology — supports, incidence lists and the
// communication hypergraph are untouched, which is what lets a Solver
// session keep its ball indexes across updates.
type CoeffUpdate struct {
	Row   int
	Agent int
	Coeff float64
}

// UpdateCoeffs returns a new Instance with the given resource (a_iv) and
// party (c_kv) coefficients replaced. Topology is shared with the
// receiver: only the rows actually touched are copied, and the agent-side
// incidence lists are reused outright, so a k-entry update costs
// O(k + Σ touched row lengths). Every updated coefficient must name an
// existing support entry and be positive and finite; the first violation
// aborts the update with no instance returned.
func (in *Instance) UpdateCoeffs(res, par []CoeffUpdate) (*Instance, error) {
	out := &Instance{
		nAgents:          in.nAgents,
		resRows:          in.resRows,
		parRows:          in.parRows,
		agentRes:         in.agentRes,
		agentPar:         in.agentPar,
		hasUnconstrained: in.hasUnconstrained,
	}
	var resOwned, parOwned bool
	for _, u := range res {
		if u.Row < 0 || u.Row >= len(in.resRows) {
			return nil, fmt.Errorf("mmlp: resource %d out of range [0,%d)", u.Row, len(in.resRows))
		}
		if !(u.Coeff > 0) || math.IsInf(u.Coeff, 0) {
			return nil, fmt.Errorf("mmlp: resource %d agent %d: coefficient %v must be positive and finite", u.Row, u.Agent, u.Coeff)
		}
		if !resOwned {
			out.resRows = copyRowSlice(in.resRows)
			resOwned = true
		}
		if !patchRow(out.resRows, u) {
			return nil, fmt.Errorf("mmlp: agent %d is not in the support of resource %d", u.Agent, u.Row)
		}
	}
	for _, u := range par {
		if u.Row < 0 || u.Row >= len(in.parRows) {
			return nil, fmt.Errorf("mmlp: party %d out of range [0,%d)", u.Row, len(in.parRows))
		}
		if !(u.Coeff > 0) || math.IsInf(u.Coeff, 0) {
			return nil, fmt.Errorf("mmlp: party %d agent %d: coefficient %v must be positive and finite", u.Row, u.Agent, u.Coeff)
		}
		if !parOwned {
			out.parRows = copyRowSlice(in.parRows)
			parOwned = true
		}
		if !patchRow(out.parRows, u) {
			return nil, fmt.Errorf("mmlp: agent %d is not in the support of party %d", u.Agent, u.Row)
		}
	}
	return out, nil
}

// copyRowSlice copies the outer slice only; rows are copied lazily by
// patchRow when first touched (marked by aliasing against the original).
func copyRowSlice(rows [][]Entry) [][]Entry {
	out := make([][]Entry, len(rows))
	copy(out, rows)
	return out
}

// patchRow replaces the coefficient of (Row, Agent), copying the row the
// first time it is touched so the original instance's rows stay intact.
// Reports whether the agent was found in the row's support.
func patchRow(rows [][]Entry, u CoeffUpdate) bool {
	row := rows[u.Row]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case row[mid].Agent == u.Agent:
			fresh := make([]Entry, len(row))
			copy(fresh, row)
			fresh[mid].Coeff = u.Coeff
			rows[u.Row] = fresh
			return true
		case row[mid].Agent < u.Agent:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}
