package mmlp_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"maxminlp/internal/core"
	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
)

// This file is the MPS differential oracle: the golden-trace corpus
// (the families and churn batch of internal/dist's golden tests) is
// exported to MPS, re-imported, and solved — and every solve must agree
// with the original instance bit for bit. MPS coefficients travel as
// shortest-round-trip decimals, so export → import is exact and any
// disagreement is a bug in the I/O layer or a nondeterminism in the
// solvers, not float noise.

// goldenCorpus mirrors internal/dist/golden_test.go: same families,
// same seeds, plus the churned variant of each.
func goldenCorpus(t *testing.T) map[string]*mmlp.Instance {
	t.Helper()
	rngW := rand.New(rand.NewSource(33))
	torus, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rngW})
	grid, _ := gen.Grid([]int{5, 5}, gen.LatticeOptions{RandomWeights: true, Rng: rngW})
	geo, _ := gen.UnitDisk(gen.UnitDiskOptions{
		Nodes: 30, Radius: 0.28, MaxNeighbors: 4, RandomWeights: true,
	}, rand.New(rand.NewSource(35)))
	corpus := map[string]*mmlp.Instance{
		"torus6x6":    torus,
		"grid5x5":     grid,
		"geometric30": geo,
	}
	for name, in := range corpus {
		n := in.NumAgents()
		churned, _, err := in.ApplyTopo([]mmlp.TopoUpdate{
			mmlp.AddAgent(),
			mmlp.AddResourceEdge(0, n, 1.25),
			mmlp.AddPartyEdge(0, n, 0.75),
			mmlp.RemoveAgent(1),
		})
		if err != nil {
			t.Fatalf("%s: churn: %v", name, err)
		}
		corpus[name+"_churned"] = churned
	}
	return corpus
}

func roundTripMPS(t *testing.T, name string, in *mmlp.Instance) *mmlp.Instance {
	t.Helper()
	var buf bytes.Buffer
	if err := in.WriteMPS(&buf); err != nil {
		t.Fatalf("%s: WriteMPS: %v", name, err)
	}
	back, err := mmlp.ReadMPS(&buf)
	if err != nil {
		t.Fatalf("%s: ReadMPS: %v", name, err)
	}
	return back
}

func sameEntries(a, b []mmlp.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Agent != b[i].Agent || math.Float64bits(a[i].Coeff) != math.Float64bits(b[i].Coeff) {
			return false
		}
	}
	return true
}

func sameX(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestMPSInstanceRoundTripExact: the re-imported instance is
// structurally identical — every row, entry and coefficient bit, the
// agent count, and the build mode.
func TestMPSInstanceRoundTripExact(t *testing.T) {
	for name, in := range goldenCorpus(t) {
		back := roundTripMPS(t, name, in)
		if back.NumAgents() != in.NumAgents() || back.NumResources() != in.NumResources() || back.NumParties() != in.NumParties() {
			t.Fatalf("%s: shape changed: %d/%d/%d -> %d/%d/%d", name,
				in.NumAgents(), in.NumResources(), in.NumParties(),
				back.NumAgents(), back.NumResources(), back.NumParties())
		}
		if back.AllowsUnconstrained() != in.AllowsUnconstrained() {
			t.Fatalf("%s: build mode changed", name)
		}
		for i := 0; i < in.NumResources(); i++ {
			if !sameEntries(in.Resource(i), back.Resource(i)) {
				t.Fatalf("%s: resource %d changed", name, i)
			}
		}
		for k := 0; k < in.NumParties(); k++ {
			if !sameEntries(in.Party(k), back.Party(k)) {
				t.Fatalf("%s: party %d changed", name, k)
			}
		}
	}
}

// TestMPSDifferentialOracle replays the golden corpus through
// export → re-import → solve and asserts exact agreement: the global
// optimum (dense simplex) and the Theorem-3 local averaging at radii 1
// and 2, presolve off and on, all bit-identical between the original
// and the re-imported instance.
func TestMPSDifferentialOracle(t *testing.T) {
	for name, in := range goldenCorpus(t) {
		back := roundTripMPS(t, name, in)

		res1, err1 := lp.SolveMaxMin(in)
		res2, err2 := lp.SolveMaxMin(back)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: global solve errors differ: %v vs %v", name, err1, err2)
		}
		if err1 == nil {
			if math.Float64bits(res1.Omega) != math.Float64bits(res2.Omega) || !sameX(res1.X, res2.X) {
				t.Fatalf("%s: global solve differs after round trip", name)
			}
		}

		for _, radius := range []int{1, 2} {
			for _, presolve := range []bool{false, true} {
				opt := core.AverageOptions{Presolve: presolve}
				a, err := core.LocalAverageOpt(in, hypergraph.FromInstance(in, hypergraph.Options{}), radius, opt)
				if err != nil {
					t.Fatalf("%s R=%d: %v", name, radius, err)
				}
				b, err := core.LocalAverageOpt(back, hypergraph.FromInstance(back, hypergraph.Options{}), radius, opt)
				if err != nil {
					t.Fatalf("%s R=%d (reimported): %v", name, radius, err)
				}
				if !sameX(a.X, b.X) || !sameX(a.LocalOmega, b.LocalOmega) || !sameX(a.Beta, b.Beta) {
					t.Fatalf("%s R=%d presolve=%v: local averaging differs after round trip", name, radius, presolve)
				}
				if a.LocalLPs != b.LocalLPs || a.SolvesAvoided != b.SolvesAvoided {
					t.Fatalf("%s R=%d presolve=%v: accounting differs after round trip", name, radius, presolve)
				}
			}
		}
	}
}

// TestMPSInstanceReadErrors: structural violations are rejected.
func TestMPSInstanceReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"no endata":       "ROWS\n N COST\n",
		"min sense":       "OBJSENSE\n    MIN\nROWS\n N COST\nENDATA\n",
		"no objsense":     "ROWS\n N COST\n L RES0\n G PAR0\nCOLUMNS\n    OMEGA COST 1\n    X0 RES0 1\n    X0 PAR0 1\n    OMEGA PAR0 -1\nRHS\n    RHS RES0 1\nENDATA\n",
		"empty objsense":  "OBJSENSE\nROWS\n N COST\n L RES0\nCOLUMNS\n    OMEGA COST 1\n    X0 RES0 1\nRHS\n    RHS RES0 1\nENDATA\n",
		"eq row":          "ROWS\n N COST\n E R\nENDATA\n",
		"bad objective":   "ROWS\n N COST\n L RES0\nCOLUMNS\n    X0 COST 1\n    OMEGA COST 1\nRHS\n    RHS RES0 1\nENDATA\n",
		"res with omega":  "ROWS\n N COST\n L RES0\nCOLUMNS\n    OMEGA COST 1\n    OMEGA RES0 1\nRHS\n    RHS RES0 1\nENDATA\n",
		"res rhs not 1":   "ROWS\n N COST\n L RES0\nCOLUMNS\n    OMEGA COST 1\n    X0 RES0 1\nRHS\n    RHS RES0 2\nENDATA\n",
		"par without -1":  "ROWS\n N COST\n L RES0\n G PAR0\nCOLUMNS\n    OMEGA COST 1\n    X0 RES0 1\n    X0 PAR0 1\nRHS\n    RHS RES0 1\nENDATA\n",
		"par rhs not 0":   "ROWS\n N COST\n L RES0\n G PAR0\nCOLUMNS\n    OMEGA COST 1\n    X0 RES0 1\n    X0 PAR0 1\n    OMEGA PAR0 -1\nRHS\n    RHS RES0 1\n    RHS PAR0 3\nENDATA\n",
		"bad column":      "ROWS\n N COST\n L RES0\nCOLUMNS\n    OMEGA COST 1\n    Y0 RES0 1\nRHS\n    RHS RES0 1\nENDATA\n",
		"agent overflow":  "* MMLP AGENTS 1\nROWS\n N COST\n L RES0\nCOLUMNS\n    OMEGA COST 1\n    X5 RES0 1\nRHS\n    RHS RES0 1\nENDATA\n",
		"unknown section": "BOUNDS\nENDATA\n",
		"bad value":       "ROWS\n N COST\n L RES0\nCOLUMNS\n    X0 RES0 one\nENDATA\n",
	}
	for name, src := range cases {
		if _, err := mmlp.ReadMPS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestMPSInstanceSolvableByGenericReader: the instance MPS export is
// valid general MPS — lp.ReadMPS parses it, and solving the imported
// global LP reproduces lp.SolveMaxMin's ω exactly (the reconstructed
// problem is identical to the one SolveMaxMin assembles, up to row
// order, which both writers fix).
func TestMPSInstanceSolvableByGenericReader(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in, _ := gen.Torus([]int{4, 4}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	var buf bytes.Buffer
	if err := in.WriteMPS(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := lp.ReadMPS(&buf)
	if err != nil {
		t.Fatalf("generic reader rejected the instance export: %v", err)
	}
	if f.Problem.Minimize {
		t.Fatal("instance export read back as a minimisation")
	}
	sol, err := lp.Solve(f.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	ref, err := lp.SolveMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-ref.Omega) > 1e-9*math.Max(1, math.Abs(ref.Omega)) {
		t.Fatalf("generic solve ω = %v, SolveMaxMin ω = %v", sol.Value, ref.Omega)
	}
}
