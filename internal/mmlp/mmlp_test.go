package mmlp

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func tinyInstance(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(3)
	b.AddResource(Entry{0, 1}, Entry{1, 2})
	b.AddResource(Entry{1, 0.5}, Entry{2, 1})
	b.AddParty(Entry{0, 1}, Entry{1, 1})
	b.AddParty(Entry{2, 3})
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestBuilderBasics(t *testing.T) {
	in := tinyInstance(t)
	if in.NumAgents() != 3 || in.NumResources() != 2 || in.NumParties() != 2 {
		t.Fatalf("shape: %s", in.Stats())
	}
	if got := in.A(0, 1); got != 2 {
		t.Fatalf("A(0,1) = %v, want 2", got)
	}
	if got := in.A(0, 2); got != 0 {
		t.Fatalf("A(0,2) = %v, want 0", got)
	}
	if got := in.C(1, 2); got != 3 {
		t.Fatalf("C(1,2) = %v, want 3", got)
	}
	if got := in.AgentResources(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("I_1 = %v, want [0 1]", got)
	}
	if got := in.AgentParties(2); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("K_2 = %v, want [1]", got)
	}
	deg := in.Degrees()
	if deg.MaxVI != 2 || deg.MaxVK != 2 || deg.MaxIV != 2 || deg.MaxKV != 1 {
		t.Fatalf("degrees = %+v", deg)
	}
}

func TestBuilderRejectsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"duplicate agent in resource", func() *Builder {
			b := NewBuilder(2)
			b.AddResource(Entry{0, 1}, Entry{0, 2})
			return b
		}},
		{"agent out of range", func() *Builder {
			b := NewBuilder(1)
			b.AddResource(Entry{5, 1})
			return b
		}},
		{"negative agent", func() *Builder {
			b := NewBuilder(1)
			b.AddResource(Entry{-1, 1})
			return b
		}},
		{"zero coefficient", func() *Builder {
			b := NewBuilder(1)
			b.AddResource(Entry{0, 0})
			return b
		}},
		{"negative coefficient", func() *Builder {
			b := NewBuilder(1)
			b.AddResource(Entry{0, -1})
			return b
		}},
		{"NaN coefficient", func() *Builder {
			b := NewBuilder(1)
			b.AddResource(Entry{0, math.NaN()})
			return b
		}},
		{"empty resource", func() *Builder {
			b := NewBuilder(1)
			b.AddResource()
			b.AddResource(Entry{0, 1})
			return b
		}},
		{"empty party", func() *Builder {
			b := NewBuilder(1)
			b.AddResource(Entry{0, 1})
			b.AddParty()
			return b
		}},
		{"unconstrained agent", func() *Builder {
			b := NewBuilder(2)
			b.AddResource(Entry{0, 1})
			return b
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build().Build(); err == nil {
			t.Errorf("%s: Build accepted invalid input", tc.name)
		}
	}
}

func TestAllowUnconstrained(t *testing.T) {
	b := NewBuilder(2).AllowUnconstrained()
	b.AddResource(Entry{0, 1})
	in, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !in.AllowsUnconstrained() {
		t.Fatal("flag not recorded")
	}
	if err := in.Validate(); err == nil {
		t.Fatal("strict Validate should still reject Iv = ∅")
	}
}

func TestObjectiveAndViolation(t *testing.T) {
	in := tinyInstance(t)
	x := []float64{0.5, 0.25, 1}
	// party 0: 0.5 + 0.25 = 0.75; party 1: 3.
	if got := in.Objective(x); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("objective = %v, want 0.75", got)
	}
	// resource 0: 0.5 + 0.5 = 1 ✓; resource 1: 0.125 + 1 = 1.125 ✗.
	if got := in.Violation(x); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("violation = %v, want 0.125", got)
	}
	if in.Feasible(x, 1e-9) {
		t.Fatal("x should be infeasible")
	}
	if !in.Feasible([]float64{0, 0, 0}, 0) {
		t.Fatal("zero must be feasible")
	}
	if got := in.Violation([]float64{-0.5, 0, 0}); got != 0.5 {
		t.Fatalf("negativity violation = %v, want 0.5", got)
	}
	if got := in.Violation([]float64{0}); !math.IsInf(got, 1) {
		t.Fatalf("wrong-length violation = %v, want +Inf", got)
	}
}

func TestObjectiveNoParties(t *testing.T) {
	b := NewBuilder(1)
	b.AddResource(Entry{0, 1})
	in := b.MustBuild()
	if got := in.Objective([]float64{1}); !math.IsInf(got, 1) {
		t.Fatalf("ω over no parties = %v, want +Inf", got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := tinyInstance(t)
	var buf bytes.Buffer
	if err := in.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameInstance(t, in, back)
}

func TestJSONRoundTrip(t *testing.T) {
	in := tinyInstance(t)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	back := &Instance{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	assertSameInstance(t, in, back)
}

func assertSameInstance(t *testing.T, a, b *Instance) {
	t.Helper()
	if a.NumAgents() != b.NumAgents() || a.NumResources() != b.NumResources() || a.NumParties() != b.NumParties() {
		t.Fatalf("shape mismatch: %s vs %s", a.Stats(), b.Stats())
	}
	for i := 0; i < a.NumResources(); i++ {
		if !reflect.DeepEqual(a.Resource(i), b.Resource(i)) {
			t.Fatalf("resource %d: %v vs %v", i, a.Resource(i), b.Resource(i))
		}
	}
	for k := 0; k < a.NumParties(); k++ {
		if !reflect.DeepEqual(a.Party(k), b.Party(k)) {
			t.Fatalf("party %d: %v vs %v", k, a.Party(k), b.Party(k))
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	for _, input := range []string{
		"",
		"nonsense header",
		"mmlp 1 1 0\nr 0:abc",
		"mmlp 1 1 0\nr 0",
		"mmlp 1 1 0\nz 0:1",
		"mmlp 1 2 0\nr 0:1", // header promises 2 resources
	} {
		if _, err := ReadText(strings.NewReader(input)); err == nil {
			t.Errorf("ReadText accepted %q", input)
		}
	}
}

func TestTextRoundTripQuick(t *testing.T) {
	// Property: every valid random instance survives a text round trip.
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.AddResource(Entry{v, 0.1 + r.Float64()})
		}
		for k := 0; k < 1+r.Intn(5); k++ {
			b.AddParty(Entry{r.Intn(n), 0.1 + r.Float64()})
		}
		in := b.MustBuild()
		var buf bytes.Buffer
		if err := in.WriteText(&buf); err != nil {
			return false
		}
		back, err := ReadText(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < in.NumResources(); i++ {
			if !reflect.DeepEqual(in.Resource(i), back.Resource(i)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRestrict(t *testing.T) {
	// agents 0,1,2,3; resources {0,1}, {2,3}; parties {0}, {2,3}, {1,2}.
	b := NewBuilder(4)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(2, 3)
	b.AddUniformParty(1, 0)
	b.AddUniformParty(1, 2, 3)
	b.AddUniformParty(1, 1, 2)
	in := b.MustBuild()

	restr, dropped := in.Restrict([]int{0, 1, 2})
	// Resource {2,3} is cut, so agent 2 loses all resources and is dropped;
	// parties touching 2 go too.
	if !reflect.DeepEqual(dropped, []int{2}) {
		t.Fatalf("dropped = %v, want [2]", dropped)
	}
	if !reflect.DeepEqual(restr.Agents, []int{0, 1}) {
		t.Fatalf("kept agents = %v, want [0 1]", restr.Agents)
	}
	sub := restr.Sub
	if sub.NumResources() != 1 || sub.NumParties() != 1 {
		t.Fatalf("sub shape: %s", sub.Stats())
	}
	if restr.LocalAgent(1) != 1 || restr.LocalAgent(3) != -1 {
		t.Fatalf("LocalAgent mapping wrong: %d, %d", restr.LocalAgent(1), restr.LocalAgent(3))
	}
	lifted := restr.LiftSolution(4, []float64{0.5, 0.25})
	if !reflect.DeepEqual(lifted, []float64{0.5, 0.25, 0, 0}) {
		t.Fatalf("lifted = %v", lifted)
	}
}

// TestRestrictPartyMappingWithDroppedAgent pins the party half of the
// Restriction mapping when parties are dropped because their support
// touches a dropped agent: Parties must list exactly the surviving
// parent parties, in sub-party order, with matching rows. (A historical
// in-place filter aliased the pre-filter keep list; this is the
// regression test for that.)
func TestRestrictPartyMappingWithDroppedAgent(t *testing.T) {
	// agents 0..4; resources keep 0,1,2 alive only: {0,1}, {1,2}, {3,4}.
	// Restricting to {0,1,2,3}: resource {3,4} dies, so agent 3 loses all
	// resources and is dropped. Parties: {0}, {3}, {0,1}, {2,3}, {1,2} —
	// the ones touching 3 must vanish from the mapping too.
	b := NewBuilder(5)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUnitResource(3, 4)
	b.AddUniformParty(1, 0)    // party 0: survives
	b.AddUniformParty(1, 3)    // party 1: dropped with agent 3
	b.AddUniformParty(2, 0, 1) // party 2: survives
	b.AddUniformParty(1, 2, 3) // party 3: dropped with agent 3
	b.AddUniformParty(3, 1, 2) // party 4: survives
	in := b.MustBuild()

	restr, dropped := in.Restrict([]int{0, 1, 2, 3})
	if !reflect.DeepEqual(dropped, []int{3}) {
		t.Fatalf("dropped = %v, want [3]", dropped)
	}
	sub := restr.Sub
	if !reflect.DeepEqual(restr.Parties, []int{0, 2, 4}) {
		t.Fatalf("Parties = %v, want [0 2 4]", restr.Parties)
	}
	if sub.NumParties() != len(restr.Parties) {
		t.Fatalf("sub has %d parties but mapping lists %d", sub.NumParties(), len(restr.Parties))
	}
	// Each sub party must be its parent party relabelled through the
	// agent mapping, coefficient for coefficient.
	for kLocal, kParent := range restr.Parties {
		parent := in.Party(kParent)
		local := sub.Party(kLocal)
		if len(parent) != len(local) {
			t.Fatalf("party %d→%d: row lengths %d vs %d", kLocal, kParent, len(local), len(parent))
		}
		for j, e := range parent {
			want := Entry{Agent: restr.LocalAgent(e.Agent), Coeff: e.Coeff}
			if local[j] != want {
				t.Fatalf("party %d→%d entry %d: got %+v, want %+v", kLocal, kParent, j, local[j], want)
			}
		}
	}
}

func TestRestrictKeepAll(t *testing.T) {
	b := NewBuilder(4)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(2, 3)
	b.AddUniformParty(1, 1, 2)
	in := b.MustBuild()

	restr := in.RestrictKeepAll([]int{0, 1, 2})
	sub := restr.Sub
	if sub.NumAgents() != 3 {
		t.Fatalf("agents = %d, want 3 (agent 2 kept despite losing its resource)", sub.NumAgents())
	}
	if sub.NumResources() != 1 {
		t.Fatalf("resources = %d, want 1", sub.NumResources())
	}
	if sub.NumParties() != 1 {
		t.Fatalf("parties = %d, want 1 ({1,2} ⊆ V')", sub.NumParties())
	}
	local2 := restr.LocalAgent(2)
	if len(sub.AgentResources(local2)) != 0 {
		t.Fatal("agent 2 should be unconstrained in the sub-instance")
	}
	if !sub.AllowsUnconstrained() {
		t.Fatal("sub-instance must be marked AllowUnconstrained")
	}
}

func TestRestrictQuickInvariants(t *testing.T) {
	// Property: for random instances and random agent subsets, every kept
	// resource's support is inside the subset, and every dropped agent
	// has no surviving resource.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		b := NewBuilder(n)
		for v := 0; v < n; v++ {
			b.AddResource(Entry{v, 1}) // self-resource guarantees validity
		}
		for i := 0; i < r.Intn(8); i++ {
			a, c := r.Intn(n), r.Intn(n)
			if a != c {
				b.AddResource(Entry{a, 1}, Entry{c, 1})
			}
		}
		for k := 0; k < 1+r.Intn(4); k++ {
			b.AddParty(Entry{r.Intn(n), 1})
		}
		in := b.MustBuild()
		var subset []int
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				subset = append(subset, v)
			}
		}
		if len(subset) == 0 {
			subset = []int{0}
		}
		inSub := map[int]bool{}
		for _, v := range subset {
			inSub[v] = true
		}
		restr, _ := in.Restrict(subset)
		for _, parent := range restr.Resources {
			for _, e := range in.Resource(parent) {
				if !inSub[e.Agent] {
					return false
				}
			}
		}
		// The sub-instance must be strictly valid.
		return restr.Sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	s := tinyInstance(t).Stats()
	if s.Nonzeros != 7 {
		t.Fatalf("nonzeros = %d, want 7", s.Nonzeros)
	}
	str := s.String()
	for _, want := range []string{"agents=3", "resources=2", "parties=2"} {
		if !strings.Contains(str, want) {
			t.Fatalf("Stats string %q missing %q", str, want)
		}
	}
}
