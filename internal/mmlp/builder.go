package mmlp

import (
	"fmt"
	"sort"
)

// Builder constructs Instances incrementally. The zero value is ready to
// use. Builders are not safe for concurrent use.
type Builder struct {
	nAgents            int
	resRows            [][]Entry
	parRows            [][]Entry
	allowUnconstrained bool
	err                error
}

// AllowUnconstrained relaxes the Iv ≠ ∅ validation: agents that consume
// no resource are permitted. The paper assumes Iv ≠ ∅ "to avoid
// uninteresting degenerate cases", but the instance S' of Section 4.3
// genuinely contains such agents near its boundary (their unique resource
// hyperedge is cut by the restriction), so the library must be able to
// represent them.
func (b *Builder) AllowUnconstrained() *Builder {
	b.allowUnconstrained = true
	return b
}

// NewBuilder returns a Builder pre-sized for the given number of agents.
// Additional agents can still be added with AddAgent or AddAgents.
func NewBuilder(agents int) *Builder {
	b := &Builder{}
	if agents > 0 {
		b.nAgents = agents
	}
	return b
}

// AddAgent adds one agent and returns its index.
func (b *Builder) AddAgent() int {
	b.nAgents++
	return b.nAgents - 1
}

// AddAgents adds n agents and returns the index of the first one.
func (b *Builder) AddAgents(n int) int {
	first := b.nAgents
	b.nAgents += n
	return first
}

// NumAgents returns the number of agents added so far.
func (b *Builder) NumAgents() int { return b.nAgents }

// AddResource adds one resource constraint Σ a_iv x_v ≤ 1 with the given
// nonzero entries and returns the resource index. Entries may be given in
// any order; duplicate agents are rejected at Build time.
func (b *Builder) AddResource(entries ...Entry) int {
	b.resRows = append(b.resRows, normalizeRow(entries))
	return len(b.resRows) - 1
}

// AddParty adds one beneficiary party with benefit Σ c_kv x_v and returns
// the party index.
func (b *Builder) AddParty(entries ...Entry) int {
	b.parRows = append(b.parRows, normalizeRow(entries))
	return len(b.parRows) - 1
}

// AddUnitResource adds a resource with a_iv = 1 for each given agent
// (the aiv ∈ {0,1} setting used throughout Section 4 of the paper).
func (b *Builder) AddUnitResource(agents ...int) int {
	entries := make([]Entry, len(agents))
	for j, v := range agents {
		entries[j] = Entry{Agent: v, Coeff: 1}
	}
	return b.AddResource(entries...)
}

// AddUniformParty adds a party with c_kv = coeff for each given agent.
func (b *Builder) AddUniformParty(coeff float64, agents ...int) int {
	entries := make([]Entry, len(agents))
	for j, v := range agents {
		entries[j] = Entry{Agent: v, Coeff: coeff}
	}
	return b.AddParty(entries...)
}

func normalizeRow(entries []Entry) []Entry {
	row := make([]Entry, len(entries))
	copy(row, entries)
	sort.Slice(row, func(a, b int) bool { return row[a].Agent < row[b].Agent })
	return row
}

// Build finalises the instance, computes the agent-side incidence lists
// Iv and Kv, and validates the structural assumptions of the paper.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	in := &Instance{
		nAgents:  b.nAgents,
		resRows:  make([][]Entry, len(b.resRows)),
		parRows:  make([][]Entry, len(b.parRows)),
		agentRes: make([][]int, b.nAgents),
		agentPar: make([][]int, b.nAgents),
	}
	copy(in.resRows, b.resRows)
	copy(in.parRows, b.parRows)
	for i, row := range in.resRows {
		for j := 1; j < len(row); j++ {
			if row[j].Agent == row[j-1].Agent {
				return nil, fmt.Errorf("mmlp: resource %d lists agent %d twice", i, row[j].Agent)
			}
		}
	}
	for k, row := range in.parRows {
		for j := 1; j < len(row); j++ {
			if row[j].Agent == row[j-1].Agent {
				return nil, fmt.Errorf("mmlp: party %d lists agent %d twice", k, row[j].Agent)
			}
		}
	}
	for i, row := range in.resRows {
		for _, e := range row {
			if e.Agent < 0 || e.Agent >= in.nAgents {
				return nil, fmt.Errorf("mmlp: resource %d references agent %d out of range [0,%d)", i, e.Agent, in.nAgents)
			}
			in.agentRes[e.Agent] = append(in.agentRes[e.Agent], i)
		}
	}
	for k, row := range in.parRows {
		for _, e := range row {
			if e.Agent < 0 || e.Agent >= in.nAgents {
				return nil, fmt.Errorf("mmlp: party %d references agent %d out of range [0,%d)", k, e.Agent, in.nAgents)
			}
			in.agentPar[e.Agent] = append(in.agentPar[e.Agent], k)
		}
	}
	if err := in.validate(b.allowUnconstrained); err != nil {
		return nil, err
	}
	in.hasUnconstrained = b.allowUnconstrained
	return in, nil
}

// MustBuild is Build that panics on error; intended for tests and
// generators whose output is correct by construction.
func (b *Builder) MustBuild() *Instance {
	in, err := b.Build()
	if err != nil {
		panic(err)
	}
	return in
}
