package mmlp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadText checks that the text parser never panics on arbitrary
// input, and that every instance it accepts is structurally valid (or
// explicitly unconstrained) and round-trips exactly.
func FuzzReadText(f *testing.F) {
	f.Add("mmlp 2 2 1\nr 0:1 1:2\nr 1:0.5\np 0:1\n")
	f.Add("mmlp 1 1 0\nr 0:1\n")
	f.Add("mmlp 0 0 0\n")
	f.Add("mmlp 3 1 1\n# comment\nr 0:1 1:1 2:1\np 2:3\n")
	f.Add("garbage")
	f.Add("mmlp 1 1 1\nr 0:1\np 0:nan\n")
	f.Fuzz(func(t *testing.T, input string) {
		in, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted instance fails validation: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := in.WriteText(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", err, buf.String())
		}
		if in.NumAgents() != back.NumAgents() ||
			in.NumResources() != back.NumResources() ||
			in.NumParties() != back.NumParties() {
			t.Fatalf("round trip changed shape: %s vs %s", in.Stats(), back.Stats())
		}
		for i := 0; i < in.NumResources(); i++ {
			if !reflect.DeepEqual(in.Resource(i), back.Resource(i)) {
				t.Fatalf("round trip changed resource %d", i)
			}
		}
	})
}
