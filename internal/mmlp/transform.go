package mmlp

import "fmt"

// Relabel returns a copy of the instance with agents renamed by the given
// permutation: agent v of the original becomes agent perm[v]. Resource and
// party indices are unchanged. Relabelling models reassigning the locally
// unique identifiers of Section 1.5; identifier-oblivious algorithms (such
// as the safe algorithm) must be equivariant under it, i.e.
// Alg(Relabel(in))[perm[v]] == Alg(in)[v].
func (in *Instance) Relabel(perm []int) (*Instance, error) {
	n := in.nAgents
	if len(perm) != n {
		return nil, fmt.Errorf("mmlp: permutation has %d entries, instance has %d agents", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("mmlp: %v is not a permutation of 0..%d", perm, n-1)
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	if in.hasUnconstrained {
		b.AllowUnconstrained()
	}
	for _, row := range in.resRows {
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: perm[e.Agent], Coeff: e.Coeff}
		}
		b.AddResource(entries...)
	}
	for _, row := range in.parRows {
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: perm[e.Agent], Coeff: e.Coeff}
		}
		b.AddParty(entries...)
	}
	return b.Build()
}

// DisjointUnion combines two instances into one with no interaction
// between their agent sets: agents, resources and parties of b are
// shifted after those of a. Useful for building multi-component test
// instances — a local algorithm must treat components independently.
func DisjointUnion(a, b *Instance) *Instance {
	builder := NewBuilder(a.nAgents + b.nAgents)
	if a.hasUnconstrained || b.hasUnconstrained {
		builder.AllowUnconstrained()
	}
	for _, row := range a.resRows {
		builder.AddResource(row...)
	}
	for _, row := range b.resRows {
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: e.Agent + a.nAgents, Coeff: e.Coeff}
		}
		builder.AddResource(entries...)
	}
	for _, row := range a.parRows {
		builder.AddParty(row...)
	}
	for _, row := range b.parRows {
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: e.Agent + a.nAgents, Coeff: e.Coeff}
		}
		builder.AddParty(entries...)
	}
	return builder.MustBuild()
}

// Scale returns a copy with every resource coefficient multiplied by
// resFactor and every party coefficient by parFactor. Scaling resources
// by f scales the feasible region (and hence ω*) by 1/f; scaling parties
// by f scales ω* by f. Both factors must be positive.
func (in *Instance) Scale(resFactor, parFactor float64) (*Instance, error) {
	if !(resFactor > 0) || !(parFactor > 0) {
		return nil, fmt.Errorf("mmlp: scale factors must be positive, got %v and %v", resFactor, parFactor)
	}
	b := NewBuilder(in.nAgents)
	if in.hasUnconstrained {
		b.AllowUnconstrained()
	}
	for _, row := range in.resRows {
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: e.Agent, Coeff: e.Coeff * resFactor}
		}
		b.AddResource(entries...)
	}
	for _, row := range in.parRows {
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: e.Agent, Coeff: e.Coeff * parFactor}
		}
		b.AddParty(entries...)
	}
	return b.Build()
}
