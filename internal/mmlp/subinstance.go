package mmlp

import "sort"

// Restriction describes how a sub-instance was cut out of a parent
// instance, mapping the local dense indices back to the parent's indices.
type Restriction struct {
	Sub *Instance

	// Agents[v'] is the parent agent index of local agent v'.
	Agents []int
	// Resources[i'] is the parent resource index of local resource i'.
	Resources []int
	// Parties[k'] is the parent party index of local party k'.
	Parties []int

	agentLocal map[int]int
}

// LocalAgent maps a parent agent index to the local index, or -1 if the
// agent is not part of the sub-instance.
func (r *Restriction) LocalAgent(parent int) int {
	if v, ok := r.agentLocal[parent]; ok {
		return v
	}
	return -1
}

// LiftSolution maps a solution of the sub-instance back into the parent's
// index space, filling agents outside the restriction with 0.
func (r *Restriction) LiftSolution(parentAgents int, sub []float64) []float64 {
	x := make([]float64, parentAgents)
	for vLocal, vParent := range r.Agents {
		x[vParent] = sub[vLocal]
	}
	return x
}

// Restrict builds the sub-instance induced by the given agent set, keeping
// only resources with Vi ⊆ agents and parties with Vk ⊆ agents. This is
// exactly the operation used to build the instance S' in Section 4.3 of
// the paper (I' = {i : Vi ⊆ V'}, K' = {k : Vk ⊆ V'}).
//
// Agents whose entire Iv is dropped would make the sub-instance invalid
// (unbounded variables); Restrict keeps them only if at least one of their
// resources survives, and otherwise returns them in the dropped list.
func (in *Instance) Restrict(agents []int) (*Restriction, []int) {
	keep := make(map[int]bool, len(agents))
	for _, v := range agents {
		keep[v] = true
	}

	var resKeep []int
	for i, row := range in.resRows {
		if rowInside(row, keep) {
			resKeep = append(resKeep, i)
		}
	}
	var parKeep []int
	for k, row := range in.parRows {
		if rowInside(row, keep) {
			parKeep = append(parKeep, k)
		}
	}

	// An agent stays only if it still consumes some surviving resource.
	covered := make(map[int]bool)
	for _, i := range resKeep {
		for _, e := range in.resRows[i] {
			covered[e.Agent] = true
		}
	}
	var kept, dropped []int
	for _, v := range uniqueSorted(agents) {
		if covered[v] {
			kept = append(kept, v)
		} else {
			dropped = append(dropped, v)
		}
	}

	local := make(map[int]int, len(kept))
	for idx, v := range kept {
		local[v] = idx
	}

	b := NewBuilder(len(kept))
	// Parties whose support touches a dropped agent must go too: dropped
	// agents are not representable in the sub-instance. (Resources cannot,
	// by construction: every agent of a kept resource is covered.)
	// parKept must not alias parKeep: the in-place filter of an aliased
	// slice leaves the tail of parKeep stale, and the Restriction below
	// would map local parties to the wrong (or a duplicated) parent.
	parKept := make([]int, 0, len(parKeep))
	for _, k := range parKeep {
		ok := true
		for _, e := range in.parRows[k] {
			if _, isLocal := local[e.Agent]; !isLocal {
				ok = false
				break
			}
		}
		if ok {
			parKept = append(parKept, k)
		}
	}
	for _, i := range resKeep {
		row := in.resRows[i]
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: local[e.Agent], Coeff: e.Coeff}
		}
		b.AddResource(entries...)
	}
	for _, k := range parKept {
		row := in.parRows[k]
		entries := make([]Entry, len(row))
		for j, e := range row {
			entries[j] = Entry{Agent: local[e.Agent], Coeff: e.Coeff}
		}
		b.AddParty(entries...)
	}
	sub := b.MustBuild()
	return &Restriction{
		Sub:        sub,
		Agents:     kept,
		Resources:  resKeep,
		Parties:    parKept,
		agentLocal: local,
	}, dropped
}

// RestrictKeepAll builds the sub-instance on exactly the given agent set,
// following the paper's Section 4.3 definition verbatim: every agent of
// the set is kept (even if it loses all of its resources), I' = {i : Vi ⊆
// V'} and K' = {k : Vk ⊆ V'}. The resulting instance is built with
// AllowUnconstrained because boundary agents of S' genuinely have
// Iv = ∅.
func (in *Instance) RestrictKeepAll(agents []int) *Restriction {
	kept := uniqueSorted(agents)
	keep := make(map[int]bool, len(kept))
	for _, v := range kept {
		keep[v] = true
	}
	local := make(map[int]int, len(kept))
	for idx, v := range kept {
		local[v] = idx
	}
	b := NewBuilder(len(kept)).AllowUnconstrained()
	var resKeep, parKeep []int
	for i, row := range in.resRows {
		if rowInside(row, keep) {
			resKeep = append(resKeep, i)
			entries := make([]Entry, len(row))
			for j, e := range row {
				entries[j] = Entry{Agent: local[e.Agent], Coeff: e.Coeff}
			}
			b.AddResource(entries...)
		}
	}
	for k, row := range in.parRows {
		if rowInside(row, keep) {
			parKeep = append(parKeep, k)
			entries := make([]Entry, len(row))
			for j, e := range row {
				entries[j] = Entry{Agent: local[e.Agent], Coeff: e.Coeff}
			}
			b.AddParty(entries...)
		}
	}
	return &Restriction{
		Sub:        b.MustBuild(),
		Agents:     kept,
		Resources:  resKeep,
		Parties:    parKeep,
		agentLocal: local,
	}
}

func rowInside(row []Entry, keep map[int]bool) bool {
	for _, e := range row {
		if !keep[e.Agent] {
			return false
		}
	}
	return true
}

func uniqueSorted(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	w := 0
	for i, x := range out {
		if i == 0 || x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}
