package mmlp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonInstance is the serialized form of an Instance. Unconstrained
// preserves the AllowUnconstrained build mode so instances that
// legitimately carry detached agents — anything that has been through a
// removeAgent topology patch — round-trip exactly; without it a replica
// catch-up or a write-ahead-log replay of a churned instance would be
// rejected by the strict Iv ≠ ∅ validation.
type jsonInstance struct {
	Agents        int       `json:"agents"`
	Resources     [][]Entry `json:"resources"`
	Parties       [][]Entry `json:"parties"`
	Unconstrained bool      `json:"unconstrained,omitempty"`
}

// MarshalJSON encodes the instance as
// {"agents":n,"resources":[[{Agent,Coeff},...],...],"parties":[...]}.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonInstance{
		Agents:        in.nAgents,
		Resources:     in.resRows,
		Parties:       in.parRows,
		Unconstrained: in.hasUnconstrained,
	})
}

// UnmarshalJSON decodes and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var j jsonInstance
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	b := NewBuilder(j.Agents)
	if j.Unconstrained {
		b.AllowUnconstrained()
	}
	for _, row := range j.Resources {
		b.AddResource(row...)
	}
	for _, row := range j.Parties {
		b.AddParty(row...)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*in = *built
	return nil
}

// WriteText writes the instance in a line-oriented text format:
//
//	mmlp <agents> <resources> <parties>
//	r <agent>:<coeff> <agent>:<coeff> ...     (one line per resource)
//	p <agent>:<coeff> <agent>:<coeff> ...     (one line per party)
//
// The format is meant for the CLI and for fixtures; it round-trips through
// ReadText.
func (in *Instance) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mmlp %d %d %d\n", in.nAgents, len(in.resRows), len(in.parRows))
	writeRows := func(tag string, rows [][]Entry) {
		for _, row := range rows {
			bw.WriteString(tag)
			for _, e := range row {
				fmt.Fprintf(bw, " %d:%s", e.Agent, strconv.FormatFloat(e.Coeff, 'g', -1, 64))
			}
			bw.WriteByte('\n')
		}
	}
	writeRows("r", in.resRows)
	writeRows("p", in.parRows)
	return bw.Flush()
}

// ReadText parses the format written by WriteText.
func ReadText(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmlp: empty input")
	}
	var nAgents, nRes, nPar int
	if _, err := fmt.Sscanf(sc.Text(), "mmlp %d %d %d", &nAgents, &nRes, &nPar); err != nil {
		return nil, fmt.Errorf("mmlp: bad header %q: %w", sc.Text(), err)
	}
	b := NewBuilder(nAgents)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		entries := make([]Entry, 0, len(fields)-1)
		for _, f := range fields[1:] {
			agentStr, coeffStr, ok := strings.Cut(f, ":")
			if !ok {
				return nil, fmt.Errorf("mmlp: line %d: bad entry %q", line, f)
			}
			agent, err := strconv.Atoi(agentStr)
			if err != nil {
				return nil, fmt.Errorf("mmlp: line %d: bad agent in %q: %w", line, f, err)
			}
			coeff, err := strconv.ParseFloat(coeffStr, 64)
			if err != nil {
				return nil, fmt.Errorf("mmlp: line %d: bad coefficient in %q: %w", line, f, err)
			}
			entries = append(entries, Entry{Agent: agent, Coeff: coeff})
		}
		switch fields[0] {
		case "r":
			b.AddResource(entries...)
		case "p":
			b.AddParty(entries...)
		default:
			return nil, fmt.Errorf("mmlp: line %d: unknown row tag %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	in, err := b.Build()
	if err != nil {
		return nil, err
	}
	if in.NumResources() != nRes || in.NumParties() != nPar {
		return nil, fmt.Errorf("mmlp: header promised %d resources and %d parties, got %d and %d",
			nRes, nPar, in.NumResources(), in.NumParties())
	}
	return in, nil
}
