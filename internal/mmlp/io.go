package mmlp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonInstance is the serialized form of an Instance. Unconstrained
// preserves the AllowUnconstrained build mode so instances that
// legitimately carry detached agents — anything that has been through a
// removeAgent topology patch — round-trip exactly; without it a replica
// catch-up or a write-ahead-log replay of a churned instance would be
// rejected by the strict Iv ≠ ∅ validation.
type jsonInstance struct {
	Agents        int       `json:"agents"`
	Resources     [][]Entry `json:"resources"`
	Parties       [][]Entry `json:"parties"`
	Unconstrained bool      `json:"unconstrained,omitempty"`
}

// MarshalJSON encodes the instance as
// {"agents":n,"resources":[[{Agent,Coeff},...],...],"parties":[...]}.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonInstance{
		Agents:        in.nAgents,
		Resources:     in.resRows,
		Parties:       in.parRows,
		Unconstrained: in.hasUnconstrained,
	})
}

// UnmarshalJSON decodes and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var j jsonInstance
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	b := NewBuilder(j.Agents)
	if j.Unconstrained {
		b.AllowUnconstrained()
	}
	for _, row := range j.Resources {
		b.AddResource(row...)
	}
	for _, row := range j.Parties {
		b.AddParty(row...)
	}
	built, err := b.Build()
	if err != nil {
		return err
	}
	*in = *built
	return nil
}

// WriteText writes the instance in a line-oriented text format:
//
//	mmlp <agents> <resources> <parties>
//	r <agent>:<coeff> <agent>:<coeff> ...     (one line per resource)
//	p <agent>:<coeff> <agent>:<coeff> ...     (one line per party)
//
// The format is meant for the CLI and for fixtures; it round-trips through
// ReadText.
func (in *Instance) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "mmlp %d %d %d\n", in.nAgents, len(in.resRows), len(in.parRows))
	writeRows := func(tag string, rows [][]Entry) {
		for _, row := range rows {
			bw.WriteString(tag)
			for _, e := range row {
				fmt.Fprintf(bw, " %d:%s", e.Agent, strconv.FormatFloat(e.Coeff, 'g', -1, 64))
			}
			bw.WriteByte('\n')
		}
	}
	writeRows("r", in.resRows)
	writeRows("p", in.parRows)
	return bw.Flush()
}

// ReadText parses the format written by WriteText.
func ReadText(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmlp: empty input")
	}
	var nAgents, nRes, nPar int
	if _, err := fmt.Sscanf(sc.Text(), "mmlp %d %d %d", &nAgents, &nRes, &nPar); err != nil {
		return nil, fmt.Errorf("mmlp: bad header %q: %w", sc.Text(), err)
	}
	b := NewBuilder(nAgents)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		entries := make([]Entry, 0, len(fields)-1)
		for _, f := range fields[1:] {
			agentStr, coeffStr, ok := strings.Cut(f, ":")
			if !ok {
				return nil, fmt.Errorf("mmlp: line %d: bad entry %q", line, f)
			}
			agent, err := strconv.Atoi(agentStr)
			if err != nil {
				return nil, fmt.Errorf("mmlp: line %d: bad agent in %q: %w", line, f, err)
			}
			coeff, err := strconv.ParseFloat(coeffStr, 64)
			if err != nil {
				return nil, fmt.Errorf("mmlp: line %d: bad coefficient in %q: %w", line, f, err)
			}
			entries = append(entries, Entry{Agent: agent, Coeff: coeff})
		}
		switch fields[0] {
		case "r":
			b.AddResource(entries...)
		case "p":
			b.AddParty(entries...)
		default:
			return nil, fmt.Errorf("mmlp: line %d: unknown row tag %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	in, err := b.Build()
	if err != nil {
		return nil, err
	}
	if in.NumResources() != nRes || in.NumParties() != nPar {
		return nil, fmt.Errorf("mmlp: header promised %d resources and %d parties, got %d and %d",
			nRes, nPar, in.NumResources(), in.NumParties())
	}
	return in, nil
}

// WriteMPS writes the instance as its global max-min LP in free-format
// MPS — the interchange form any off-the-shelf LP solver reads:
//
//	maximise OMEGA
//	RES<i>:  Σ_v a_iv X<v>            ≤ 1     (one L row per resource)
//	PAR<k>:  Σ_v c_kv X<v> − OMEGA    ≥ 0     (one G row per party)
//
// with all variables nonnegative (the MPS default bound). Coefficients
// are written as shortest-round-trip decimals, so ReadMPS reconstructs
// the instance bit for bit; the leading `* MMLP AGENTS n` comment
// carries the agent count (agents detached by topology churn appear in
// no row), and `* MMLP UNCONSTRAINED 1` preserves the relaxed build
// mode such instances require.
func (in *Instance) WriteMPS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* MMLP AGENTS %d\n", in.nAgents)
	if in.hasUnconstrained {
		bw.WriteString("* MMLP UNCONSTRAINED 1\n")
	}
	bw.WriteString("NAME MMLP\nOBJSENSE\n    MAX\nROWS\n N COST\n")
	for i := range in.resRows {
		fmt.Fprintf(bw, " L RES%d\n", i)
	}
	for k := range in.parRows {
		fmt.Fprintf(bw, " G PAR%d\n", k)
	}
	bw.WriteString("COLUMNS\n")
	// Agent columns in index order; each row's entries are already in
	// ascending agent order, so emitting per-column preserves both.
	for v := 0; v < in.nAgents; v++ {
		for _, i := range in.agentRes[v] {
			fmt.Fprintf(bw, "    X%d RES%d %s\n", v, i, strconv.FormatFloat(lookup(in.resRows[i], v), 'g', -1, 64))
		}
		for _, k := range in.agentPar[v] {
			fmt.Fprintf(bw, "    X%d PAR%d %s\n", v, k, strconv.FormatFloat(lookup(in.parRows[k], v), 'g', -1, 64))
		}
	}
	bw.WriteString("    OMEGA COST 1\n")
	for k := range in.parRows {
		fmt.Fprintf(bw, "    OMEGA PAR%d -1\n", k)
	}
	bw.WriteString("RHS\n")
	for i := range in.resRows {
		fmt.Fprintf(bw, "    RHS RES%d 1\n", i)
	}
	bw.WriteString("ENDATA\n")
	return bw.Flush()
}

// ReadMPS parses the MPS form written by WriteMPS back into an
// instance. The parser accepts the free-format subset WriteMPS emits
// (comments, NAME, OBJSENSE, ROWS, COLUMNS with one or two pairs per
// line, RHS, ENDATA) with rows and entries in any order, but enforces
// the max-min structure: an explicit OBJSENSE MAX (the MPS default
// sense is MIN, so a file without the section would import a foreign
// minimisation with inverted meaning), L rows with rhs 1 as resources,
// G rows with rhs 0 as parties carrying exactly one −1 OMEGA entry,
// the objective exactly OMEGA, and agent columns named X<index>.
// Everything else is an error — this importer exists to round-trip
// instances exactly, not to coerce arbitrary LPs.
func ReadMPS(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)

	nAgents := -1
	unconstrained := false
	sawMax := false
	type row struct {
		name    string
		ge      bool
		entries []Entry // agent entries only
		omega   float64
		hasRHS  bool
		rhs     float64
	}
	var rows []*row
	byName := make(map[string]*row)
	objRow := ""
	objOmega := 0.0
	objOther := false
	ended := false

	const (
		secNone = iota
		secObjsense
		secRows
		secColumns
		secRHS
	)
	section := secNone
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(line, "*") {
			var n int
			if _, err := fmt.Sscanf(line, "* MMLP AGENTS %d", &n); err == nil {
				nAgents = n
			}
			var u int
			if _, err := fmt.Sscanf(line, "* MMLP UNCONSTRAINED %d", &u); err == nil && u != 0 {
				unconstrained = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if line[0] != ' ' && line[0] != '\t' {
			switch fields[0] {
			case "NAME":
				continue
			case "OBJSENSE":
				section = secObjsense
				if len(fields) > 1 {
					if strings.ToUpper(fields[1]) != "MAX" {
						return nil, fmt.Errorf("mmlp: mps line %d: max-min instances are MAX problems", lineNo)
					}
					sawMax = true
					section = secNone
				}
				continue
			case "ROWS":
				section = secRows
				continue
			case "COLUMNS":
				section = secColumns
				continue
			case "RHS":
				section = secRHS
				continue
			case "ENDATA":
				ended = true
			default:
				return nil, fmt.Errorf("mmlp: mps line %d: unsupported section %q", lineNo, fields[0])
			}
			if ended {
				break
			}
			continue
		}
		switch section {
		case secObjsense:
			if strings.ToUpper(fields[0]) != "MAX" {
				return nil, fmt.Errorf("mmlp: mps line %d: max-min instances are MAX problems", lineNo)
			}
			sawMax = true
			section = secNone
		case secRows:
			if len(fields) != 2 {
				return nil, fmt.Errorf("mmlp: mps line %d: bad ROWS entry %q", lineNo, line)
			}
			typ, name := fields[0], fields[1]
			if _, dup := byName[name]; dup || name == objRow && objRow != "" {
				return nil, fmt.Errorf("mmlp: mps line %d: duplicate row %q", lineNo, name)
			}
			switch typ {
			case "N":
				if objRow != "" {
					return nil, fmt.Errorf("mmlp: mps line %d: second objective row %q", lineNo, name)
				}
				objRow = name
			case "L", "G":
				rw := &row{name: name, ge: typ == "G"}
				byName[name] = rw
				rows = append(rows, rw)
			default:
				return nil, fmt.Errorf("mmlp: mps line %d: row type %q not used by max-min LPs", lineNo, typ)
			}
		case secColumns:
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("mmlp: mps line %d: bad COLUMNS entry %q", lineNo, line)
			}
			col := fields[0]
			for f := 1; f+1 < len(fields); f += 2 {
				rname := fields[f]
				v, err := strconv.ParseFloat(fields[f+1], 64)
				if err != nil {
					return nil, fmt.Errorf("mmlp: mps line %d: bad value %q: %w", lineNo, fields[f+1], err)
				}
				if rname == objRow && objRow != "" {
					if col == "OMEGA" {
						objOmega = v
					} else {
						objOther = true
					}
					continue
				}
				rw, ok := byName[rname]
				if !ok {
					return nil, fmt.Errorf("mmlp: mps line %d: unknown row %q", lineNo, rname)
				}
				if col == "OMEGA" {
					if rw.omega != 0 {
						return nil, fmt.Errorf("mmlp: mps line %d: duplicate OMEGA entry in row %q", lineNo, rname)
					}
					rw.omega = v
					continue
				}
				agent, err := agentIndex(col)
				if err != nil {
					return nil, fmt.Errorf("mmlp: mps line %d: %w", lineNo, err)
				}
				rw.entries = append(rw.entries, Entry{Agent: agent, Coeff: v})
			}
		case secRHS:
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("mmlp: mps line %d: bad RHS entry %q", lineNo, line)
			}
			for f := 1; f+1 < len(fields); f += 2 {
				rw, ok := byName[fields[f]]
				if !ok {
					return nil, fmt.Errorf("mmlp: mps line %d: unknown row %q", lineNo, fields[f])
				}
				v, err := strconv.ParseFloat(fields[f+1], 64)
				if err != nil {
					return nil, fmt.Errorf("mmlp: mps line %d: bad value %q: %w", lineNo, fields[f+1], err)
				}
				if rw.hasRHS {
					return nil, fmt.Errorf("mmlp: mps line %d: duplicate RHS for row %q", lineNo, fields[f])
				}
				rw.hasRHS, rw.rhs = true, v
			}
		default:
			return nil, fmt.Errorf("mmlp: mps line %d: data outside any section: %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !ended {
		return nil, fmt.Errorf("mmlp: mps: missing ENDATA")
	}
	if !sawMax {
		return nil, fmt.Errorf("mmlp: mps: missing OBJSENSE MAX (the MPS default sense is MIN; max-min instances must declare MAX explicitly)")
	}
	if objRow == "" {
		return nil, fmt.Errorf("mmlp: mps: no objective row")
	}
	if objOther || objOmega != 1 {
		return nil, fmt.Errorf("mmlp: mps: objective must be exactly OMEGA")
	}

	maxAgent := -1
	for _, rw := range rows {
		for _, e := range rw.entries {
			if e.Agent > maxAgent {
				maxAgent = e.Agent
			}
		}
	}
	if nAgents < 0 {
		nAgents = maxAgent + 1
	} else if maxAgent >= nAgents {
		return nil, fmt.Errorf("mmlp: mps: column X%d exceeds the declared %d agents", maxAgent, nAgents)
	}
	b := NewBuilder(nAgents)
	if unconstrained {
		b.AllowUnconstrained()
	}
	for _, rw := range rows {
		switch {
		case !rw.ge:
			if rw.omega != 0 {
				return nil, fmt.Errorf("mmlp: mps: resource row %q has an OMEGA entry", rw.name)
			}
			if !rw.hasRHS || rw.rhs != 1 {
				return nil, fmt.Errorf("mmlp: mps: resource row %q must have rhs 1", rw.name)
			}
			b.AddResource(rw.entries...)
		default:
			if rw.omega != -1 {
				return nil, fmt.Errorf("mmlp: mps: party row %q needs OMEGA coefficient -1, got %v", rw.name, rw.omega)
			}
			if rw.hasRHS && rw.rhs != 0 {
				return nil, fmt.Errorf("mmlp: mps: party row %q must have rhs 0", rw.name)
			}
			b.AddParty(rw.entries...)
		}
	}
	return b.Build()
}

// agentIndex parses an agent column name X<index>.
func agentIndex(col string) (int, error) {
	if !strings.HasPrefix(col, "X") {
		return 0, fmt.Errorf("unknown column %q (want X<agent> or OMEGA)", col)
	}
	idx, err := strconv.Atoi(col[1:])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("bad agent column %q", col)
	}
	return idx, nil
}
