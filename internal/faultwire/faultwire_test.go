package faultwire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"maxminlp/internal/dist"
	"maxminlp/internal/wire"
)

// pipe returns a wrapped client conn and the raw server side.
func pipe(t *testing.T, in *Injector) (net.Conn, net.Conn) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	return in.Wrap(c), s
}

// A zero plan must be perfectly transparent.
func TestTransparentWithoutFaults(t *testing.T) {
	in := NewInjector(Faults{Seed: 1})
	c, s := pipe(t, in)
	go func() {
		wire.WriteMsg(c, wire.TypePing, nil)
	}()
	env, err := wire.ReadMsg(s)
	if err != nil || env.Type != wire.TypePing {
		t.Fatalf("read = %v, %v", env, err)
	}
	if d, dl, du, te := in.Stats(); d+dl+du+te != 0 {
		t.Fatalf("faults fired on a zero plan: %d %d %d %d", d, dl, du, te)
	}
}

// Drop: the sender sees success, the receiver sees nothing — its read
// deadline must fire. This is the fault the RPC timeouts exist for.
func TestDropSwallowsFrame(t *testing.T) {
	in := NewInjector(Faults{Seed: 2, Drop: 1})
	c, s := pipe(t, in)
	if err := wire.WriteMsg(c, wire.TypePing, nil); err != nil {
		t.Fatalf("dropped write should report success, got %v", err)
	}
	s.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := wire.ReadMsg(s); err == nil {
		t.Fatal("frame was delivered despite Drop=1")
	}
	if d, _, _, _ := in.Stats(); d != 1 {
		t.Fatalf("drops = %d, want 1", d)
	}
}

// Dup: the receiver reads the same frame twice, bit-identically — the
// duplicate-delivery-attempt the worker's Seq suppression handles.
func TestDupDeliversTwice(t *testing.T) {
	in := NewInjector(Faults{Seed: 3, Dup: 1})
	c, s := pipe(t, in)
	go wire.WriteMsgSeq(c, wire.TypeSolve, 9, wire.Solve{ID: "i1", Kind: "safe"})
	var frames [][]byte
	s.SetReadDeadline(time.Now().Add(time.Second))
	for len(frames) < 2 {
		b, err := wire.ReadFrame(s)
		if err != nil {
			t.Fatalf("after %d frames: %v", len(frames), err)
		}
		frames = append(frames, b)
	}
	if !bytes.Equal(frames[0], frames[1]) {
		t.Fatal("duplicate is not bit-identical")
	}
}

// CloseMidFrame: the receiver gets a strict prefix then EOF — a torn
// stream, never a short-but-valid frame.
func TestCloseMidFrame(t *testing.T) {
	in := NewInjector(Faults{Seed: 4, CloseMidFrame: 1})
	c, s := pipe(t, in)
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- wire.WriteMsg(c, wire.TypeLoad, wire.Load{ID: "i1", Instance: []byte(`{"x":1}`)})
	}()
	s.SetReadDeadline(time.Now().Add(time.Second))
	_, err := wire.ReadMsg(s)
	if err == nil {
		t.Fatal("torn frame read as valid")
	}
	if err := <-writeErr; err == nil {
		t.Fatal("torn write reported success")
	}
	if _, _, _, te := in.Stats(); te != 1 {
		t.Fatalf("tears = %d, want 1", te)
	}
}

// Delay must not corrupt anything, and the same seed must fire the
// same schedule (counters equal across two identical runs).
func TestDelayAndDeterminism(t *testing.T) {
	run := func() (int, int) {
		in := NewInjector(Faults{Seed: 99, Delay: 0.5, MaxDelay: time.Millisecond, Dup: 0.3})
		c, s := pipe(t, in)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 20; i++ {
				wire.WriteMsg(c, wire.TypePing, nil)
			}
			c.Close()
		}()
		got := 0
		s.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			if _, err := wire.ReadFrame(s); err != nil {
				break
			}
			got++
		}
		<-done
		_, delays, dups, _ := in.Stats()
		if got < 20 {
			t.Fatalf("lost frames under delay+dup: %d < 20", got)
		}
		return delays, dups
	}
	d1, u1 := run()
	d2, u2 := run()
	if d1 != d2 || u1 != u2 {
		t.Fatalf("same seed, different schedule: (%d,%d) vs (%d,%d)", d1, u1, d2, u2)
	}
	if u1 == 0 {
		t.Fatal("dup probability 0.3 never fired in 20 writes")
	}
}

// Disable turns a faulty wire transparent — the "partition heals"
// switch used by recovery tests.
func TestDisableHeals(t *testing.T) {
	in := NewInjector(Faults{Seed: 5, Drop: 1})
	c, s := pipe(t, in)
	if err := wire.WriteMsg(c, wire.TypePing, nil); err != nil {
		t.Fatal(err)
	}
	in.Disable()
	go wire.WriteMsg(c, wire.TypePong, nil)
	s.SetReadDeadline(time.Now().Add(time.Second))
	env, err := wire.ReadMsg(s)
	if err != nil || env.Type != wire.TypePong {
		t.Fatalf("after Disable: %v, %v", env, err)
	}
}

// WrapTransport: Drop severs the mesh — Exchange errors out instead of
// hanging, exactly like a peer dying mid-round.
func TestTransportSever(t *testing.T) {
	ts := dist.NewLoopback(2)
	in := NewInjector(Faults{Seed: 6, Drop: 1})
	faulty := in.WrapTransport(ts[0])
	if faulty.Self() != 0 || faulty.Members() != 2 {
		t.Fatal("wrapper must preserve identity")
	}
	if _, err := faulty.Exchange(make([][]byte, 2)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("severed Exchange = %v, want net.ErrClosed", err)
	}
}

// WrapListener injects on accepted conns.
func TestWrapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Faults{Seed: 7, Drop: 1})
	fln := in.WrapListener(ln)
	defer fln.Close()
	go func() {
		c, err := fln.Accept()
		if err != nil {
			return
		}
		wire.WriteMsg(c, wire.TypePing, nil) // dropped
		c.Close()
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := wire.ReadMsg(c); err == nil {
		t.Fatal("frame survived a Drop=1 listener")
	}
	var _ io.Closer = fln
}
