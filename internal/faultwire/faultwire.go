// Package faultwire injects network faults into the cluster's wire
// layer for crash/partition testing: a net.Conn wrapper that can drop,
// delay, duplicate, or tear writes, and a dist.Transport wrapper that
// can stall or sever the round-exchange mesh. All faults draw from a
// seeded PRNG, so a failing test names a seed that replays the exact
// fault schedule.
//
// Faults act at the sender's Write granularity. internal/wire writes
// one frame per Write call, so:
//
//   - drop models a lost frame: the sender believes it was delivered,
//     the receiver never sees it and its read deadline must save it —
//     exactly the failure the coordinator's RPC timeouts exist for.
//   - duplicate models a retried delivery attempt arriving twice: the
//     receiver sees the same frame back to back and must deduplicate
//     (the worker's sequence-number suppression) or tolerate replay
//     (idempotent application).
//   - close-mid-frame models a crash mid-send: the receiver gets a
//     prefix of a frame and then EOF — the torn-tail case the WAL and
//     the frame reader both have to survive.
//   - delay models congestion; it reorders nothing (TCP keeps order)
//     but widens race windows and exercises deadlines.
package faultwire

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"maxminlp/internal/dist"
)

// Faults is a fault plan: per-write probabilities in [0,1] plus the
// PRNG seed that makes the schedule reproducible. The zero value
// injects nothing.
type Faults struct {
	Seed int64
	// Drop swallows a Write: success is reported, no bytes are sent.
	Drop float64
	// Delay sleeps a uniform duration in (0, MaxDelay] before a Write.
	Delay    float64
	MaxDelay time.Duration
	// Dup writes the payload twice — a duplicated delivery attempt.
	Dup float64
	// CloseMidFrame writes a strict prefix of the payload, then closes
	// the connection.
	CloseMidFrame float64
}

// Injector owns the PRNG and fault counters shared by every wrapped
// connection. Safe for concurrent use.
type Injector struct {
	mu  sync.Mutex
	f   Faults
	rng *rand.Rand

	drops, delays, dups, tears int
}

// NewInjector builds an injector following plan f.
func NewInjector(f Faults) *Injector {
	if f.MaxDelay <= 0 {
		f.MaxDelay = 5 * time.Millisecond
	}
	return &Injector{f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Stats reports how many faults of each kind have fired.
func (in *Injector) Stats() (drops, delays, dups, tears int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drops, in.delays, in.dups, in.tears
}

// Disable stops all future fault injection (the test's "heal the
// network" switch); wrapped connections become transparent.
func (in *Injector) Disable() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.f = Faults{MaxDelay: in.f.MaxDelay}
}

type action struct {
	kind  int // 0 none, 1 drop, 2 dup, 3 tear
	sleep time.Duration
	cut   int // tear: bytes of an n-byte payload to let through
}

const (
	actNone = iota
	actDrop
	actDup
	actTear
)

// next rolls the fault dice for one n-byte write. A single write
// suffers at most one discrete fault (plus an independent delay);
// discrete faults are checked in drop → dup → tear order.
func (in *Injector) next(n int) action {
	in.mu.Lock()
	defer in.mu.Unlock()
	var a action
	if in.f.Delay > 0 && in.rng.Float64() < in.f.Delay {
		in.delays++
		a.sleep = time.Duration(1 + in.rng.Int63n(int64(in.f.MaxDelay)))
	}
	switch {
	case in.f.Drop > 0 && in.rng.Float64() < in.f.Drop:
		in.drops++
		a.kind = actDrop
	case in.f.Dup > 0 && in.rng.Float64() < in.f.Dup:
		in.dups++
		a.kind = actDup
	case in.f.CloseMidFrame > 0 && n > 1 && in.rng.Float64() < in.f.CloseMidFrame:
		in.tears++
		a.kind = actTear
		a.cut = 1 + in.rng.Intn(n-1) // strict, non-empty prefix
	}
	return a
}

// Wrap returns c with the injector's fault plan applied to every
// Write. Reads pass through untouched: sender-side faults are observed
// by the peer's reader naturally.
func (in *Injector) Wrap(c net.Conn) net.Conn { return &conn{Conn: c, in: in} }

type conn struct {
	net.Conn
	in *Injector
}

func (c *conn) Write(p []byte) (int, error) {
	a := c.in.next(len(p))
	if a.sleep > 0 {
		time.Sleep(a.sleep)
	}
	switch a.kind {
	case actDrop:
		return len(p), nil
	case actDup:
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
		return c.Conn.Write(p)
	case actTear:
		if _, err := c.Conn.Write(p[:a.cut]); err != nil {
			return 0, err
		}
		c.Conn.Close()
		return a.cut, net.ErrClosed
	}
	return c.Conn.Write(p)
}

// WrapListener applies the injector to every connection a listener
// accepts, so a whole process's inbound wire can be made faulty
// without touching dial sites.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// WrapTransport applies the plan to a round-exchange transport: Drop
// severs the mesh mid-round (the transport closes and the Exchange
// returns an error, like a peer dying mid-exchange), Delay stalls the
// round. Dup and CloseMidFrame do not apply at this layer — Exchange
// is a barrier, not a byte stream.
func (in *Injector) WrapTransport(t dist.Transport) dist.Transport {
	return &transport{Transport: t, in: in}
}

type transport struct {
	dist.Transport
	in *Injector
}

func (t *transport) Exchange(out [][]byte) ([][]byte, error) {
	a := t.in.next(1)
	if a.sleep > 0 {
		time.Sleep(a.sleep)
	}
	if a.kind == actDrop {
		t.Transport.Close()
		return nil, net.ErrClosed
	}
	return t.Transport.Exchange(out)
}
