package hypergraph

// Girth returns the length of the shortest cycle in the graph, or -1 if
// the graph is acyclic. Parallel edges are not representable (adjacency is
// deduplicated), so the smallest reportable girth is 3.
//
// The implementation runs a BFS from every vertex and detects the first
// cross or back edge; cost O(V·E). This is the certifier used by the
// Section-4 construction, which needs a template graph Q with no cycle of
// fewer than 4r+2 edges.
func (g *Graph) Girth() int {
	best := -1
	n := g.NumVertices()
	dist := make([]int, n)
	parent := make([]int, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		parent[src] = -1
		queue := []int{src}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			// Cycles through src found at depth d have length ≥ 2d+1; once
			// that cannot beat best, stop expanding.
			if best >= 0 && 2*dist[v]+1 >= best {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if u == parent[v] {
					continue
				}
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					parent[u] = v
					queue = append(queue, u)
					continue
				}
				// Non-tree edge: cycle of length dist[v]+dist[u]+1. This may
				// overestimate the true shortest cycle through src when u and
				// v share tree ancestry, but the minimum over all sources is
				// exact for the graph girth.
				cyc := dist[v] + dist[u] + 1
				if best < 0 || cyc < best {
					best = cyc
				}
			}
		}
	}
	return best
}

// HasCycleShorterThan reports whether the graph contains a cycle of fewer
// than limit edges. It is equivalent to 0 ≤ Girth() < limit but can stop
// early.
func (g *Graph) HasCycleShorterThan(limit int) bool {
	girth := g.Girth()
	return girth >= 0 && girth < limit
}

// IsForest reports whether the graph is acyclic.
func (g *Graph) IsForest() bool { return g.Girth() < 0 }
