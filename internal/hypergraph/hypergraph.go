// Package hypergraph implements the communication structure of a max-min
// LP: the hypergraph H = (V, E) whose vertices are the agents and whose
// hyperedges are the resource supports Vi and the party supports Vk
// (Section 1.4 of the paper). It provides shortest-path distances, balls
// B_H(v, r), the relative-growth measure γ(r) from Theorem 3, and
// canonical radius-r local views.
//
// The graph is stored as an immutable CSR (compressed-sparse-row) index:
// one flat offset array and one flat neighbour array, with every
// neighbour segment sorted ascending. All traversals run over these flat
// arrays with pooled scratch state, so the hot paths of internal/core and
// internal/dist do no map allocation per query.
package hypergraph

import (
	"slices"
	"sort"
	"sync"

	"maxminlp/internal/mmlp"
)

// Graph is the communication hypergraph of a max-min LP, stored as a
// flattened union-of-cliques adjacency structure over the agents: CSR
// offset/neighbour arrays ([]int32), plus an []int mirror of the
// neighbour array backing the legacy Neighbors API.
type Graph struct {
	off    []int32 // len n+1; neighbour segment of v is nbr[off[v]:off[v+1]]
	nbr    []int32 // flat neighbour array, each segment sorted, deduplicated
	nbrInt []int   // same content as nbr, for the []int-returning API

	// csr is the incidence index of the instance the graph was built from;
	// nil for graphs built with FromAdjacency.
	csr *CSR

	// collabOblivious records that the graph was built without the party
	// hyperedges (Options.CollaborationOblivious), so topology patches
	// re-derive adjacency the same way.
	collabOblivious bool

	// scratch pools per-traversal BFS state so concurrent queries (the
	// parallel engines call Ball from many goroutines) allocate only on
	// first use per P.
	scratch sync.Pool
}

// Options configures FromInstance.
type Options struct {
	// CollaborationOblivious drops the party hyperedges Vk, keeping only
	// the resource hyperedges Vi. This is the restricted variant the paper
	// uses when comparing against prior work on packing LPs (§1.4).
	CollaborationOblivious bool
}

// FromInstance builds the communication hypergraph of an instance: two
// agents are adjacent iff they share a resource, or (unless
// CollaborationOblivious) benefit a common party. The returned graph
// carries the instance's CSR incidence index (see Graph.CSR).
func FromInstance(in *mmlp.Instance, opt Options) *Graph {
	csr := NewCSR(in)
	n := csr.NumAgents()
	g := &Graph{csr: csr, collabOblivious: opt.CollaborationOblivious}

	// Union-of-cliques adjacency over the flat incidence arrays: for each
	// agent, walk the supports of its rows, deduplicating with a stamp
	// array instead of per-vertex maps. Segments are appended in agent
	// order, so offsets come out ascending in one pass.
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	g.off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		addRow := func(members []int32) {
			for _, u := range members {
				if int(u) != v && stamp[u] != int32(v) {
					stamp[u] = int32(v)
					g.nbr = append(g.nbr, u)
				}
			}
		}
		for _, i := range csr.AgentResources(v) {
			addRow(csr.ResourceAgents(int(i)))
		}
		if !opt.CollaborationOblivious {
			for _, k := range csr.AgentParties(v) {
				addRow(csr.PartyAgents(int(k)))
			}
		}
		g.off[v+1] = int32(len(g.nbr))
	}
	g.finish()
	return g
}

// FromAdjacency builds a Graph directly from neighbour lists (useful for
// plain graphs in tests and for the template graph Q). The input lists are
// copied, sorted and deduplicated; self-loops are dropped. Graphs built
// this way have no CSR incidence index (CSR returns nil).
func FromAdjacency(adj [][]int) *Graph {
	n := len(adj)
	g := &Graph{off: make([]int32, n+1)}
	for v, ns := range adj {
		seg := make([]int, 0, len(ns))
		for _, u := range ns {
			if u != v {
				seg = append(seg, u)
			}
		}
		seg = dedupSorted(seg)
		for _, u := range seg {
			g.nbr = append(g.nbr, int32(u))
		}
		g.off[v+1] = int32(len(g.nbr))
	}
	g.finish()
	return g
}

// finish sorts each neighbour segment and materialises the []int mirror.
func (g *Graph) finish() {
	for v := 0; v+1 < len(g.off); v++ {
		slices.Sort(g.nbr[g.off[v]:g.off[v+1]])
	}
	g.nbrInt = make([]int, len(g.nbr))
	for i, u := range g.nbr {
		g.nbrInt[i] = int(u)
	}
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	sort.Ints(xs)
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// CSR returns the incidence index of the instance the graph was built
// from, or nil for graphs built with FromAdjacency.
func (g *Graph) CSR() *CSR { return g.csr }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.off) - 1 }

// Neighbors returns the sorted neighbour list of v. The slice is shared;
// callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.nbrInt[g.off[v]:g.off[v+1]] }

// neighbors32 is the []int32 view of the same segment, used by the flat
// traversals.
func (g *Graph) neighbors32(v int32) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// Degree returns the number of distinct neighbours of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// bfsScratch is the reusable state of one bounded BFS: a dense distance
// array (−1 = unvisited) and the visit queue. After a traversal, only the
// entries named by the queue are dirty, so reset cost is proportional to
// the ball, not to the graph.
type bfsScratch struct {
	dist  []int32
	queue []int32
}

func (g *Graph) getScratch() *bfsScratch {
	if s, ok := g.scratch.Get().(*bfsScratch); ok {
		return s
	}
	s := &bfsScratch{dist: make([]int32, g.NumVertices())}
	for i := range s.dist {
		s.dist[i] = -1
	}
	return s
}

func (g *Graph) putScratch(s *bfsScratch) {
	for _, v := range s.queue {
		s.dist[v] = -1
	}
	s.queue = s.queue[:0]
	g.scratch.Put(s)
}

// bfs runs a breadth-first search from v truncated at depth r (r < 0
// means unbounded), leaving the visited vertices in s.queue in visit
// order and their distances in s.dist.
func (s *bfsScratch) bfs(g *Graph, v int32, r int32) {
	s.dist[v] = 0
	s.queue = append(s.queue, v)
	for head := 0; head < len(s.queue); head++ {
		cur := s.queue[head]
		d := s.dist[cur]
		if r >= 0 && d == r {
			continue
		}
		for _, u := range g.neighbors32(cur) {
			if s.dist[u] < 0 {
				s.dist[u] = d + 1
				s.queue = append(s.queue, u)
			}
		}
	}
}

// Ball returns B_H(v, r) = {u : d_H(u, v) ≤ r}, sorted ascending.
func (g *Graph) Ball(v, r int) []int {
	s := g.getScratch()
	s.bfs(g, int32(v), int32(r))
	ball := make([]int, len(s.queue))
	for i, u := range s.queue {
		ball[i] = int(u)
	}
	g.putScratch(s)
	sort.Ints(ball)
	return ball
}

// ball32 appends B_H(v, r) sorted ascending to dst and returns it; used
// by the BallIndex builder to fill one flat arena without per-ball
// allocation.
func (g *Graph) ball32(s *bfsScratch, v int32, r int32, dst []int32) []int32 {
	s.bfs(g, v, r)
	start := len(dst)
	dst = append(dst, s.queue...)
	slices.Sort(dst[start:])
	for _, u := range s.queue {
		s.dist[u] = -1
	}
	s.queue = s.queue[:0]
	return dst
}

// BallWithDist returns B_H(v, r) sorted ascending together with a parallel
// slice of distances from v.
func (g *Graph) BallWithDist(v, r int) (ball, dist []int) {
	s := g.getScratch()
	s.bfs(g, int32(v), int32(r))
	ball = make([]int, len(s.queue))
	for i, u := range s.queue {
		ball[i] = int(u)
	}
	sort.Ints(ball)
	dist = make([]int, len(ball))
	for j, u := range ball {
		dist[j] = int(s.dist[u])
	}
	g.putScratch(s)
	return ball, dist
}

// BallSizes returns |B_H(v, r)| for r = 0..maxR in one BFS pass.
func (g *Graph) BallSizes(v, maxR int) []int {
	sizes := make([]int, maxR+1)
	s := g.getScratch()
	s.bfs(g, int32(v), int32(maxR))
	for _, u := range s.queue {
		sizes[s.dist[u]]++
	}
	g.putScratch(s)
	for r := 1; r <= maxR; r++ {
		sizes[r] += sizes[r-1]
	}
	return sizes
}

// Dist returns the shortest-path distance d_H(u, v), or -1 if v is not
// reachable from u.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	s := g.getScratch()
	defer g.putScratch(s)
	s.dist[u] = 0
	s.queue = append(s.queue, int32(u))
	for head := 0; head < len(s.queue); head++ {
		cur := s.queue[head]
		for _, w := range g.neighbors32(cur) {
			if int(w) == v {
				return int(s.dist[cur]) + 1
			}
			if s.dist[w] < 0 {
				s.dist[w] = s.dist[cur] + 1
				s.queue = append(s.queue, w)
			}
		}
	}
	return -1
}

// DistancesFrom returns d_H(v, u) for every u, with -1 for unreachable
// vertices.
func (g *Graph) DistancesFrom(v int) []int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := []int32{int32(v)}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, u := range g.neighbors32(cur) {
			if dist[u] < 0 {
				dist[u] = dist[cur] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Gamma computes the relative growth γ(r) = max_v |B(v, r+1)| / |B(v, r)|
// (Section 5 of the paper).
func (g *Graph) Gamma(r int) float64 {
	worst := 1.0
	for v := 0; v < g.NumVertices(); v++ {
		sizes := g.BallSizes(v, r+1)
		ratio := float64(sizes[r+1]) / float64(sizes[r])
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// GammaProfile computes γ(r) for r = 0..maxR in a single pass over the
// vertices.
func (g *Graph) GammaProfile(maxR int) []float64 {
	out := make([]float64, maxR+1)
	for r := range out {
		out[r] = 1
	}
	for v := 0; v < g.NumVertices(); v++ {
		sizes := g.BallSizes(v, maxR+1)
		for r := 0; r <= maxR; r++ {
			ratio := float64(sizes[r+1]) / float64(sizes[r])
			if ratio > out[r] {
				out[r] = ratio
			}
		}
	}
	return out
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest vertex.
func (g *Graph) Components() [][]int {
	n := g.NumVertices()
	seen := make([]bool, n)
	var comps [][]int
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		comp := []int{v}
		seen[v] = true
		for head := 0; head < len(comp); head++ {
			for _, u := range g.Neighbors(comp[head]) {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.NumVertices(); v++ {
		d = max(d, g.Degree(v))
	}
	return d
}

// Diameter returns the largest finite eccentricity, or -1 for the empty
// graph. Disconnected pairs are ignored.
func (g *Graph) Diameter() int {
	if g.NumVertices() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, d := range g.DistancesFrom(v) {
			diam = max(diam, d)
		}
	}
	return diam
}

// NumEdges returns the number of undirected edges. It assumes a
// symmetric adjacency structure — always true for FromInstance graphs;
// FromAdjacency callers must pass symmetric neighbour lists for the
// count to be meaningful.
func (g *Graph) NumEdges() int { return len(g.nbr) / 2 }
