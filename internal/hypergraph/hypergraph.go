// Package hypergraph implements the communication structure of a max-min
// LP: the hypergraph H = (V, E) whose vertices are the agents and whose
// hyperedges are the resource supports Vi and the party supports Vk
// (Section 1.4 of the paper). It provides shortest-path distances, balls
// B_H(v, r), the relative-growth measure γ(r) from Theorem 3, and
// canonical radius-r local views.
package hypergraph

import (
	"sort"

	"maxminlp/internal/mmlp"
)

// Graph is the communication hypergraph of a max-min LP, stored as a
// flattened union-of-cliques adjacency structure over the agents.
type Graph struct {
	adj [][]int // sorted, deduplicated neighbour lists
}

// Options configures FromInstance.
type Options struct {
	// CollaborationOblivious drops the party hyperedges Vk, keeping only
	// the resource hyperedges Vi. This is the restricted variant the paper
	// uses when comparing against prior work on packing LPs (§1.4).
	CollaborationOblivious bool
}

// FromInstance builds the communication hypergraph of an instance: two
// agents are adjacent iff they share a resource, or (unless
// CollaborationOblivious) benefit a common party.
func FromInstance(in *mmlp.Instance, opt Options) *Graph {
	n := in.NumAgents()
	adj := make([][]int, n)
	addClique := func(row []mmlp.Entry) {
		for _, e := range row {
			for _, f := range row {
				if e.Agent != f.Agent {
					adj[e.Agent] = append(adj[e.Agent], f.Agent)
				}
			}
		}
	}
	for i := 0; i < in.NumResources(); i++ {
		addClique(in.Resource(i))
	}
	if !opt.CollaborationOblivious {
		for k := 0; k < in.NumParties(); k++ {
			addClique(in.Party(k))
		}
	}
	for v := range adj {
		adj[v] = dedupSorted(adj[v])
	}
	return &Graph{adj: adj}
}

// FromAdjacency builds a Graph directly from neighbour lists (useful for
// plain graphs in tests and for the template graph Q). The input lists are
// copied, sorted and deduplicated; self-loops are dropped.
func FromAdjacency(adj [][]int) *Graph {
	out := make([][]int, len(adj))
	for v, ns := range adj {
		cp := make([]int, 0, len(ns))
		for _, u := range ns {
			if u != v {
				cp = append(cp, u)
			}
		}
		out[v] = dedupSorted(cp)
	}
	return &Graph{adj: out}
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	sort.Ints(xs)
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.adj) }

// Neighbors returns the sorted neighbour list of v. The slice is shared;
// callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the number of distinct neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Ball returns B_H(v, r) = {u : d_H(u, v) ≤ r}, sorted ascending.
func (g *Graph) Ball(v, r int) []int {
	ball, _ := g.BallWithDist(v, r)
	return ball
}

// BallWithDist returns B_H(v, r) sorted ascending together with a parallel
// slice of distances from v.
func (g *Graph) BallWithDist(v, r int) (ball, dist []int) {
	type qe struct{ node, d int }
	seen := map[int]int{v: 0}
	queue := []qe{{v, 0}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur.d == r {
			continue
		}
		for _, u := range g.adj[cur.node] {
			if _, ok := seen[u]; !ok {
				seen[u] = cur.d + 1
				queue = append(queue, qe{u, cur.d + 1})
			}
		}
	}
	ball = make([]int, 0, len(seen))
	for u := range seen {
		ball = append(ball, u)
	}
	sort.Ints(ball)
	dist = make([]int, len(ball))
	for j, u := range ball {
		dist[j] = seen[u]
	}
	return ball, dist
}

// BallSizes returns |B_H(v, r)| for r = 0..maxR in one BFS pass.
func (g *Graph) BallSizes(v, maxR int) []int {
	sizes := make([]int, maxR+1)
	type qe struct{ node, d int }
	seen := map[int]bool{v: true}
	queue := []qe{{v, 0}}
	sizes[0] = 1
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur.d == maxR {
			continue
		}
		for _, u := range g.adj[cur.node] {
			if !seen[u] {
				seen[u] = true
				sizes[cur.d+1]++
				queue = append(queue, qe{u, cur.d + 1})
			}
		}
	}
	for r := 1; r <= maxR; r++ {
		sizes[r] += sizes[r-1]
	}
	return sizes
}

// Dist returns the shortest-path distance d_H(u, v), or -1 if v is not
// reachable from u.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	type qe struct{ node, d int }
	seen := map[int]bool{u: true}
	queue := []qe{{u, 0}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, w := range g.adj[cur.node] {
			if w == v {
				return cur.d + 1
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, qe{w, cur.d + 1})
			}
		}
	}
	return -1
}

// DistancesFrom returns d_H(v, u) for every u, with -1 for unreachable
// vertices.
func (g *Graph) DistancesFrom(v int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := []int{v}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, u := range g.adj[cur] {
			if dist[u] < 0 {
				dist[u] = dist[cur] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Gamma computes the relative growth γ(r) = max_v |B(v, r+1)| / |B(v, r)|
// (Section 5 of the paper).
func (g *Graph) Gamma(r int) float64 {
	worst := 1.0
	for v := range g.adj {
		sizes := g.BallSizes(v, r+1)
		ratio := float64(sizes[r+1]) / float64(sizes[r])
		if ratio > worst {
			worst = ratio
		}
	}
	return worst
}

// GammaProfile computes γ(r) for r = 0..maxR in a single pass over the
// vertices.
func (g *Graph) GammaProfile(maxR int) []float64 {
	out := make([]float64, maxR+1)
	for r := range out {
		out[r] = 1
	}
	for v := range g.adj {
		sizes := g.BallSizes(v, maxR+1)
		for r := 0; r <= maxR; r++ {
			ratio := float64(sizes[r+1]) / float64(sizes[r])
			if ratio > out[r] {
				out[r] = ratio
			}
		}
	}
	return out
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	for v := range g.adj {
		if seen[v] {
			continue
		}
		comp := []int{v}
		seen[v] = true
		for head := 0; head < len(comp); head++ {
			for _, u := range g.adj[comp[head]] {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := range g.adj {
		d = max(d, len(g.adj[v]))
	}
	return d
}

// Diameter returns the largest finite eccentricity, or -1 for the empty
// graph. Disconnected pairs are ignored.
func (g *Graph) Diameter() int {
	if len(g.adj) == 0 {
		return -1
	}
	diam := 0
	for v := range g.adj {
		for _, d := range g.DistancesFrom(v) {
			diam = max(diam, d)
		}
	}
	return diam
}
