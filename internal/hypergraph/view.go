package hypergraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"maxminlp/internal/mmlp"
)

// IDMap translates the dense indices of an instance into stable external
// identifiers when serializing local views. This lets a view extracted
// from a sub-instance (such as S' in Section 4.3, which renumbers its
// agents and constraints) be compared against a view extracted from the
// parent instance S: the proof of Theorem 1 requires the radius-r views
// in S and S' to be *identical*, including identifiers.
type IDMap struct {
	Agent    func(v int) string
	Resource func(i int) string
	Party    func(k int) string
}

// IdentityIDs is the IDMap that names everything by its dense index.
func IdentityIDs() IDMap {
	return IDMap{
		Agent:    func(v int) string { return fmt.Sprintf("v%d", v) },
		Resource: func(i int) string { return fmt.Sprintf("i%d", i) },
		Party:    func(k int) string { return fmt.Sprintf("k%d", k) },
	}
}

// RestrictionIDs is the IDMap that names the elements of a sub-instance by
// their indices in the parent instance.
func RestrictionIDs(r *mmlp.Restriction) IDMap {
	return IDMap{
		Agent:    func(v int) string { return fmt.Sprintf("v%d", r.Agents[v]) },
		Resource: func(i int) string { return fmt.Sprintf("i%d", r.Resources[i]) },
		Party:    func(k int) string { return fmt.Sprintf("k%d", r.Parties[k]) },
	}
}

// View serializes the radius-r local view of agent v canonically: for
// every agent u ∈ B_H(v, r) (in order of identifier) the serialization
// lists u's resource incidences (i, a_iu) and party incidences (k, c_ku),
// both sorted by identifier. This is exactly the information available to
// agent v after r communication rounds in the model of Section 1.5: the
// identities of nearby agents, with whom they compete on which resources
// and with whom they collaborate for which parties, and the coefficients.
//
// Two agents with equal View strings are indistinguishable to any
// deterministic local algorithm with horizon r.
func View(in *mmlp.Instance, g *Graph, v, r int, ids IDMap) string {
	ball := g.Ball(v, r)
	type agentLine struct {
		id   string
		text string
	}
	lines := make([]agentLine, 0, len(ball))
	for _, u := range ball {
		var sb strings.Builder
		res := make([]string, 0, len(in.AgentResources(u)))
		for _, i := range in.AgentResources(u) {
			res = append(res, fmt.Sprintf("%s=%.17g", ids.Resource(i), in.A(i, u)))
		}
		sort.Strings(res)
		par := make([]string, 0, len(in.AgentParties(u)))
		for _, k := range in.AgentParties(u) {
			par = append(par, fmt.Sprintf("%s=%.17g", ids.Party(k), in.C(k, u)))
		}
		sort.Strings(par)
		fmt.Fprintf(&sb, "agent %s R[%s] P[%s]", ids.Agent(u), strings.Join(res, ","), strings.Join(par, ","))
		lines = append(lines, agentLine{id: ids.Agent(u), text: sb.String()})
	}
	sort.Slice(lines, func(a, b int) bool { return lines[a].id < lines[b].id })
	var sb strings.Builder
	fmt.Fprintf(&sb, "view center=%s r=%d\n", ids.Agent(v), r)
	for _, l := range lines {
		sb.WriteString(l.text)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ViewHash returns a short stable digest of View, convenient for
// comparing many views.
func ViewHash(in *mmlp.Instance, g *Graph, v, r int, ids IDMap) string {
	sum := sha256.Sum256([]byte(View(in, g, v, r, ids)))
	return hex.EncodeToString(sum[:8])
}
