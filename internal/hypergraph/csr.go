package hypergraph

import (
	"fmt"
	"slices"

	"maxminlp/internal/mmlp"
)

// CSR is the immutable compressed-sparse-row index of an instance's
// incidence structure: flat []int32 offset/value arrays for the four
// incidence relations agent→resource (Iv), agent→party (Kv),
// resource→agent (Vi) and party→agent (Vk), each paired with the
// corresponding coefficients. Every per-row segment is sorted ascending,
// matching the sorted rows of mmlp.Instance entry-for-entry, so
// algorithms may switch between the two representations without changing
// any iteration order (and hence without changing any floating-point
// result).
//
// The index is built once per graph and never mutated; all accessors
// return subslices of the backing arrays that callers must not modify.
// The flat layout keeps each row contiguous in memory — one cache line
// typically covers a whole support — which is what the solver-facing hot
// loops in internal/core and internal/dist iterate.
type CSR struct {
	numAgents    int
	numResources int
	numParties   int

	// Iv: agentRes[agentResOff[v]:agentResOff[v+1]] lists the resources of
	// agent v; agentResCoeff holds the matching a_iv.
	agentResOff   []int32
	agentRes      []int32
	agentResCoeff []float64

	// Kv: the parties of agent v with the matching c_kv.
	agentParOff   []int32
	agentPar      []int32
	agentParCoeff []float64

	// Vi: the agents of resource i with the matching a_iv.
	resOff   []int32
	resAgent []int32
	resCoeff []float64

	// Vk: the agents of party k with the matching c_kv.
	parOff   []int32
	parAgent []int32
	parCoeff []float64
}

// NewCSR builds the CSR index of an instance. The instance rows are
// already sorted by agent, so each segment is filled in one linear pass.
func NewCSR(in *mmlp.Instance) *CSR {
	c := &CSR{
		numAgents:    in.NumAgents(),
		numResources: in.NumResources(),
		numParties:   in.NumParties(),
	}
	c.resOff, c.resAgent, c.resCoeff = flattenRows(in.NumResources(), in.Resource)
	c.parOff, c.parAgent, c.parCoeff = flattenRows(in.NumParties(), in.Party)

	c.agentResOff, c.agentRes, c.agentResCoeff = flattenIncidence(
		in.NumAgents(), in.AgentResources, in.A)
	c.agentParOff, c.agentPar, c.agentParCoeff = flattenIncidence(
		in.NumAgents(), in.AgentParties, in.C)
	return c
}

// flattenRows concatenates constraint rows into offset/agent/coeff arrays.
func flattenRows(n int, row func(int) []mmlp.Entry) (off, agents []int32, coeffs []float64) {
	off = make([]int32, n+1)
	total := 0
	for i := 0; i < n; i++ {
		total += len(row(i))
		off[i+1] = int32(total)
	}
	agents = make([]int32, total)
	coeffs = make([]float64, total)
	w := 0
	for i := 0; i < n; i++ {
		for _, e := range row(i) {
			agents[w] = int32(e.Agent)
			coeffs[w] = e.Coeff
			w++
		}
	}
	return off, agents, coeffs
}

// flattenIncidence concatenates per-agent constraint lists (Iv or Kv)
// with the matching coefficient looked up from the instance.
func flattenIncidence(n int, ids func(int) []int, coeff func(row, v int) float64) (off, out []int32, coeffs []float64) {
	off = make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(ids(v))
		off[v+1] = int32(total)
	}
	out = make([]int32, total)
	coeffs = make([]float64, total)
	w := 0
	for v := 0; v < n; v++ {
		for _, id := range ids(v) {
			out[w] = int32(id)
			coeffs[w] = coeff(id, v)
			w++
		}
	}
	return off, out, coeffs
}

// NumAgents returns |V|.
func (c *CSR) NumAgents() int { return c.numAgents }

// NumResources returns |I|.
func (c *CSR) NumResources() int { return c.numResources }

// NumParties returns |K|.
func (c *CSR) NumParties() int { return c.numParties }

// AgentResources returns Iv, ascending. The slice is shared; callers must
// not modify it.
func (c *CSR) AgentResources(v int) []int32 {
	return c.agentRes[c.agentResOff[v]:c.agentResOff[v+1]]
}

// AgentResourceCoeffs returns a_iv for i ∈ Iv, parallel to AgentResources.
func (c *CSR) AgentResourceCoeffs(v int) []float64 {
	return c.agentResCoeff[c.agentResOff[v]:c.agentResOff[v+1]]
}

// AgentParties returns Kv, ascending.
func (c *CSR) AgentParties(v int) []int32 {
	return c.agentPar[c.agentParOff[v]:c.agentParOff[v+1]]
}

// AgentPartyCoeffs returns c_kv for k ∈ Kv, parallel to AgentParties.
func (c *CSR) AgentPartyCoeffs(v int) []float64 {
	return c.agentParCoeff[c.agentParOff[v]:c.agentParOff[v+1]]
}

// ResourceAgents returns Vi, ascending.
func (c *CSR) ResourceAgents(i int) []int32 {
	return c.resAgent[c.resOff[i]:c.resOff[i+1]]
}

// ResourceCoeffs returns a_iv for v ∈ Vi, parallel to ResourceAgents.
func (c *CSR) ResourceCoeffs(i int) []float64 {
	return c.resCoeff[c.resOff[i]:c.resOff[i+1]]
}

// ResourceDegree returns |Vi|.
func (c *CSR) ResourceDegree(i int) int {
	return int(c.resOff[i+1] - c.resOff[i])
}

// PartyAgents returns Vk, ascending.
func (c *CSR) PartyAgents(k int) []int32 {
	return c.parAgent[c.parOff[k]:c.parOff[k+1]]
}

// PartyCoeffs returns c_kv for v ∈ Vk, parallel to PartyAgents.
func (c *CSR) PartyCoeffs(k int) []float64 {
	return c.parCoeff[c.parOff[k]:c.parOff[k+1]]
}

// CloneCoeffs returns a CSR sharing every topology array (offsets and
// id/agent arrays) with c but owning fresh copies of the four
// coefficient arrays. It is the copy-on-write step of a Solver session's
// weight updates: the clone can be patched in place with
// SetResourceCoeff/SetPartyCoeff without the mutation being observable
// through the original (which other holders of the Graph may still
// read), while ball indexes and adjacency built from the original remain
// valid for the clone — weight updates never change the topology.
func (c *CSR) CloneCoeffs() *CSR {
	out := *c
	out.agentResCoeff = slices.Clone(c.agentResCoeff)
	out.agentParCoeff = slices.Clone(c.agentParCoeff)
	out.resCoeff = slices.Clone(c.resCoeff)
	out.parCoeff = slices.Clone(c.parCoeff)
	return &out
}

// SetResourceCoeff sets a_iv on both sides of the incidence (the
// resource row and the agent's Iv list). The entry must already exist:
// weight updates may change coefficients, never supports. Callers must
// own the coefficient arrays (see CloneCoeffs).
func (c *CSR) SetResourceCoeff(i, v int, coeff float64) error {
	p, ok := slices.BinarySearch(c.ResourceAgents(i), int32(v))
	if !ok {
		return fmt.Errorf("hypergraph: agent %d is not in the support of resource %d", v, i)
	}
	c.resCoeff[int(c.resOff[i])+p] = coeff
	q, ok := slices.BinarySearch(c.AgentResources(v), int32(i))
	if !ok {
		return fmt.Errorf("hypergraph: resource %d missing from agent %d incidence", i, v)
	}
	c.agentResCoeff[int(c.agentResOff[v])+q] = coeff
	return nil
}

// SetPartyCoeff sets c_kv on both sides of the incidence (the party row
// and the agent's Kv list). The entry must already exist.
func (c *CSR) SetPartyCoeff(k, v int, coeff float64) error {
	p, ok := slices.BinarySearch(c.PartyAgents(k), int32(v))
	if !ok {
		return fmt.Errorf("hypergraph: agent %d is not in the support of party %d", v, k)
	}
	c.parCoeff[int(c.parOff[k])+p] = coeff
	q, ok := slices.BinarySearch(c.AgentParties(v), int32(k))
	if !ok {
		return fmt.Errorf("hypergraph: party %d missing from agent %d incidence", k, v)
	}
	c.agentParCoeff[int(c.agentParOff[v])+q] = coeff
	return nil
}

// Nonzeros returns the total number of stored coefficients in A and C.
func (c *CSR) Nonzeros() int { return len(c.resAgent) + len(c.parAgent) }

// MemoryBytes estimates the resident size of the index — the flat arrays
// only, ignoring the fixed-size header.
func (c *CSR) MemoryBytes() int {
	ints := len(c.agentResOff) + len(c.agentRes) + len(c.agentParOff) + len(c.agentPar) +
		len(c.resOff) + len(c.resAgent) + len(c.parOff) + len(c.parAgent)
	floats := len(c.agentResCoeff) + len(c.agentParCoeff) + len(c.resCoeff) + len(c.parCoeff)
	return 4*ints + 8*floats
}
