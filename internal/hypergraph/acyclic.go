package hypergraph

import "maxminlp/internal/mmlp"

// BergeAcyclic reports whether the hypergraph of an instance (hyperedges =
// resource and party supports) is Berge-acyclic, i.e. its bipartite
// vertex–hyperedge incidence graph is a forest. This is the "no cycles in
// the hypergraph" notion of Section 4.4 of the paper: a Berge cycle
// alternates distinct vertices and distinct hyperedges; triangles inside a
// single hyperedge's clique do not count.
//
// Berge-acyclicity implies that between any two agents there is at most
// one path of hyperedges, which is what the parity argument of Section 4.5
// needs.
func BergeAcyclic(in *mmlp.Instance) bool {
	n := in.NumAgents()
	total := n + in.NumResources() + in.NumParties()
	uf := newUnionFind(total)
	for i := 0; i < in.NumResources(); i++ {
		node := n + i
		for _, e := range in.Resource(i) {
			if !uf.union(node, e.Agent) {
				return false
			}
		}
	}
	for k := 0; k < in.NumParties(); k++ {
		node := n + in.NumResources() + k
		for _, e := range in.Party(k) {
			if !uf.union(node, e.Agent) {
				return false
			}
		}
	}
	return true
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b and reports whether they were distinct
// (false indicates the new edge closes a cycle).
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}
