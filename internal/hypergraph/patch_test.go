package hypergraph_test

import (
	"math/rand"
	"slices"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

func sameCSR(t *testing.T, label string, got, want *hypergraph.CSR) {
	t.Helper()
	if got.NumAgents() != want.NumAgents() || got.NumResources() != want.NumResources() || got.NumParties() != want.NumParties() {
		t.Fatalf("%s: sizes (%d,%d,%d) != (%d,%d,%d)", label,
			got.NumAgents(), got.NumResources(), got.NumParties(),
			want.NumAgents(), want.NumResources(), want.NumParties())
	}
	for i := 0; i < want.NumResources(); i++ {
		if !slices.Equal(got.ResourceAgents(i), want.ResourceAgents(i)) ||
			!slices.Equal(got.ResourceCoeffs(i), want.ResourceCoeffs(i)) {
			t.Fatalf("%s: resource %d row diverged", label, i)
		}
	}
	for k := 0; k < want.NumParties(); k++ {
		if !slices.Equal(got.PartyAgents(k), want.PartyAgents(k)) ||
			!slices.Equal(got.PartyCoeffs(k), want.PartyCoeffs(k)) {
			t.Fatalf("%s: party %d row diverged", label, k)
		}
	}
	for v := 0; v < want.NumAgents(); v++ {
		if !slices.Equal(got.AgentResources(v), want.AgentResources(v)) ||
			!slices.Equal(got.AgentResourceCoeffs(v), want.AgentResourceCoeffs(v)) ||
			!slices.Equal(got.AgentParties(v), want.AgentParties(v)) ||
			!slices.Equal(got.AgentPartyCoeffs(v), want.AgentPartyCoeffs(v)) {
			t.Fatalf("%s: agent %d incidence diverged", label, v)
		}
	}
}

func sameGraph(t *testing.T, label string, got, want *hypergraph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: %d vertices, want %d", label, got.NumVertices(), want.NumVertices())
	}
	for v := 0; v < want.NumVertices(); v++ {
		if !slices.Equal(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("%s: neighbours of %d = %v, want %v", label, v, got.Neighbors(v), want.Neighbors(v))
		}
	}
}

func sameBallIndex(t *testing.T, label string, got, want *hypergraph.BallIndex) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.Radius() != want.Radius() {
		t.Fatalf("%s: shape (%d,R=%d) != (%d,R=%d)", label,
			got.NumVertices(), got.Radius(), want.NumVertices(), want.Radius())
	}
	for v := 0; v < want.NumVertices(); v++ {
		if !slices.Equal(got.Ball(v), want.Ball(v)) {
			t.Fatalf("%s: ball of %d = %v, want %v", label, v, got.Ball(v), want.Ball(v))
		}
	}
}

// TestPatchTopoMatchesCold drives random churn sequences through the
// patching layer and asserts, after every batch, that the patched CSR,
// graph and ball indexes are element-for-element identical to cold
// builds over the mutated instance — the invariant the incremental
// solver session rests on.
func TestPatchTopoMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tor, _ := gen.Torus([]int{6, 6}, gen.LatticeOptions{RandomWeights: true, Rng: rng})
	rnd := gen.Random(gen.RandomOptions{Agents: 40, Resources: 30, Parties: 18, MaxVI: 3, MaxVK: 3}, rng)
	disk, _ := gen.UnitDisk(gen.UnitDiskOptions{Nodes: 45, Radius: 0.2, MaxNeighbors: 4}, rng)
	cases := []struct {
		name   string
		in     *mmlp.Instance
		opt    hypergraph.Options
		radii  []int
		rounds int
	}{
		{"torus 6x6", tor, hypergraph.Options{}, []int{1, 2}, 5},
		{"random n=40", rnd, hypergraph.Options{}, []int{1, 2}, 5},
		{"unit-disk n=45", disk, hypergraph.Options{}, []int{1}, 4},
		{"torus 6x6 collab-oblivious", tor, hypergraph.Options{CollaborationOblivious: true}, []int{1}, 3},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			cur := cse.in
			g := hypergraph.FromInstance(cur, cse.opt)
			csr := g.CSR()
			bis := make(map[int]*hypergraph.BallIndex)
			for _, r := range cse.radii {
				bis[r] = g.BallIndex(r, 1)
			}
			for round := 0; round < cse.rounds; round++ {
				ops, _ := gen.RandomTopoBatch(cur, rng, 1+rng.Intn(5))
				next, d, err := cur.ApplyTopo(ops)
				if err != nil {
					t.Fatal(err)
				}
				csr = csr.PatchTopo(next, d)
				sameCSR(t, "csr", csr, hypergraph.NewCSR(next))

				g = g.PatchTopo(csr, d.Touched)
				coldG := hypergraph.FromInstance(next, cse.opt)
				sameGraph(t, "graph", g, coldG)

				for _, r := range cse.radii {
					nbi, dirty, affected := bis[r].PatchTopo(g, d.Touched)
					sameBallIndex(t, "balls", nbi, g.BallIndex(r, 1))
					// dirty must cover every vertex whose ball changed, and
					// affected every member of a dirty vertex's ball.
					for v := 0; v < nbi.NumVertices(); v++ {
						changed := v >= bis[r].NumVertices() || !slices.Equal(nbi.Ball(v), bis[r].Ball(v))
						if _, isDirty := slices.BinarySearch(dirty, int32(v)); changed && !isDirty {
							t.Fatalf("R=%d: ball of %d changed but %d not dirty", r, v, v)
						}
					}
					for _, v := range dirty {
						if _, ok := slices.BinarySearch(affected, v); !ok {
							t.Fatalf("R=%d: dirty %d missing from affected", r, v)
						}
						for _, u := range nbi.Ball(int(v)) {
							if _, ok := slices.BinarySearch(affected, u); !ok {
								t.Fatalf("R=%d: member %d of dirty ball %d missing from affected", r, u, v)
							}
						}
					}
					bis[r] = nbi
				}
				cur = next
			}
		})
	}
}

// TestPatchTopoDetachAndGrow pins the two index-space edge cases: a
// detached agent becomes an isolated vertex with ball {v}, and an added
// agent extends every structure by one slot.
func TestPatchTopoDetachAndGrow(t *testing.T) {
	in, _ := gen.Torus([]int{4, 4}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	bi := g.BallIndex(1, 1)

	next, d, err := in.ApplyTopo([]mmlp.TopoUpdate{
		mmlp.RemoveAgent(5),
		mmlp.AddAgent(),
		mmlp.AddResourceEdge(0, 16, 2.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	csr := g.CSR().PatchTopo(next, d)
	ng := g.PatchTopo(csr, d.Touched)
	nbi, dirty, _ := bi.PatchTopo(ng, d.Touched)

	if ng.NumVertices() != 17 || nbi.NumVertices() != 17 {
		t.Fatalf("grew to %d/%d vertices, want 17", ng.NumVertices(), nbi.NumVertices())
	}
	if got := ng.Neighbors(5); len(got) != 0 {
		t.Errorf("detached agent still has neighbours %v", got)
	}
	if got := nbi.Ball(5); len(got) != 1 || got[0] != 5 {
		t.Errorf("detached agent ball = %v, want {5}", got)
	}
	if len(ng.Neighbors(16)) == 0 {
		t.Error("added agent has no neighbours despite joining resource 0")
	}
	if _, ok := slices.BinarySearch(dirty, int32(16)); !ok {
		t.Error("added agent not dirty")
	}
	sameBallIndex(t, "detach+grow", nbi, ng.BallIndex(1, 1))
	sameGraph(t, "detach+grow", ng, hypergraph.FromInstance(next, hypergraph.Options{}))
	sameCSR(t, "detach+grow", csr, hypergraph.NewCSR(next))
}
