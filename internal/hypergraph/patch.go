package hypergraph

import (
	"slices"

	"maxminlp/internal/mmlp"
)

// This file is the structural-patching layer behind Solver.UpdateTopology:
// given a mutated instance and the mmlp.TopoDiff naming what changed, the
// CSR index, the communication graph and every retained ball index are
// patched by rebuilding only the affected rows — the "rebuild-of-affected-
// rows" strategy. Each patch allocates fresh flat arrays (bulk-copying the
// unchanged spans), so previously handed-out CSR/Graph/BallIndex values
// stay immutable snapshots of the pre-update topology: concurrent readers
// (distributed engines mid-run) are never mutated under.
//
// Every patched structure is element-for-element identical to a cold
// build over the mutated instance: the flat segments are canonical
// (sorted, deduplicated), so rebuilding a row from the new instance and
// copying an untouched row from the old arrays produce exactly the
// arrays NewCSR / FromInstance / Graph.BallIndex would. The patch tests
// assert this by deep comparison across randomised churn sequences.

// spliceRel rebuilds one CSR relation: rows named in changed (plus every
// row at or beyond the old row count — freshly created rows) are filled
// from the mutated instance via rowLen/fill, all other rows are copied
// from the old arrays.
func spliceRel(oldOff, oldIDs []int32, oldCo []float64, newRows int, changed []int,
	rowLen func(int) int, fill func(r int, ids []int32, co []float64)) (off, ids []int32, co []float64) {
	oldRows := len(oldOff) - 1
	ch := make([]bool, newRows)
	for _, r := range changed {
		if r >= 0 && r < newRows {
			ch[r] = true
		}
	}
	total := 0
	for r := 0; r < newRows; r++ {
		if ch[r] || r >= oldRows {
			total += rowLen(r)
		} else {
			total += int(oldOff[r+1] - oldOff[r])
		}
	}
	off = make([]int32, newRows+1)
	ids = make([]int32, total)
	co = make([]float64, total)
	w := 0
	for r := 0; r < newRows; r++ {
		if ch[r] || r >= oldRows {
			n := rowLen(r)
			fill(r, ids[w:w+n], co[w:w+n])
			w += n
		} else {
			lo, hi := oldOff[r], oldOff[r+1]
			copy(ids[w:], oldIDs[lo:hi])
			copy(co[w:], oldCo[lo:hi])
			w += int(hi - lo)
		}
		off[r+1] = int32(w)
	}
	return off, ids, co
}

// PatchTopo returns the CSR index of the mutated instance, rebuilding
// only the rows and incidence segments the diff names and copying every
// other span from c. All arrays of the result are freshly allocated and
// owned by the caller (SetResourceCoeff/SetPartyCoeff may patch them in
// place without CloneCoeffs).
func (c *CSR) PatchTopo(in *mmlp.Instance, d *mmlp.TopoDiff) *CSR {
	out := &CSR{
		numAgents:    in.NumAgents(),
		numResources: in.NumResources(),
		numParties:   in.NumParties(),
	}
	out.resOff, out.resAgent, out.resCoeff = spliceRel(
		c.resOff, c.resAgent, c.resCoeff, in.NumResources(), d.ResRows,
		func(i int) int { return len(in.Resource(i)) },
		func(i int, ids []int32, co []float64) {
			for j, e := range in.Resource(i) {
				ids[j], co[j] = int32(e.Agent), e.Coeff
			}
		})
	out.parOff, out.parAgent, out.parCoeff = spliceRel(
		c.parOff, c.parAgent, c.parCoeff, in.NumParties(), d.ParRows,
		func(k int) int { return len(in.Party(k)) },
		func(k int, ids []int32, co []float64) {
			for j, e := range in.Party(k) {
				ids[j], co[j] = int32(e.Agent), e.Coeff
			}
		})
	out.agentResOff, out.agentRes, out.agentResCoeff = spliceRel(
		c.agentResOff, c.agentRes, c.agentResCoeff, in.NumAgents(), d.IncAgents,
		func(v int) int { return len(in.AgentResources(v)) },
		func(v int, ids []int32, co []float64) {
			for j, i := range in.AgentResources(v) {
				ids[j], co[j] = int32(i), in.A(i, v)
			}
		})
	out.agentParOff, out.agentPar, out.agentParCoeff = spliceRel(
		c.agentParOff, c.agentPar, c.agentParCoeff, in.NumAgents(), d.IncAgents,
		func(v int) int { return len(in.AgentParties(v)) },
		func(v int, ids []int32, co []float64) {
			for j, k := range in.AgentParties(v) {
				ids[j], co[j] = int32(k), in.C(k, v)
			}
		})
	return out
}

// PatchTopo returns the communication hypergraph over the patched CSR
// index: the neighbour segments of the touched vertices (which must
// include every vertex whose adjacency could have changed, and every
// vertex at or beyond the old vertex count) are re-derived from the new
// incidence structure with the same union-of-cliques procedure as
// FromInstance; all other segments are copied. The receiver is left
// untouched; the result carries csr as its incidence index and inherits
// the receiver's collaboration-obliviousness.
func (g *Graph) PatchTopo(csr *CSR, touched []int) *Graph {
	n := csr.NumAgents()
	oldN := g.NumVertices()
	out := &Graph{csr: csr, collabOblivious: g.collabOblivious}
	ch := make([]bool, n)
	for _, v := range touched {
		if v >= 0 && v < n {
			ch[v] = true
		}
	}
	out.off = make([]int32, n+1)
	out.nbr = make([]int32, 0, len(g.nbr))
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for v := 0; v < n; v++ {
		if !ch[v] && v < oldN {
			out.nbr = append(out.nbr, g.nbr[g.off[v]:g.off[v+1]]...)
		} else {
			start := len(out.nbr)
			addRow := func(members []int32) {
				for _, u := range members {
					if int(u) != v && stamp[u] != int32(v) {
						stamp[u] = int32(v)
						out.nbr = append(out.nbr, u)
					}
				}
			}
			for _, i := range csr.AgentResources(v) {
				addRow(csr.ResourceAgents(int(i)))
			}
			if !g.collabOblivious {
				for _, k := range csr.AgentParties(v) {
					addRow(csr.PartyAgents(int(k)))
				}
			}
			slices.Sort(out.nbr[start:])
		}
		out.off[v+1] = int32(len(out.nbr))
	}
	out.nbrInt = make([]int, len(out.nbr))
	for i, u := range out.nbr {
		out.nbrInt[i] = int(u)
	}
	return out
}

// PatchTopo returns the radius-r ball index over the patched graph g,
// recomputing only the balls that can differ from the receiver's. The
// dirty set is ∪_t (B_old(t,r) ∪ B_new(t,r)) over the touched vertices
// t — every vertex whose ball contains a touched vertex in either
// topology, and therefore a superset of the vertices whose balls (or
// ball-restricted local LPs) changed; all other ball segments are copied
// from the receiver. It returns the new index, the sorted dirty set, and
// the sorted affected set ∪_{v∈dirty} (B_old(v,r) ∪ B_new(v,r)) — the
// vertices whose combined-solution sums a session must replay.
func (bi *BallIndex) PatchTopo(g *Graph, touched []int) (nbi *BallIndex, dirty, affected []int32) {
	n := g.NumVertices()
	oldN := bi.NumVertices()
	radius := bi.radius

	s := g.getScratch()
	defer g.putScratch(s)

	mark := make([]bool, n)
	var tmp []int32
	for _, t := range touched {
		if t < 0 || t >= n {
			continue
		}
		if t < oldN {
			for _, u := range bi.Ball(t) {
				if !mark[u] {
					mark[u] = true
					dirty = append(dirty, u)
				}
			}
		}
		tmp = g.ball32(s, int32(t), int32(radius), tmp[:0])
		for _, u := range tmp {
			if !mark[u] {
				mark[u] = true
				dirty = append(dirty, u)
			}
		}
	}
	slices.Sort(dirty)

	affMark := make([]bool, n)
	nbi = &BallIndex{radius: radius, off: make([]int32, n+1)}
	nbi.members = make([]int32, 0, len(bi.members)+len(dirty))
	for v := 0; v < n; v++ {
		if !mark[v] && v < oldN {
			nbi.members = append(nbi.members, bi.Ball(v)...)
		} else {
			if v < oldN {
				for _, u := range bi.Ball(v) {
					if !affMark[u] {
						affMark[u] = true
						affected = append(affected, u)
					}
				}
			}
			start := len(nbi.members)
			nbi.members = g.ball32(s, int32(v), int32(radius), nbi.members)
			for _, u := range nbi.members[start:] {
				if !affMark[u] {
					affMark[u] = true
					affected = append(affected, u)
				}
			}
		}
		nbi.off[v+1] = int32(len(nbi.members))
	}
	slices.Sort(affected)
	return nbi, dirty, affected
}
