package hypergraph

import (
	"slices"

	"maxminlp/internal/sched"
)

// BallIndex holds the radius-r balls of every vertex in one flat CSR
// arena: off[v]..off[v+1] delimits B_H(v, r) in members, sorted
// ascending. The index is computed once and shared read-only by all the
// engines, so the repeated per-agent ball extraction of the Theorem-3
// round loops costs one slice header instead of one BFS.
type BallIndex struct {
	radius  int
	off     []int32
	members []int32
}

// ballBuildGrain is the minimum number of vertices one parallel build
// task covers. A per-vertex BFS is far cheaper than a task dispatch, so
// below this grain the scheduling and per-shard arena overhead outweighs
// the parallelism (the old per-worker static split lost to sequential at
// small n for exactly that reason).
const ballBuildGrain = 256

// BallIndex computes the radius-r balls of all vertices with the given
// number of workers (≤ 1 means sequential). The vertex range is split
// into fixed-grain chunks executed by the work-stealing pool — BFS cost
// varies with local density, and stealing keeps workers busy when the
// expensive balls cluster; each chunk fills its own arena with a private
// BFS scratch, writes its ball sizes into the shared offset array, and
// the arenas are stitched in chunk order, so the result is identical for
// every worker count.
func (g *Graph) BallIndex(radius, workers int) *BallIndex {
	n := g.NumVertices()
	bi := &BallIndex{radius: radius, off: make([]int32, n+1)}
	if n == 0 {
		return bi
	}
	nChunks := (n + ballBuildGrain - 1) / ballBuildGrain
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		s := g.getScratch()
		for v := 0; v < n; v++ {
			bi.members = g.ball32(s, int32(v), int32(radius), bi.members)
			bi.off[v+1] = int32(len(bi.members))
		}
		g.putScratch(s)
		return bi
	}

	arenas := make([][]int32, nChunks)
	if err := sched.Run(nChunks, sched.Options{Workers: workers}, func(c int) error {
		lo := c * ballBuildGrain
		hi := min(lo+ballBuildGrain, n)
		s := g.getScratch()
		var arena []int32
		prev := 0
		for v := lo; v < hi; v++ {
			arena = g.ball32(s, int32(v), int32(radius), arena)
			bi.off[v+1] = int32(len(arena) - prev) // ball size; prefix-summed below
			prev = len(arena)
		}
		g.putScratch(s)
		arenas[c] = arena
		return nil
	}); err != nil {
		// The tasks never return errors, so this can only be a captured
		// panic out of the BFS — resurface it.
		panic(err)
	}

	total := 0
	for _, a := range arenas {
		total += len(a)
	}
	bi.members = make([]int32, 0, total)
	for _, a := range arenas {
		bi.members = append(bi.members, a...)
	}
	for v := 0; v < n; v++ {
		bi.off[v+1] += bi.off[v]
	}
	return bi
}

// Radius returns the radius the index was built for.
func (bi *BallIndex) Radius() int { return bi.radius }

// NumVertices returns the number of indexed vertices.
func (bi *BallIndex) NumVertices() int { return len(bi.off) - 1 }

// Ball returns B_H(v, r) sorted ascending. The slice aliases the shared
// arena; callers must not modify it.
func (bi *BallIndex) Ball(v int) []int32 {
	return bi.members[bi.off[v]:bi.off[v+1]]
}

// Size returns |B_H(v, r)|.
func (bi *BallIndex) Size(v int) int { return int(bi.off[v+1] - bi.off[v]) }

// Contains reports whether u ∈ B_H(v, r), by binary search in the sorted
// ball of v.
func (bi *BallIndex) Contains(v int, u int32) bool {
	_, ok := slices.BinarySearch(bi.Ball(v), u)
	return ok
}
