package hypergraph

import (
	"slices"
	"sync"
)

// BallIndex holds the radius-r balls of every vertex in one flat CSR
// arena: off[v]..off[v+1] delimits B_H(v, r) in members, sorted
// ascending. The index is computed once and shared read-only by all the
// engines, so the repeated per-agent ball extraction of the Theorem-3
// round loops costs one slice header instead of one BFS.
type BallIndex struct {
	radius  int
	off     []int32
	members []int32
}

// BallIndex computes the radius-r balls of all vertices with the given
// number of workers (≤ 1 means sequential). The vertex range is split
// into one contiguous shard per worker; each shard fills its own arena
// with a private BFS scratch and the arenas are stitched in shard order,
// so the result is identical for every worker count.
func (g *Graph) BallIndex(radius, workers int) *BallIndex {
	n := g.NumVertices()
	bi := &BallIndex{radius: radius, off: make([]int32, n+1)}
	if n == 0 {
		return bi
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := g.getScratch()
		for v := 0; v < n; v++ {
			bi.members = g.ball32(s, int32(v), int32(radius), bi.members)
			bi.off[v+1] = int32(len(bi.members))
		}
		g.putScratch(s)
		return bi
	}

	arenas := make([][]int32, workers)
	offs := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardRange(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := g.getScratch()
			var arena []int32
			off := make([]int32, 0, hi-lo)
			for v := lo; v < hi; v++ {
				arena = g.ball32(s, int32(v), int32(radius), arena)
				off = append(off, int32(len(arena)))
			}
			g.putScratch(s)
			arenas[w] = arena
			offs[w] = off
		}(w, lo, hi)
	}
	wg.Wait()

	total := 0
	for _, a := range arenas {
		total += len(a)
	}
	bi.members = make([]int32, 0, total)
	v := 0
	for w := 0; w < workers; w++ {
		base := int32(len(bi.members))
		bi.members = append(bi.members, arenas[w]...)
		for _, end := range offs[w] {
			v++
			bi.off[v] = base + end
		}
	}
	return bi
}

// shardRange returns the half-open range of shard w when n items are
// split into p contiguous shards of near-equal size.
func shardRange(n, p, w int) (lo, hi int) {
	return n * w / p, n * (w + 1) / p
}

// Radius returns the radius the index was built for.
func (bi *BallIndex) Radius() int { return bi.radius }

// NumVertices returns the number of indexed vertices.
func (bi *BallIndex) NumVertices() int { return len(bi.off) - 1 }

// Ball returns B_H(v, r) sorted ascending. The slice aliases the shared
// arena; callers must not modify it.
func (bi *BallIndex) Ball(v int) []int32 {
	return bi.members[bi.off[v]:bi.off[v+1]]
}

// Size returns |B_H(v, r)|.
func (bi *BallIndex) Size(v int) int { return int(bi.off[v+1] - bi.off[v]) }

// Contains reports whether u ∈ B_H(v, r), by binary search in the sorted
// ball of v.
func (bi *BallIndex) Contains(v int, u int32) bool {
	_, ok := slices.BinarySearch(bi.Ball(v), u)
	return ok
}
