package hypergraph_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/mmlp"
)

func cycleGraph(n int) *hypergraph.Graph {
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		adj[v] = []int{(v + 1) % n, (v - 1 + n) % n}
	}
	return hypergraph.FromAdjacency(adj)
}

func pathGraph(n int) *hypergraph.Graph {
	adj := make([][]int, n)
	for v := 0; v+1 < n; v++ {
		adj[v] = append(adj[v], v+1)
		adj[v+1] = append(adj[v+1], v)
	}
	return hypergraph.FromAdjacency(adj)
}

func TestFromInstanceAdjacency(t *testing.T) {
	b := mmlp.NewBuilder(4)
	b.AddUnitResource(0, 1, 2)
	b.AddUnitResource(3)
	b.AddUniformParty(1, 2, 3)
	in := b.MustBuild()

	g := hypergraph.FromInstance(in, hypergraph.Options{})
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("N(0) = %v, want [1 2]", got)
	}
	if got := g.Neighbors(3); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("N(3) = %v, want [2]", got)
	}

	// Collaboration-oblivious: party edges dropped, 3 becomes isolated.
	g2 := hypergraph.FromInstance(in, hypergraph.Options{CollaborationOblivious: true})
	if got := g2.Neighbors(3); len(got) != 0 {
		t.Fatalf("oblivious N(3) = %v, want empty", got)
	}
}

func TestBallAndDistancesOnCycle(t *testing.T) {
	g := cycleGraph(10)
	if got := g.Ball(0, 2); !reflect.DeepEqual(got, []int{0, 1, 2, 8, 9}) {
		t.Fatalf("B(0,2) = %v", got)
	}
	if d := g.Dist(0, 5); d != 5 {
		t.Fatalf("d(0,5) = %d, want 5", d)
	}
	if d := g.Dist(3, 3); d != 0 {
		t.Fatalf("d(3,3) = %d, want 0", d)
	}
	dist := g.DistancesFrom(0)
	for v, dv := range dist {
		want := min(v, 10-v)
		if dv != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dv, want)
		}
	}
	sizes := g.BallSizes(0, 4)
	for r, size := range sizes {
		want := min(2*r+1, 10)
		if size != want {
			t.Fatalf("|B(0,%d)| = %d, want %d", r, size, want)
		}
	}
}

func TestDistUnreachable(t *testing.T) {
	g := hypergraph.FromAdjacency([][]int{{1}, {0}, {}})
	if d := g.Dist(0, 2); d != -1 {
		t.Fatalf("d(0,2) = %d, want -1", d)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
}

func TestGammaOnCycle(t *testing.T) {
	g := cycleGraph(100)
	// |B(v,r)| = 2r+1, so γ(r) = (2r+3)/(2r+1).
	for r := 0; r <= 5; r++ {
		want := float64(2*r+3) / float64(2*r+1)
		if got := g.Gamma(r); math.Abs(got-want) > 1e-12 {
			t.Fatalf("γ(%d) = %v, want %v", r, got, want)
		}
	}
	prof := g.GammaProfile(5)
	for r := 0; r <= 5; r++ {
		if math.Abs(prof[r]-g.Gamma(r)) > 1e-12 {
			t.Fatalf("profile[%d] = %v disagrees with Gamma %v", r, prof[r], g.Gamma(r))
		}
	}
}

func TestGammaNeverBelowOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		adj := make([][]int, n)
		for e := 0; e < r.Intn(3*n); e++ {
			a, b := r.Intn(n), r.Intn(n)
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		g := hypergraph.FromAdjacency(adj)
		for radius := 0; radius <= 3; radius++ {
			if g.Gamma(radius) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBallMonotoneQuick(t *testing.T) {
	// Property: balls grow with the radius and BallSizes agrees with Ball.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		adj := make([][]int, n)
		for e := 0; e < 2*n; e++ {
			a, b := r.Intn(n), r.Intn(n)
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		g := hypergraph.FromAdjacency(adj)
		v := r.Intn(n)
		sizes := g.BallSizes(v, 4)
		prev := 0
		for radius := 0; radius <= 4; radius++ {
			ball := g.Ball(v, radius)
			if len(ball) != sizes[radius] {
				return false
			}
			if len(ball) < prev {
				return false
			}
			prev = len(ball)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGirth(t *testing.T) {
	if g := pathGraph(6).Girth(); g != -1 {
		t.Fatalf("path girth = %d, want -1", g)
	}
	if g := cycleGraph(7).Girth(); g != 7 {
		t.Fatalf("C7 girth = %d, want 7", g)
	}
	if g := cycleGraph(12).Girth(); g != 12 {
		t.Fatalf("C12 girth = %d, want 12", g)
	}
	// K4 has girth 3.
	k4 := hypergraph.FromAdjacency([][]int{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}})
	if g := k4.Girth(); g != 3 {
		t.Fatalf("K4 girth = %d, want 3", g)
	}
	// Two triangles joined by a long path: still girth 3.
	adj := [][]int{{1, 2}, {0, 2}, {0, 1, 3}, {2, 4}, {3, 5, 6}, {4, 6}, {4, 5}}
	if g := hypergraph.FromAdjacency(adj).Girth(); g != 3 {
		t.Fatalf("girth = %d, want 3", g)
	}
	if pathGraph(4).HasCycleShorterThan(100) {
		t.Fatal("path reported a short cycle")
	}
	if !cycleGraph(4).HasCycleShorterThan(5) {
		t.Fatal("C4 must have a cycle shorter than 5")
	}
	if !pathGraph(5).IsForest() {
		t.Fatal("path is a forest")
	}
}

func TestGirthProjectivePlane(t *testing.T) {
	for _, p := range []int{2, 3, 5} {
		b, err := gen.ProjectivePlaneIncidence(p)
		if err != nil {
			t.Fatal(err)
		}
		if g := b.Graph().Girth(); g != 6 {
			t.Fatalf("PG(2,%d) incidence girth = %d, want 6", p, g)
		}
	}
}

func TestBergeAcyclic(t *testing.T) {
	// A hypertree: hyperedges {0,1,2} and {2,3,4} share one vertex.
	b := mmlp.NewBuilder(5)
	b.AddUnitResource(0, 1, 2)
	b.AddUnitResource(2, 3, 4)
	in := b.MustBuild()
	if !hypergraph.BergeAcyclic(in) {
		t.Fatal("hypertree must be Berge-acyclic")
	}

	// Two hyperedges sharing two vertices form a Berge cycle.
	b = mmlp.NewBuilder(3)
	b.AddUnitResource(0, 1, 2)
	b.AddUnitResource(0, 1)
	in = b.MustBuild()
	if hypergraph.BergeAcyclic(in) {
		t.Fatal("shared pair must be a Berge cycle")
	}

	// A loop of three hyperedges each sharing one vertex.
	b = mmlp.NewBuilder(3)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUnitResource(2, 0)
	in = b.MustBuild()
	if hypergraph.BergeAcyclic(in) {
		t.Fatal("hyperedge triangle must be a Berge cycle")
	}

	// Party edges participate too.
	b = mmlp.NewBuilder(3)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUniformParty(1, 2, 0)
	in = b.MustBuild()
	if hypergraph.BergeAcyclic(in) {
		t.Fatal("resource-party loop must be a Berge cycle")
	}
}

func TestViewEqualityAndDifference(t *testing.T) {
	build := func(coeff float64) *mmlp.Instance {
		b := mmlp.NewBuilder(4)
		b.AddUnitResource(0, 1)
		b.AddUnitResource(1, 2)
		b.AddUnitResource(2, 3)
		b.AddParty(mmlp.Entry{Agent: 3, Coeff: coeff})
		b.AddUniformParty(1, 0)
		return b.MustBuild()
	}
	a := build(1)
	bIn := build(2)
	ga := hypergraph.FromInstance(a, hypergraph.Options{})
	gb := hypergraph.FromInstance(bIn, hypergraph.Options{})
	ids := hypergraph.IdentityIDs()

	// Agent 0 at radius 1 cannot see the coefficient change at agent 3.
	if hypergraph.View(a, ga, 0, 1, ids) != hypergraph.View(bIn, gb, 0, 1, ids) {
		t.Fatal("radius-1 views of agent 0 should be identical")
	}
	// At radius 3 it can.
	if hypergraph.View(a, ga, 0, 3, ids) == hypergraph.View(bIn, gb, 0, 3, ids) {
		t.Fatal("radius-3 views of agent 0 should differ")
	}
	// Hash agrees with string comparison.
	if hypergraph.ViewHash(a, ga, 0, 1, ids) != hypergraph.ViewHash(bIn, gb, 0, 1, ids) {
		t.Fatal("hashes of identical views differ")
	}
}

func TestDiameterAndMaxDegree(t *testing.T) {
	g := pathGraph(5)
	if d := g.Diameter(); d != 4 {
		t.Fatalf("path diameter = %d, want 4", d)
	}
	if d := g.MaxDegree(); d != 2 {
		t.Fatalf("path max degree = %d, want 2", d)
	}
	empty := hypergraph.FromAdjacency(nil)
	if d := empty.Diameter(); d != -1 {
		t.Fatalf("empty diameter = %d, want -1", d)
	}
}
