package hypergraph_test

import (
	"math/rand"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
)

// TestCSRMatchesInstance checks every accessor of the flat index against
// the instance rows it was built from.
func TestCSRMatchesInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := gen.Random(gen.RandomOptions{
		Agents: 30, Resources: 25, Parties: 12, MaxVI: 3, MaxVK: 3,
	}, rng)
	csr := hypergraph.NewCSR(in)

	if csr.NumAgents() != in.NumAgents() || csr.NumResources() != in.NumResources() ||
		csr.NumParties() != in.NumParties() {
		t.Fatal("dimensions disagree")
	}
	if csr.Nonzeros() != in.Stats().Nonzeros {
		t.Fatalf("nonzeros %d, want %d", csr.Nonzeros(), in.Stats().Nonzeros)
	}
	if csr.MemoryBytes() <= 0 {
		t.Fatal("memory estimate should be positive")
	}
	for i := 0; i < in.NumResources(); i++ {
		row := in.Resource(i)
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		if len(agents) != len(row) || csr.ResourceDegree(i) != len(row) {
			t.Fatalf("resource %d degree mismatch", i)
		}
		for j, e := range row {
			if int(agents[j]) != e.Agent || coeffs[j] != e.Coeff {
				t.Fatalf("resource %d entry %d mismatch", i, j)
			}
		}
	}
	for k := 0; k < in.NumParties(); k++ {
		row := in.Party(k)
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		if len(agents) != len(row) {
			t.Fatalf("party %d size mismatch", k)
		}
		for j, e := range row {
			if int(agents[j]) != e.Agent || coeffs[j] != e.Coeff {
				t.Fatalf("party %d entry %d mismatch", k, j)
			}
		}
	}
	for v := 0; v < in.NumAgents(); v++ {
		ids, coeffs := csr.AgentResources(v), csr.AgentResourceCoeffs(v)
		want := in.AgentResources(v)
		if len(ids) != len(want) {
			t.Fatalf("agent %d Iv size mismatch", v)
		}
		for j, i := range want {
			if int(ids[j]) != i || coeffs[j] != in.A(i, v) {
				t.Fatalf("agent %d resource incidence %d mismatch", v, j)
			}
		}
		pids, pcoeffs := csr.AgentParties(v), csr.AgentPartyCoeffs(v)
		wantP := in.AgentParties(v)
		if len(pids) != len(wantP) {
			t.Fatalf("agent %d Kv size mismatch", v)
		}
		for j, k := range wantP {
			if int(pids[j]) != k || pcoeffs[j] != in.C(k, v) {
				t.Fatalf("agent %d party incidence %d mismatch", v, j)
			}
		}
	}
}

// TestGraphCarriesCSR pins which constructors attach the incidence index.
func TestGraphCarriesCSR(t *testing.T) {
	in, _ := gen.Torus([]int{4, 4}, gen.LatticeOptions{})
	if g := hypergraph.FromInstance(in, hypergraph.Options{}); g.CSR() == nil {
		t.Fatal("FromInstance graph should carry a CSR")
	}
	if g := hypergraph.FromAdjacency([][]int{{1}, {0}}); g.CSR() != nil {
		t.Fatal("FromAdjacency graph should not carry a CSR")
	}
}

// TestBallIndexMatchesBall compares the precomputed arena against
// per-call BFS for every vertex, radius and worker count, on a torus and
// on a disconnected adjacency graph.
func TestBallIndexMatchesBall(t *testing.T) {
	torus, _ := gen.Torus([]int{5, 4}, gen.LatticeOptions{})
	graphs := map[string]*hypergraph.Graph{
		"torus":        hypergraph.FromInstance(torus, hypergraph.Options{}),
		"disconnected": hypergraph.FromAdjacency([][]int{{1}, {0}, {3}, {2}, {}}),
	}
	for name, g := range graphs {
		for radius := 0; radius <= 3; radius++ {
			for _, workers := range []int{1, 3, 16} {
				bi := g.BallIndex(radius, workers)
				if bi.Radius() != radius || bi.NumVertices() != g.NumVertices() {
					t.Fatalf("%s r=%d w=%d: bad index shape", name, radius, workers)
				}
				for v := 0; v < g.NumVertices(); v++ {
					want := g.Ball(v, radius)
					got := bi.Ball(v)
					if len(got) != len(want) || bi.Size(v) != len(want) {
						t.Fatalf("%s r=%d w=%d v=%d: size %d want %d", name, radius, workers, v, len(got), len(want))
					}
					for j := range want {
						if int(got[j]) != want[j] {
							t.Fatalf("%s r=%d w=%d v=%d: member %d mismatch", name, radius, workers, v, j)
						}
					}
					for u := 0; u < g.NumVertices(); u++ {
						inBall := false
						for _, w := range want {
							if w == u {
								inBall = true
							}
						}
						if bi.Contains(v, int32(u)) != inBall {
							t.Fatalf("%s r=%d v=%d: Contains(%d) = %v", name, radius, v, u, !inBall)
						}
					}
				}
			}
		}
	}
	if empty := hypergraph.FromAdjacency(nil).BallIndex(2, 4); empty.NumVertices() != 0 {
		t.Fatal("empty graph index should have no vertices")
	}
}

// TestConcurrentBallQueries hammers Ball/BallSizes from many goroutines;
// under -race this checks the scratch pool.
func TestConcurrentBallQueries(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	want := g.Ball(17, 2)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for rep := 0; rep < 50; rep++ {
				got := g.Ball(17, 2)
				if len(got) != len(want) {
					panic("ball changed under concurrency")
				}
				g.BallSizes(rep%g.NumVertices(), 3)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestCSRCloneCoeffsAndPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := gen.Random(gen.RandomOptions{
		Agents: 20, Resources: 16, Parties: 8, MaxVI: 3, MaxVK: 3,
	}, rng)
	orig := hypergraph.NewCSR(in)
	clone := orig.CloneCoeffs()

	// Patch one resource and one party coefficient on the clone.
	ri := 0
	rv := int(orig.ResourceAgents(ri)[0])
	if err := clone.SetResourceCoeff(ri, rv, 42); err != nil {
		t.Fatal(err)
	}
	pk := 0
	pv := int(orig.PartyAgents(pk)[0])
	if err := clone.SetPartyCoeff(pk, pv, 7); err != nil {
		t.Fatal(err)
	}

	// Both sides of each incidence see the new value on the clone.
	if got := clone.ResourceCoeffs(ri)[0]; got != 42 {
		t.Errorf("clone resource coeff = %v, want 42", got)
	}
	found := false
	for j, i := range clone.AgentResources(rv) {
		if int(i) == ri {
			found = true
			if got := clone.AgentResourceCoeffs(rv)[j]; got != 42 {
				t.Errorf("clone agent-side resource coeff = %v, want 42", got)
			}
		}
	}
	if !found {
		t.Fatal("resource missing from agent incidence")
	}
	if got := clone.PartyCoeffs(pk)[0]; got != 7 {
		t.Errorf("clone party coeff = %v, want 7", got)
	}

	// The original's coefficients are untouched (copy-on-write worked),
	// and the topology arrays are shared, not copied.
	if got := orig.ResourceCoeffs(ri)[0]; got == 42 {
		t.Error("patching the clone mutated the original")
	}
	if got := orig.PartyCoeffs(pk)[0]; got == 7 {
		t.Error("patching the clone mutated the original party row")
	}
	// Topology arrays are shared, not copied: the accessor subslices of
	// original and clone alias the same backing memory.
	if &orig.ResourceAgents(ri)[0] != &clone.ResourceAgents(ri)[0] ||
		&orig.PartyAgents(pk)[0] != &clone.PartyAgents(pk)[0] {
		t.Error("topology arrays were copied by CloneCoeffs")
	}

	// Patching an entry outside the support fails and changes nothing.
	outside := -1
	for v := 0; v < in.NumAgents(); v++ {
		if in.A(ri, v) == 0 {
			outside = v
			break
		}
	}
	if outside >= 0 {
		if err := clone.SetResourceCoeff(ri, outside, 1); err == nil {
			t.Error("patch of agent outside the support accepted")
		}
	}
	if err := clone.SetPartyCoeff(pk, -1, 1); err == nil {
		t.Error("patch of negative agent accepted")
	}
}
