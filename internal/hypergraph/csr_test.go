package hypergraph_test

import (
	"math/rand"
	"testing"

	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
)

// TestCSRMatchesInstance checks every accessor of the flat index against
// the instance rows it was built from.
func TestCSRMatchesInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := gen.Random(gen.RandomOptions{
		Agents: 30, Resources: 25, Parties: 12, MaxVI: 3, MaxVK: 3,
	}, rng)
	csr := hypergraph.NewCSR(in)

	if csr.NumAgents() != in.NumAgents() || csr.NumResources() != in.NumResources() ||
		csr.NumParties() != in.NumParties() {
		t.Fatal("dimensions disagree")
	}
	if csr.Nonzeros() != in.Stats().Nonzeros {
		t.Fatalf("nonzeros %d, want %d", csr.Nonzeros(), in.Stats().Nonzeros)
	}
	if csr.MemoryBytes() <= 0 {
		t.Fatal("memory estimate should be positive")
	}
	for i := 0; i < in.NumResources(); i++ {
		row := in.Resource(i)
		agents, coeffs := csr.ResourceAgents(i), csr.ResourceCoeffs(i)
		if len(agents) != len(row) || csr.ResourceDegree(i) != len(row) {
			t.Fatalf("resource %d degree mismatch", i)
		}
		for j, e := range row {
			if int(agents[j]) != e.Agent || coeffs[j] != e.Coeff {
				t.Fatalf("resource %d entry %d mismatch", i, j)
			}
		}
	}
	for k := 0; k < in.NumParties(); k++ {
		row := in.Party(k)
		agents, coeffs := csr.PartyAgents(k), csr.PartyCoeffs(k)
		if len(agents) != len(row) {
			t.Fatalf("party %d size mismatch", k)
		}
		for j, e := range row {
			if int(agents[j]) != e.Agent || coeffs[j] != e.Coeff {
				t.Fatalf("party %d entry %d mismatch", k, j)
			}
		}
	}
	for v := 0; v < in.NumAgents(); v++ {
		ids, coeffs := csr.AgentResources(v), csr.AgentResourceCoeffs(v)
		want := in.AgentResources(v)
		if len(ids) != len(want) {
			t.Fatalf("agent %d Iv size mismatch", v)
		}
		for j, i := range want {
			if int(ids[j]) != i || coeffs[j] != in.A(i, v) {
				t.Fatalf("agent %d resource incidence %d mismatch", v, j)
			}
		}
		pids, pcoeffs := csr.AgentParties(v), csr.AgentPartyCoeffs(v)
		wantP := in.AgentParties(v)
		if len(pids) != len(wantP) {
			t.Fatalf("agent %d Kv size mismatch", v)
		}
		for j, k := range wantP {
			if int(pids[j]) != k || pcoeffs[j] != in.C(k, v) {
				t.Fatalf("agent %d party incidence %d mismatch", v, j)
			}
		}
	}
}

// TestGraphCarriesCSR pins which constructors attach the incidence index.
func TestGraphCarriesCSR(t *testing.T) {
	in, _ := gen.Torus([]int{4, 4}, gen.LatticeOptions{})
	if g := hypergraph.FromInstance(in, hypergraph.Options{}); g.CSR() == nil {
		t.Fatal("FromInstance graph should carry a CSR")
	}
	if g := hypergraph.FromAdjacency([][]int{{1}, {0}}); g.CSR() != nil {
		t.Fatal("FromAdjacency graph should not carry a CSR")
	}
}

// TestBallIndexMatchesBall compares the precomputed arena against
// per-call BFS for every vertex, radius and worker count, on a torus and
// on a disconnected adjacency graph.
func TestBallIndexMatchesBall(t *testing.T) {
	torus, _ := gen.Torus([]int{5, 4}, gen.LatticeOptions{})
	graphs := map[string]*hypergraph.Graph{
		"torus":        hypergraph.FromInstance(torus, hypergraph.Options{}),
		"disconnected": hypergraph.FromAdjacency([][]int{{1}, {0}, {3}, {2}, {}}),
	}
	for name, g := range graphs {
		for radius := 0; radius <= 3; radius++ {
			for _, workers := range []int{1, 3, 16} {
				bi := g.BallIndex(radius, workers)
				if bi.Radius() != radius || bi.NumVertices() != g.NumVertices() {
					t.Fatalf("%s r=%d w=%d: bad index shape", name, radius, workers)
				}
				for v := 0; v < g.NumVertices(); v++ {
					want := g.Ball(v, radius)
					got := bi.Ball(v)
					if len(got) != len(want) || bi.Size(v) != len(want) {
						t.Fatalf("%s r=%d w=%d v=%d: size %d want %d", name, radius, workers, v, len(got), len(want))
					}
					for j := range want {
						if int(got[j]) != want[j] {
							t.Fatalf("%s r=%d w=%d v=%d: member %d mismatch", name, radius, workers, v, j)
						}
					}
					for u := 0; u < g.NumVertices(); u++ {
						inBall := false
						for _, w := range want {
							if w == u {
								inBall = true
							}
						}
						if bi.Contains(v, int32(u)) != inBall {
							t.Fatalf("%s r=%d v=%d: Contains(%d) = %v", name, radius, v, u, !inBall)
						}
					}
				}
			}
		}
	}
	if empty := hypergraph.FromAdjacency(nil).BallIndex(2, 4); empty.NumVertices() != 0 {
		t.Fatal("empty graph index should have no vertices")
	}
}

// TestConcurrentBallQueries hammers Ball/BallSizes from many goroutines;
// under -race this checks the scratch pool.
func TestConcurrentBallQueries(t *testing.T) {
	in, _ := gen.Torus([]int{8, 8}, gen.LatticeOptions{})
	g := hypergraph.FromInstance(in, hypergraph.Options{})
	want := g.Ball(17, 2)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for rep := 0; rep < 50; rep++ {
				got := g.Ball(17, 2)
				if len(got) != len(want) {
					panic("ball changed under concurrency")
				}
				g.BallSizes(rep%g.NumVertices(), 3)
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
