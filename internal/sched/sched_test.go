package sched

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCoversAllIndicesOnce: every task executes exactly once, for
// worker counts below, at and above the task count, with and without
// cost hints.
func TestRunCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 4, 16, 1500} {
			for _, withCosts := range []bool{false, true} {
				var costs []int64
				if withCosts {
					costs = make([]int64, n)
					for i := range costs {
						costs[i] = int64((i * 37) % 11)
					}
				}
				counts := make([]atomic.Int32, n)
				err := Run(n, Options{Workers: workers, Costs: costs}, func(i int) error {
					counts[i].Add(1)
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d workers=%d costs=%v: %v", n, workers, withCosts, err)
				}
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("n=%d workers=%d costs=%v: task %d ran %d times", n, workers, withCosts, i, got)
					}
				}
			}
		}
	}
}

// TestRunStats: the per-worker task counts sum to n, and the stats are
// populated on both the parallel and the sequential path.
func TestRunStats(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 4} {
		var st Stats
		if err := Run(n, Options{Workers: workers, Stats: &st}, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, c := range st.WorkerTasks {
			total += c
		}
		if total != n {
			t.Fatalf("workers=%d: WorkerTasks sums to %d, want %d", workers, total, n)
		}
	}
}

// TestRunHeavyTaskDoesNotSerialize: with one task far heavier than the
// rest, the light tasks must keep flowing on other workers — the
// stealing property the pool exists for.
func TestRunHeavyTaskDoesNotSerialize(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥ 2 CPUs for concurrent stealing")
	}
	const n = 64
	costs := make([]int64, n)
	costs[17] = 1000 // hot task: LPT seeding pops it first on its owner
	var maxConc, conc atomic.Int32
	err := Run(n, Options{Workers: 4, Costs: costs, Stats: new(Stats)}, func(i int) error {
		c := conc.Add(1)
		for {
			m := maxConc.Load()
			if c <= m || maxConc.CompareAndSwap(m, c) {
				break
			}
		}
		if i == 17 {
			time.Sleep(2 * time.Millisecond)
		}
		conc.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxConc.Load() < 2 {
		t.Fatalf("max concurrency %d: light tasks serialised behind the hot one", maxConc.Load())
	}
}

// TestRunFirstErrorWins: the lowest-indexed failing task's error is
// returned regardless of scheduling, and later tasks stop executing
// once a failure is recorded.
func TestRunFirstErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := Run(100, Options{Workers: workers}, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 97:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
			t.Fatalf("workers=%d: got %v", workers, err)
		}
		if workers == 1 && !errors.Is(err, errLow) {
			t.Fatalf("sequential run must fail on the first task in order, got %v", err)
		}
	}
	// When both failing tasks are guaranteed to execute, the lower
	// index must win even if the higher one errors first.
	err := Run(2, Options{Workers: 2}, func(i int) error {
		if i == 0 {
			time.Sleep(time.Millisecond)
			return errLow
		}
		return errHigh
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("want lowest-index error %v, got %v", errLow, err)
	}
}

// TestRunPanicBecomesError: a panicking task surfaces as *PanicError
// carrying the task index and stack, on both paths.
func TestRunPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Run(50, Options{Workers: workers}, func(i int) error {
			if i == 13 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Index != 13 || pe.Value != "boom" {
			t.Fatalf("workers=%d: PanicError = {Index: %d, Value: %v}", workers, pe.Index, pe.Value)
		}
		if !strings.Contains(pe.Error(), "task 13 panicked: boom") {
			t.Fatalf("workers=%d: message %q", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
	}
}

// TestRunNoGoroutineLeak: workers exit after errors and panics alike.
func TestRunNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		_ = Run(200, Options{Workers: 8}, func(i int) error {
			if i%17 == 0 {
				return errors.New("fail")
			}
			if i%23 == 0 {
				panic("boom")
			}
			return nil
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestPoolPhaseReuse drives a Pool through many barrier-separated
// phases the way the sharded engine does, checking every task runs
// exactly once per phase.
func TestPoolPhaseReuse(t *testing.T) {
	const (
		n      = 300
		shards = 4
		phases = 50
	)
	p := NewPool(n, shards, nil)
	counts := make([]atomic.Int32, n)
	// Per-worker release channels: a single shared token channel would
	// let a fast worker consume another worker's release and run a phase
	// ahead, which both skews the lockstep the count checks assume and
	// can starve a slow worker outright.
	release := make([]chan struct{}, shards)
	for i := range release {
		release[i] = make(chan struct{})
	}
	arrive := make(chan int, shards)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ph := 0; ph < phases; ph++ {
			for i := 0; i < shards; i++ {
				<-arrive
			}
			for i := 0; i < shards; i++ {
				release[i] <- struct{}{}
			}
		}
	}()
	var errs atomic.Int32
	var wg [shards]chan struct{}
	for w := 0; w < shards; w++ {
		wg[w] = make(chan struct{})
		go func(w int) {
			defer close(wg[w])
			for ph := 0; ph < phases; ph++ {
				p.ResetOwn(w)
				p.Work(w, func(i int) {
					if counts[i].Add(1) != int32(ph+1) {
						errs.Add(1)
					}
				})
				arrive <- w
				<-release[w]
			}
		}(w)
	}
	for w := 0; w < shards; w++ {
		<-wg[w]
	}
	<-done
	if errs.Load() != 0 {
		t.Fatalf("%d tasks ran a wrong number of times in some phase", errs.Load())
	}
	for i := range counts {
		if got := counts[i].Load(); got != phases {
			t.Fatalf("task %d ran %d times, want %d", i, got, phases)
		}
	}
	st := p.Stats()
	var total int64
	for _, c := range st.WorkerTasks {
		total += c
	}
	if total != int64(n*phases) {
		t.Fatalf("pool executed %d tasks, want %d", total, n*phases)
	}
}

// TestNewPoolCostSeeding: with cost hints, the heaviest tasks must land
// on distinct workers (round-robin deal) and every owner pops its
// heaviest task first.
func TestNewPoolCostSeeding(t *testing.T) {
	const n, workers = 16, 4
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = int64(n - i) // task 0 heaviest, descending
	}
	p := NewPool(n, workers, costs)
	firstOwner := make(map[int32]int)
	for w := 0; w < workers; w++ {
		d := &p.deques[w]
		if len(d.buf) == 0 {
			t.Fatalf("worker %d seeded empty", w)
		}
		// The owner pops from the bottom: the last element must be the
		// worker's heaviest task, i.e. one of the top-`workers` tasks.
		head := d.buf[len(d.buf)-1]
		firstOwner[head] = w
		if head != int32(w) {
			t.Fatalf("worker %d pops task %d first, want %d (heaviest dealt round-robin)", w, head, w)
		}
	}
	if len(firstOwner) != workers {
		t.Fatalf("heaviest %d tasks landed on %d distinct workers", workers, len(firstOwner))
	}
}

// TestRunDeterministicOutputSlots is the bit-identity contract in
// miniature: results written to per-index slots agree exactly across
// worker counts even though execution order differs.
func TestRunDeterministicOutputSlots(t *testing.T) {
	const n = 500
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i) * 1.000001
	}
	for _, workers := range []int{1, 2, 4, 16} {
		out := make([]float64, n)
		if err := Run(n, Options{Workers: workers}, func(i int) error {
			out[i] = float64(i) * 1.000001
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}

func BenchmarkRunOverhead(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := Run(n, Options{Workers: 4}, func(int) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
