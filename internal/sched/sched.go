// Package sched is the repo's shared work-stealing parallel runtime: a
// task pool that executes a fixed set of independent tasks across a
// fixed set of workers, balancing skewed per-task costs by stealing.
//
// The design targets the solver's hot paths, whose work distributions
// static sharding handles badly: post-churn invalidation sets are small
// and heavily skewed (one hot ball-local LP can cost 100× the median),
// so a contiguous agent shard that happens to contain the hot ball
// serialises the whole pass behind one worker. Here every worker owns a
// Chase–Lev-style deque seeded up front; the owner pops from one end
// without contention while idle workers steal single tasks from the
// other end, so the tail of a skewed distribution drains across all
// workers no matter which deque it started in.
//
// Two properties make the pool safe to drop into the deterministic
// solve pipelines:
//
//   - Tasks are seeded once before the workers start and never pushed
//     during a run, so the deque needs no grow/publish protocol: the
//     buffers are read-only while workers run and only the top/bottom
//     indices are contended.
//   - The pool schedules *work*, never *accumulation*. Callers write
//     results into preallocated per-index slots and replay any
//     order-sensitive reduction sequentially afterwards, so outputs are
//     bit-identical for every worker count and steal interleaving.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Stats reports the scheduling behaviour of one run (or, for a reused
// Pool, everything since construction): how many tasks moved between
// workers, how often idle workers exhausted their spin budget, and how
// the executed tasks distributed across workers.
type Stats struct {
	// Steals counts tasks a worker claimed from another worker's deque.
	Steals int64
	// Parks counts the times an idle worker exhausted its spin budget
	// and slept briefly waiting for contended steals to resolve.
	Parks int64
	// WorkerTasks[w] is the number of tasks worker w executed.
	WorkerTasks []int64
}

// Options tunes one Run call. The zero value is valid: it selects a
// sequential in-place loop (Workers ≤ 1), no cost hints and no stats.
type Options struct {
	// Workers is the number of goroutines executing tasks; ≤ 1 runs the
	// tasks sequentially on the calling goroutine. Run never uses more
	// than one worker per task.
	Workers int
	// Costs, when non-nil, holds one relative cost hint per task
	// (len(Costs) == n). Seeding sorts tasks by descending cost and
	// deals them round-robin, so the heaviest tasks start spread across
	// all workers and each owner executes its heaviest tasks first —
	// the LPT heuristic, with stealing to absorb estimation error.
	Costs []int64
	// Stats, when non-nil, receives the run's scheduler counters.
	Stats *Stats
}

// PanicError is the error Run returns when a task panicked: the panic
// is recovered on the worker, wrapped with the task index and stack,
// and surfaced as the run's error instead of crashing the process.
type PanicError struct {
	// Index is the task that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Run executes fn(i) for every i in [0, n) across opt.Workers workers
// and returns the first error. "First" is by task index: when several
// tasks fail (or panic — panics are captured as *PanicError), the error
// of the lowest-indexed failing task wins, so the reported error does
// not depend on scheduling. After any failure the remaining tasks are
// drained without executing; Run always waits for all its workers, so
// no goroutine outlives the call.
func Run(n int, opt Options, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if opt.Stats != nil {
			*opt.Stats = Stats{WorkerTasks: []int64{int64(n)}}
		}
		for i := 0; i < n; i++ {
			if err := call(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	p := NewPool(n, workers, opt.Costs)
	var (
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	task := func(i int) {
		if failed.Load() {
			return
		}
		if err := call(fn, i); err != nil {
			failed.Store(true)
			mu.Lock()
			if firstErr == nil || i < firstIdx {
				firstErr, firstIdx = err, i
			}
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.ResetOwn(w)
			p.Work(w, task)
		}(w)
	}
	p.ResetOwn(0)
	p.Work(0, task)
	wg.Wait()
	if opt.Stats != nil {
		*opt.Stats = p.Stats()
	}
	return firstErr
}

// call invokes fn(i), converting a panic into a *PanicError so one bad
// task fails the run instead of killing the process.
func call(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Pool is the reusable lower layer under Run: n tasks seeded across
// per-worker deques, worked by caller-managed goroutines. The
// barrier-synchronised engines use it directly so one seeding serves
// many phases — after every worker has drained the pool and passed a
// barrier, each worker resets its own deque (ResetOwn) and works the
// same task set again.
type Pool struct {
	workers int
	counts  []workerCount
	deques  []deque
	buf     []int32
}

// deque is a fixed-capacity Chase–Lev work-stealing deque over a
// pre-seeded task buffer. The owner pops from the bottom (LIFO, no CAS
// except on the last item); thieves CAS the top (FIFO). buf is written
// only at seed time, so during a run only top and bottom are contended
// — Go's seq-cst atomics provide the fences the algorithm needs.
//
// top and bottom each pack a phase epoch in their high 32 bits above
// the task index. Within one phase this is exactly the classic
// algorithm; the epoch exists for ResetOwn's phase reuse, where a thief
// may hold a top value read before a reset and attempt its CAS after —
// at a task index the new phase is also handing out. Without the tag
// that stale CAS can succeed while the owner claims the same slot
// CAS-free (top can only be trusted not to pass bottom if every
// successful CAS was gated by the current phase's bottom), executing
// one task twice. With it, a stale CAS carries a stale epoch and can
// never match.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	epoch  int64 // owner-private; current phase of this deque
	buf    []int32
	_      [80]byte // keep neighbouring deques off one cache line
}

// idxBits splits the packed top/bottom words: low half task index, high
// half phase epoch.
const (
	idxBits = 32
	idxMask = (int64(1) << idxBits) - 1
)

const (
	stealOK = iota
	stealEmpty
	stealRetry
)

// take pops one task from the owner's end; only the deque's owner may
// call it. The owner resets its own deque, so top and bottom always
// carry the owner's current epoch here and the packed comparisons
// reduce to plain index comparisons.
func (d *deque) take() (int32, bool) {
	b := d.bottom.Add(-1)
	t := d.top.Load()
	if t < b {
		return d.buf[b&idxMask], true
	}
	if t == b {
		// Last item: race the thieves for it on top.
		if d.top.CompareAndSwap(t, t+1) {
			d.bottom.Store(t + 1)
			return d.buf[b&idxMask], true
		}
		d.bottom.Store(t + 1)
		return 0, false
	}
	d.bottom.Store(b + 1)
	return 0, false
}

// steal claims one task from the thieves' end. stealRetry means the CAS
// lost a race — or the reads tore across a concurrent ResetOwn — and
// the deque may still hold work.
func (d *deque) steal() (int32, int) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, stealEmpty
	}
	i := int(t & idxMask)
	if t>>idxBits != b>>idxBits || i >= len(d.buf) {
		return 0, stealRetry
	}
	x := d.buf[i]
	if d.top.CompareAndSwap(t, t+1) {
		return x, stealOK
	}
	return 0, stealRetry
}

// workerCount is one worker's private counters, padded so workers do
// not share cache lines while incrementing them.
type workerCount struct {
	tasks  int64
	steals int64
	parks  int64
	_      [40]byte
}

// NewPool seeds n tasks across workers deques. Without costs, worker w
// owns the contiguous block [n·w/workers, n·(w+1)/workers) and executes
// it in ascending index order (the cache-friendly layout for index-
// contiguous data), with thieves stealing from the far end. With costs
// (len == n), tasks are sorted by descending cost and dealt round-robin
// so the heaviest tasks start on distinct workers, and each deque is
// ordered so its owner pops its heaviest task first while thieves steal
// the lightest — tail balancing for skewed distributions.
//
// Every deque starts empty: a worker's tasks become visible (to itself
// and to thieves) only once that worker calls ResetOwn, which must
// precede every Work call including the first. Seeding them exposed
// instead would let a fast worker steal a slow worker's initial tasks
// before that owner's first ResetOwn re-exposed them — executing them
// twice.
func NewPool(n, workers int, costs []int64) *Pool {
	if workers < 1 {
		workers = 1
	}
	if workers > n && n > 0 {
		workers = n
	}
	p := &Pool{
		workers: workers,
		counts:  make([]workerCount, workers),
		deques:  make([]deque, workers),
		buf:     make([]int32, n),
	}
	if costs == nil {
		for w := 0; w < workers; w++ {
			lo, hi := n*w/workers, n*(w+1)/workers
			seg := p.buf[lo:hi:hi]
			for j := range seg {
				seg[j] = int32(hi - 1 - j) // owner pops ascending
			}
			p.deques[w].buf = seg
		}
		return p
	}
	if len(costs) != n {
		panic(fmt.Sprintf("sched: %d costs for %d tasks", len(costs), n))
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Descending cost, ascending index among equals: deterministic
	// seeding for any cost vector.
	sortByCostDesc(order, costs)
	lo := 0
	for w := 0; w < workers; w++ {
		size := n / workers
		if w < n%workers {
			size++
		}
		seg := p.buf[lo : lo+size : lo+size]
		lo += size
		// Worker w is dealt order[w], order[w+workers], … (heaviest
		// first); store them back-to-front so the owner, popping from
		// the bottom, executes heaviest-first.
		k := size - 1
		for j := w; j < n; j += workers {
			seg[k] = order[j]
			k--
		}
		p.deques[w].buf = seg
	}
	return p
}

// sortByCostDesc sorts task indices by descending cost, breaking ties
// by ascending index — deterministic seeding for any cost vector.
func sortByCostDesc(order []int32, costs []int64) {
	slices.SortFunc(order, func(a, b int32) int {
		switch {
		case costs[a] > costs[b]:
			return -1
		case costs[a] < costs[b]:
			return 1
		default:
			return int(a) - int(b)
		}
	})
}

// Workers returns the pool's worker count (which may have been clamped
// to the task count).
func (p *Pool) Workers() int { return p.workers }

// ResetOwn exposes worker w's seeded tasks for one Work phase; every
// Work(w) call must be preceded by the owner's ResetOwn(w), including
// the first after NewPool. Callers reusing a pool across phases must
// guarantee — with a barrier — that every worker has left the previous
// phase's Work before any worker resets; after that each worker resets
// only its own deque and starts working, with no further
// synchronisation needed (a thief observing a not-yet-reset deque sees
// it empty, which is safe: every task is in exactly one deque and its
// owner always drains it).
func (p *Pool) ResetOwn(w int) {
	d := &p.deques[w]
	d.epoch++
	e := d.epoch << idxBits
	// Order matters: publishing top first means a thief interleaving
	// with the reset sees either an empty deque (new top, old bottom —
	// the epochs differ, so top > bottom) or the fully reset one; the
	// reverse order would briefly expose the drained phase's top with
	// the new bottom, and its stale epoch still matches live CAS
	// attempts from before the reset.
	d.top.Store(e)
	d.bottom.Store(e + int64(len(d.buf)))
}

// Work drains the pool as worker w: pop own tasks, then steal from the
// other deques (round-robin from w+1), spinning briefly and then
// parking while steals stay contended. It returns when every deque is
// observably empty — tasks are never added during a run, so an
// uncontended empty sweep proves the pool is drained. fn must not
// panic; Run wraps its tasks, and the dist engines' phase bodies are
// panic-free by construction.
func (p *Pool) Work(w int, fn func(i int)) {
	d := &p.deques[w]
	c := &p.counts[w]
	spins := 0
	for {
		if i, ok := d.take(); ok {
			c.tasks++
			fn(int(i))
			spins = 0
			continue
		}
		contended, stole := false, false
		for k := 1; k < p.workers; k++ {
			switch i, st := p.deques[(w+k)%p.workers].steal(); st {
			case stealOK:
				c.steals++
				c.tasks++
				fn(int(i))
				stole = true
			case stealRetry:
				contended = true
			}
			if stole {
				break
			}
		}
		if stole {
			spins = 0
			continue
		}
		if !contended {
			return
		}
		// Bounded spin, then a timed park: contention means another
		// worker is mid-claim, so yield first and only sleep when the
		// contended state persists (it resolves as soon as the racing
		// CAS completes, so the sleep is rarely reached).
		spins++
		if spins <= 64 {
			runtime.Gosched()
		} else {
			c.parks++
			time.Sleep(20 * time.Microsecond)
			spins = 0
		}
	}
}

// Stats sums the per-worker counters. Call it only while no Work is
// running.
func (p *Pool) Stats() Stats {
	st := Stats{WorkerTasks: make([]int64, p.workers)}
	for w := range p.counts {
		c := &p.counts[w]
		st.Steals += c.steals
		st.Parks += c.parks
		st.WorkerTasks[w] = c.tasks
	}
	return st
}
