package mmlpclient

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"maxminlp/internal/backoff"
	"maxminlp/internal/httpapi"
)

// flaky builds a server that fails the first `failures` requests to
// each path with the given coded envelope, then succeeds.
func flaky(t *testing.T, failures int, code string, retryAfterS int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if int(n) <= failures {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(httpapi.Status(code))
			json.NewEncoder(w).Encode(httpapi.ErrorEnvelope{Error: &httpapi.Error{
				Code: code, Message: "transient", RetryAfterS: retryAfterS}})
			return
		}
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/healthz":
			json.NewEncoder(w).Encode(httpapi.HealthResponse{Status: "ok"})
		case r.URL.Path == "/v1/instances/i1/solve":
			json.NewEncoder(w).Encode([]httpapi.SolveResult{{Kind: "safe", Omega: 0.25}})
		case r.URL.Path == "/v1/instances/i1/topology":
			json.NewEncoder(w).Encode(httpapi.TopologyResponse{Applied: 1})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		Backoff:     backoff.Policy{Base: time.Microsecond, Max: time.Millisecond},
	}
}

// An idempotent request rides through transient degraded/recovering
// responses and succeeds once the server heals.
func TestRetryIdempotentSucceeds(t *testing.T) {
	for _, code := range []string{httpapi.CodeClusterDegraded, httpapi.CodeRecovering, httpapi.CodeCluster} {
		t.Run(code, func(t *testing.T) {
			ts, hits := flaky(t, 2, code, 0)
			c := New(ts.URL, nil)
			c.SetRetry(fastRetry())
			c.sleep = func(time.Duration) {}
			res, err := c.Solve("i1", &httpapi.SolveRequest{Queries: []httpapi.SolveQuery{{Kind: "safe"}}})
			if err != nil || len(res) != 1 || res[0].Omega != 0.25 {
				t.Fatalf("Solve = %+v, %v", res, err)
			}
			if got := hits.Load(); got != 3 {
				t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
			}
		})
	}
}

// Non-idempotent requests — patches whose replay would double-apply —
// must never retry, even on retryable statuses.
func TestNoRetryForNonIdempotent(t *testing.T) {
	ts, hits := flaky(t, 1, httpapi.CodeClusterDegraded, 0)
	c := New(ts.URL, nil)
	c.SetRetry(fastRetry())
	c.sleep = func(time.Duration) {}
	_, err := c.PatchTopology("i1", &httpapi.TopologyRequest{Ops: []httpapi.TopoOp{{Op: "addAgent"}}})
	var apiErr *httpapi.Error
	if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeClusterDegraded {
		t.Fatalf("err = %v, want cluster/degraded passthrough", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("non-idempotent request sent %d times", got)
	}
}

// Non-retryable codes (a 404) fail immediately even on idempotent
// requests.
func TestNoRetryOnPermanentError(t *testing.T) {
	ts, hits := flaky(t, 100, httpapi.CodeNotFound, 0)
	c := New(ts.URL, nil)
	c.SetRetry(fastRetry())
	c.sleep = func(time.Duration) {}
	if _, err := c.Health(); err == nil {
		t.Fatal("404 should fail")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("permanent error retried: %d requests", got)
	}
}

// MaxAttempts bounds the total tries; the final error surfaces with
// its code intact.
func TestRetryExhaustion(t *testing.T) {
	ts, hits := flaky(t, 100, httpapi.CodeRecovering, 0)
	c := New(ts.URL, nil)
	c.SetRetry(fastRetry())
	c.sleep = func(time.Duration) {}
	_, err := c.Health()
	var apiErr *httpapi.Error
	if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeRecovering {
		t.Fatalf("err = %v", err)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("%d attempts, want MaxAttempts=4", got)
	}
}

// The server's Retry-After stretches the wait beyond the backoff
// delay, and RetryAfterCap bounds it.
func TestRetryAfterHonoured(t *testing.T) {
	ts, _ := flaky(t, 1, httpapi.CodeClusterDegraded, 30)
	c := New(ts.URL, nil)
	p := fastRetry()
	p.RetryAfterCap = 50 * time.Millisecond
	c.SetRetry(p)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := c.Health(); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	if slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want the 50ms cap (server asked 30s)", slept[0])
	}
}

// Transport-level failures (daemon restarting: connection refused)
// retry too — the crash-recovery scenario's client side.
func TestRetryTransportError(t *testing.T) {
	ts, hits := flaky(t, 0, "", 0)
	dead := httptest.NewServer(nil)
	dead.Close() // port now refuses connections
	c := New(dead.URL, nil)
	c.SetRetry(fastRetry())
	c.sleep = func(time.Duration) {}
	if _, err := c.Health(); err == nil {
		t.Fatal("dead server should error after retries")
	}
	// And a live server is reached on the first try with no spurious
	// extra requests.
	c2 := New(ts.URL, nil)
	c2.SetRetry(fastRetry())
	if _, err := c2.Health(); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 1 {
		t.Fatalf("healthy server saw %d requests", hits.Load())
	}
}

// Retries with a request body must resend the full body each attempt.
func TestRetryResendsBody(t *testing.T) {
	var bodies []string
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req httpapi.SolveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("attempt body: %v", err)
		}
		b, _ := json.Marshal(req)
		bodies = append(bodies, string(b))
		if n.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(httpapi.ErrorEnvelope{Error: &httpapi.Error{
				Code: httpapi.CodeRecovering, Message: "replaying"}})
			return
		}
		json.NewEncoder(w).Encode([]httpapi.SolveResult{{Kind: "average"}})
	}))
	defer ts.Close()
	c := New(ts.URL, nil)
	c.SetRetry(fastRetry())
	c.sleep = func(time.Duration) {}
	if _, err := c.Solve("i1", &httpapi.SolveRequest{
		Queries: []httpapi.SolveQuery{{Kind: "average", Radius: 2}}, IncludeX: true,
	}); err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 2 || bodies[0] != bodies[1] {
		t.Fatalf("attempt bodies differ: %v", bodies)
	}
}
