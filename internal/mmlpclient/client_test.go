package mmlpclient

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"maxminlp/internal/httpapi"
)

// TestClientAgainstStub exercises the request shapes and the error
// decoding against a stub server; the round trips against a live daemon
// live in cmd/mmlpd's tests.
func TestClientAgainstStub(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/instances", func(w http.ResponseWriter, r *http.Request) {
		var req httpapi.LoadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Torus == nil {
			t.Errorf("stub got malformed load: %v %+v", err, req)
		}
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(httpapi.InstanceInfo{ID: "i1", Agents: 16})
	})
	mux.HandleFunc("GET /v1/instances", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(httpapi.ListResponse{SchemaVersion: 1,
			Instances: []httpapi.InstanceInfo{{ID: "i1"}}})
	})
	mux.HandleFunc("GET /v1/instances/i9", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(httpapi.ErrorEnvelope{Error: &httpapi.Error{
			Code: httpapi.CodeNotFound, Message: "no such instance"}})
	})
	mux.HandleFunc("GET /v1/instances/broken", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bare text", http.StatusTeapot)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL+"/", nil)

	info, err := c.Load(&httpapi.LoadRequest{Torus: &httpapi.LatticeSpec{Dims: []int{4, 4}}})
	if err != nil || info.ID != "i1" || info.Agents != 16 {
		t.Fatalf("Load = %+v, %v", info, err)
	}
	list, err := c.List()
	if err != nil || list.SchemaVersion != 1 || len(list.Instances) != 1 {
		t.Fatalf("List = %+v, %v", list, err)
	}

	// A structured daemon error surfaces as *httpapi.Error with code and
	// status, reachable through errors.As.
	_, err = c.Get("i9")
	var apiErr *httpapi.Error
	if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeNotFound || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Get(i9) err = %v", err)
	}

	// A non-envelope failure still yields a coded error.
	_, err = c.Get("broken")
	if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeInternal || apiErr.Status != http.StatusTeapot {
		t.Fatalf("Get(broken) err = %v", err)
	}
}
