// Package mmlpclient is the Go client for the mmlpd daemon. It speaks
// the JSON surface defined in internal/httpapi and surfaces every
// daemon failure as a *httpapi.Error carrying the stable
// machine-readable code and the HTTP status it travelled with — callers
// branch on the code, never on message text. The daemon's own tests use
// this client against live servers, so the two sides of the wire
// contract are exercised together.
package mmlpclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"maxminlp/internal/httpapi"
)

// Client talks to one mmlpd daemon.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for
// http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// do performs one request. Bodies encode as JSON; non-2xx responses
// decode the error envelope into the returned *httpapi.Error. A
// response that should carry an envelope but does not becomes a
// CodeInternal error, so callers always get a code to branch on.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) *httpapi.Error {
	var env httpapi.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code == "" {
		return &httpapi.Error{
			Code:    httpapi.CodeInternal,
			Message: fmt.Sprintf("status %d without an error envelope", resp.StatusCode),
			Status:  resp.StatusCode,
		}
	}
	env.Error.Status = resp.StatusCode
	return env.Error
}

// Load creates an instance from a generator spec or inline JSON.
func (c *Client) Load(req *httpapi.LoadRequest) (*httpapi.InstanceInfo, error) {
	var info httpapi.InstanceInfo
	if err := c.do(http.MethodPost, "/v1/instances", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// List returns the loaded instances, sorted by load sequence.
func (c *Client) List() (*httpapi.ListResponse, error) {
	var out httpapi.ListResponse
	if err := c.do(http.MethodGet, "/v1/instances", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Get describes one instance.
func (c *Client) Get(id string) (*httpapi.InstanceInfo, error) {
	var info httpapi.InstanceInfo
	if err := c.do(http.MethodGet, "/v1/instances/"+url.PathEscape(id), nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Delete unloads an instance.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/v1/instances/"+url.PathEscape(id), nil, nil)
}

// Solve runs a batch of queries against an instance's session.
func (c *Client) Solve(id string, req *httpapi.SolveRequest) ([]httpapi.SolveResult, error) {
	var out []httpapi.SolveResult
	if err := c.do(http.MethodPost, "/v1/instances/"+url.PathEscape(id)+"/solve", req, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// PatchWeights applies one atomic coefficient patch.
func (c *Client) PatchWeights(id string, req *httpapi.WeightsRequest) (*httpapi.WeightsResponse, error) {
	var out httpapi.WeightsResponse
	if err := c.do(http.MethodPost, "/v1/instances/"+url.PathEscape(id)+"/weights", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PatchTopology applies one atomic structural patch.
func (c *Client) PatchTopology(id string, req *httpapi.TopologyRequest) (*httpapi.TopologyResponse, error) {
	var out httpapi.TopologyResponse
	if err := c.do(http.MethodPost, "/v1/instances/"+url.PathEscape(id)+"/topology", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health reads the liveness endpoint.
func (c *Client) Health() (*httpapi.HealthResponse, error) {
	var out httpapi.HealthResponse
	if err := c.do(http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reads the observability summary.
func (c *Client) Stats() (*httpapi.StatsResponse, error) {
	var out httpapi.StatsResponse
	if err := c.do(http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cluster reads the coordinator's membership and sync snapshot; only
// cluster coordinators serve it.
func (c *Client) Cluster() (*httpapi.ClusterResponse, error) {
	var out httpapi.ClusterResponse
	if err := c.do(http.MethodGet, "/v1/cluster", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
