// Package mmlpclient is the Go client for the mmlpd daemon. It speaks
// the JSON surface defined in internal/httpapi and surfaces every
// daemon failure as a *httpapi.Error carrying the stable
// machine-readable code and the HTTP status it travelled with — callers
// branch on the code, never on message text. The daemon's own tests use
// this client against live servers, so the two sides of the wire
// contract are exercised together.
package mmlpclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"maxminlp/internal/backoff"
	"maxminlp/internal/httpapi"
)

// RetryPolicy configures automatic retries. Only idempotent requests
// retry — reads (GET, solve batches, which mutate nothing) and DELETE
// — never loads or patches, whose replay would double-apply.
//
// A retry fires on transport errors and on the responses that promise
// the condition is transient: 503 with `server/recovering` (the daemon
// is replaying its WAL) or `cluster/degraded` (workers died; the
// healing loop is readmitting them), and 502 `cluster`. The wait
// before each retry is the jittered exponential delay of Backoff, or
// the server's Retry-After when it asks for longer.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included);
	// values ≤ 1 disable retrying.
	MaxAttempts int
	// Backoff shapes the jittered exponential wait between tries.
	Backoff backoff.Policy
	// RetryAfterCap bounds how long a server Retry-After is honoured;
	// 0 honours it in full.
	RetryAfterCap time.Duration
}

// DefaultRetry is the policy the daemon's own tooling uses: 4
// attempts, 100ms·2ⁿ jitter capped at 1s, Retry-After honoured up to
// 5s.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		Backoff:       backoff.Policy{Base: 100 * time.Millisecond, Max: time.Second},
		RetryAfterCap: 5 * time.Second,
	}
}

// Client talks to one mmlpd daemon.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	sleep func(time.Duration) // test seam
	seed  int64
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for
// http.DefaultClient. Retries are off by default; enable with
// SetRetry.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		http:  httpClient,
		sleep: time.Sleep,
		seed:  time.Now().UnixNano(),
	}
}

// SetRetry installs a retry policy for idempotent requests.
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

// do performs one request, retrying idempotent ones per the policy.
// Bodies encode as JSON; non-2xx responses decode the error envelope
// into the returned *httpapi.Error. A response that should carry an
// envelope but does not becomes a CodeInternal error, so callers
// always get a code to branch on.
func (c *Client) do(method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = b
	}
	attempts := 1
	if idempotent && c.retry.MaxAttempts > attempts {
		attempts = c.retry.MaxAttempts
	}
	bo := backoff.New(c.retry.Backoff, c.seed)
	for attempt := 1; ; attempt++ {
		err := c.once(method, path, body, in != nil, out)
		if err == nil {
			return nil
		}
		if attempt >= attempts || !retryable(err) {
			return err
		}
		delay := bo.Delay()
		bo.Advance()
		if ra := retryAfterOf(err, c.retry.RetryAfterCap); ra > delay {
			delay = ra
		}
		c.sleep(delay)
	}
}

func (c *Client) once(method, path string, body []byte, hasBody bool, out any) error {
	var rd *bytes.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	var req *http.Request
	var err error
	if rd != nil {
		req, err = http.NewRequest(method, c.base+path, rd)
	} else {
		req, err = http.NewRequest(method, c.base+path, nil)
	}
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryable reports whether an attempt's failure is worth repeating:
// transport errors (the daemon may be restarting), and the statuses
// that explicitly signal a transient condition.
func retryable(err error) bool {
	apiErr, ok := err.(*httpapi.Error)
	if !ok {
		return true // transport-level: connection refused/reset mid-restart
	}
	switch apiErr.Status {
	case http.StatusServiceUnavailable, http.StatusBadGateway:
		return true
	}
	return false
}

// retryAfterOf extracts the server's requested wait, capped.
func retryAfterOf(err error, cap time.Duration) time.Duration {
	apiErr, ok := err.(*httpapi.Error)
	if !ok || apiErr.RetryAfterS <= 0 {
		return 0
	}
	d := time.Duration(apiErr.RetryAfterS) * time.Second
	if cap > 0 && d > cap {
		d = cap
	}
	return d
}

func decodeError(resp *http.Response) *httpapi.Error {
	var env httpapi.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code == "" {
		return &httpapi.Error{
			Code:    httpapi.CodeInternal,
			Message: fmt.Sprintf("status %d without an error envelope", resp.StatusCode),
			Status:  resp.StatusCode,
		}
	}
	env.Error.Status = resp.StatusCode
	return env.Error
}

// Load creates an instance from a generator spec or inline JSON.
func (c *Client) Load(req *httpapi.LoadRequest) (*httpapi.InstanceInfo, error) {
	var info httpapi.InstanceInfo
	if err := c.do(http.MethodPost, "/v1/instances", req, &info, false); err != nil {
		return nil, err
	}
	return &info, nil
}

// List returns the loaded instances, sorted by load sequence.
func (c *Client) List() (*httpapi.ListResponse, error) {
	var out httpapi.ListResponse
	if err := c.do(http.MethodGet, "/v1/instances", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Get describes one instance.
func (c *Client) Get(id string) (*httpapi.InstanceInfo, error) {
	var info httpapi.InstanceInfo
	if err := c.do(http.MethodGet, "/v1/instances/"+url.PathEscape(id), nil, &info, true); err != nil {
		return nil, err
	}
	return &info, nil
}

// Delete unloads an instance.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/v1/instances/"+url.PathEscape(id), nil, nil, true)
}

// Solve runs a batch of queries against an instance's session.
func (c *Client) Solve(id string, req *httpapi.SolveRequest) ([]httpapi.SolveResult, error) {
	var out []httpapi.SolveResult
	if err := c.do(http.MethodPost, "/v1/instances/"+url.PathEscape(id)+"/solve", req, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// PatchWeights applies one atomic coefficient patch.
func (c *Client) PatchWeights(id string, req *httpapi.WeightsRequest) (*httpapi.WeightsResponse, error) {
	var out httpapi.WeightsResponse
	if err := c.do(http.MethodPost, "/v1/instances/"+url.PathEscape(id)+"/weights", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// PatchTopology applies one atomic structural patch.
func (c *Client) PatchTopology(id string, req *httpapi.TopologyRequest) (*httpapi.TopologyResponse, error) {
	var out httpapi.TopologyResponse
	if err := c.do(http.MethodPost, "/v1/instances/"+url.PathEscape(id)+"/topology", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health reads the liveness endpoint.
func (c *Client) Health() (*httpapi.HealthResponse, error) {
	var out httpapi.HealthResponse
	if err := c.do(http.MethodGet, "/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reads the observability summary.
func (c *Client) Stats() (*httpapi.StatsResponse, error) {
	var out httpapi.StatsResponse
	if err := c.do(http.MethodGet, "/v1/stats", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cluster reads the coordinator's membership and sync snapshot; only
// cluster coordinators serve it.
func (c *Client) Cluster() (*httpapi.ClusterResponse, error) {
	var out httpapi.ClusterResponse
	if err := c.do(http.MethodGet, "/v1/cluster", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}
