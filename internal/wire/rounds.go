package wire

import (
	"encoding/binary"
	"fmt"
)

// Round boundary-state codec. A partitioned engine sends, per round and
// per peer, the staged outboxes of its boundary nodes that the peer's
// nodes neighbour. Every worker holds the same immutable per-agent
// record ROMs (replicated at load time), so a record is identified on
// the wire by its agent id alone — the payload is pure structure:
//
//	entry*   where entry = uvarint(node) uvarint(k) k×uvarint(id)
//
// Entry order and id order are the sender's staging order and must be
// preserved: delivery order is what makes the round loop bit-identical
// to the sequential reference.

// RoundEncoder accumulates one peer's boundary payload for one round.
// The zero value is ready to use.
type RoundEncoder struct {
	buf []byte
}

// Add appends one node's staged outbox, given as the record agent ids
// in staging order.
func (e *RoundEncoder) Add(node int, ids []int32) {
	e.buf = binary.AppendUvarint(e.buf, uint64(node))
	e.buf = binary.AppendUvarint(e.buf, uint64(len(ids)))
	for _, id := range ids {
		e.buf = binary.AppendUvarint(e.buf, uint64(id))
	}
}

// Bytes returns the encoded payload; nil when nothing was added.
func (e *RoundEncoder) Bytes() []byte { return e.buf }

// Reset clears the encoder for the next round, retaining the buffer.
func (e *RoundEncoder) Reset() { e.buf = e.buf[:0] }

// DecodeRound streams the payload's (node, ids) entries to visit. The
// ids slice is reused between calls; visit must not retain it.
func DecodeRound(b []byte, visit func(node int, ids []int32) error) error {
	var ids []int32
	for len(b) > 0 {
		node, n := binary.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("wire: truncated round entry header")
		}
		b = b[n:]
		k, n := binary.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("wire: truncated round entry length")
		}
		b = b[n:]
		ids = ids[:0]
		for j := uint64(0); j < k; j++ {
			id, n := binary.Uvarint(b)
			if n <= 0 {
				return fmt.Errorf("wire: truncated round entry ids")
			}
			b = b[n:]
			ids = append(ids, int32(id))
		}
		if err := visit(int(node), ids); err != nil {
			return err
		}
	}
	return nil
}
