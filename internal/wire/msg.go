package wire

import (
	"encoding/json"
	"fmt"
	"io"
)

// Version is the protocol version stamped on every control envelope.
// Peers reject envelopes from a different major version outright: the
// cluster is deployed as one unit, so cross-version tolerance buys
// nothing but silent skew.
const Version = 1

// Control message types. The full conversation:
//
//	worker → coordinator   hello       announce the worker's data-plane address
//	coordinator → worker   assign      partition index + full peer address list
//	coordinator → worker   load        replicate an instance (full JSON)
//	coordinator → worker   unload      drop an instance
//	coordinator → worker   weights     apply a coefficient patch
//	coordinator → worker   topology    apply a structural patch
//	coordinator → worker   solve       run this worker's slice of a query
//	worker → coordinator   partial     the slice result of a solve
//	coordinator → worker   snapshot    read the worker's view of an instance
//	worker → coordinator   state       snapshot reply: sizes + content digest
//	either direction       ok          acknowledgement without a body
//	either direction       error       failure reply with a stable code
//	coordinator → worker   shutdown    drain and exit
//	coordinator → worker   ping        liveness probe (heartbeat)
//	worker → coordinator   pong        liveness reply
//	coordinator → worker   resync      self-check a replica after catch-up
const (
	TypeHello    = "hello"
	TypeAssign   = "assign"
	TypeLoad     = "load"
	TypeUnload   = "unload"
	TypeWeights  = "weights"
	TypeTopology = "topology"
	TypeSolve    = "solve"
	TypePartial  = "partial"
	TypeSnapshot = "snapshot"
	TypeState    = "state"
	TypeOK       = "ok"
	TypeError    = "error"
	TypeShutdown = "shutdown"
	TypePing     = "ping"
	TypePong     = "pong"
	TypeResync   = "resync"
)

// Envelope is the framing of every control message: a version, a type
// tag, an optional request sequence number, and the type's body. Round
// boundary-state frames (EncodeRound) travel on the data plane and are
// not enveloped.
//
// Seq correlates requests with replies on a connection that may carry
// a late reply after a deadline fired: the coordinator stamps each RPC
// with a fresh Seq, the worker echoes it, and a reply whose Seq does
// not match the outstanding request is discarded as stale instead of
// being mistaken for the answer to the retry. Seq 0 means "no
// correlation" and is what the pre-recovery protocol always sent, so
// old and new peers interoperate.
type Envelope struct {
	V    int             `json:"v"`
	Type string          `json:"type"`
	Seq  uint64          `json:"seq,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Decode unmarshals the envelope body into a typed message struct.
func (e *Envelope) Decode(into any) error {
	if len(e.Body) == 0 {
		return fmt.Errorf("wire: %s envelope has no body", e.Type)
	}
	return json.Unmarshal(e.Body, into)
}

// Hello is the worker's first message on a fresh control connection —
// both a cold join and a rejoin after a crash.
type Hello struct {
	// DataAddr is the address the worker's data-plane listener is bound
	// to; peers dial it to build the round-exchange mesh.
	DataAddr string `json:"dataAddr"`
	// Digests reports the fnv64a digest of every instance replica the
	// worker still holds (instance ID → digest). Empty on a cold join.
	// The coordinator uses it to replay only the patch-log suffix the
	// worker is missing instead of re-shipping whole instances.
	Digests map[string]string `json:"digests,omitempty"`
}

// Assign gives a worker its place in the cluster: its partition index
// and the data-plane addresses of every worker (including itself, at
// Peers[Self]).
type Assign struct {
	Self  int      `json:"self"`
	Peers []string `json:"peers"`
	// Epoch numbers the cluster membership generation. Every death or
	// admission bumps it and re-Assigns the survivors; a worker that
	// sees a newer epoch tears down its old mesh before building the
	// new one.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Resync asks a worker to verify a replica after patch-log catch-up:
// rebuild derived state, run the self-stabilising protocol against the
// reference engine, and reply with a State carrying the replica
// digest. The coordinator readmits the worker only if the digest
// matches its own.
type Resync struct {
	ID string `json:"id"`
	// Radius is the ball radius for the stabilising self-check; the
	// protocol heals any corrupt soft state within one information
	// horizon (2R+1 rounds).
	Radius int `json:"radius,omitempty"`
}

// Load replicates an instance to a worker. Instance is the canonical
// mmlp JSON encoding, which round-trips float64 coefficients exactly —
// the replica is bit-identical to the coordinator's copy.
type Load struct {
	ID       string          `json:"id"`
	Instance json.RawMessage `json:"instance"`
	// CollaborationOblivious mirrors the load option of the same name:
	// it changes the communication hypergraph the replica builds.
	CollaborationOblivious bool `json:"collaborationOblivious,omitempty"`
	// Workers is the intra-process LP parallelism of the replica session.
	Workers int `json:"workers,omitempty"`
}

// Unload drops a worker's replica of an instance.
type Unload struct {
	ID string `json:"id"`
}

// Coeff is one coefficient assignment of a weight patch.
type Coeff struct {
	Row   int     `json:"row"`
	Agent int     `json:"agent"`
	Coeff float64 `json:"coeff"`
}

// Weights applies one atomic coefficient patch to a worker's replica —
// the same rows the coordinator applied locally, in the same order.
type Weights struct {
	ID        string  `json:"id"`
	Resources []Coeff `json:"resources,omitempty"`
	Parties   []Coeff `json:"parties,omitempty"`
}

// TopoOp is one structural operation of a topology patch.
type TopoOp struct {
	Op    string  `json:"op"`   // addAgent | removeAgent | addEdge | removeEdge
	Kind  string  `json:"kind"` // resource | party (edge ops)
	Row   int     `json:"row"`
	Agent int     `json:"agent"`
	Coeff float64 `json:"coeff"`
}

// Topology applies one atomic structural patch to a worker's replica.
type Topology struct {
	ID  string   `json:"id"`
	Ops []TopoOp `json:"ops"`
}

// Solve asks a worker to compute its partition's slice of a query. For
// kind "average" the worker joins a cluster-wide partitioned round
// exchange on the data plane; for kind "safe" the slice is local.
type Solve struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"` // safe | average
	Radius int    `json:"radius,omitempty"`
}

// Partial is a worker's slice of a solve: X[v-Lo] for owned agents
// v ∈ [Lo, Hi), plus the communication cost its nodes observed.
type Partial struct {
	Lo             int       `json:"lo"`
	Hi             int       `json:"hi"`
	X              []float64 `json:"x"`
	Rounds         int       `json:"rounds"`
	Messages       int       `json:"messages"`
	Payload        int       `json:"payload"`
	MaxNodePayload int       `json:"maxNodePayload"`
}

// Snapshot asks for a worker's consistent view of one instance.
type Snapshot struct {
	ID string `json:"id"`
}

// State is the snapshot reply: the replica's dimensions and a digest of
// its canonical instance encoding. Equal digests across the coordinator
// and every worker certify the cluster is in sync.
type State struct {
	ID        string `json:"id"`
	Agents    int    `json:"agents"`
	Resources int    `json:"resources"`
	Parties   int    `json:"parties"`
	Digest    string `json:"digest"`
}

// Error is the failure reply. Code is machine-readable and stable; the
// coordinator surfaces it in the HTTP error envelope.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// WriteMsg frames and writes one control message with no sequence
// number (Seq 0).
func WriteMsg(w io.Writer, typ string, body any) error {
	return WriteMsgSeq(w, typ, 0, body)
}

// WriteMsgSeq frames and writes one control message stamped with a
// request sequence number for reply correlation.
func WriteMsgSeq(w io.Writer, typ string, seq uint64, body any) error {
	env := Envelope{V: Version, Type: typ, Seq: seq}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("wire: marshal %s body: %w", typ, err)
		}
		env.Body = b
	}
	b, err := json.Marshal(&env)
	if err != nil {
		return err
	}
	return WriteFrame(w, b)
}

// ReadMsg reads one control message and validates its version.
func ReadMsg(r io.Reader) (*Envelope, error) {
	b, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("wire: malformed envelope: %w", err)
	}
	if env.V != Version {
		return nil, fmt.Errorf("wire: protocol version %d, want %d", env.V, Version)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("wire: envelope without a type")
	}
	return &env, nil
}
