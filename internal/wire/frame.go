// Package wire is the cluster protocol of mmlpd: length-prefixed
// framing, the versioned JSON control-message catalogue the coordinator
// and its workers speak, and the compact binary codec for per-round
// boundary-state exchange between partition owners.
//
// The package is deliberately self-contained — it imports nothing from
// the rest of the module — so the protocol it pins down cannot drift by
// accident when internal types change. Anything that crosses a process
// boundary is defined here.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame. The largest legitimate frames are
// instance loads and solve gathers (8 bytes per agent plus JSON
// overhead); 1 GiB leaves room for the serving caps (2^22 rows) with a
// wide margin while still rejecting a corrupt length prefix before it
// turns into a huge allocation.
const MaxFrame = 1 << 30

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian
// payload length followed by the payload. An empty payload is a valid
// frame (length 0) — partitioned rounds use it as "nothing for you this
// round" to keep the exchange pattern fixed.
//
// The header and payload go out in a single Write call, which matters
// twice: a frame is never interleaved with another writer's bytes at
// the io.Writer layer, and fault injectors that act per-Write (see
// internal/faultwire) see whole frames, so "close mid-frame" faults
// model a real torn TCP stream rather than an artefact of our own
// write granularity.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting lengths beyond
// MaxFrame so a corrupt or hostile peer cannot force an arbitrary
// allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
