package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), nil, []byte{0}, bytes.Repeat([]byte{0xAB}, 70000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Assign{Self: 1, Peers: []string{"a:1", "b:2", "c:3"}}
	if err := WriteMsg(&buf, TypeAssign, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(&buf, TypeOK, nil); err != nil {
		t.Fatal(err)
	}

	env, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypeAssign {
		t.Fatalf("type = %q", env.Type)
	}
	var got Assign
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("assign = %+v, want %+v", got, want)
	}

	env, err = ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypeOK || len(env.Body) != 0 {
		t.Fatalf("ok envelope = %+v", env)
	}
	if err := env.Decode(&got); err == nil {
		t.Fatal("decoding a bodyless envelope should fail")
	}
}

// Sequence numbers round-trip for reply correlation, a frame is one
// Write call (fault injectors depend on this granularity), and Seq 0
// is omitted from the encoding for compatibility with pre-Seq peers.
func TestMsgSeqRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMsgSeq(&buf, TypePing, 42, nil); err != nil {
		t.Fatal(err)
	}
	env, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TypePing || env.Seq != 42 {
		t.Fatalf("envelope = %+v, want ping seq 42", env)
	}

	buf.Reset()
	if err := WriteMsg(&buf, TypePong, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"seq"`)) {
		t.Fatalf("seq 0 should be omitted: %s", raw)
	}

	var hello bytes.Buffer
	if err := WriteMsgSeq(&hello, TypeHello, 7, Hello{
		DataAddr: "h:1", Digests: map[string]string{"i1": "00ff"},
	}); err != nil {
		t.Fatal(err)
	}
	env, err = ReadMsg(&hello)
	if err != nil {
		t.Fatal(err)
	}
	var h Hello
	if err := env.Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Digests["i1"] != "00ff" || env.Seq != 7 {
		t.Fatalf("hello round-trip: %+v seq %d", h, env.Seq)
	}
}

// countWriter counts Write calls so the one-frame-one-Write contract
// is pinned by a test, not just a comment.
type countWriter struct {
	buf    bytes.Buffer
	writes int
}

func (c *countWriter) Write(p []byte) (int, error) {
	c.writes++
	return c.buf.Write(p)
}

func TestWriteFrameSingleWrite(t *testing.T) {
	var cw countWriter
	if err := WriteFrame(&cw, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&cw, nil); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 2 {
		t.Fatalf("2 frames took %d Write calls, want 2", cw.writes)
	}
	for _, want := range [][]byte{[]byte("payload"), nil} {
		got, err := ReadFrame(&cw.buf)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame read-back: %q %v", got, err)
		}
	}
}

func TestMsgVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte(`{"v":2,"type":"ok"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
	buf.Reset()
	if err := WriteFrame(&buf, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("typeless envelope accepted")
	}
}

func TestRoundCodec(t *testing.T) {
	var enc RoundEncoder
	entries := []struct {
		node int
		ids  []int32
	}{
		{0, []int32{0, 5, 1 << 20}},
		{300, nil},
		{7, []int32{128}},
	}
	for _, e := range entries {
		enc.Add(e.node, e.ids)
	}
	i := 0
	err := DecodeRound(enc.Bytes(), func(node int, ids []int32) error {
		if node != entries[i].node {
			t.Fatalf("entry %d: node %d, want %d", i, node, entries[i].node)
		}
		if len(ids) != len(entries[i].ids) {
			t.Fatalf("entry %d: %d ids, want %d", i, len(ids), len(entries[i].ids))
		}
		for j, id := range ids {
			if id != entries[i].ids[j] {
				t.Fatalf("entry %d id %d: %d, want %d", i, j, id, entries[i].ids[j])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("decoded %d entries, want %d", i, len(entries))
	}

	enc.Reset()
	if enc.Bytes() != nil && len(enc.Bytes()) != 0 {
		t.Fatal("Reset did not clear")
	}
	if err := DecodeRound(nil, func(int, []int32) error { return nil }); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestRoundCodecTruncation(t *testing.T) {
	var enc RoundEncoder
	enc.Add(9, []int32{1, 2, 3})
	full := enc.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if err := DecodeRound(full[:cut], func(int, []int32) error { return nil }); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
