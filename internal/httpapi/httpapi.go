// Package httpapi defines the JSON surface of the mmlpd daemon: every
// request and response body, the structured error envelope, and the
// stable machine-readable error codes. The daemon (cmd/mmlpd) and the
// Go client (internal/mmlpclient) both build against these types, so
// the wire contract lives in exactly one place.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"maxminlp"
	"maxminlp/internal/obs"
)

// SchemaVersion is stamped on listing-style responses so clients can
// detect shape changes mechanically instead of by breakage.
const SchemaVersion = 1

// Error codes. Codes are stable API: clients branch on them, the
// daemon's rejection metrics are labelled by them, and the
// coordinator↔worker protocol carries them across processes.
const (
	// CodeInvalidJSON: the request body is not valid JSON. 400.
	CodeInvalidJSON = "invalid_json"
	// CodeInvalidArgument: well-formed but semantically invalid request
	// (bad generator spec, unknown solve kind, radius over the cap,
	// patch against a missing row...). 400.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound: no instance with the requested id. 404.
	CodeNotFound = "not_found"
	// CodeInstanceTooLarge: the instance exceeds the serving caps. 413,
	// retryable against a larger deployment.
	CodeInstanceTooLarge = "instance_too_large"
	// CodePatchEntries / CodeTopoOps: a weight/topology patch exceeds
	// the per-request entry cap. 413, retryable after splitting.
	CodePatchEntries = "patch_entries"
	CodeTopoOps      = "topo_ops"
	// CodeAgentGrowth / CodeRowGrowth: the patch would grow the instance
	// past the serving caps. 413.
	CodeAgentGrowth = "agent_growth"
	CodeRowGrowth   = "row_growth"
	// CodeCluster: a cluster worker failed or disagreed; the daemon is
	// degraded. 502.
	CodeCluster = "cluster"
	// CodeClusterDegraded: the cluster has lost workers and cannot run
	// this query until they rejoin or are replaced; patches may still
	// be accepted. 503 with retry_after_s — the healing loop readmits
	// workers automatically, so retrying is the right client move.
	CodeClusterDegraded = "cluster/degraded"
	// CodeRecovering: the daemon is replaying its write-ahead log after
	// a restart and stateful endpoints are not yet serving. 503 with
	// retry_after_s.
	CodeRecovering = "server/recovering"
	// CodeInternal: unclassified server-side failure. 500.
	CodeInternal = "internal"
)

// statusOf maps every error code to its HTTP status.
var statusOf = map[string]int{
	CodeInvalidJSON:      http.StatusBadRequest,
	CodeInvalidArgument:  http.StatusBadRequest,
	CodeNotFound:         http.StatusNotFound,
	CodeInstanceTooLarge: http.StatusRequestEntityTooLarge,
	CodePatchEntries:     http.StatusRequestEntityTooLarge,
	CodeTopoOps:          http.StatusRequestEntityTooLarge,
	CodeAgentGrowth:      http.StatusRequestEntityTooLarge,
	CodeRowGrowth:        http.StatusRequestEntityTooLarge,
	CodeCluster:          http.StatusBadGateway,
	CodeClusterDegraded:  http.StatusServiceUnavailable,
	CodeRecovering:       http.StatusServiceUnavailable,
	CodeInternal:         http.StatusInternalServerError,
}

// Status returns the HTTP status of an error code; unknown codes map to
// 500, the conservative choice for a server bug.
func Status(code string) int {
	if s, ok := statusOf[code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// Codes lists every defined error code, in the order above.
func Codes() []string {
	return []string{
		CodeInvalidJSON, CodeInvalidArgument, CodeNotFound,
		CodeInstanceTooLarge, CodePatchEntries, CodeTopoOps,
		CodeAgentGrowth, CodeRowGrowth, CodeCluster,
		CodeClusterDegraded, CodeRecovering, CodeInternal,
	}
}

// Error is the body of the structured error envelope, and doubles as
// the Go error the client surfaces.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail; clients must branch on Code, not
	// on Message.
	Message string `json:"message"`
	// RetryAfterS mirrors the Retry-After header on load-shedding
	// rejections; 0 means not retryable as-is.
	RetryAfterS int `json:"retry_after_s,omitempty"`

	// Status is the HTTP status the envelope travelled with. Set by the
	// client when decoding; never serialised.
	Status int `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("mmlpd: %s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the uniform error response shape:
// {"error":{"code":...,"message":...,"retry_after_s":...}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// LoadRequest describes an instance to load: exactly one source. Torus,
// Grid and Random drive the built-in generators (deterministic given
// Seed); Instance carries inline instance JSON in the mmlp
// serialisation ({"agents":n,"resources":[[{"Agent":..,"Coeff":..},..],..],"parties":[..]}).
type LoadRequest struct {
	Name string `json:"name,omitempty"`

	Torus  *LatticeSpec `json:"torus,omitempty"`
	Grid   *LatticeSpec `json:"grid,omitempty"`
	Random *RandomSpec  `json:"random,omitempty"`
	// Instance is inline instance JSON in the mmlp serialisation.
	Instance json.RawMessage `json:"instance,omitempty"`

	// CollaborationOblivious drops the party hyperedges from the
	// communication graph (§1.4 restricted variant).
	CollaborationOblivious bool `json:"collaborationOblivious,omitempty"`
	// Workers caps the session's solve parallelism; 0 = GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// LatticeSpec parameterises the torus and grid generators.
type LatticeSpec struct {
	Dims          []int `json:"dims"`
	RandomWeights bool  `json:"randomWeights,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
}

// RandomSpec parameterises the random-instance generator.
type RandomSpec struct {
	Agents    int   `json:"agents"`
	Resources int   `json:"resources"`
	Parties   int   `json:"parties"`
	MaxVI     int   `json:"maxVI"`
	MaxVK     int   `json:"maxVK"`
	Seed      int64 `json:"seed,omitempty"`
}

// InstanceInfo is the JSON description of a loaded instance.
type InstanceInfo struct {
	ID        string               `json:"id"`
	Name      string               `json:"name,omitempty"`
	Loaded    time.Time            `json:"loaded"`
	Agents    int                  `json:"agents"`
	Resources int                  `json:"resources"`
	Parties   int                  `json:"parties"`
	Queries   int64                `json:"queries"`
	Session   maxminlp.SolverStats `json:"session"`
	// Workers is the session's effective Solver worker count (the fan-out
	// of parallel LP phases), after flag and request defaults resolve.
	Workers int `json:"workers,omitempty"`
}

// ListResponse is GET /v1/instances: a schema version and the loaded
// instances sorted by load sequence — a deterministic listing.
type ListResponse struct {
	SchemaVersion int            `json:"schemaVersion"`
	Instances     []InstanceInfo `json:"instances"`
}

// SolveRequest is a batch of queries against one session. Queries run
// in order; the session state they warm (ball indexes, cached LPs)
// persists for every later request.
type SolveRequest struct {
	Queries []SolveQuery `json:"queries"`
	// IncludeX returns the per-agent solution vector of each query.
	IncludeX bool `json:"includeX,omitempty"`
}

// SolveQuery is one query of a solve batch.
type SolveQuery struct {
	// Kind is "safe", "average", "adaptive" or "certificate".
	Kind string `json:"kind"`
	// Radius parameterises average and certificate queries.
	Radius int `json:"radius,omitempty"`
	// Target and MaxRadius parameterise adaptive queries.
	Target    float64 `json:"target,omitempty"`
	MaxRadius int     `json:"maxRadius,omitempty"`
}

// SolveResult reports one query's outcome. Omega is the objective
// min_k Σ c_kv x_v of the returned solution on the current weights.
type SolveResult struct {
	Kind          string    `json:"kind"`
	Radius        int       `json:"radius,omitempty"`
	Omega         float64   `json:"omega"`
	PartyBound    float64   `json:"partyBound,omitempty"`
	ResourceBound float64   `json:"resourceBound,omitempty"`
	Certificate   float64   `json:"certificate,omitempty"`
	Achieved      *bool     `json:"achieved,omitempty"`
	LocalLPs      int       `json:"localLPs,omitempty"`
	SolvesAvoided int       `json:"solvesAvoided,omitempty"`
	Micros        int64     `json:"micros"`
	X             []float64 `json:"x,omitempty"`
}

// WeightsRequest patches coefficients of the instance behind a session.
// Entries must already exist: weight updates change values, never
// topology. The whole batch applies atomically.
type WeightsRequest struct {
	Resources []CoeffPatch `json:"resources,omitempty"`
	Parties   []CoeffPatch `json:"parties,omitempty"`
}

// CoeffPatch is one coefficient assignment of a weight patch.
type CoeffPatch struct {
	Row   int     `json:"row"`
	Agent int     `json:"agent"`
	Coeff float64 `json:"coeff"`
}

// WeightsResponse acknowledges an applied weight patch.
type WeightsResponse struct {
	Applied int                  `json:"applied"`
	Micros  int64                `json:"micros"`
	Session maxminlp.SolverStats `json:"session"`
}

// TopologyRequest patches the structure of the instance behind a
// session: agents, resources, parties and support entries joining or
// leaving. Ops apply in order and the whole batch is atomic — the first
// invalid op rejects it with no state change.
type TopologyRequest struct {
	Ops []TopoOp `json:"ops"`
}

// TopoOp is one structural op. Op is "addAgent", "removeAgent",
// "addEdge" or "removeEdge"; Kind selects "resource" (default) or
// "party" for edge ops. An addEdge whose row equals the current row
// count creates the row.
type TopoOp struct {
	Op    string  `json:"op"`
	Kind  string  `json:"kind,omitempty"`
	Row   int     `json:"row,omitempty"`
	Agent int     `json:"agent,omitempty"`
	Coeff float64 `json:"coeff,omitempty"`
}

// TopologyResponse acknowledges an applied topology patch.
type TopologyResponse struct {
	Applied       int                  `json:"applied"`
	Agents        int                  `json:"agents"`
	AddedAgents   []int                `json:"addedAgents,omitempty"`
	RemovedAgents []int                `json:"removedAgents,omitempty"`
	Micros        int64                `json:"micros"`
	Session       maxminlp.SolverStats `json:"session"`
}

// HealthResponse is GET /healthz.
type HealthResponse struct {
	Status    string `json:"status"`
	Uptime    string `json:"uptime"`
	Instances int    `json:"instances"`
	// Role and Workers describe cluster deployments: "single" (default),
	// "coordinator" or "worker".
	Role    string `json:"role,omitempty"`
	Workers int    `json:"workers,omitempty"`
}

// StatsResponse is the /v1/stats payload: the instance list plus the
// daemon-wide observability summaries.
type StatsResponse struct {
	Uptime    string                           `json:"uptime"`
	Instances []InstanceInfo                   `json:"instances"`
	Solve     SolveStats                       `json:"solve"`
	HTTP      map[string]obs.HistogramSnapshot `json:"http"`

	PanicsRecovered int64 `json:"panicsRecovered"`
	SlowRequests    int64 `json:"slowRequests"`
}

// SolveStats summarises the shared solve-pipeline metrics across every
// loaded session: phase latency distributions, pass and cache counters,
// and the session-mutation costs.
type SolveStats struct {
	Phases  map[string]obs.HistogramSnapshot `json:"phases"`
	Updates map[string]obs.HistogramSnapshot `json:"updates"`
	Passes  map[string]int64                 `json:"passes"`
	Cache   map[string]int64                 `json:"cache"`

	AgentsResolved int64 `json:"agentsResolved"`
	LPSolves       int64 `json:"lpSolves"`
	LPPivots       int64 `json:"lpPivots"`

	// Presolve reports whether the daemon runs ball-LP presolve on its
	// sessions, and PresolveRowsDropped how many constraint rows it has
	// eliminated before fingerprinting — read next to Cache to see the
	// dedup-hit delta presolve produces.
	Presolve            bool  `json:"presolve"`
	PresolveRowsDropped int64 `json:"presolveRowsDropped"`
}

// ClusterWorker describes one worker of a cluster deployment.
type ClusterWorker struct {
	Peer     int    `json:"peer"`
	DataAddr string `json:"dataAddr"`
}

// ClusterInstance reports the coordinator's and every worker's digest
// of one instance — all equal when the cluster is in sync.
type ClusterInstance struct {
	ID          string   `json:"id"`
	Agents      int      `json:"agents"`
	Coordinator string   `json:"coordinator"`
	Workers     []string `json:"workers"`
	InSync      bool     `json:"inSync"`
}

// ClusterResponse is GET /v1/cluster on a coordinator: membership plus
// a consistent per-instance digest snapshot, and the healing state —
// clients (and the crash-recovery CI job) poll this until Degraded
// clears and every instance reports InSync.
type ClusterResponse struct {
	SchemaVersion int               `json:"schemaVersion"`
	Workers       []ClusterWorker   `json:"workers"`
	Instances     []ClusterInstance `json:"instances"`
	// Epoch is the membership generation; every worker death or
	// admission bumps it.
	Epoch uint64 `json:"epoch,omitempty"`
	// TargetWorkers is the fleet size the cluster was deployed with;
	// Degraded reports len(Workers) < TargetWorkers.
	TargetWorkers int  `json:"targetWorkers,omitempty"`
	Degraded      bool `json:"degraded,omitempty"`
}
