package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func TestEveryCodeHasAStatus(t *testing.T) {
	seen := map[int]bool{}
	for _, code := range Codes() {
		st := Status(code)
		if st < 400 || st > 599 {
			t.Errorf("code %q maps to implausible status %d", code, st)
		}
		seen[st] = true
	}
	for _, want := range []int{400, 404, 413, 500, 502} {
		if !seen[want] {
			t.Errorf("no code maps to %d", want)
		}
	}
	if Status("no-such-code") != http.StatusInternalServerError {
		t.Error("unknown code should map to 500")
	}
}

func TestErrorEnvelopeShape(t *testing.T) {
	b, err := json.Marshal(ErrorEnvelope{Error: &Error{
		Code: CodePatchEntries, Message: "too many", RetryAfterS: 60,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"patch_entries","message":"too many","retry_after_s":60}}`
	if string(b) != want {
		t.Fatalf("envelope = %s, want %s", b, want)
	}

	// retry_after_s and the client-side Status are omitted when unset.
	b, _ = json.Marshal(ErrorEnvelope{Error: &Error{Code: CodeNotFound, Message: "x", Status: 404}})
	if strings.Contains(string(b), "retry") || strings.Contains(string(b), "404") {
		t.Fatalf("envelope leaked optional fields: %s", b)
	}

	e := &Error{Code: CodeInternal, Message: "boom"}
	if !strings.Contains(e.Error(), CodeInternal) || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("Error() = %q", e.Error())
	}
}
