// Package maxminlp is a library for approximating max-min linear programs
// with local algorithms, reproducing
//
//	P. Floréen, P. Kaski, T. Musto, J. Suomela:
//	"Approximating max-min linear programs with local algorithms",
//	IPDPS 2008 (arXiv:0710.1499).
//
// A max-min LP asks to maximise ω = min_k Σ_v c_kv·x_v subject to
// Σ_v a_iv·x_v ≤ 1 and x ≥ 0, where each agent v controls x_v and may
// only communicate within a constant-radius neighbourhood of the
// communication hypergraph (resource and party supports are the
// hyperedges).
//
// The package exposes:
//
//   - instance modelling (NewBuilder, Instance),
//   - the communication hypergraph with balls and relative growth γ(r)
//     (NewGraph, Graph),
//   - a centralised LP optimum for ground truth (SolveOptimal),
//   - the safe local 1-round ΔVI-approximation (Safe),
//   - the Theorem-3 local averaging algorithm with its per-instance
//     approximation certificate (LocalAverage),
//   - a long-lived solving session that amortises the CSR index, ball
//     indexes, LP workspaces and the isomorphic-ball solve cache across
//     queries, and re-solves incrementally after weight updates
//     (NewSolver, Solver.UpdateWeights); cmd/mmlpd serves sessions over
//     HTTP,
//   - a synchronous message-passing simulator with sequential,
//     goroutine-per-agent and sharded worker-pool engines, all
//     bit-identical (NewNetwork, SafeProtocol, AverageProtocol,
//     Network.RunSharded),
//   - the flat CSR incidence index and precomputed ball views the
//     engines iterate (NewCSR, Graph.CSR, Graph.BallIndex),
//   - the Theorem-1 adversarial construction and its proof checker
//     (BuildLowerBound), and
//   - instance generators and the paper's two §2 applications
//     (Torus, Grid, RandomInstance, RandomSensorNetwork, RandomISP).
//
// See examples/ for runnable end-to-end programs and EXPERIMENTS.md for
// the paper-versus-measured reproduction record.
package maxminlp

import (
	"math/rand"

	"maxminlp/internal/apps"
	"maxminlp/internal/core"
	"maxminlp/internal/dist"
	"maxminlp/internal/gen"
	"maxminlp/internal/hypergraph"
	"maxminlp/internal/lowerbound"
	"maxminlp/internal/lp"
	"maxminlp/internal/mmlp"
	"maxminlp/internal/obs"
)

// Core model types, re-exported from the implementation packages.
type (
	// Instance is an immutable sparse max-min LP.
	Instance = mmlp.Instance
	// Builder constructs Instances incrementally.
	Builder = mmlp.Builder
	// Entry is one nonzero coefficient of a constraint or benefit row.
	Entry = mmlp.Entry
	// DegreeBounds carries the support-size bounds ΔVI, ΔVK, ΔIV, ΔKV.
	DegreeBounds = mmlp.DegreeBounds
	// Restriction is a sub-instance together with its index mappings.
	Restriction = mmlp.Restriction

	// Graph is the communication hypergraph of an instance.
	Graph = hypergraph.Graph
	// GraphOptions configures hypergraph construction.
	GraphOptions = hypergraph.Options
	// CSR is the immutable flat incidence index of an instance: []int32
	// offset/value arrays for the agent↔resource and agent↔party
	// relations with their coefficients. Graphs built by NewGraph carry
	// one (Graph.CSR); the flat engines and SafeFlat run off it.
	CSR = hypergraph.CSR
	// BallIndex holds the radius-r balls of every agent in one flat
	// arena, computed once via Graph.BallIndex and shared by the round
	// loops.
	BallIndex = hypergraph.BallIndex

	// AverageResult is the output and certificate of LocalAverage.
	AverageResult = core.AverageResult
	// AverageOptions tunes how the Theorem-3 algorithm executes (workers,
	// isomorphic-ball dedup, shared solve cache) without changing any
	// output bit.
	AverageOptions = core.AverageOptions
	// SolveCache is a reusable isomorphic-ball local-LP cache; share one
	// across LocalAverageOpt calls (keys are content-based, so it is
	// valid across radii and instances).
	SolveCache = core.SolveCache

	// Solver is a long-lived solving session over one instance: it owns
	// the CSR index, retains ball indexes per radius, shares one solve
	// cache across queries, and supports incremental re-solve after
	// weight updates. Methods are bit-identical to the free functions
	// and safe for concurrent use.
	Solver = core.Solver
	// SolverStats counts the work a session has performed (structure
	// builds, full/incremental/warm solves, cache traffic).
	SolverStats = core.SolverStats
	// WeightDelta is one coefficient change applied by
	// Solver.UpdateWeights; the entry must already exist (weight updates
	// never change topology).
	WeightDelta = core.WeightDelta
	// WeightKind selects the coefficient family of a WeightDelta.
	WeightKind = core.WeightKind
	// CoeffUpdate is the instance-level form of a coefficient change
	// (Instance.UpdateCoeffs).
	CoeffUpdate = mmlp.CoeffUpdate
	// TopoUpdate is one structural change — an agent, resource, party or
	// support entry joining or leaving — applied by Instance.ApplyTopo
	// and Solver.UpdateTopology. Build them with AddAgent, RemoveAgent,
	// AddResourceEdge, AddPartyEdge, RemoveResourceEdge and
	// RemovePartyEdge.
	TopoUpdate = mmlp.TopoUpdate
	// TopoOp selects the kind of a TopoUpdate.
	TopoOp = mmlp.TopoOp
	// TopoDiff reports what a structural update batch changed.
	TopoDiff = mmlp.TopoDiff

	// Network runs distributed protocols over an instance.
	Network = dist.Network
	// Protocol is a distributed algorithm runnable on a Network.
	Protocol = dist.Protocol
	// Trace reports the cost and output of one protocol execution.
	Trace = dist.Trace
	// SafeProtocol is the safe algorithm as a zero-round protocol.
	SafeProtocol = dist.SafeProtocol
	// AverageProtocol is the Theorem-3 algorithm as a message-passing
	// protocol with horizon Θ(R).
	AverageProtocol = dist.AverageProtocol
	// StabilizingAverage is the self-stabilising transformation of
	// AverageProtocol (§1.1): run via Network.RunStabilizing, it recovers
	// the exact fault-free outputs within one horizon of any transient
	// state corruption.
	StabilizingAverage = dist.StabilizingAverage
	// StabilizingRun reports the outputs and stabilisation round of a
	// RunStabilizing execution.
	StabilizingRun = dist.StabilizingRun
	// StabNodeHandle lets fault injectors corrupt node state.
	StabNodeHandle = dist.StabNodeHandle
	// Engine is a named protocol-execution engine from the registry; all
	// engines produce bit-identical outputs (NewEngine, Engines).
	Engine = dist.Engine
	// EngineOptions tunes engine construction (shard count, stabilising
	// round budget); the zero value picks sensible defaults.
	EngineOptions = dist.Options

	// LowerBoundParams configures the Theorem-1 construction.
	LowerBoundParams = lowerbound.Params
	// LowerBound is the instantiated adversarial construction.
	LowerBound = lowerbound.Construction
	// SPrime is the restricted instance S' of Section 4.3.
	SPrime = lowerbound.SPrime
	// CheckReport is the proof checker's verdict.
	CheckReport = lowerbound.CheckReport

	// SensorNetwork is the §2 two-tier sensor deployment model.
	SensorNetwork = apps.SensorNetwork
	// SensorNetworkOptions configures random deployments.
	SensorNetworkOptions = apps.SensorNetworkOptions
	// ISPNetwork is the §2 ISP fair-bandwidth model.
	ISPNetwork = apps.ISPNetwork
	// ISPOptions configures random ISP topologies.
	ISPOptions = apps.ISPOptions

	// Lattice maps between grid coordinates and agent indices.
	Lattice = gen.Lattice
	// LatticeOptions configures grid and torus generation.
	LatticeOptions = gen.LatticeOptions
	// RandomOptions configures random instance generation.
	RandomOptions = gen.RandomOptions

	// MetricsRegistry owns metric families (counters, gauges, fixed-bucket
	// histograms) with an allocation-free atomic hot path and Prometheus
	// text exposition (MetricsRegistry.WritePrometheus). A nil registry
	// hands out nil metrics whose methods all no-op — the disabled mode
	// instrumented code relies on.
	MetricsRegistry = obs.Registry
	// SolveMetrics is the bundle of solve-pipeline metrics a Solver
	// records once attached via Solver.SetObs: per-phase latencies,
	// pass/cache counters, and update invalidation costs.
	SolveMetrics = obs.SolveMetrics
	// DistMetrics is the bundle the distributed engines record once
	// attached via Network.SetObs: rounds, messages, payload, per-round
	// message counts and barrier wait time.
	DistMetrics = obs.DistMetrics
	// HistogramSnapshot is a point-in-time histogram summary
	// (count/sum/p50/p90/p99), the shape stats endpoints and bench
	// reports use.
	HistogramSnapshot = obs.HistogramSnapshot
)

// NewBuilder returns a Builder pre-sized for the given number of agents.
func NewBuilder(agents int) *Builder { return mmlp.NewBuilder(agents) }

// NewGraph builds the communication hypergraph of an instance: agents are
// adjacent iff they share a resource or (unless CollaborationOblivious)
// a party.
func NewGraph(in *Instance, opt GraphOptions) *Graph {
	return hypergraph.FromInstance(in, opt)
}

// OptimalResult is the centralised LP optimum of an instance.
type OptimalResult = lp.MaxMinResult

// Backend selects the simplex implementation for SolveOptimalWith.
type Backend = lp.Backend

// Simplex backends.
const (
	// BackendDense is the reference full-tableau simplex.
	BackendDense = lp.BackendDense
	// BackendRevised is the revised simplex (sparse columns, explicit
	// basis inverse); faster on large sparse instances.
	BackendRevised = lp.BackendRevised
)

// SolveOptimal computes the global optimum of the max-min LP with the
// built-in simplex solver (Section 1.3 formulation). It is the ground
// truth that local algorithms are measured against; it is not itself a
// local algorithm.
func SolveOptimal(in *Instance) (OptimalResult, error) { return lp.SolveMaxMin(in) }

// SolveOptimalWith is SolveOptimal with an explicit simplex backend.
func SolveOptimalWith(in *Instance, backend Backend) (OptimalResult, error) {
	return lp.SolveMaxMinWith(in, backend)
}

// Safe computes the safe solution x_v = min_{i∈Iv} 1/(a_iv·|Vi|)
// (equation (2)), a local ΔVI-approximation with horizon 1.
func Safe(in *Instance) []float64 { return core.Safe(in) }

// NewCSR builds the flat incidence index of an instance. NewGraph
// already attaches one to the graphs it returns; this constructor is for
// callers that want the index without the adjacency structure.
func NewCSR(in *Instance) *CSR { return hypergraph.NewCSR(in) }

// SafeFlat is Safe evaluated over a prebuilt CSR index — the same
// values with no per-agent row lookups.
func SafeFlat(csr *CSR) []float64 { return core.SafeFlat(csr) }

// SafeRatioBound returns ΔVI, the proven approximation ratio of Safe.
func SafeRatioBound(in *Instance) float64 { return core.SafeRatioBound(in) }

// LocalAverage runs the Theorem-3 local averaging algorithm with radius R
// over the given communication graph. The result is always feasible and
// carries a per-instance approximation certificate bounded by
// γ(R−1)·γ(R).
func LocalAverage(in *Instance, g *Graph, radius int) (*AverageResult, error) {
	return core.LocalAverage(in, g, radius)
}

// LocalAverageParallel is LocalAverage with the independent per-agent
// local LPs solved by a pool of worker goroutines (workers ≤ 0 selects
// GOMAXPROCS). The result is bit-identical to LocalAverage.
func LocalAverageParallel(in *Instance, g *Graph, radius, workers int) (*AverageResult, error) {
	return core.LocalAverageParallel(in, g, radius, workers)
}

// LocalAverageOpt is LocalAverage with explicit execution options:
// worker count, the isomorphic-ball dedup switch (on by default; agents
// whose local LPs are element-for-element identical share one simplex
// run, reported via AverageResult.LocalLPs and SolvesAvoided), and an
// optional shared SolveCache. Every option combination returns
// bit-identical results; dedup reuses a solution only after an exact
// canonical-key match, never from the hash alone.
func LocalAverageOpt(in *Instance, g *Graph, radius int, opt AverageOptions) (*AverageResult, error) {
	return core.LocalAverageOpt(in, g, radius, opt)
}

// NewSolveCache returns an empty isomorphic-ball LP cache for
// LocalAverageOpt / AdaptiveAverageOpt to share across calls.
func NewSolveCache() *SolveCache { return core.NewSolveCache() }

// Weight-delta kinds for Solver.UpdateWeights.
const (
	// ResourceWeight updates a_iv of resource Row and agent Agent.
	ResourceWeight = core.ResourceWeight
	// PartyWeight updates c_kv of party Row and agent Agent.
	PartyWeight = core.PartyWeight
)

// Structural-update ops for Solver.UpdateTopology / Instance.ApplyTopo.
const (
	// TopoAddAgent appends one detached agent.
	TopoAddAgent = mmlp.TopoAddAgent
	// TopoRemoveAgent detaches an agent from every row.
	TopoRemoveAgent = mmlp.TopoRemoveAgent
	// TopoAddEdge adds one support entry (Row == row count creates the row).
	TopoAddEdge = mmlp.TopoAddEdge
	// TopoRemoveEdge removes one support entry (a row may die).
	TopoRemoveEdge = mmlp.TopoRemoveEdge
)

// AddAgent returns the topology update that appends one detached agent;
// wire it in with AddResourceEdge/AddPartyEdge in the same batch.
func AddAgent() TopoUpdate { return mmlp.AddAgent() }

// RemoveAgent returns the topology update that detaches agent v: it
// leaves every row it was in and its activity is 0 from here on.
func RemoveAgent(v int) TopoUpdate { return mmlp.RemoveAgent(v) }

// AddResourceEdge returns the topology update that adds a_iv = coeff;
// i may equal NumResources to create the resource.
func AddResourceEdge(i, v int, coeff float64) TopoUpdate { return mmlp.AddResourceEdge(i, v, coeff) }

// AddPartyEdge returns the topology update that adds c_kv = coeff;
// k may equal NumParties to create the party.
func AddPartyEdge(k, v int, coeff float64) TopoUpdate { return mmlp.AddPartyEdge(k, v, coeff) }

// RemoveResourceEdge returns the topology update that removes agent v
// from the support of resource i.
func RemoveResourceEdge(i, v int) TopoUpdate { return mmlp.RemoveResourceEdge(i, v) }

// RemovePartyEdge returns the topology update that removes agent v from
// the support of party k.
func RemovePartyEdge(k, v int) TopoUpdate { return mmlp.RemovePartyEdge(k, v) }

// NewMetricsRegistry returns an empty enabled metrics registry. Attach
// bundles built on it to sessions (Solver.SetObs) and networks
// (Network.SetObs); serve it with MetricsRegistry.WritePrometheus.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSolveMetrics registers the solve-pipeline metric bundle on r. A
// nil registry yields a nil bundle, which records nothing — attaching
// it is equivalent to never calling SetObs.
func NewSolveMetrics(r *MetricsRegistry) *SolveMetrics { return obs.NewSolveMetrics(r) }

// NewDistMetrics registers the distributed-engine metric bundle on r
// (nil registry → nil no-op bundle).
func NewDistMetrics(r *MetricsRegistry) *DistMetrics { return obs.NewDistMetrics(r) }

// NewSolver builds a solving session from an instance: the communication
// hypergraph and CSR index are constructed once and every later query —
// Safe, LocalAverage, Adaptive, Certificate — amortises them, with
// results bit-identical to the free functions. UpdateWeights patches
// coefficients in place and invalidates only the ball-local LPs that can
// see them; the next query re-solves just those.
func NewSolver(in *Instance, opt GraphOptions) *Solver { return core.NewSolver(in, opt) }

// NewSolverFromGraph builds a session over a prebuilt communication
// hypergraph (reusing its CSR index when it has one).
func NewSolverFromGraph(in *Instance, g *Graph) *Solver { return core.NewSolverFromGraph(in, g) }

// NewSessionNetwork binds a Solver session for distributed execution:
// the engines reuse the session's retained ball indexes and shared solve
// cache for their per-node output computations, with outputs and traces
// bit-identical to a plain NewNetwork run.
func NewSessionNetwork(s *Solver) (*Network, error) { return dist.NewSessionNetwork(s) }

// AdaptiveResult is the outcome of AdaptiveAverage.
type AdaptiveResult = core.AdaptiveResult

// AdaptiveAverage grows the averaging radius until the per-instance
// certificate meets the target ratio (Theorem 3 as a local approximation
// scheme), then runs LocalAverage at that radius. On expanding graphs the
// target may be unreachable; Achieved reports which case occurred.
func AdaptiveAverage(in *Instance, g *Graph, targetRatio float64, maxRadius int) (*AdaptiveResult, error) {
	return core.AdaptiveAverage(in, g, targetRatio, maxRadius)
}

// AdaptiveAverageOpt is AdaptiveAverage with explicit execution options
// for the final averaging run; pass one AverageOptions.Cache through
// repeated calls to share solved local LPs across them (canonical keys
// are radius-independent).
func AdaptiveAverageOpt(in *Instance, g *Graph, targetRatio float64, maxRadius int, opt AverageOptions) (*AdaptiveResult, error) {
	return core.AdaptiveAverageOpt(in, g, targetRatio, maxRadius, opt)
}

// Certificate computes the Theorem-3 approximation certificate
// (max_k M_k/m_k, max_i N_i/n_i) at the given radius without solving any
// local LP.
func Certificate(in *Instance, g *Graph, radius int) (partyBound, resourceBound float64, err error) {
	return core.Certificate(in, g, radius)
}

// NewNetwork binds an instance to its communication hypergraph for
// distributed execution.
func NewNetwork(in *Instance, g *Graph) (*Network, error) { return dist.NewNetwork(in, g) }

// NewEngine constructs a registered protocol-execution engine by name
// ("sequential", "goroutines", "sharded", "partitioned", "stabilizing").
// Every engine produces bit-identical solution vectors; they differ only
// in scheduling and in whether their cost accounting is exact
// (Engine.CostExact).
func NewEngine(name string, opt EngineOptions) (Engine, error) { return dist.New(name, opt) }

// Engines lists the registered engine names, sorted.
func Engines() []string { return dist.Engines() }

// BuildLowerBound instantiates the Theorem-1 adversarial construction.
func BuildLowerBound(p LowerBoundParams) (*LowerBound, error) { return lowerbound.Build(p) }

// Torus builds a d-dimensional torus instance (one agent, resource and
// party per cell, supports = closed von-Neumann neighbourhoods).
func Torus(dims []int, opt LatticeOptions) (*Instance, *Lattice) { return gen.Torus(dims, opt) }

// Grid is Torus without wraparound.
func Grid(dims []int, opt LatticeOptions) (*Instance, *Lattice) { return gen.Grid(dims, opt) }

// RandomInstance generates a random bounded-degree max-min LP.
func RandomInstance(opt RandomOptions, rng *rand.Rand) *Instance { return gen.Random(opt, rng) }

// RandomSensorNetwork samples a two-tier sensor deployment (§2).
func RandomSensorNetwork(opt SensorNetworkOptions, rng *rand.Rand) *SensorNetwork {
	return apps.RandomSensorNetwork(opt, rng)
}

// RandomISP samples an ISP access-network topology (§2).
func RandomISP(opt ISPOptions, rng *rand.Rand) *ISPNetwork { return apps.RandomISP(opt, rng) }
