module maxminlp

go 1.24
