package maxminlp_test

import (
	"fmt"

	"maxminlp"
)

// ExampleSafe demonstrates the safe algorithm of Papadimitriou and
// Yannakakis (equation (2) of the paper) on a two-resource instance.
func ExampleSafe() {
	b := maxminlp.NewBuilder(3)
	b.AddUnitResource(0, 1) // x0 + x1 ≤ 1
	b.AddUnitResource(1, 2) // x1 + x2 ≤ 1
	b.AddUniformParty(1, 0, 1)
	b.AddUniformParty(1, 2)
	in, _ := b.Build()

	x := maxminlp.Safe(in)
	fmt.Printf("x = %.2v\n", x)
	fmt.Printf("omega = %.2f\n", in.Objective(x))
	// Output:
	// x = [0.5 0.5 0.5]
	// omega = 0.50
}

// ExampleLocalAverage runs the Theorem-3 local averaging algorithm: with
// a radius covering the whole (tiny) instance, it recovers the optimum
// and certifies ratio 1.
func ExampleLocalAverage() {
	b := maxminlp.NewBuilder(3)
	b.AddUnitResource(0, 1)
	b.AddUnitResource(1, 2)
	b.AddUniformParty(1, 0, 1)
	b.AddUniformParty(1, 2)
	in, _ := b.Build()
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})

	res, _ := maxminlp.LocalAverage(in, g, 2)
	fmt.Printf("omega = %.2f certificate = %.2f\n", in.Objective(res.X), res.RatioCertificate())
	// Output:
	// omega = 1.00 certificate = 1.00
}

// ExampleSolveOptimal computes the centralised LP optimum used as ground
// truth throughout the experiments.
func ExampleSolveOptimal() {
	b := maxminlp.NewBuilder(2)
	b.AddUnitResource(0, 1) // x0 + x1 ≤ 1
	b.AddUniformParty(1, 0) // ω ≤ x0
	b.AddUniformParty(1, 1) // ω ≤ x1
	in, _ := b.Build()

	opt, _ := maxminlp.SolveOptimal(in)
	fmt.Printf("omega = %.2f\n", opt.Omega)
	// Output:
	// omega = 0.50
}

// ExampleLowerBoundParams_TheoremBound prints the Theorem-1
// inapproximability bounds for small degree parameters.
func ExampleLowerBoundParams_TheoremBound() {
	for _, p := range []maxminlp.LowerBoundParams{
		{DeltaVI: 3, DeltaVK: 2},
		{DeltaVI: 3, DeltaVK: 3},
		{DeltaVI: 4, DeltaVK: 3},
	} {
		fmt.Printf("ΔVI=%d ΔVK=%d: %.4f\n", p.DeltaVI, p.DeltaVK, p.TheoremBound())
	}
	// Output:
	// ΔVI=3 ΔVK=2: 1.5000
	// ΔVI=3 ΔVK=3: 1.7500
	// ΔVI=4 ΔVK=3: 2.2500
}

// ExampleGraph_Gamma shows the relative growth γ(r) on a cycle, the
// quantity controlling Theorem 3's approximation ratio.
func ExampleGraph_Gamma() {
	in, _ := maxminlp.Torus([]int{32}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for r := 1; r <= 3; r++ {
		fmt.Printf("gamma(%d) = %.3f\n", r, g.Gamma(r))
	}
	// Output:
	// gamma(1) = 1.800
	// gamma(2) = 1.444
	// gamma(3) = 1.308
}

// ExampleAdaptiveAverage grows the radius until the Theorem-3 certificate
// meets a target ratio — the "local approximation scheme" in action.
func ExampleAdaptiveAverage() {
	in, _ := maxminlp.Torus([]int{48}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	res, _ := maxminlp.AdaptiveAverage(in, g, 1.8, 10)
	fmt.Printf("achieved=%v at R=%d with certificate %.3f\n",
		res.Achieved, res.Radius, res.RatioCertificate())
	// Output:
	// achieved=true at R=2 with certificate 1.571
}

// ExampleCertificate inspects the Theorem-3 certificate without running
// the algorithm (it needs only ball computations).
func ExampleCertificate() {
	in, _ := maxminlp.Torus([]int{48}, maxminlp.LatticeOptions{})
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	for r := 1; r <= 3; r++ {
		pb, rb, _ := maxminlp.Certificate(in, g, r)
		fmt.Printf("R=%d certificate=%.3f\n", r, pb*rb)
	}
	// Output:
	// R=1 certificate=2.333
	// R=2 certificate=1.571
	// R=3 certificate=1.364
}
