package maxminlp_test

import (
	"math"
	"math/rand"
	"testing"

	"maxminlp"
)

// TestIntegrationSensorNetworkPipeline runs the full §2 story through the
// public API: generate a deployment, derive the max-min LP, solve it
// centrally, run both local algorithms centrally and as message-passing
// protocols, and check every cross-cutting guarantee at once.
func TestIntegrationSensorNetworkPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sn := maxminlp.RandomSensorNetwork(maxminlp.SensorNetworkOptions{
		Sensors: 25, Relays: 7, Areas: 9,
		RadioRange: 0.32, SenseRange: 0.28, MaxLinksPerSensor: 3,
	}, rng)
	in, err := sn.Instance()
	if err != nil {
		t.Fatal(err)
	}
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})

	// Ground truth, both backends.
	dense, err := maxminlp.SolveOptimalWith(in, maxminlp.BackendDense)
	if err != nil {
		t.Fatal(err)
	}
	revised, err := maxminlp.SolveOptimalWith(in, maxminlp.BackendRevised)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dense.Omega-revised.Omega) > 1e-6*(1+dense.Omega) {
		t.Fatalf("backends disagree: dense %v vs revised %v", dense.Omega, revised.Omega)
	}

	// Local algorithms: feasible and certified.
	safe := maxminlp.Safe(in)
	if v := in.Violation(safe); v > 1e-9 {
		t.Fatalf("safe infeasible: %v", v)
	}
	avg, err := maxminlp.LocalAverage(in, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Violation(avg.X); v > 1e-9 {
		t.Fatalf("average infeasible: %v", v)
	}
	ratio := dense.Omega / in.Objective(avg.X)
	if ratio > avg.RatioCertificate()+1e-6 {
		t.Fatalf("ratio %v exceeds certificate %v", ratio, avg.RatioCertificate())
	}

	// Parallel executor agrees bit-for-bit.
	par, err := maxminlp.LocalAverageParallel(in, g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range avg.X {
		if par.X[v] != avg.X[v] {
			t.Fatalf("parallel executor diverged at agent %d", v)
		}
	}

	// Distributed execution agrees bit-for-bit with the centralised run.
	nw, err := maxminlp.NewNetwork(in, g)
	if err != nil {
		t.Fatal(err)
	}
	avg1, err := maxminlp.LocalAverage(in, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := nw.RunGoroutines(maxminlp.AverageProtocol{Radius: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range avg1.X {
		if tr.X[v] != avg1.X[v] {
			t.Fatalf("distributed run diverged at agent %d", v)
		}
	}
	if tr.Payload == 0 || tr.MaxNodePayload == 0 {
		t.Fatal("payload accounting missing")
	}
}

// TestIntegrationAdaptiveOnGeometric drives the adaptive scheme on a
// unit-disk deployment: geometric graphs have polynomial growth, so a
// moderate target must be reachable, and the resulting solution must be
// feasible with the certificate honoured.
func TestIntegrationAdaptiveOnGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	in := maxminlp.RandomInstance(maxminlp.RandomOptions{
		Agents: 60, Resources: 60, Parties: 30, MaxVI: 3, MaxVK: 3,
	}, rng)
	g := maxminlp.NewGraph(in, maxminlp.GraphOptions{})
	res, err := maxminlp.AdaptiveAverage(in, g, 4.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if v := in.Violation(res.X); v > 1e-9 {
		t.Fatalf("adaptive solution infeasible: %v", v)
	}
	opt, err := maxminlp.SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Omega > 1e-9 {
		ratio := opt.Omega / in.Objective(res.X)
		if ratio > res.RatioCertificate()+1e-6 {
			t.Fatalf("ratio %v above certificate %v", ratio, res.RatioCertificate())
		}
	}
	pb, rb, err := maxminlp.Certificate(in, g, res.Radius)
	if err != nil {
		t.Fatal(err)
	}
	if pb*rb != res.RatioCertificate() {
		t.Fatalf("certificate mismatch: %v vs %v", pb*rb, res.RatioCertificate())
	}
}

// TestIntegrationLowerBoundAgainstAveraging closes the loop between the
// two halves of the paper: derive S' adversarially from the averaging
// algorithm's own output on S, verify the construction, and confirm the
// optimal-versus-achieved gap on S' is real.
func TestIntegrationLowerBoundAgainstAveraging(t *testing.T) {
	c, err := maxminlp.BuildLowerBound(maxminlp.LowerBoundParams{
		DeltaVI: 3, DeltaVK: 2, R: 2, LocalHorizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := maxminlp.NewGraph(c.S, maxminlp.GraphOptions{})
	avg, err := maxminlp.LocalAverage(c.S, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := c.DeriveSPrime(avg.X)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Check(avg.X, sp)
	if !rep.OK() {
		t.Fatalf("construction checks failed: %v", rep.Errors)
	}
	sub := sp.Instance()
	opt, err := maxminlp.SolveOptimal(sub)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Omega < 1-1e-9 {
		t.Fatalf("ω*(S') = %v < 1 contradicts the witness", opt.Omega)
	}
	// The safe algorithm (horizon ≤ r) must be at least the corollary
	// bound away from optimal on S'.
	achieved := sub.Objective(maxminlp.Safe(sub))
	if ratio := opt.Omega / achieved; ratio < 1.5-1e-6 {
		t.Fatalf("safe ratio on S' = %v below the Corollary-2 bound 1.5", ratio)
	}
}
