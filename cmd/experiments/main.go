// Command experiments regenerates every reproduction experiment (E1–E8)
// described in EXPERIMENTS.md and prints the result tables.
//
// Usage:
//
//	experiments [-seed N] [-only E4,E5] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"maxminlp/internal/harness"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed shared by all experiments")
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failed := false
	for _, exp := range harness.All {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		table, err := exp.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", exp.ID, err)
			failed = true
			continue
		}
		if *csvOut {
			fmt.Printf("# %s — %s\n", table.ID, table.Title)
			if err := table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: csv: %v\n", exp.ID, err)
				failed = true
			}
			fmt.Println()
		} else {
			table.Fprint(os.Stdout)
		}
	}
	if failed {
		os.Exit(1)
	}
}
